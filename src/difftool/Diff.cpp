//===- difftool/Diff.cpp ----------------------------------------*- C++ -*-===//

#include "difftool/Diff.h"

#include <map>

using namespace crellvm;
using namespace crellvm::difftool;
using namespace crellvm::ir;

namespace {

/// Tracks the register renaming between two functions.
class Renaming {
public:
  /// Binds A's register \p RA to B's \p RB; returns false on conflict.
  bool bind(const std::string &RA, const std::string &RB) {
    auto ItF = Fwd.find(RA);
    if (ItF != Fwd.end())
      return ItF->second == RB;
    auto ItB = Bwd.find(RB);
    if (ItB != Bwd.end())
      return ItB->second == RA;
    Fwd[RA] = RB;
    Bwd[RB] = RA;
    return true;
  }

  bool valuesMatch(const Value &A, const Value &B) {
    if (A.kind() != B.kind() || A.type() != B.type())
      return false;
    switch (A.kind()) {
    case Value::Kind::Reg:
      return bind(A.regName(), B.regName());
    case Value::Kind::ConstInt:
      return A.intValue() == B.intValue();
    case Value::Kind::Global:
      return A.globalName() == B.globalName();
    case Value::Kind::Undef:
      return true;
    case Value::Kind::ConstExpr: {
      const ConstExprNode &NA = A.constExprNode();
      const ConstExprNode &NB = B.constExprNode();
      if (NA.Op != NB.Op || NA.Ty != NB.Ty ||
          NA.Ops.size() != NB.Ops.size())
        return false;
      for (size_t I = 0; I != NA.Ops.size(); ++I)
        if (!valuesMatch(NA.Ops[I], NB.Ops[I]))
          return false;
      return true;
    }
    }
    return false;
  }

  bool instructionsMatch(const Instruction &A, const Instruction &B) {
    if (A.opcode() != B.opcode() || A.type() != B.type() ||
        A.icmpPred() != B.icmpPred() || A.isInbounds() != B.isInbounds() ||
        A.allocaSize() != B.allocaSize() || A.callee() != B.callee() ||
        A.successors() != B.successors() ||
        A.caseValues() != B.caseValues() ||
        A.operands().size() != B.operands().size() ||
        A.result().has_value() != B.result().has_value())
      return false;
    if (A.result() && !bind(*A.result(), *B.result()))
      return false;
    for (size_t I = 0; I != A.operands().size(); ++I)
      if (!valuesMatch(A.operands()[I], B.operands()[I]))
        return false;
    return true;
  }

private:
  std::map<std::string, std::string> Fwd, Bwd;
};

std::string diffFunction(const Function &A, const Function &B) {
  if (A.RetTy != B.RetTy)
    return "return types differ";
  if (A.Params.size() != B.Params.size())
    return "parameter counts differ";
  Renaming R;
  for (size_t I = 0; I != A.Params.size(); ++I) {
    if (A.Params[I].Ty != B.Params[I].Ty)
      return "parameter types differ";
    if (!R.bind(A.Params[I].Name, B.Params[I].Name))
      return "parameter renaming conflict";
  }
  if (A.Blocks.size() != B.Blocks.size())
    return "block counts differ";
  for (size_t BI = 0; BI != A.Blocks.size(); ++BI) {
    const BasicBlock &BA = A.Blocks[BI];
    const BasicBlock &BB = B.Blocks[BI];
    if (BA.Name != BB.Name)
      return "block names differ ('" + BA.Name + "' vs '" + BB.Name + "')";
    if (BA.Phis.size() != BB.Phis.size())
      return "phi counts differ in '" + BA.Name + "'";
    for (size_t PI = 0; PI != BA.Phis.size(); ++PI) {
      const Phi &PA = BA.Phis[PI];
      const Phi &PB = BB.Phis[PI];
      if (PA.Ty != PB.Ty || PA.Incoming.size() != PB.Incoming.size())
        return "phi shapes differ in '" + BA.Name + "'";
      if (!R.bind(PA.Result, PB.Result))
        return "phi renaming conflict in '" + BA.Name + "'";
      for (size_t II = 0; II != PA.Incoming.size(); ++II) {
        if (PA.Incoming[II].first != PB.Incoming[II].first ||
            !R.valuesMatch(PA.Incoming[II].second, PB.Incoming[II].second))
          return "phi incoming values differ in '" + BA.Name + "'";
      }
    }
    if (BA.Insts.size() != BB.Insts.size())
      return "instruction counts differ in '" + BA.Name + "'";
    for (size_t II = 0; II != BA.Insts.size(); ++II)
      if (!R.instructionsMatch(BA.Insts[II], BB.Insts[II]))
        return "instructions differ in '" + BA.Name + "': " +
               BA.Insts[II].str() + " vs " + BB.Insts[II].str();
  }
  return "";
}

} // namespace

DiffResult crellvm::difftool::diffModules(const Module &A, const Module &B) {
  DiffResult Res;
  auto Fail = [&Res](const std::string &Why) {
    Res.Equivalent = false;
    Res.FirstDifference = Why;
    return Res;
  };
  if (A.Globals.size() != B.Globals.size())
    return Fail("global counts differ");
  for (size_t I = 0; I != A.Globals.size(); ++I)
    if (A.Globals[I].Name != B.Globals[I].Name ||
        A.Globals[I].ElemTy != B.Globals[I].ElemTy ||
        A.Globals[I].Size != B.Globals[I].Size)
      return Fail("global @" + A.Globals[I].Name + " differs");
  if (A.Funcs.size() != B.Funcs.size())
    return Fail("function counts differ");
  for (size_t I = 0; I != A.Funcs.size(); ++I) {
    if (A.Funcs[I].Name != B.Funcs[I].Name)
      return Fail("function order differs");
    std::string Why = diffFunction(A.Funcs[I], B.Funcs[I]);
    if (!Why.empty())
      return Fail("@" + A.Funcs[I].Name + ": " + Why);
  }
  return Res;
}
