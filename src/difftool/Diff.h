//===- difftool/Diff.h - Alpha-equivalence module diff ----------*- C++ -*-===//
///
/// \file
/// The llvm-diff analog of the framework (paper §1.1): after validation,
/// the target produced by the proof-generating compiler is compared with
/// the target of the original compiler up to alpha-equivalence (consistent
/// register renaming). Programmers can therefore ship the original
/// compiler's output while the proof-generating compiler provides the
/// correctness guarantee.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_DIFFTOOL_DIFF_H
#define CRELLVM_DIFFTOOL_DIFF_H

#include "ir/Module.h"

#include <string>

namespace crellvm {
namespace difftool {

/// Result of comparing two modules.
struct DiffResult {
  bool Equivalent = true;
  std::string FirstDifference; ///< human-readable, empty when equivalent

  explicit operator bool() const { return Equivalent; }
};

/// Compares the modules up to consistent per-function register renaming.
/// Block names, control flow, globals and declarations must match exactly.
DiffResult diffModules(const ir::Module &A, const ir::Module &B);

} // namespace difftool
} // namespace crellvm

#endif // CRELLVM_DIFFTOOL_DIFF_H
