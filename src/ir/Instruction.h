//===- ir/Instruction.h - Instructions and phi nodes -----------*- C++ -*-===//
///
/// \file
/// Instructions of the reproduction IR. An Instruction is a value-semantics
/// record (opcode + result register + operands); basic blocks own their
/// instructions by value, so cloning a function is a plain copy. Phi nodes
/// are a separate type because they live at block heads and execute
/// simultaneously per incoming edge (paper §4).
///
/// Operand conventions:
///   binary op      result=r, Ops={a,b}
///   icmp           result=r, Pred, Ops={a,b}; result type is i1
///   select         result=r, Ops={cond,tval,fval}
///   casts          result=r, Ops={a}; type() is the destination type
///   alloca         result=p, type() is the element type, allocaSize cells
///   load           result=r, Ops={ptr}; type() is the loaded type
///   store          no result, Ops={val,ptr}; type() is the value type
///   gep            result=q, Ops={base,idx}, inbounds flag
///   call           result=r or none, Callee, Ops=args; type() is ret type
///   br             Succs={dest}
///   condbr         Ops={cond}, Succs={true,false}
///   switch         Ops={val}, Succs={default,case...}, CaseVals
///   ret            Ops={val} or {} for void
///   unreachable    nothing
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_IR_INSTRUCTION_H
#define CRELLVM_IR_INSTRUCTION_H

#include "ir/Value.h"

#include <optional>
#include <string>
#include <vector>

namespace crellvm {
namespace ir {

/// A non-phi instruction.
class Instruction {
public:
  Instruction() : Op(Opcode::Unreachable) {}

  // Factory functions; each asserts its operand conventions.
  static Instruction binary(Opcode Op, std::string Result, Type Ty, Value A,
                            Value B);
  static Instruction icmp(std::string Result, IcmpPred Pred, Value A,
                          Value B);
  static Instruction select(std::string Result, Type Ty, Value Cond,
                            Value TVal, Value FVal);
  static Instruction cast(Opcode Op, std::string Result, Type DstTy,
                          Value A);
  static Instruction allocaInst(std::string Result, Type ElemTy, uint64_t Size);
  static Instruction load(std::string Result, Type Ty, Value Ptr);
  static Instruction store(Value Val, Value Ptr);
  static Instruction gep(std::string Result, bool Inbounds, Value Base,
                         Value Idx);
  static Instruction call(std::string Result, Type RetTy, std::string Callee,
                          std::vector<Value> Args);
  static Instruction br(std::string Dest);
  static Instruction condBr(Value Cond, std::string TrueDest,
                            std::string FalseDest);
  static Instruction switchInst(Value V, std::string DefaultDest,
                                std::vector<int64_t> CaseVals,
                                std::vector<std::string> CaseDests);
  static Instruction ret(std::optional<Value> V);
  static Instruction unreachable();

  Opcode opcode() const { return Op; }
  const Type &type() const { return Ty; }
  IcmpPred icmpPred() const { return Pred; }
  bool isInbounds() const { return Inbounds; }
  void setInbounds(bool B) { Inbounds = B; }
  uint64_t allocaSize() const { return Size; }
  const std::string &callee() const { return Callee; }

  bool isTerminator() const { return ir::isTerminator(Op); }

  /// The defined register name, or std::nullopt when the instruction
  /// produces no value.
  std::optional<std::string> result() const {
    if (ResultReg.empty())
      return std::nullopt;
    return ResultReg;
  }

  const std::vector<Value> &operands() const { return Ops; }
  std::vector<Value> &operands() { return Ops; }
  const std::vector<std::string> &successors() const { return Succs; }
  std::vector<std::string> &successors() { return Succs; }
  const std::vector<int64_t> &caseValues() const { return CaseVals; }

  /// Replaces every operand equal to register \p From with \p To; returns
  /// the number of replacements.
  unsigned replaceUses(const std::string &From, const Value &To);

  /// A copy of this instruction defining \p NewResult instead (used by
  /// PRE insertion).
  Instruction withResult(std::string NewResult) const {
    Instruction I = *this;
    I.ResultReg = std::move(NewResult);
    return I;
  }

  /// Renders the instruction in textual IR syntax (no leading indentation).
  std::string str() const;

  /// Structural equality, comparing register names literally.
  bool operator==(const Instruction &O) const;
  bool operator!=(const Instruction &O) const { return !(*this == O); }

private:
  Opcode Op;
  Type Ty = Type::voidTy();
  std::string ResultReg;
  IcmpPred Pred = IcmpPred::Eq;
  bool Inbounds = false;
  uint64_t Size = 1;
  std::string Callee;
  std::vector<Value> Ops;
  std::vector<std::string> Succs;
  std::vector<int64_t> CaseVals;
};

/// A phi node. All phi nodes at a block head execute simultaneously when
/// control enters the block.
struct Phi {
  std::string Result;
  Type Ty = Type::voidTy();
  /// Incoming (predecessor block, value) pairs. A missing predecessor entry
  /// is only legal transiently inside mem2reg (empty phi nodes, paper §9).
  std::vector<std::pair<std::string, Value>> Incoming;

  /// The incoming value for predecessor \p Pred; asserts it exists.
  const Value &incomingFor(const std::string &Pred) const;
  /// Sets (or adds) the incoming value for \p Pred.
  void setIncoming(const std::string &Pred, Value V);

  std::string str() const;
  bool operator==(const Phi &O) const {
    return Result == O.Result && Ty == O.Ty && Incoming == O.Incoming;
  }
};

} // namespace ir
} // namespace crellvm

#endif // CRELLVM_IR_INSTRUCTION_H
