//===- ir/Opcode.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Opcode.h"

using namespace crellvm;
using namespace crellvm::ir;

bool crellvm::ir::isBinaryOp(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
    return true;
  default:
    return false;
  }
}

bool crellvm::ir::mayTrap(Opcode Op) {
  switch (Op) {
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
    return true;
  default:
    return false;
  }
}

bool crellvm::ir::isTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Switch:
  case Opcode::Ret:
  case Opcode::Unreachable:
    return true;
  default:
    return false;
  }
}

bool crellvm::ir::isCast(Opcode Op) {
  switch (Op) {
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
  case Opcode::Bitcast:
    return true;
  default:
    return false;
  }
}

std::string crellvm::ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::URem:
    return "urem";
  case Opcode::Shl:
    return "shl";
  case Opcode::LShr:
    return "lshr";
  case Opcode::AShr:
    return "ashr";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::Select:
    return "select";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::ZExt:
    return "zext";
  case Opcode::SExt:
    return "sext";
  case Opcode::PtrToInt:
    return "ptrtoint";
  case Opcode::IntToPtr:
    return "inttoptr";
  case Opcode::Bitcast:
    return "bitcast";
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Gep:
    return "gep";
  case Opcode::Call:
    return "call";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Switch:
    return "switch";
  case Opcode::Ret:
    return "ret";
  case Opcode::Unreachable:
    return "unreachable";
  }
  return "<invalid>";
}

std::optional<Opcode> crellvm::ir::opcodeFromName(const std::string &Name) {
  static const std::pair<const char *, Opcode> Names[] = {
      {"add", Opcode::Add},           {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},           {"sdiv", Opcode::SDiv},
      {"udiv", Opcode::UDiv},         {"srem", Opcode::SRem},
      {"urem", Opcode::URem},         {"shl", Opcode::Shl},
      {"lshr", Opcode::LShr},         {"ashr", Opcode::AShr},
      {"and", Opcode::And},           {"or", Opcode::Or},
      {"xor", Opcode::Xor},           {"icmp", Opcode::ICmp},
      {"select", Opcode::Select},     {"trunc", Opcode::Trunc},
      {"zext", Opcode::ZExt},         {"sext", Opcode::SExt},
      {"ptrtoint", Opcode::PtrToInt}, {"inttoptr", Opcode::IntToPtr},
      {"bitcast", Opcode::Bitcast},   {"alloca", Opcode::Alloca},
      {"load", Opcode::Load},         {"store", Opcode::Store},
      {"gep", Opcode::Gep},           {"call", Opcode::Call},
      {"br", Opcode::Br},             {"condbr", Opcode::CondBr},
      {"switch", Opcode::Switch},     {"ret", Opcode::Ret},
      {"unreachable", Opcode::Unreachable},
  };
  for (const auto &KV : Names)
    if (Name == KV.first)
      return KV.second;
  return std::nullopt;
}

std::string crellvm::ir::icmpPredName(IcmpPred P) {
  switch (P) {
  case IcmpPred::Eq:
    return "eq";
  case IcmpPred::Ne:
    return "ne";
  case IcmpPred::Ugt:
    return "ugt";
  case IcmpPred::Uge:
    return "uge";
  case IcmpPred::Ult:
    return "ult";
  case IcmpPred::Ule:
    return "ule";
  case IcmpPred::Sgt:
    return "sgt";
  case IcmpPred::Sge:
    return "sge";
  case IcmpPred::Slt:
    return "slt";
  case IcmpPred::Sle:
    return "sle";
  }
  return "<invalid>";
}

std::optional<IcmpPred>
crellvm::ir::icmpPredFromName(const std::string &Name) {
  static const std::pair<const char *, IcmpPred> Names[] = {
      {"eq", IcmpPred::Eq},   {"ne", IcmpPred::Ne},
      {"ugt", IcmpPred::Ugt}, {"uge", IcmpPred::Uge},
      {"ult", IcmpPred::Ult}, {"ule", IcmpPred::Ule},
      {"sgt", IcmpPred::Sgt}, {"sge", IcmpPred::Sge},
      {"slt", IcmpPred::Slt}, {"sle", IcmpPred::Sle},
  };
  for (const auto &KV : Names)
    if (Name == KV.first)
      return KV.second;
  return std::nullopt;
}
