//===- ir/Parser.h - Textual IR parser --------------------------*- C++ -*-===//
///
/// \file
/// Parses the textual syntax produced by ir::printModule. Errors are
/// reported with a line number and message; parsing is all-or-nothing.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_IR_PARSER_H
#define CRELLVM_IR_PARSER_H

#include "ir/Module.h"

#include <optional>
#include <string>

namespace crellvm {
namespace ir {

/// Parses \p Text into a module. On failure returns std::nullopt and, when
/// \p Error is non-null, stores a "line N: message" diagnostic.
std::optional<Module> parseModule(const std::string &Text,
                                  std::string *Error = nullptr);

/// Parses a single instruction in the textual syntax (used by the proof
/// serialization, which stores aligned commands as text).
std::optional<Instruction> parseInstructionText(const std::string &Text,
                                                std::string *Error = nullptr);

} // namespace ir
} // namespace crellvm

#endif // CRELLVM_IR_PARSER_H
