//===- ir/Printer.cpp -------------------------------------------*- C++ -*-===//

#include "ir/Printer.h"

using namespace crellvm;
using namespace crellvm::ir;

std::string crellvm::ir::printFunction(const Function &F) {
  std::string S = "define " + F.RetTy.str() + " @" + F.Name + "(";
  for (size_t I = 0; I != F.Params.size(); ++I) {
    if (I != 0)
      S += ", ";
    S += F.Params[I].Ty.str() + " %" + F.Params[I].Name;
  }
  S += ") {\n";
  for (const BasicBlock &B : F.Blocks) {
    S += B.Name + ":\n";
    for (const Phi &P : B.Phis)
      S += "  " + P.str() + "\n";
    for (const Instruction &I : B.Insts)
      S += "  " + I.str() + "\n";
  }
  S += "}\n";
  return S;
}

std::string crellvm::ir::printModule(const Module &M) {
  std::string S;
  for (const GlobalVar &G : M.Globals)
    S += "@" + G.Name + " = global " + G.ElemTy.str() + ", " +
         std::to_string(G.Size) + "\n";
  for (const FuncDecl &D : M.Decls) {
    S += "declare " + D.RetTy.str() + " @" + D.Name + "(";
    for (size_t I = 0; I != D.ParamTys.size(); ++I) {
      if (I != 0)
        S += ", ";
      S += D.ParamTys[I].str();
    }
    S += ")\n";
  }
  if (!M.Globals.empty() || !M.Decls.empty())
    S += "\n";
  for (size_t I = 0; I != M.Funcs.size(); ++I) {
    if (I != 0)
      S += "\n";
    S += printFunction(M.Funcs[I]);
  }
  return S;
}
