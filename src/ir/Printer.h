//===- ir/Printer.h - Textual IR output ------------------------*- C++ -*-===//
///
/// \file
/// Renders modules and functions in the project's LLVM-flavoured textual
/// syntax. The output round-trips through ir::parseModule, which is how the
/// validation driver exercises the paper's file-based compiler/validator
/// split (Fig. 1).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_IR_PRINTER_H
#define CRELLVM_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace crellvm {
namespace ir {

/// Renders \p F as a "define" block.
std::string printFunction(const Function &F);

/// Renders the whole module: globals, declarations, then definitions.
std::string printModule(const Module &M);

} // namespace ir
} // namespace crellvm

#endif // CRELLVM_IR_PRINTER_H
