//===- ir/Instruction.cpp ---------------------------------------*- C++ -*-===//

#include "ir/Instruction.h"

#include <cassert>

using namespace crellvm;
using namespace crellvm::ir;

Instruction Instruction::binary(Opcode Op, std::string Result, Type Ty,
                                Value A, Value B) {
  assert(isBinaryOp(Op) && "not a binary opcode");
  assert((Ty.isInt() || Ty.isVec()) && "binary ops are integer-like");
  Instruction I;
  I.Op = Op;
  I.Ty = Ty;
  I.ResultReg = std::move(Result);
  I.Ops = {std::move(A), std::move(B)};
  return I;
}

Instruction Instruction::icmp(std::string Result, IcmpPred Pred, Value A,
                              Value B) {
  Instruction I;
  I.Op = Opcode::ICmp;
  I.Ty = Type::intTy(1);
  I.ResultReg = std::move(Result);
  I.Pred = Pred;
  I.Ops = {std::move(A), std::move(B)};
  return I;
}

Instruction Instruction::select(std::string Result, Type Ty, Value Cond,
                                Value TVal, Value FVal) {
  Instruction I;
  I.Op = Opcode::Select;
  I.Ty = Ty;
  I.ResultReg = std::move(Result);
  I.Ops = {std::move(Cond), std::move(TVal), std::move(FVal)};
  return I;
}

Instruction Instruction::cast(Opcode Op, std::string Result, Type DstTy,
                              Value A) {
  assert(isCast(Op) && "not a cast opcode");
  Instruction I;
  I.Op = Op;
  I.Ty = DstTy;
  I.ResultReg = std::move(Result);
  I.Ops = {std::move(A)};
  return I;
}

Instruction Instruction::allocaInst(std::string Result, Type ElemTy,
                                uint64_t Size) {
  assert(Size >= 1 && "alloca of zero cells");
  Instruction I;
  I.Op = Opcode::Alloca;
  I.Ty = ElemTy;
  I.ResultReg = std::move(Result);
  I.Size = Size;
  return I;
}

Instruction Instruction::load(std::string Result, Type Ty, Value Ptr) {
  Instruction I;
  I.Op = Opcode::Load;
  I.Ty = Ty;
  I.ResultReg = std::move(Result);
  I.Ops = {std::move(Ptr)};
  return I;
}

Instruction Instruction::store(Value Val, Value Ptr) {
  Instruction I;
  I.Op = Opcode::Store;
  I.Ty = Val.type();
  I.Ops = {std::move(Val), std::move(Ptr)};
  return I;
}

Instruction Instruction::gep(std::string Result, bool Inbounds, Value Base,
                             Value Idx) {
  Instruction I;
  I.Op = Opcode::Gep;
  I.Ty = Type::ptrTy();
  I.ResultReg = std::move(Result);
  I.Inbounds = Inbounds;
  I.Ops = {std::move(Base), std::move(Idx)};
  return I;
}

Instruction Instruction::call(std::string Result, Type RetTy,
                              std::string Callee, std::vector<Value> Args) {
  assert((RetTy.isVoid() ? Result.empty() : true) &&
         "void call cannot define a register");
  Instruction I;
  I.Op = Opcode::Call;
  I.Ty = RetTy;
  I.ResultReg = std::move(Result);
  I.Callee = std::move(Callee);
  I.Ops = std::move(Args);
  return I;
}

Instruction Instruction::br(std::string Dest) {
  Instruction I;
  I.Op = Opcode::Br;
  I.Succs = {std::move(Dest)};
  return I;
}

Instruction Instruction::condBr(Value Cond, std::string TrueDest,
                                std::string FalseDest) {
  Instruction I;
  I.Op = Opcode::CondBr;
  I.Ops = {std::move(Cond)};
  I.Succs = {std::move(TrueDest), std::move(FalseDest)};
  return I;
}

Instruction Instruction::switchInst(Value V, std::string DefaultDest,
                                    std::vector<int64_t> CaseVals,
                                    std::vector<std::string> CaseDests) {
  assert(CaseVals.size() == CaseDests.size() && "switch arms mismatch");
  Instruction I;
  I.Op = Opcode::Switch;
  I.Ops = {std::move(V)};
  I.Succs.push_back(std::move(DefaultDest));
  for (auto &D : CaseDests)
    I.Succs.push_back(std::move(D));
  I.CaseVals = std::move(CaseVals);
  return I;
}

Instruction Instruction::ret(std::optional<Value> V) {
  Instruction I;
  I.Op = Opcode::Ret;
  if (V) {
    I.Ty = V->type();
    I.Ops = {std::move(*V)};
  }
  return I;
}

Instruction Instruction::unreachable() {
  Instruction I;
  I.Op = Opcode::Unreachable;
  return I;
}

unsigned Instruction::replaceUses(const std::string &From, const Value &To) {
  unsigned N = 0;
  for (Value &V : Ops) {
    if (V.isReg() && V.regName() == From) {
      V = To;
      ++N;
    }
  }
  return N;
}

std::string Instruction::str() const {
  std::string S;
  if (!ResultReg.empty())
    S += "%" + ResultReg + " = ";
  switch (Op) {
  case Opcode::ICmp:
    S += "icmp " + icmpPredName(Pred) + " " + Ops[0].type().str() + " " +
         Ops[0].str() + ", " + Ops[1].str();
    break;
  case Opcode::Select:
    S += "select i1 " + Ops[0].str() + ", " + Ty.str() + " " + Ops[1].str() +
         ", " + Ops[2].str();
    break;
  case Opcode::Alloca:
    S += "alloca " + Ty.str() + ", " + std::to_string(Size);
    break;
  case Opcode::Load:
    S += "load " + Ty.str() + ", ptr " + Ops[0].str();
    break;
  case Opcode::Store:
    S += "store " + Ty.str() + " " + Ops[0].str() + ", ptr " + Ops[1].str();
    break;
  case Opcode::Gep:
    S += std::string("gep ") + (Inbounds ? "inbounds " : "") + "ptr " +
         Ops[0].str() + ", " + Ops[1].type().str() + " " + Ops[1].str();
    break;
  case Opcode::Call: {
    S += "call " + Ty.str() + " @" + Callee + "(";
    for (size_t I = 0; I != Ops.size(); ++I) {
      if (I != 0)
        S += ", ";
      S += Ops[I].type().str() + " " + Ops[I].str();
    }
    S += ")";
    break;
  }
  case Opcode::Br:
    S += "br label %" + Succs[0];
    break;
  case Opcode::CondBr:
    S += "br i1 " + Ops[0].str() + ", label %" + Succs[0] + ", label %" +
         Succs[1];
    break;
  case Opcode::Switch: {
    S += "switch " + Ops[0].type().str() + " " + Ops[0].str() +
         ", label %" + Succs[0] + " [";
    for (size_t I = 0; I != CaseVals.size(); ++I) {
      if (I != 0)
        S += " ";
      S += std::to_string(CaseVals[I]) + ": label %" + Succs[I + 1];
    }
    S += "]";
    break;
  }
  case Opcode::Ret:
    if (Ops.empty())
      S += "ret void";
    else
      S += "ret " + Ty.str() + " " + Ops[0].str();
    break;
  case Opcode::Unreachable:
    S += "unreachable";
    break;
  default: // Binary operations and casts.
    if (isBinaryOp(Op)) {
      S += opcodeName(Op) + " " + Ty.str() + " " + Ops[0].str() + ", " +
           Ops[1].str();
    } else {
      assert(isCast(Op) && "unhandled opcode in str()");
      S += opcodeName(Op) + " " + Ops[0].type().str() + " " + Ops[0].str() +
           " to " + Ty.str();
    }
    break;
  }
  return S;
}

bool Instruction::operator==(const Instruction &O) const {
  return Op == O.Op && Ty == O.Ty && ResultReg == O.ResultReg &&
         Pred == O.Pred && Inbounds == O.Inbounds && Size == O.Size &&
         Callee == O.Callee && Ops == O.Ops && Succs == O.Succs &&
         CaseVals == O.CaseVals;
}

const Value &Phi::incomingFor(const std::string &Pred) const {
  for (const auto &KV : Incoming)
    if (KV.first == Pred)
      return KV.second;
  assert(false && "phi has no incoming value for predecessor");
  static Value Dummy;
  return Dummy;
}

void Phi::setIncoming(const std::string &Pred, Value V) {
  for (auto &KV : Incoming) {
    if (KV.first == Pred) {
      KV.second = std::move(V);
      return;
    }
  }
  Incoming.emplace_back(Pred, std::move(V));
}

std::string Phi::str() const {
  std::string S = "%" + Result + " = phi " + Ty.str() + " ";
  for (size_t I = 0; I != Incoming.size(); ++I) {
    if (I != 0)
      S += ", ";
    S += "[ " + Incoming[I].second.str() + ", %" + Incoming[I].first + " ]";
  }
  return S;
}
