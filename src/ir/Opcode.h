//===- ir/Opcode.h - Instruction opcodes and icmp predicates ---*- C++ -*-===//
///
/// \file
/// Opcode and icmp-predicate enumerations shared by instructions and
/// constant expressions, plus name <-> enum conversions used by the parser,
/// printer, and proof serialization.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_IR_OPCODE_H
#define CRELLVM_IR_OPCODE_H

#include <cstdint>
#include <optional>
#include <string>

namespace crellvm {
namespace ir {

/// All instruction opcodes. Phi nodes are represented separately (they live
/// at block heads and execute simultaneously, see paper §4).
enum class Opcode : uint8_t {
  // Integer binary operations.
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  Shl,
  LShr,
  AShr,
  And,
  Or,
  Xor,
  // Comparison and selection.
  ICmp,
  Select,
  // Casts.
  Trunc,
  ZExt,
  SExt,
  PtrToInt,
  IntToPtr,
  Bitcast,
  // Memory.
  Alloca,
  Load,
  Store,
  Gep,
  // Calls.
  Call,
  // Terminators.
  Br,
  CondBr,
  Switch,
  Ret,
  Unreachable,
};

/// Signedness-aware comparison predicates.
enum class IcmpPred : uint8_t {
  Eq,
  Ne,
  Ugt,
  Uge,
  Ult,
  Ule,
  Sgt,
  Sge,
  Slt,
  Sle,
};

/// True for the thirteen integer binary operations.
bool isBinaryOp(Opcode Op);

/// True for operations that can raise undefined behavior on some operand
/// values (division/remainder by zero or signed overflow INT_MIN / -1).
bool mayTrap(Opcode Op);

/// True for Br/CondBr/Switch/Ret/Unreachable.
bool isTerminator(Opcode Op);

/// True for Trunc/ZExt/SExt/PtrToInt/IntToPtr/Bitcast.
bool isCast(Opcode Op);

/// Opcode spelling as it appears in the textual IR ("add", "icmp", ...).
std::string opcodeName(Opcode Op);

/// Inverse of opcodeName; std::nullopt for unknown spellings.
std::optional<Opcode> opcodeFromName(const std::string &Name);

/// Predicate spelling ("eq", "sle", ...).
std::string icmpPredName(IcmpPred P);

/// Inverse of icmpPredName.
std::optional<IcmpPred> icmpPredFromName(const std::string &Name);

} // namespace ir
} // namespace crellvm

#endif // CRELLVM_IR_OPCODE_H
