//===- ir/Type.h - IR types ------------------------------------*- C++ -*-===//
///
/// \file
/// Types of the reproduction IR: void, iN integers, opaque pointers, and
/// integer vectors. Vectors exist so that the workload can contain the
/// operations Vellvm does not support (the dominant source of the paper's
/// #NS counts); the validator refuses proofs about them.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_IR_TYPE_H
#define CRELLVM_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace crellvm {
namespace ir {

/// Discriminator for Type.
enum class TypeKind : uint8_t { Void, Int, Ptr, Vec };

/// A small value-semantics type descriptor.
class Type {
public:
  Type() : Kind(TypeKind::Void), Width(0), Lanes(0) {}

  static Type voidTy() { return Type(); }
  static Type intTy(unsigned Width) {
    assert(Width >= 1 && Width <= 64 && "unsupported integer width");
    Type T;
    T.Kind = TypeKind::Int;
    T.Width = Width;
    return T;
  }
  static Type ptrTy() {
    Type T;
    T.Kind = TypeKind::Ptr;
    return T;
  }
  static Type vecTy(unsigned Lanes, unsigned ElemWidth) {
    assert(Lanes >= 2 && "vector needs at least two lanes");
    Type T;
    T.Kind = TypeKind::Vec;
    T.Width = ElemWidth;
    T.Lanes = Lanes;
    return T;
  }

  TypeKind kind() const { return Kind; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isPtr() const { return Kind == TypeKind::Ptr; }
  bool isVec() const { return Kind == TypeKind::Vec; }

  /// Integer bit width (element width for vectors).
  unsigned intWidth() const {
    assert((isInt() || isVec()) && "not an integer-like type");
    return Width;
  }
  unsigned vecLanes() const {
    assert(isVec() && "not a vector type");
    return Lanes;
  }

  bool operator==(const Type &O) const {
    return Kind == O.Kind && Width == O.Width && Lanes == O.Lanes;
  }
  bool operator!=(const Type &O) const { return !(*this == O); }
  bool operator<(const Type &O) const {
    if (Kind != O.Kind)
      return Kind < O.Kind;
    if (Width != O.Width)
      return Width < O.Width;
    return Lanes < O.Lanes;
  }

  /// Renders the type in LLVM-like syntax: "void", "i32", "ptr",
  /// "<4 x i32>".
  std::string str() const {
    switch (Kind) {
    case TypeKind::Void:
      return "void";
    case TypeKind::Int:
      return "i" + std::to_string(Width);
    case TypeKind::Ptr:
      return "ptr";
    case TypeKind::Vec:
      return "<" + std::to_string(Lanes) + " x i" + std::to_string(Width) +
             ">";
    }
    return "<invalid>";
  }

private:
  TypeKind Kind;
  unsigned Width;
  unsigned Lanes;
};

} // namespace ir
} // namespace crellvm

#endif // CRELLVM_IR_TYPE_H
