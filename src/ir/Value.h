//===- ir/Value.h - Instruction operands ------------------------*- C++ -*-===//
///
/// \file
/// Operand values of the reproduction IR. A Value is a small value-semantics
/// object: a register reference, an integer constant, the address of a
/// global, undef, or a constant expression tree. Constant expressions exist
/// because the paper's second mem2reg bug (PR33673) hinges on LLVM's
/// assumption that constant expressions never raise undefined behavior,
/// which is false for expressions like `1 / ((int)G - (int)G)`.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_IR_VALUE_H
#define CRELLVM_IR_VALUE_H

#include "ir/Opcode.h"
#include "ir/Type.h"

#include <memory>
#include <string>
#include <vector>

namespace crellvm {
namespace ir {

class Value;

/// A constant-expression node: an operator applied to constant operands
/// (integer constants, globals, or nested constant expressions). Immutable
/// and shared.
struct ConstExprNode {
  Opcode Op;
  Type Ty;
  std::vector<Value> Ops;
};

/// An operand value.
class Value {
public:
  enum class Kind : uint8_t { Reg, ConstInt, Global, Undef, ConstExpr };

  Value() : K(Kind::Undef), Ty(Type::voidTy()) {}

  /// A reference to the SSA register \p Name (without the '%' sigil).
  static Value reg(std::string Name, Type Ty);
  /// The integer constant \p V of type \p Ty (stored sign-extended).
  static Value constInt(int64_t V, Type Ty);
  /// The address of the global \p Name (without the '@' sigil).
  static Value global(std::string Name);
  /// The undef value of type \p Ty.
  static Value undef(Type Ty);
  /// A constant expression node.
  static Value constExpr(Opcode Op, Type Ty, std::vector<Value> Ops);

  Kind kind() const { return K; }
  bool isReg() const { return K == Kind::Reg; }
  bool isConstInt() const { return K == Kind::ConstInt; }
  bool isGlobal() const { return K == Kind::Global; }
  bool isUndef() const { return K == Kind::Undef; }
  bool isConstExpr() const { return K == Kind::ConstExpr; }
  /// True for every kind except register references.
  bool isConstant() const { return K != Kind::Reg; }

  const Type &type() const { return Ty; }

  const std::string &regName() const;
  const std::string &globalName() const;
  int64_t intValue() const;
  const ConstExprNode &constExprNode() const;

  /// True if the value (transitively, through constant expressions) contains
  /// an operation that can raise undefined behavior when evaluated, e.g. a
  /// division whose divisor is not a nonzero literal. This is exactly the
  /// check LLVM's mem2reg was missing in PR33673.
  bool mayTrapWhenEvaluated() const;

  /// Renders the value ("%x", "42", "@G", "undef",
  /// "sdiv (i32 1, sub (i32 ptrtoint @G, i32 ptrtoint @G))").
  std::string str() const;

  /// Structural equality (register names compared literally).
  bool operator==(const Value &O) const;
  bool operator!=(const Value &O) const { return !(*this == O); }
  /// Structural total order, for use in ordered containers.
  bool operator<(const Value &O) const;

private:
  Kind K;
  Type Ty;
  std::string Name;
  int64_t Int = 0;
  std::shared_ptr<const ConstExprNode> CE;
};

} // namespace ir
} // namespace crellvm

#endif // CRELLVM_IR_VALUE_H
