//===- ir/Value.cpp ---------------------------------------------*- C++ -*-===//

#include "ir/Value.h"

#include <cassert>

using namespace crellvm;
using namespace crellvm::ir;

Value Value::reg(std::string Name, Type Ty) {
  Value V;
  V.K = Kind::Reg;
  V.Ty = Ty;
  V.Name = std::move(Name);
  return V;
}

Value Value::constInt(int64_t IntVal, Type Ty) {
  assert(Ty.isInt() && "constInt requires an integer type");
  Value V;
  V.K = Kind::ConstInt;
  V.Ty = Ty;
  // Canonicalize to the sign-extended truncation so that structurally
  // equal constants compare equal (e.g. i1 "1" and i1 "-1" are the same
  // bit pattern).
  unsigned W = Ty.intWidth();
  if (W < 64) {
    uint64_t Bits = static_cast<uint64_t>(IntVal) & ((uint64_t(1) << W) - 1);
    uint64_t Sign = uint64_t(1) << (W - 1);
    IntVal = static_cast<int64_t>(Bits ^ Sign) - static_cast<int64_t>(Sign);
  }
  V.Int = IntVal;
  return V;
}

Value Value::global(std::string Name) {
  Value V;
  V.K = Kind::Global;
  V.Ty = Type::ptrTy();
  V.Name = std::move(Name);
  return V;
}

Value Value::undef(Type Ty) {
  Value V;
  V.K = Kind::Undef;
  V.Ty = Ty;
  return V;
}

Value Value::constExpr(Opcode Op, Type Ty, std::vector<Value> Ops) {
  Value V;
  V.K = Kind::ConstExpr;
  V.Ty = Ty;
  auto Node = std::make_shared<ConstExprNode>();
  Node->Op = Op;
  Node->Ty = Ty;
  Node->Ops = std::move(Ops);
#ifndef NDEBUG
  for (const Value &O : Node->Ops)
    assert(O.isConstant() && "constant expression operands must be constant");
#endif
  V.CE = std::move(Node);
  return V;
}

const std::string &Value::regName() const {
  assert(K == Kind::Reg && "not a register");
  return Name;
}

const std::string &Value::globalName() const {
  assert(K == Kind::Global && "not a global");
  return Name;
}

int64_t Value::intValue() const {
  assert(K == Kind::ConstInt && "not an integer constant");
  return Int;
}

const ConstExprNode &Value::constExprNode() const {
  assert(K == Kind::ConstExpr && CE && "not a constant expression");
  return *CE;
}

bool Value::mayTrapWhenEvaluated() const {
  if (K != Kind::ConstExpr)
    return false;
  const ConstExprNode &Node = *CE;
  if (mayTrap(Node.Op)) {
    // A literal nonzero divisor cannot trap (we ignore the INT_MIN / -1
    // corner for literals below by requiring both operands literal).
    if (Node.Ops.size() == 2 && Node.Ops[1].isConstInt() &&
        Node.Ops[1].intValue() != 0 && Node.Ops[1].intValue() != -1)
      return Node.Ops[0].mayTrapWhenEvaluated();
    return true;
  }
  for (const Value &O : Node.Ops)
    if (O.mayTrapWhenEvaluated())
      return true;
  return false;
}

std::string Value::str() const {
  switch (K) {
  case Kind::Reg:
    return "%" + Name;
  case Kind::ConstInt:
    return std::to_string(Int);
  case Kind::Global:
    return "@" + Name;
  case Kind::Undef:
    return "undef";
  case Kind::ConstExpr: {
    const ConstExprNode &Node = *CE;
    std::string S = opcodeName(Node.Op) + " (";
    for (size_t I = 0; I != Node.Ops.size(); ++I) {
      if (I != 0)
        S += ", ";
      S += Node.Ops[I].type().str() + " " + Node.Ops[I].str();
    }
    S += ")";
    return S;
  }
  }
  return "<invalid>";
}

bool Value::operator==(const Value &O) const {
  if (K != O.K || Ty != O.Ty)
    return false;
  switch (K) {
  case Kind::Reg:
  case Kind::Global:
    return Name == O.Name;
  case Kind::ConstInt:
    return Int == O.Int;
  case Kind::Undef:
    return true;
  case Kind::ConstExpr: {
    const ConstExprNode &A = *CE, &B = *O.CE;
    return A.Op == B.Op && A.Ty == B.Ty && A.Ops == B.Ops;
  }
  }
  return false;
}

bool Value::operator<(const Value &O) const {
  if (K != O.K)
    return K < O.K;
  if (Ty != O.Ty)
    return Ty < O.Ty;
  switch (K) {
  case Kind::Reg:
  case Kind::Global:
    return Name < O.Name;
  case Kind::ConstInt:
    return Int < O.Int;
  case Kind::Undef:
    return false;
  case Kind::ConstExpr: {
    const ConstExprNode &A = *CE, &B = *O.CE;
    if (A.Op != B.Op)
      return A.Op < B.Op;
    return A.Ops < B.Ops;
  }
  }
  return false;
}
