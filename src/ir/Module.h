//===- ir/Module.h - Basic blocks, functions, modules ----------*- C++ -*-===//
///
/// \file
/// The container hierarchy of the reproduction IR. Everything has value
/// semantics: copying a Module deep-clones it, which is how the validation
/// driver snapshots source programs before running an optimizer on them.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_IR_MODULE_H
#define CRELLVM_IR_MODULE_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace crellvm {
namespace ir {

/// A basic block: zero or more phi nodes followed by instructions, the last
/// of which is a terminator (once the function is fully constructed).
struct BasicBlock {
  std::string Name;
  std::vector<Phi> Phis;
  std::vector<Instruction> Insts;

  const Instruction &terminator() const {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block has no terminator");
    return Insts.back();
  }

  /// The phi node defining \p Reg, or nullptr.
  const Phi *findPhi(const std::string &Reg) const;
  Phi *findPhi(const std::string &Reg);
};

/// A function parameter.
struct Param {
  std::string Name;
  Type Ty;
};

/// A function definition. Blocks[0] is the entry block.
class Function {
public:
  std::string Name;
  Type RetTy = Type::voidTy();
  std::vector<Param> Params;
  std::vector<BasicBlock> Blocks;

  const BasicBlock &entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front();
  }

  /// Block lookup by name; nullptr when absent. Linear scan: functions in
  /// this project are small and passes cache what they need.
  BasicBlock *getBlock(const std::string &Name);
  const BasicBlock *getBlock(const std::string &Name) const;

  /// True if \p Reg is one of the function's parameters.
  bool isParam(const std::string &Reg) const;

  /// Finds the unique defining location of register \p Reg. Returns true
  /// and fills \p BlockOut / \p IndexOut; IndexOut is ~0u for phi
  /// definitions and parameters have BlockOut empty. Thanks to SSA the
  /// definition is unique (paper footnote 6).
  bool findDef(const std::string &Reg, std::string &BlockOut,
               size_t &IndexOut) const;
};

/// A module-level global variable: a named memory block of Size cells of
/// ElemTy, zero-initialized. Globals are public memory (observable through
/// calls), which is what makes the alias-pruning logic of the checker
/// (Appendix H) interesting.
struct GlobalVar {
  std::string Name;
  Type ElemTy;
  uint64_t Size = 1;
};

/// An external function declaration. Calls to declared-only functions are
/// the observable events of the semantics.
struct FuncDecl {
  std::string Name;
  Type RetTy = Type::voidTy();
  std::vector<Type> ParamTys;
};

/// A translation unit.
class Module {
public:
  std::vector<GlobalVar> Globals;
  std::vector<FuncDecl> Decls;
  std::vector<Function> Funcs;

  Function *getFunction(const std::string &Name);
  const Function *getFunction(const std::string &Name) const;
  const GlobalVar *getGlobal(const std::string &Name) const;
  const FuncDecl *getDecl(const std::string &Name) const;
};

} // namespace ir
} // namespace crellvm

#endif // CRELLVM_IR_MODULE_H
