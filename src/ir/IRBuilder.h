//===- ir/IRBuilder.h - Convenience function construction ------*- C++ -*-===//
///
/// \file
/// A small builder for constructing functions programmatically, used by the
/// workload generator, the examples, and the tests. Every create* method
/// appends to the current block and returns the defined register as a
/// Value, so construction reads like straight-line code.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_IR_IRBUILDER_H
#define CRELLVM_IR_IRBUILDER_H

#include "ir/Module.h"

namespace crellvm {
namespace ir {

/// Appends instructions to basic blocks of a function under construction.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  /// Creates (or returns the existing) block named \p Name and makes it the
  /// insertion point.
  BasicBlock &block(const std::string &Name);

  /// Switches the insertion point to an existing block.
  void setInsertPoint(const std::string &Name);

  BasicBlock &current() {
    assert(Cur && "no insertion point");
    return *Cur;
  }

  // Value shorthands.
  Value i32(int64_t V) const { return Value::constInt(V, Type::intTy(32)); }
  Value i1(bool V) const { return Value::constInt(V, Type::intTy(1)); }
  Value reg(const std::string &Name, Type Ty) const {
    return Value::reg(Name, Ty);
  }

  // Instruction creation; each returns the defined register (where any).
  Value binary(Opcode Op, const std::string &R, Value A, Value B);
  Value icmp(const std::string &R, IcmpPred P, Value A, Value B);
  Value select(const std::string &R, Value C, Value T, Value FV);
  Value cast(Opcode Op, const std::string &R, Type DstTy, Value A);
  Value allocaInst(const std::string &R, Type ElemTy, uint64_t Size = 1);
  Value load(const std::string &R, Type Ty, Value Ptr);
  void store(Value V, Value Ptr);
  Value gep(const std::string &R, bool Inbounds, Value Base, Value Idx);
  Value call(const std::string &R, Type RetTy, const std::string &Callee,
             std::vector<Value> Args);
  void br(const std::string &Dest);
  void condBr(Value Cond, const std::string &T, const std::string &FDest);
  void switchTo(Value V, const std::string &Default,
                std::vector<int64_t> Vals, std::vector<std::string> Dests);
  void ret(Value V);
  void retVoid();
  Value phi(const std::string &R, Type Ty,
            std::vector<std::pair<std::string, Value>> Incoming);

private:
  Value append(Instruction I);

  Function &F;
  BasicBlock *Cur = nullptr;
};

} // namespace ir
} // namespace crellvm

#endif // CRELLVM_IR_IRBUILDER_H
