//===- ir/Parser.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Parser.h"

#include <cctype>

using namespace crellvm;
using namespace crellvm::ir;

namespace {

enum class TokKind : uint8_t {
  Eof,
  Ident,   // bare identifier / keyword
  LocalId, // %name
  GlobalId, // @name
  Int,     // integer literal
  Punct,   // single punctuation character
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntVal = 0;
  unsigned Line = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  Token next() {
    skipSpaceAndComments();
    Token T;
    T.Line = Line;
    if (Pos >= Text.size())
      return T;
    char C = Text[Pos];
    if (C == '%' || C == '@') {
      ++Pos;
      T.Kind = C == '%' ? TokKind::LocalId : TokKind::GlobalId;
      T.Text = lexName();
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && Pos + 1 < Text.size() &&
         std::isdigit(static_cast<unsigned char>(Text[Pos + 1])))) {
      size_t Start = Pos;
      if (C == '-')
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      T.Kind = TokKind::Int;
      T.Text = Text.substr(Start, Pos - Start);
      T.IntVal = std::strtoll(T.Text.c_str(), nullptr, 10);
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
        C == '.') {
      T.Kind = TokKind::Ident;
      T.Text = lexName();
      return T;
    }
    T.Kind = TokKind::Punct;
    T.Text = std::string(1, C);
    ++Pos;
    return T;
  }

private:
  void skipSpaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string lexName() {
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.' || C == '$')
        ++Pos;
      else
        break;
    }
    return Text.substr(Start, Pos - Start);
  }

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// Recursive-descent parser over the token stream.
class ModuleParser {
public:
  ModuleParser(const std::string &Text, std::string *Error)
      : Lex(Text), Error(Error) {
    advance();
  }

  std::optional<Module> run() {
    Module M;
    while (Tok.Kind != TokKind::Eof && !Failed) {
      if (Tok.Kind == TokKind::GlobalId) {
        if (!parseGlobal(M))
          return std::nullopt;
      } else if (isIdent("declare")) {
        if (!parseDeclare(M))
          return std::nullopt;
      } else if (isIdent("define")) {
        if (!parseDefine(M))
          return std::nullopt;
      } else {
        return fail("expected global, declare, or define"), std::nullopt;
      }
    }
    if (Failed)
      return std::nullopt;
    return M;
  }

private:
  void advance() { Tok = Lex.next(); }

  bool isIdent(const char *S) const {
    return Tok.Kind == TokKind::Ident && Tok.Text == S;
  }
  bool isPunct(char C) const {
    return Tok.Kind == TokKind::Punct && Tok.Text[0] == C;
  }

  void fail(const std::string &Msg) {
    if (!Failed && Error)
      *Error = "line " + std::to_string(Tok.Line) + ": " + Msg;
    Failed = true;
  }

  bool expectPunct(char C) {
    if (isPunct(C)) {
      advance();
      return true;
    }
    fail(std::string("expected '") + C + "', found '" + Tok.Text + "'");
    return false;
  }

  bool expectIdent(const char *S) {
    if (isIdent(S)) {
      advance();
      return true;
    }
    fail(std::string("expected '") + S + "', found '" + Tok.Text + "'");
    return false;
  }

  /// type := void | iN | ptr | '<' INT x iN '>'
  std::optional<Type> parseType() {
    if (isIdent("void")) {
      advance();
      return Type::voidTy();
    }
    if (isIdent("ptr")) {
      advance();
      return Type::ptrTy();
    }
    if (Tok.Kind == TokKind::Ident && Tok.Text.size() > 1 &&
        Tok.Text[0] == 'i') {
      unsigned W = static_cast<unsigned>(
          std::strtoul(Tok.Text.c_str() + 1, nullptr, 10));
      if (W >= 1 && W <= 64) {
        advance();
        return Type::intTy(W);
      }
    }
    if (isPunct('<')) {
      advance();
      if (Tok.Kind != TokKind::Int)
        return fail("expected vector lane count"), std::nullopt;
      unsigned Lanes = static_cast<unsigned>(Tok.IntVal);
      advance();
      if (!expectIdent("x"))
        return std::nullopt;
      auto Elem = parseType();
      if (!Elem || !Elem->isInt())
        return fail("expected integer vector element type"), std::nullopt;
      if (!expectPunct('>'))
        return std::nullopt;
      return Type::vecTy(Lanes, Elem->intWidth());
    }
    fail("expected type, found '" + Tok.Text + "'");
    return std::nullopt;
  }

  /// value at expected type Ty := %reg | INT | @global | undef
  ///                            | opcode '(' ty value {',' ty value} ')'
  std::optional<Value> parseValue(Type Ty) {
    if (Tok.Kind == TokKind::LocalId) {
      Value V = Value::reg(Tok.Text, Ty);
      advance();
      return V;
    }
    if (Tok.Kind == TokKind::Int) {
      if (!Ty.isInt())
        return fail("integer literal at non-integer type"), std::nullopt;
      Value V = Value::constInt(Tok.IntVal, Ty);
      advance();
      return V;
    }
    if (Tok.Kind == TokKind::GlobalId) {
      if (!Ty.isPtr())
        return fail("global address at non-pointer type"), std::nullopt;
      Value V = Value::global(Tok.Text);
      advance();
      return V;
    }
    if (isIdent("undef")) {
      advance();
      return Value::undef(Ty);
    }
    if (Tok.Kind == TokKind::Ident) {
      auto Op = opcodeFromName(Tok.Text);
      if (Op && (isBinaryOp(*Op) || isCast(*Op))) {
        advance();
        if (!expectPunct('('))
          return std::nullopt;
        std::vector<Value> Ops;
        while (!isPunct(')')) {
          if (!Ops.empty() && !expectPunct(','))
            return std::nullopt;
          auto OpTy = parseType();
          if (!OpTy)
            return std::nullopt;
          auto V = parseValue(*OpTy);
          if (!V)
            return std::nullopt;
          Ops.push_back(std::move(*V));
        }
        advance(); // ')'
        return Value::constExpr(*Op, Ty, std::move(Ops));
      }
    }
    fail("expected value, found '" + Tok.Text + "'");
    return std::nullopt;
  }

  bool parseGlobal(Module &M) {
    GlobalVar G;
    G.Name = Tok.Text;
    advance();
    if (!expectPunct('=') || !expectIdent("global"))
      return false;
    auto Ty = parseType();
    if (!Ty)
      return false;
    G.ElemTy = *Ty;
    if (!expectPunct(','))
      return false;
    if (Tok.Kind != TokKind::Int) {
      fail("expected global size");
      return false;
    }
    G.Size = static_cast<uint64_t>(Tok.IntVal);
    advance();
    M.Globals.push_back(std::move(G));
    return true;
  }

  bool parseDeclare(Module &M) {
    advance(); // declare
    FuncDecl D;
    auto Ret = parseType();
    if (!Ret)
      return false;
    D.RetTy = *Ret;
    if (Tok.Kind != TokKind::GlobalId) {
      fail("expected function name");
      return false;
    }
    D.Name = Tok.Text;
    advance();
    if (!expectPunct('('))
      return false;
    while (!isPunct(')')) {
      if (!D.ParamTys.empty() && !expectPunct(','))
        return false;
      auto Ty = parseType();
      if (!Ty)
        return false;
      D.ParamTys.push_back(*Ty);
    }
    advance(); // ')'
    M.Decls.push_back(std::move(D));
    return true;
  }

  bool parseDefine(Module &M) {
    advance(); // define
    Function F;
    auto Ret = parseType();
    if (!Ret)
      return false;
    F.RetTy = *Ret;
    if (Tok.Kind != TokKind::GlobalId) {
      fail("expected function name");
      return false;
    }
    F.Name = Tok.Text;
    advance();
    if (!expectPunct('('))
      return false;
    while (!isPunct(')')) {
      if (!F.Params.empty() && !expectPunct(','))
        return false;
      auto Ty = parseType();
      if (!Ty)
        return false;
      if (Tok.Kind != TokKind::LocalId) {
        fail("expected parameter name");
        return false;
      }
      F.Params.push_back({Tok.Text, *Ty});
      advance();
    }
    advance(); // ')'
    if (!expectPunct('{'))
      return false;
    while (!isPunct('}')) {
      if (!parseBlock(F))
        return false;
    }
    advance(); // '}'
    M.Funcs.push_back(std::move(F));
    return true;
  }

  bool parseBlock(Function &F) {
    if (Tok.Kind != TokKind::Ident) {
      fail("expected block label");
      return false;
    }
    BasicBlock B;
    B.Name = Tok.Text;
    advance();
    if (!expectPunct(':'))
      return false;
    while (!isPunct('}') && !Failed) {
      // A bare identifier followed by ':' starts the next block.
      if (Tok.Kind == TokKind::Ident) {
        auto Op = opcodeFromName(Tok.Text);
        if (!Op && Tok.Text != "phi")
          break; // next block label
      }
      if (!parseInstructionInto(B))
        return false;
    }
    F.Blocks.push_back(std::move(B));
    return true;
  }

  bool parseInstructionInto(BasicBlock &B) {
    std::string Result;
    if (Tok.Kind == TokKind::LocalId) {
      Result = Tok.Text;
      advance();
      if (!expectPunct('='))
        return false;
    }
    if (Tok.Kind != TokKind::Ident) {
      fail("expected opcode");
      return false;
    }
    std::string OpName = Tok.Text;
    advance();

    if (OpName == "phi")
      return parsePhi(B, Result);

    auto OpOpt = opcodeFromName(OpName);
    if (!OpOpt) {
      fail("unknown opcode '" + OpName + "'");
      return false;
    }
    Opcode Op = *OpOpt;

    if (isBinaryOp(Op)) {
      auto Ty = parseType();
      if (!Ty)
        return false;
      auto A = parseValue(*Ty);
      if (!A || !expectPunct(','))
        return false;
      auto Bv = parseValue(*Ty);
      if (!Bv)
        return false;
      B.Insts.push_back(Instruction::binary(Op, Result, *Ty, *A, *Bv));
      return true;
    }
    if (isCast(Op)) {
      auto SrcTy = parseType();
      if (!SrcTy)
        return false;
      auto A = parseValue(*SrcTy);
      if (!A || !expectIdent("to"))
        return false;
      auto DstTy = parseType();
      if (!DstTy)
        return false;
      B.Insts.push_back(Instruction::cast(Op, Result, *DstTy, *A));
      return true;
    }

    switch (Op) {
    case Opcode::ICmp: {
      if (Tok.Kind != TokKind::Ident) {
        fail("expected icmp predicate");
        return false;
      }
      auto Pred = icmpPredFromName(Tok.Text);
      if (!Pred) {
        fail("unknown icmp predicate '" + Tok.Text + "'");
        return false;
      }
      advance();
      auto Ty = parseType();
      if (!Ty)
        return false;
      auto A = parseValue(*Ty);
      if (!A || !expectPunct(','))
        return false;
      auto Bv = parseValue(*Ty);
      if (!Bv)
        return false;
      B.Insts.push_back(Instruction::icmp(Result, *Pred, *A, *Bv));
      return true;
    }
    case Opcode::Select: {
      if (!expectIdent("i1"))
        return false;
      auto Cond = parseValue(Type::intTy(1));
      if (!Cond || !expectPunct(','))
        return false;
      auto Ty = parseType();
      if (!Ty)
        return false;
      auto TV = parseValue(*Ty);
      if (!TV || !expectPunct(','))
        return false;
      auto FV = parseValue(*Ty);
      if (!FV)
        return false;
      B.Insts.push_back(Instruction::select(Result, *Ty, *Cond, *TV, *FV));
      return true;
    }
    case Opcode::Alloca: {
      auto Ty = parseType();
      if (!Ty || !expectPunct(','))
        return false;
      if (Tok.Kind != TokKind::Int) {
        fail("expected alloca size");
        return false;
      }
      uint64_t Size = static_cast<uint64_t>(Tok.IntVal);
      advance();
      B.Insts.push_back(Instruction::allocaInst(Result, *Ty, Size));
      return true;
    }
    case Opcode::Load: {
      auto Ty = parseType();
      if (!Ty || !expectPunct(',') || !expectIdent("ptr"))
        return false;
      auto Ptr = parseValue(Type::ptrTy());
      if (!Ptr)
        return false;
      B.Insts.push_back(Instruction::load(Result, *Ty, *Ptr));
      return true;
    }
    case Opcode::Store: {
      auto Ty = parseType();
      if (!Ty)
        return false;
      auto V = parseValue(*Ty);
      if (!V || !expectPunct(',') || !expectIdent("ptr"))
        return false;
      auto Ptr = parseValue(Type::ptrTy());
      if (!Ptr)
        return false;
      B.Insts.push_back(Instruction::store(*V, *Ptr));
      return true;
    }
    case Opcode::Gep: {
      bool Inbounds = false;
      if (isIdent("inbounds")) {
        Inbounds = true;
        advance();
      }
      if (!expectIdent("ptr"))
        return false;
      auto Base = parseValue(Type::ptrTy());
      if (!Base || !expectPunct(','))
        return false;
      auto IdxTy = parseType();
      if (!IdxTy || !IdxTy->isInt()) {
        fail("gep index must be an integer");
        return false;
      }
      auto Idx = parseValue(*IdxTy);
      if (!Idx)
        return false;
      B.Insts.push_back(Instruction::gep(Result, Inbounds, *Base, *Idx));
      return true;
    }
    case Opcode::Call: {
      auto RetTy = parseType();
      if (!RetTy)
        return false;
      if (Tok.Kind != TokKind::GlobalId) {
        fail("expected callee name");
        return false;
      }
      std::string Callee = Tok.Text;
      advance();
      if (!expectPunct('('))
        return false;
      std::vector<Value> Args;
      while (!isPunct(')')) {
        if (!Args.empty() && !expectPunct(','))
          return false;
        auto Ty = parseType();
        if (!Ty)
          return false;
        auto V = parseValue(*Ty);
        if (!V)
          return false;
        Args.push_back(std::move(*V));
      }
      advance(); // ')'
      B.Insts.push_back(
          Instruction::call(Result, *RetTy, Callee, std::move(Args)));
      return true;
    }
    case Opcode::Br: {
      if (isIdent("label")) {
        advance();
        if (Tok.Kind != TokKind::LocalId) {
          fail("expected branch target");
          return false;
        }
        B.Insts.push_back(Instruction::br(Tok.Text));
        advance();
        return true;
      }
      if (!expectIdent("i1"))
        return false;
      auto Cond = parseValue(Type::intTy(1));
      if (!Cond || !expectPunct(',') || !expectIdent("label"))
        return false;
      if (Tok.Kind != TokKind::LocalId) {
        fail("expected branch target");
        return false;
      }
      std::string T = Tok.Text;
      advance();
      if (!expectPunct(',') || !expectIdent("label"))
        return false;
      if (Tok.Kind != TokKind::LocalId) {
        fail("expected branch target");
        return false;
      }
      std::string FDest = Tok.Text;
      advance();
      B.Insts.push_back(Instruction::condBr(*Cond, T, FDest));
      return true;
    }
    case Opcode::Switch: {
      auto Ty = parseType();
      if (!Ty)
        return false;
      auto V = parseValue(*Ty);
      if (!V || !expectPunct(',') || !expectIdent("label"))
        return false;
      if (Tok.Kind != TokKind::LocalId) {
        fail("expected switch default target");
        return false;
      }
      std::string Default = Tok.Text;
      advance();
      if (!expectPunct('['))
        return false;
      std::vector<int64_t> Vals;
      std::vector<std::string> Dests;
      while (!isPunct(']')) {
        if (Tok.Kind != TokKind::Int) {
          fail("expected case value");
          return false;
        }
        Vals.push_back(Tok.IntVal);
        advance();
        if (!expectPunct(':') || !expectIdent("label"))
          return false;
        if (Tok.Kind != TokKind::LocalId) {
          fail("expected case target");
          return false;
        }
        Dests.push_back(Tok.Text);
        advance();
      }
      advance(); // ']'
      B.Insts.push_back(Instruction::switchInst(*V, Default, std::move(Vals),
                                                std::move(Dests)));
      return true;
    }
    case Opcode::Ret: {
      if (isIdent("void")) {
        advance();
        B.Insts.push_back(Instruction::ret(std::nullopt));
        return true;
      }
      auto Ty = parseType();
      if (!Ty)
        return false;
      auto V = parseValue(*Ty);
      if (!V)
        return false;
      B.Insts.push_back(Instruction::ret(*V));
      return true;
    }
    case Opcode::Unreachable:
      B.Insts.push_back(Instruction::unreachable());
      return true;
    default:
      fail("unexpected opcode '" + OpName + "'");
      return false;
    }
  }

  bool parsePhi(BasicBlock &B, const std::string &Result) {
    auto Ty = parseType();
    if (!Ty)
      return false;
    Phi P;
    P.Result = Result;
    P.Ty = *Ty;
    while (true) {
      if (!expectPunct('['))
        return false;
      auto V = parseValue(*Ty);
      if (!V || !expectPunct(','))
        return false;
      if (Tok.Kind != TokKind::LocalId) {
        fail("expected phi predecessor label");
        return false;
      }
      P.Incoming.emplace_back(Tok.Text, std::move(*V));
      advance();
      if (!expectPunct(']'))
        return false;
      if (!isPunct(','))
        break;
      advance();
    }
    B.Phis.push_back(std::move(P));
    return true;
  }

  Lexer Lex;
  Token Tok;
  std::string *Error;
  bool Failed = false;
};

} // namespace

std::optional<Module> crellvm::ir::parseModule(const std::string &Text,
                                               std::string *Error) {
  if (Error)
    Error->clear();
  return ModuleParser(Text, Error).run();
}

std::optional<Instruction>
crellvm::ir::parseInstructionText(const std::string &Text,
                                  std::string *Error) {
  // Reuse the module parser by wrapping the instruction in a one-block
  // function; the trailing unreachable keeps the wrapper well-formed when
  // the instruction itself is not a terminator.
  std::string Wrapped =
      "define void @__parse_one() {\nb:\n  " + Text + "\n  unreachable\n}\n";
  auto M = parseModule(Wrapped, Error);
  if (!M || M->Funcs.empty() || M->Funcs[0].Blocks.empty())
    return std::nullopt;
  const BasicBlock &B = M->Funcs[0].Blocks[0];
  if (!B.Phis.empty()) {
    if (Error)
      *Error = "phi nodes are not line commands";
    return std::nullopt;
  }
  if (B.Insts.empty())
    return std::nullopt;
  return B.Insts.front();
}
