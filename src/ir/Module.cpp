//===- ir/Module.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Module.h"

using namespace crellvm;
using namespace crellvm::ir;

const Phi *BasicBlock::findPhi(const std::string &Reg) const {
  for (const Phi &P : Phis)
    if (P.Result == Reg)
      return &P;
  return nullptr;
}

Phi *BasicBlock::findPhi(const std::string &Reg) {
  for (Phi &P : Phis)
    if (P.Result == Reg)
      return &P;
  return nullptr;
}

BasicBlock *Function::getBlock(const std::string &BlockName) {
  for (BasicBlock &B : Blocks)
    if (B.Name == BlockName)
      return &B;
  return nullptr;
}

const BasicBlock *Function::getBlock(const std::string &BlockName) const {
  return const_cast<Function *>(this)->getBlock(BlockName);
}

bool Function::isParam(const std::string &Reg) const {
  for (const Param &P : Params)
    if (P.Name == Reg)
      return true;
  return false;
}

bool Function::findDef(const std::string &Reg, std::string &BlockOut,
                       size_t &IndexOut) const {
  if (isParam(Reg)) {
    BlockOut.clear();
    IndexOut = ~size_t(0);
    return true;
  }
  for (const BasicBlock &B : Blocks) {
    for (const Phi &P : B.Phis) {
      if (P.Result == Reg) {
        BlockOut = B.Name;
        IndexOut = ~size_t(0);
        return true;
      }
    }
    for (size_t I = 0, E = B.Insts.size(); I != E; ++I) {
      auto R = B.Insts[I].result();
      if (R && *R == Reg) {
        BlockOut = B.Name;
        IndexOut = I;
        return true;
      }
    }
  }
  return false;
}

Function *Module::getFunction(const std::string &Name) {
  for (Function &F : Funcs)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const Function *Module::getFunction(const std::string &Name) const {
  return const_cast<Module *>(this)->getFunction(Name);
}

const GlobalVar *Module::getGlobal(const std::string &Name) const {
  for (const GlobalVar &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

const FuncDecl *Module::getDecl(const std::string &Name) const {
  for (const FuncDecl &D : Decls)
    if (D.Name == Name)
      return &D;
  return nullptr;
}
