//===- ir/IRBuilder.cpp -----------------------------------------*- C++ -*-===//

#include "ir/IRBuilder.h"

using namespace crellvm;
using namespace crellvm::ir;

BasicBlock &IRBuilder::block(const std::string &Name) {
  if (BasicBlock *B = F.getBlock(Name)) {
    Cur = B;
    return *B;
  }
  F.Blocks.push_back(BasicBlock{Name, {}, {}});
  // Adding a block may reallocate; re-resolve the pointer.
  Cur = &F.Blocks.back();
  return *Cur;
}

void IRBuilder::setInsertPoint(const std::string &Name) {
  Cur = F.getBlock(Name);
  assert(Cur && "unknown block");
}

Value IRBuilder::append(Instruction I) {
  assert(Cur && "no insertion point");
  auto R = I.result();
  Type Ty = I.type();
  Cur->Insts.push_back(std::move(I));
  if (R)
    return Value::reg(*R, Ty);
  return Value();
}

Value IRBuilder::binary(Opcode Op, const std::string &R, Value A, Value B) {
  Type Ty = A.type();
  return append(Instruction::binary(Op, R, Ty, std::move(A), std::move(B)));
}

Value IRBuilder::icmp(const std::string &R, IcmpPred P, Value A, Value B) {
  return append(Instruction::icmp(R, P, std::move(A), std::move(B)));
}

Value IRBuilder::select(const std::string &R, Value C, Value T, Value FV) {
  Type Ty = T.type();
  return append(
      Instruction::select(R, Ty, std::move(C), std::move(T), std::move(FV)));
}

Value IRBuilder::cast(Opcode Op, const std::string &R, Type DstTy, Value A) {
  return append(Instruction::cast(Op, R, DstTy, std::move(A)));
}

Value IRBuilder::allocaInst(const std::string &R, Type ElemTy, uint64_t Size) {
  return append(Instruction::allocaInst(R, ElemTy, Size));
}

Value IRBuilder::load(const std::string &R, Type Ty, Value Ptr) {
  return append(Instruction::load(R, Ty, std::move(Ptr)));
}

void IRBuilder::store(Value V, Value Ptr) {
  append(Instruction::store(std::move(V), std::move(Ptr)));
}

Value IRBuilder::gep(const std::string &R, bool Inbounds, Value Base,
                     Value Idx) {
  return append(
      Instruction::gep(R, Inbounds, std::move(Base), std::move(Idx)));
}

Value IRBuilder::call(const std::string &R, Type RetTy,
                      const std::string &Callee, std::vector<Value> Args) {
  return append(Instruction::call(R, RetTy, Callee, std::move(Args)));
}

void IRBuilder::br(const std::string &Dest) {
  append(Instruction::br(Dest));
}

void IRBuilder::condBr(Value Cond, const std::string &T,
                       const std::string &FDest) {
  append(Instruction::condBr(std::move(Cond), T, FDest));
}

void IRBuilder::switchTo(Value V, const std::string &Default,
                         std::vector<int64_t> Vals,
                         std::vector<std::string> Dests) {
  append(Instruction::switchInst(std::move(V), Default, std::move(Vals),
                                 std::move(Dests)));
}

void IRBuilder::ret(Value V) { append(Instruction::ret(std::move(V))); }

void IRBuilder::retVoid() { append(Instruction::ret(std::nullopt)); }

Value IRBuilder::phi(const std::string &R, Type Ty,
                     std::vector<std::pair<std::string, Value>> Incoming) {
  assert(Cur && "no insertion point");
  Cur->Phis.push_back(Phi{R, Ty, std::move(Incoming)});
  return Value::reg(R, Ty);
}
