//===- cache/Verdict.cpp ----------------------------------------*- C++ -*-===//

#include "cache/Verdict.h"

#include "json/Json.h"

using namespace crellvm;
using namespace crellvm::cache;

std::string crellvm::cache::verdictToBytes(const Verdict &V) {
  json::Value Root = json::Value::object();
  Root.set("v", json::Value(int64_t(1)));
  Root.set("diff_mismatches", json::Value(V.DiffMismatches));
  json::Value Funcs = json::Value::array();
  for (const auto &KV : V.Checker.Functions) {
    json::Value F = json::Value::object();
    F.set("name", json::Value(KV.first));
    F.set("status", json::Value(int64_t(static_cast<uint8_t>(KV.second.Status))));
    F.set("where", json::Value(KV.second.Where));
    F.set("reason", json::Value(KV.second.Reason));
    Funcs.push(std::move(F));
  }
  Root.set("functions", std::move(Funcs));
  return Root.write();
}

std::optional<Verdict>
crellvm::cache::verdictFromBytes(const std::string &Bytes,
                                 std::string *Error) {
  auto Fail = [&](const char *Why) -> std::optional<Verdict> {
    if (Error)
      *Error = Why;
    return std::nullopt;
  };
  auto Root = json::parse(Bytes, Error);
  if (!Root)
    return std::nullopt;
  if (Root->kind() != json::Value::Kind::Object)
    return Fail("verdict: not an object");
  const json::Value *Ver = Root->find("v");
  if (!Ver || Ver->kind() != json::Value::Kind::Int || Ver->getInt() != 1)
    return Fail("verdict: missing or unsupported version");
  const json::Value *Diff = Root->find("diff_mismatches");
  if (!Diff || Diff->kind() != json::Value::Kind::Int || Diff->getInt() < 0)
    return Fail("verdict: bad diff_mismatches");
  const json::Value *Funcs = Root->find("functions");
  if (!Funcs || Funcs->kind() != json::Value::Kind::Array)
    return Fail("verdict: missing functions");

  Verdict V;
  V.DiffMismatches = static_cast<uint64_t>(Diff->getInt());
  for (const json::Value &F : Funcs->elements()) {
    if (F.kind() != json::Value::Kind::Object)
      return Fail("verdict: function entry not an object");
    const json::Value *Name = F.find("name");
    const json::Value *Status = F.find("status");
    const json::Value *Where = F.find("where");
    const json::Value *Reason = F.find("reason");
    if (!Name || Name->kind() != json::Value::Kind::String || !Status ||
        Status->kind() != json::Value::Kind::Int || !Where ||
        Where->kind() != json::Value::Kind::String || !Reason ||
        Reason->kind() != json::Value::Kind::String)
      return Fail("verdict: malformed function entry");
    int64_t St = Status->getInt();
    if (St < 0 ||
        St > static_cast<int64_t>(checker::ValidationStatus::NotSupported))
      return Fail("verdict: status out of range");
    checker::FunctionResult R;
    R.Status = static_cast<checker::ValidationStatus>(St);
    R.Where = Where->getString();
    R.Reason = Reason->getString();
    V.Checker.Functions.emplace(Name->getString(), std::move(R));
  }
  return V;
}
