//===- cache/DiskStore.h - Content-addressed on-disk store ------*- C++ -*-===//
///
/// \file
/// The persistent tier of the validation cache: a content-addressed
/// object store under a cache directory,
///
///   <dir>/objects/<hh>/<fingerprint-hex>.v1   (hh = first two hex digits)
///   <dir>/index                               (one "hex size tick" line
///                                              per live object)
///
/// designed for CI-style reuse across processes:
///
///  - **Atomic writes.** Objects and the index are written to a unique
///    temp file in the same directory and `rename(2)`d into place, so a
///    crashed or concurrent writer can never leave a half-written object
///    under its final name (POSIX rename is atomic).
///  - **Corruption tolerance.** Every load re-checks the magic header,
///    the embedded fingerprint, and the payload length; any mismatch —
///    truncation, garbage, a stray file — is reported as a miss, never an
///    error or a crash. A malformed index line is skipped; an index that
///    went missing while objects remain is rebuilt by scanning the
///    objects directory (counted in IndexRebuilds). A fresh or empty
///    cache directory is the normal cold state and triggers no rebuild,
///    no warning, and no writes.
///  - **Single-writer lock.** A read-write store acquires `<dir>/lock`
///    (O_CREAT|O_EXCL, pid inside) on open and releases it on close, so
///    two processes sharing a cache directory cannot interleave
///    evictions and corrupt each other's index. A second writer is
///    refused cleanly: it degrades to the unusable state (every load a
///    miss, every store an error) instead of corrupting anything. A lock
///    left behind by a crashed process is detected (its pid is gone) and
///    stolen; the steal re-verifies the pid breadcrumb both immediately
///    before the unlink and after the O_EXCL create, so two processes
///    racing to steal the same stale lock can never both win (the loser
///    observes a breadcrumb that is not its own and backs off without
///    unlinking the winner's lock). Read-only stores skip the lock
///    entirely — they never write, so they can safely share a directory
///    with one writer.
///  - **Shared mode.** With DiskStoreOptions::Shared many read-write
///    stores (cluster members) publish into one directory. Opening never
///    fails on the lock: the instance opportunistically takes the writer
///    *lease* (the same `<dir>/lock`) and stays fully usable without it.
///    Loads are always lock-free — `load()` probes the content-addressed
///    object path directly, so an artifact published by any member is
///    immediately visible to every other. Stores always write the object
///    atomically (two members racing on one fingerprint write identical
///    bytes, and rename picks either); only the lease holder evicts and
///    rewrites the index, *merging* index lines appended by the others
///    first, while non-holders append their line with one O_APPEND write
///    (a torn appended line is skipped by the index parser) and re-try
///    the lease on each store so the lease rotates when its holder exits.
///  - **Read-only mode.** With DiskStoreOptions::ReadOnly the store is a
///    pure reader: it creates no directories, writes no index, deletes no
///    corrupt files, and store() refuses without counting an error, so
///    Stores/StoreErrors/Evictions stay zero for the process lifetime.
///  - **Size-bounded eviction.** Stores beyond \p MaxBytes evict the
///    least-recently-stored objects (index order), so the cache directory
///    cannot grow without bound.
///
/// The store never interprets payloads; callers decide what the bytes
/// mean (cache/Verdict.h). All methods are thread-safe.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CACHE_DISKSTORE_H
#define CRELLVM_CACHE_DISKSTORE_H

#include "cache/Fingerprint.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace crellvm {
namespace cache {

struct DiskStoreOptions {
  std::string Dir;
  /// Total payload budget; stores evict oldest entries beyond it.
  uint64_t MaxBytes = 256ull << 20;
  /// Read-only: the store never touches the filesystem beyond reads — no
  /// directory creation, no index (re)writes, no corrupt-file removal,
  /// and store() refuses without counting an error. A missing or empty
  /// directory is simply an always-miss store, not a condition to repair.
  bool ReadOnly = false;
  /// Shared multi-writer mode (cluster members publishing into one
  /// directory; mutually exclusive with ReadOnly, which wins if both are
  /// set). Opening never fails on the writer lock; see the file comment
  /// for the lease protocol.
  bool Shared = false;
};

struct DiskStoreCounters {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t CorruptEntries = 0; ///< loads rejected by header/length checks
  /// Loads that failed although the object file exists — an I/O fault
  /// (EIO, injected disk.read), not a plain miss. Together with
  /// CorruptEntries and StoreErrors this feeds the validation cache's
  /// degradation ladder (rw -> ro -> off, ValidationCache.h).
  uint64_t ReadFaults = 0;
  uint64_t Stores = 0;
  uint64_t StoreErrors = 0;
  uint64_t Evictions = 0;
  /// Index recoveries that actually found orphaned objects. A fresh or
  /// empty cache directory is normal, not a recovery, and never bumps
  /// this (or writes an index).
  uint64_t IndexRebuilds = 0;
  /// Shared mode only: index lines appended without the writer lease.
  uint64_t SharedAppends = 0;
  /// Shared mode only: entries another member published that this
  /// instance merged into its index while holding the lease.
  uint64_t SharedMerged = 0;
};

class DiskStore {
public:
  explicit DiskStore(DiskStoreOptions Opts);

  /// Releases the writer lock (read-write mode) so the next process can
  /// acquire the directory.
  ~DiskStore();

  DiskStore(const DiskStore &) = delete;
  DiskStore &operator=(const DiskStore &) = delete;

  /// False when the cache directory could not be created or (read-write
  /// mode) another live process holds the writer lock; every load then
  /// misses and every store reports an error.
  bool ok() const { return Usable; }

  /// True when this instance holds the directory's writer lock. Always
  /// false in read-only mode, which takes no lock.
  bool lockHeld() const { return LockFd >= 0; }
  const std::string &dir() const { return Opts.Dir; }

  /// Returns the payload stored under \p FP; std::nullopt on miss or on a
  /// corrupt entry (counted separately, treated as a miss).
  std::optional<std::string> load(const Fingerprint &FP);

  /// Atomically persists \p Bytes under \p FP; returns the number of
  /// entries evicted (0 normally, also 0 on error — check counters).
  uint64_t store(const Fingerprint &FP, const std::string &Bytes);

  DiskStoreCounters counters() const;
  uint64_t totalBytes() const;
  size_t numEntries() const;

private:
  struct Entry {
    Fingerprint FP;
    uint64_t Size = 0;
    uint64_t Tick = 0; ///< logical store time; smaller = older
  };

  std::string objectPath(const Fingerprint &FP) const;
  std::string lockPath() const;
  bool acquireDirLock();
  void releaseDirLock();
  void loadIndexLocked();
  void rebuildIndexFromObjectsLocked();
  bool writeIndexLocked();
  void evictLocked(uint64_t &Evicted);
  /// Shared mode, lease held: folds index lines appended by other
  /// members (entries we have not seen whose objects exist) into
  /// Entries, so the next full rewrite does not drop their work.
  void mergeForeignIndexLinesLocked();
  /// Shared mode, no lease: publishes one index line with a single
  /// O_APPEND write. Best-effort; the object itself is already durable.
  void appendIndexLineLocked(const Entry &E);

  DiskStoreOptions Opts;
  bool Usable = false;
  int LockFd = -1; ///< open fd of <dir>/lock while held (rw mode only)

  mutable std::mutex M;
  std::vector<Entry> Entries; ///< index order = store order (oldest first)
  uint64_t Bytes = 0;
  uint64_t NextTick = 1;
  DiskStoreCounters Stats;
};

} // namespace cache
} // namespace crellvm

#endif // CRELLVM_CACHE_DISKSTORE_H
