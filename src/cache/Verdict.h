//===- cache/Verdict.h - Serialized checker verdicts ------------*- C++ -*-===//
///
/// \file
/// The value type of the validation cache: everything `runPassValidated`
/// derives deterministically from the fingerprinted inputs —
///
///   - the checker's per-function result map (status / where / reason),
///   - whether the llvm-diff analog found the plain and proof-generating
///     compilers disagreeing (a function of the same inputs: src, pass,
///     bug config determine the plain compiler's output).
///
/// NOT included, deliberately: oracle outcomes. The differential-execution
/// oracle probes the *trusted base itself* (DiffOracle.h) — memoizing it
/// would let a cached "no divergence" mask a later-weakened checker, so
/// the driver re-runs the oracle even on cache hits.
///
/// Encoded as JSON (json/Json.h) with a version tag; the decoder is total
/// over untrusted bytes and rejects anything malformed, so a corrupt or
/// version-skewed cache entry degrades to a miss.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CACHE_VERDICT_H
#define CRELLVM_CACHE_VERDICT_H

#include "checker/Validator.h"

#include <optional>
#include <string>

namespace crellvm {
namespace cache {

/// The memoized outcome of one pass-level validation.
struct Verdict {
  checker::ModuleResult Checker;
  uint64_t DiffMismatches = 0;
};

std::string verdictToBytes(const Verdict &V);

/// Decodes bytes produced by verdictToBytes; std::nullopt (with a message
/// in \p Error) on malformed or version-skewed input.
std::optional<Verdict> verdictFromBytes(const std::string &Bytes,
                                        std::string *Error = nullptr);

} // namespace cache
} // namespace crellvm

#endif // CRELLVM_CACHE_VERDICT_H
