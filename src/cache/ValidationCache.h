//===- cache/ValidationCache.h - Two-tier verdict cache ---------*- C++ -*-===//
///
/// \file
/// The facade the validation driver talks to: a sharded in-memory LRU
/// (cache/MemCache.h) in front of an optional content-addressed disk
/// store (cache/DiskStore.h), with an off / read-only / read-write
/// policy. Lookups consult memory first, then disk (promoting disk hits
/// into memory); read-write stores populate both tiers. Corrupt bytes
/// from either tier decode to a miss (cache/Verdict.h), never an error.
///
/// The cache never decides anything: the checker still produces every
/// verdict, the cache only replays verdicts the checker already produced
/// for byte-identical inputs (DESIGN.md §10). All methods are
/// thread-safe; one instance is shared by every worker of a batch run.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CACHE_VALIDATIONCACHE_H
#define CRELLVM_CACHE_VALIDATIONCACHE_H

#include "cache/DiskStore.h"
#include "cache/MemCache.h"
#include "cache/Verdict.h"

#include <atomic>
#include <memory>

namespace crellvm {
namespace cache {

enum class CachePolicy : uint8_t {
  Off,       ///< never consulted
  ReadOnly,  ///< hits are replayed; misses validate but do not populate
  ReadWrite, ///< misses validate and populate both tiers
};

/// Parses "off" / "ro" / "rw"; std::nullopt otherwise.
std::optional<CachePolicy> parseCachePolicy(const std::string &S);

struct ValidationCacheOptions {
  CachePolicy Policy = CachePolicy::Off;
  /// Disk store directory; empty = memory-only cache.
  std::string Dir;
  uint64_t MaxDiskBytes = 256ull << 20;
  size_t MemEntries = 1 << 16;
  unsigned MemShards = 16;
  /// Open the disk tier in shared multi-writer mode (DiskStore.h): many
  /// cluster members publish verdicts into one directory, so a MemCache
  /// miss in one member can replay an artifact another member produced.
  /// Ignored under policy off/ro (read-only already coexists safely).
  bool SharedDisk = false;
  /// Degradation ladder: after this many cumulative disk faults (store
  /// errors + corrupt entries + read faults) a read-write cache demotes
  /// itself to read-only, and after twice this many to off (pure
  /// pass-through). A sick disk can then cost throughput, never a wrong
  /// or missing verdict — the checker simply runs. 0 disables demotion.
  uint64_t DemoteAfterFaults = 3;
};

/// What one store() did, so the caller can attribute the work to its own
/// accounting unit (the driver merges these per-unit, in unit-index
/// order, to keep `--jobs N` stats deterministic).
struct StoreOutcome {
  bool Stored = false;
  bool Error = false;
  uint64_t Evictions = 0; ///< mem + disk entries evicted by this store
};

class ValidationCache {
public:
  explicit ValidationCache(ValidationCacheOptions Opts);

  /// enabled()/writable()/policy() reflect the *effective* policy, which
  /// starts at the configured one and only ever moves down the
  /// degradation ladder (rw -> ro -> off) as disk faults accumulate.
  bool enabled() const { return policy() != CachePolicy::Off; }
  bool writable() const { return policy() == CachePolicy::ReadWrite; }
  CachePolicy policy() const {
    return Effective.load(std::memory_order_relaxed);
  }
  CachePolicy configuredPolicy() const { return Opts.Policy; }
  /// Ladder steps taken so far (0 on a healthy disk).
  uint64_t demotions() const {
    return Demotions.load(std::memory_order_relaxed);
  }
  /// Disk faults observed so far (what drives the ladder).
  uint64_t diskFaults() const;

  /// Memory, then disk; std::nullopt on miss (including corrupt entries).
  std::optional<Verdict> lookup(const Fingerprint &FP);

  /// Populates both tiers (read-write policy only; no-op reporting
  /// Stored=false under off/ro).
  StoreOutcome store(const Fingerprint &FP, const Verdict &V);

  /// Disk-tier counters (zeroed when no disk store is attached).
  DiskStoreCounters diskCounters() const;
  uint64_t memEvictions() const { return Mem.evictions(); }
  size_t memSize() const { return Mem.size(); }
  bool hasDisk() const { return Disk != nullptr; }
  uint64_t diskBytes() const { return Disk ? Disk->totalBytes() : 0; }
  /// The underlying disk tier, for co-tenants that store other artifact
  /// families under domain-tagged fingerprints in the same directory —
  /// the plan cache (plan/PlanCache.h) stores checker plans here so
  /// cluster members sharing one artifact directory also share warm
  /// plans. nullptr when no disk store is attached.
  DiskStore *diskStore() { return Disk.get(); }

private:
  /// Re-reads the disk fault counters and walks the ladder if they
  /// crossed a threshold. Called after every disk-touching operation.
  void maybeDemote();

  ValidationCacheOptions Opts;
  MemCache Mem;
  std::unique_ptr<DiskStore> Disk;
  std::atomic<CachePolicy> Effective{CachePolicy::Off};
  std::atomic<uint64_t> Demotions{0};
};

} // namespace cache
} // namespace crellvm

#endif // CRELLVM_CACHE_VALIDATIONCACHE_H
