//===- cache/Fingerprint.h - Content hash over validation inputs -*- C++ -*-===//
///
/// \file
/// The cache key for memoized checker verdicts: a 128-bit content hash
/// (two independently seeded FNV-1a-64 lanes) over *every* input the
/// verdict depends on —
///
///   - the serialized source module (`ir::printModule`, the exact bytes
///     the file exchange writes),
///   - the serialized target module tgt' produced by the proof-generating
///     compiler,
///   - the proof bytes (`proofgen::proofToBinary`, the compact canonical
///     encoding),
///   - the pass name,
///   - the checker version fingerprint (checker/Version.h), which folds
///     in every process-global switch that can change the checker's
///     answer (e.g. the test-only weakened AddDisjointOr side condition),
///   - the active `passes::BugConfig`, field by field.
///
/// Each field is fed length-prefixed so concatenation ambiguities cannot
/// alias two different input tuples onto one key. The TCB argument for
/// caching verdicts under this key is in DESIGN.md §10: the checker is a
/// deterministic function of exactly these inputs, so replaying a stored
/// verdict is observationally identical to re-running the checker —
/// modulo a 2^-128 hash collision, which is the only thing the cache adds
/// to the trusted base.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CACHE_FINGERPRINT_H
#define CRELLVM_CACHE_FINGERPRINT_H

#include <cstdint>
#include <optional>
#include <string>

namespace crellvm {
namespace json {
class Value;
}
namespace passes {
struct BugConfig;
}
namespace proofgen {
struct Proof;
}
namespace cache {

/// A 128-bit content hash, printable as 32 lowercase hex digits.
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Fingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
  bool operator<(const Fingerprint &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }

  std::string hex() const;
  /// Parses 32 hex digits; std::nullopt on malformed input (the on-disk
  /// index is untrusted).
  static std::optional<Fingerprint> fromHex(const std::string &S);
};

/// Incremental dual-lane FNV-1a hasher. Every field is length-prefixed,
/// so `str("ab"); str("c")` and `str("a"); str("bc")` digest differently.
class FingerprintBuilder {
public:
  FingerprintBuilder &bytes(const void *Data, size_t Len);
  FingerprintBuilder &str(const std::string &S);
  FingerprintBuilder &u64(uint64_t V);
  FingerprintBuilder &boolean(bool B) { return u64(B ? 1 : 0); }
  /// Streams a JSON tree into the hash: a kind tag per node, values
  /// length-prefixed, arrays/objects count-prefixed — injective over
  /// trees (two trees collide only if equal), without materializing the
  /// serialized bytes. Used for proofs, whose byte serialization is the
  /// expensive part of the warm path.
  FingerprintBuilder &json(const json::Value &V);

  Fingerprint digest() const { return {Hi, Lo}; }

private:
  void raw(const void *Data, size_t Len);

  // FNV-1a 64-bit offset basis / a second lane with a distinct seed.
  uint64_t Hi = 0xcbf29ce484222325ull;
  uint64_t Lo = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;
};

/// The canonical validation-cache key (see file comment for the field
/// list and the soundness argument). The proof is folded in by a
/// streaming structural walk (cache/ProofHash.h) that hashes every field
/// of the proof tree without materializing any serialized form — proof
/// serialization is the expensive part of the warm path.
Fingerprint fingerprintValidation(const std::string &SrcText,
                                  const std::string &TgtText,
                                  const proofgen::Proof &Proof,
                                  const std::string &PassName,
                                  const std::string &CheckerVersion,
                                  const passes::BugConfig &Bugs);

/// The checker-plan cache key (plan/PlanCache.h): a distinct fingerprint
/// lane — domain-tagged so a plan key can never alias a verdict key even
/// inside a shared DiskStore directory — over the pass name, every
/// BugConfig field, the checker version fingerprint, and the plan schema
/// version (checker/Version.h). Bumping either version therefore misses
/// every stored plan: no cross-version plan replay.
Fingerprint fingerprintPlan(const std::string &PassName,
                            const passes::BugConfig &Bugs,
                            const std::string &CheckerVersion,
                            int PlanSchemaVersion);

} // namespace cache
} // namespace crellvm

#endif // CRELLVM_CACHE_FINGERPRINT_H
