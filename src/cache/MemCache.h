//===- cache/MemCache.h - Sharded in-memory LRU for verdicts ----*- C++ -*-===//
///
/// \file
/// The in-memory tier of the validation cache: a fingerprint → bytes map
/// sharded by the low fingerprint word, each shard an independently
/// locked LRU list. Sharding keeps the pool's workers from serializing on
/// one mutex (support/ThreadPool.h drives many lookups concurrently);
/// the LRU bound keeps a long batch from holding every verdict of a
/// million-unit corpus resident.
///
/// Values are the serialized verdict bytes (cache/Verdict.h) — the same
/// representation the disk tier stores — so a hit from either tier is
/// decoded by the same code path and the two tiers cannot drift.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CACHE_MEMCACHE_H
#define CRELLVM_CACHE_MEMCACHE_H

#include "cache/Fingerprint.h"

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace crellvm {
namespace cache {

class MemCache {
public:
  /// \p MaxEntries is the total bound across all shards (rounded up to a
  /// multiple of the shard count); \p Shards must be a power of two.
  explicit MemCache(size_t MaxEntries = 1 << 16, unsigned Shards = 16);

  /// Returns the stored bytes and refreshes recency; std::nullopt on miss.
  std::optional<std::string> lookup(const Fingerprint &FP);

  /// Inserts (or refreshes) \p Bytes under \p FP; returns the number of
  /// entries evicted to stay within the bound.
  uint64_t insert(const Fingerprint &FP, std::string Bytes);

  size_t size() const;
  uint64_t evictions() const;

private:
  struct Shard {
    std::mutex M;
    /// Most-recent at the front.
    std::list<std::pair<Fingerprint, std::string>> Lru;
    std::map<Fingerprint, std::list<std::pair<Fingerprint, std::string>>::iterator>
        Index;
    uint64_t Evictions = 0;
  };

  Shard &shardFor(const Fingerprint &FP) {
    return *Shards[FP.Lo & (Shards.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> Shards;
  size_t MaxPerShard;
};

} // namespace cache
} // namespace crellvm

#endif // CRELLVM_CACHE_MEMCACHE_H
