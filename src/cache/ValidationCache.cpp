//===- cache/ValidationCache.cpp --------------------------------*- C++ -*-===//

#include "cache/ValidationCache.h"

using namespace crellvm;
using namespace crellvm::cache;

std::optional<CachePolicy>
crellvm::cache::parseCachePolicy(const std::string &S) {
  if (S == "off")
    return CachePolicy::Off;
  if (S == "ro")
    return CachePolicy::ReadOnly;
  if (S == "rw")
    return CachePolicy::ReadWrite;
  return std::nullopt;
}

ValidationCache::ValidationCache(ValidationCacheOptions Options)
    : Opts(std::move(Options)), Mem(Opts.MemEntries, Opts.MemShards) {
  if (Opts.Policy != CachePolicy::Off && !Opts.Dir.empty())
    Disk = std::make_unique<DiskStore>(DiskStoreOptions{
        Opts.Dir, Opts.MaxDiskBytes, Opts.Policy == CachePolicy::ReadOnly});
}

std::optional<Verdict> ValidationCache::lookup(const Fingerprint &FP) {
  if (!enabled())
    return std::nullopt;
  if (auto Bytes = Mem.lookup(FP)) {
    if (auto V = verdictFromBytes(*Bytes))
      return V;
    // Corrupt in-memory bytes should be impossible (we only insert what
    // we encoded), but degrade to a miss all the same.
  }
  if (Disk) {
    if (auto Bytes = Disk->load(FP)) {
      if (auto V = verdictFromBytes(*Bytes)) {
        Mem.insert(FP, std::move(*Bytes)); // promote for the next lookup
        return V;
      }
    }
  }
  return std::nullopt;
}

StoreOutcome ValidationCache::store(const Fingerprint &FP, const Verdict &V) {
  StoreOutcome Out;
  if (!writable())
    return Out;
  std::string Bytes = verdictToBytes(V);
  Out.Evictions += Mem.insert(FP, Bytes);
  if (Disk) {
    auto Before = Disk->counters().StoreErrors;
    Out.Evictions += Disk->store(FP, Bytes);
    Out.Error = Disk->counters().StoreErrors > Before;
  }
  Out.Stored = !Out.Error;
  return Out;
}

DiskStoreCounters ValidationCache::diskCounters() const {
  return Disk ? Disk->counters() : DiskStoreCounters{};
}
