//===- cache/ValidationCache.cpp --------------------------------*- C++ -*-===//

#include "cache/ValidationCache.h"

using namespace crellvm;
using namespace crellvm::cache;

std::optional<CachePolicy>
crellvm::cache::parseCachePolicy(const std::string &S) {
  if (S == "off")
    return CachePolicy::Off;
  if (S == "ro")
    return CachePolicy::ReadOnly;
  if (S == "rw")
    return CachePolicy::ReadWrite;
  return std::nullopt;
}

ValidationCache::ValidationCache(ValidationCacheOptions Options)
    : Opts(std::move(Options)), Mem(Opts.MemEntries, Opts.MemShards) {
  Effective.store(Opts.Policy, std::memory_order_relaxed);
  if (Opts.Policy != CachePolicy::Off && !Opts.Dir.empty())
    Disk = std::make_unique<DiskStore>(
        DiskStoreOptions{Opts.Dir, Opts.MaxDiskBytes,
                         Opts.Policy == CachePolicy::ReadOnly,
                         Opts.SharedDisk});
}

uint64_t ValidationCache::diskFaults() const {
  if (!Disk)
    return 0;
  DiskStoreCounters C = Disk->counters();
  return C.StoreErrors + C.CorruptEntries + C.ReadFaults;
}

void ValidationCache::maybeDemote() {
  if (!Opts.DemoteAfterFaults || !Disk)
    return;
  uint64_t Faults = diskFaults();
  // Walk the ladder with compare-exchange so concurrent workers observing
  // the same fault count take each step exactly once. The policy only
  // ever moves down; a healthy run never enters this branch.
  for (;;) {
    CachePolicy Cur = Effective.load(std::memory_order_relaxed);
    CachePolicy Want = Cur;
    if (Cur == CachePolicy::ReadWrite && Faults >= Opts.DemoteAfterFaults)
      Want = Faults >= 2 * Opts.DemoteAfterFaults ? CachePolicy::Off
                                                  : CachePolicy::ReadOnly;
    else if (Cur == CachePolicy::ReadOnly &&
             Faults >= 2 * Opts.DemoteAfterFaults)
      Want = CachePolicy::Off;
    if (Want == Cur)
      return;
    if (Effective.compare_exchange_weak(Cur, Want,
                                        std::memory_order_relaxed)) {
      Demotions.fetch_add(1, std::memory_order_relaxed);
      // Re-check: a rw cache that crossed both thresholds at once still
      // needs the second step (rw -> ro happened above; ro -> off next).
      continue;
    }
  }
}

std::optional<Verdict> ValidationCache::lookup(const Fingerprint &FP) {
  if (!enabled())
    return std::nullopt;
  if (auto Bytes = Mem.lookup(FP)) {
    if (auto V = verdictFromBytes(*Bytes))
      return V;
    // Corrupt in-memory bytes should be impossible (we only insert what
    // we encoded), but degrade to a miss all the same.
  }
  if (Disk) {
    auto Loaded = Disk->load(FP);
    maybeDemote();
    if (Loaded) {
      if (auto V = verdictFromBytes(*Loaded)) {
        Mem.insert(FP, std::move(*Loaded)); // promote for the next lookup
        return V;
      }
    }
  }
  return std::nullopt;
}

StoreOutcome ValidationCache::store(const Fingerprint &FP, const Verdict &V) {
  StoreOutcome Out;
  if (!writable())
    return Out;
  std::string Bytes = verdictToBytes(V);
  Out.Evictions += Mem.insert(FP, Bytes);
  if (Disk) {
    auto Before = Disk->counters().StoreErrors;
    Out.Evictions += Disk->store(FP, Bytes);
    Out.Error = Disk->counters().StoreErrors > Before;
    maybeDemote();
  }
  Out.Stored = !Out.Error;
  return Out;
}

DiskStoreCounters ValidationCache::diskCounters() const {
  return Disk ? Disk->counters() : DiskStoreCounters{};
}
