//===- cache/DiskStore.cpp --------------------------------------*- C++ -*-===//

#include "cache/DiskStore.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <csignal>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::cache;

namespace fs = std::filesystem;

namespace {

// v2 adds a payload checksum line: header fingerprint + length alone
// cannot catch a bit flip *inside* the payload, and a flipped byte that
// still decodes would replay as a wrong verdict — the one failure mode a
// verdict cache must never have. v1 objects fail the v2 parse and are
// treated as corrupt (miss + removal), i.e. the cache refills itself.
constexpr const char *Magic = "CRLVMC2";

uint64_t fnv64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

/// Unique-enough temp suffix: pid + a process-wide counter. Two processes
/// sharing a cache dir get distinct pids; two threads distinct counters.
std::string tempSuffix() {
  static std::atomic<uint64_t> Counter{0};
  return ".tmp." + std::to_string(static_cast<uint64_t>(::getpid())) + "." +
         std::to_string(Counter.fetch_add(1));
}

/// Writes \p Bytes to \p Path atomically: temp file in the same directory,
/// then rename(2). Returns false on any I/O error (temp is cleaned up).
bool atomicWriteFile(const std::string &Path, const std::string &Bytes) {
  // Chaos sites. disk.write models a failed write (ENOSPC); disk.short a
  // torn write that "succeeds" — half the bytes land and get renamed into
  // place, exactly what a crash between write and fsync leaves behind.
  // The corruption-tolerant load path must turn the torn object into a
  // miss, never a wrong verdict.
  if (fault::shouldFail("disk.write"))
    return false;
  bool Torn = fault::shouldFail("disk.short");
  std::string Tmp = Path + tempSuffix();
  {
    std::ofstream Out(Tmp, std::ios::trunc | std::ios::binary);
    if (!Out)
      return false;
    Out.write(Bytes.data(),
              static_cast<std::streamsize>(Torn ? Bytes.size() / 2
                                                : Bytes.size()));
    Out.flush();
    if (!Out) {
      std::error_code EC;
      fs::remove(Tmp, EC);
      return false;
    }
  }
  std::error_code EC;
  if (fault::shouldFail("disk.rename")) {
    fs::remove(Tmp, EC);
    return false;
  }
  fs::rename(Tmp, Path, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return false;
  }
  return true;
}

std::optional<std::string> readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad())
    return std::nullopt;
  return Buf.str();
}

} // namespace

DiskStore::DiskStore(DiskStoreOptions Options) : Opts(std::move(Options)) {
  if (Opts.Dir.empty())
    return;
  if (Opts.ReadOnly)
    Opts.Shared = false; // a pure reader needs no lease; ReadOnly wins
  std::error_code EC;
  if (Opts.ReadOnly) {
    // Never create anything in read-only mode; a directory that is absent
    // (or present but empty) is a perfectly healthy always-miss store.
    // Read-only also skips the writer lock: a pure reader cannot corrupt
    // the index and may coexist with one writer.
    Usable = true;
  } else {
    fs::create_directories(fs::path(Opts.Dir) / "objects", EC);
    if (EC)
      return;
    // Writer exclusion: without the lock this instance must not evict or
    // rewrite the index, so (exclusive mode) it stays unusable
    // (miss/error) rather than racing the live owner. Shared mode takes
    // the lease opportunistically and is fully usable without it: loads
    // are lock-free and lease-less stores publish via O_APPEND.
    if (!acquireDirLock() && !Opts.Shared)
      return;
    Usable = true;
  }
  std::lock_guard<std::mutex> Lock(M);
  loadIndexLocked();
}

DiskStore::~DiskStore() { releaseDirLock(); }

std::string DiskStore::lockPath() const { return Opts.Dir + "/lock"; }

bool DiskStore::acquireDirLock() {
  auto Trim = [](std::string S) {
    while (!S.empty() &&
           (S.back() == '\n' || S.back() == '\r' || S.back() == ' '))
      S.pop_back();
    return S;
  };
  const std::string MyPid =
      std::to_string(static_cast<uint64_t>(::getpid()));
  for (int Attempt = 0; Attempt != 3; ++Attempt) {
    int Fd = ::open(lockPath().c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (Fd >= 0) {
      // Pid breadcrumb; staleness detection reads it back.
      [[maybe_unused]] ssize_t W = ::write(Fd, MyPid.data(), MyPid.size());
      // TOCTOU re-verify. A rival that probed the *previous* (stale)
      // breadcrumb before our create may steal-unlink the path right
      // after it — unlinking OUR fresh lock — and then create its own.
      // If the path no longer carries our pid, the lock belongs to that
      // rival: back off without unlinking (the file is not ours to
      // remove). Two racers can therefore never both believe they won.
      auto Back = readWholeFile(lockPath());
      if (!Back || Trim(*Back) != MyPid) {
        ::close(Fd);
        return false;
      }
      LockFd = Fd;
      return true;
    }
    if (errno != EEXIST)
      return false;
    // Lock exists. If its owner died without unlinking (crash, kill -9),
    // the pid inside no longer names a live process: steal the lock by
    // unlinking and retrying. A live owner (including this process via
    // another DiskStore instance) keeps the refusal.
    auto Text = readWholeFile(lockPath());
    if (!Text)
      continue; // raced with a release: retry the O_EXCL create
    std::string Crumb = Trim(*Text);
    if (Crumb.empty())
      return false; // owner between create and pid write: live, back off
    uint64_t Pid = 0;
    bool PidOk = true;
    for (char C : Crumb) {
      if (C < '0' || C > '9') {
        PidOk = false;
        break;
      }
      Pid = Pid * 10 + static_cast<uint64_t>(C - '0');
    }
    // Steal only on positive evidence the owner is gone (its pid no longer
    // names a process). Anything we cannot parse might be a live owner
    // with a different breadcrumb format: back off.
    if (!PidOk ||
        !(::kill(static_cast<pid_t>(Pid), 0) != 0 && errno == ESRCH))
      return false;
    // Re-check the breadcrumb immediately before the unlink: if a rival
    // already stole and re-created the lock, the content is its (live)
    // pid now and unlinking would destroy a held lock. Re-probe instead.
    auto Again = readWholeFile(lockPath());
    if (!Again || Trim(*Again) != Crumb)
      continue;
    ::unlink(lockPath().c_str());
  }
  return false;
}

void DiskStore::releaseDirLock() {
  if (LockFd < 0)
    return;
  ::close(LockFd);
  LockFd = -1;
  ::unlink(lockPath().c_str());
}

std::string DiskStore::objectPath(const Fingerprint &FP) const {
  std::string Hex = FP.hex();
  return Opts.Dir + "/objects/" + Hex.substr(0, 2) + "/" + Hex + ".v1";
}

void DiskStore::loadIndexLocked() {
  std::string IndexPath = Opts.Dir + "/index";
  auto Text = readWholeFile(IndexPath);
  if (!Text) {
    // No index. On a fresh or empty cache directory that is the normal
    // state — nothing to recover, nothing to write. Only when orphaned
    // objects are actually present (an index was lost) do we rebuild,
    // and only a writable store persists the recovered index.
    rebuildIndexFromObjectsLocked();
    return;
  }
  std::istringstream In(*Text);
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream L(Line);
    std::string Hex;
    uint64_t Size = 0, Tick = 0;
    if (!(L >> Hex >> Size >> Tick))
      continue; // malformed line: skip, don't fail the whole index
    auto FP = Fingerprint::fromHex(Hex);
    if (!FP)
      continue;
    std::error_code EC;
    if (!fs::exists(objectPath(*FP), EC))
      continue; // stale line
    Entries.push_back({*FP, Size, Tick});
    Bytes += Size;
    NextTick = std::max(NextTick, Tick + 1);
  }
  std::stable_sort(Entries.begin(), Entries.end(),
                   [](const Entry &A, const Entry &B) { return A.Tick < B.Tick; });
}

void DiskStore::rebuildIndexFromObjectsLocked() {
  std::error_code EC;
  fs::recursive_directory_iterator It(fs::path(Opts.Dir) / "objects", EC), End;
  if (EC)
    return;
  for (; It != End; It.increment(EC)) {
    if (EC)
      break;
    if (!It->is_regular_file(EC))
      continue;
    std::string Name = It->path().filename().string();
    if (Name.size() < 3 || Name.substr(Name.size() - 3) != ".v1")
      continue;
    auto FP = Fingerprint::fromHex(Name.substr(0, Name.size() - 3));
    if (!FP)
      continue;
    uint64_t Size = It->file_size(EC);
    if (EC)
      Size = 0;
    Entries.push_back({*FP, Size, NextTick++});
    Bytes += Size;
  }
  if (Entries.empty())
    return; // fresh/empty dir: not a recovery, leave the filesystem alone
  ++Stats.IndexRebuilds;
  if (!Opts.ReadOnly)
    writeIndexLocked();
}

bool DiskStore::writeIndexLocked() {
  std::string Out;
  for (const Entry &E : Entries)
    Out += E.FP.hex() + " " + std::to_string(E.Size) + " " +
           std::to_string(E.Tick) + "\n";
  return atomicWriteFile(Opts.Dir + "/index", Out);
}

std::optional<std::string> DiskStore::load(const Fingerprint &FP) {
  if (!Usable) {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.Misses;
    return std::nullopt;
  }
  std::string Path = objectPath(FP);
  // disk.read models an EIO on an object that exists; the real-world
  // analog below (read failed but the path is present) is counted the
  // same way so the degradation ladder sees genuine media faults too.
  bool ReadFault = fault::shouldFail("disk.read");
  std::optional<std::string> Raw;
  if (!ReadFault)
    Raw = readWholeFile(Path);
  if (!Raw && !ReadFault) {
    std::error_code ExistsEC;
    ReadFault = fs::exists(Path, ExistsEC);
  }
  if (Raw && fault::shouldFail("disk.corrupt") && !Raw->empty())
    (*Raw)[Raw->size() / 2] ^= 0x20; // bit-flip in the middle of the blob
  std::lock_guard<std::mutex> Lock(M);
  if (!Raw) {
    ++Stats.Misses;
    if (ReadFault)
      ++Stats.ReadFaults;
    return std::nullopt;
  }
  // Header: "CRLVMC2\n<hex>\n<payload-len>\n<payload-fnv64>\n<payload>".
  // Anything that does not check out — truncation, garbage, a payload
  // bit-flip, wrong object under this name — is a miss, and the bad file
  // is removed so it cannot mislead again.
  auto Reject = [&] {
    ++Stats.Misses;
    ++Stats.CorruptEntries;
    if (!Opts.ReadOnly) {
      std::error_code EC;
      fs::remove(Path, EC);
    }
    return std::nullopt;
  };
  const std::string &S = *Raw;
  size_t P1 = S.find('\n');
  if (P1 == std::string::npos || S.substr(0, P1) != Magic)
    return Reject();
  size_t P2 = S.find('\n', P1 + 1);
  if (P2 == std::string::npos || S.substr(P1 + 1, P2 - P1 - 1) != FP.hex())
    return Reject();
  auto ParseNum = [&S](size_t Begin, size_t End, uint64_t &Out) {
    if (Begin == End)
      return false;
    Out = 0;
    for (size_t I = Begin; I != End; ++I) {
      if (S[I] < '0' || S[I] > '9')
        return false;
      Out = Out * 10 + static_cast<uint64_t>(S[I] - '0');
    }
    return true;
  };
  size_t P3 = S.find('\n', P2 + 1);
  if (P3 == std::string::npos)
    return Reject();
  uint64_t Len = 0;
  if (!ParseNum(P2 + 1, P3, Len))
    return Reject();
  size_t P4 = S.find('\n', P3 + 1);
  if (P4 == std::string::npos)
    return Reject();
  uint64_t Sum = 0;
  if (!ParseNum(P3 + 1, P4, Sum))
    return Reject();
  if (S.size() - (P4 + 1) != Len)
    return Reject();
  std::string Payload = S.substr(P4 + 1);
  if (fnv64(Payload) != Sum)
    return Reject();
  ++Stats.Hits;
  return Payload;
}

uint64_t DiskStore::store(const Fingerprint &FP, const std::string &Payload) {
  std::lock_guard<std::mutex> Lock(M);
  if (Opts.ReadOnly)
    return 0; // refused by policy; not an error, not a store, no eviction
  if (!Usable) {
    ++Stats.StoreErrors;
    return 0;
  }
  // Shared members without the lease re-try it on every store, so the
  // lease rotates onto a live member once its previous holder exits (or
  // dies — the stale-pid steal applies to the lease like any lock).
  if (Opts.Shared && LockFd < 0)
    acquireDirLock();
  std::string Path = objectPath(FP);
  std::error_code EC;
  fs::create_directories(fs::path(Path).parent_path(), EC);
  if (EC) {
    ++Stats.StoreErrors;
    return 0;
  }
  std::string Blob = std::string(Magic) + "\n" + FP.hex() + "\n" +
                     std::to_string(Payload.size()) + "\n" +
                     std::to_string(fnv64(Payload)) + "\n" + Payload;
  if (!atomicWriteFile(Path, Blob)) {
    ++Stats.StoreErrors;
    return 0;
  }
  ++Stats.Stores;
  // Refresh or append the index entry, then evict past the byte budget.
  for (auto It = Entries.begin(); It != Entries.end(); ++It) {
    if (It->FP == FP) {
      Bytes -= It->Size;
      Entries.erase(It);
      break;
    }
  }
  Entries.push_back({FP, Payload.size(), NextTick++});
  Bytes += Payload.size();
  if (Opts.Shared && LockFd < 0) {
    // No lease: the object is durable and loadable by everyone (loads
    // probe the object path, never the index); publish a best-effort
    // index line so the eventual lease holder carries it across its
    // next full rewrite. Eviction is the lease holder's job alone.
    ++Stats.SharedAppends;
    appendIndexLineLocked(Entries.back());
    return 0;
  }
  if (Opts.Shared)
    mergeForeignIndexLinesLocked();
  uint64_t Evicted = 0;
  evictLocked(Evicted);
  if (!writeIndexLocked())
    ++Stats.StoreErrors;
  return Evicted;
}

void DiskStore::mergeForeignIndexLinesLocked() {
  auto Text = readWholeFile(Opts.Dir + "/index");
  if (!Text)
    return;
  std::set<Fingerprint> Known;
  for (const Entry &E : Entries)
    Known.insert(E.FP);
  std::istringstream In(*Text);
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream L(Line);
    std::string Hex;
    uint64_t Size = 0, Tick = 0;
    if (!(L >> Hex >> Size >> Tick))
      continue; // torn O_APPEND line: the object is still loadable
    auto FP = Fingerprint::fromHex(Hex);
    if (!FP || Known.count(*FP))
      continue;
    std::error_code EC;
    if (!fs::exists(objectPath(*FP), EC))
      continue;
    Known.insert(*FP);
    Entries.push_back({*FP, Size, NextTick++});
    Bytes += Size;
    ++Stats.SharedMerged;
  }
}

void DiskStore::appendIndexLineLocked(const Entry &E) {
  // One write(2) on an O_APPEND fd is the whole publication: appends from
  // concurrent members interleave at line granularity (short index lines
  // land atomically on any real filesystem), and even a torn line only
  // costs the parser a skip, never a wrong entry.
  int Fd = ::open((Opts.Dir + "/index").c_str(),
                  O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (Fd < 0)
    return;
  std::string Line = E.FP.hex() + " " + std::to_string(E.Size) + " " +
                     std::to_string(E.Tick) + "\n";
  [[maybe_unused]] ssize_t W = ::write(Fd, Line.data(), Line.size());
  ::close(Fd);
}

void DiskStore::evictLocked(uint64_t &Evicted) {
  while (Bytes > Opts.MaxBytes && Entries.size() > 1) {
    const Entry &Oldest = Entries.front();
    std::error_code EC;
    fs::remove(objectPath(Oldest.FP), EC);
    Bytes -= Oldest.Size;
    Entries.erase(Entries.begin());
    ++Stats.Evictions;
    ++Evicted;
  }
}

DiskStoreCounters DiskStore::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats;
}

uint64_t DiskStore::totalBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Bytes;
}

size_t DiskStore::numEntries() const {
  std::lock_guard<std::mutex> Lock(M);
  return Entries.size();
}
