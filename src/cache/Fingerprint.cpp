//===- cache/Fingerprint.cpp ------------------------------------*- C++ -*-===//

#include "cache/Fingerprint.h"

#include "cache/ProofHash.h"
#include "json/Json.h"
#include "passes/BugConfig.h"

using namespace crellvm;
using namespace crellvm::cache;

std::string Fingerprint::hex() const {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(32);
  for (uint64_t Word : {Hi, Lo})
    for (int Shift = 60; Shift >= 0; Shift -= 4)
      Out.push_back(Digits[(Word >> Shift) & 0xf]);
  return Out;
}

std::optional<Fingerprint> Fingerprint::fromHex(const std::string &S) {
  if (S.size() != 32)
    return std::nullopt;
  uint64_t Words[2] = {0, 0};
  for (size_t I = 0; I != 32; ++I) {
    char C = S[I];
    uint64_t Nibble;
    if (C >= '0' && C <= '9')
      Nibble = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Nibble = static_cast<uint64_t>(C - 'a' + 10);
    else
      return std::nullopt;
    Words[I / 16] = (Words[I / 16] << 4) | Nibble;
  }
  return Fingerprint{Words[0], Words[1]};
}

void FingerprintBuilder::raw(const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  // FNV-1a in two lanes with distinct primes so the lanes do not simply
  // track each other; 2^-128 aliasing for the pair.
  constexpr uint64_t PrimeHi = 0x100000001b3ull;  // classic FNV prime
  constexpr uint64_t PrimeLo = 0x00000100000001b3ull ^ 0x40ull; // variant
  for (size_t I = 0; I != Len; ++I) {
    Hi = (Hi ^ P[I]) * PrimeHi;
    Lo = (Lo ^ P[I]) * PrimeLo;
  }
}

FingerprintBuilder &FingerprintBuilder::bytes(const void *Data, size_t Len) {
  u64(Len);
  raw(Data, Len);
  return *this;
}

FingerprintBuilder &FingerprintBuilder::str(const std::string &S) {
  return bytes(S.data(), S.size());
}

FingerprintBuilder &FingerprintBuilder::u64(uint64_t V) {
  unsigned char Buf[8];
  for (int I = 0; I != 8; ++I)
    Buf[I] = static_cast<unsigned char>(V >> (I * 8));
  raw(Buf, 8);
  return *this;
}

FingerprintBuilder &FingerprintBuilder::json(const json::Value &V) {
  using Kind = json::Value::Kind;
  u64(static_cast<uint64_t>(V.kind()));
  switch (V.kind()) {
  case Kind::Null:
    break;
  case Kind::Bool:
    boolean(V.getBool());
    break;
  case Kind::Int:
    u64(static_cast<uint64_t>(V.getInt()));
    break;
  case Kind::String:
    str(V.getString());
    break;
  case Kind::Array:
    u64(V.elements().size());
    for (const json::Value &E : V.elements())
      json(E);
    break;
  case Kind::Object:
    u64(V.members().size());
    for (const auto &KV : V.members()) {
      str(KV.first);
      json(KV.second);
    }
    break;
  }
  return *this;
}

Fingerprint crellvm::cache::fingerprintValidation(
    const std::string &SrcText, const std::string &TgtText,
    const proofgen::Proof &Proof, const std::string &PassName,
    const std::string &CheckerVersion, const passes::BugConfig &Bugs) {
  FingerprintBuilder B;
  B.str(SrcText).str(TgtText);
  hashProof(B, Proof);
  B.str(PassName).str(CheckerVersion);
  // Every BugConfig field, explicitly: the bug switches steer the passes
  // (already captured by TgtText/ProofBytes) but are cheap to fold in and
  // make the key robust against a future switch that changes behaviour
  // not visible in the serialized artifacts.
  B.boolean(Bugs.Mem2RegUndefLoop)
      .boolean(Bugs.Mem2RegConstexprSpeculate)
      .boolean(Bugs.GvnIgnoreInbounds)
      .boolean(Bugs.GvnIgnoreInboundsPRE)
      .boolean(Bugs.GvnPREWrongLeader)
      .boolean(Bugs.UnsoundAddToOr);
  return B.digest();
}

Fingerprint crellvm::cache::fingerprintPlan(const std::string &PassName,
                                            const passes::BugConfig &Bugs,
                                            const std::string &CheckerVersion,
                                            int PlanSchemaVersion) {
  FingerprintBuilder B;
  // The domain tag separates the plan lane from the verdict lane: the
  // two key families can share one content-addressed store without any
  // chance of a plan payload being read back as a verdict or vice versa.
  B.str("crellvm-plan");
  B.str(PassName).str(CheckerVersion);
  B.u64(static_cast<uint64_t>(PlanSchemaVersion));
  B.boolean(Bugs.Mem2RegUndefLoop)
      .boolean(Bugs.Mem2RegConstexprSpeculate)
      .boolean(Bugs.GvnIgnoreInbounds)
      .boolean(Bugs.GvnIgnoreInboundsPRE)
      .boolean(Bugs.GvnPREWrongLeader)
      .boolean(Bugs.UnsoundAddToOr);
  return B.digest();
}
