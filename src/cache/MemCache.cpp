//===- cache/MemCache.cpp ---------------------------------------*- C++ -*-===//

#include "cache/MemCache.h"

using namespace crellvm;
using namespace crellvm::cache;

MemCache::MemCache(size_t MaxEntries, unsigned NumShards) {
  if (NumShards == 0)
    NumShards = 1;
  // Round up to a power of two so shardFor can mask instead of divide.
  unsigned Pow2 = 1;
  while (Pow2 < NumShards)
    Pow2 <<= 1;
  Shards.reserve(Pow2);
  for (unsigned I = 0; I != Pow2; ++I)
    Shards.push_back(std::make_unique<Shard>());
  MaxPerShard = (MaxEntries + Pow2 - 1) / Pow2;
  if (MaxPerShard == 0)
    MaxPerShard = 1;
}

std::optional<std::string> MemCache::lookup(const Fingerprint &FP) {
  Shard &S = shardFor(FP);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Index.find(FP);
  if (It == S.Index.end())
    return std::nullopt;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // refresh recency
  return It->second->second;
}

uint64_t MemCache::insert(const Fingerprint &FP, std::string Bytes) {
  Shard &S = shardFor(FP);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Index.find(FP);
  if (It != S.Index.end()) {
    It->second->second = std::move(Bytes);
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return 0;
  }
  S.Lru.emplace_front(FP, std::move(Bytes));
  S.Index[FP] = S.Lru.begin();
  uint64_t Evicted = 0;
  while (S.Lru.size() > MaxPerShard) {
    S.Index.erase(S.Lru.back().first);
    S.Lru.pop_back();
    ++S.Evictions;
    ++Evicted;
  }
  return Evicted;
}

size_t MemCache::size() const {
  size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    N += S->Lru.size();
  }
  return N;
}

uint64_t MemCache::evictions() const {
  uint64_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    N += S->Evictions;
  }
  return N;
}
