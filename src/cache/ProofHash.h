//===- cache/ProofHash.h - Streaming structural proof hash ------*- C++ -*-===//
///
/// \file
/// Streams a `proofgen::Proof` into a FingerprintBuilder without
/// materializing any serialized form. Proof serialization (the JSON tree
/// plus its encoding) is the single most expensive step of the cache's
/// warm path — more than 5x the cost of printing both modules — so the
/// fingerprint walks the proof structure directly.
///
/// **Injectivity discipline.** The walk hashes *every* field of every
/// proof node, each prefixed with a kind/count tag, so two proofs collide
/// only if they are structurally equal — the same guarantee the byte
/// serialization would give, established by construction rather than by
/// reference to proofgen/ProofJson.cpp. If `proofgen::Proof` (or any node
/// type it contains) grows a field, add it here in the same change; a
/// forgotten field would let two proofs that differ only in that field
/// share a cache key, which is a soundness hole, not a performance bug.
/// CacheTest.FingerprintSensitivity covers every current field.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CACHE_PROOFHASH_H
#define CRELLVM_CACHE_PROOFHASH_H

#include "cache/Fingerprint.h"

namespace crellvm {
namespace proofgen {
struct Proof;
}
namespace cache {

/// Folds the full structure of \p P into \p B (see file comment).
void hashProof(FingerprintBuilder &B, const proofgen::Proof &P);

} // namespace cache
} // namespace crellvm

#endif // CRELLVM_CACHE_PROOFHASH_H
