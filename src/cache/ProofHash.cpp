//===- cache/ProofHash.cpp --------------------------------------*- C++ -*-===//

#include "cache/ProofHash.h"

#include "proofgen/Proof.h"

using namespace crellvm;
using namespace crellvm::cache;
using namespace crellvm::erhl;

namespace {

// Every helper hashes a leading tag (kind/presence/count) before its
// payload, so distinct structures can never stream identical bytes.

void hashType(FingerprintBuilder &B, const ir::Type &T) {
  B.str(T.str()); // canonical, total, and tiny ("i32", "ptr", "<4 x i8>")
}

void hashValue(FingerprintBuilder &B, const ir::Value &V) {
  B.u64(static_cast<uint64_t>(V.kind()));
  switch (V.kind()) {
  case ir::Value::Kind::Reg:
    B.str(V.regName());
    hashType(B, V.type());
    break;
  case ir::Value::Kind::ConstInt:
    B.u64(static_cast<uint64_t>(V.intValue()));
    hashType(B, V.type());
    break;
  case ir::Value::Kind::Global:
    B.str(V.globalName());
    break;
  case ir::Value::Kind::Undef:
    hashType(B, V.type());
    break;
  case ir::Value::Kind::ConstExpr: {
    const ir::ConstExprNode &N = V.constExprNode();
    B.u64(static_cast<uint64_t>(N.Op));
    hashType(B, V.type());
    B.u64(N.Ops.size());
    for (const ir::Value &X : N.Ops)
      hashValue(B, X);
    break;
  }
  }
}

void hashValT(FingerprintBuilder &B, const ValT &V) {
  B.u64(static_cast<uint64_t>(V.T));
  hashValue(B, V.V);
}

void hashExpr(FingerprintBuilder &B, const Expr &E) {
  B.u64(static_cast<uint64_t>(E.kind()));
  B.u64(static_cast<uint64_t>(E.opcode()));
  B.u64(static_cast<uint64_t>(E.icmpPred()));
  B.boolean(E.isInbounds());
  hashType(B, E.type());
  B.u64(E.operands().size());
  for (const ValT &V : E.operands())
    hashValT(B, V);
}

void hashPred(FingerprintBuilder &B, const Pred &P) {
  B.u64(static_cast<uint64_t>(P.kind()));
  switch (P.kind()) {
  case Pred::Kind::Lessdef:
    hashExpr(B, P.lhs());
    hashExpr(B, P.rhs());
    break;
  case Pred::Kind::Noalias:
    hashValT(B, P.a());
    hashValT(B, P.b());
    break;
  case Pred::Kind::Unique:
    B.str(P.uniqueReg());
    break;
  case Pred::Kind::Private:
    hashValT(B, P.a());
    break;
  }
}

void hashAssertion(FingerprintBuilder &B, const Assertion &A) {
  B.u64(A.Src.size());
  for (const Pred &P : A.Src)
    hashPred(B, P);
  B.u64(A.Tgt.size());
  for (const Pred &P : A.Tgt)
    hashPred(B, P);
  B.u64(A.Maydiff.size());
  for (const RegT &R : A.Maydiff) {
    B.u64(static_cast<uint64_t>(R.T));
    B.str(R.Name);
  }
}

void hashInfrule(FingerprintBuilder &B, const Infrule &R) {
  B.u64(static_cast<uint64_t>(R.K));
  B.u64(static_cast<uint64_t>(R.S));
  B.u64(R.Args.size());
  for (const Expr &E : R.Args)
    hashExpr(B, E);
}

void hashLine(FingerprintBuilder &B, const proofgen::LineEntry &L) {
  // Commands are hashed through their textual rendering — the exact
  // string the JSON exchange carries and the checker parses back.
  B.boolean(L.SrcCmd.has_value());
  if (L.SrcCmd)
    B.str(L.SrcCmd->str());
  B.boolean(L.TgtCmd.has_value());
  if (L.TgtCmd)
    B.str(L.TgtCmd->str());
  hashAssertion(B, L.After);
  B.u64(L.Rules.size());
  for (const Infrule &R : L.Rules)
    hashInfrule(B, R);
}

void hashBlock(FingerprintBuilder &B, const proofgen::BlockProof &BP) {
  hashAssertion(B, BP.AtEntry);
  B.u64(BP.Lines.size());
  for (const proofgen::LineEntry &L : BP.Lines)
    hashLine(B, L);
  B.u64(BP.PhiRules.size());
  for (const auto &KV : BP.PhiRules) {
    B.str(KV.first);
    B.u64(KV.second.size());
    for (const Infrule &R : KV.second)
      hashInfrule(B, R);
  }
}

void hashFunction(FingerprintBuilder &B, const proofgen::FunctionProof &FP) {
  B.boolean(FP.NotSupported);
  B.str(FP.NotSupportedReason);
  B.u64(FP.AutoFuncs.size());
  for (const std::string &A : FP.AutoFuncs)
    B.str(A);
  B.u64(FP.Blocks.size());
  for (const auto &KV : FP.Blocks) {
    B.str(KV.first);
    hashBlock(B, KV.second);
  }
}

} // namespace

void crellvm::cache::hashProof(FingerprintBuilder &B,
                               const proofgen::Proof &P) {
  B.u64(P.Functions.size());
  for (const auto &KV : P.Functions) {
    B.str(KV.first);
    hashFunction(B, KV.second);
  }
}
