//===- erhl/Assertion.h - ERHL assertion language ---------------*- C++ -*-===//
///
/// \file
/// The assertion language of Extensible Relational Hoare Logic (paper §2.2,
/// §5, Appendix G):
///
///   Tag       ::= Phy | Ghost | Old
///   ValT      ::= (ir::Value, Tag)       tagged value
///   Expr      ::= Val vT | Bop op vT vT | Icmp pred vT vT | Select ...
///               | Cast op vT | Gep inbounds? vT vT | Load vT
///   Pred      ::= Expr ⊒ Expr | Uniq(r) | Priv(vT) | vT ⟂ vT
///   Assertion ::= (Src : set<Pred>, Tgt : set<Pred>, Maydiff : set<RegT>)
///
/// Lessdef direction convention (Appendix F): `E1 ⊒ E2` holds in a state
/// when ⟦E1⟧ is undef/poison or ⟦E1⟧ = ⟦E2⟧ — "E1 may be less defined than
/// E2, otherwise equal". The maydiff set M means: for every register x ∉ M,
/// x_src ⊒ x_tgt (the target value refines the source value up to memory
/// injection). Ghost and Old registers are existentially quantified
/// (paper §3.2, §4).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ERHL_ASSERTION_H
#define CRELLVM_ERHL_ASSERTION_H

#include "ir/Instruction.h"

#include <set>
#include <string>
#include <vector>

namespace crellvm {
namespace erhl {

/// Register tag: physical program registers, regular ghost registers, and
/// the reserved "old" ghost registers used for phi-node reasoning (§4).
enum class Tag : uint8_t { Phy, Ghost, Old };

std::string tagSuffix(Tag T);

/// A tagged register.
struct RegT {
  std::string Name;
  Tag T = Tag::Phy;

  bool operator==(const RegT &O) const {
    return T == O.T && Name == O.Name;
  }
  bool operator!=(const RegT &O) const { return !(*this == O); }
  bool operator<(const RegT &O) const {
    if (T != O.T)
      return T < O.T;
    return Name < O.Name;
  }
  std::string str() const { return "%" + Name + tagSuffix(T); }
};

/// A tagged value: a tagged register, or a constant (constants carry the
/// Phy tag and ignore it).
struct ValT {
  ir::Value V;
  Tag T = Tag::Phy;

  static ValT phy(ir::Value V) { return ValT{std::move(V), Tag::Phy}; }
  static ValT ghost(const std::string &Name, ir::Type Ty) {
    return ValT{ir::Value::reg(Name, Ty), Tag::Ghost};
  }
  static ValT old(const std::string &Name, ir::Type Ty) {
    return ValT{ir::Value::reg(Name, Ty), Tag::Old};
  }
  static ValT reg(const RegT &R, ir::Type Ty) {
    return ValT{ir::Value::reg(R.Name, Ty), R.T};
  }

  bool isReg() const { return V.isReg(); }
  RegT regT() const {
    assert(isReg() && "not a register");
    return RegT{V.regName(), T};
  }

  bool operator==(const ValT &O) const {
    if (isReg() != O.isReg())
      return false;
    if (isReg())
      return T == O.T && V == O.V;
    return V == O.V;
  }
  bool operator!=(const ValT &O) const { return !(*this == O); }
  bool operator<(const ValT &O) const {
    if (isReg() != O.isReg())
      return isReg() < O.isReg();
    if (isReg() && T != O.T)
      return T < O.T;
    return V < O.V;
  }

  std::string str() const {
    if (isReg())
      return V.str() + tagSuffix(T);
    return V.str();
  }
};

/// An ERHL expression: the right-hand side of a side-effect-free
/// instruction with tagged operands (Appendix G). Loads are included
/// because they are side-effect-free modulo UB.
class Expr {
public:
  enum class Kind : uint8_t { Val, Bop, Icmp, Select, Cast, Gep, Load };

  static Expr val(ValT V);
  static Expr bop(ir::Opcode Op, ir::Type Ty, ValT A, ValT B);
  static Expr icmp(ir::IcmpPred P, ValT A, ValT B);
  static Expr select(ir::Type Ty, ValT C, ValT A, ValT B);
  static Expr cast(ir::Opcode Op, ir::Type DstTy, ValT A);
  static Expr gep(bool Inbounds, ValT Base, ValT Idx);
  static Expr load(ir::Type Ty, ValT Ptr);

  Kind kind() const { return K; }
  ir::Opcode opcode() const { return Op; }
  ir::IcmpPred icmpPred() const { return Pred; }
  bool isInbounds() const { return Inbounds; }
  const ir::Type &type() const { return Ty; }
  const std::vector<ValT> &operands() const { return Ops; }

  bool isVal() const { return K == Kind::Val; }
  const ValT &asVal() const {
    assert(isVal() && "not a value expression");
    return Ops[0];
  }
  bool isLoad() const { return K == Kind::Load; }

  /// All tagged registers appearing in the expression.
  std::vector<RegT> regs() const;

  /// True if \p R appears as an operand. Equivalent to searching regs()
  /// but allocation-free — the membership test hot paths want.
  bool mentions(const RegT &R) const;

  /// Returns a copy with every operand equal to \p From replaced by \p To.
  Expr substituted(const ValT &From, const ValT &To) const;

  /// Returns a copy with only operand \p Idx replaced by \p To.
  Expr substitutedAt(size_t Idx, const ValT &To) const;

  /// True if \p E has the same shape (kind, opcode, flags, type) — operand
  /// values may differ.
  bool sameShape(const Expr &E) const;

  bool operator==(const Expr &O) const;
  bool operator!=(const Expr &O) const { return !(*this == O); }
  bool operator<(const Expr &O) const;

  std::string str() const;

private:
  Kind K = Kind::Val;
  ir::Opcode Op = ir::Opcode::Add;
  ir::IcmpPred Pred = ir::IcmpPred::Eq;
  bool Inbounds = false;
  ir::Type Ty;
  std::vector<ValT> Ops;
};

/// An ERHL predicate.
class Pred {
public:
  enum class Kind : uint8_t { Lessdef, Noalias, Unique, Private };

  /// E1 ⊒ E2 (see file comment for the direction).
  static Pred lessdef(Expr E1, Expr E2);
  /// A ⟂ B: the pointers point into disjoint blocks.
  static Pred noalias(ValT A, ValT B);
  /// Uniq(r): the address in physical register r aliases nothing else and
  /// is private (paper §3.2).
  static Pred unique(std::string PhyReg);
  /// Priv(vT): the address is outside the public memory injection.
  static Pred priv(ValT V);

  Kind kind() const { return K; }
  const Expr &lhs() const {
    assert(K == Kind::Lessdef);
    return E1;
  }
  const Expr &rhs() const {
    assert(K == Kind::Lessdef);
    return E2;
  }
  const ValT &a() const {
    assert(K == Kind::Noalias || K == Kind::Private);
    return A;
  }
  const ValT &b() const {
    assert(K == Kind::Noalias);
    return B;
  }
  const std::string &uniqueReg() const {
    assert(K == Kind::Unique);
    return UniqReg;
  }

  /// All tagged registers appearing in the predicate.
  std::vector<RegT> regs() const;

  /// True if \p R appears anywhere in the predicate; the allocation-free
  /// sibling of regs(), like Expr::mentions.
  bool mentions(const RegT &R) const;

  bool operator==(const Pred &O) const;
  bool operator<(const Pred &O) const;

  std::string str() const;

private:
  Kind K = Kind::Unique;
  Expr E1, E2;
  ValT A, B;
  std::string UniqReg;
};

/// A unary assertion: a set of predicates about one side.
using Unary = std::set<Pred>;

/// A full ERHL assertion (S, T, M).
struct Assertion {
  Unary Src;
  Unary Tgt;
  std::set<RegT> Maydiff;

  bool operator==(const Assertion &O) const {
    return Src == O.Src && Tgt == O.Tgt && Maydiff == O.Maydiff;
  }

  /// Structural implication used by CheckIncl (paper Fig. 4, rule Incl):
  /// this => Q when Q's predicates are a subset on both sides and this
  /// maydiff set is a subset of Q's.
  bool includes(const Assertion &Q) const;

  std::string str() const;
};

/// Returns the registers of \p V if it is a register, else empty.
inline std::vector<RegT> regsOf(const ValT &V) {
  if (V.isReg())
    return {V.regT()};
  return {};
}

} // namespace erhl
} // namespace crellvm

#endif // CRELLVM_ERHL_ASSERTION_H
