//===- erhl/Eval.h - Semantic evaluation of ERHL assertions ----*- C++ -*-===//
///
/// \file
/// Evaluates ERHL expressions and predicates over concrete machine states.
/// This is the semantic ground truth used by the randomized rule-soundness
/// verifier (the substitute for the paper's Coq verification of inference
/// rules, DESIGN.md §2): a rule is sound when, in every state satisfying
/// its premises, its conclusions hold.
///
/// Lessdef semantics: `E1 >= E2` holds in a state iff both expressions
/// evaluate without undefined behavior and ⟦E1⟧ is undef/poison or equals
/// ⟦E2⟧. Making a trapping right-hand side *falsify* the predicate is what
/// lets the verifier expose `constexpr_no_ub` (PR33673): `undef >= C`
/// claims undef may be refined to C, which is wrong when evaluating C
/// traps.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ERHL_EVAL_H
#define CRELLVM_ERHL_EVAL_H

#include "erhl/Assertion.h"
#include "interp/Ops.h"

#include <map>
#include <optional>

namespace crellvm {
namespace erhl {

/// A concrete one-side machine state for assertion evaluation: a register
/// file over tagged registers (ghost and old registers are just entries
/// here — they are the existential witnesses) and a small block memory.
struct EvalState {
  std::map<RegT, interp::RtValue> Regs;
  /// Block id -> cells. Blocks listed here are alive.
  std::map<int64_t, std::vector<interp::RtValue>> Memory;
  /// Global name -> block id.
  std::map<std::string, int64_t> Globals;

  interp::RtValue regOr(const RegT &R, interp::RtValue Default) const {
    auto It = Regs.find(R);
    return It == Regs.end() ? Default : It->second;
  }
};

/// Expression evaluation outcome.
struct ExprEval {
  bool Trap = false;
  interp::RtValue V;
};

/// Evaluates a tagged value. Unbound registers evaluate to undef.
ExprEval evalValT(const ValT &V, const EvalState &S);

/// Evaluates an expression; loads read the state's memory (out-of-bounds
/// loads trap), constant expressions may trap.
ExprEval evalExpr(const Expr &E, const EvalState &S);

/// Does `E1 >= E2` hold in \p S? (See file comment for trap handling.)
bool holdsLessdef(const Expr &E1, const Expr &E2, const EvalState &S);

/// Evaluates a predicate over \p S. Returns std::nullopt when the
/// predicate's truth cannot be decided from a single-side state (Uniq and
/// Priv depend on the memory injection); the rule verifier skips those.
std::optional<bool> holdsPred(const Pred &P, const EvalState &S);

/// Does the target value \p T refine the source value \p S (source
/// undef/poison allows anything)?
bool refinesValue(const interp::RtValue &S, const interp::RtValue &T);

} // namespace erhl
} // namespace crellvm

#endif // CRELLVM_ERHL_EVAL_H
