//===- erhl/Serialize.cpp ---------------------------------------*- C++ -*-===//

#include "erhl/Serialize.h"

using namespace crellvm;
using namespace crellvm::erhl;
using namespace crellvm::ir;
using JV = crellvm::json::Value;

namespace {

JV typeToJson(const ir::Type &T) { return JV(T.str()); }

std::optional<ir::Type> typeFromJson(const JV &V) {
  if (V.kind() != JV::Kind::String)
    return std::nullopt;
  const std::string &S = V.getString();
  if (S == "void")
    return ir::Type::voidTy();
  if (S == "ptr")
    return ir::Type::ptrTy();
  if (!S.empty() && S[0] == 'i')
    return ir::Type::intTy(
        static_cast<unsigned>(std::strtoul(S.c_str() + 1, nullptr, 10)));
  if (!S.empty() && S[0] == '<') {
    unsigned Lanes = 0, Width = 0;
    if (std::sscanf(S.c_str(), "<%u x i%u>", &Lanes, &Width) == 2)
      return ir::Type::vecTy(Lanes, Width);
  }
  return std::nullopt;
}

JV irValueToJson(const ir::Value &V) {
  JV O = JV::object();
  switch (V.kind()) {
  case ir::Value::Kind::Reg:
    O.set("k", "reg");
    O.set("name", V.regName());
    O.set("ty", typeToJson(V.type()));
    break;
  case ir::Value::Kind::ConstInt:
    O.set("k", "int");
    O.set("v", V.intValue());
    O.set("ty", typeToJson(V.type()));
    break;
  case ir::Value::Kind::Global:
    O.set("k", "glob");
    O.set("name", V.globalName());
    break;
  case ir::Value::Kind::Undef:
    O.set("k", "undef");
    O.set("ty", typeToJson(V.type()));
    break;
  case ir::Value::Kind::ConstExpr: {
    O.set("k", "ce");
    O.set("op", opcodeName(V.constExprNode().Op));
    O.set("ty", typeToJson(V.type()));
    JV Ops = JV::array();
    for (const ir::Value &X : V.constExprNode().Ops)
      Ops.push(irValueToJson(X));
    O.set("ops", std::move(Ops));
    break;
  }
  }
  return O;
}

std::optional<ir::Value> irValueFromJson(const JV &V) {
  if (V.kind() != JV::Kind::Object)
    return std::nullopt;
  const JV *K = V.find("k");
  if (!K)
    return std::nullopt;
  const std::string &Kind = K->getString();
  if (Kind == "reg") {
    auto Ty = typeFromJson(V.get("ty"));
    if (!Ty)
      return std::nullopt;
    return ir::Value::reg(V.get("name").getString(), *Ty);
  }
  if (Kind == "int") {
    auto Ty = typeFromJson(V.get("ty"));
    if (!Ty)
      return std::nullopt;
    return ir::Value::constInt(V.get("v").getInt(), *Ty);
  }
  if (Kind == "glob")
    return ir::Value::global(V.get("name").getString());
  if (Kind == "undef") {
    auto Ty = typeFromJson(V.get("ty"));
    if (!Ty)
      return std::nullopt;
    return ir::Value::undef(*Ty);
  }
  if (Kind == "ce") {
    auto Op = opcodeFromName(V.get("op").getString());
    auto Ty = typeFromJson(V.get("ty"));
    if (!Op || !Ty)
      return std::nullopt;
    std::vector<ir::Value> Ops;
    for (const JV &X : V.get("ops").elements()) {
      auto O = irValueFromJson(X);
      if (!O)
        return std::nullopt;
      Ops.push_back(std::move(*O));
    }
    return ir::Value::constExpr(*Op, *Ty, std::move(Ops));
  }
  return std::nullopt;
}

const char *tagName(Tag T) {
  switch (T) {
  case Tag::Phy:
    return "phy";
  case Tag::Ghost:
    return "ghost";
  case Tag::Old:
    return "old";
  }
  return "phy";
}

std::optional<Tag> tagFromName(const std::string &S) {
  if (S == "phy")
    return Tag::Phy;
  if (S == "ghost")
    return Tag::Ghost;
  if (S == "old")
    return Tag::Old;
  return std::nullopt;
}

JV valTToJson(const ValT &V) {
  JV O = JV::object();
  O.set("v", irValueToJson(V.V));
  O.set("tag", tagName(V.T));
  return O;
}

std::optional<ValT> valTFromJson(const JV &V) {
  auto IrV = irValueFromJson(V.get("v"));
  auto T = tagFromName(V.get("tag").getString());
  if (!IrV || !T)
    return std::nullopt;
  return ValT{std::move(*IrV), *T};
}

const char *exprKindName(Expr::Kind K) {
  switch (K) {
  case Expr::Kind::Val:
    return "val";
  case Expr::Kind::Bop:
    return "bop";
  case Expr::Kind::Icmp:
    return "icmp";
  case Expr::Kind::Select:
    return "select";
  case Expr::Kind::Cast:
    return "cast";
  case Expr::Kind::Gep:
    return "gep";
  case Expr::Kind::Load:
    return "load";
  }
  return "val";
}

} // namespace

JV crellvm::erhl::exprToJson(const Expr &E) {
  JV O = JV::object();
  O.set("k", exprKindName(E.kind()));
  if (E.kind() == Expr::Kind::Bop || E.kind() == Expr::Kind::Cast)
    O.set("op", opcodeName(E.opcode()));
  if (E.kind() == Expr::Kind::Icmp)
    O.set("pred", icmpPredName(E.icmpPred()));
  if (E.kind() == Expr::Kind::Gep)
    O.set("inb", E.isInbounds());
  O.set("ty", typeToJson(E.type()));
  JV Ops = JV::array();
  for (const ValT &V : E.operands())
    Ops.push(valTToJson(V));
  O.set("ops", std::move(Ops));
  return O;
}

std::optional<Expr> crellvm::erhl::exprFromJson(const JV &V) {
  if (V.kind() != JV::Kind::Object)
    return std::nullopt;
  const std::string &K = V.get("k").getString();
  auto Ty = typeFromJson(V.get("ty"));
  if (!Ty)
    return std::nullopt;
  std::vector<ValT> Ops;
  for (const JV &X : V.get("ops").elements()) {
    auto O = valTFromJson(X);
    if (!O)
      return std::nullopt;
    Ops.push_back(std::move(*O));
  }
  auto Arity = [&](size_t N) { return Ops.size() == N; };
  if (K == "val" && Arity(1))
    return Expr::val(Ops[0]);
  if (K == "bop" && Arity(2)) {
    auto Op = opcodeFromName(V.get("op").getString());
    if (!Op)
      return std::nullopt;
    return Expr::bop(*Op, *Ty, Ops[0], Ops[1]);
  }
  if (K == "icmp" && Arity(2)) {
    auto P = icmpPredFromName(V.get("pred").getString());
    if (!P)
      return std::nullopt;
    return Expr::icmp(*P, Ops[0], Ops[1]);
  }
  if (K == "select" && Arity(3))
    return Expr::select(*Ty, Ops[0], Ops[1], Ops[2]);
  if (K == "cast" && Arity(1)) {
    auto Op = opcodeFromName(V.get("op").getString());
    if (!Op)
      return std::nullopt;
    return Expr::cast(*Op, *Ty, Ops[0]);
  }
  if (K == "gep" && Arity(2))
    return Expr::gep(V.get("inb").getBool(), Ops[0], Ops[1]);
  if (K == "load" && Arity(1))
    return Expr::load(*Ty, Ops[0]);
  return std::nullopt;
}

JV crellvm::erhl::predToJson(const Pred &P) {
  JV O = JV::object();
  switch (P.kind()) {
  case Pred::Kind::Lessdef:
    O.set("k", "ld");
    O.set("e1", exprToJson(P.lhs()));
    O.set("e2", exprToJson(P.rhs()));
    break;
  case Pred::Kind::Noalias:
    O.set("k", "na");
    O.set("a", valTToJson(P.a()));
    O.set("b", valTToJson(P.b()));
    break;
  case Pred::Kind::Unique:
    O.set("k", "uniq");
    O.set("r", P.uniqueReg());
    break;
  case Pred::Kind::Private:
    O.set("k", "priv");
    O.set("a", valTToJson(P.a()));
    break;
  }
  return O;
}

std::optional<Pred> crellvm::erhl::predFromJson(const JV &V) {
  if (V.kind() != JV::Kind::Object)
    return std::nullopt;
  const std::string &K = V.get("k").getString();
  if (K == "ld") {
    auto E1 = exprFromJson(V.get("e1"));
    auto E2 = exprFromJson(V.get("e2"));
    if (!E1 || !E2)
      return std::nullopt;
    return Pred::lessdef(std::move(*E1), std::move(*E2));
  }
  if (K == "na") {
    auto A = valTFromJson(V.get("a"));
    auto B = valTFromJson(V.get("b"));
    if (!A || !B)
      return std::nullopt;
    return Pred::noalias(std::move(*A), std::move(*B));
  }
  if (K == "uniq")
    return Pred::unique(V.get("r").getString());
  if (K == "priv") {
    auto A = valTFromJson(V.get("a"));
    if (!A)
      return std::nullopt;
    return Pred::priv(std::move(*A));
  }
  return std::nullopt;
}

JV crellvm::erhl::assertionToJson(const Assertion &A) {
  JV O = JV::object();
  JV Src = JV::array(), Tgt = JV::array(), Md = JV::array();
  for (const Pred &P : A.Src)
    Src.push(predToJson(P));
  for (const Pred &P : A.Tgt)
    Tgt.push(predToJson(P));
  for (const RegT &R : A.Maydiff) {
    JV E = JV::object();
    E.set("name", R.Name);
    E.set("tag", tagName(R.T));
    Md.push(std::move(E));
  }
  O.set("src", std::move(Src));
  O.set("tgt", std::move(Tgt));
  O.set("md", std::move(Md));
  return O;
}

std::optional<Assertion>
crellvm::erhl::assertionFromJson(const JV &V) {
  if (V.kind() != JV::Kind::Object)
    return std::nullopt;
  Assertion A;
  for (const JV &X : V.get("src").elements()) {
    auto P = predFromJson(X);
    if (!P)
      return std::nullopt;
    A.Src.insert(std::move(*P));
  }
  for (const JV &X : V.get("tgt").elements()) {
    auto P = predFromJson(X);
    if (!P)
      return std::nullopt;
    A.Tgt.insert(std::move(*P));
  }
  for (const JV &X : V.get("md").elements()) {
    auto T = tagFromName(X.get("tag").getString());
    if (!T)
      return std::nullopt;
    A.Maydiff.insert(RegT{X.get("name").getString(), *T});
  }
  return A;
}

JV crellvm::erhl::infruleToJson(const Infrule &R) {
  JV O = JV::object();
  O.set("k", infruleKindName(R.K));
  O.set("side", R.S == Side::Src ? "src" : "tgt");
  JV Args = JV::array();
  for (const Expr &E : R.Args)
    Args.push(exprToJson(E));
  O.set("args", std::move(Args));
  return O;
}

std::optional<Infrule> crellvm::erhl::infruleFromJson(const JV &V) {
  if (V.kind() != JV::Kind::Object)
    return std::nullopt;
  auto K = infruleKindFromName(V.get("k").getString());
  if (!K)
    return std::nullopt;
  Infrule R;
  R.K = *K;
  R.S = V.get("side").getString() == "tgt" ? Side::Tgt : Side::Src;
  for (const JV &X : V.get("args").elements()) {
    auto E = exprFromJson(X);
    if (!E)
      return std::nullopt;
    R.Args.push_back(std::move(*E));
  }
  return R;
}
