//===- erhl/RuleTester.h - Randomized rule-soundness testing ---*- C++ -*-===//
///
/// \file
/// Randomized semantic verification of the installed inference rules — the
/// reproduction's substitute for the paper's Coq proofs (DESIGN.md §2).
/// For every rule kind, thousands of random instances are generated: a
/// random machine state, random premise definitions bound in that state,
/// and a rule application; every predicate the rule adds (and every
/// maydiff removal) is then evaluated semantically. A sound rule never
/// produces a false conclusion.
///
/// This is how the paper's §1 narrative is reproduced: "we found one of
/// our two mem2reg bugs during the verification of inference rules" — the
/// `constexpr_no_ub` rule is refuted here by a division-by-zero
/// counterexample (PR33673).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ERHL_RULETESTER_H
#define CRELLVM_ERHL_RULETESTER_H

#include "erhl/Infrule.h"

#include <cstdint>
#include <string>
#include <vector>

namespace crellvm {
namespace erhl {

/// Outcome of verifying one rule kind.
struct RuleVerdict {
  InfruleKind K;
  uint64_t Attempted = 0; ///< instances generated
  uint64_t Applied = 0;   ///< instances where the rule fired
  uint64_t Violations = 0;
  std::string FirstCounterexample;

  bool sound() const { return Violations == 0; }
};

/// Verifies one rule kind with \p Instances random instances.
RuleVerdict verifyRule(InfruleKind K, uint64_t Seed, uint64_t Instances);

/// Verifies every installed rule kind.
std::vector<RuleVerdict> verifyAllRules(uint64_t Seed, uint64_t Instances);

} // namespace erhl
} // namespace crellvm

#endif // CRELLVM_ERHL_RULETESTER_H
