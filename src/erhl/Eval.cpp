//===- erhl/Eval.cpp --------------------------------------------*- C++ -*-===//

#include "erhl/Eval.h"

using namespace crellvm;
using namespace crellvm::erhl;
using namespace crellvm::interp;
using namespace crellvm::ir;

static ExprEval ok(RtValue V) { return ExprEval{false, std::move(V)}; }
static ExprEval trap() { return ExprEval{true, RtValue::undef()}; }

static ExprEval evalConstValue(const ir::Value &V, const EvalState &S);

static ExprEval evalConstExprNode(const ConstExprNode &N,
                                  const EvalState &S) {
  std::vector<RtValue> Ops;
  for (const ir::Value &O : N.Ops) {
    ExprEval E = evalConstValue(O, S);
    if (E.Trap)
      return trap();
    Ops.push_back(E.V);
  }
  OpResult R;
  if (isBinaryOp(N.Op))
    R = evalBinaryOp(N.Op, N.Ty.intWidth(), Ops[0], Ops[1]);
  else
    R = evalCastOp(N.Op, N.Ty, Ops[0]);
  if (R.Trap)
    return trap();
  return ok(R.V);
}

static ExprEval evalConstValue(const ir::Value &V, const EvalState &S) {
  switch (V.kind()) {
  case ir::Value::Kind::ConstInt:
    return ok(RtValue::intVal(static_cast<uint64_t>(V.intValue()),
                              V.type().intWidth()));
  case ir::Value::Kind::Global: {
    auto It = S.Globals.find(V.globalName());
    // Unknown globals get a deterministic dangling block; dereferencing
    // one traps, which is the conservative choice.
    return ok(RtValue::ptrVal(
        It == S.Globals.end() ? -1 : It->second, 0));
  }
  case ir::Value::Kind::Undef:
    return ok(RtValue::undef());
  case ir::Value::Kind::ConstExpr:
    return evalConstExprNode(V.constExprNode(), S);
  case ir::Value::Kind::Reg:
    break;
  }
  return ok(RtValue::undef());
}

ExprEval crellvm::erhl::evalValT(const ValT &V, const EvalState &S) {
  if (V.isReg())
    return ok(S.regOr(V.regT(), RtValue::undef()));
  return evalConstValue(V.V, S);
}

ExprEval crellvm::erhl::evalExpr(const Expr &E, const EvalState &S) {
  std::vector<RtValue> Ops;
  for (const ValT &V : E.operands()) {
    ExprEval R = evalValT(V, S);
    if (R.Trap)
      return trap();
    Ops.push_back(R.V);
  }
  switch (E.kind()) {
  case Expr::Kind::Val:
    return ok(Ops[0]);
  case Expr::Kind::Bop: {
    OpResult R = evalBinaryOp(E.opcode(), E.type().intWidth(), Ops[0],
                              Ops[1]);
    return R.Trap ? trap() : ok(R.V);
  }
  case Expr::Kind::Icmp: {
    OpResult R = evalIcmpOp(E.icmpPred(), Ops[0], Ops[1]);
    return R.Trap ? trap() : ok(R.V);
  }
  case Expr::Kind::Select: {
    const RtValue &C = Ops[0];
    if (C.isPoison())
      return ok(RtValue::poison());
    if (C.isUndef())
      return ok(RtValue::undef());
    if (!C.isInt())
      return trap();
    return ok(C.bits() ? Ops[1] : Ops[2]);
  }
  case Expr::Kind::Cast: {
    OpResult R = evalCastOp(E.opcode(), E.type(), Ops[0]);
    return R.Trap ? trap() : ok(R.V);
  }
  case Expr::Kind::Gep: {
    const RtValue &Base = Ops[0], &Idx = Ops[1];
    if (Base.isPoison() || Idx.isPoison())
      return ok(RtValue::poison());
    if (Base.isUndef() || Idx.isUndef())
      return ok(E.isInbounds() ? RtValue::poison() : RtValue::undef());
    if (!Base.isPtr() || !Idx.isInt())
      return trap();
    int64_t NewOff = Base.offset() + Idx.sext();
    if (E.isInbounds()) {
      auto It = S.Memory.find(Base.block());
      if (It == S.Memory.end() || NewOff < 0 ||
          static_cast<uint64_t>(NewOff) > It->second.size())
        return ok(RtValue::poison());
    }
    return ok(RtValue::ptrVal(Base.block(), NewOff));
  }
  case Expr::Kind::Load: {
    const RtValue &P = Ops[0];
    if (!P.isPtr())
      return trap();
    auto It = S.Memory.find(P.block());
    if (It == S.Memory.end() || P.offset() < 0 ||
        static_cast<uint64_t>(P.offset()) >= It->second.size())
      return trap();
    return ok(It->second[P.offset()]);
  }
  }
  return trap();
}

bool crellvm::erhl::holdsLessdef(const Expr &E1, const Expr &E2,
                                 const EvalState &S) {
  ExprEval A = evalExpr(E1, S);
  ExprEval B = evalExpr(E2, S);
  if (A.Trap || B.Trap)
    return false;
  if (A.V.isUndef() || A.V.isPoison())
    return true;
  return A.V == B.V;
}

std::optional<bool> crellvm::erhl::holdsPred(const Pred &P,
                                             const EvalState &S) {
  switch (P.kind()) {
  case Pred::Kind::Lessdef:
    return holdsLessdef(P.lhs(), P.rhs(), S);
  case Pred::Kind::Noalias: {
    ExprEval A = evalValT(P.a(), S);
    ExprEval B = evalValT(P.b(), S);
    if (A.Trap || B.Trap)
      return false;
    if (!A.V.isPtr() || !B.V.isPtr())
      return true; // vacuous when either is not an address
    return A.V.block() != B.V.block();
  }
  case Pred::Kind::Unique:
  case Pred::Kind::Private:
    // Depends on the full memory injection; not decidable from one side.
    return std::nullopt;
  }
  return std::nullopt;
}

bool crellvm::erhl::refinesValue(const RtValue &S, const RtValue &T) {
  if (S.isUndef() || S.isPoison())
    return true;
  return S == T;
}
