//===- erhl/Assertion.cpp ---------------------------------------*- C++ -*-===//

#include "erhl/Assertion.h"

#include "support/Format.h"

#include <algorithm>

using namespace crellvm;
using namespace crellvm::erhl;
using namespace crellvm::ir;

std::string crellvm::erhl::tagSuffix(Tag T) {
  switch (T) {
  case Tag::Phy:
    return "";
  case Tag::Ghost:
    return "^";
  case Tag::Old:
    return "~old";
  }
  return "";
}

Expr Expr::val(ValT V) {
  Expr E;
  E.K = Kind::Val;
  E.Ty = V.V.type();
  E.Ops = {std::move(V)};
  return E;
}

Expr Expr::bop(Opcode Op, ir::Type Ty, ValT A, ValT B) {
  assert(isBinaryOp(Op) && "not a binary opcode");
  Expr E;
  E.K = Kind::Bop;
  E.Op = Op;
  E.Ty = Ty;
  E.Ops = {std::move(A), std::move(B)};
  return E;
}

Expr Expr::icmp(IcmpPred P, ValT A, ValT B) {
  Expr E;
  E.K = Kind::Icmp;
  E.Pred = P;
  E.Ty = ir::Type::intTy(1);
  E.Ops = {std::move(A), std::move(B)};
  return E;
}

Expr Expr::select(ir::Type Ty, ValT C, ValT A, ValT B) {
  Expr E;
  E.K = Kind::Select;
  E.Ty = Ty;
  E.Ops = {std::move(C), std::move(A), std::move(B)};
  return E;
}

Expr Expr::cast(Opcode Op, ir::Type DstTy, ValT A) {
  assert(isCast(Op) && "not a cast opcode");
  Expr E;
  E.K = Kind::Cast;
  E.Op = Op;
  E.Ty = DstTy;
  E.Ops = {std::move(A)};
  return E;
}

Expr Expr::gep(bool Inbounds, ValT Base, ValT Idx) {
  Expr E;
  E.K = Kind::Gep;
  E.Inbounds = Inbounds;
  E.Ty = ir::Type::ptrTy();
  E.Ops = {std::move(Base), std::move(Idx)};
  return E;
}

Expr Expr::load(ir::Type Ty, ValT Ptr) {
  Expr E;
  E.K = Kind::Load;
  E.Ty = Ty;
  E.Ops = {std::move(Ptr)};
  return E;
}

std::vector<RegT> Expr::regs() const {
  std::vector<RegT> Result;
  for (const ValT &V : Ops)
    if (V.isReg())
      Result.push_back(V.regT());
  return Result;
}

namespace {

/// Allocation-free `V.isReg() && V.regT() == R` (regT() would copy the
/// register name into a temporary).
bool valMentions(const ValT &V, const RegT &R) {
  return V.isReg() && V.T == R.T && V.V.regName() == R.Name;
}

} // namespace

bool Expr::mentions(const RegT &R) const {
  for (const ValT &V : Ops)
    if (valMentions(V, R))
      return true;
  return false;
}

Expr Expr::substituted(const ValT &From, const ValT &To) const {
  Expr E = *this;
  for (ValT &V : E.Ops)
    if (V == From)
      V = To;
  return E;
}

Expr Expr::substitutedAt(size_t Idx, const ValT &To) const {
  Expr E = *this;
  assert(Idx < E.Ops.size() && "operand index out of range");
  E.Ops[Idx] = To;
  return E;
}

bool Expr::sameShape(const Expr &E) const {
  return K == E.K && Op == E.Op && Pred == E.Pred &&
         Inbounds == E.Inbounds && Ty == E.Ty && Ops.size() == E.Ops.size();
}

bool Expr::operator==(const Expr &O) const {
  return sameShape(O) && Ops == O.Ops;
}

bool Expr::operator<(const Expr &O) const {
  if (K != O.K)
    return K < O.K;
  if (Op != O.Op)
    return Op < O.Op;
  if (Pred != O.Pred)
    return Pred < O.Pred;
  if (Inbounds != O.Inbounds)
    return Inbounds < O.Inbounds;
  if (Ty != O.Ty)
    return Ty < O.Ty;
  return Ops < O.Ops;
}

std::string Expr::str() const {
  switch (K) {
  case Kind::Val:
    return Ops[0].str();
  case Kind::Bop:
    return opcodeName(Op) + " " + Ops[0].str() + " " + Ops[1].str();
  case Kind::Icmp:
    return "icmp " + icmpPredName(Pred) + " " + Ops[0].str() + " " +
           Ops[1].str();
  case Kind::Select:
    return "select " + Ops[0].str() + " " + Ops[1].str() + " " +
           Ops[2].str();
  case Kind::Cast:
    return opcodeName(Op) + " " + Ops[0].str() + " to " + Ty.str();
  case Kind::Gep:
    return std::string("gep") + (Inbounds ? " inbounds " : " ") +
           Ops[0].str() + " " + Ops[1].str();
  case Kind::Load:
    return "*" + Ops[0].str();
  }
  return "<invalid>";
}

Pred Pred::lessdef(Expr A, Expr B) {
  Pred P;
  P.K = Kind::Lessdef;
  P.E1 = std::move(A);
  P.E2 = std::move(B);
  return P;
}

Pred Pred::noalias(ValT X, ValT Y) {
  Pred P;
  P.K = Kind::Noalias;
  // Normalize operand order so the set dedupes symmetric facts.
  if (Y < X)
    std::swap(X, Y);
  P.A = std::move(X);
  P.B = std::move(Y);
  return P;
}

Pred Pred::unique(std::string PhyReg) {
  Pred P;
  P.K = Kind::Unique;
  P.UniqReg = std::move(PhyReg);
  return P;
}

Pred Pred::priv(ValT V) {
  Pred P;
  P.K = Kind::Private;
  P.A = std::move(V);
  return P;
}

std::vector<RegT> Pred::regs() const {
  std::vector<RegT> Result;
  switch (K) {
  case Kind::Lessdef: {
    Result = E1.regs();
    for (const RegT &R : E2.regs())
      Result.push_back(R);
    break;
  }
  case Kind::Noalias: {
    for (const RegT &R : regsOf(A))
      Result.push_back(R);
    for (const RegT &R : regsOf(B))
      Result.push_back(R);
    break;
  }
  case Kind::Unique:
    Result.push_back(RegT{UniqReg, Tag::Phy});
    break;
  case Kind::Private:
    for (const RegT &R : regsOf(A))
      Result.push_back(R);
    break;
  }
  return Result;
}

bool Pred::mentions(const RegT &R) const {
  switch (K) {
  case Kind::Lessdef:
    return E1.mentions(R) || E2.mentions(R);
  case Kind::Noalias:
    return valMentions(A, R) || valMentions(B, R);
  case Kind::Unique:
    return R.T == Tag::Phy && UniqReg == R.Name;
  case Kind::Private:
    return valMentions(A, R);
  }
  return false;
}

bool Pred::operator==(const Pred &O) const {
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Lessdef:
    return E1 == O.E1 && E2 == O.E2;
  case Kind::Noalias:
    return A == O.A && B == O.B;
  case Kind::Unique:
    return UniqReg == O.UniqReg;
  case Kind::Private:
    return A == O.A;
  }
  return false;
}

bool Pred::operator<(const Pred &O) const {
  if (K != O.K)
    return K < O.K;
  switch (K) {
  case Kind::Lessdef:
    if (E1 != O.E1)
      return E1 < O.E1;
    return E2 < O.E2;
  case Kind::Noalias:
    if (A != O.A)
      return A < O.A;
    return B < O.B;
  case Kind::Unique:
    return UniqReg < O.UniqReg;
  case Kind::Private:
    return A < O.A;
  }
  return false;
}

std::string Pred::str() const {
  switch (K) {
  case Kind::Lessdef:
    return E1.str() + " >= " + E2.str();
  case Kind::Noalias:
    return A.str() + " _|_ " + B.str();
  case Kind::Unique:
    return "Uniq(%" + UniqReg + ")";
  case Kind::Private:
    return "Priv(" + A.str() + ")";
  }
  return "<invalid>";
}

bool Assertion::includes(const Assertion &Q) const {
  for (const Pred &P : Q.Src)
    if (!Src.count(P))
      return false;
  for (const Pred &P : Q.Tgt)
    if (!Tgt.count(P))
      return false;
  for (const RegT &R : Maydiff)
    if (!Q.Maydiff.count(R))
      return false;
  return true;
}

std::string Assertion::str() const {
  std::vector<std::string> Parts;
  for (const Pred &P : Src)
    Parts.push_back("src: " + P.str());
  for (const Pred &P : Tgt)
    Parts.push_back("tgt: " + P.str());
  std::vector<std::string> Md;
  for (const RegT &R : Maydiff)
    Md.push_back(R.str());
  Parts.push_back("MD{" + join(Md, ", ") + "}");
  return "{ " + join(Parts, "; ") + " }";
}
