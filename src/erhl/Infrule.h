//===- erhl/Infrule.h - ERHL inference rules --------------------*- C++ -*-===//
///
/// \file
/// The custom inference rules installed in the proof checker (paper §6
/// installs 221; we install the subset needed by the covered
/// optimizations, one arithmetic rule per covered instcombine micro-opt,
/// plus the nine non-arithmetic rules of Appendix I and the deliberately
/// unsound `constexpr_no_ub` rule that reproduces the paper's PR33673
/// finding).
///
/// Every rule is *monotone*: applying it can only add predicates to an
/// assertion or shrink the maydiff set, so ApplyInf composes as in Fig. 4.
/// Rules are part of the TCB; their semantic soundness is established by
/// the randomized rule-verification bench (the substitute for the paper's
/// Coq proofs, see DESIGN.md §2).
///
/// Argument conventions are documented per enumerator. "side" means the
/// rule exists in a Src and a Tgt variant selected by the Side argument.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ERHL_INFRULE_H
#define CRELLVM_ERHL_INFRULE_H

#include "erhl/Assertion.h"

#include <optional>

namespace crellvm {
namespace erhl {

/// Which unary assertion a rule manipulates.
enum class Side : uint8_t { Src, Tgt };

/// Rule identifiers. Arguments are positional Exprs (constants are Val
/// exprs); [e] denotes an expression argument, [v] a value argument
/// (a Val expr), [r] a register argument (a Val expr holding a register).
enum class InfruleKind : uint16_t {
  // --- Non-arithmetic rules (Appendix I / Fig. 16), verified --------------
  Transitivity,     ///< side, [e1] [e2] [e3]: e1>=e2, e2>=e3 |- e1>=e3
  Substitute,       ///< side, [e] [v] [v']: v>=v' |- e >= e[v->v']
  SubstituteRev,    ///< side, [e] [v] [v']: v>=v' |- e[v'->v] >= e
  SubstituteOp,     ///< side, [e] [i] [v] [v']: v>=v', e.op[i]==v
                    ///< |- e >= e{op[i] := v'} (single-position variant)
  IntroGhost,       ///< [r ghost] [e]: e regs not in maydiff |- e>=g, g>=e
  IntroEq,          ///< side, [e]: |- e >= e
  ReduceMaydiffLessdef, ///< [r] [e] [e']: r_s>=e, e~e', e'>=r_t |- r out MD
  ReduceMaydiffNonPhysical, ///< [r ghost/old]: unused |- r out of maydiff

  // --- Branching (used by GVN, Appendix C) --------------------------------
  IcmpToEq, ///< side, [c] [y] [C]: true>=c, c>=icmp eq y C |- y >= C

  // --- Arithmetic rules, one per covered micro-opt -------------------------
  // Fused rules: premises are definition lessdefs present in the unary
  // assertion of the given side; conclusions are lessdefs about the
  // rewritten register.
  AddAssoc,     ///< side, [y][x][a][C1][C2][C3]: y>=add x C2, x>=add a C1,
                ///< C3=C1+C2 |- y >= add a C3
  AddSub,       ///< side, [y][x][a][b]: y>=add x b, x>=sub a b |- y>=a
  AddComm,      ///< side, [y][a][b]: y>=add a b |- y >= add b a
  AddZero,      ///< side, [y][a]: y>=add a 0 |- y>=a
  AddOnebit,    ///< side, [y][a][b] (i1): y>=add a b |- y >= xor a b
  AddSignbit,   ///< side, [y][a][C=signbit]: y>=add a C |- y >= xor a C
  AddShift,     ///< side, [y][a]: y>=add a a |- y >= shl a 1
  AddOrAnd,     ///< side, [y][z][x][a][b]: z>=or a b, x>=and a b,
                ///< y>=add z x |- y >= add a b
  AddXorAnd,    ///< side, [y][z][x][a][b]: z>=xor a b, x>=and a b,
                ///< y>=add z x |- y >= or a b
  AddZextBool,  ///< side, [y][x][b][C][C1]: x>=zext b, y>=add x C,
                ///< C1=C+1 |- y >= select b C1 C
  SubAdd,       ///< side, [y][x][a][b]: y>=sub x b, x>=add a b |- y>=a
  SubZero,      ///< side, [y][a]: y>=sub a 0 |- y>=a
  SubSame,      ///< side, [y][a]: y>=sub a a |- y>=0
  SubMone,      ///< side, [y][a]: y>=sub -1 a |- y >= xor a -1
  SubOnebit,    ///< side, [y][a][b] (i1): y>=sub a b |- y >= xor a b
  SubConstAdd,  ///< side, [y][x][a][C1][C2][C3]: y>=sub x C2, x>=add a C1,
                ///< C3=C1-C2 |- y >= add a C3
  SubConstNot,  ///< side, [y][x][a][C][C1]: y>=sub C x, x>=xor a -1,
                ///< C1=C+1 |- y >= add a C1
  SubSub,       ///< side, [y][x][a][C1][C2][C3]: y>=sub x C2, x>=sub a C1,
                ///< C3=C1+C2 |- y >= sub a C3
  SubRemove,    ///< side, [y][x][a][b]: x>=add a b, y>=sub a x |- y>=sub 0 b
  SubShl,       ///< side, [y][x][a][C]: x>=shl a C, y>=sub 0 x
                ///< |- y >= mul a -(2^C)
  SubOrXor,     ///< side, [y][z][x][a][b]: z>=or a b, x>=xor a b,
                ///< y>=sub z x |- y >= and a b
  MulBool,      ///< side, [y][a][b] (i1): y>=mul a b |- y >= and a b
  MulMone,      ///< side, [y][a]: y>=mul a -1 |- y >= sub 0 a
  MulZero,      ///< side, [y][a]: y>=mul a 0 |- y>=0
  MulOne,       ///< side, [y][a]: y>=mul a 1 |- y>=a
  MulComm,      ///< side, [y][a][b]: y>=mul a b |- y >= mul b a
  MulShl,       ///< side, [y][a][C][C2]: y>=mul a C, C=2^C2 |- y>=shl a C2
  MulNeg,       ///< side, [y][x][z][a][b]: x>=sub 0 a, z>=sub 0 b,
                ///< y>=mul x z |- y >= mul a b
  SdivMone,     ///< side, [y][a]: y>=sdiv a -1 |- y >= sub 0 a
  UdivOne,      ///< side, [y][a]: y>=udiv a 1 |- y>=a
  UremOne,      ///< side, [y][a]: y>=urem a 1 |- y>=0
  AndSame,      ///< side, [y][a]: y>=and a a |- y>=a
  AndZero,      ///< side, [y][a]: y>=and a 0 |- y>=0
  AndMone,      ///< side, [y][a]: y>=and a -1 |- y>=a
  AndNot,       ///< side, [y][x][a]: x>=xor a -1, y>=and a x |- y>=0
  AndOr,        ///< side, [y][x][a][b]: x>=or a b, y>=and a x |- y>=a
  AndUndef,     ///< side, [y][a]: y>=and a undef |- y>=undef
  AndComm,      ///< side, [y][a][b]: y>=and a b |- y >= and b a
  AndDeMorgan,  ///< side, [z][x][y][w][a][b]: x>=xor a -1, y>=xor b -1,
                ///< z>=and x y, w>=or a b |- z >= xor w -1
  OrSame,       ///< side, [y][a]: y>=or a a |- y>=a
  OrZero,       ///< side, [y][a]: y>=or a 0 |- y>=a
  OrMone,       ///< side, [y][a]: y>=or a -1 |- y>=-1
  OrNot,        ///< side, [y][x][a]: x>=xor a -1, y>=or a x |- y>=-1
  OrAnd,        ///< side, [y][x][a][b]: x>=and a b, y>=or a x |- y>=a
  OrUndef,      ///< side, [y][a]: y>=or a undef |- y>=undef
  OrComm,       ///< side, [y][a][b]: y>=or a b |- y >= or b a
  OrXor,        ///< side, [y][z][x][a][b]: z>=xor a b, x>=and a b,
                ///< y>=or z x |- y >= or a b
  OrXor2,       ///< side, [y][z][a][b]: z>=xor a b, y>=or z b |- y>=or a b
  OrOr,         ///< side, [y][z][a][b]: z>=or a b, y>=or z b |- y>=z
  XorSame,      ///< side, [y][a]: y>=xor a a |- y>=0
  XorZero,      ///< side, [y][a]: y>=xor a 0 |- y>=a
  XorUndef,     ///< side, [y][a]: y>=xor a undef |- y>=undef
  XorComm,      ///< side, [y][a][b]: y>=xor a b |- y >= xor b a
  ShiftZero1,   ///< side, [y][a]: y>=shl a 0 |- y>=a
  LshrZero,     ///< side, [y][a]: y>=lshr a 0 |- y>=a
  AshrZero,     ///< side, [y][a]: y>=ashr a 0 |- y>=a
  ShiftZero2,   ///< side, [y][a]: y>=shl 0 a |- y>=0
  ShiftUndef1,  ///< side, [y][a]: y>=shl a undef |- y>=undef
  IcmpSame,     ///< side, [y][p][a]: y>=icmp p a a |- y >= (eq-ish result)
  IcmpSwap,     ///< side, [y][p][a][b]: y>=icmp p a b |- y>=icmp p' b a
  IcmpEqSub,    ///< side, [y][x][a][b]: x>=sub a b, y>=icmp eq x 0
                ///< |- y >= icmp eq a b
  IcmpNeSub,    ///< side, [y][x][a][b]: like IcmpEqSub with ne
  IcmpEqXor,    ///< side, [y][x][a][b]: x>=xor a b, y>=icmp eq x 0
                ///< |- y >= icmp eq a b
  IcmpNeXor,    ///< side, [y][x][a][b]: like IcmpEqXor with ne
  IcmpEqSrem,   ///< side, [y][x][a][C]: x>=srem a C, y>=icmp eq x 0 with
                ///< C=1 or C=-1 |- y >= true
  IcmpEqAddAdd, ///< side, [z][x][y][a][b][c]: x>=add a c, y>=add b c,
                ///< z>=icmp eq x y |- z >= icmp eq a b
  IcmpNeAddAdd, ///< side, like IcmpEqAddAdd with ne
  SelectSame,   ///< side, [y][c][a]: y>=select c a a |- y>=a
  SelectIcmpEq, ///< side, [z][y][a][C]: y>=icmp eq a C, z>=select y C a
                ///< |- z>=a
  SelectIcmpNe, ///< side, [z][y][a][C]: y>=icmp ne a C, z>=select y a C
                ///< |- z>=a
  SelectTrue,   ///< side, [y][a][b]: y>=select true a b |- y>=a
  SelectFalse,  ///< side, [y][a][b]: y>=select false a b |- y>=b
  TruncZext,    ///< side, [y][x][a]: x>=zext a, y>=trunc x (to a's type)
                ///< |- y>=a
  TruncTrunc,   ///< side, [y][x][a]: x>=trunc a, y>=trunc x |- y>=trunc a
  ZextZext,     ///< side, [y][x][a]: x>=zext a, y>=zext x |- y>=zext a
  SextSext,     ///< side, [y][x][a]: x>=sext a, y>=sext x |- y>=sext a
  SextZext,     ///< side, [y][x][a]: x>=zext a, y>=sext x |- y>=zext a
  BitcastSame,  ///< side, [y][a]: y>=bitcast a to same ty |- y>=a
  BitcastBitcast, ///< side, [y][x][a]: x>=bitcast a, y>=bitcast x
                ///< |- y >= bitcast a
  InttoptrPtrtoint, ///< side, [y][x][p]: x>=ptrtoint p, y>=inttoptr x
                ///< |- y>=p
  GepZero,      ///< side, [y][p]: y>=gep [inbounds] p 0 |- y>=p
  BopCommExpr,  ///< side, [opnum][a][b]: |- op a b >= op b a (and reverse)
                ///< for commutative op; a pure identity used by the
                ///< GVN_PRE automation (Appendix C "commutativity_add")
  NegVal,       ///< side, [z][y][a]: y>=sub 0 a, z>=sub 0 y |- z>=a
  XorNot,       ///< side, [z][x][a]: x>=xor a -1, z>=xor x -1 |- z>=a
  XorXor,       ///< side, [y][x][a][C1][C2]: x>=xor a C1, y>=xor x C2
                ///< |- y>=xor a (C1^C2)
  AndAnd,       ///< side, [y][x][a][C1][C2]: like XorXor with C1&C2
  OrConst,      ///< side, [y][x][a][C1][C2]: like XorXor with C1|C2
  ShlShl,       ///< side, [y][x][a][C1][C2]: x>=shl a C1, y>=shl x C2,
                ///< 0<=C1, 0<=C2, C1+C2<width |- y>=shl a (C1+C2)
  LshrLshr,     ///< side, like ShlShl for lshr
  SdivOne,      ///< side, [y][a]: y>=sdiv a 1 |- y>=a
  SremOne,      ///< side, [y][a]: y>=srem a 1 |- y>=0
  SremMone,     ///< side, [y][a]: y>=srem a -1 |- y>=0 (INT_MIN rem -1
                ///< traps, falsifying the premise)
  IcmpUltZero,  ///< side, [y][a]: y>=icmp ult a 0 |- y>=0
  IcmpUgeZero,  ///< side, [y][a]: y>=icmp uge a 0 |- y>=1
  IcmpInverse,  ///< side, [z][y][p][a][b]: z>=icmp p a b, y>=xor z 1
                ///< |- y>=icmp inv(p) a b
  SelectNotCond,///< side, [z][y][c][a][b]: y>=xor c 1 (i1),
                ///< z>=select y a b |- z>=select c b a
  SdivSubSrem,  ///< side, [z][x][y][a][b]: y>=srem a b, x>=sub a y,
                ///< z>=sdiv x b |- z>=sdiv a b
  UdivSubUrem,  ///< side, like SdivSubSrem for urem/udiv
  LshrZero2,    ///< side, [y][a]: y>=lshr 0 a |- y>=0
  AshrZero2,    ///< side, [y][a]: y>=ashr 0 a |- y>=0
  IcmpUleMone,  ///< side, [y][a]: y>=icmp ule a -1 |- y>=1
  IcmpUgtMone,  ///< side, [y][a]: y>=icmp ugt a -1 |- y>=0
  IcmpSgeSmin,  ///< side, [y][a]: y>=icmp sge a INT_MIN |- y>=1
  IcmpSltSmin,  ///< side, [y][a]: y>=icmp slt a INT_MIN |- y>=0

  AddDisjointOr,///< side, [y][a][b]: y>=add a b, a and b integer
                ///< constants with disjoint bits (a&b == 0) |- y >= or a b.
                ///< The disjointness side condition is what keeps the rule
                ///< sound; setWeakenedDisjointOrCheck (test-only) drops it,
                ///< modeling a weakened infrule the differential-execution
                ///< oracle must catch (driver/DiffOracle.h).

  // --- Deliberately unsound (PR33673 reproduction; see DESIGN.md §4) ------
  ConstexprNoUb, ///< side, [C][v]: |- C >= v, v >= C where v is the folded
                 ///< value of constant expression C *assuming it cannot
                 ///< trap* — the assumption LLVM's mem2reg made, falsified
                 ///< by expressions like 1 / ((int)G - (int)G).
};

/// Number of distinct rule kinds (for iteration in the rule verifier).
constexpr uint16_t NumInfruleKinds =
    static_cast<uint16_t>(InfruleKind::ConstexprNoUb) + 1;

/// Rule name as serialized ("add_assoc", "intro_ghost", ...).
std::string infruleKindName(InfruleKind K);
std::optional<InfruleKind> infruleKindFromName(const std::string &Name);

/// An inference-rule instance.
struct Infrule {
  InfruleKind K;
  Side S = Side::Src; ///< ignored by side-less rules
  std::vector<Expr> Args;

  /// A copy of this rule targeting the other unary assertion.
  Infrule withSide(Side NewS) const {
    Infrule R = *this;
    R.S = NewS;
    return R;
  }

  std::string str() const;
};

/// Applies \p Rule to \p A in place. Returns std::nullopt on success, or a
/// diagnostic when the rule's premises are not present in \p A (in which
/// case \p A is unchanged). A failed rule application is not itself a
/// validation failure — the subsequent inclusion check will fail and
/// report — but the diagnostic helps debugging proof generation (paper §6
/// "Experience").
std::optional<std::string> applyInfrule(const Infrule &Rule, Assertion &A);

/// Test-only: drops AddDisjointOr's disjoint-constant side condition, so
/// the rule accepts arbitrary operands and becomes unsound. Exists solely
/// so tests can demonstrate that the differential-execution oracle catches
/// a divergence the checker misses when an infrule is weakened
/// (tests/DiffOracleTest.cpp). Process-global and atomic; never enable
/// outside tests.
void setWeakenedDisjointOrCheck(bool On);
bool weakenedDisjointOrCheck();

} // namespace erhl
} // namespace crellvm

#endif // CRELLVM_ERHL_INFRULE_H
