//===- erhl/Serialize.h - JSON (de)serialization of assertions -*- C++ -*-===//
///
/// \file
/// JSON round-trip for the ERHL assertion language and inference rules,
/// used by the proof exchange format (the paper serializes proofs as
/// plain-text JSON; its I/O cost is one of the timing columns we
/// reproduce).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ERHL_SERIALIZE_H
#define CRELLVM_ERHL_SERIALIZE_H

#include "erhl/Infrule.h"
#include "json/Json.h"

namespace crellvm {
namespace erhl {

json::Value exprToJson(const Expr &E);
std::optional<Expr> exprFromJson(const json::Value &V);

json::Value predToJson(const Pred &P);
std::optional<Pred> predFromJson(const json::Value &V);

json::Value assertionToJson(const Assertion &A);
std::optional<Assertion> assertionFromJson(const json::Value &V);

json::Value infruleToJson(const Infrule &R);
std::optional<Infrule> infruleFromJson(const json::Value &V);

} // namespace erhl
} // namespace crellvm

#endif // CRELLVM_ERHL_SERIALIZE_H
