//===- erhl/Infrule.cpp -----------------------------------------*- C++ -*-===//

#include "erhl/Infrule.h"

#include "support/Format.h"

#include <atomic>
#include <cassert>

using namespace crellvm;
using namespace crellvm::erhl;
using namespace crellvm::ir;

namespace {

const std::pair<InfruleKind, const char *> KindNames[] = {
    {InfruleKind::Transitivity, "transitivity"},
    {InfruleKind::Substitute, "substitute"},
    {InfruleKind::SubstituteRev, "substitute_rev"},
    {InfruleKind::SubstituteOp, "substitute_op"},
    {InfruleKind::IntroGhost, "intro_ghost"},
    {InfruleKind::IntroEq, "intro_eq"},
    {InfruleKind::ReduceMaydiffLessdef, "reduce_maydiff_lessdef"},
    {InfruleKind::ReduceMaydiffNonPhysical, "reduce_maydiff_non_physical"},
    {InfruleKind::IcmpToEq, "icmp_to_eq"},
    {InfruleKind::AddAssoc, "add_assoc"},
    {InfruleKind::AddSub, "add_sub"},
    {InfruleKind::AddComm, "add_comm"},
    {InfruleKind::AddZero, "add_zero"},
    {InfruleKind::AddOnebit, "add_onebit"},
    {InfruleKind::AddSignbit, "add_signbit"},
    {InfruleKind::AddShift, "add_shift"},
    {InfruleKind::AddOrAnd, "add_or_and"},
    {InfruleKind::AddXorAnd, "add_xor_and"},
    {InfruleKind::AddZextBool, "add_zext_bool"},
    {InfruleKind::SubAdd, "sub_add"},
    {InfruleKind::SubZero, "sub_zero"},
    {InfruleKind::SubSame, "sub_same"},
    {InfruleKind::SubMone, "sub_mone"},
    {InfruleKind::SubOnebit, "sub_onebit"},
    {InfruleKind::SubConstAdd, "sub_const_add"},
    {InfruleKind::SubConstNot, "sub_const_not"},
    {InfruleKind::SubSub, "sub_sub"},
    {InfruleKind::SubRemove, "sub_remove"},
    {InfruleKind::SubShl, "sub_shl"},
    {InfruleKind::SubOrXor, "sub_or_xor"},
    {InfruleKind::MulBool, "mul_bool"},
    {InfruleKind::MulMone, "mul_mone"},
    {InfruleKind::MulZero, "mul_zero"},
    {InfruleKind::MulOne, "mul_one"},
    {InfruleKind::MulComm, "mul_comm"},
    {InfruleKind::MulShl, "mul_shl"},
    {InfruleKind::MulNeg, "mul_neg"},
    {InfruleKind::SdivMone, "sdiv_mone"},
    {InfruleKind::UdivOne, "udiv_one"},
    {InfruleKind::UremOne, "urem_one"},
    {InfruleKind::AndSame, "and_same"},
    {InfruleKind::AndZero, "and_zero"},
    {InfruleKind::AndMone, "and_mone"},
    {InfruleKind::AndNot, "and_not"},
    {InfruleKind::AndOr, "and_or"},
    {InfruleKind::AndUndef, "and_undef"},
    {InfruleKind::AndComm, "and_comm"},
    {InfruleKind::AndDeMorgan, "and_de_morgan"},
    {InfruleKind::OrSame, "or_same"},
    {InfruleKind::OrZero, "or_zero"},
    {InfruleKind::OrMone, "or_mone"},
    {InfruleKind::OrNot, "or_not"},
    {InfruleKind::OrAnd, "or_and"},
    {InfruleKind::OrUndef, "or_undef"},
    {InfruleKind::OrComm, "or_comm"},
    {InfruleKind::OrXor, "or_xor"},
    {InfruleKind::OrXor2, "or_xor2"},
    {InfruleKind::OrOr, "or_or"},
    {InfruleKind::XorSame, "xor_same"},
    {InfruleKind::XorZero, "xor_zero"},
    {InfruleKind::XorUndef, "xor_undef"},
    {InfruleKind::XorComm, "xor_comm"},
    {InfruleKind::ShiftZero1, "shift_zero1"},
    {InfruleKind::LshrZero, "lshr_zero"},
    {InfruleKind::AshrZero, "ashr_zero"},
    {InfruleKind::ShiftZero2, "shift_zero2"},
    {InfruleKind::ShiftUndef1, "shift_undef1"},
    {InfruleKind::IcmpSame, "icmp_same"},
    {InfruleKind::IcmpSwap, "icmp_swap"},
    {InfruleKind::IcmpEqSub, "icmp_eq_sub"},
    {InfruleKind::IcmpNeSub, "icmp_ne_sub"},
    {InfruleKind::IcmpEqXor, "icmp_eq_xor"},
    {InfruleKind::IcmpNeXor, "icmp_ne_xor"},
    {InfruleKind::IcmpEqSrem, "icmp_eq_srem"},
    {InfruleKind::IcmpEqAddAdd, "icmp_eq_add_add"},
    {InfruleKind::IcmpNeAddAdd, "icmp_ne_add_add"},
    {InfruleKind::SelectSame, "select_same"},
    {InfruleKind::SelectIcmpEq, "select_icmp_eq"},
    {InfruleKind::SelectIcmpNe, "select_icmp_ne"},
    {InfruleKind::SelectTrue, "select_true"},
    {InfruleKind::SelectFalse, "select_false"},
    {InfruleKind::TruncZext, "trunc_zext"},
    {InfruleKind::TruncTrunc, "trunc_trunc"},
    {InfruleKind::ZextZext, "zext_zext"},
    {InfruleKind::SextSext, "sext_sext"},
    {InfruleKind::SextZext, "sext_zext"},
    {InfruleKind::BitcastSame, "bitcast_same"},
    {InfruleKind::BitcastBitcast, "bitcast_bitcast"},
    {InfruleKind::InttoptrPtrtoint, "inttoptr_ptrtoint"},
    {InfruleKind::GepZero, "gep_zero"},
    {InfruleKind::BopCommExpr, "bop_comm_expr"},
    {InfruleKind::NegVal, "neg_val"},
    {InfruleKind::XorNot, "xor_not"},
    {InfruleKind::XorXor, "xor_xor"},
    {InfruleKind::AndAnd, "and_and"},
    {InfruleKind::OrConst, "or_const"},
    {InfruleKind::ShlShl, "shl_shl"},
    {InfruleKind::LshrLshr, "lshr_lshr"},
    {InfruleKind::SdivOne, "sdiv_one"},
    {InfruleKind::SremOne, "srem_one"},
    {InfruleKind::SremMone, "srem_mone"},
    {InfruleKind::IcmpUltZero, "icmp_ult_zero"},
    {InfruleKind::IcmpUgeZero, "icmp_uge_zero"},
    {InfruleKind::IcmpInverse, "icmp_inverse"},
    {InfruleKind::SelectNotCond, "select_not_cond"},
    {InfruleKind::SdivSubSrem, "sdiv_sub_srem"},
    {InfruleKind::UdivSubUrem, "udiv_sub_urem"},
    {InfruleKind::LshrZero2, "lshr_zero2"},
    {InfruleKind::AshrZero2, "ashr_zero2"},
    {InfruleKind::IcmpUleMone, "icmp_ule_mone"},
    {InfruleKind::IcmpUgtMone, "icmp_ugt_mone"},
    {InfruleKind::IcmpSgeSmin, "icmp_sge_smin"},
    {InfruleKind::IcmpSltSmin, "icmp_slt_smin"},
    {InfruleKind::AddDisjointOr, "add_disjoint_or"},
    {InfruleKind::ConstexprNoUb, "constexpr_no_ub"},
};

/// Test-only switch dropping AddDisjointOr's side condition; see
/// setWeakenedDisjointOrCheck in Infrule.h.
std::atomic<bool> WeakenDisjointOr{false};

} // namespace

void crellvm::erhl::setWeakenedDisjointOrCheck(bool On) {
  WeakenDisjointOr.store(On, std::memory_order_relaxed);
}

bool crellvm::erhl::weakenedDisjointOrCheck() {
  return WeakenDisjointOr.load(std::memory_order_relaxed);
}

std::string crellvm::erhl::infruleKindName(InfruleKind K) {
  for (const auto &KV : KindNames)
    if (KV.first == K)
      return KV.second;
  return "<unknown>";
}

std::optional<InfruleKind>
crellvm::erhl::infruleKindFromName(const std::string &Name) {
  for (const auto &KV : KindNames)
    if (Name == KV.second)
      return KV.first;
  return std::nullopt;
}

std::string Infrule::str() const {
  std::vector<std::string> Parts;
  for (const Expr &E : Args)
    Parts.push_back(E.str());
  return infruleKindName(K) + "[" + (S == Side::Src ? "src" : "tgt") + "](" +
         join(Parts, ", ") + ")";
}

namespace {

/// Shared helper for applying one rule instance: premise lookup, fused
/// forward/reverse handling (see Infrule.h), and conclusion insertion.
class RuleApplier {
public:
  RuleApplier(const Infrule &R, Assertion &A) : R(R), A(A) {
    U = (R.S == Side::Src) ? &A.Src : &A.Tgt;
  }

  std::optional<std::string> run();

private:
  // -- Argument accessors --------------------------------------------------
  bool checkArity(size_t N) {
    if (R.Args.size() == N)
      return true;
    Err = "rule " + infruleKindName(R.K) + ": expected " +
          std::to_string(N) + " arguments";
    return false;
  }
  const Expr &arg(size_t I) const { return R.Args[I]; }
  /// The I-th argument as a tagged value (must be a Val expr).
  bool valArg(size_t I, ValT &Out) {
    if (!R.Args[I].isVal()) {
      Err = "rule " + infruleKindName(R.K) + ": argument " +
            std::to_string(I) + " must be a value";
      return false;
    }
    Out = R.Args[I].asVal();
    return true;
  }
  /// The I-th argument as an integer constant.
  bool constArg(size_t I, int64_t &Out) {
    ValT V;
    if (!valArg(I, V))
      return false;
    if (!V.V.isConstInt()) {
      Err = "rule " + infruleKindName(R.K) + ": argument " +
            std::to_string(I) + " must be an integer constant";
      return false;
    }
    Out = V.V.intValue();
    return true;
  }

  bool has(const Expr &L, const Expr &Rhs) const {
    return U->count(Pred::lessdef(L, Rhs)) != 0;
  }

  // -- Fused-rule machinery --------------------------------------------------
  /// Registers a definition premise "Reg is defined as E". The forward
  /// variant needs Reg >= E, the reverse one E >= Reg.
  void prem(const Expr &Reg, const Expr &E) {
    Fwd = Fwd && has(Reg, E);
    Rev = Rev && has(E, Reg);
  }
  /// Finishes a fused rule: concludes Y >= ENew (forward) and/or
  /// ENew >= Y (reverse, only when \p RevSound — see the soundness notes in
  /// Infrule.h and the rule-verification bench).
  bool fused(const Expr &Y, const Expr &ENew, bool RevSound = true) {
    if (!Fwd && !(Rev && RevSound)) {
      Err = "rule " + infruleKindName(R.K) + ": premises not found";
      return false;
    }
    if (Fwd)
      Concl.push_back(Pred::lessdef(Y, ENew));
    if (Rev && RevSound)
      Concl.push_back(Pred::lessdef(ENew, Y));
    return true;
  }

  /// Requires predicate P literally; fails the rule otherwise.
  bool require(const Pred &P) {
    if (U->count(P))
      return true;
    Err = "rule " + infruleKindName(R.K) + ": missing premise " + P.str();
    return false;
  }

  void conclude(const Pred &P) { Concl.push_back(P); }

  // Shorthands.
  static Expr V(const ValT &X) { return Expr::val(X); }
  Expr C(int64_t N, ir::Type Ty) const {
    return Expr::val(ValT::phy(ir::Value::constInt(
        interpTruncate(N, Ty.intWidth()), Ty)));
  }
  static int64_t interpTruncate(int64_t N, unsigned W) {
    if (W >= 64)
      return N;
    uint64_t Bits = static_cast<uint64_t>(N) & ((uint64_t(1) << W) - 1);
    uint64_t Sign = uint64_t(1) << (W - 1);
    return static_cast<int64_t>(Bits ^ Sign) - static_cast<int64_t>(Sign);
  }
  // Rule arguments are attacker-controlled 64-bit constants straight from
  // the (untrusted) proof: fold them with wrapping uint64_t arithmetic,
  // never signed +/-/<<, which overflow (UB) on edge inputs like
  // INT64_MIN or a width-1 shift amount at i64.
  static int64_t wrapAdd(int64_t A, int64_t B) {
    return static_cast<int64_t>(static_cast<uint64_t>(A) +
                                static_cast<uint64_t>(B));
  }
  static int64_t wrapSub(int64_t A, int64_t B) {
    return static_cast<int64_t>(static_cast<uint64_t>(A) -
                                static_cast<uint64_t>(B));
  }
  static int64_t wrapNeg(int64_t A) {
    return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
  }
  /// 2^N as a signed constant for any 0 <= N <= 63 without shifting a
  /// signed 1 into (or past) the sign bit.
  static int64_t signedPow2(unsigned N) {
    return static_cast<int64_t>(uint64_t(1) << (N & 63));
  }
  static Expr bop(Opcode Op, const ValT &A, const ValT &B) {
    return Expr::bop(Op, A.V.type(), A, B);
  }

  bool applyCore();
  bool applyArith();

  const Infrule &R;
  Assertion &A;
  Unary *U;
  bool Fwd = true, Rev = true;
  std::vector<Pred> Concl;
  std::string Err;
};

std::optional<std::string> RuleApplier::run() {
  bool Ok = applyCore();
  if (!Ok && Err.empty())
    Ok = applyArith();
  if (!Ok)
    return Err.empty() ? "rule " + infruleKindName(R.K) + ": not applicable"
                       : Err;
  for (const Pred &P : Concl)
    U->insert(P);
  return std::nullopt;
}

/// Core (non-arithmetic) rules; returns false with Err empty when R.K is
/// not a core rule.
bool RuleApplier::applyCore() {
  switch (R.K) {
  case InfruleKind::Transitivity: {
    if (!checkArity(3))
      return false;
    if (!has(arg(0), arg(1)) || !has(arg(1), arg(2))) {
      Err = "transitivity: premises not found";
      return false;
    }
    conclude(Pred::lessdef(arg(0), arg(2)));
    return true;
  }
  case InfruleKind::Substitute:
  case InfruleKind::SubstituteRev: {
    if (!checkArity(3))
      return false;
    ValT From, To;
    if (!valArg(1, From) || !valArg(2, To))
      return false;
    // Substituting the divisor of a trapping operation is unsound (the
    // replaced operand may make the divisor undef); other positions only
    // affect the dividend, which propagates undef harmlessly.
    if (arg(0).kind() == Expr::Kind::Bop && ir::mayTrap(arg(0).opcode()) &&
        arg(0).operands()[1] == From) {
      Err = "substitute: refusing to substitute a divisor";
      return false;
    }
    if (!has(V(From), V(To))) {
      Err = "substitute: missing premise " + From.str() + " >= " + To.str();
      return false;
    }
    if (R.K == InfruleKind::Substitute)
      conclude(Pred::lessdef(arg(0), arg(0).substituted(From, To)));
    else
      conclude(Pred::lessdef(arg(0).substituted(To, From), arg(0)));
    return true;
  }
  case InfruleKind::SubstituteOp: {
    if (!checkArity(4))
      return false;
    int64_t Idx;
    ValT From, To;
    if (!constArg(1, Idx) || !valArg(2, From) || !valArg(3, To))
      return false;
    const Expr &E = arg(0);
    if (E.kind() == Expr::Kind::Bop && ir::mayTrap(E.opcode()) && Idx == 1) {
      Err = "substitute_op: refusing to substitute a divisor";
      return false;
    }
    if (Idx < 0 || static_cast<size_t>(Idx) >= E.operands().size() ||
        !(E.operands()[Idx] == From)) {
      Err = "substitute_op: operand position does not hold the value";
      return false;
    }
    if (!has(Expr::val(From), Expr::val(To))) {
      Err = "substitute_op: missing premise " + From.str() + " >= " +
            To.str();
      return false;
    }
    conclude(Pred::lessdef(E, E.substitutedAt(Idx, To)));
    return true;
  }
  case InfruleKind::IntroGhost: {
    if (!checkArity(2))
      return false;
    ValT G;
    if (!valArg(0, G))
      return false;
    if (!G.isReg() || G.T != Tag::Ghost) {
      Err = "intro_ghost: first argument must be a ghost register";
      return false;
    }
    const Expr &E = arg(1);
    for (const RegT &Reg : E.regs()) {
      if (A.Maydiff.count(Reg)) {
        Err = "intro_ghost: " + Reg.str() + " is in the maydiff set";
        return false;
      }
    }
    if (E.isLoad()) {
      Err = "intro_ghost: loads may differ across sides";
      return false;
    }
    // Make the ghost fresh: drop every predicate mentioning it, both
    // sides, and take it out of the maydiff set.
    RegT GR = G.regT();
    auto DropMentions = [&GR](Unary &Set) {
      for (auto It = Set.begin(); It != Set.end();) {
        bool Mentions = false;
        for (const RegT &Reg : It->regs())
          if (Reg == GR)
            Mentions = true;
        It = Mentions ? Set.erase(It) : ++It;
      }
    };
    DropMentions(A.Src);
    DropMentions(A.Tgt);
    A.Maydiff.erase(GR);
    A.Src.insert(Pred::lessdef(E, V(G)));
    A.Tgt.insert(Pred::lessdef(V(G), E));
    return true;
  }
  case InfruleKind::IntroEq: {
    if (!checkArity(1))
      return false;
    if (arg(0).kind() == Expr::Kind::Bop && ir::mayTrap(arg(0).opcode())) {
      Err = "intro_eq: refusing trapping expression";
      return false;
    }
    conclude(Pred::lessdef(arg(0), arg(0)));
    return true;
  }
  case InfruleKind::ReduceMaydiffLessdef: {
    if (!checkArity(3))
      return false;
    ValT Reg;
    if (!valArg(0, Reg))
      return false;
    if (!Reg.isReg()) {
      Err = "reduce_maydiff_lessdef: first argument must be a register";
      return false;
    }
    const Expr &E = arg(1), &E2 = arg(2);
    if (!E.sameShape(E2)) {
      Err = "reduce_maydiff_lessdef: expression shapes differ";
      return false;
    }
    if (E.isLoad()) {
      Err = "reduce_maydiff_lessdef: loads may differ across sides";
      return false;
    }
    for (size_t I = 0; I != E.operands().size(); ++I) {
      const ValT &OA = E.operands()[I], &OB = E2.operands()[I];
      if (OA != OB) {
        Err = "reduce_maydiff_lessdef: operand mismatch";
        return false;
      }
      if (OA.isReg() && A.Maydiff.count(OA.regT())) {
        Err = "reduce_maydiff_lessdef: " + OA.regT().str() +
              " is in the maydiff set";
        return false;
      }
    }
    if (!A.Src.count(Pred::lessdef(V(Reg), E))) {
      Err = "reduce_maydiff_lessdef: missing source premise";
      return false;
    }
    if (!A.Tgt.count(Pred::lessdef(E2, V(Reg)))) {
      Err = "reduce_maydiff_lessdef: missing target premise";
      return false;
    }
    A.Maydiff.erase(Reg.regT());
    return true;
  }
  case InfruleKind::ReduceMaydiffNonPhysical: {
    if (!checkArity(1))
      return false;
    ValT Reg;
    if (!valArg(0, Reg))
      return false;
    if (!Reg.isReg() || Reg.T == Tag::Phy) {
      Err = "reduce_maydiff_non_physical: register must be ghost or old";
      return false;
    }
    RegT RT = Reg.regT();
    auto Mentions = [&RT](const Unary &Set) {
      for (const Pred &P : Set)
        for (const RegT &Reg2 : P.regs())
          if (Reg2 == RT)
            return true;
      return false;
    };
    if (Mentions(A.Src) || Mentions(A.Tgt)) {
      Err = "reduce_maydiff_non_physical: " + RT.str() + " is still used";
      return false;
    }
    A.Maydiff.erase(RT);
    return true;
  }
  case InfruleKind::IcmpToEq: {
    if (!checkArity(3))
      return false;
    ValT Cond, Y, Const;
    if (!valArg(0, Cond) || !valArg(1, Y) || !valArg(2, Const))
      return false;
    ir::Type BoolTy = ir::Type::intTy(1);
    Expr True = Expr::val(ValT::phy(ir::Value::constInt(1, BoolTy)));
    if (!require(Pred::lessdef(True, V(Cond))))
      return false;
    if (!require(Pred::lessdef(Expr::icmp(IcmpPred::Eq, Y, Const), V(Cond))))
      return false;
    conclude(Pred::lessdef(V(Y), V(Const)));
    return true;
  }
  case InfruleKind::BopCommExpr: {
    if (!checkArity(3))
      return false;
    int64_t OpNum;
    if (!constArg(0, OpNum))
      return false;
    auto Op = static_cast<Opcode>(OpNum);
    if (Op != Opcode::Add && Op != Opcode::Mul && Op != Opcode::And &&
        Op != Opcode::Or && Op != Opcode::Xor) {
      Err = "bop_comm_expr: operator is not commutative";
      return false;
    }
    ValT Av, Bv;
    if (!valArg(1, Av) || !valArg(2, Bv))
      return false;
    ir::Type Ty = Av.V.type();
    conclude(Pred::lessdef(Expr::bop(Op, Ty, Av, Bv),
                           Expr::bop(Op, Ty, Bv, Av)));
    conclude(Pred::lessdef(Expr::bop(Op, Ty, Bv, Av),
                           Expr::bop(Op, Ty, Av, Bv)));
    return true;
  }
  case InfruleKind::ConstexprNoUb: {
    // Deliberately unsound: asserts that the constant expression C always
    // evaluates to its no-trap folding v (LLVM PR33673; DESIGN.md §4).
    if (!checkArity(2))
      return false;
    conclude(Pred::lessdef(arg(0), arg(1)));
    conclude(Pred::lessdef(arg(1), arg(0)));
    return true;
  }
  default:
    return false; // handled by applyArith
  }
}

/// Fused arithmetic rules. Returns false (with Err set) on failure.
bool RuleApplier::applyArith() {
  using K = InfruleKind;
  using O = Opcode;

  // Most rules share the pattern: bind value args, register definition
  // premises via prem(), then call fused() with the rewritten expression.
  ValT Y, X, Z, W, Av, Bv, Cv;
  int64_t C1 = 0, C2 = 0, C3 = 0;

  switch (R.K) {
  case K::AddAssoc: {
    if (!checkArity(6) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Z) || !valArg(4, W) || !valArg(5, Cv))
      return false;
    if (!constArg(3, C1) || !constArg(4, C2) || !constArg(5, C3))
      return false;
    ir::Type Ty = Y.V.type();
    if (interpTruncate(wrapAdd(C1, C2), Ty.intWidth()) !=
        interpTruncate(C3, Ty.intWidth())) {
      Err = "add_assoc: constant mismatch";
      return false;
    }
    prem(V(Y), bop(O::Add, X, W));
    prem(V(X), bop(O::Add, Av, Z));
    return fused(V(Y), bop(O::Add, Av, Cv));
  }
  case K::AddSub: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Bv))
      return false;
    prem(V(Y), bop(O::Add, X, Bv));
    prem(V(X), bop(O::Sub, Av, Bv));
    return fused(V(Y), V(Av), /*RevSound=*/false);
  }
  case K::AddComm: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, Av) || !valArg(2, Bv))
      return false;
    prem(V(Y), bop(O::Add, Av, Bv));
    return fused(V(Y), bop(O::Add, Bv, Av));
  }
  case K::AddDisjointOr: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, Av) || !valArg(2, Bv))
      return false;
    // Sound only for constants with disjoint bits: no carries, so
    // a + b == a | b. The weakened variant (test-only) accepts any
    // operands and is refuted by rule verification / the diff oracle.
    if (!weakenedDisjointOrCheck()) {
      if (!constArg(1, C1) || !constArg(2, C2))
        return false;
      unsigned Width = Y.V.type().intWidth();
      uint64_t Mask =
          Width >= 64 ? ~uint64_t(0) : (uint64_t(1) << Width) - 1;
      if ((static_cast<uint64_t>(C1) & static_cast<uint64_t>(C2) & Mask) !=
          0) {
        Err = "add_disjoint_or: constants share bits";
        return false;
      }
    }
    prem(V(Y), bop(O::Add, Av, Bv));
    return fused(V(Y), bop(O::Or, Av, Bv));
  }
  case K::AddZero: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Add, Av, ValT::phy(ir::Value::constInt(
                                  0, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::AddOnebit:
  case K::SubOnebit: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, Av) || !valArg(2, Bv))
      return false;
    if (Y.V.type() != ir::Type::intTy(1)) {
      Err = "onebit rule requires i1";
      return false;
    }
    prem(V(Y), bop(R.K == K::AddOnebit ? O::Add : O::Sub, Av, Bv));
    return fused(V(Y), bop(O::Xor, Av, Bv));
  }
  case K::AddSignbit: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, Av) || !valArg(2, Cv))
      return false;
    if (!constArg(2, C1))
      return false;
    unsigned Width = Y.V.type().intWidth();
    int64_t SignBit = interpTruncate(signedPow2(Width - 1), Width);
    if (C1 != SignBit) {
      Err = "add_signbit: constant is not the sign bit";
      return false;
    }
    prem(V(Y), bop(O::Add, Av, Cv));
    return fused(V(Y), bop(O::Xor, Av, Cv));
  }
  case K::AddShift: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    if (Y.V.type().intWidth() < 2) {
      // shl a 1 is poison at width 1 (found by rule verification).
      Err = "add_shift: requires width > 1";
      return false;
    }
    prem(V(Y), bop(O::Add, Av, Av));
    return fused(V(Y), bop(O::Shl, Av,
                           ValT::phy(ir::Value::constInt(1, Av.V.type()))));
  }
  case K::AddOrAnd:
  case K::AddXorAnd:
  case K::OrXor:
  case K::SubOrXor: {
    if (!checkArity(5) || !valArg(0, Y) || !valArg(1, Z) || !valArg(2, X) ||
        !valArg(3, Av) || !valArg(4, Bv))
      return false;
    O First = (R.K == K::AddOrAnd) ? O::Or
              : (R.K == K::AddXorAnd || R.K == K::OrXor) ? O::Xor
                                                         : O::Or;
    O Second = (R.K == K::SubOrXor) ? O::Xor : O::And;
    O Outer = (R.K == K::OrXor)      ? O::Or
              : (R.K == K::SubOrXor) ? O::Sub
                                     : O::Add;
    O Result = (R.K == K::AddOrAnd)  ? O::Add
               : (R.K == K::AddXorAnd) ? O::Or
               : (R.K == K::OrXor)     ? O::Or
                                       : O::And;
    prem(V(Z), bop(First, Av, Bv));
    prem(V(X), bop(Second, Av, Bv));
    prem(V(Y), bop(Outer, Z, X));
    return fused(V(Y), bop(Result, Av, Bv));
  }
  case K::AddZextBool: {
    if (!checkArity(5) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Bv) ||
        !valArg(3, Z) || !valArg(4, W))
      return false;
    if (!constArg(3, C1) || !constArg(4, C2))
      return false;
    ir::Type Ty = Y.V.type();
    if (interpTruncate(wrapAdd(C1, 1), Ty.intWidth()) !=
        interpTruncate(C2, Ty.intWidth())) {
      Err = "add_zext_bool: constant mismatch";
      return false;
    }
    prem(V(X), Expr::cast(O::ZExt, Ty, Bv));
    prem(V(Y), bop(O::Add, X, Z));
    return fused(V(Y), Expr::select(Ty, Bv, W, Z));
  }
  case K::SubAdd: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Bv))
      return false;
    prem(V(Y), bop(O::Sub, X, Bv));
    prem(V(X), bop(O::Add, Av, Bv));
    return fused(V(Y), V(Av), /*RevSound=*/false);
  }
  case K::SubZero: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Sub, Av, ValT::phy(ir::Value::constInt(
                                  0, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::SubSame: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Sub, Av, Av));
    return fused(V(Y), C(0, Y.V.type()), /*RevSound=*/false);
  }
  case K::SubMone: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Sub, ValT::phy(ir::Value::constInt(-1, Av.V.type())),
                   Av));
    return fused(V(Y), bop(O::Xor, Av, ValT::phy(ir::Value::constInt(
                                           -1, Av.V.type()))));
  }
  case K::SubConstAdd: {
    if (!checkArity(6) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Z) || !valArg(4, W) || !valArg(5, Cv))
      return false;
    if (!constArg(3, C1) || !constArg(4, C2) || !constArg(5, C3))
      return false;
    ir::Type Ty = Y.V.type();
    if (interpTruncate(wrapSub(C1, C2), Ty.intWidth()) !=
        interpTruncate(C3, Ty.intWidth())) {
      Err = "sub_const_add: constant mismatch";
      return false;
    }
    prem(V(Y), bop(O::Sub, X, W));
    prem(V(X), bop(O::Add, Av, Z));
    return fused(V(Y), bop(O::Add, Av, Cv));
  }
  case K::SubConstNot: {
    if (!checkArity(5) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Z) || !valArg(4, W))
      return false;
    if (!constArg(3, C1) || !constArg(4, C2))
      return false;
    ir::Type Ty = Y.V.type();
    if (interpTruncate(wrapAdd(C1, 1), Ty.intWidth()) !=
        interpTruncate(C2, Ty.intWidth())) {
      Err = "sub_const_not: constant mismatch";
      return false;
    }
    prem(V(X), bop(O::Xor, Av, ValT::phy(ir::Value::constInt(-1, Ty))));
    prem(V(Y), bop(O::Sub, Z, X));
    return fused(V(Y), bop(O::Add, Av, W));
  }
  case K::SubSub: {
    if (!checkArity(6) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Z) || !valArg(4, W) || !valArg(5, Cv))
      return false;
    if (!constArg(3, C1) || !constArg(4, C2) || !constArg(5, C3))
      return false;
    ir::Type Ty = Y.V.type();
    if (interpTruncate(wrapAdd(C1, C2), Ty.intWidth()) !=
        interpTruncate(C3, Ty.intWidth())) {
      Err = "sub_sub: constant mismatch";
      return false;
    }
    prem(V(Y), bop(O::Sub, X, W));
    prem(V(X), bop(O::Sub, Av, Z));
    return fused(V(Y), bop(O::Sub, Av, Cv));
  }
  case K::SubRemove: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Bv))
      return false;
    prem(V(X), bop(O::Add, Av, Bv));
    prem(V(Y), bop(O::Sub, Av, X));
    return fused(V(Y),
                 bop(O::Sub, ValT::phy(ir::Value::constInt(0, Y.V.type())),
                     Bv),
                 /*RevSound=*/false);
  }
  case K::SubShl: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Cv))
      return false;
    if (!constArg(3, C1))
      return false;
    ir::Type Ty = Y.V.type();
    if (C1 < 0 || C1 >= static_cast<int64_t>(Ty.intWidth())) {
      Err = "sub_shl: shift amount out of range";
      return false;
    }
    prem(V(X), bop(O::Shl, Av, Cv));
    prem(V(Y), bop(O::Sub, ValT::phy(ir::Value::constInt(0, Ty)), X));
    return fused(V(Y), bop(O::Mul, Av, ValT::phy(ir::Value::constInt(
                                           interpTruncate(
                                               wrapNeg(signedPow2(
                                                   static_cast<unsigned>(
                                                       C1))),
                                               Ty.intWidth()),
                                           Ty))));
  }
  case K::MulBool: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, Av) || !valArg(2, Bv))
      return false;
    if (Y.V.type() != ir::Type::intTy(1)) {
      Err = "mul_bool requires i1";
      return false;
    }
    prem(V(Y), bop(O::Mul, Av, Bv));
    return fused(V(Y), bop(O::And, Av, Bv));
  }
  case K::MulMone:
  case K::SdivMone: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    O Op = (R.K == K::MulMone) ? O::Mul : O::SDiv;
    prem(V(Y), bop(Op, Av, ValT::phy(ir::Value::constInt(-1, Av.V.type()))));
    // sdiv INT_MIN / -1 traps, so the reverse direction is unsound for
    // sdiv; mul keeps it.
    return fused(V(Y),
                 bop(O::Sub, ValT::phy(ir::Value::constInt(0, Av.V.type())),
                     Av),
                 /*RevSound=*/R.K == K::MulMone);
  }
  case K::MulZero: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Mul, Av, ValT::phy(ir::Value::constInt(
                                  0, Av.V.type()))));
    return fused(V(Y), C(0, Y.V.type()), /*RevSound=*/false);
  }
  case K::MulOne: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Mul, Av, ValT::phy(ir::Value::constInt(
                                  1, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::MulComm:
  case K::AndComm:
  case K::OrComm:
  case K::XorComm: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, Av) || !valArg(2, Bv))
      return false;
    O Op = (R.K == K::MulComm)   ? O::Mul
           : (R.K == K::AndComm) ? O::And
           : (R.K == K::OrComm)  ? O::Or
                                 : O::Xor;
    prem(V(Y), bop(Op, Av, Bv));
    return fused(V(Y), bop(Op, Bv, Av));
  }
  case K::MulShl: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, Av) || !valArg(2, Z) ||
        !valArg(3, W))
      return false;
    if (!constArg(2, C1) || !constArg(3, C2))
      return false;
    ir::Type Ty = Y.V.type();
    if (C2 < 0 || C2 >= Ty.intWidth() ||
        interpTruncate(signedPow2(static_cast<unsigned>(C2)), Ty.intWidth()) !=
            interpTruncate(C1, Ty.intWidth())) {
      Err = "mul_shl: constant is not the matching power of two";
      return false;
    }
    prem(V(Y), bop(O::Mul, Av, Z));
    return fused(V(Y), bop(O::Shl, Av, W));
  }
  case K::MulNeg: {
    if (!checkArity(5) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Z) ||
        !valArg(3, Av) || !valArg(4, Bv))
      return false;
    ValT Zero = ValT::phy(ir::Value::constInt(0, Y.V.type()));
    prem(V(X), bop(O::Sub, Zero, Av));
    prem(V(Z), bop(O::Sub, Zero, Bv));
    prem(V(Y), bop(O::Mul, X, Z));
    return fused(V(Y), bop(O::Mul, Av, Bv));
  }
  case K::AndSame:
  case K::OrSame: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(R.K == K::AndSame ? O::And : O::Or, Av, Av));
    return fused(V(Y), V(Av));
  }
  case K::AndZero: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::And, Av, ValT::phy(ir::Value::constInt(
                                  0, Av.V.type()))));
    return fused(V(Y), C(0, Y.V.type()), /*RevSound=*/false);
  }
  case K::AndMone: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::And, Av, ValT::phy(ir::Value::constInt(
                                  -1, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::AndNot:
  case K::OrNot: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av))
      return false;
    ir::Type Ty = Y.V.type();
    prem(V(X), bop(O::Xor, Av, ValT::phy(ir::Value::constInt(-1, Ty))));
    prem(V(Y), bop(R.K == K::AndNot ? O::And : O::Or, Av, X));
    return fused(V(Y), C(R.K == K::AndNot ? 0 : -1, Ty),
                 /*RevSound=*/false);
  }
  case K::AndOr: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Bv))
      return false;
    prem(V(X), bop(O::Or, Av, Bv));
    prem(V(Y), bop(O::And, Av, X));
    return fused(V(Y), V(Av), /*RevSound=*/false);
  }
  case K::OrAnd: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Bv))
      return false;
    prem(V(X), bop(O::And, Av, Bv));
    prem(V(Y), bop(O::Or, Av, X));
    return fused(V(Y), V(Av), /*RevSound=*/false);
  }
  case K::AndUndef:
  case K::OrUndef:
  case K::XorUndef: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    O Op = (R.K == K::AndUndef) ? O::And
           : (R.K == K::OrUndef) ? O::Or
                                 : O::Xor;
    ir::Type Ty = Y.V.type();
    prem(V(Y), bop(Op, Av, ValT::phy(ir::Value::undef(Ty))));
    return fused(V(Y), Expr::val(ValT::phy(ir::Value::undef(Ty))));
  }
  case K::AndDeMorgan: {
    if (!checkArity(6) || !valArg(0, Z) || !valArg(1, X) || !valArg(2, Y) ||
        !valArg(3, W) || !valArg(4, Av) || !valArg(5, Bv))
      return false;
    ir::Type Ty = Z.V.type();
    ValT MOne = ValT::phy(ir::Value::constInt(-1, Ty));
    prem(V(X), bop(O::Xor, Av, MOne));
    prem(V(Y), bop(O::Xor, Bv, MOne));
    prem(V(Z), bop(O::And, X, Y));
    // The w operand may be a ghost bound by intro_ghost, which provides
    // the `or a b >= w` direction; the forward variant uses that, the
    // reverse one its mirror (soundness notes in Infrule.h).
    Fwd = Fwd && has(bop(O::Or, Av, Bv), V(W));
    Rev = Rev && has(V(W), bop(O::Or, Av, Bv));
    return fused(V(Z), bop(O::Xor, W, MOne));
  }
  case K::OrZero: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Or, Av, ValT::phy(ir::Value::constInt(
                                 0, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::OrMone: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Or, Av, ValT::phy(ir::Value::constInt(
                                 -1, Av.V.type()))));
    return fused(V(Y), C(-1, Y.V.type()), /*RevSound=*/false);
  }
  case K::XorSame: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Xor, Av, Av));
    return fused(V(Y), C(0, Y.V.type()), /*RevSound=*/false);
  }
  case K::XorZero: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Xor, Av, ValT::phy(ir::Value::constInt(
                                  0, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::ShiftZero1: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Shl, Av, ValT::phy(ir::Value::constInt(
                                  0, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::ShiftZero2: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::Shl, ValT::phy(ir::Value::constInt(0, Y.V.type())),
                   Av));
    return fused(V(Y), C(0, Y.V.type()), /*RevSound=*/false);
  }
  case K::ShiftUndef1: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    ir::Type Ty = Y.V.type();
    prem(V(Y), bop(O::Shl, Av, ValT::phy(ir::Value::undef(Ty))));
    return fused(V(Y), Expr::val(ValT::phy(ir::Value::undef(Ty))));
  }
  case K::IcmpSame: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(2, Av))
      return false;
    int64_t PredNum;
    if (!constArg(1, PredNum))
      return false;
    auto P = static_cast<IcmpPred>(PredNum);
    bool Reflexive = P == IcmpPred::Eq || P == IcmpPred::Uge ||
                     P == IcmpPred::Ule || P == IcmpPred::Sge ||
                     P == IcmpPred::Sle;
    prem(V(Y), Expr::icmp(P, Av, Av));
    return fused(V(Y), C(Reflexive ? 1 : 0, ir::Type::intTy(1)),
                 /*RevSound=*/false);
  }
  case K::IcmpSwap: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(2, Av) || !valArg(3, Bv))
      return false;
    int64_t PredNum;
    if (!constArg(1, PredNum))
      return false;
    auto P = static_cast<IcmpPred>(PredNum);
    auto Swapped = [](IcmpPred Q) {
      switch (Q) {
      case IcmpPred::Eq:
      case IcmpPred::Ne:
        return Q;
      case IcmpPred::Ugt:
        return IcmpPred::Ult;
      case IcmpPred::Uge:
        return IcmpPred::Ule;
      case IcmpPred::Ult:
        return IcmpPred::Ugt;
      case IcmpPred::Ule:
        return IcmpPred::Uge;
      case IcmpPred::Sgt:
        return IcmpPred::Slt;
      case IcmpPred::Sge:
        return IcmpPred::Sle;
      case IcmpPred::Slt:
        return IcmpPred::Sgt;
      case IcmpPred::Sle:
        return IcmpPred::Sge;
      }
      return Q;
    };
    prem(V(Y), Expr::icmp(P, Av, Bv));
    return fused(V(Y), Expr::icmp(Swapped(P), Bv, Av));
  }
  case K::IcmpEqSub:
  case K::IcmpNeSub:
  case K::IcmpEqXor:
  case K::IcmpNeXor: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Bv))
      return false;
    O Op = (R.K == K::IcmpEqSub || R.K == K::IcmpNeSub) ? O::Sub : O::Xor;
    IcmpPred P = (R.K == K::IcmpEqSub || R.K == K::IcmpEqXor)
                     ? IcmpPred::Eq
                     : IcmpPred::Ne;
    ValT Zero = ValT::phy(ir::Value::constInt(0, Av.V.type()));
    prem(V(X), bop(Op, Av, Bv));
    prem(V(Y), Expr::icmp(P, X, Zero));
    return fused(V(Y), Expr::icmp(P, Av, Bv));
  }
  case K::IcmpEqSrem: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Cv))
      return false;
    if (!constArg(3, C1))
      return false;
    if (C1 != 1 && C1 != -1) {
      Err = "icmp_eq_srem: divisor must be 1 or -1";
      return false;
    }
    ValT Zero = ValT::phy(ir::Value::constInt(0, Av.V.type()));
    prem(V(X), bop(O::SRem, Av, Cv));
    prem(V(Y), Expr::icmp(IcmpPred::Eq, X, Zero));
    return fused(V(Y), C(1, ir::Type::intTy(1)), /*RevSound=*/false);
  }
  case K::LshrZero:
  case K::AshrZero: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(R.K == K::LshrZero ? O::LShr : O::AShr, Av,
                   ValT::phy(ir::Value::constInt(0, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::UdivOne: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::UDiv, Av, ValT::phy(ir::Value::constInt(
                                    1, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::UremOne: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::URem, Av, ValT::phy(ir::Value::constInt(
                                    1, Av.V.type()))));
    return fused(V(Y), C(0, Y.V.type()), /*RevSound=*/false);
  }
  case K::OrXor2: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, Z) || !valArg(2, Av) ||
        !valArg(3, Bv))
      return false;
    prem(V(Z), bop(O::Xor, Av, Bv));
    prem(V(Y), bop(O::Or, Z, Bv));
    return fused(V(Y), bop(O::Or, Av, Bv));
  }
  case K::OrOr: {
    if (!checkArity(4) || !valArg(0, Y) || !valArg(1, Z) || !valArg(2, Av) ||
        !valArg(3, Bv))
      return false;
    prem(V(Z), bop(O::Or, Av, Bv));
    prem(V(Y), bop(O::Or, Z, Bv));
    return fused(V(Y), V(Z));
  }
  case K::IcmpEqAddAdd:
  case K::IcmpNeAddAdd: {
    if (!checkArity(6) || !valArg(0, Z) || !valArg(1, X) || !valArg(2, Y) ||
        !valArg(3, Av) || !valArg(4, Bv) || !valArg(5, Cv))
      return false;
    IcmpPred P = R.K == K::IcmpEqAddAdd ? IcmpPred::Eq : IcmpPred::Ne;
    prem(V(X), bop(O::Add, Av, Cv));
    prem(V(Y), bop(O::Add, Bv, Cv));
    prem(V(Z), Expr::icmp(P, X, Y));
    // The reverse direction is unsound: an undef shared addend leaves z
    // unconstrained while the conclusion's comparison is defined (found
    // by rule verification).
    return fused(V(Z), Expr::icmp(P, Av, Bv), /*RevSound=*/false);
  }
  case K::SelectIcmpEq: {
    if (!checkArity(4) || !valArg(0, Z) || !valArg(1, Y) || !valArg(2, Av) ||
        !valArg(3, Cv))
      return false;
    prem(V(Y), Expr::icmp(IcmpPred::Eq, Av, Cv));
    prem(V(Z), Expr::select(Av.V.type(), Y, Cv, Av));
    return fused(V(Z), V(Av));
  }
  case K::SelectIcmpNe: {
    if (!checkArity(4) || !valArg(0, Z) || !valArg(1, Y) || !valArg(2, Av) ||
        !valArg(3, Cv))
      return false;
    prem(V(Y), Expr::icmp(IcmpPred::Ne, Av, Cv));
    prem(V(Z), Expr::select(Av.V.type(), Y, Av, Cv));
    return fused(V(Z), V(Av));
  }
  case K::SelectSame: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, Cv) || !valArg(2, Av))
      return false;
    prem(V(Y), Expr::select(Av.V.type(), Cv, Av, Av));
    return fused(V(Y), V(Av), /*RevSound=*/false);
  }
  case K::SelectTrue:
  case K::SelectFalse: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, Av) || !valArg(2, Bv))
      return false;
    bool True = R.K == K::SelectTrue;
    ValT Cond =
        ValT::phy(ir::Value::constInt(True ? 1 : 0, ir::Type::intTy(1)));
    prem(V(Y), Expr::select(Av.V.type(), Cond, Av, Bv));
    return fused(V(Y), V(True ? Av : Bv));
  }
  case K::TruncZext: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av))
      return false;
    if (Y.V.type() != Av.V.type()) {
      Err = "trunc_zext: result width must be the original width";
      return false;
    }
    prem(V(X), Expr::cast(O::ZExt, X.V.type(), Av));
    prem(V(Y), Expr::cast(O::Trunc, Y.V.type(), X));
    return fused(V(Y), V(Av));
  }
  case K::TruncTrunc:
  case K::ZextZext:
  case K::SextSext: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av))
      return false;
    O Op = (R.K == K::TruncTrunc) ? O::Trunc
           : (R.K == K::ZextZext) ? O::ZExt
                                  : O::SExt;
    if (R.K == K::TruncTrunc) {
      if (!(Y.V.type().intWidth() < X.V.type().intWidth() &&
            X.V.type().intWidth() < Av.V.type().intWidth())) {
        Err = "trunc_trunc: widths must strictly decrease";
        return false;
      }
    } else if (!(Y.V.type().intWidth() > X.V.type().intWidth() &&
                 X.V.type().intWidth() > Av.V.type().intWidth())) {
      Err = "ext_ext: widths must strictly increase";
      return false;
    }
    prem(V(X), Expr::cast(Op, X.V.type(), Av));
    prem(V(Y), Expr::cast(Op, Y.V.type(), X));
    return fused(V(Y), Expr::cast(Op, Y.V.type(), Av));
  }
  case K::SextZext: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av))
      return false;
    if (!(X.V.type().intWidth() > Av.V.type().intWidth() &&
          Y.V.type().intWidth() > X.V.type().intWidth())) {
      Err = "sext_zext: widths must strictly increase";
      return false;
    }
    prem(V(X), Expr::cast(O::ZExt, X.V.type(), Av));
    prem(V(Y), Expr::cast(O::SExt, Y.V.type(), X));
    return fused(V(Y), Expr::cast(O::ZExt, Y.V.type(), Av));
  }
  case K::BitcastSame: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), Expr::cast(O::Bitcast, Y.V.type(), Av));
    if (Y.V.type() != Av.V.type()) {
      Err = "bitcast_same: types differ";
      return false;
    }
    return fused(V(Y), V(Av));
  }
  case K::BitcastBitcast: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av))
      return false;
    prem(V(X), Expr::cast(O::Bitcast, X.V.type(), Av));
    prem(V(Y), Expr::cast(O::Bitcast, Y.V.type(), X));
    return fused(V(Y), Expr::cast(O::Bitcast, Y.V.type(), Av));
  }
  case K::InttoptrPtrtoint: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av))
      return false;
    if (X.V.type() != ir::Type::intTy(64)) {
      Err = "inttoptr_ptrtoint: requires an i64 round-trip";
      return false;
    }
    prem(V(X), Expr::cast(O::PtrToInt, X.V.type(), Av));
    prem(V(Y), Expr::cast(O::IntToPtr, ir::Type::ptrTy(), X));
    return fused(V(Y), V(Av));
  }
  case K::GepZero: {
    if (!checkArity(3) || !valArg(0, Y) || !valArg(1, Av) || !valArg(2, Z))
      return false;
    int64_t Inb;
    if (!constArg(2, Inb))
      return false;
    ValT Zero = ValT::phy(ir::Value::constInt(0, ir::Type::intTy(64)));
    prem(V(Y), Expr::gep(Inb != 0, Av, Zero));
    return fused(V(Y), V(Av), /*RevSound=*/Inb == 0);
  }
  case K::NegVal:
  case K::XorNot: {
    if (!checkArity(3) || !valArg(0, Z) || !valArg(1, X) || !valArg(2, Av))
      return false;
    ir::Type Ty = Z.V.type();
    if (R.K == K::NegVal) {
      ValT Zero = ValT::phy(ir::Value::constInt(0, Ty));
      prem(V(X), bop(O::Sub, Zero, Av));
      prem(V(Z), bop(O::Sub, Zero, X));
    } else {
      ValT Mone = ValT::phy(ir::Value::constInt(-1, Ty));
      prem(V(X), bop(O::Xor, Av, Mone));
      prem(V(Z), bop(O::Xor, X, Mone));
    }
    return fused(V(Z), V(Av));
  }
  case K::XorXor:
  case K::AndAnd:
  case K::OrConst: {
    if (!checkArity(5) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Z) || !valArg(4, W))
      return false;
    int64_t C1, C2;
    if (!constArg(3, C1) || !constArg(4, C2))
      return false;
    O Op = R.K == K::XorXor ? O::Xor : R.K == K::AndAnd ? O::And : O::Or;
    int64_t C3 = R.K == K::XorXor   ? (C1 ^ C2)
                 : R.K == K::AndAnd ? (C1 & C2)
                                    : (C1 | C2);
    ir::Type Ty = Y.V.type();
    prem(V(X), bop(Op, Av, Z));
    prem(V(Y), bop(Op, X, W));
    return fused(V(Y), Expr::bop(Op, Ty, Av,
                                 ValT::phy(ir::Value::constInt(
                                     interpTruncate(C3, Ty.intWidth()),
                                     Ty))));
  }
  case K::ShlShl:
  case K::LshrLshr: {
    if (!checkArity(5) || !valArg(0, Y) || !valArg(1, X) || !valArg(2, Av) ||
        !valArg(3, Z) || !valArg(4, W))
      return false;
    int64_t C1, C2;
    if (!constArg(3, C1) || !constArg(4, C2))
      return false;
    ir::Type Ty = Y.V.type();
    // Sum as uint64_t: both amounts come from the untrusted proof, and
    // C1 + C2 overflows int64_t (UB) for e.g. two INT64_MAX amounts.
    if (C1 < 0 || C2 < 0 ||
        static_cast<uint64_t>(C1) + static_cast<uint64_t>(C2) >=
            Ty.intWidth()) {
      Err = "shift chain: amounts must be in range";
      return false;
    }
    O Op = R.K == K::ShlShl ? O::Shl : O::LShr;
    prem(V(X), bop(Op, Av, Z));
    prem(V(Y), bop(Op, X, W));
    return fused(V(Y), bop(Op, Av, ValT::phy(ir::Value::constInt(
                                       wrapAdd(C1, C2), Ty))));
  }
  case K::SdivOne: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    prem(V(Y), bop(O::SDiv, Av, ValT::phy(ir::Value::constInt(
                                    1, Av.V.type()))));
    return fused(V(Y), V(Av));
  }
  case K::SremOne:
  case K::SremMone: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    int64_t Cn = R.K == K::SremOne ? 1 : -1;
    prem(V(Y), bop(O::SRem, Av, ValT::phy(ir::Value::constInt(
                                    Cn, Av.V.type()))));
    return fused(V(Y), C(0, Y.V.type()), /*RevSound=*/false);
  }
  case K::IcmpUltZero:
  case K::IcmpUgeZero: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    IcmpPred P = R.K == K::IcmpUltZero ? IcmpPred::Ult : IcmpPred::Uge;
    ValT Zero = ValT::phy(ir::Value::constInt(0, Av.V.type()));
    prem(V(Y), Expr::icmp(P, Av, Zero));
    return fused(V(Y), C(R.K == K::IcmpUgeZero ? 1 : 0, ir::Type::intTy(1)),
                 /*RevSound=*/false);
  }
  case K::IcmpInverse: {
    if (!checkArity(5) || !valArg(0, Z) || !valArg(1, Y) || !valArg(3, Av) ||
        !valArg(4, Bv))
      return false;
    int64_t PredNum;
    if (!constArg(2, PredNum))
      return false;
    auto P = static_cast<IcmpPred>(PredNum);
    auto Inverse = [](IcmpPred Q) {
      switch (Q) {
      case IcmpPred::Eq:
        return IcmpPred::Ne;
      case IcmpPred::Ne:
        return IcmpPred::Eq;
      case IcmpPred::Ugt:
        return IcmpPred::Ule;
      case IcmpPred::Uge:
        return IcmpPred::Ult;
      case IcmpPred::Ult:
        return IcmpPred::Uge;
      case IcmpPred::Ule:
        return IcmpPred::Ugt;
      case IcmpPred::Sgt:
        return IcmpPred::Sle;
      case IcmpPred::Sge:
        return IcmpPred::Slt;
      case IcmpPred::Slt:
        return IcmpPred::Sge;
      case IcmpPred::Sle:
        return IcmpPred::Sgt;
      }
      return Q;
    };
    ir::Type B1 = ir::Type::intTy(1);
    prem(V(Z), Expr::icmp(P, Av, Bv));
    prem(V(Y), Expr::bop(O::Xor, B1, Z, ValT::phy(ir::Value::constInt(
                                            1, B1))));
    return fused(V(Y), Expr::icmp(Inverse(P), Av, Bv));
  }
  case K::SelectNotCond: {
    if (!checkArity(5) || !valArg(0, Z) || !valArg(1, Y) || !valArg(2, X) ||
        !valArg(3, Av) || !valArg(4, Bv))
      return false;
    ir::Type B1 = ir::Type::intTy(1);
    ir::Type Ty = Z.V.type();
    prem(V(Y), Expr::bop(O::Xor, B1, X, ValT::phy(ir::Value::constInt(
                                            1, B1))));
    prem(V(Z), Expr::select(Ty, Y, Av, Bv));
    return fused(V(Z), Expr::select(Ty, X, Bv, Av));
  }
  case K::SdivSubSrem:
  case K::UdivSubUrem: {
    if (!checkArity(5) || !valArg(0, Z) || !valArg(1, X) || !valArg(2, Y) ||
        !valArg(3, Av) || !valArg(4, Bv))
      return false;
    bool Signed = R.K == K::SdivSubSrem;
    prem(V(Y), bop(Signed ? O::SRem : O::URem, Av, Bv));
    prem(V(X), bop(O::Sub, Av, Y));
    prem(V(Z), bop(Signed ? O::SDiv : O::UDiv, X, Bv));
    return fused(V(Z), bop(Signed ? O::SDiv : O::UDiv, Av, Bv),
                 /*RevSound=*/false);
  }
  case K::LshrZero2:
  case K::AshrZero2: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    O Op = R.K == K::LshrZero2 ? O::LShr : O::AShr;
    prem(V(Y), bop(Op, ValT::phy(ir::Value::constInt(0, Y.V.type())), Av));
    return fused(V(Y), C(0, Y.V.type()), /*RevSound=*/false);
  }
  case K::IcmpUleMone:
  case K::IcmpUgtMone: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    IcmpPred P = R.K == K::IcmpUleMone ? IcmpPred::Ule : IcmpPred::Ugt;
    ValT Mone = ValT::phy(ir::Value::constInt(-1, Av.V.type()));
    prem(V(Y), Expr::icmp(P, Av, Mone));
    return fused(V(Y), C(R.K == K::IcmpUleMone ? 1 : 0, ir::Type::intTy(1)),
                 /*RevSound=*/false);
  }
  case K::IcmpSgeSmin:
  case K::IcmpSltSmin: {
    if (!checkArity(2) || !valArg(0, Y) || !valArg(1, Av))
      return false;
    IcmpPred P = R.K == K::IcmpSgeSmin ? IcmpPred::Sge : IcmpPred::Slt;
    unsigned W = Av.V.type().intWidth();
    ValT Smin = ValT::phy(ir::Value::constInt(
        interpTruncate(signedPow2(W - 1), W), Av.V.type()));
    prem(V(Y), Expr::icmp(P, Av, Smin));
    return fused(V(Y), C(R.K == K::IcmpSgeSmin ? 1 : 0, ir::Type::intTy(1)),
                 /*RevSound=*/false);
  }
  default:
    Err = "rule " + infruleKindName(R.K) + ": no implementation";
    return false;
  }
}

} // namespace

std::optional<std::string> crellvm::erhl::applyInfrule(const Infrule &Rule,
                                                       Assertion &A) {
  return RuleApplier(Rule, A).run();
}
