//===- erhl/RuleTester.cpp --------------------------------------*- C++ -*-===//

#include "erhl/RuleTester.h"

#include "erhl/Eval.h"
#include "support/RNG.h"

#include <cassert>

using namespace crellvm;
using namespace crellvm::erhl;
using namespace crellvm::interp;
using namespace crellvm::ir;

namespace {

/// Builds one random rule instance: a pair of states, a premise
/// assertion whose predicates all hold, and the rule arguments.
class InstanceGen {
public:
  explicit InstanceGen(RNG &R) : R(R) {
    // A small memory: two blocks plus one global, shared block layout on
    // both sides.
    for (int64_t B = 0; B != 3; ++B) {
      size_t Size = 2 + R.below(3);
      SrcState.Memory[B].assign(Size, RtValue::intVal(0, 32));
      TgtState.Memory[B] = SrcState.Memory[B];
    }
    SrcState.Globals["G"] = 0;
    TgtState.Globals["G"] = 0;
  }

  RNG &rng() { return R; }
  bool skipped() const { return Skip; }

  ir::Type randIntTy() {
    static const unsigned Widths[] = {1, 8, 16, 32, 64};
    return ir::Type::intTy(Widths[R.below(5)]);
  }

  RtValue randValue(ir::Type Ty) {
    uint64_t Roll = R.below(100);
    if (Roll < 12)
      return RtValue::undef();
    if (Roll < 17)
      return RtValue::poison();
    if (Ty.isPtr())
      return RtValue::ptrVal(static_cast<int64_t>(R.below(3)),
                             R.range(-1, 4));
    if (R.chance(4, 5))
      return RtValue::intVal(static_cast<uint64_t>(R.range(-4, 8)),
                             Ty.intWidth());
    return RtValue::intVal(R.next(), Ty.intWidth());
  }

  /// A fresh physical register bound to \p V on both sides (out of the
  /// maydiff set).
  ValT freshPhy(ir::Type Ty, RtValue V) {
    std::string Name = "r" + std::to_string(Counter++);
    RegT Reg{Name, Tag::Phy};
    SrcState.Regs[Reg] = V;
    TgtState.Regs[Reg] = V;
    return ValT::phy(ir::Value::reg(Name, Ty));
  }

  ValT constI(int64_t N, ir::Type Ty) {
    unsigned W = Ty.intWidth();
    return ValT::phy(ir::Value::constInt(RtValue::signExtend(
                                             RtValue::truncate(
                                                 static_cast<uint64_t>(N),
                                                 W),
                                             W),
                                         Ty));
  }

  /// A random operand: usually a fresh register with a random value,
  /// sometimes a literal constant or undef.
  ValT randOperand(ir::Type Ty) {
    uint64_t Roll = R.below(100);
    if (Roll < 20 && Ty.isInt())
      return constI(R.range(-4, 8), Ty);
    if (Roll < 25)
      return ValT::phy(ir::Value::undef(Ty));
    return freshPhy(Ty, randValue(Ty));
  }

  /// Defines a fresh register as \p E: binds it to ⟦E⟧ on both sides and
  /// records both lessdef directions as premises (exactly what the
  /// checker's post-assertion computation provides for a definition). When
  /// evaluating E traps, the instance is skipped (no state executes past
  /// such a definition).
  ValT define(const Expr &E) {
    ExprEval Ev = evalExpr(E, SrcState);
    if (Ev.Trap) {
      Skip = true;
      return ValT::phy(ir::Value::undef(E.type()));
    }
    ValT Reg = freshPhy(E.type(), Ev.V);
    A.Src.insert(Pred::lessdef(Expr::val(Reg), E));
    A.Src.insert(Pred::lessdef(E, Expr::val(Reg)));
    return Reg;
  }

  ValT defineBop(Opcode Op, const ValT &X, const ValT &Y) {
    return define(Expr::bop(Op, X.V.type(), X, Y));
  }

  EvalState SrcState, TgtState;
  Assertion A;

private:
  RNG &R;
  unsigned Counter = 0;
  bool Skip = false;
};

/// Builds the arguments (and premise state) for one instance of rule
/// kind \p K. Returns std::nullopt for kinds needing no randomized test
/// here (none at present) or when generation fails.
std::optional<Infrule> buildInstance(InfruleKind K, InstanceGen &G) {
  using KK = InfruleKind;
  using O = Opcode;
  RNG &R = G.rng();
  ir::Type Ty = G.randIntTy();
  auto V = [](const ValT &X) { return Expr::val(X); };

  Infrule Rule;
  Rule.K = K;
  Rule.S = Side::Src;

  switch (K) {
  case KK::Transitivity: {
    // e1 := a (as defined reg), e2 := its definition, e3 := equal reg.
    ValT Av = G.randOperand(Ty);
    ValT Bv = G.randOperand(Ty);
    Expr E = Expr::bop(O::Add, Ty, Av, Bv);
    ValT X = G.define(E);
    ValT Y = G.define(V(X));
    Rule.Args = {V(Y), V(X), E};
    return Rule;
  }
  case KK::Substitute:
  case KK::SubstituteRev: {
    ValT From = G.randOperand(Ty);
    // To: either literally equal value or an undef-refinement premise.
    ValT To = G.define(V(From));
    ValT Other = G.randOperand(Ty);
    Expr E = Expr::bop(O::Add, Ty, From, Other);
    // Premise From >= To.
    G.A.Src.insert(Pred::lessdef(V(From), V(To)));
    if (K == KK::Substitute)
      Rule.Args = {E, V(From), V(To)};
    else
      Rule.Args = {E.substituted(From, To), V(To), V(From)};
    return Rule;
  }
  case KK::SubstituteOp: {
    ValT From = G.randOperand(Ty);
    ValT To = G.define(V(From));
    G.A.Src.insert(Pred::lessdef(V(From), V(To)));
    // Repeated-operand expression: both positions hold From.
    Expr E = Expr::bop(O::Mul, Ty, From, From);
    int64_t Idx = R.chance(1, 2) ? 0 : 1;
    Rule.Args = {E, V(G.constI(Idx, ir::Type::intTy(32))), V(From), V(To)};
    return Rule;
  }
  case KK::IntroGhost: {
    ValT Av = G.randOperand(Ty);
    ValT Bv = G.randOperand(Ty);
    Expr E = R.chance(1, 2) ? Expr::bop(O::Xor, Ty, Av, Bv) : V(Av);
    ValT Gh = ValT::ghost("g" + std::to_string(R.below(4)), Ty);
    Rule.Args = {V(Gh), E};
    return Rule;
  }
  case KK::IntroEq: {
    ValT Av = G.randOperand(Ty);
    ValT Bv = G.randOperand(Ty);
    Rule.Args = {Expr::bop(O::And, Ty, Av, Bv)};
    return Rule;
  }
  case KK::ReduceMaydiffLessdef: {
    // r_src := e (or undef), r_tgt := e; r in maydiff; premise lessdefs.
    ValT Av = G.randOperand(Ty);
    ValT Bv = G.randOperand(Ty);
    Expr E = Expr::bop(O::Or, Ty, Av, Bv);
    ExprEval SV = evalExpr(E, G.SrcState);
    ExprEval TV = evalExpr(E, G.TgtState);
    if (SV.Trap || TV.Trap)
      return std::nullopt;
    std::string Name = "rd" + std::to_string(R.below(4));
    RegT Reg{Name, Tag::Phy};
    // Source may be less defined than e; target must refine e.
    G.SrcState.Regs[Reg] = R.chance(1, 4) ? RtValue::undef() : SV.V;
    G.TgtState.Regs[Reg] = TV.V;
    G.A.Maydiff.insert(Reg);
    ValT RV = ValT::phy(ir::Value::reg(Name, Ty));
    G.A.Src.insert(Pred::lessdef(V(RV), E));
    G.A.Tgt.insert(Pred::lessdef(E, V(RV)));
    Rule.Args = {V(RV), E, E};
    return Rule;
  }
  case KK::ReduceMaydiffNonPhysical: {
    ValT Gh = ValT::ghost("dead", Ty);
    G.A.Maydiff.insert(Gh.regT());
    Rule.Args = {V(Gh)};
    return Rule;
  }
  case KK::IcmpToEq: {
    int64_t CVal = R.range(-4, 8);
    // Mostly pick a register that really holds the constant so the
    // branch-fact premise is satisfiable.
    ValT Y = R.chance(4, 5)
                 ? G.freshPhy(Ty, interp::RtValue::intVal(
                                      static_cast<uint64_t>(CVal),
                                      Ty.intWidth()))
                 : G.randOperand(Ty);
    ValT Cv = G.constI(CVal, Ty);
    ValT Cond = G.define(Expr::icmp(IcmpPred::Eq, Y, Cv));
    // Branch fact: only generate states where the condition is true.
    ExprEval CV = evalValT(Cond, G.SrcState);
    if (CV.Trap || !CV.V.isInt() || CV.V.bits() != 1)
      return std::nullopt;
    ir::Type B = ir::Type::intTy(1);
    G.A.Src.insert(Pred::lessdef(V(G.constI(1, B)), V(Cond)));
    G.A.Src.insert(Pred::lessdef(V(Cond), V(G.constI(1, B))));
    Rule.Args = {V(Cond), V(Y), V(Cv)};
    return Rule;
  }
  case KK::ConstexprNoUb: {
    // The PR33673 shape: 1 / ((int)G - (int)G), or a benign constant.
    ir::Type I32 = ir::Type::intTy(32);
    ir::Value GAddr = ir::Value::global("G");
    ir::Value P2I =
        ir::Value::constExpr(O::PtrToInt, I32, {GAddr});
    ir::Value Diff = ir::Value::constExpr(O::Sub, I32, {P2I, P2I});
    ir::Value C =
        R.chance(1, 2)
            ? ir::Value::constExpr(O::SDiv, I32,
                                   {ir::Value::constInt(1, I32), Diff})
            : ir::Value::constInt(7, I32);
    // v: the folding mem2reg assumed — undef may become this constant.
    Rule.Args = {V(ValT::phy(ir::Value::undef(I32))), V(ValT::phy(C))};
    return Rule;
  }

  // ---- Fused arithmetic rules -------------------------------------------
  case KK::AddAssoc: {
    ValT Av = G.randOperand(Ty);
    int64_t C1 = R.range(-4, 8), C2 = R.range(-4, 8);
    ValT X = G.defineBop(O::Add, Av, G.constI(C1, Ty));
    ValT Y = G.defineBop(O::Add, X, G.constI(C2, Ty));
    Rule.Args = {V(Y), V(X), V(Av), V(G.constI(C1, Ty)),
                 V(G.constI(C2, Ty)), V(G.constI(C1 + C2, Ty))};
    return Rule;
  }
  case KK::AddSub: {
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT X = G.defineBop(O::Sub, Av, Bv);
    ValT Y = G.defineBop(O::Add, X, Bv);
    Rule.Args = {V(Y), V(X), V(Av), V(Bv)};
    return Rule;
  }
  case KK::AddComm:
  case KK::MulComm:
  case KK::AndComm:
  case KK::OrComm:
  case KK::XorComm: {
    O Op = (K == KK::AddComm)   ? O::Add
           : (K == KK::MulComm) ? O::Mul
           : (K == KK::AndComm) ? O::And
           : (K == KK::OrComm)  ? O::Or
                                : O::Xor;
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT Y = G.defineBop(Op, Av, Bv);
    Rule.Args = {V(Y), V(Av), V(Bv)};
    return Rule;
  }
  case KK::AddZero:
  case KK::SubZero:
  case KK::XorZero:
  case KK::OrZero: {
    O Op = (K == KK::AddZero)   ? O::Add
           : (K == KK::SubZero) ? O::Sub
           : (K == KK::XorZero) ? O::Xor
                                : O::Or;
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(Op, Av, G.constI(0, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::AddOnebit:
  case KK::SubOnebit:
  case KK::MulBool: {
    ir::Type B1 = ir::Type::intTy(1);
    O Op = (K == KK::AddOnebit)   ? O::Add
           : (K == KK::SubOnebit) ? O::Sub
                                  : O::Mul;
    ValT Av = G.randOperand(B1), Bv = G.randOperand(B1);
    ValT Y = G.defineBop(Op, Av, Bv);
    Rule.Args = {V(Y), V(Av), V(Bv)};
    return Rule;
  }
  case KK::AddDisjointOr: {
    // Mostly split a random mask's bits between the two constants so the
    // disjointness side condition holds and the rule applies; sometimes
    // force shared bits, which the strict rule must reject (and which
    // becomes a counterexample once the check is weakened).
    uint64_t M = R.next();
    int64_t C1 = static_cast<int64_t>(R.next() & M);
    int64_t C2 = static_cast<int64_t>(R.next() & ~M);
    if (R.chance(1, 4))
      C2 = static_cast<int64_t>(R.next() | 1) | C1;
    ValT Av = G.constI(C1, Ty), Bv = G.constI(C2, Ty);
    ValT Y = G.defineBop(O::Add, Av, Bv);
    Rule.Args = {V(Y), V(Av), V(Bv)};
    return Rule;
  }
  case KK::AddSignbit: {
    unsigned W = Ty.intWidth();
    ValT Cv = G.constI(int64_t(1) << (W - 1), Ty);
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Add, Av, Cv);
    Rule.Args = {V(Y), V(Av), V(Cv)};
    return Rule;
  }
  case KK::AddShift: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Add, Av, Av);
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::AddOrAnd:
  case KK::AddXorAnd:
  case KK::OrXor:
  case KK::SubOrXor: {
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    O First = (K == KK::AddOrAnd || K == KK::SubOrXor) ? O::Or : O::Xor;
    if (K == KK::SubOrXor)
      First = O::Or;
    O Second = (K == KK::SubOrXor) ? O::Xor : O::And;
    O Outer = (K == KK::OrXor)      ? O::Or
              : (K == KK::SubOrXor) ? O::Sub
                                    : O::Add;
    ValT Z = G.defineBop(First, Av, Bv);
    ValT X = G.defineBop(Second, Av, Bv);
    ValT Y = G.defineBop(Outer, Z, X);
    Rule.Args = {V(Y), V(Z), V(X), V(Av), V(Bv)};
    return Rule;
  }
  case KK::AddZextBool: {
    ir::Type B1 = ir::Type::intTy(1);
    if (Ty.intWidth() == 1)
      Ty = ir::Type::intTy(32);
    ValT Bv = G.randOperand(B1);
    int64_t Cn = R.range(-4, 8);
    ValT X = G.define(Expr::cast(O::ZExt, Ty, Bv));
    ValT Y = G.defineBop(O::Add, X, G.constI(Cn, Ty));
    Rule.Args = {V(Y), V(X), V(Bv), V(G.constI(Cn, Ty)),
                 V(G.constI(Cn + 1, Ty))};
    return Rule;
  }
  case KK::SubAdd: {
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT X = G.defineBop(O::Add, Av, Bv);
    ValT Y = G.defineBop(O::Sub, X, Bv);
    Rule.Args = {V(Y), V(X), V(Av), V(Bv)};
    return Rule;
  }
  case KK::SubSame: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Sub, Av, Av);
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::SubMone: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Sub, G.constI(-1, Ty), Av);
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::SubConstAdd: {
    ValT Av = G.randOperand(Ty);
    int64_t C1 = R.range(-4, 8), C2 = R.range(-4, 8);
    ValT X = G.defineBop(O::Add, Av, G.constI(C1, Ty));
    ValT Y = G.defineBop(O::Sub, X, G.constI(C2, Ty));
    Rule.Args = {V(Y), V(X), V(Av), V(G.constI(C1, Ty)),
                 V(G.constI(C2, Ty)), V(G.constI(C1 - C2, Ty))};
    return Rule;
  }
  case KK::SubConstNot: {
    ValT Av = G.randOperand(Ty);
    int64_t Cn = R.range(-4, 8);
    ValT X = G.defineBop(O::Xor, Av, G.constI(-1, Ty));
    ValT Y = G.defineBop(O::Sub, G.constI(Cn, Ty), X);
    Rule.Args = {V(Y), V(X), V(Av), V(G.constI(Cn, Ty)),
                 V(G.constI(Cn + 1, Ty))};
    return Rule;
  }
  case KK::SubSub: {
    ValT Av = G.randOperand(Ty);
    int64_t C1 = R.range(-4, 8), C2 = R.range(-4, 8);
    ValT X = G.defineBop(O::Sub, Av, G.constI(C1, Ty));
    ValT Y = G.defineBop(O::Sub, X, G.constI(C2, Ty));
    Rule.Args = {V(Y), V(X), V(Av), V(G.constI(C1, Ty)),
                 V(G.constI(C2, Ty)), V(G.constI(C1 + C2, Ty))};
    return Rule;
  }
  case KK::SubRemove: {
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT X = G.defineBop(O::Add, Av, Bv);
    ValT Y = G.defineBop(O::Sub, Av, X);
    Rule.Args = {V(Y), V(X), V(Av), V(Bv)};
    return Rule;
  }
  case KK::SubShl: {
    unsigned W = Ty.intWidth();
    int64_t Cn = static_cast<int64_t>(R.below(W));
    ValT Av = G.randOperand(Ty);
    ValT X = G.defineBop(O::Shl, Av, G.constI(Cn, Ty));
    ValT Y = G.defineBop(O::Sub, G.constI(0, Ty), X);
    Rule.Args = {V(Y), V(X), V(Av), V(G.constI(Cn, Ty))};
    return Rule;
  }
  case KK::MulMone:
  case KK::SdivMone: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(K == KK::MulMone ? O::Mul : O::SDiv, Av,
                         G.constI(-1, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::MulZero: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Mul, Av, G.constI(0, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::MulOne: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Mul, Av, G.constI(1, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::MulShl: {
    unsigned W = Ty.intWidth();
    int64_t C2 = static_cast<int64_t>(R.below(W));
    int64_t C1 = int64_t(1) << C2;
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Mul, Av, G.constI(C1, Ty));
    Rule.Args = {V(Y), V(Av), V(G.constI(C1, Ty)), V(G.constI(C2, Ty))};
    return Rule;
  }
  case KK::MulNeg: {
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT X = G.defineBop(O::Sub, G.constI(0, Ty), Av);
    ValT Z = G.defineBop(O::Sub, G.constI(0, Ty), Bv);
    ValT Y = G.defineBop(O::Mul, X, Z);
    Rule.Args = {V(Y), V(X), V(Z), V(Av), V(Bv)};
    return Rule;
  }
  case KK::AndSame:
  case KK::OrSame: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(K == KK::AndSame ? O::And : O::Or, Av, Av);
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::AndZero: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::And, Av, G.constI(0, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::AndMone: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::And, Av, G.constI(-1, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::AndNot:
  case KK::OrNot: {
    ValT Av = G.randOperand(Ty);
    ValT X = G.defineBop(O::Xor, Av, G.constI(-1, Ty));
    ValT Y = G.defineBop(K == KK::AndNot ? O::And : O::Or, Av, X);
    Rule.Args = {V(Y), V(X), V(Av)};
    return Rule;
  }
  case KK::AndOr: {
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT X = G.defineBop(O::Or, Av, Bv);
    ValT Y = G.defineBop(O::And, Av, X);
    Rule.Args = {V(Y), V(X), V(Av), V(Bv)};
    return Rule;
  }
  case KK::OrAnd: {
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT X = G.defineBop(O::And, Av, Bv);
    ValT Y = G.defineBop(O::Or, Av, X);
    Rule.Args = {V(Y), V(X), V(Av), V(Bv)};
    return Rule;
  }
  case KK::AndUndef:
  case KK::OrUndef:
  case KK::XorUndef: {
    O Op = (K == KK::AndUndef)  ? O::And
           : (K == KK::OrUndef) ? O::Or
                                : O::Xor;
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(Op, Av, ValT::phy(ir::Value::undef(Ty)));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::AndDeMorgan: {
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT X = G.defineBop(O::Xor, Av, G.constI(-1, Ty));
    ValT Y = G.defineBop(O::Xor, Bv, G.constI(-1, Ty));
    ValT Z = G.defineBop(O::And, X, Y);
    ValT W = G.defineBop(O::Or, Av, Bv);
    Rule.Args = {V(Z), V(X), V(Y), V(W), V(Av), V(Bv)};
    return Rule;
  }
  case KK::OrMone: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Or, Av, G.constI(-1, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::XorSame: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Xor, Av, Av);
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::ShiftZero1: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Shl, Av, G.constI(0, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::ShiftZero2: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Shl, G.constI(0, Ty), Av);
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::ShiftUndef1: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::Shl, Av, ValT::phy(ir::Value::undef(Ty)));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::IcmpSame: {
    auto P = static_cast<IcmpPred>(R.below(10));
    ValT Av = G.randOperand(Ty);
    ValT Y = G.define(Expr::icmp(P, Av, Av));
    Rule.Args = {V(Y),
                 V(G.constI(static_cast<int64_t>(P), ir::Type::intTy(32))),
                 V(Av)};
    return Rule;
  }
  case KK::IcmpSwap: {
    auto P = static_cast<IcmpPred>(R.below(10));
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT Y = G.define(Expr::icmp(P, Av, Bv));
    Rule.Args = {V(Y),
                 V(G.constI(static_cast<int64_t>(P), ir::Type::intTy(32))),
                 V(Av), V(Bv)};
    return Rule;
  }
  case KK::IcmpEqSub:
  case KK::IcmpNeSub:
  case KK::IcmpEqXor:
  case KK::IcmpNeXor: {
    O Op = (K == KK::IcmpEqSub || K == KK::IcmpNeSub) ? O::Sub : O::Xor;
    IcmpPred P = (K == KK::IcmpEqSub || K == KK::IcmpEqXor) ? IcmpPred::Eq
                                                            : IcmpPred::Ne;
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT X = G.defineBop(Op, Av, Bv);
    ValT Y = G.define(Expr::icmp(P, X, G.constI(0, Ty)));
    Rule.Args = {V(Y), V(X), V(Av), V(Bv)};
    return Rule;
  }
  case KK::IcmpEqSrem: {
    int64_t Cn = R.chance(1, 2) ? 1 : -1;
    ValT Av = G.randOperand(Ty);
    ValT X = G.defineBop(O::SRem, Av, G.constI(Cn, Ty));
    ValT Y = G.define(Expr::icmp(IcmpPred::Eq, X, G.constI(0, Ty)));
    Rule.Args = {V(Y), V(X), V(Av), V(G.constI(Cn, Ty))};
    return Rule;
  }
  case KK::LshrZero:
  case KK::AshrZero: {
    O Op = K == KK::LshrZero ? O::LShr : O::AShr;
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(Op, Av, G.constI(0, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::UdivOne:
  case KK::UremOne: {
    O Op = K == KK::UdivOne ? O::UDiv : O::URem;
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(Op, Av, G.constI(1, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::OrXor2:
  case KK::OrOr: {
    O First = K == KK::OrXor2 ? O::Xor : O::Or;
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT Z = G.defineBop(First, Av, Bv);
    ValT Y = G.defineBop(O::Or, Z, Bv);
    Rule.Args = {V(Y), V(Z), V(Av), V(Bv)};
    return Rule;
  }
  case KK::IcmpEqAddAdd:
  case KK::IcmpNeAddAdd: {
    IcmpPred P = K == KK::IcmpEqAddAdd ? IcmpPred::Eq : IcmpPred::Ne;
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT Cv = G.randOperand(Ty);
    ValT X = G.defineBop(O::Add, Av, Cv);
    ValT Y = G.defineBop(O::Add, Bv, Cv);
    ValT Z = G.define(Expr::icmp(P, X, Y));
    Rule.Args = {V(Z), V(X), V(Y), V(Av), V(Bv), V(Cv)};
    return Rule;
  }
  case KK::SelectIcmpEq: {
    ValT Av = G.randOperand(Ty);
    ValT Cv = G.constI(R.range(-4, 8), Ty);
    ValT Y = G.define(Expr::icmp(IcmpPred::Eq, Av, Cv));
    ValT Z = G.define(Expr::select(Ty, Y, Cv, Av));
    Rule.Args = {V(Z), V(Y), V(Av), V(Cv)};
    return Rule;
  }
  case KK::SelectIcmpNe: {
    ValT Av = G.randOperand(Ty);
    ValT Cv = G.constI(R.range(-4, 8), Ty);
    ValT Y = G.define(Expr::icmp(IcmpPred::Ne, Av, Cv));
    ValT Z = G.define(Expr::select(Ty, Y, Av, Cv));
    Rule.Args = {V(Z), V(Y), V(Av), V(Cv)};
    return Rule;
  }
  case KK::SelectSame: {
    ValT Cv = G.randOperand(ir::Type::intTy(1));
    ValT Av = G.randOperand(Ty);
    ValT Y = G.define(Expr::select(Ty, Cv, Av, Av));
    Rule.Args = {V(Y), V(Cv), V(Av)};
    return Rule;
  }
  case KK::SelectTrue:
  case KK::SelectFalse: {
    ValT Cond = G.constI(K == KK::SelectTrue ? 1 : 0, ir::Type::intTy(1));
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT Y = G.define(Expr::select(Ty, Cond, Av, Bv));
    Rule.Args = {V(Y), V(Av), V(Bv)};
    return Rule;
  }
  case KK::TruncZext: {
    ir::Type Small = ir::Type::intTy(8), Big = ir::Type::intTy(32);
    ValT Av = G.randOperand(Small);
    ValT X = G.define(Expr::cast(O::ZExt, Big, Av));
    ValT Y = G.define(Expr::cast(O::Trunc, Small, X));
    Rule.Args = {V(Y), V(X), V(Av)};
    return Rule;
  }
  case KK::TruncTrunc: {
    ValT Av = G.randOperand(ir::Type::intTy(64));
    ValT X = G.define(Expr::cast(O::Trunc, ir::Type::intTy(32), Av));
    ValT Y = G.define(Expr::cast(O::Trunc, ir::Type::intTy(8), X));
    Rule.Args = {V(Y), V(X), V(Av)};
    return Rule;
  }
  case KK::ZextZext:
  case KK::SextSext: {
    O Op = K == KK::ZextZext ? O::ZExt : O::SExt;
    ValT Av = G.randOperand(ir::Type::intTy(8));
    ValT X = G.define(Expr::cast(Op, ir::Type::intTy(16), Av));
    ValT Y = G.define(Expr::cast(Op, ir::Type::intTy(64), X));
    Rule.Args = {V(Y), V(X), V(Av)};
    return Rule;
  }
  case KK::SextZext: {
    ValT Av = G.randOperand(ir::Type::intTy(8));
    ValT X = G.define(Expr::cast(O::ZExt, ir::Type::intTy(16), Av));
    ValT Y = G.define(Expr::cast(O::SExt, ir::Type::intTy(64), X));
    Rule.Args = {V(Y), V(X), V(Av)};
    return Rule;
  }
  case KK::BitcastSame: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.define(Expr::cast(O::Bitcast, Ty, Av));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::BitcastBitcast: {
    ValT Av = G.randOperand(Ty);
    ValT X = G.define(Expr::cast(O::Bitcast, Ty, Av));
    ValT Y = G.define(Expr::cast(O::Bitcast, Ty, X));
    Rule.Args = {V(Y), V(X), V(Av)};
    return Rule;
  }
  case KK::InttoptrPtrtoint: {
    ValT Pv = G.randOperand(ir::Type::ptrTy());
    ValT X = G.define(Expr::cast(O::PtrToInt, ir::Type::intTy(64), Pv));
    ValT Y = G.define(Expr::cast(O::IntToPtr, ir::Type::ptrTy(), X));
    Rule.Args = {V(Y), V(X), V(Pv)};
    return Rule;
  }
  case KK::BopCommExpr: {
    static const O Comm[] = {O::Add, O::Mul, O::And, O::Or, O::Xor};
    O Op = Comm[R.below(5)];
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    Rule.Args = {V(G.constI(static_cast<int64_t>(Op), ir::Type::intTy(32))),
                 V(Av), V(Bv)};
    return Rule;
  }
  case KK::GepZero: {
    bool Inb = R.chance(1, 2);
    ValT Pv = G.randOperand(ir::Type::ptrTy());
    ValT Y = G.define(
        Expr::gep(Inb, Pv, G.constI(0, ir::Type::intTy(64))));
    Rule.Args = {V(Y), V(Pv),
                 V(G.constI(Inb ? 1 : 0, ir::Type::intTy(32)))};
    return Rule;
  }
  case KK::NegVal: {
    ValT Av = G.randOperand(Ty);
    ValT X = G.defineBop(O::Sub, G.constI(0, Ty), Av);
    ValT Z = G.defineBop(O::Sub, G.constI(0, Ty), X);
    Rule.Args = {V(Z), V(X), V(Av)};
    return Rule;
  }
  case KK::XorNot: {
    ValT Av = G.randOperand(Ty);
    ValT X = G.defineBop(O::Xor, Av, G.constI(-1, Ty));
    ValT Z = G.defineBop(O::Xor, X, G.constI(-1, Ty));
    Rule.Args = {V(Z), V(X), V(Av)};
    return Rule;
  }
  case KK::XorXor:
  case KK::AndAnd:
  case KK::OrConst: {
    O Op = K == KK::XorXor ? O::Xor : K == KK::AndAnd ? O::And : O::Or;
    ValT Av = G.randOperand(Ty);
    ValT C1 = G.constI(R.range(-8, 8), Ty);
    ValT C2 = G.constI(R.range(-8, 8), Ty);
    ValT X = G.defineBop(Op, Av, C1);
    ValT Y = G.defineBop(Op, X, C2);
    Rule.Args = {V(Y), V(X), V(Av), V(C1), V(C2)};
    return Rule;
  }
  case KK::ShlShl:
  case KK::LshrLshr: {
    O Op = K == KK::ShlShl ? O::Shl : O::LShr;
    unsigned W = Ty.intWidth();
    if (W < 2)
      return std::nullopt;
    int64_t C1n = static_cast<int64_t>(R.below(W));
    int64_t C2n = static_cast<int64_t>(R.below(W - C1n));
    ValT C1 = G.constI(C1n, Ty), C2 = G.constI(C2n, Ty);
    ValT Av = G.randOperand(Ty);
    ValT X = G.defineBop(Op, Av, C1);
    ValT Y = G.defineBop(Op, X, C2);
    Rule.Args = {V(Y), V(X), V(Av), V(C1), V(C2)};
    return Rule;
  }
  case KK::SdivOne: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::SDiv, Av, G.constI(1, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::SremOne:
  case KK::SremMone: {
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(O::SRem, Av,
                         G.constI(K == KK::SremOne ? 1 : -1, Ty));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::IcmpUltZero:
  case KK::IcmpUgeZero: {
    IcmpPred P = K == KK::IcmpUltZero ? IcmpPred::Ult : IcmpPred::Uge;
    ValT Av = G.randOperand(Ty);
    ValT Y = G.define(Expr::icmp(P, Av, G.constI(0, Ty)));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::IcmpInverse: {
    auto P = static_cast<IcmpPred>(R.below(10));
    ir::Type B1 = ir::Type::intTy(1);
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT Z = G.define(Expr::icmp(P, Av, Bv));
    ValT Y = G.define(Expr::bop(O::Xor, B1, Z, G.constI(1, B1)));
    Rule.Args = {V(Z), V(Y),
                 V(G.constI(static_cast<int64_t>(P), ir::Type::intTy(32))),
                 V(Av), V(Bv)};
    return Rule;
  }
  case KK::SelectNotCond: {
    ir::Type B1 = ir::Type::intTy(1);
    ValT Cond = G.randOperand(B1);
    ValT Y = G.define(Expr::bop(O::Xor, B1, Cond, G.constI(1, B1)));
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT Z = G.define(Expr::select(Ty, Y, Av, Bv));
    Rule.Args = {V(Z), V(Y), V(Cond), V(Av), V(Bv)};
    return Rule;
  }
  case KK::LshrZero2:
  case KK::AshrZero2: {
    O Op = K == KK::LshrZero2 ? O::LShr : O::AShr;
    ValT Av = G.randOperand(Ty);
    ValT Y = G.defineBop(Op, G.constI(0, Ty), Av);
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::IcmpUleMone:
  case KK::IcmpUgtMone: {
    IcmpPred P = K == KK::IcmpUleMone ? IcmpPred::Ule : IcmpPred::Ugt;
    ValT Av = G.randOperand(Ty);
    ValT Y = G.define(Expr::icmp(P, Av, G.constI(-1, Ty)));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::IcmpSgeSmin:
  case KK::IcmpSltSmin: {
    IcmpPred P = K == KK::IcmpSgeSmin ? IcmpPred::Sge : IcmpPred::Slt;
    ValT Av = G.randOperand(Ty);
    ValT Y = G.define(Expr::icmp(
        P, Av, G.constI(int64_t(1) << (Ty.intWidth() - 1), Ty)));
    Rule.Args = {V(Y), V(Av)};
    return Rule;
  }
  case KK::SdivSubSrem:
  case KK::UdivSubUrem: {
    bool Signed = K == KK::SdivSubSrem;
    ValT Av = G.randOperand(Ty), Bv = G.randOperand(Ty);
    ValT Y = G.defineBop(Signed ? O::SRem : O::URem, Av, Bv);
    ValT X = G.defineBop(O::Sub, Av, Y);
    ValT Z = G.defineBop(Signed ? O::SDiv : O::UDiv, X, Bv);
    Rule.Args = {V(Z), V(X), V(Y), V(Av), V(Bv)};
    return Rule;
  }
  }
  return std::nullopt;
}

} // namespace

RuleVerdict crellvm::erhl::verifyRule(InfruleKind K, uint64_t Seed,
                                      uint64_t Instances) {
  RuleVerdict Verdict;
  Verdict.K = K;
  RNG R(Seed ^ (static_cast<uint64_t>(K) * 0x9e3779b97f4a7c15ull));

  for (uint64_t I = 0; I != Instances; ++I) {
    InstanceGen G(R);
    auto Rule = buildInstance(K, G);
    ++Verdict.Attempted;
    if (!Rule || G.skipped())
      continue;

    Assertion Before = G.A;
    auto Err = applyInfrule(*Rule, G.A);
    if (Err)
      continue;
    ++Verdict.Applied;

    // intro_ghost binds a fresh existential; instantiate the witness used
    // in the soundness argument (ghost := target value of e).
    if (K == InfruleKind::IntroGhost) {
      RegT Gh = Rule->Args[0].asVal().regT();
      ExprEval TV = evalExpr(Rule->Args[1], G.TgtState);
      if (TV.Trap)
        continue;
      G.SrcState.Regs[Gh] = TV.V;
      G.TgtState.Regs[Gh] = TV.V;
    }
    if (K == InfruleKind::ReduceMaydiffNonPhysical) {
      RegT Gh = Rule->Args[0].asVal().regT();
      RtValue W = RtValue::intVal(0, 32);
      G.SrcState.Regs[Gh] = W;
      G.TgtState.Regs[Gh] = W;
    }

    auto Violate = [&](const std::string &What) {
      ++Verdict.Violations;
      if (Verdict.FirstCounterexample.empty())
        Verdict.FirstCounterexample = Rule->str() + ": " + What;
    };

    // Every added predicate must hold semantically.
    for (const Pred &P : G.A.Src) {
      if (Before.Src.count(P))
        continue;
      auto H = holdsPred(P, G.SrcState);
      if (H && !*H)
        Violate("added source predicate is false: " + P.str());
    }
    for (const Pred &P : G.A.Tgt) {
      if (Before.Tgt.count(P))
        continue;
      auto H = holdsPred(P, G.TgtState);
      if (H && !*H)
        Violate("added target predicate is false: " + P.str());
    }
    // Every maydiff removal must be justified: the target value must
    // refine the source value.
    for (const RegT &Reg : Before.Maydiff) {
      if (G.A.Maydiff.count(Reg))
        continue;
      RtValue SV = G.SrcState.regOr(Reg, RtValue::undef());
      RtValue TV = G.TgtState.regOr(Reg, RtValue::undef());
      if (!refinesValue(SV, TV))
        Violate("maydiff removal of " + Reg.str() + " unjustified");
    }
  }
  return Verdict;
}

std::vector<RuleVerdict> crellvm::erhl::verifyAllRules(uint64_t Seed,
                                                       uint64_t Instances) {
  std::vector<RuleVerdict> Out;
  for (uint16_t K = 0; K != NumInfruleKinds; ++K)
    Out.push_back(
        verifyRule(static_cast<InfruleKind>(K), Seed, Instances));
  return Out;
}
