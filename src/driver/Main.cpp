//===- driver/Main.cpp - The crellvm-validate CLI ---------------*- C++ -*-===//
//
// Batch validation over a generated corpus: the Fig. 1 protocol for every
// module, run concurrently on the work-stealing pool, with optional
// differential-execution cross-checking of every checker-accepted
// translation and an optional persistent validation cache (cache/) that
// replays memoized checker verdicts for byte-identical inputs.
//
//   crellvm-validate [--jobs N] [--oracle] [--modules N] [--seed S]
//                    [--bugs 371|501pre|501post|fixed] [--files]
//                    [--binary-proofs] [--cache=off|ro|rw]
//                    [--cache-dir DIR] [--cache-max-mb N]
//                    [--unit-timeout-ms N] [--chaos SPEC]
//                    [--plan=off|shadow|on]
//
//===----------------------------------------------------------------------===//

#include "cache/ValidationCache.h"
#include "checker/Version.h"
#include "driver/Driver.h"
#include "plan/PlanManager.h"
#include "support/FaultInjection.h"
#include "support/Format.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "workload/RandomProgram.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

using namespace crellvm;

namespace {

struct CliOptions {
  unsigned Jobs = 0; ///< 0 = hardware concurrency
  bool Oracle = false;
  unsigned Modules = 200;
  uint64_t Seed = 1;
  std::string Bugs = "fixed";
  bool Files = false;
  bool BinaryProofs = false;
  cache::CachePolicy CachePolicy = cache::CachePolicy::Off;
  std::string CacheDir = ".crellvm-cache";
  uint64_t CacheMaxMb = 256;
  uint64_t UnitTimeoutMs = 0;
  std::string Chaos; ///< --chaos SPEC; also CRELLVM_CHAOS env
  plan::PlanMode Plan = plan::PlanMode::Off;
};

void printUsage(std::ostream &OS, const char *Argv0) {
  OS << "usage: " << Argv0 << " [options]\n"
     << "\n"
     << "Batch validation of generated modules through the -O2 pipeline\n"
     << "with the paper's Fig. 1 protocol (Orig / PCal / I-O / PCheck).\n"
     << "\n"
     << "options:\n"
     << "  --jobs N          worker threads (default: all hardware threads)\n"
     << "  --oracle          differentially execute checker-accepted\n"
     << "                    translations and report divergences\n"
     << "  --modules N       generated modules to validate (default 200)\n"
     << "  --seed S          base generation seed (default 1)\n"
     << "  --bugs CFG        371 | 501pre | 501post | fixed (default), or\n"
     << "                    one historical bug by report id: pr24179 |\n"
     << "                    pr33673 | pr28562 | pr29057 | d38619\n"
     << "  --files           exchange src/tgt/proof through files (I/O col)\n"
     << "  --binary-proofs   use the compact binary proof format\n"
     << "  --cache=MODE      validation cache: off (default) | ro | rw;\n"
     << "                    hits replay memoized checker verdicts and\n"
     << "                    skip Orig/I-O/PCheck for byte-identical\n"
     << "                    (src, tgt', proof, pass, checker, bugs) keys\n"
     << "  --cache-dir DIR   cache directory (default .crellvm-cache)\n"
     << "  --cache-max-mb N  on-disk cache size bound in MiB (default 256)\n"
     << "  --plan=MODE       per-preset checker plans: off (default) |\n"
     << "                    shadow (specialized + general, compare, emit\n"
     << "                    general; any divergence demotes plans to off) |\n"
     << "                    on (specialized with hard fallback to the\n"
     << "                    general checker). Verdicts are identical in\n"
     << "                    every mode. Plans persist in the cache dir\n"
     << "                    when the cache has a disk tier\n"
     << "  --unit-timeout-ms N  per-unit watchdog deadline; a unit still\n"
     << "                    running past it is answered internal_error\n"
     << "                    while the batch continues (default: off)\n"
     << "  --chaos SPEC      arm deterministic fault injection, e.g.\n"
     << "                    'seed=42;disk.write:every=7;unit.hang:at=3:ms=50'\n"
     << "                    (also read from $CRELLVM_CHAOS; flag wins)\n"
     << "  --version         print checker semantics version and exit\n"
     << "  --help, -h        print this help and exit\n";
}

/// Set when parseArgs saw --help: print usage to stdout and exit 0.
bool WantHelp = false;
/// Set when parseArgs saw --version: print the version line and exit 0.
bool WantVersion = false;
/// The argument parseArgs rejected, for the error message.
std::string BadArg;

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    BadArg = A;
    auto NextNum = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    uint64_t N = 0;
    if (A == "--help" || A == "-h") {
      WantHelp = true;
      return true;
    } else if (A == "--version") {
      WantVersion = true;
      return true;
    } else if (A == "--jobs" && NextNum(N))
      O.Jobs = static_cast<unsigned>(N);
    else if (A == "--modules" && NextNum(N))
      O.Modules = static_cast<unsigned>(N);
    else if (A == "--seed" && NextNum(N))
      O.Seed = N;
    else if (A == "--oracle")
      O.Oracle = true;
    else if (A == "--files")
      O.Files = true;
    else if (A == "--binary-proofs")
      O.BinaryProofs = true;
    else if (A == "--bugs" && I + 1 < Argc)
      O.Bugs = Argv[++I];
    else if (A.rfind("--cache=", 0) == 0) {
      auto P = cache::parseCachePolicy(A.substr(std::strlen("--cache=")));
      if (!P)
        return false;
      O.CachePolicy = *P;
    } else if (A == "--cache" && I + 1 < Argc) {
      auto P = cache::parseCachePolicy(Argv[++I]);
      if (!P)
        return false;
      O.CachePolicy = *P;
    } else if (A.rfind("--plan=", 0) == 0) {
      auto M = plan::parsePlanMode(A.substr(std::strlen("--plan=")));
      if (!M)
        return false;
      O.Plan = *M;
    } else if (A == "--plan" && I + 1 < Argc) {
      auto M = plan::parsePlanMode(Argv[++I]);
      if (!M)
        return false;
      O.Plan = *M;
    } else if (A == "--cache-dir" && I + 1 < Argc)
      O.CacheDir = Argv[++I];
    else if (A == "--cache-max-mb" && NextNum(N))
      O.CacheMaxMb = N;
    else if (A == "--unit-timeout-ms" && NextNum(N))
      O.UnitTimeoutMs = N;
    else if (A == "--chaos" && I + 1 < Argc)
      O.Chaos = Argv[++I];
    else
      return false;
  }
  return true;
}

const char *policyName(cache::CachePolicy P) {
  switch (P) {
  case cache::CachePolicy::Off:
    return "off";
  case cache::CachePolicy::ReadOnly:
    return "ro";
  case cache::CachePolicy::ReadWrite:
    return "rw";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    std::cerr << "error: unknown or malformed option '" << BadArg << "'\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (WantHelp) {
    printUsage(std::cout, Argv[0]);
    return 0;
  }
  if (WantVersion) {
    std::cout << checker::versionLine("crellvm-validate") << "\n";
    return 0;
  }
  auto BugsOpt = passes::BugConfig::byName(Cli.Bugs);
  if (!BugsOpt) {
    std::cerr << "error: unknown bugs preset '" << Cli.Bugs << "'\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  passes::BugConfig Bugs = *BugsOpt;

  std::string ChaosErr;
  bool ChaosOk = Cli.Chaos.empty() ? fault::configureFromEnv(&ChaosErr)
                                   : fault::configure(Cli.Chaos, &ChaosErr);
  if (!ChaosOk) {
    std::cerr << "error: " << ChaosErr << "\n";
    return 2;
  }
  if (fault::armed())
    std::cerr << "chaos: armed with '" << fault::activeSpec() << "'\n";

  cache::ValidationCacheOptions CacheOpts;
  CacheOpts.Policy = Cli.CachePolicy;
  CacheOpts.Dir = Cli.CacheDir;
  CacheOpts.MaxDiskBytes = Cli.CacheMaxMb << 20;
  cache::ValidationCache Cache(CacheOpts);

  plan::PlanManagerOptions PlanOpts;
  PlanOpts.Mode = Cli.Plan;
  PlanOpts.Disk = Cache.enabled() ? Cache.diskStore() : nullptr;
  plan::PlanManager Plans(PlanOpts);

  driver::DriverOptions DOpts;
  DOpts.WriteFiles = Cli.Files;
  DOpts.BinaryProofs = Cli.BinaryProofs;
  DOpts.RunOracle = Cli.Oracle;
  DOpts.Cache = Cache.enabled() ? &Cache : nullptr;
  DOpts.Plans = Cli.Plan != plan::PlanMode::Off ? &Plans : nullptr;

  driver::BatchOptions BOpts;
  BOpts.Jobs = Cli.Jobs;
  BOpts.UnitTimeoutMs = Cli.UnitTimeoutMs;

  uint64_t Seed = Cli.Seed;
  driver::BatchReport Report = driver::runBatchValidated(
      Bugs, DOpts, Cli.Modules,
      [Seed](size_t I) {
        workload::GenOptions G;
        G.Seed = Seed + I;
        return workload::generateModule(G);
      },
      BOpts);

  if (Report.InternalErrors || Report.TimedOut)
    std::cout << "degraded: " << Report.InternalErrors
              << " units failed internally, " << Report.TimedOut
              << " exceeded the " << Cli.UnitTimeoutMs
              << "ms watchdog (isolated; remaining units unaffected)\n";
  if (fault::armed())
    std::cout << "chaos: injected " << fault::totalInjected()
              << " faults from '" << fault::activeSpec() << "'\n";
  std::cout << "validated " << Report.Units << " modules with "
            << Report.JobsUsed << " jobs, bugs=" << Bugs.str() << "\n"
            << "wall " << formatSeconds(Report.WallSeconds) << ", cpu "
            << formatSeconds(Report.CpuSeconds) << " (parallel efficiency "
            << formatPercent(Report.WallSeconds > 0
                                 ? Report.CpuSeconds / Report.WallSeconds /
                                       Report.JobsUsed
                                 : 0)
            << ")\n\n";

  Table T({"pass", "#V", "#F", "#NS", "diff", "Orig", "PCal", "I/O",
           "PCheck", "cache", "oracle runs", "oracle div"});
  for (const auto &KV : Report.Stats) {
    const driver::PassStats &S = KV.second;
    T.addRow({KV.first, formatCountK(S.V), formatCountK(S.F),
              formatCountK(S.NS), formatCountK(S.DiffMismatches),
              formatSeconds(S.Orig), formatSeconds(S.PCal),
              formatSeconds(S.IO), formatSeconds(S.PCheck),
              formatSeconds(S.CacheSec), formatCountK(S.OracleRuns),
              formatCountK(S.OracleDivergences)});
  }
  T.print(std::cout);

  if (Cache.enabled()) {
    uint64_t Hits = 0, Misses = 0, Stores = 0, Evictions = 0, Errors = 0;
    for (const auto &KV : Report.Stats) {
      Hits += KV.second.CacheHits;
      Misses += KV.second.CacheMisses;
      Stores += KV.second.CacheStores;
      Evictions += KV.second.CacheEvictions;
      Errors += KV.second.CacheStoreErrors;
    }
    uint64_t Lookups = Hits + Misses;
    std::cout << "\ncache: policy=" << policyName(Cache.policy()) << " dir="
              << Cli.CacheDir << " hits=" << Hits << " ("
              << formatPercent(Lookups
                                   ? static_cast<double>(Hits) / Lookups
                                   : 0)
              << ") misses=" << Misses << " stores=" << Stores
              << " evictions=" << Evictions << " store-errors=" << Errors
              << " disk=" << (Cache.diskBytes() >> 10) << "KiB\n";
  }

  if (Cli.Plan != plan::PlanMode::Off) {
    uint64_t Builds = 0, Hits = 0, Spec = 0, Fall = 0, Shadow = 0;
    for (const auto &KV : Report.Stats) {
      Builds += KV.second.PlanBuilds;
      Hits += KV.second.PlanHits;
      Spec += KV.second.PlanSpecialized;
      Fall += KV.second.PlanFallbacks;
      Shadow += KV.second.PlanShadowChecks;
    }
    std::cout << "\nplan: mode=" << plan::planModeName(Plans.configuredMode())
              << " effective=" << plan::planModeName(Plans.effectiveMode())
              << " builds=" << Builds << " hits=" << Hits
              << " specialized=" << Spec << " fallbacks=" << Fall
              << " shadow-checks=" << Shadow
              << " divergences=" << Plans.divergences() << "\n";
  }

  uint64_t Failures = 0, Divergences = 0;
  for (const auto &KV : Report.Stats) {
    Failures += KV.second.F + KV.second.DiffMismatches;
    Divergences += KV.second.OracleDivergences;
    for (const std::string &Msg : KV.second.FailureSamples)
      std::cout << "failure: " << Msg << "\n";
    for (const std::string &Msg : KV.second.OracleSamples)
      std::cout << "divergence: " << Msg << "\n";
  }
  if (Divergences)
    std::cout << "\nWARNING: " << Divergences
              << " checker-accepted translations diverged under "
                 "differential execution — the trusted base has a hole\n";
  if (Plans.divergences())
    std::cout << "\nWARNING: " << Plans.divergences()
              << " specialized verdicts diverged from the general checker "
                 "in shadow mode — plans demoted to off\n";
  return Failures || Divergences || Plans.divergences() ? 1 : 0;
}
