//===- driver/Driver.cpp ----------------------------------------*- C++ -*-===//

#include "driver/Driver.h"

#include "checker/Validator.h"
#include "difftool/Diff.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "proofgen/ProofBinary.h"
#include "proofgen/ProofJson.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cassert>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace crellvm;
using namespace crellvm::driver;

void PassStats::add(const PassStats &O) {
  V += O.V;
  F += O.F;
  NS += O.NS;
  Orig += O.Orig;
  PCal += O.PCal;
  IO += O.IO;
  PCheck += O.PCheck;
  DiffMismatches += O.DiffMismatches;
  for (const std::string &S : O.FailureSamples)
    if (FailureSamples.size() < 8)
      FailureSamples.push_back(S);
  Oracle += O.Oracle;
  OracleRuns += O.OracleRuns;
  OracleDivergences += O.OracleDivergences;
  for (const std::string &S : O.OracleSamples)
    if (OracleSamples.size() < 8)
      OracleSamples.push_back(S);
}

ValidationDriver::ValidationDriver(const passes::BugConfig &Bugs,
                                   DriverOptions Options)
    : Bugs(Bugs), Opts(std::move(Options)) {
  if (!Opts.WriteFiles)
    return;
  if (!Opts.ExchangeDir.empty()) {
    Dir = Opts.ExchangeDir;
  } else {
    auto Base = std::filesystem::temp_directory_path() / "crellvm-exchange";
    Dir = Base.string();
  }
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    Opts.WriteFiles = false; // fall back to in-memory checking
}

namespace {

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Text;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

ir::Module ValidationDriver::runPassValidated(passes::Pass &P,
                                              const ir::Module &Src,
                                              StatsMap &Stats) {
  PassStats S;

  // Fig. 1, left: the original compiler.
  Timer TOrig;
  passes::PassResult Plain =
      TOrig.time([&] { return P.run(Src, /*GenProof=*/false); });
  S.Orig = TOrig.seconds();

  // Fig. 1, right: the proof-generating compiler.
  Timer TCal;
  passes::PassResult WithProof =
      TCal.time([&] { return P.run(Src, /*GenProof=*/true); });
  S.PCal = TCal.seconds();

  // File exchange (src.ll, tgt'.ll, Proof as JSON) and parsing back.
  ir::Module SrcForCheck = Src;
  ir::Module TgtForCheck = WithProof.Tgt;
  proofgen::Proof ProofForCheck = WithProof.Proof;
  if (Opts.WriteFiles) {
    Timer TIO;
    TIO.time([&] {
      uint64_t N = FileCounter++;
      std::string Base = Dir + "/" + P.name();
      if (!Opts.ExchangeTag.empty())
        Base += "." + Opts.ExchangeTag;
      Base += "." + std::to_string(N);
      std::string ProofPath =
          Base + (Opts.BinaryProofs ? ".proof.bin" : ".proof.json");
      writeFile(Base + ".src.ll", ir::printModule(Src));
      writeFile(Base + ".tgt.ll", ir::printModule(WithProof.Tgt));
      writeFile(ProofPath,
                Opts.BinaryProofs
                    ? proofgen::proofToBinary(WithProof.Proof)
                    : proofgen::proofToText(WithProof.Proof));
      std::string Err;
      auto SrcM = ir::parseModule(readFile(Base + ".src.ll"), &Err);
      assert(SrcM && "source module failed to round-trip");
      auto TgtM = ir::parseModule(readFile(Base + ".tgt.ll"), &Err);
      assert(TgtM && "target module failed to round-trip");
      auto Pr = Opts.BinaryProofs
                    ? proofgen::proofFromBinary(readFile(ProofPath), &Err)
                    : proofgen::proofFromText(readFile(ProofPath), &Err);
      assert(Pr && "proof failed to round-trip");
      SrcForCheck = std::move(*SrcM);
      TgtForCheck = std::move(*TgtM);
      ProofForCheck = std::move(*Pr);
      std::error_code EC;
      std::filesystem::remove(Base + ".src.ll", EC);
      std::filesystem::remove(Base + ".tgt.ll", EC);
      std::filesystem::remove(ProofPath, EC);
    });
    S.IO = TIO.seconds();
  }

  // The proof checker.
  Timer TCheck;
  checker::ModuleResult MR = TCheck.time(
      [&] { return checker::validate(SrcForCheck, TgtForCheck,
                                     ProofForCheck); });
  S.PCheck = TCheck.seconds();

  S.V += MR.Functions.size();
  std::vector<std::string> Accepted;
  for (const auto &KV : MR.Functions) {
    if (KV.second.Status == checker::ValidationStatus::Failed) {
      ++S.F;
      if (S.FailureSamples.size() < 8)
        S.FailureSamples.push_back("@" + KV.first + " " + KV.second.Where +
                                   ": " + KV.second.Reason);
    } else if (KV.second.Status == checker::ValidationStatus::NotSupported) {
      ++S.NS;
    } else {
      Accepted.push_back(KV.first);
    }
  }

  // llvm-diff: the original and proof-generating compilers must agree.
  if (!difftool::diffModules(Plain.Tgt, WithProof.Tgt))
    ++S.DiffMismatches;

  // Differential execution: probe exactly the translations the checker
  // accepted — a divergence here is a soundness hole in the trusted base.
  if (Opts.RunOracle && !Accepted.empty()) {
    Timer TOracle;
    DiffOracleReport R = TOracle.time([&] {
      return runDiffOracle(Src, WithProof.Tgt, Opts.OracleOpts, &Accepted);
    });
    S.Oracle = TOracle.seconds();
    S.OracleRuns += R.Runs;
    S.OracleDivergences += R.Divergences;
    for (const std::string &Msg : R.Samples)
      if (S.OracleSamples.size() < 8)
        S.OracleSamples.push_back("[" + P.name() + "] " + Msg);
  }

  Stats[P.name()].add(S);
  return std::move(WithProof.Tgt);
}

ir::Module ValidationDriver::runPipelineValidated(const ir::Module &Src,
                                                  StatsMap &Stats) {
  ir::Module Cur = Src;
  for (auto &P : passes::makeO2Pipeline(Bugs))
    Cur = runPassValidated(*P, Cur, Stats);
  return Cur;
}

// --- Parallel batch validation ---------------------------------------------

BatchReport crellvm::driver::runBatchValidated(const passes::BugConfig &Bugs,
                                               const DriverOptions &Opts,
                                               size_t NumUnits,
                                               const UnitGenerator &MakeUnit,
                                               const BatchOptions &BOpts,
                                               ThreadPool *Pool) {
  BatchReport Out;
  Out.Units = NumUnits;
  unsigned Jobs = BOpts.Jobs ? BOpts.Jobs : ThreadPool::defaultConcurrency();
  if (Pool)
    Jobs = Pool->numThreads();
  Out.JobsUsed = Jobs;

  std::vector<StatsMap> PerUnit(NumUnits);
  std::vector<double> UnitSeconds(NumUnits, 0.0);

  // The serial path runs the identical per-unit closure inline, so the
  // merged Stats are bit-identical across all Jobs values.
  auto RunUnit = [&](size_t I) {
    Timer T;
    T.time([&] {
      DriverOptions UOpts = Opts;
      UOpts.ExchangeTag = Opts.ExchangeTag.empty()
                              ? "u" + std::to_string(I)
                              : Opts.ExchangeTag + ".u" + std::to_string(I);
      ValidationDriver D(Bugs, UOpts);
      ir::Module M = MakeUnit(I);
      D.runPipelineValidated(M, PerUnit[I]);
    });
    UnitSeconds[I] = T.seconds();
  };

  Timer Wall;
  Wall.time([&] {
    if (Jobs <= 1) {
      for (size_t I = 0; I != NumUnits; ++I)
        RunUnit(I);
    } else if (Pool) {
      parallelFor(*Pool, NumUnits, RunUnit);
    } else {
      ThreadPool Local(Jobs);
      parallelFor(Local, NumUnits, RunUnit);
    }
  });
  Out.WallSeconds = Wall.seconds();

  // Deterministic reduction: merge per-unit stats in unit-index order,
  // independent of the order in which workers finished them.
  for (size_t I = 0; I != NumUnits; ++I) {
    for (const auto &KV : PerUnit[I])
      Out.Stats[KV.first].add(KV.second);
    Out.CpuSeconds += UnitSeconds[I];
  }
  return Out;
}

BatchReport crellvm::driver::runBatchValidated(
    const passes::BugConfig &Bugs, const DriverOptions &Opts,
    const std::vector<ir::Module> &Mods, const BatchOptions &BOpts,
    ThreadPool *Pool) {
  return runBatchValidated(
      Bugs, Opts, Mods.size(),
      [&Mods](size_t I) { return Mods[I]; }, BOpts, Pool);
}
