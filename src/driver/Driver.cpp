//===- driver/Driver.cpp ----------------------------------------*- C++ -*-===//

#include "driver/Driver.h"

#include "cache/Fingerprint.h"
#include "cache/ValidationCache.h"
#include "checker/Validator.h"
#include "checker/Version.h"
#include "difftool/Diff.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "proofgen/ProofBinary.h"
#include "proofgen/ProofJson.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cassert>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace crellvm;
using namespace crellvm::driver;

void PassStats::add(const PassStats &O) {
  V += O.V;
  F += O.F;
  NS += O.NS;
  Orig += O.Orig;
  PCal += O.PCal;
  IO += O.IO;
  PCheck += O.PCheck;
  DiffMismatches += O.DiffMismatches;
  for (const std::string &S : O.FailureSamples)
    if (FailureSamples.size() < 8)
      FailureSamples.push_back(S);
  Oracle += O.Oracle;
  OracleRuns += O.OracleRuns;
  OracleDivergences += O.OracleDivergences;
  for (const std::string &S : O.OracleSamples)
    if (OracleSamples.size() < 8)
      OracleSamples.push_back(S);
  CacheSec += O.CacheSec;
  CacheHits += O.CacheHits;
  CacheMisses += O.CacheMisses;
  CacheStores += O.CacheStores;
  CacheEvictions += O.CacheEvictions;
  CacheStoreErrors += O.CacheStoreErrors;
}

ValidationDriver::ValidationDriver(const passes::BugConfig &Bugs,
                                   DriverOptions Options)
    : Bugs(Bugs), Opts(std::move(Options)) {
  if (!Opts.WriteFiles)
    return;
  if (!Opts.ExchangeDir.empty()) {
    Dir = Opts.ExchangeDir;
  } else {
    auto Base = std::filesystem::temp_directory_path() / "crellvm-exchange";
    Dir = Base.string();
  }
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    Opts.WriteFiles = false; // fall back to in-memory checking
}

namespace {

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Text;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

ir::Module ValidationDriver::runPassValidated(passes::Pass &P,
                                              const ir::Module &Src,
                                              StatsMap &Stats,
                                              std::string *SrcTextInOut) {
  PassStats S;
  cache::ValidationCache *VC =
      Opts.Cache && Opts.Cache->enabled() ? Opts.Cache : nullptr;

  // Fig. 1, right: the proof-generating compiler. This leg always runs —
  // its output (tgt', proof) is part of the cache key, so the cache can
  // only ever short-circuit the *checking* of artifacts that were
  // actually produced, never the production of the artifacts.
  Timer TCal;
  passes::PassResult WithProof =
      TCal.time([&] { return P.run(Src, /*GenProof=*/true); });
  S.PCal = TCal.seconds();

  // Cache probe: fingerprint the exact bytes the file exchange would
  // write (plus pass name, checker version, bug config) and look for a
  // memoized verdict. The pipeline threads the printed module text
  // through SrcTextInOut so each module is serialized only once.
  cache::Fingerprint FP;
  std::optional<cache::Verdict> Replay;
  std::string TgtText;
  if (VC) {
    Timer TCache;
    Replay = TCache.time([&] {
      std::string SrcText = (SrcTextInOut && !SrcTextInOut->empty())
                                ? std::move(*SrcTextInOut)
                                : ir::printModule(Src);
      TgtText = ir::printModule(WithProof.Tgt);
      FP = cache::fingerprintValidation(SrcText, TgtText, WithProof.Proof,
                                        P.name(),
                                        checker::versionFingerprint(), Bugs);
      return VC->lookup(FP);
    });
    S.CacheSec = TCache.seconds();
  }

  std::vector<std::string> Accepted;
  if (Replay) {
    // Hit: replay the memoized verdict. Orig, the file exchange, PCheck
    // and llvm-diff are all skipped — each is a deterministic function of
    // the fingerprinted inputs (DESIGN.md §10).
    ++S.CacheHits;
    S.V += Replay->Checker.Functions.size();
    for (const auto &KV : Replay->Checker.Functions) {
      if (KV.second.Status == checker::ValidationStatus::Failed) {
        ++S.F;
        if (S.FailureSamples.size() < 8)
          S.FailureSamples.push_back("@" + KV.first + " " + KV.second.Where +
                                     ": " + KV.second.Reason);
      } else if (KV.second.Status ==
                 checker::ValidationStatus::NotSupported) {
        ++S.NS;
      } else {
        Accepted.push_back(KV.first);
      }
    }
    S.DiffMismatches += Replay->DiffMismatches;
  } else {
    if (VC)
      ++S.CacheMisses;

    // Fig. 1, left: the original compiler.
    Timer TOrig;
    passes::PassResult Plain =
        TOrig.time([&] { return P.run(Src, /*GenProof=*/false); });
    S.Orig = TOrig.seconds();

    runCheckedLeg(P, Src, WithProof, Plain, VC, FP, S, Accepted);
  }

  // Differential execution probes the trusted base itself, so it is never
  // served from the cache: it re-runs even on hits, on exactly the
  // translations the (possibly replayed) verdict accepted.
  if (Opts.RunOracle && !Accepted.empty()) {
    Timer TOracle;
    DiffOracleReport R = TOracle.time([&] {
      return runDiffOracle(Src, WithProof.Tgt, Opts.OracleOpts, &Accepted);
    });
    S.Oracle = TOracle.seconds();
    S.OracleRuns += R.Runs;
    S.OracleDivergences += R.Divergences;
    for (const std::string &Msg : R.Samples)
      if (S.OracleSamples.size() < 8)
        S.OracleSamples.push_back("[" + P.name() + "] " + Msg);
  }

  if (VC && SrcTextInOut)
    *SrcTextInOut = std::move(TgtText);

  Stats[P.name()].add(S);
  return std::move(WithProof.Tgt);
}

/// The un-memoized leg of the protocol: file exchange, PCheck, llvm-diff,
/// and (read-write policy) populating the cache with the fresh verdict.
void ValidationDriver::runCheckedLeg(passes::Pass &P, const ir::Module &Src,
                                     passes::PassResult &WithProof,
                                     passes::PassResult &Plain,
                                     cache::ValidationCache *VC,
                                     const cache::Fingerprint &FP,
                                     PassStats &S,
                                     std::vector<std::string> &Accepted) {
  // File exchange (src.ll, tgt'.ll, Proof as JSON) and parsing back.
  ir::Module SrcForCheck = Src;
  ir::Module TgtForCheck = WithProof.Tgt;
  proofgen::Proof ProofForCheck = WithProof.Proof;
  if (Opts.WriteFiles) {
    Timer TIO;
    TIO.time([&] {
      uint64_t N = FileCounter++;
      std::string Base = Dir + "/" + P.name();
      if (!Opts.ExchangeTag.empty())
        Base += "." + Opts.ExchangeTag;
      Base += "." + std::to_string(N);
      std::string ProofPath =
          Base + (Opts.BinaryProofs ? ".proof.bin" : ".proof.json");
      writeFile(Base + ".src.ll", ir::printModule(Src));
      writeFile(Base + ".tgt.ll", ir::printModule(WithProof.Tgt));
      writeFile(ProofPath,
                Opts.BinaryProofs
                    ? proofgen::proofToBinary(WithProof.Proof)
                    : proofgen::proofToText(WithProof.Proof));
      std::string Err;
      auto SrcM = ir::parseModule(readFile(Base + ".src.ll"), &Err);
      assert(SrcM && "source module failed to round-trip");
      auto TgtM = ir::parseModule(readFile(Base + ".tgt.ll"), &Err);
      assert(TgtM && "target module failed to round-trip");
      auto Pr = Opts.BinaryProofs
                    ? proofgen::proofFromBinary(readFile(ProofPath), &Err)
                    : proofgen::proofFromText(readFile(ProofPath), &Err);
      assert(Pr && "proof failed to round-trip");
      SrcForCheck = std::move(*SrcM);
      TgtForCheck = std::move(*TgtM);
      ProofForCheck = std::move(*Pr);
      std::error_code EC;
      std::filesystem::remove(Base + ".src.ll", EC);
      std::filesystem::remove(Base + ".tgt.ll", EC);
      std::filesystem::remove(ProofPath, EC);
    });
    S.IO = TIO.seconds();
  }

  // The proof checker.
  Timer TCheck;
  checker::ModuleResult MR = TCheck.time(
      [&] { return checker::validate(SrcForCheck, TgtForCheck,
                                     ProofForCheck); });
  S.PCheck = TCheck.seconds();

  S.V += MR.Functions.size();
  for (const auto &KV : MR.Functions) {
    if (KV.second.Status == checker::ValidationStatus::Failed) {
      ++S.F;
      if (S.FailureSamples.size() < 8)
        S.FailureSamples.push_back("@" + KV.first + " " + KV.second.Where +
                                   ": " + KV.second.Reason);
    } else if (KV.second.Status == checker::ValidationStatus::NotSupported) {
      ++S.NS;
    } else {
      Accepted.push_back(KV.first);
    }
  }

  // llvm-diff: the original and proof-generating compilers must agree.
  bool DiffMismatch = !difftool::diffModules(Plain.Tgt, WithProof.Tgt);
  if (DiffMismatch)
    ++S.DiffMismatches;

  // Persist the fresh verdict so the next byte-identical run replays it.
  if (VC && VC->writable()) {
    Timer TStore;
    TStore.time([&] {
      cache::Verdict V;
      V.Checker = std::move(MR);
      V.DiffMismatches = DiffMismatch ? 1 : 0;
      cache::StoreOutcome O = VC->store(FP, V);
      if (O.Stored)
        ++S.CacheStores;
      if (O.Error)
        ++S.CacheStoreErrors;
      S.CacheEvictions += O.Evictions;
    });
    S.CacheSec += TStore.seconds();
  }
}

ir::Module ValidationDriver::runPipelineValidated(const ir::Module &Src,
                                                  StatsMap &Stats) {
  ir::Module Cur = Src;
  // Printed text of Cur, threaded through the cache fast path so each
  // intermediate module is serialized once (as a target), not twice.
  std::string CurText;
  for (auto &P : passes::makeO2Pipeline(Bugs))
    Cur = runPassValidated(*P, Cur, Stats, &CurText);
  return Cur;
}

// --- Parallel batch validation ---------------------------------------------

BatchReport crellvm::driver::runBatchValidated(const passes::BugConfig &Bugs,
                                               const DriverOptions &Opts,
                                               size_t NumUnits,
                                               const UnitGenerator &MakeUnit,
                                               const BatchOptions &BOpts,
                                               ThreadPool *Pool) {
  BatchReport Out;
  Out.Units = NumUnits;
  unsigned Jobs = BOpts.Jobs ? BOpts.Jobs : ThreadPool::defaultConcurrency();
  if (Pool)
    Jobs = Pool->numThreads();
  Out.JobsUsed = Jobs;

  std::vector<StatsMap> PerUnit(NumUnits);
  std::vector<double> UnitSeconds(NumUnits, 0.0);
  std::vector<uint8_t> UnitCancelled(NumUnits, 0);

  // The serial path runs the identical per-unit closure inline, so the
  // merged Stats are bit-identical across all Jobs values.
  auto RunUnit = [&](size_t I) {
    // The deadline/cancellation hook: consulted at the last moment before
    // the unit would do work, so a request that expired while queued
    // costs nothing but this check.
    if (BOpts.CancelUnit && BOpts.CancelUnit(I)) {
      UnitCancelled[I] = 1;
      if (BOpts.OnUnitDone)
        BOpts.OnUnitDone(I, PerUnit[I], /*Cancelled=*/true);
      return;
    }
    Timer T;
    T.time([&] {
      DriverOptions UOpts = Opts;
      UOpts.ExchangeTag = Opts.ExchangeTag.empty()
                              ? "u" + std::to_string(I)
                              : Opts.ExchangeTag + ".u" + std::to_string(I);
      ValidationDriver D(Bugs, UOpts);
      ir::Module M = MakeUnit(I);
      D.runPipelineValidated(M, PerUnit[I]);
    });
    UnitSeconds[I] = T.seconds();
    if (BOpts.OnUnitDone)
      BOpts.OnUnitDone(I, PerUnit[I], /*Cancelled=*/false);
  };

  Timer Wall;
  Wall.time([&] {
    if (Jobs <= 1) {
      for (size_t I = 0; I != NumUnits; ++I)
        RunUnit(I);
    } else if (Pool) {
      parallelFor(*Pool, NumUnits, RunUnit);
    } else {
      ThreadPool Local(Jobs);
      parallelFor(Local, NumUnits, RunUnit);
    }
  });
  Out.WallSeconds = Wall.seconds();

  // Deterministic reduction: merge per-unit stats in unit-index order,
  // independent of the order in which workers finished them.
  for (size_t I = 0; I != NumUnits; ++I) {
    for (const auto &KV : PerUnit[I])
      Out.Stats[KV.first].add(KV.second);
    Out.CpuSeconds += UnitSeconds[I];
    Out.Cancelled += UnitCancelled[I];
  }
  return Out;
}

BatchReport crellvm::driver::runBatchValidated(
    const passes::BugConfig &Bugs, const DriverOptions &Opts,
    const std::vector<ir::Module> &Mods, const BatchOptions &BOpts,
    ThreadPool *Pool) {
  return runBatchValidated(
      Bugs, Opts, Mods.size(),
      [&Mods](size_t I) { return Mods[I]; }, BOpts, Pool);
}
