//===- driver/Driver.cpp ----------------------------------------*- C++ -*-===//

#include "driver/Driver.h"

#include "cache/Fingerprint.h"
#include "cache/ValidationCache.h"
#include "checker/Validator.h"
#include "checker/Version.h"
#include "difftool/Diff.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "plan/PlanManager.h"
#include "proofgen/ProofBinary.h"
#include "proofgen/ProofJson.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace crellvm;
using namespace crellvm::driver;

void PassStats::add(const PassStats &O) {
  V += O.V;
  F += O.F;
  NS += O.NS;
  Orig += O.Orig;
  PCal += O.PCal;
  IO += O.IO;
  PCheck += O.PCheck;
  DiffMismatches += O.DiffMismatches;
  for (const std::string &S : O.FailureSamples)
    if (FailureSamples.size() < 8)
      FailureSamples.push_back(S);
  Oracle += O.Oracle;
  OracleRuns += O.OracleRuns;
  OracleDivergences += O.OracleDivergences;
  for (const std::string &S : O.OracleSamples)
    if (OracleSamples.size() < 8)
      OracleSamples.push_back(S);
  CacheSec += O.CacheSec;
  CacheHits += O.CacheHits;
  CacheMisses += O.CacheMisses;
  CacheStores += O.CacheStores;
  CacheEvictions += O.CacheEvictions;
  CacheStoreErrors += O.CacheStoreErrors;
  PlanBuilds += O.PlanBuilds;
  PlanHits += O.PlanHits;
  PlanSpecialized += O.PlanSpecialized;
  PlanFallbacks += O.PlanFallbacks;
  PlanShadowChecks += O.PlanShadowChecks;
  PlanDivergences += O.PlanDivergences;
}

ValidationDriver::ValidationDriver(const passes::BugConfig &Bugs,
                                   DriverOptions Options)
    : Bugs(Bugs), Opts(std::move(Options)) {
  if (!Opts.WriteFiles)
    return;
  if (!Opts.ExchangeDir.empty()) {
    Dir = Opts.ExchangeDir;
  } else {
    auto Base = std::filesystem::temp_directory_path() / "crellvm-exchange";
    Dir = Base.string();
  }
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    Opts.WriteFiles = false; // fall back to in-memory checking
}

namespace {

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Text;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

ir::Module ValidationDriver::runPassValidated(passes::Pass &P,
                                              const ir::Module &Src,
                                              StatsMap &Stats,
                                              std::string *SrcTextInOut) {
  PassStats S;
  cache::ValidationCache *VC =
      Opts.Cache && Opts.Cache->enabled() ? Opts.Cache : nullptr;

  // Fig. 1, right: the proof-generating compiler. This leg always runs —
  // its output (tgt', proof) is part of the cache key, so the cache can
  // only ever short-circuit the *checking* of artifacts that were
  // actually produced, never the production of the artifacts.
  Timer TCal;
  passes::PassResult WithProof =
      TCal.time([&] { return P.run(Src, /*GenProof=*/true); });
  S.PCal = TCal.seconds();

  // Cache probe: fingerprint the exact bytes the file exchange would
  // write (plus pass name, checker version, bug config) and look for a
  // memoized verdict. The pipeline threads the printed module text
  // through SrcTextInOut so each module is serialized only once.
  cache::Fingerprint FP;
  std::optional<cache::Verdict> Replay;
  std::string TgtText;
  if (VC) {
    Timer TCache;
    Replay = TCache.time([&] {
      std::string SrcText = (SrcTextInOut && !SrcTextInOut->empty())
                                ? std::move(*SrcTextInOut)
                                : ir::printModule(Src);
      TgtText = ir::printModule(WithProof.Tgt);
      FP = cache::fingerprintValidation(SrcText, TgtText, WithProof.Proof,
                                        P.name(),
                                        checker::versionFingerprint(), Bugs);
      return VC->lookup(FP);
    });
    S.CacheSec = TCache.seconds();
  }

  std::vector<std::string> Accepted;
  if (Replay) {
    // Hit: replay the memoized verdict. Orig, the file exchange, PCheck
    // and llvm-diff are all skipped — each is a deterministic function of
    // the fingerprinted inputs (DESIGN.md §10).
    ++S.CacheHits;
    S.V += Replay->Checker.Functions.size();
    for (const auto &KV : Replay->Checker.Functions) {
      if (KV.second.Status == checker::ValidationStatus::Failed) {
        ++S.F;
        if (S.FailureSamples.size() < 8)
          S.FailureSamples.push_back("@" + KV.first + " " + KV.second.Where +
                                     ": " + KV.second.Reason);
      } else if (KV.second.Status ==
                 checker::ValidationStatus::NotSupported) {
        ++S.NS;
      } else {
        Accepted.push_back(KV.first);
      }
    }
    S.DiffMismatches += Replay->DiffMismatches;
  } else {
    if (VC)
      ++S.CacheMisses;

    // Fig. 1, left: the original compiler.
    Timer TOrig;
    passes::PassResult Plain =
        TOrig.time([&] { return P.run(Src, /*GenProof=*/false); });
    S.Orig = TOrig.seconds();

    runCheckedLeg(P, Src, WithProof, Plain, VC, FP, S, Accepted);
  }

  // Differential execution probes the trusted base itself, so it is never
  // served from the cache: it re-runs even on hits, on exactly the
  // translations the (possibly replayed) verdict accepted.
  if (Opts.RunOracle && !Accepted.empty()) {
    Timer TOracle;
    DiffOracleReport R = TOracle.time([&] {
      return runDiffOracle(Src, WithProof.Tgt, Opts.OracleOpts, &Accepted);
    });
    S.Oracle = TOracle.seconds();
    S.OracleRuns += R.Runs;
    S.OracleDivergences += R.Divergences;
    for (const std::string &Msg : R.Samples)
      if (S.OracleSamples.size() < 8)
        S.OracleSamples.push_back("[" + P.name() + "] " + Msg);
  }

  if (VC && SrcTextInOut)
    *SrcTextInOut = std::move(TgtText);

  Stats[P.name()].add(S);
  return std::move(WithProof.Tgt);
}

/// The un-memoized leg of the protocol: file exchange, PCheck, llvm-diff,
/// and (read-write policy) populating the cache with the fresh verdict.
void ValidationDriver::runCheckedLeg(passes::Pass &P, const ir::Module &Src,
                                     passes::PassResult &WithProof,
                                     passes::PassResult &Plain,
                                     cache::ValidationCache *VC,
                                     const cache::Fingerprint &FP,
                                     PassStats &S,
                                     std::vector<std::string> &Accepted) {
  // File exchange (src.ll, tgt'.ll, Proof as JSON) and parsing back.
  ir::Module SrcForCheck = Src;
  ir::Module TgtForCheck = WithProof.Tgt;
  proofgen::Proof ProofForCheck = WithProof.Proof;
  if (Opts.WriteFiles) {
    Timer TIO;
    TIO.time([&] {
      uint64_t N = FileCounter++;
      std::string Base = Dir + "/" + P.name();
      if (!Opts.ExchangeTag.empty())
        Base += "." + Opts.ExchangeTag;
      Base += "." + std::to_string(N);
      std::string ProofPath =
          Base + (Opts.BinaryProofs ? ".proof.bin" : ".proof.json");
      writeFile(Base + ".src.ll", ir::printModule(Src));
      writeFile(Base + ".tgt.ll", ir::printModule(WithProof.Tgt));
      writeFile(ProofPath,
                Opts.BinaryProofs
                    ? proofgen::proofToBinary(WithProof.Proof)
                    : proofgen::proofToText(WithProof.Proof));
      std::string Err;
      auto SrcM = ir::parseModule(readFile(Base + ".src.ll"), &Err);
      assert(SrcM && "source module failed to round-trip");
      auto TgtM = ir::parseModule(readFile(Base + ".tgt.ll"), &Err);
      assert(TgtM && "target module failed to round-trip");
      auto Pr = Opts.BinaryProofs
                    ? proofgen::proofFromBinary(readFile(ProofPath), &Err)
                    : proofgen::proofFromText(readFile(ProofPath), &Err);
      assert(Pr && "proof failed to round-trip");
      SrcForCheck = std::move(*SrcM);
      TgtForCheck = std::move(*TgtM);
      ProofForCheck = std::move(*Pr);
      std::error_code EC;
      std::filesystem::remove(Base + ".src.ll", EC);
      std::filesystem::remove(Base + ".tgt.ll", EC);
      std::filesystem::remove(ProofPath, EC);
    });
    S.IO = TIO.seconds();
  }

  // The proof checker — dispatched through the plan runtime when one is
  // attached (identical verdicts in every plan mode; see Driver.h).
  Timer TCheck;
  checker::ModuleResult MR = TCheck.time([&] {
    if (Opts.Plans) {
      plan::PlanCallStats PS;
      checker::ModuleResult R = Opts.Plans->validate(
          P.name(), Bugs, SrcForCheck, TgtForCheck, ProofForCheck, &PS);
      S.PlanBuilds += PS.Builds;
      S.PlanHits += PS.Hits;
      S.PlanSpecialized += PS.Specialized;
      S.PlanFallbacks += PS.Fallbacks;
      S.PlanShadowChecks += PS.ShadowChecks;
      S.PlanDivergences += PS.Divergences;
      return R;
    }
    return checker::validate(SrcForCheck, TgtForCheck, ProofForCheck);
  });
  S.PCheck = TCheck.seconds();

  S.V += MR.Functions.size();
  for (const auto &KV : MR.Functions) {
    if (KV.second.Status == checker::ValidationStatus::Failed) {
      ++S.F;
      if (S.FailureSamples.size() < 8)
        S.FailureSamples.push_back("@" + KV.first + " " + KV.second.Where +
                                   ": " + KV.second.Reason);
    } else if (KV.second.Status == checker::ValidationStatus::NotSupported) {
      ++S.NS;
    } else {
      Accepted.push_back(KV.first);
    }
  }

  // llvm-diff: the original and proof-generating compilers must agree.
  bool DiffMismatch = !difftool::diffModules(Plain.Tgt, WithProof.Tgt);
  if (DiffMismatch)
    ++S.DiffMismatches;

  // Persist the fresh verdict so the next byte-identical run replays it.
  if (VC && VC->writable()) {
    Timer TStore;
    TStore.time([&] {
      cache::Verdict V;
      V.Checker = std::move(MR);
      V.DiffMismatches = DiffMismatch ? 1 : 0;
      cache::StoreOutcome O = VC->store(FP, V);
      if (O.Stored)
        ++S.CacheStores;
      if (O.Error)
        ++S.CacheStoreErrors;
      S.CacheEvictions += O.Evictions;
    });
    S.CacheSec += TStore.seconds();
  }
}

ir::Module ValidationDriver::runPipelineValidated(const ir::Module &Src,
                                                  StatsMap &Stats) {
  ir::Module Cur = Src;
  // Printed text of Cur, threaded through the cache fast path so each
  // intermediate module is serialized once (as a target), not twice.
  std::string CurText;
  for (auto &P : passes::makeO2Pipeline(Bugs))
    Cur = runPassValidated(*P, Cur, Stats, &CurText);
  return Cur;
}

// --- Parallel batch validation ---------------------------------------------

const char *crellvm::driver::unitOutcomeName(UnitOutcome O) {
  switch (O) {
  case UnitOutcome::Ok:
    return "ok";
  case UnitOutcome::Cancelled:
    return "cancelled";
  case UnitOutcome::InternalError:
    return "internal_error";
  case UnitOutcome::TimedOut:
    return "timed_out";
  }
  return "?";
}

namespace {

int64_t steadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-unit watchdog bookkeeping. Answered is the first-wins flag between
/// the worker finishing a unit and the watchdog expiring it: whichever
/// CAS succeeds fires the single OnUnitDone and records the outcome.
struct UnitState {
  std::atomic<int64_t> StartMs{-1}; ///< -1 until the unit begins work
  std::atomic<uint8_t> Answered{0};
};

} // namespace

BatchReport crellvm::driver::runBatchValidated(const passes::BugConfig &Bugs,
                                               const DriverOptions &Opts,
                                               size_t NumUnits,
                                               const UnitGenerator &MakeUnit,
                                               const BatchOptions &BOpts,
                                               ThreadPool *Pool) {
  BatchReport Out;
  Out.Units = NumUnits;
  unsigned Jobs = BOpts.Jobs ? BOpts.Jobs : ThreadPool::defaultConcurrency();
  if (Pool)
    Jobs = Pool->numThreads();
  Out.JobsUsed = Jobs;

  std::vector<StatsMap> PerUnit(NumUnits);
  std::vector<double> UnitSeconds(NumUnits, 0.0);
  std::vector<UnitOutcome> Outcomes(NumUnits, UnitOutcome::Ok);
  std::vector<UnitState> States(NumUnits);

  // Exactly one answer per unit: the worker (Ok / Cancelled /
  // InternalError) races the watchdog (TimedOut) on the Answered flag.
  // The loser's outcome is discarded, so a unit the watchdog already
  // answered contributes nothing when it eventually finishes.
  auto Answer = [&](size_t I, UnitOutcome O, const StatsMap &Unit,
                    const std::string &Detail) {
    uint8_t Expected = 0;
    if (!States[I].Answered.compare_exchange_strong(
            Expected, 1, std::memory_order_acq_rel))
      return false;
    Outcomes[I] = O;
    if (BOpts.OnUnitDone)
      BOpts.OnUnitDone(I, Unit, O, Detail);
    return true;
  };

  // The serial path runs the identical per-unit closure inline, so the
  // merged Stats are bit-identical across all Jobs values.
  auto RunUnit = [&](size_t I) {
    // The deadline/cancellation hook: consulted at the last moment before
    // the unit would do work, so a request that expired while queued
    // costs nothing but this check.
    if (BOpts.CancelUnit && BOpts.CancelUnit(I)) {
      Answer(I, UnitOutcome::Cancelled, PerUnit[I], "");
      return;
    }
    States[I].StartMs.store(steadyNowMs(), std::memory_order_release);
    Timer T;
    std::string FailDetail;
    bool Failed = false;
    T.time([&] {
      try {
        // Chaos sites: unit.hang stalls the unit (what a pathological
        // module or checker loop looks like to the watchdog); unit.run
        // throws (what any unexpected defect looks like to the batch).
        uint64_t HangMs = 0;
        if (fault::shouldFail("unit.hang", &HangMs))
          std::this_thread::sleep_for(
              std::chrono::milliseconds(HangMs ? HangMs : 50));
        if (fault::shouldFail("unit.run"))
          throw std::runtime_error("injected unit.run fault");
        DriverOptions UOpts = Opts;
        UOpts.ExchangeTag = Opts.ExchangeTag.empty()
                                ? "u" + std::to_string(I)
                                : Opts.ExchangeTag + ".u" + std::to_string(I);
        ValidationDriver D(Bugs, UOpts);
        ir::Module M = MakeUnit(I);
        D.runPipelineValidated(M, PerUnit[I]);
      } catch (const std::exception &E) {
        Failed = true;
        FailDetail = E.what();
      } catch (...) {
        Failed = true;
        FailDetail = "non-standard exception";
      }
    });
    UnitSeconds[I] = T.seconds();
    if (Failed) {
      // Partial stats from an aborted unit must not leak into the
      // deterministic reduction.
      PerUnit[I].clear();
      Answer(I, UnitOutcome::InternalError, PerUnit[I], FailDetail);
    } else {
      Answer(I, UnitOutcome::Ok, PerUnit[I], "");
    }
  };

  // The watchdog answers (never abandons) stuck units: workers keep
  // running to completion so no memory is freed under them, but their
  // callers hear UnitOutcome::TimedOut as soon as the deadline passes.
  std::atomic<bool> WatchdogStop{false};
  std::thread Watchdog;
  if (BOpts.UnitTimeoutMs) {
    Watchdog = std::thread([&] {
      // Empty stats for early answers: the worker is still writing
      // PerUnit[I], so the watchdog must not read it.
      const StatsMap Empty;
      auto Tick = std::chrono::milliseconds(
          std::max<uint64_t>(1, std::min<uint64_t>(BOpts.UnitTimeoutMs, 20)));
      while (!WatchdogStop.load(std::memory_order_acquire)) {
        int64_t Now = steadyNowMs();
        for (size_t I = 0; I != NumUnits; ++I) {
          int64_t St = States[I].StartMs.load(std::memory_order_acquire);
          if (St < 0 ||
              States[I].Answered.load(std::memory_order_acquire) ||
              Now - St < static_cast<int64_t>(BOpts.UnitTimeoutMs))
            continue;
          Answer(I, UnitOutcome::TimedOut, Empty,
                 "unit exceeded " + std::to_string(BOpts.UnitTimeoutMs) +
                     "ms watchdog deadline");
        }
        std::this_thread::sleep_for(Tick);
      }
    });
  }

  Timer Wall;
  Wall.time([&] {
    if (Jobs <= 1) {
      for (size_t I = 0; I != NumUnits; ++I)
        RunUnit(I);
    } else if (Pool) {
      parallelFor(*Pool, NumUnits, RunUnit);
    } else {
      ThreadPool Local(Jobs);
      parallelFor(Local, NumUnits, RunUnit);
    }
  });
  if (Watchdog.joinable()) {
    WatchdogStop.store(true, std::memory_order_release);
    Watchdog.join();
  }
  Out.WallSeconds = Wall.seconds();

  // Deterministic reduction: merge per-unit stats in unit-index order,
  // independent of the order in which workers finished them. Only Ok
  // units contribute — a thrown or timed-out unit's numbers would vary
  // with where exactly it died.
  for (size_t I = 0; I != NumUnits; ++I) {
    switch (Outcomes[I]) {
    case UnitOutcome::Ok:
      for (const auto &KV : PerUnit[I])
        Out.Stats[KV.first].add(KV.second);
      break;
    case UnitOutcome::Cancelled:
      ++Out.Cancelled;
      break;
    case UnitOutcome::InternalError:
      ++Out.InternalErrors;
      break;
    case UnitOutcome::TimedOut:
      ++Out.TimedOut;
      break;
    }
    Out.CpuSeconds += UnitSeconds[I];
  }
  return Out;
}

BatchReport crellvm::driver::runBatchValidated(
    const passes::BugConfig &Bugs, const DriverOptions &Opts,
    const std::vector<ir::Module> &Mods, const BatchOptions &BOpts,
    ThreadPool *Pool) {
  return runBatchValidated(
      Bugs, Opts, Mods.size(),
      [&Mods](size_t I) { return Mods[I]; }, BOpts, Pool);
}
