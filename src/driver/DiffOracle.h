//===- driver/DiffOracle.h - Differential-execution oracle -----*- C++ -*-===//
///
/// \file
/// An independent end-to-end soundness probe for the proof checker: for a
/// translation the checker accepted, run the reference interpreter
/// (src/interp) on the source and the target function with identical
/// RNG-seeded inputs and the same external-call oracle seed, and flag any
/// pair of runs where the target does not refine the source.
///
/// The oracle checks *behavior refinement over sampled inputs*, the same
/// correctness notion the checker certifies symbolically (paper §1.2), so
/// a divergence on a checker-accepted translation is evidence of a hole
/// in the trusted base — an unsound inference rule, a checker bug, or a
/// semantics mismatch. The converse does not hold: the oracle samples
/// finitely many inputs and bounded fuel, so silence proves nothing
/// (testing vs. validation, paper §7.1).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_DRIVER_DIFFORACLE_H
#define CRELLVM_DRIVER_DIFFORACLE_H

#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace crellvm {
namespace driver {

struct DiffOracleOptions {
  /// Input vectors tried per function.
  unsigned RunsPerFunction = 3;
  /// Base seed; per-function streams are derived from it and the function
  /// name, so verdicts do not depend on module iteration order.
  uint64_t Seed = 0x0dd5eed;
  /// Interpreter step budget per run (kept small: oracle runs ride along
  /// every validation).
  uint64_t Fuel = 20000;
  /// Cap on retained divergence diagnostics.
  unsigned MaxSamples = 4;
};

struct DiffOracleReport {
  uint64_t FunctionsProbed = 0;
  uint64_t Runs = 0;        ///< src/tgt run pairs executed
  uint64_t Divergences = 0; ///< runs where target does not refine source
  std::vector<std::string> Samples; ///< first few divergence diagnostics

  void add(const DiffOracleReport &O, unsigned MaxSamples = 8);
};

/// Differentially executes every function defined in both \p Src and
/// \p Tgt. When \p Only is non-null, probes only the listed functions
/// (the driver passes the checker-validated subset). Deterministic: the
/// report depends only on the modules and \p Opts.
DiffOracleReport runDiffOracle(const ir::Module &Src, const ir::Module &Tgt,
                               const DiffOracleOptions &Opts,
                               const std::vector<std::string> *Only = nullptr);

} // namespace driver
} // namespace crellvm

#endif // CRELLVM_DRIVER_DIFFORACLE_H
