//===- driver/DiffOracle.cpp ------------------------------------*- C++ -*-===//

#include "driver/DiffOracle.h"

#include "interp/Interp.h"
#include "support/RNG.h"

#include <algorithm>

using namespace crellvm;
using namespace crellvm::driver;

void DiffOracleReport::add(const DiffOracleReport &O, unsigned MaxSamples) {
  FunctionsProbed += O.FunctionsProbed;
  Runs += O.Runs;
  Divergences += O.Divergences;
  for (const std::string &S : O.Samples)
    if (Samples.size() < MaxSamples)
      Samples.push_back(S);
}

namespace {

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string outcomeStr(const interp::RunResult &R) {
  switch (R.End) {
  case interp::Outcome::Returned:
    return "ret " + R.ReturnValue.str();
  case interp::Outcome::UndefBehav:
    return "UB(" + R.UbReason + ")";
  case interp::Outcome::OutOfFuel:
    return "out-of-fuel";
  }
  return "<invalid>";
}

std::string describeDivergence(const std::string &Fn,
                               const std::vector<int64_t> &Args,
                               const interp::RunResult &S,
                               const interp::RunResult &T) {
  std::string Msg = "@" + Fn + "(";
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I != 0)
      Msg += ",";
    Msg += std::to_string(Args[I]);
  }
  Msg += "): src " + outcomeStr(S) + " [" + std::to_string(S.Trace.size()) +
         " events] vs tgt " + outcomeStr(T) + " [" +
         std::to_string(T.Trace.size()) + " events]";
  return Msg;
}

} // namespace

DiffOracleReport
crellvm::driver::runDiffOracle(const ir::Module &Src, const ir::Module &Tgt,
                               const DiffOracleOptions &Opts,
                               const std::vector<std::string> *Only) {
  DiffOracleReport Report;
  for (const ir::Function &F : Src.Funcs) {
    if (Only && std::find(Only->begin(), Only->end(), F.Name) == Only->end())
      continue;
    const ir::Function *TF = Tgt.getFunction(F.Name);
    if (!TF)
      continue;
    ++Report.FunctionsProbed;

    // Per-function input stream, independent of module iteration order.
    RNG R(Opts.Seed ^ fnv1a(F.Name));
    for (unsigned Run = 0; Run != Opts.RunsPerFunction; ++Run) {
      std::vector<int64_t> Args;
      for (size_t P = 0; P != F.Params.size(); ++P)
        // Mostly small values (so branches and gep indices are exercised),
        // occasionally full-range bit patterns.
        Args.push_back(R.chance(4, 5) ? R.range(-4, 9)
                                      : static_cast<int64_t>(R.next()));

      interp::InterpOptions IOpts;
      IOpts.Fuel = Opts.Fuel;
      // Both runs observe the identical external environment.
      IOpts.OracleSeed = R.next() | 1;
      interp::RunResult SR = interp::run(Src, F.Name, Args, IOpts);
      interp::RunResult TR = interp::run(Tgt, F.Name, Args, IOpts);
      ++Report.Runs;
      if (!interp::refines(SR, TR)) {
        ++Report.Divergences;
        if (Report.Samples.size() < Opts.MaxSamples)
          Report.Samples.push_back(
              describeDivergence(F.Name, Args, SR, TR));
      }
    }
  }
  return Report;
}
