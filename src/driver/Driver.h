//===- driver/Driver.h - The Fig. 1 validation pipeline ---------*- C++ -*-===//
///
/// \file
/// The validation driver, reproducing the paper's Fig. 1 and the four time
/// columns of its experiment tables:
///
///   Orig    run the original optimizer (plain mode);
///   PCal    run the proof-generating optimizer;
///   I/O     write src.ll, tgt'.ll and Proof to disk as text/JSON and read
///           them back (validation consumes the files, not the in-memory
///           objects);
///   PCheck  run the verified-checker analog on the parsed artifacts.
///
/// After a successful validation, tgt.ll (original compiler) and tgt'.ll
/// (proof-generating compiler) are compared with the llvm-diff analog.
///
/// On top of the per-pass protocol, runBatchValidated validates many
/// translation units concurrently on a work-stealing thread pool
/// (support/ThreadPool.h) and can cross-check every checker-accepted
/// translation with the differential-execution oracle (DiffOracle.h).
/// Statistics reduction is deterministic and order-independent: each unit
/// accumulates into its own StatsMap and the per-unit maps are merged in
/// unit-index order after the pool drains, so `--jobs N` produces
/// bit-identical counts and samples for every N. Wall-clock time and
/// cumulative per-unit CPU time are reported separately so the paper's
/// Orig/PCal/I-O/PCheck columns stay comparable across job counts.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_DRIVER_DRIVER_H
#define CRELLVM_DRIVER_DRIVER_H

#include "driver/DiffOracle.h"
#include "passes/Pipeline.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace crellvm {

class ThreadPool;

namespace driver {

/// Accumulated statistics for one pass, matching the paper's columns.
struct PassStats {
  uint64_t V = 0;  ///< translations validated or attempted (#V)
  uint64_t F = 0;  ///< validation failures (#F)
  uint64_t NS = 0; ///< not-supported translations (#NS)
  double Orig = 0, PCal = 0, IO = 0, PCheck = 0; ///< seconds
  uint64_t DiffMismatches = 0; ///< llvm-diff disagreements (expected 0)
  std::vector<std::string> FailureSamples; ///< first few failure reasons

  // Differential-execution oracle columns (populated with
  // DriverOptions::RunOracle; all zero otherwise).
  double Oracle = 0;               ///< seconds spent in the oracle
  uint64_t OracleRuns = 0;         ///< src/tgt run pairs executed
  uint64_t OracleDivergences = 0;  ///< checker-accepted but diverging
  std::vector<std::string> OracleSamples; ///< first few divergences

  void add(const PassStats &O);
  uint64_t validated() const { return V - F - NS; }
};

/// Per-pass-name statistics.
using StatsMap = std::map<std::string, PassStats>;

struct DriverOptions {
  /// Exercise the file-based exchange (the I/O column). When false the
  /// in-memory artifacts are checked directly and IO time stays 0.
  bool WriteFiles = true;
  /// Directory for the exchange files; empty = a fresh directory under
  /// the system temp dir.
  std::string ExchangeDir;
  /// Extra component of exchange file names. Concurrent drivers sharing
  /// an ExchangeDir must use distinct tags (runBatchValidated derives one
  /// per unit).
  std::string ExchangeTag;
  /// Exchange proofs in the compact binary format (proofgen/ProofBinary.h)
  /// instead of plain-text JSON — the paper's §7 future-work item. The
  /// modules are still exchanged as .ll text either way.
  bool BinaryProofs = false;
  /// Differentially execute every checker-accepted function translation
  /// and record divergences (an end-to-end soundness probe of checker +
  /// infrules; see DiffOracle.h).
  bool RunOracle = false;
  DiffOracleOptions OracleOpts;
};

/// Runs passes over modules with validation, accumulating statistics.
class ValidationDriver {
public:
  ValidationDriver(const passes::BugConfig &Bugs, DriverOptions Opts = {});

  /// Runs one pass over \p Src with the full Fig. 1 protocol; returns the
  /// optimized module and merges the timings/counts into Stats[pass name].
  ir::Module runPassValidated(passes::Pass &P, const ir::Module &Src,
                              StatsMap &Stats);

  /// Runs the -O2 pipeline, validating every step.
  ir::Module runPipelineValidated(const ir::Module &Src, StatsMap &Stats);

  const passes::BugConfig &bugs() const { return Bugs; }

private:
  passes::BugConfig Bugs;
  DriverOptions Opts;
  std::string Dir; ///< resolved exchange directory
  uint64_t FileCounter = 0;
};

// --- Parallel batch validation ---------------------------------------------

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (no pool).
  unsigned Jobs = 1;
};

struct BatchReport {
  StatsMap Stats;          ///< deterministic, unit-index-order reduction
  uint64_t Units = 0;      ///< translation units processed
  unsigned JobsUsed = 1;   ///< resolved worker count
  double WallSeconds = 0;  ///< elapsed time of the whole batch
  double CpuSeconds = 0;   ///< sum of per-unit validation times
};

/// Produces translation unit \p Index. Called concurrently for distinct
/// indices; must be thread-safe (pure generators qualify).
using UnitGenerator = std::function<ir::Module(size_t)>;

/// Validates the -O2 pipeline over \p NumUnits units concurrently. Each
/// unit gets its own ValidationDriver (with a unit-unique ExchangeTag) and
/// its own StatsMap; the maps are merged in unit-index order, so the
/// resulting Stats are identical for every Jobs value. When \p Pool is
/// non-null it is used (and not drained of other work); otherwise a
/// temporary pool of BatchOptions::Jobs workers is created.
BatchReport runBatchValidated(const passes::BugConfig &Bugs,
                              const DriverOptions &Opts, size_t NumUnits,
                              const UnitGenerator &MakeUnit,
                              const BatchOptions &BOpts = {},
                              ThreadPool *Pool = nullptr);

/// Convenience overload for pre-materialized modules.
BatchReport runBatchValidated(const passes::BugConfig &Bugs,
                              const DriverOptions &Opts,
                              const std::vector<ir::Module> &Mods,
                              const BatchOptions &BOpts = {},
                              ThreadPool *Pool = nullptr);

} // namespace driver
} // namespace crellvm

#endif // CRELLVM_DRIVER_DRIVER_H
