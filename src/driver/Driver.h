//===- driver/Driver.h - The Fig. 1 validation pipeline ---------*- C++ -*-===//
///
/// \file
/// The validation driver, reproducing the paper's Fig. 1 and the four time
/// columns of its experiment tables:
///
///   Orig    run the original optimizer (plain mode);
///   PCal    run the proof-generating optimizer;
///   I/O     write src.ll, tgt'.ll and Proof to disk as text/JSON and read
///           them back (validation consumes the files, not the in-memory
///           objects);
///   PCheck  run the verified-checker analog on the parsed artifacts.
///
/// After a successful validation, tgt.ll (original compiler) and tgt'.ll
/// (proof-generating compiler) are compared with the llvm-diff analog.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_DRIVER_DRIVER_H
#define CRELLVM_DRIVER_DRIVER_H

#include "passes/Pipeline.h"

#include <map>
#include <string>
#include <vector>

namespace crellvm {
namespace driver {

/// Accumulated statistics for one pass, matching the paper's columns.
struct PassStats {
  uint64_t V = 0;  ///< translations validated or attempted (#V)
  uint64_t F = 0;  ///< validation failures (#F)
  uint64_t NS = 0; ///< not-supported translations (#NS)
  double Orig = 0, PCal = 0, IO = 0, PCheck = 0; ///< seconds
  uint64_t DiffMismatches = 0; ///< llvm-diff disagreements (expected 0)
  std::vector<std::string> FailureSamples; ///< first few failure reasons

  void add(const PassStats &O);
  uint64_t validated() const { return V - F - NS; }
};

/// Per-pass-name statistics.
using StatsMap = std::map<std::string, PassStats>;

struct DriverOptions {
  /// Exercise the file-based exchange (the I/O column). When false the
  /// in-memory artifacts are checked directly and IO time stays 0.
  bool WriteFiles = true;
  /// Directory for the exchange files; empty = a fresh directory under
  /// the system temp dir.
  std::string ExchangeDir;
  /// Exchange proofs in the compact binary format (proofgen/ProofBinary.h)
  /// instead of plain-text JSON — the paper's §7 future-work item. The
  /// modules are still exchanged as .ll text either way.
  bool BinaryProofs = false;
};

/// Runs passes over modules with validation, accumulating statistics.
class ValidationDriver {
public:
  ValidationDriver(const passes::BugConfig &Bugs, DriverOptions Opts = {});

  /// Runs one pass over \p Src with the full Fig. 1 protocol; returns the
  /// optimized module and merges the timings/counts into Stats[pass name].
  ir::Module runPassValidated(passes::Pass &P, const ir::Module &Src,
                              StatsMap &Stats);

  /// Runs the -O2 pipeline, validating every step.
  ir::Module runPipelineValidated(const ir::Module &Src, StatsMap &Stats);

  const passes::BugConfig &bugs() const { return Bugs; }

private:
  passes::BugConfig Bugs;
  DriverOptions Opts;
  std::string Dir; ///< resolved exchange directory
  uint64_t FileCounter = 0;
};

} // namespace driver
} // namespace crellvm

#endif // CRELLVM_DRIVER_DRIVER_H
