//===- driver/Driver.h - The Fig. 1 validation pipeline ---------*- C++ -*-===//
///
/// \file
/// The validation driver, reproducing the paper's Fig. 1 and the four time
/// columns of its experiment tables:
///
///   Orig    run the original optimizer (plain mode);
///   PCal    run the proof-generating optimizer;
///   I/O     write src.ll, tgt'.ll and Proof to disk as text/JSON and read
///           them back (validation consumes the files, not the in-memory
///           objects);
///   PCheck  run the verified-checker analog on the parsed artifacts.
///
/// After a successful validation, tgt.ll (original compiler) and tgt'.ll
/// (proof-generating compiler) are compared with the llvm-diff analog.
///
/// On top of the per-pass protocol, runBatchValidated validates many
/// translation units concurrently on a work-stealing thread pool
/// (support/ThreadPool.h) and can cross-check every checker-accepted
/// translation with the differential-execution oracle (DiffOracle.h).
/// Statistics reduction is deterministic and order-independent: each unit
/// accumulates into its own StatsMap and the per-unit maps are merged in
/// unit-index order after the pool drains, so `--jobs N` produces
/// bit-identical counts and samples for every N. Wall-clock time and
/// cumulative per-unit CPU time are reported separately so the paper's
/// Orig/PCal/I-O/PCheck columns stay comparable across job counts.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_DRIVER_DRIVER_H
#define CRELLVM_DRIVER_DRIVER_H

#include "driver/DiffOracle.h"
#include "passes/Pipeline.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace crellvm {

class ThreadPool;

namespace cache {
struct Fingerprint;
class ValidationCache;
}

namespace plan {
class PlanManager;
}

namespace driver {

/// Accumulated statistics for one pass, matching the paper's columns.
struct PassStats {
  uint64_t V = 0;  ///< translations validated or attempted (#V)
  uint64_t F = 0;  ///< validation failures (#F)
  uint64_t NS = 0; ///< not-supported translations (#NS)
  double Orig = 0, PCal = 0, IO = 0, PCheck = 0; ///< seconds
  uint64_t DiffMismatches = 0; ///< llvm-diff disagreements (expected 0)
  std::vector<std::string> FailureSamples; ///< first few failure reasons

  // Differential-execution oracle columns (populated with
  // DriverOptions::RunOracle; all zero otherwise).
  double Oracle = 0;               ///< seconds spent in the oracle
  uint64_t OracleRuns = 0;         ///< src/tgt run pairs executed
  uint64_t OracleDivergences = 0;  ///< checker-accepted but diverging
  std::vector<std::string> OracleSamples; ///< first few divergences

  // Validation-cache columns (populated with DriverOptions::Cache; all
  // zero otherwise). Counted per unit and merged in unit-index order like
  // every other field, so they stay deterministic across `--jobs N`
  // whenever lookups themselves are order-independent (distinct keys per
  // unit, or a warm cache — see DESIGN.md §10).
  double CacheSec = 0;          ///< fingerprinting + lookup + store time
  uint64_t CacheHits = 0;       ///< verdicts replayed (PCheck skipped)
  uint64_t CacheMisses = 0;     ///< lookups that fell through to PCheck
  uint64_t CacheStores = 0;     ///< verdicts persisted after a miss
  uint64_t CacheEvictions = 0;  ///< entries this unit's stores evicted
  uint64_t CacheStoreErrors = 0;///< failed persists (verdict still valid)

  // Checker-plan columns (populated with DriverOptions::Plans in shadow
  // or on mode; all zero otherwise). Summed totals are deterministic
  // across `--jobs N`: plan builds are blocking once-per-key, so exactly
  // one unit builds and the rest hit (plan/PlanManager.h).
  uint64_t PlanBuilds = 0;       ///< plans built from feedstock
  uint64_t PlanHits = 0;         ///< plans served from memory or disk
  uint64_t PlanSpecialized = 0;  ///< functions answered specialized
  uint64_t PlanFallbacks = 0;    ///< functions re-run through the general
  uint64_t PlanShadowChecks = 0; ///< functions double-checked in shadow
  uint64_t PlanDivergences = 0;  ///< shadow disagreements (expected 0)

  void add(const PassStats &O);
  uint64_t validated() const { return V - F - NS; }
};

/// Per-pass-name statistics.
using StatsMap = std::map<std::string, PassStats>;

struct DriverOptions {
  /// Exercise the file-based exchange (the I/O column). When false the
  /// in-memory artifacts are checked directly and IO time stays 0.
  bool WriteFiles = true;
  /// Directory for the exchange files; empty = a fresh directory under
  /// the system temp dir.
  std::string ExchangeDir;
  /// Extra component of exchange file names. Concurrent drivers sharing
  /// an ExchangeDir must use distinct tags (runBatchValidated derives one
  /// per unit).
  std::string ExchangeTag;
  /// Exchange proofs in the compact binary format (proofgen/ProofBinary.h)
  /// instead of plain-text JSON — the paper's §7 future-work item. The
  /// modules are still exchanged as .ll text either way.
  bool BinaryProofs = false;
  /// Differentially execute every checker-accepted function translation
  /// and record divergences (an end-to-end soundness probe of checker +
  /// infrules; see DiffOracle.h).
  bool RunOracle = false;
  DiffOracleOptions OracleOpts;
  /// Optional validation cache (not owned; shared across all units of a
  /// batch). When set and enabled, a fingerprint hit replays the memoized
  /// checker verdict and skips Orig, the file exchange, PCheck, and the
  /// llvm-diff comparison; the oracle — which probes the trusted base
  /// itself — always re-runs. See cache/ValidationCache.h.
  cache::ValidationCache *Cache = nullptr;
  /// Optional checker-plan runtime (not owned; shared across all units of
  /// a batch). When set, the PCheck step dispatches through
  /// plan::PlanManager::validate — specialized checking in `on` mode,
  /// double-checked in `shadow` mode, plain general checking in `off`
  /// mode or after a divergence demotion. Verdicts are identical to the
  /// general checker in every mode; only the PCheck time and the Plan*
  /// stats columns change. Never consulted on a verdict-cache hit (the
  /// replayed verdict skips PCheck entirely).
  plan::PlanManager *Plans = nullptr;
};

/// Runs passes over modules with validation, accumulating statistics.
class ValidationDriver {
public:
  ValidationDriver(const passes::BugConfig &Bugs, DriverOptions Opts = {});

  /// Runs one pass over \p Src with the full Fig. 1 protocol; returns the
  /// optimized module and merges the timings/counts into Stats[pass name].
  ///
  /// \p SrcTextInOut (optional, cache fast path): on entry, if non-empty,
  /// it must be exactly `ir::printModule(Src)`; on return it holds the
  /// printed text of the returned module whenever the cache is consulted.
  /// runPipelineValidated threads it through the pipeline so each module
  /// is serialized once as a target instead of again as the next source.
  ir::Module runPassValidated(passes::Pass &P, const ir::Module &Src,
                              StatsMap &Stats,
                              std::string *SrcTextInOut = nullptr);

  /// Runs the -O2 pipeline, validating every step.
  ir::Module runPipelineValidated(const ir::Module &Src, StatsMap &Stats);

  const passes::BugConfig &bugs() const { return Bugs; }

private:
  /// The un-memoized validation leg: file exchange, PCheck, llvm-diff,
  /// and (read-write cache) storing the fresh verdict under \p FP.
  void runCheckedLeg(passes::Pass &P, const ir::Module &Src,
                     passes::PassResult &WithProof, passes::PassResult &Plain,
                     cache::ValidationCache *VC, const cache::Fingerprint &FP,
                     PassStats &S, std::vector<std::string> &Accepted);

  passes::BugConfig Bugs;
  DriverOptions Opts;
  std::string Dir; ///< resolved exchange directory
  uint64_t FileCounter = 0;
};

// --- Parallel batch validation ---------------------------------------------

/// How one unit of a batch ended (reported through
/// BatchOptions::OnUnitDone and tallied in BatchReport). Only Ok units
/// contribute to the deterministic stats reduction; the other outcomes
/// carry their story in the Detail string instead.
enum class UnitOutcome : uint8_t {
  Ok,            ///< validated normally; stats merged into the batch
  Cancelled,     ///< skipped by BatchOptions::CancelUnit before starting
  InternalError, ///< the unit threw; isolated, batch continues
  TimedOut,      ///< watchdog answered before the worker finished
};

const char *unitOutcomeName(UnitOutcome O);

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (no pool).
  unsigned Jobs = 1;
  /// Cancellation/deadline hook: consulted once per unit, immediately
  /// before that unit would validate. Returning true skips the unit
  /// entirely (its stats stay empty, it is counted in
  /// BatchReport::Cancelled, and OnUnitDone sees Cancelled). Called
  /// concurrently from worker threads; must be thread-safe. The
  /// validation service uses this to expire queued requests whose
  /// deadline passed while they waited.
  std::function<bool(size_t)> CancelUnit;
  /// Per-unit watchdog deadline in milliseconds; 0 disables the watchdog.
  /// A unit still running past the deadline is *answered early* with
  /// UnitOutcome::TimedOut (OnUnitDone fires from the watchdog thread
  /// with empty stats) so one hung unit cannot stall the callers of the
  /// remaining units — but its worker is never abandoned: the batch still
  /// waits for the real completion, whose late stats are then discarded.
  /// Exactly one OnUnitDone fires per unit either way (first wins).
  uint64_t UnitTimeoutMs = 0;
  /// Per-unit completion hook, invoked right after unit \p Index finishes
  /// (worker thread) or its watchdog deadline expires (watchdog thread),
  /// before the batch-wide deterministic reduction. Lets a caller stream
  /// results out (the service answers each request as its unit completes
  /// instead of holding the whole batch). \p Detail is empty for Ok and
  /// Cancelled, the exception text for InternalError, and the deadline
  /// description for TimedOut. Must be thread-safe; must not throw.
  std::function<void(size_t Index, const StatsMap &Unit, UnitOutcome Outcome,
                     const std::string &Detail)>
      OnUnitDone;
};

struct BatchReport {
  StatsMap Stats;          ///< deterministic, unit-index-order reduction
  uint64_t Units = 0;      ///< translation units processed
  uint64_t Cancelled = 0;  ///< units skipped by BatchOptions::CancelUnit
  uint64_t InternalErrors = 0; ///< units that threw (isolated, not merged)
  uint64_t TimedOut = 0;   ///< units answered early by the watchdog
  unsigned JobsUsed = 1;   ///< resolved worker count
  double WallSeconds = 0;  ///< elapsed time of the whole batch
  double CpuSeconds = 0;   ///< sum of per-unit validation times
};

/// Produces translation unit \p Index. Called concurrently for distinct
/// indices; must be thread-safe (pure generators qualify).
using UnitGenerator = std::function<ir::Module(size_t)>;

/// Validates the -O2 pipeline over \p NumUnits units concurrently. Each
/// unit gets its own ValidationDriver (with a unit-unique ExchangeTag) and
/// its own StatsMap; the maps are merged in unit-index order, so the
/// resulting Stats are identical for every Jobs value. When \p Pool is
/// non-null it is used (and not drained of other work); otherwise a
/// temporary pool of BatchOptions::Jobs workers is created.
BatchReport runBatchValidated(const passes::BugConfig &Bugs,
                              const DriverOptions &Opts, size_t NumUnits,
                              const UnitGenerator &MakeUnit,
                              const BatchOptions &BOpts = {},
                              ThreadPool *Pool = nullptr);

/// Convenience overload for pre-materialized modules.
BatchReport runBatchValidated(const passes::BugConfig &Bugs,
                              const DriverOptions &Opts,
                              const std::vector<ir::Module> &Mods,
                              const BatchOptions &BOpts = {},
                              ThreadPool *Pool = nullptr);

} // namespace driver
} // namespace crellvm

#endif // CRELLVM_DRIVER_DRIVER_H
