//===- analysis/Dominators.h - Dominator tree and frontier -----*- C++ -*-===//
///
/// \file
/// Dominator tree (Cooper-Harvey-Kennedy iterative algorithm) and dominance
/// frontiers (Cytron et al. [18], which the paper's mem2reg uses to place
/// phi nodes).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ANALYSIS_DOMINATORS_H
#define CRELLVM_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"

namespace crellvm {
namespace analysis {

/// Dominator tree over a CFG. Unreachable blocks have no idom and dominate
/// nothing (and are dominated by everything, vacuously false here: queries
/// on unreachable blocks return false).
class DomTree {
public:
  explicit DomTree(const CFG &G);

  /// Immediate dominator of block \p I, or ~0u for the entry and for
  /// unreachable blocks.
  size_t idom(size_t I) const { return IDom[I]; }

  /// True if \p A dominates \p B (reflexive). Any query touching an
  /// unreachable block answers false — including `dominates(U, U)` — so
  /// a transform gated on `dominates(...)` can never be justified by
  /// dead code. The flip side: `!dominates(A, B)` is NOT evidence of
  /// anything when a block may be unreachable; passes that act on the
  /// negation must check CFG::isReachable themselves (LoopInfo's
  /// preheader choice and GVN-PRE's predecessor plans do).
  bool dominates(size_t A, size_t B) const;

  /// Children of \p I in the dominator tree.
  const std::vector<size_t> &children(size_t I) const { return Kids[I]; }

private:
  const CFG &G;
  std::vector<size_t> IDom;
  std::vector<std::vector<size_t>> Kids;
  /// Preorder in/out numbering for O(1) dominance queries.
  std::vector<size_t> In, Out;
};

/// Dominance frontier DF(B) for every block.
class DominanceFrontier {
public:
  DominanceFrontier(const CFG &G, const DomTree &DT);

  const std::vector<size_t> &frontier(size_t I) const { return DF[I]; }

private:
  std::vector<std::vector<size_t>> DF;
};

} // namespace analysis
} // namespace crellvm

#endif // CRELLVM_ANALYSIS_DOMINATORS_H
