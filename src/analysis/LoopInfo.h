//===- analysis/LoopInfo.h - Natural loop detection ------------*- C++ -*-===//
///
/// \file
/// Natural loops from back edges (latch -> header where header dominates
/// latch), with preheader detection. LICM only hoists into an *existing*
/// preheader: creating one would change the CFG, which the paper's
/// framework does not support (§8.3).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ANALYSIS_LOOPINFO_H
#define CRELLVM_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <set>

namespace crellvm {
namespace analysis {

/// A natural loop.
struct Loop {
  size_t Header;
  std::set<size_t> Blocks; ///< includes the header
  /// The unique predecessor of the header outside the loop whose terminator
  /// is an unconditional branch to the header; ~0u when absent.
  size_t Preheader = ~size_t(0);

  bool contains(size_t B) const { return Blocks.count(B) != 0; }
  bool hasPreheader() const { return Preheader != ~size_t(0); }
};

/// All natural loops of a function. Loops sharing a header are merged (as
/// in LLVM's LoopInfo).
class LoopInfo {
public:
  LoopInfo(const ir::Function &F, const CFG &G, const DomTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

private:
  std::vector<Loop> Loops;
};

} // namespace analysis
} // namespace crellvm

#endif // CRELLVM_ANALYSIS_LOOPINFO_H
