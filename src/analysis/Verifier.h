//===- analysis/Verifier.h - IR well-formedness checking -------*- C++ -*-===//
///
/// \file
/// Structural, SSA and light type verification of modules. Both the inputs
/// and outputs of every optimization pass are verified in the tests; the
/// SSA property ("for every used register there is exactly one defining
/// instruction that dominates every use", paper footnote 5) is what the
/// ERHL post-assertion computation relies on.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ANALYSIS_VERIFIER_H
#define CRELLVM_ANALYSIS_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace crellvm {
namespace analysis {

/// Verifies \p F; appends human-readable diagnostics to \p Errors.
/// Returns true when no problems were found.
bool verifyFunction(const ir::Function &F, std::vector<std::string> &Errors);

/// Verifies every function of \p M plus module-level name uniqueness.
bool verifyModule(const ir::Module &M, std::vector<std::string> &Errors);

} // namespace analysis
} // namespace crellvm

#endif // CRELLVM_ANALYSIS_VERIFIER_H
