//===- analysis/LoopInfo.cpp ------------------------------------*- C++ -*-===//

#include "analysis/LoopInfo.h"

using namespace crellvm;
using namespace crellvm::analysis;
using crellvm::ir::Opcode;

LoopInfo::LoopInfo(const ir::Function &F, const CFG &G, const DomTree &DT) {
  size_t N = G.numBlocks();
  // Find back edges and flood the loop body backwards from each latch.
  std::map<size_t, Loop> ByHeader;
  for (size_t B = 0; B != N; ++B) {
    if (!G.isReachable(B))
      continue;
    for (size_t S : G.succs(B)) {
      if (!DT.dominates(S, B))
        continue;
      Loop &L = ByHeader.try_emplace(S, Loop{S, {S}, ~size_t(0)}).first->second;
      // Backward flood from the latch B up to the header.
      std::vector<size_t> Work;
      if (L.Blocks.insert(B).second)
        Work.push_back(B);
      while (!Work.empty()) {
        size_t X = Work.back();
        Work.pop_back();
        for (size_t P : G.preds(X)) {
          if (P == L.Header || !G.isReachable(P))
            continue;
          if (L.Blocks.insert(P).second)
            Work.push_back(P);
        }
      }
    }
  }

  for (auto &KV : ByHeader) {
    Loop &L = KV.second;
    // Preheader: the unique outside predecessor, required to end in an
    // unconditional branch to the header.
    size_t Outside = ~size_t(0);
    bool Unique = true;
    for (size_t P : G.preds(L.Header)) {
      if (L.contains(P))
        continue;
      if (Outside != ~size_t(0))
        Unique = false;
      Outside = P;
    }
    // A usable preheader must be reachable and must dominate the header:
    // code hoisted into it has to dominate every in-loop use. On
    // well-formed IR the unique outside predecessor always qualifies,
    // but passes also run over merely *parseable* modules (e.g. a
    // branch-to-entry cycle makes the entry a header whose only outside
    // predecessor is a dead block), and hoisting into a dead or
    // non-dominating block silently fabricates an invalid target.
    if (Unique && Outside != ~size_t(0) && G.isReachable(Outside) &&
        DT.dominates(Outside, L.Header)) {
      const ir::BasicBlock *PB = F.getBlock(G.name(Outside));
      if (PB && PB->terminator().opcode() == Opcode::Br)
        L.Preheader = Outside;
    }
    Loops.push_back(std::move(L));
  }
}
