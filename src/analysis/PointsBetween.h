//===- analysis/PointsBetween.h - Paper Appendix E helper ------*- C++ -*-===//
///
/// \file
/// The block-level part of the paper's Appendix E computation: the set of
/// blocks lying on a path from a definition block to a use block that does
/// not revisit the definition in between. A block B qualifies iff (i) the
/// from-block dominates B and (ii) the to-block is reachable from B without
/// passing through the from-block. Proof generation turns this block set
/// into per-point assertion ranges.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ANALYSIS_POINTSBETWEEN_H
#define CRELLVM_ANALYSIS_POINTSBETWEEN_H

#include "analysis/Dominators.h"

#include <set>

namespace crellvm {
namespace analysis {

/// Returns the qualifying block indices (see file comment). Both \p From
/// and \p To are included when they qualify. \p From must dominate \p To.
std::set<size_t> blocksBetween(const CFG &G, const DomTree &DT, size_t From,
                               size_t To);

} // namespace analysis
} // namespace crellvm

#endif // CRELLVM_ANALYSIS_POINTSBETWEEN_H
