//===- analysis/CFG.h - Control-flow graph view of a function --*- C++ -*-===//
///
/// \file
/// An indexed control-flow-graph view over an ir::Function: block name <->
/// index maps, predecessor/successor lists, and a reverse post-order. All
/// analyses (dominators, loops, the Appendix E point computation) work on
/// this view.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_ANALYSIS_CFG_H
#define CRELLVM_ANALYSIS_CFG_H

#include "ir/Module.h"

#include <map>
#include <string>
#include <vector>

namespace crellvm {
namespace analysis {

/// Immutable CFG snapshot of a function.
class CFG {
public:
  explicit CFG(const ir::Function &F);

  size_t numBlocks() const { return Names.size(); }
  const std::string &name(size_t I) const { return Names[I]; }

  /// Block index for \p Name; asserts existence.
  size_t index(const std::string &Name) const;
  /// True if \p Name is a block of the function.
  bool hasBlock(const std::string &Name) const {
    return NameToIndex.count(Name) != 0;
  }

  const std::vector<size_t> &succs(size_t I) const { return Succs[I]; }
  const std::vector<size_t> &preds(size_t I) const { return Preds[I]; }

  /// Reverse post-order over blocks reachable from the entry.
  const std::vector<size_t> &rpo() const { return RPO; }

  /// True if block \p I is reachable from the entry.
  bool isReachable(size_t I) const { return Reachable[I]; }

private:
  std::vector<std::string> Names;
  std::map<std::string, size_t> NameToIndex;
  std::vector<std::vector<size_t>> Succs;
  std::vector<std::vector<size_t>> Preds;
  std::vector<size_t> RPO;
  std::vector<bool> Reachable;
};

} // namespace analysis
} // namespace crellvm

#endif // CRELLVM_ANALYSIS_CFG_H
