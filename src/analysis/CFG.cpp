//===- analysis/CFG.cpp -----------------------------------------*- C++ -*-===//

#include "analysis/CFG.h"

#include <algorithm>
#include <cassert>

using namespace crellvm;
using namespace crellvm::analysis;

CFG::CFG(const ir::Function &F) {
  Names.reserve(F.Blocks.size());
  for (const ir::BasicBlock &B : F.Blocks) {
    NameToIndex[B.Name] = Names.size();
    Names.push_back(B.Name);
  }
  Succs.resize(Names.size());
  Preds.resize(Names.size());
  for (size_t I = 0; I != F.Blocks.size(); ++I) {
    const ir::Instruction &Term = F.Blocks[I].terminator();
    for (const std::string &S : Term.successors()) {
      size_t J = index(S);
      // Deduplicate parallel edges (e.g. a condbr with equal targets) so
      // that phi-edge processing visits each CFG edge once.
      if (std::find(Succs[I].begin(), Succs[I].end(), J) == Succs[I].end()) {
        Succs[I].push_back(J);
        Preds[J].push_back(I);
      }
    }
  }

  // Iterative post-order DFS from the entry block.
  Reachable.assign(Names.size(), false);
  std::vector<size_t> Post;
  if (!Names.empty()) {
    std::vector<std::pair<size_t, size_t>> Stack; // (block, next succ idx)
    Reachable[0] = true;
    Stack.emplace_back(0, 0);
    while (!Stack.empty()) {
      auto &[B, Next] = Stack.back();
      if (Next < Succs[B].size()) {
        size_t S = Succs[B][Next++];
        if (!Reachable[S]) {
          Reachable[S] = true;
          Stack.emplace_back(S, 0);
        }
      } else {
        Post.push_back(B);
        Stack.pop_back();
      }
    }
  }
  RPO.assign(Post.rbegin(), Post.rend());
}

size_t CFG::index(const std::string &Name) const {
  auto It = NameToIndex.find(Name);
  assert(It != NameToIndex.end() && "unknown block name");
  return It->second;
}
