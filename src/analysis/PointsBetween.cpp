//===- analysis/PointsBetween.cpp -------------------------------*- C++ -*-===//

#include "analysis/PointsBetween.h"

#include <cassert>

using namespace crellvm;
using namespace crellvm::analysis;

std::set<size_t> crellvm::analysis::blocksBetween(const CFG &G,
                                                  const DomTree &DT,
                                                  size_t From, size_t To) {
  assert(DT.dominates(From, To) && "definition must dominate the use");

  // Backward BFS from To; never expand past From (paths may *end* at From,
  // giving the range after the definition inside the From block, but may
  // not pass through it).
  std::vector<bool> CanReach(G.numBlocks(), false);
  std::vector<size_t> Work;
  CanReach[To] = true;
  Work.push_back(To);
  while (!Work.empty()) {
    size_t B = Work.back();
    Work.pop_back();
    if (B == From)
      continue;
    for (size_t P : G.preds(B)) {
      if (!CanReach[P]) {
        CanReach[P] = true;
        Work.push_back(P);
      }
    }
  }

  std::set<size_t> Result;
  for (size_t B = 0; B != G.numBlocks(); ++B)
    if (CanReach[B] && DT.dominates(From, B))
      Result.insert(B);
  Result.insert(From);
  return Result;
}
