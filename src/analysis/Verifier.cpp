//===- analysis/Verifier.cpp ------------------------------------*- C++ -*-===//

#include "analysis/Verifier.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

using namespace crellvm;
using namespace crellvm::analysis;
using namespace crellvm::ir;

namespace {

/// Verification context for one function.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  bool run() {
    size_t Before = Errors.size();
    if (!checkStructure())
      return false; // CFG construction needs structure to hold
    CFG G(F);
    DomTree DT(G);
    checkPhis(G);
    checkDefs();
    if (Errors.size() == Before)
      checkUses(G, DT);
    return Errors.size() == Before;
  }

private:
  void error(const std::string &Msg) {
    Errors.push_back("function @" + F.Name + ": " + Msg);
  }

  bool checkStructure() {
    size_t Before = Errors.size();
    if (F.Blocks.empty()) {
      error("has no blocks");
      return false;
    }
    std::set<std::string> Names;
    for (const BasicBlock &B : F.Blocks) {
      if (!Names.insert(B.Name).second)
        error("duplicate block name '" + B.Name + "'");
      if (B.Insts.empty()) {
        error("block '" + B.Name + "' is empty");
        continue;
      }
      if (!B.Insts.back().isTerminator())
        error("block '" + B.Name + "' lacks a terminator");
      for (size_t I = 0; I + 1 < B.Insts.size(); ++I)
        if (B.Insts[I].isTerminator())
          error("block '" + B.Name + "' has a terminator mid-block");
    }
    if (Errors.size() != Before)
      return false;
    for (const BasicBlock &B : F.Blocks)
      for (const std::string &S : B.terminator().successors()) {
        if (!F.getBlock(S))
          error("block '" + B.Name + "' branches to unknown block '" + S +
                "'");
        else if (S == F.Blocks.front().Name)
          error("block '" + B.Name + "' branches to the entry block");
      }
    return Errors.size() == Before;
  }

  void checkPhis(const CFG &G) {
    if (!F.entry().Phis.empty())
      error("entry block has phi nodes");
    for (const BasicBlock &B : F.Blocks) {
      size_t BI = G.index(B.Name);
      std::set<std::string> PredNames;
      for (size_t P : G.preds(BI))
        PredNames.insert(G.name(P));
      for (const Phi &P : B.Phis) {
        std::set<std::string> Seen;
        for (const auto &In : P.Incoming) {
          if (!Seen.insert(In.first).second)
            error("phi %" + P.Result + " has duplicate incoming block '" +
                  In.first + "'");
          if (!PredNames.count(In.first))
            error("phi %" + P.Result + " names non-predecessor '" +
                  In.first + "'");
          if (In.second.type() != P.Ty && !In.second.isUndef())
            error("phi %" + P.Result + " has ill-typed incoming value");
        }
        // Incoming entries must pair 1:1 with the actual predecessors,
        // order-insensitively: duplicates and non-predecessors are
        // rejected above, and every predecessor must appear — also in
        // unreachable blocks, where dominance is meaningless but the
        // phi/CFG correspondence still is not (a pass that rewrites
        // edges must keep dead phis consistent too).
        for (const std::string &PN : PredNames)
          if (!Seen.count(PN))
            error("phi %" + P.Result + " misses predecessor '" + PN + "'");
      }
    }
  }

  void checkDefs() {
    for (const Param &P : F.Params)
      addDef(P.Name);
    for (const BasicBlock &B : F.Blocks) {
      for (const Phi &P : B.Phis)
        addDef(P.Result);
      for (const Instruction &I : B.Insts)
        if (auto R = I.result())
          addDef(*R);
    }
  }

  void addDef(const std::string &Name) {
    if (!Defs.insert(Name).second)
      error("register %" + Name + " defined more than once");
  }

  /// The declared type of register \p Reg's definition, or std::nullopt
  /// when unknown.
  std::optional<Type> definedType(const std::string &Reg) const {
    for (const Param &P : F.Params)
      if (P.Name == Reg)
        return P.Ty;
    for (const BasicBlock &B : F.Blocks) {
      for (const Phi &P : B.Phis)
        if (P.Result == Reg)
          return P.Ty;
      for (const Instruction &I : B.Insts) {
        auto R = I.result();
        if (!R || *R != Reg)
          continue;
        // Alloca defines a pointer; type() is the element type.
        if (I.opcode() == Opcode::Alloca)
          return Type::ptrTy();
        return I.type();
      }
    }
    return std::nullopt;
  }

  /// Returns true if the definition of \p Reg dominates the program point
  /// (block \p UseB, instruction index \p UseI; phi uses pass the *end* of
  /// the incoming block).
  bool defDominatesUse(const CFG &G, const DomTree &DT,
                       const std::string &Reg, size_t UseB, size_t UseI) {
    if (F.isParam(Reg))
      return true;
    std::string DefBlock;
    size_t DefIdx;
    if (!F.findDef(Reg, DefBlock, DefIdx))
      return false;
    size_t DB = G.index(DefBlock);
    if (DB != UseB)
      return DT.dominates(DB, UseB);
    if (DefIdx == ~size_t(0)) // phi def dominates everything in its block
      return true;
    return DefIdx < UseI;
  }

  void checkUses(const CFG &G, const DomTree &DT) {
    for (const BasicBlock &B : F.Blocks) {
      size_t BI = G.index(B.Name);
      if (!G.isReachable(BI)) {
        // Dominance is meaningless in dead code, so skip the dominance
        // checks — but never consult the DomTree about these blocks at
        // all, and still insist that registers resolve to *some*
        // definition and that instructions are well-typed: passes must
        // not be able to hide garbage behind unreachability.
        for (const Instruction &I : B.Insts) {
          for (const Value &V : I.operands())
            if (V.isReg() && !Defs.count(V.regName()))
              error("use of undefined register %" + V.regName() +
                    " in unreachable '" + B.Name + "'");
          checkTypes(I);
        }
        continue;
      }
      for (const Phi &P : B.Phis) {
        for (const auto &In : P.Incoming) {
          if (!In.second.isReg())
            continue;
          if (!G.hasBlock(In.first))
            continue;
          size_t PredB = G.index(In.first);
          if (!G.isReachable(PredB))
            continue;
          if (!defDominatesUse(G, DT, In.second.regName(), PredB,
                               ~size_t(0) - 1))
            error("phi %" + P.Result + " uses %" + In.second.regName() +
                  " not available at end of '" + In.first + "'");
        }
      }
      for (size_t I = 0; I != B.Insts.size(); ++I) {
        for (const Value &V : B.Insts[I].operands()) {
          if (!V.isReg())
            continue;
          if (!Defs.count(V.regName())) {
            error("use of undefined register %" + V.regName());
            continue;
          }
          if (!defDominatesUse(G, DT, V.regName(), BI, I))
            error("use of %" + V.regName() + " in '" + B.Name +
                  "' is not dominated by its definition");
          if (auto DefTy = definedType(V.regName())) {
            if (*DefTy != V.type())
              error("use of %" + V.regName() + " at type " +
                    V.type().str() + " but defined at type " +
                    DefTy->str());
          }
        }
        checkTypes(B.Insts[I]);
      }
    }
  }

  void checkTypes(const Instruction &I) {
    const auto &Ops = I.operands();
    if (isBinaryOp(I.opcode())) {
      if (Ops[0].type() != I.type() || Ops[1].type() != I.type())
        error("binary instruction '" + I.str() + "' has ill-typed operands");
      return;
    }
    switch (I.opcode()) {
    case Opcode::ICmp:
      if (Ops[0].type() != Ops[1].type())
        error("icmp '" + I.str() + "' compares different types");
      break;
    case Opcode::Select:
      if (Ops[0].type() != Type::intTy(1) || Ops[1].type() != Ops[2].type())
        error("select '" + I.str() + "' is ill-typed");
      break;
    case Opcode::Load:
    case Opcode::Store: {
      const Value &Ptr = Ops[I.opcode() == Opcode::Load ? 0 : 1];
      if (!Ptr.type().isPtr())
        error("memory access '" + I.str() + "' through non-pointer");
      break;
    }
    case Opcode::Gep:
      if (!Ops[0].type().isPtr() || !Ops[1].type().isInt())
        error("gep '" + I.str() + "' is ill-typed");
      break;
    case Opcode::CondBr:
      if (Ops[0].type() != Type::intTy(1))
        error("conditional branch on non-i1 value");
      break;
    case Opcode::Ret:
      if (F.RetTy.isVoid() != Ops.empty())
        error("return does not match function return type");
      else if (!Ops.empty() && Ops[0].type() != F.RetTy &&
               !Ops[0].isUndef())
        error("return value has wrong type");
      break;
    default:
      break;
    }
  }

  const Function &F;
  std::vector<std::string> &Errors;
  std::set<std::string> Defs;
};

} // namespace

bool crellvm::analysis::verifyFunction(const Function &F,
                                       std::vector<std::string> &Errors) {
  return FunctionVerifier(F, Errors).run();
}

bool crellvm::analysis::verifyModule(const Module &M,
                                     std::vector<std::string> &Errors) {
  size_t Before = Errors.size();
  std::set<std::string> Names;
  for (const Function &F : M.Funcs)
    if (!Names.insert(F.Name).second)
      Errors.push_back("duplicate function @" + F.Name);
  for (const FuncDecl &D : M.Decls)
    if (!Names.insert(D.Name).second)
      Errors.push_back("declaration @" + D.Name + " clashes with another");
  std::set<std::string> GlobalNames;
  for (const GlobalVar &G : M.Globals)
    if (!GlobalNames.insert(G.Name).second)
      Errors.push_back("duplicate global @" + G.Name);
  for (const Function &F : M.Funcs)
    verifyFunction(F, Errors);
  return Errors.size() == Before;
}
