//===- analysis/Dominators.cpp ----------------------------------*- C++ -*-===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace crellvm;
using namespace crellvm::analysis;

static const size_t None = ~size_t(0);

DomTree::DomTree(const CFG &Graph) : G(Graph) {
  size_t N = G.numBlocks();
  IDom.assign(N, None);
  if (N == 0)
    return;

  // Cooper-Harvey-Kennedy: iterate intersect() over the RPO until fixpoint.
  std::vector<size_t> RpoNumber(N, None);
  const auto &RPO = G.rpo();
  for (size_t I = 0; I != RPO.size(); ++I)
    RpoNumber[RPO[I]] = I;

  auto Intersect = [&](size_t A, size_t B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = IDom[A];
      while (RpoNumber[B] > RpoNumber[A])
        B = IDom[B];
    }
    return A;
  };

  IDom[0] = 0; // sentinel: entry's idom is itself during iteration
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B : RPO) {
      if (B == 0)
        continue;
      size_t NewIdom = None;
      for (size_t P : G.preds(B)) {
        if (IDom[P] == None)
          continue; // not yet processed or unreachable
        NewIdom = (NewIdom == None) ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != None && IDom[B] != NewIdom) {
        IDom[B] = NewIdom;
        Changed = true;
      }
    }
  }
  IDom[0] = None; // the entry has no immediate dominator

  Kids.resize(N);
  for (size_t B = 0; B != N; ++B)
    if (IDom[B] != None)
      Kids[IDom[B]].push_back(B);

  // Preorder numbering for constant-time dominance queries.
  In.assign(N, 0);
  Out.assign(N, 0);
  size_t Counter = 1;
  std::vector<std::pair<size_t, size_t>> Stack; // (block, next child idx)
  Stack.emplace_back(0, 0);
  In[0] = Counter++;
  while (!Stack.empty()) {
    auto &[B, Next] = Stack.back();
    if (Next < Kids[B].size()) {
      size_t C = Kids[B][Next++];
      In[C] = Counter++;
      Stack.emplace_back(C, 0);
    } else {
      Out[B] = Counter++;
      Stack.pop_back();
    }
  }
}

bool DomTree::dominates(size_t A, size_t B) const {
  if (!G.isReachable(A) || !G.isReachable(B))
    return false;
  return In[A] <= In[B] && Out[B] <= Out[A];
}

DominanceFrontier::DominanceFrontier(const CFG &G, const DomTree &DT) {
  size_t N = G.numBlocks();
  DF.resize(N);
  for (size_t B = 0; B != N; ++B) {
    if (!G.isReachable(B) || G.preds(B).size() < 2)
      continue;
    for (size_t P : G.preds(B)) {
      if (!G.isReachable(P))
        continue;
      size_t Runner = P;
      while (Runner != DT.idom(B)) {
        if (std::find(DF[Runner].begin(), DF[Runner].end(), B) ==
            DF[Runner].end())
          DF[Runner].push_back(B);
        size_t Next = DT.idom(Runner);
        if (Next == ~size_t(0))
          break;
        Runner = Next;
      }
    }
  }
}
