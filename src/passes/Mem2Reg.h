//===- passes/Mem2Reg.h - Register promotion --------------------*- C++ -*-===//
///
/// \file
/// The register-promotion pass (paper §3): promotes allocas whose only
/// uses are loads and stores into SSA registers, inserting phi nodes at
/// iterated dominance frontiers. Like LLVM's mem2reg it has three code
/// paths — the general algorithm (paper Algorithm 2) and two specialized
/// fast paths for single-store and single-block allocas — each with its
/// own proof-generation code.
///
/// Injected bugs (DESIGN.md §4):
///  - Mem2RegUndefLoop (PR24179): the single-block fast path promotes
///    loads before the first store to undef even when the block sits on a
///    loop, so a store from the previous iteration is lost. Detected as a
///    validation failure at the loop back edge.
///  - Mem2RegConstexprSpeculate (PR33673): the single-store fast path
///    propagates a stored *constant expression* to loads the store does
///    not dominate, assuming constant expressions never trap. The proof
///    uses the custom `constexpr_no_ub` rule, so validation succeeds —
///    the bug is caught only by rule verification, as in the paper.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PASSES_MEM2REG_H
#define CRELLVM_PASSES_MEM2REG_H

#include "passes/Pass.h"

namespace crellvm {
namespace passes {

/// Proof-generating register promotion.
class Mem2Reg : public Pass {
public:
  explicit Mem2Reg(const BugConfig &Bugs) : Bugs(Bugs) {}

  std::string name() const override { return "mem2reg"; }
  PassResult run(const ir::Module &Src, bool GenProof) override;

private:
  BugConfig Bugs;
};

} // namespace passes
} // namespace crellvm

#endif // CRELLVM_PASSES_MEM2REG_H
