//===- passes/InstCombine.cpp -----------------------------------*- C++ -*-===//

#include "passes/InstCombine.h"

#include "proofgen/ProofBuilder.h"

#include <cassert>

using namespace crellvm;
using namespace crellvm::passes;
using namespace crellvm::erhl;
using namespace crellvm::ir;
using proofgen::PPoint;
using proofgen::ProofBuilder;
using SlotId = ProofBuilder::SlotId;

namespace {

int64_t truncTo(int64_t N, unsigned W) {
  if (W >= 64)
    return N;
  uint64_t Bits = static_cast<uint64_t>(N) & ((uint64_t(1) << W) - 1);
  uint64_t Sign = uint64_t(1) << (W - 1);
  return static_cast<int64_t>(Bits ^ Sign) - static_cast<int64_t>(Sign);
}

// Constant folds wrap like the target machine, but the host arithmetic
// must not: signed +, -, unary - and << on arbitrary IR constants overflow
// int64_t (UB) for edge inputs like INT64_MIN or a shift by 63. Route
// every fold through uint64_t, where wraparound is defined, and truncate
// to the IR width afterwards (cInt/truncTo).
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}
/// 2^N as a signed constant for 0 <= N <= 63; N == 63 yields INT64_MIN
/// (the i64 sign bit) without ever shifting into or negating across the
/// signed boundary.
int64_t signedPow2(unsigned N) {
  return static_cast<int64_t>(uint64_t(1) << (N & 63));
}

bool constIs(const ir::Value &V, int64_t C) {
  return V.isConstInt() &&
         truncTo(V.intValue(), V.type().intWidth()) ==
             truncTo(C, V.type().intWidth());
}

/// The ERHL expression of a pure instruction's right-hand side.
Expr rhsExpr(const Instruction &I) {
  auto P = [](const ir::Value &V) { return ValT::phy(V); };
  const auto &Ops = I.operands();
  if (isBinaryOp(I.opcode()))
    return Expr::bop(I.opcode(), I.type(), P(Ops[0]), P(Ops[1]));
  if (isCast(I.opcode()))
    return Expr::cast(I.opcode(), I.type(), P(Ops[0]));
  switch (I.opcode()) {
  case Opcode::ICmp:
    return Expr::icmp(I.icmpPred(), P(Ops[0]), P(Ops[1]));
  case Opcode::Select:
    return Expr::select(I.type(), P(Ops[0]), P(Ops[1]), P(Ops[2]));
  case Opcode::Gep:
    return Expr::gep(I.isInbounds(), P(Ops[0]), P(Ops[1]));
  case Opcode::Load:
    return Expr::load(I.type(), P(Ops[0]));
  default:
    assert(false && "instruction has no RHS expression");
    return Expr::val(P(ir::Value::undef(I.type())));
  }
}

/// Per-function rewriting context.
class Combiner {
public:
  Combiner(ProofBuilder &B, bool GenProof, const BugConfig &Bugs,
           std::map<std::string, uint64_t> &Counts)
      : B(B), GenProof(GenProof), Bugs(Bugs), Counts(Counts) {
    for (const BasicBlock &Blk : B.srcFunction().Blocks)
      for (size_t I = 0; I != Blk.Insts.size(); ++I)
        if (auto R = Blk.Insts[I].result())
          DefSlots[*R] = B.slotOfSrc(Blk.Name, I);
  }

  uint64_t rewrites() const { return Rewrites; }

  void run() {
    for (const BasicBlock &Blk : B.srcFunction().Blocks)
      for (SlotId S : B.slotsOf(Blk.Name))
        tryCombine(S);
    // After the per-slot catalog: the one cross-block optimization. It
    // runs last so no later fold can rewrite the new phi's incoming
    // values away from the edge facts the proof states.
    for (const BasicBlock &Blk : B.srcFunction().Blocks)
      combinePhis(Blk.Name);
    eliminateDeadCode();
  }

private:
  // --- Matching utilities --------------------------------------------------
  /// The defining slot of register value \p V, provided its target command
  /// is still the unmodified source instruction.
  std::optional<SlotId> unchangedDefSlot(const ir::Value &V) const {
    if (!V.isReg())
      return std::nullopt;
    auto It = DefSlots.find(V.regName());
    if (It == DefSlots.end() || Touched.count(It->second))
      return std::nullopt;
    // The definition must be byte-identical to the source: an earlier fold
    // may have rewritten its operands, and premises are stated about the
    // source program.
    const Instruction *T = B.tgtAt(It->second);
    const Instruction *S = B.srcAt(It->second);
    if (!T || !S || !(*T == *S))
      return std::nullopt;
    return It->second;
  }

  const Instruction *defInstr(const ir::Value &V,
                              std::optional<SlotId> &SlotOut) const {
    SlotOut = unchangedDefSlot(V);
    if (!SlotOut)
      return nullptr;
    return B.tgtAt(*SlotOut);
  }

  static ValT phy(const ir::Value &V) { return ValT::phy(V); }
  static Expr val(const ir::Value &V) { return Expr::val(phy(V)); }
  ir::Value cInt(int64_t N, ir::Type Ty) const {
    return ir::Value::constInt(truncTo(N, Ty.intWidth()), Ty);
  }

  Infrule rule(InfruleKind K, std::vector<Expr> Args) const {
    Infrule R;
    R.K = K;
    R.S = Side::Src;
    R.Args = std::move(Args);
    return R;
  }

  // --- Rewrite executors ---------------------------------------------------
  /// One premise of a fused rule: the register defined at DefSlot.
  struct PremDef {
    std::string Reg;
    SlotId Slot;
  };

// PROOFGEN-BEGIN
  void recordPremises(SlotId At, const std::vector<PremDef> &Prems) {
    for (const PremDef &P : Prems) {
      const Instruction *Def = B.tgtAt(P.Slot);
      assert(Def && "premise definition vanished");
      Expr RegE = val(ir::Value::reg(P.Reg, Def->type()));
      B.assn(Pred::lessdef(RegE, rhsExpr(*Def)), Side::Src,
             PPoint::afterSlot(P.Slot), PPoint::beforeSlot(At));
    }
  }
// PROOFGEN-END

  /// Rewrites the instruction at \p S in place, justified by \p R whose
  /// definition premises are listed in \p Prems.
  void rewriteInPlace(const char *OptName, SlotId S, Instruction NewInst,
                      Infrule R, std::vector<PremDef> Prems = {}) {
// PROOFGEN-BEGIN
    if (GenProof) {
      recordPremises(S, Prems);
      B.inf(std::move(R), S);
      B.enableAuto("transitivity");
      B.enableAuto("reduce_maydiff");
    }
// PROOFGEN-END
    B.replaceTgt(S, std::move(NewInst));
    Touched.insert(S);
    ++Counts[OptName];
    ++Rewrites;
  }

  /// Removes the instruction at \p S and replaces every use of its result
  /// with \p V; \p R must conclude `y >= V` on the source side.
  void foldToValue(const char *OptName, SlotId S, ir::Value V,
                   Infrule R, std::vector<PremDef> Prems = {}) {
    const Instruction *I = B.tgtAt(S);
    assert(I && I->result());
    std::string Y = *I->result();
    ir::Type Ty = I->type();

    // Collect use points, then rewrite uses.
    std::vector<PPoint> UsePoints;
    for (const BasicBlock &Blk : B.srcFunction().Blocks) {
      for (SlotId U : B.slotsOf(Blk.Name)) {
        if (U == S)
          continue;
        if (Instruction *TI = B.tgtAt(U)) {
          // Rewriting the divisor of a trapping operation needs the
          // division-by-zero analysis the validator lacks (#NS, paper S7).
          if (isBinaryOp(TI->opcode()) && mayTrap(TI->opcode()) &&
              TI->operands()[1].isReg() &&
              TI->operands()[1].regName() == Y)
            B.markNotSupported("division-by-zero analysis");
          if (TI->replaceUses(Y, V))
            UsePoints.push_back(PPoint::beforeSlot(U));
        }
      }
      for (ir::Phi &P : B.tgtPhis(Blk.Name)) {
        for (auto &In : P.Incoming) {
          if (In.second.isReg() && In.second.regName() == Y) {
            In.second = V;
            UsePoints.push_back(PPoint::endOf(In.first));
          }
        }
      }
    }

    B.removeTgt(S);
    Touched.insert(S);
    B.maydiffGlobal(RegT{Y, Tag::Phy});
    ++Counts[OptName];
    ++Rewrites;
    // The anchor set shapes later transformation decisions, so it must be
    // maintained identically in plain and proof mode (llvm-diff!).
    if (V.isReg())
      Anchored.insert(V.regName());
    if (!GenProof)
      return;

// PROOFGEN-BEGIN
    recordPremises(S, Prems);
    B.inf(std::move(R), S); // derives y >= V on the source side

    ir::Value YReg = ir::Value::reg(Y, Ty);
    if (V.isReg()) {
      // Relational link through a ghost register (paper §3.2).
      std::string G = B.freshGhost(Y);
      ValT Ghost = ValT::ghost(G, Ty);
      B.inf(rule(InfruleKind::IntroGhost, {Expr::val(Ghost), val(V)}), S);
      B.inf(rule(InfruleKind::Transitivity,
                 {val(YReg), val(V), Expr::val(Ghost)}),
            S);
      for (const PPoint &P : UsePoints) {
        B.assn(Pred::lessdef(val(YReg), Expr::val(Ghost)), Side::Src,
               PPoint::afterSlot(S), P);
        B.assn(Pred::lessdef(Expr::val(Ghost), val(V)), Side::Tgt,
               PPoint::afterSlot(S), P);
      }
    } else {
      for (const PPoint &P : UsePoints)
        B.assn(Pred::lessdef(val(YReg), val(V)), Side::Src,
               PPoint::afterSlot(S), P);
    }
    B.enableAuto("transitivity");
    B.enableAuto("reduce_maydiff");
  }
// PROOFGEN-END

  // --- The micro-optimization catalog --------------------------------------
  void tryCombine(SlotId S);
  bool combineAdd(SlotId S, const Instruction &I);
  bool combineSub(SlotId S, const Instruction &I);
  bool combineMulDiv(SlotId S, const Instruction &I);
  bool combineBitwise(SlotId S, const Instruction &I);
  bool combineShift(SlotId S, const Instruction &I);
  bool combineIcmp(SlotId S, const Instruction &I);
  bool combineSelect(SlotId S, const Instruction &I);
  void combinePhis(const std::string &BlkName);
  bool combineCast(SlotId S, const Instruction &I);
  bool combineGep(SlotId S, const Instruction &I);
  void eliminateDeadCode();

  ProofBuilder &B;
  bool GenProof;
  const BugConfig &Bugs;
  std::map<std::string, uint64_t> &Counts;
  std::map<std::string, SlotId> DefSlots;
  std::set<SlotId> Touched;
  /// Registers earlier folds substituted for an eliminated one: their
  /// ghost links reference them, so they must stay defined and unchanged.
  std::set<std::string> Anchored;
  uint64_t Rewrites = 0;
};

void Combiner::tryCombine(SlotId S) {
  if (Touched.count(S))
    return;
  const Instruction *IP = B.tgtAt(S);
  if (!IP)
    return;
  // Copy: rewrites below may reallocate the slot table.
  const Instruction I = *IP;
  // Only combine instructions still identical to the source: chained
  // opportunities are picked up by the next instcombine invocation in the
  // pipeline, keeping every proof a single step.
  const Instruction *Orig = B.srcAt(S);
  if (!Orig || !(I == *Orig))
    return;
  // Never touch a register an earlier fold routed its uses through.
  if (I.result() && Anchored.count(*I.result()))
    return;
  if (I.type().isVec())
    return; // vector code is #NS territory; leave it untouched
  // comm-canonicalize: a constant first operand of a commutative operator
  // moves to the right, exposing the constant folds above to the next
  // pipeline round. (`add 0 a` is left to the direct add-comm-sub fold.)
  if ((I.opcode() == Opcode::Add || I.opcode() == Opcode::Mul ||
       I.opcode() == Opcode::And || I.opcode() == Opcode::Or ||
       I.opcode() == Opcode::Xor) &&
      I.operands()[0].isConstInt() && !I.operands()[1].isConstInt() &&
      !I.operands()[1].isUndef() &&
      !(I.opcode() == Opcode::Add && I.operands()[0].intValue() == 0)) {
    InfruleKind K = I.opcode() == Opcode::Add   ? InfruleKind::AddComm
                    : I.opcode() == Opcode::Mul ? InfruleKind::MulComm
                    : I.opcode() == Opcode::And ? InfruleKind::AndComm
                    : I.opcode() == Opcode::Or  ? InfruleKind::OrComm
                                                : InfruleKind::XorComm;
    ir::Value Y = ir::Value::reg(*I.result(), I.type());
    rewriteInPlace("comm-canonicalize", S,
                   Instruction::binary(I.opcode(), *I.result(), I.type(),
                                       I.operands()[1], I.operands()[0]),
                   rule(K, {val(Y), val(I.operands()[0]),
                            val(I.operands()[1])}));
    return;
  }
  switch (I.opcode()) {
  case Opcode::Add:
    combineAdd(S, I);
    break;
  case Opcode::Sub:
    combineSub(S, I);
    break;
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::SRem:
  case Opcode::UDiv:
  case Opcode::URem:
    combineMulDiv(S, I);
    break;
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
    combineBitwise(S, I);
    break;
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    combineShift(S, I);
    break;
  case Opcode::ICmp:
    combineIcmp(S, I);
    break;
  case Opcode::Select:
    combineSelect(S, I);
    break;
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Bitcast:
  case Opcode::IntToPtr:
    combineCast(S, I);
    break;
  case Opcode::Gep:
    combineGep(S, I);
    break;
  default:
    break;
  }
}

bool Combiner::combineAdd(SlotId S, const Instruction &I) {
  const ir::Value &A = I.operands()[0], &Bv = I.operands()[1];
  ir::Type Ty = I.type();
  ir::Value Y = ir::Value::reg(*I.result(), Ty);

  // add-zero: y = add a 0 -> a
  if (constIs(Bv, 0)) {
    foldToValue("add-zero", S, A,
                rule(InfruleKind::AddZero, {val(Y), val(A)}));
    return true;
  }
  if (constIs(A, 0)) {
    Instruction Canon = Instruction::binary(Opcode::Add, *I.result(), Ty,
                                            Bv, A);
    // Commutative canonicalization first: y = add 0 a -> y = add a 0,
    // handled as a direct fold through add_comm + add_zero next round.
    rewriteInPlace("add-comm-sub", S, Canon,
                   rule(InfruleKind::AddComm, {val(Y), val(A), val(Bv)}));
    return true;
  }
  // add-shift: y = add a a -> shl a 1
  if (A == Bv && A.isReg() && Ty.intWidth() > 1) {
    rewriteInPlace("add-shift", S,
                   Instruction::binary(Opcode::Shl, *I.result(), Ty, A,
                                       cInt(1, Ty)),
                   rule(InfruleKind::AddShift, {val(Y), val(A)}));
    return true;
  }
  // add-onebit: i1 addition is xor
  if (Ty == ir::Type::intTy(1)) {
    rewriteInPlace("add-onebit", S,
                   Instruction::binary(Opcode::Xor, *I.result(), Ty, A, Bv),
                   rule(InfruleKind::AddOnebit, {val(Y), val(A), val(Bv)}));
    return true;
  }
  // add-signbit: y = add a SIGN -> xor a SIGN
  if (constIs(Bv, truncTo(signedPow2(Ty.intWidth() - 1), Ty.intWidth()))) {
    rewriteInPlace("add-signbit", S,
                   Instruction::binary(Opcode::Xor, *I.result(), Ty, A, Bv),
                   rule(InfruleKind::AddSignbit, {val(Y), val(A), val(Bv)}));
    return true;
  }

  std::optional<SlotId> DS;
  // assoc-add: y = add (add a C1) C2 -> add a (C1+C2)
  if (Bv.isConstInt()) {
    if (const Instruction *D = defInstr(A, DS)) {
      if (D->opcode() == Opcode::Add && D->operands()[1].isConstInt()) {
        int64_t C1 = D->operands()[1].intValue(), C2 = Bv.intValue();
        ir::Value C3 = cInt(wrapAdd(C1, C2), Ty);
        rewriteInPlace(
            "bop-associativity", S,
            Instruction::binary(Opcode::Add, *I.result(), Ty,
                                D->operands()[0], C3),
            rule(InfruleKind::AddAssoc,
                 {val(Y), val(A), val(D->operands()[0]),
                  val(D->operands()[1]), val(Bv), val(C3)}),
            {{A.regName(), *DS}});
        return true;
      }
      // add-zext-bool: y = add (zext i1 b) C -> select b (C+1) C
      if (D->opcode() == Opcode::ZExt &&
          D->operands()[0].type() == ir::Type::intTy(1)) {
        ir::Value C1 = cInt(wrapAdd(Bv.intValue(), 1), Ty);
        rewriteInPlace(
            "add-zext-bool", S,
            Instruction::select(*I.result(), Ty, D->operands()[0], C1, Bv),
            rule(InfruleKind::AddZextBool,
                 {val(Y), val(A), val(D->operands()[0]), val(Bv), val(C1)}),
            {{A.regName(), *DS}});
        return true;
      }
    }
  }
  // add-sub: y = add x b where x = sub a b -> a
  if (const Instruction *D = defInstr(A, DS)) {
    if (D->opcode() == Opcode::Sub && D->operands()[1] == Bv) {
      foldToValue("add-sub", S, D->operands()[0],
                  rule(InfruleKind::AddSub,
                       {val(Y), val(A), val(D->operands()[0]), val(Bv)}),
                  {{A.regName(), *DS}});
      return true;
    }
  }
  // add-or-and: y = add z x where z = or a b, x = and a b -> add a b
  std::optional<SlotId> DS2;
  const Instruction *DZ = defInstr(A, DS);
  const Instruction *DX = defInstr(Bv, DS2);
  if (DZ && DX && DZ->opcode() == Opcode::Or &&
      DX->opcode() == Opcode::And &&
      DZ->operands() == DX->operands()) {
    rewriteInPlace(
        "add-or-and", S,
        Instruction::binary(Opcode::Add, *I.result(), Ty,
                            DZ->operands()[0], DZ->operands()[1]),
        rule(InfruleKind::AddOrAnd,
             {val(Y), val(A), val(Bv), val(DZ->operands()[0]),
              val(DZ->operands()[1])}),
        {{A.regName(), *DS}, {Bv.regName(), *DS2}});
    return true;
  }
  // add-xor-and: y = add z x where z = xor a b, x = and a b -> or a b
  if (DZ && DX && DZ->opcode() == Opcode::Xor &&
      DX->opcode() == Opcode::And &&
      DZ->operands() == DX->operands()) {
    rewriteInPlace(
        "add-xor-and", S,
        Instruction::binary(Opcode::Or, *I.result(), Ty,
                            DZ->operands()[0], DZ->operands()[1]),
        rule(InfruleKind::AddXorAnd,
             {val(Y), val(A), val(Bv), val(DZ->operands()[0]),
              val(DZ->operands()[1])}),
        {{A.regName(), *DS}, {Bv.regName(), *DS2}});
    return true;
  }
  // unsound-add-to-or (BugConfig::UnsoundAddToOr, test-only): rewrite any
  // remaining add to or, justified by add_disjoint_or whose side condition
  // these operands do not satisfy. The checker rejects the proof unless
  // the rule check is weakened (erhl::setWeakenedDisjointOrCheck).
  if (Bugs.UnsoundAddToOr && Ty.intWidth() > 1) {
    rewriteInPlace("unsound-add-to-or", S,
                   Instruction::binary(Opcode::Or, *I.result(), Ty, A, Bv),
                   rule(InfruleKind::AddDisjointOr,
                        {val(Y), val(A), val(Bv)}));
    return true;
  }
  return false;
}

bool Combiner::combineSub(SlotId S, const Instruction &I) {
  const ir::Value &A = I.operands()[0], &Bv = I.operands()[1];
  ir::Type Ty = I.type();
  ir::Value Y = ir::Value::reg(*I.result(), Ty);

  if (constIs(Bv, 0)) {
    foldToValue("sub-zero", S, A,
                rule(InfruleKind::SubZero, {val(Y), val(A)}));
    return true;
  }
  if (A == Bv) {
    foldToValue("sub-remove-same", S, cInt(0, Ty),
                rule(InfruleKind::SubSame, {val(Y), val(A)}));
    return true;
  }
  if (Ty == ir::Type::intTy(1)) {
    rewriteInPlace("sub-onebit", S,
                   Instruction::binary(Opcode::Xor, *I.result(), Ty, A, Bv),
                   rule(InfruleKind::SubOnebit, {val(Y), val(A), val(Bv)}));
    return true;
  }
  if (constIs(A, -1)) {
    rewriteInPlace("sub-mone", S,
                   Instruction::binary(Opcode::Xor, *I.result(), Ty, Bv,
                                       cInt(-1, Ty)),
                   rule(InfruleKind::SubMone, {val(Y), val(Bv)}));
    return true;
  }

  std::optional<SlotId> DS, DS2;
  // sub-const-add: y = sub (add a C1) C2 -> add a (C1-C2)
  if (Bv.isConstInt()) {
    if (const Instruction *D = defInstr(A, DS)) {
      if (D->opcode() == Opcode::Add && D->operands()[1].isConstInt()) {
        ir::Value C3 =
            cInt(wrapSub(D->operands()[1].intValue(), Bv.intValue()), Ty);
        rewriteInPlace(
            "sub-const-add", S,
            Instruction::binary(Opcode::Add, *I.result(), Ty,
                                D->operands()[0], C3),
            rule(InfruleKind::SubConstAdd,
                 {val(Y), val(A), val(D->operands()[0]),
                  val(D->operands()[1]), val(Bv), val(C3)}),
            {{A.regName(), *DS}});
        return true;
      }
      // sub-sub: y = sub (sub a C1) C2 -> sub a (C1+C2)
      if (D->opcode() == Opcode::Sub && D->operands()[1].isConstInt()) {
        ir::Value C3 =
            cInt(wrapAdd(D->operands()[1].intValue(), Bv.intValue()), Ty);
        rewriteInPlace(
            "sub-sub", S,
            Instruction::binary(Opcode::Sub, *I.result(), Ty,
                                D->operands()[0], C3),
            rule(InfruleKind::SubSub,
                 {val(Y), val(A), val(D->operands()[0]),
                  val(D->operands()[1]), val(Bv), val(C3)}),
            {{A.regName(), *DS}});
        return true;
      }
    }
  }
  // sub-const-not: y = sub C (xor a -1) -> add a (C+1)
  if (A.isConstInt()) {
    if (const Instruction *D = defInstr(Bv, DS)) {
      if (D->opcode() == Opcode::Xor && constIs(D->operands()[1], -1)) {
        ir::Value C1 = cInt(wrapAdd(A.intValue(), 1), Ty);
        rewriteInPlace(
            "sub-const-not", S,
            Instruction::binary(Opcode::Add, *I.result(), Ty,
                                D->operands()[0], C1),
            rule(InfruleKind::SubConstNot,
                 {val(Y), val(Bv), val(D->operands()[0]), val(A), val(C1)}),
            {{Bv.regName(), *DS}});
        return true;
      }
    }
  }
  // sub-add: y = sub x b where x = add a b -> a
  if (const Instruction *D = defInstr(A, DS)) {
    if (D->opcode() == Opcode::Add && D->operands()[1] == Bv) {
      foldToValue("sub-add", S, D->operands()[0],
                  rule(InfruleKind::SubAdd,
                       {val(Y), val(A), val(D->operands()[0]), val(Bv)}),
                  {{A.regName(), *DS}});
      return true;
    }
  }
  // sub-remove: y = sub a x where x = add a b -> sub 0 b
  if (const Instruction *D = defInstr(Bv, DS)) {
    if (D->opcode() == Opcode::Add && D->operands()[0] == A) {
      rewriteInPlace(
          "sub-remove", S,
          Instruction::binary(Opcode::Sub, *I.result(), Ty, cInt(0, Ty),
                              D->operands()[1]),
          rule(InfruleKind::SubRemove,
               {val(Y), val(Bv), val(A), val(D->operands()[1])}),
          {{Bv.regName(), *DS}});
      return true;
    }
    // sub-shl: y = sub 0 (shl a C) -> mul a -(2^C)
    // neg-val: z = sub 0 (sub 0 a) -> a
    if (constIs(A, 0) && D->opcode() == Opcode::Sub &&
        constIs(D->operands()[0], 0)) {
      foldToValue("neg-val", S, D->operands()[1],
                  rule(InfruleKind::NegVal,
                       {val(Y), val(Bv), val(D->operands()[1])}),
                  {{Bv.regName(), *DS}});
      return true;
    }
    if (constIs(A, 0) && D->opcode() == Opcode::Shl &&
        D->operands()[1].isConstInt() && D->operands()[1].intValue() >= 0 &&
        D->operands()[1].intValue() <
            static_cast<int64_t>(Ty.intWidth())) {
      // C == width-1 makes 2^C the sign bit: -(int64_t(1) << C) would
      // negate INT64_MIN at i64 (signed-overflow UB); the wrapping
      // helpers produce the same bit pattern without it.
      ir::Value M = cInt(
          wrapNeg(signedPow2(
              static_cast<unsigned>(D->operands()[1].intValue()))),
          Ty);
      rewriteInPlace("sub-shl", S,
                     Instruction::binary(Opcode::Mul, *I.result(), Ty,
                                         D->operands()[0], M),
                     rule(InfruleKind::SubShl,
                          {val(Y), val(Bv), val(D->operands()[0]),
                           val(D->operands()[1])}),
                     {{Bv.regName(), *DS}});
      return true;
    }
  }
  // sub-or-xor: y = sub z x where z = or a b, x = xor a b -> and a b
  const Instruction *DZ = defInstr(A, DS);
  const Instruction *DX = defInstr(Bv, DS2);
  if (DZ && DX && DZ->opcode() == Opcode::Or &&
      DX->opcode() == Opcode::Xor &&
      DZ->operands() == DX->operands()) {
    rewriteInPlace(
        "sub-or-xor", S,
        Instruction::binary(Opcode::And, *I.result(), Ty,
                            DZ->operands()[0], DZ->operands()[1]),
        rule(InfruleKind::SubOrXor,
             {val(Y), val(A), val(Bv), val(DZ->operands()[0]),
              val(DZ->operands()[1])}),
        {{A.regName(), *DS}, {Bv.regName(), *DS2}});
    return true;
  }
  return false;
}

bool Combiner::combineMulDiv(SlotId S, const Instruction &I) {
  const ir::Value &A = I.operands()[0], &Bv = I.operands()[1];
  ir::Type Ty = I.type();
  ir::Value Y = ir::Value::reg(*I.result(), Ty);

  if (I.opcode() == Opcode::UDiv || I.opcode() == Opcode::URem) {
    if (constIs(Bv, 1)) {
      if (I.opcode() == Opcode::UDiv)
        foldToValue("udiv-one", S, A,
                    rule(InfruleKind::UdivOne, {val(Y), val(A)}));
      else
        foldToValue("urem-one", S, cInt(0, Ty),
                    rule(InfruleKind::UremOne, {val(Y), val(A)}));
      return true;
    }
    // udiv-sub-urem: z = udiv (sub a (urem a b)) b -> udiv a b
    if (I.opcode() == Opcode::UDiv) {
      std::optional<SlotId> DS, DS2;
      if (const Instruction *DX = defInstr(A, DS)) {
        if (DX->opcode() == Opcode::Sub) {
          ir::Value Aa = DX->operands()[0];
          ir::Value Rem = DX->operands()[1];
          if (const Instruction *DY = defInstr(Rem, DS2)) {
            if (DY->opcode() == Opcode::URem && DY->operands()[0] == Aa &&
                DY->operands()[1] == Bv) {
              rewriteInPlace(
                  "udiv-sub-urem", S,
                  Instruction::binary(Opcode::UDiv, *I.result(), Ty, Aa,
                                      Bv),
                  rule(InfruleKind::UdivSubUrem,
                       {val(Y), val(A), val(Rem), val(Aa), val(Bv)}),
                  {{Rem.regName(), *DS2}, {A.regName(), *DS}});
              return true;
            }
          }
        }
      }
    }
    return false;
  }
  if (I.opcode() == Opcode::SRem) {
    // srem-one / srem-mone: y = srem a (1|-1) -> 0. Skip when a user is
    // `icmp eq y 0`: the more specific icmp-eq-srem fold (Appendix D)
    // produces a constant-true comparison and DCE then drops the srem.
    auto FeedsIcmpEqZero = [&] {
      for (const BasicBlock &Blk : B.srcFunction().Blocks)
        for (SlotId U : B.slotsOf(Blk.Name))
          if (const Instruction *TI = B.tgtAt(U))
            if (TI->opcode() == Opcode::ICmp &&
                TI->icmpPred() == IcmpPred::Eq && TI->operands()[0].isReg() &&
                TI->operands()[0].regName() == *I.result() &&
                constIs(TI->operands()[1], 0))
              return true;
      return false;
    };
    if ((constIs(Bv, 1) || (constIs(Bv, -1) && Ty.intWidth() > 1)) &&
        !FeedsIcmpEqZero()) {
      bool One = constIs(Bv, 1);
      foldToValue(One ? "srem-one" : "srem-mone", S, cInt(0, Ty),
                  rule(One ? InfruleKind::SremOne : InfruleKind::SremMone,
                       {val(Y), val(A)}));
      return true;
    }
    return false;
  }
  if (I.opcode() == Opcode::SDiv) {
    if (constIs(Bv, 1)) {
      foldToValue("sdiv-one", S, A,
                  rule(InfruleKind::SdivOne, {val(Y), val(A)}));
      return true;
    }
    // sdiv-mone: y = sdiv a -1 -> sub 0 a
    if (constIs(Bv, -1) && Ty.intWidth() > 1) {
      rewriteInPlace("sdiv-mone", S,
                     Instruction::binary(Opcode::Sub, *I.result(), Ty,
                                         cInt(0, Ty), A),
                     rule(InfruleKind::SdivMone, {val(Y), val(A)}));
      return true;
    }
    // sdiv-sub-srem: z = sdiv (sub a (srem a b)) b -> sdiv a b
    {
      std::optional<SlotId> DS, DS2;
      if (const Instruction *DX = defInstr(A, DS)) {
        if (DX->opcode() == Opcode::Sub) {
          ir::Value Aa = DX->operands()[0];
          ir::Value Rem = DX->operands()[1];
          if (const Instruction *DY = defInstr(Rem, DS2)) {
            if (DY->opcode() == Opcode::SRem && DY->operands()[0] == Aa &&
                DY->operands()[1] == Bv) {
              rewriteInPlace(
                  "sdiv-sub-srem", S,
                  Instruction::binary(Opcode::SDiv, *I.result(), Ty, Aa,
                                      Bv),
                  rule(InfruleKind::SdivSubSrem,
                       {val(Y), val(A), val(Rem), val(Aa), val(Bv)}),
                  {{Rem.regName(), *DS2}, {A.regName(), *DS}});
              return true;
            }
          }
        }
      }
    }
    return false;
  }

  if (constIs(Bv, 0)) {
    foldToValue("mul-zero", S, cInt(0, Ty),
                rule(InfruleKind::MulZero, {val(Y), val(A)}));
    return true;
  }
  if (constIs(Bv, 1)) {
    foldToValue("mul-one", S, A,
                rule(InfruleKind::MulOne, {val(Y), val(A)}));
    return true;
  }
  if (constIs(Bv, -1) && Ty.intWidth() > 1) {
    rewriteInPlace("mul-mone", S,
                   Instruction::binary(Opcode::Sub, *I.result(), Ty,
                                       cInt(0, Ty), A),
                   rule(InfruleKind::MulMone, {val(Y), val(A)}));
    return true;
  }
  if (Ty == ir::Type::intTy(1)) {
    rewriteInPlace("mul-bool", S,
                   Instruction::binary(Opcode::And, *I.result(), Ty, A, Bv),
                   rule(InfruleKind::MulBool, {val(Y), val(A), val(Bv)}));
    return true;
  }
  // mul-shl: y = mul a 2^k -> shl a k
  if (Bv.isConstInt() && Bv.intValue() > 1) {
    uint64_t C = static_cast<uint64_t>(Bv.intValue());
    if ((C & (C - 1)) == 0) {
      int64_t K = 0;
      while ((uint64_t(1) << K) != C)
        ++K;
      if (K < static_cast<int64_t>(Ty.intWidth())) {
        rewriteInPlace("mul-shl", S,
                       Instruction::binary(Opcode::Shl, *I.result(), Ty, A,
                                           cInt(K, Ty)),
                       rule(InfruleKind::MulShl,
                            {val(Y), val(A), val(Bv), val(cInt(K, Ty))}));
        return true;
      }
    }
  }
  // mul-neg: y = mul (sub 0 a) (sub 0 b) -> mul a b
  std::optional<SlotId> DS, DS2;
  const Instruction *DA = defInstr(A, DS);
  const Instruction *DB = defInstr(Bv, DS2);
  if (DA && DB && DA->opcode() == Opcode::Sub &&
      DB->opcode() == Opcode::Sub && constIs(DA->operands()[0], 0) &&
      constIs(DB->operands()[0], 0)) {
    rewriteInPlace(
        "mul-neg", S,
        Instruction::binary(Opcode::Mul, *I.result(), Ty,
                            DA->operands()[1], DB->operands()[1]),
        rule(InfruleKind::MulNeg,
             {val(Y), val(A), val(Bv), val(DA->operands()[1]),
              val(DB->operands()[1])}),
        {{A.regName(), *DS}, {Bv.regName(), *DS2}});
    return true;
  }
  return false;
}

bool Combiner::combineBitwise(SlotId S, const Instruction &I) {
  const ir::Value &A = I.operands()[0], &Bv = I.operands()[1];
  ir::Type Ty = I.type();
  ir::Value Y = ir::Value::reg(*I.result(), Ty);
  Opcode Op = I.opcode();

  // same-operand folds
  if (A == Bv && A.isReg()) {
    if (Op == Opcode::And) {
      foldToValue("and-same", S, A,
                  rule(InfruleKind::AndSame, {val(Y), val(A)}));
      return true;
    }
    if (Op == Opcode::Or) {
      foldToValue("or-same", S, A,
                  rule(InfruleKind::OrSame, {val(Y), val(A)}));
      return true;
    }
    foldToValue("xor-same", S, cInt(0, Ty),
                rule(InfruleKind::XorSame, {val(Y), val(A)}));
    return true;
  }
  // undef folds
  if (Bv.isUndef()) {
    InfruleKind K = Op == Opcode::And   ? InfruleKind::AndUndef
                    : Op == Opcode::Or  ? InfruleKind::OrUndef
                                        : InfruleKind::XorUndef;
    const char *Name = Op == Opcode::And  ? "and-undef"
                       : Op == Opcode::Or ? "or-undef"
                                          : "xor-undef";
    foldToValue(Name, S, ir::Value::undef(Ty),
                rule(K, {val(Y), val(A)}));
    return true;
  }
  // constant folds
  if (Op == Opcode::And && constIs(Bv, 0)) {
    foldToValue("and-zero", S, cInt(0, Ty),
                rule(InfruleKind::AndZero, {val(Y), val(A)}));
    return true;
  }
  if (Op == Opcode::And && constIs(Bv, -1)) {
    foldToValue("and-mone", S, A,
                rule(InfruleKind::AndMone, {val(Y), val(A)}));
    return true;
  }
  if (Op == Opcode::Or && constIs(Bv, 0)) {
    foldToValue("or-zero", S, A,
                rule(InfruleKind::OrZero, {val(Y), val(A)}));
    return true;
  }
  if (Op == Opcode::Or && constIs(Bv, -1)) {
    foldToValue("or-mone", S, cInt(-1, Ty),
                rule(InfruleKind::OrMone, {val(Y), val(A)}));
    return true;
  }
  if (Op == Opcode::Xor && constIs(Bv, 0)) {
    foldToValue("xor-zero", S, A,
                rule(InfruleKind::XorZero, {val(Y), val(A)}));
    return true;
  }

  std::optional<SlotId> DS, DS2;
  // and-not / or-not: y = op a (xor a -1)
  if (const Instruction *D = defInstr(Bv, DS)) {
    if (D->opcode() == Opcode::Xor && D->operands()[0] == A &&
        constIs(D->operands()[1], -1) && Op != Opcode::Xor) {
      if (Op == Opcode::And) {
        foldToValue("and-not", S, cInt(0, Ty),
                    rule(InfruleKind::AndNot, {val(Y), val(Bv), val(A)}),
                    {{Bv.regName(), *DS}});
      } else {
        foldToValue("or-not", S, cInt(-1, Ty),
                    rule(InfruleKind::OrNot, {val(Y), val(Bv), val(A)}),
                    {{Bv.regName(), *DS}});
      }
      return true;
    }
    // and-or: y = and a (or a b) -> a;  or-and: y = or a (and a b) -> a
    if (Op == Opcode::And && D->opcode() == Opcode::Or &&
        D->operands()[0] == A) {
      foldToValue("and-or", S, A,
                  rule(InfruleKind::AndOr,
                       {val(Y), val(Bv), val(A), val(D->operands()[1])}),
                  {{Bv.regName(), *DS}});
      return true;
    }
    if (Op == Opcode::Or && D->opcode() == Opcode::And &&
        D->operands()[0] == A) {
      foldToValue("or-and", S, A,
                  rule(InfruleKind::OrAnd,
                       {val(Y), val(Bv), val(A), val(D->operands()[1])}),
                  {{Bv.regName(), *DS}});
      return true;
    }
  }
  // and-de-morgan: z = and (xor a -1) (xor b -1) -> xor (or a b) -1
  if (Op == Opcode::And) {
    const Instruction *DA = defInstr(A, DS);
    const Instruction *DB = defInstr(Bv, DS2);
    if (DA && DB && DA->opcode() == Opcode::Xor &&
        DB->opcode() == Opcode::Xor && constIs(DA->operands()[1], -1) &&
        constIs(DB->operands()[1], -1)) {
      // Copy the inner operands: the insertion below reallocates slots.
      ir::Value InnerA = DA->operands()[0];
      ir::Value InnerB = DB->operands()[0];
      // Materialize w := or a b before the rewrite site.
      std::string W = *I.result() + ".dm";
      SlotId WS = B.insertTgtBefore(
          S, Instruction::binary(Opcode::Or, W, Ty, InnerA, InnerB));
      B.maydiffGlobal(RegT{W, Tag::Phy});
      Instruction NewI = Instruction::binary(
          Opcode::Xor, *I.result(), Ty, ir::Value::reg(W, Ty), cInt(-1, Ty));
// PROOFGEN-BEGIN
      if (GenProof) {
        // The ghost w-hat names `or a b` on both sides; the de-morgan rule
        // rewrites the source, substitution links the target.
        std::string G = B.freshGhost(W);
        ValT Ghost = ValT::ghost(G, Ty);
        Expr OrE = Expr::bop(Opcode::Or, Ty, phy(InnerA), phy(InnerB));
        ir::Value WReg = ir::Value::reg(W, Ty);
        ir::Value ZReg = ir::Value::reg(*I.result(), Ty);
        Expr NotGhost =
            Expr::bop(Opcode::Xor, Ty, Ghost, phy(cInt(-1, Ty)));
        Expr NotW = Expr::bop(Opcode::Xor, Ty, phy(WReg), phy(cInt(-1, Ty)));
        recordPremises(S, {{A.regName(), *DS}, {Bv.regName(), *DS2}});
        B.inf(rule(InfruleKind::IntroGhost, {Expr::val(Ghost), OrE}), S);
        // Source: z >= xor w-hat -1 via the fused de-morgan rule.
        B.inf(rule(InfruleKind::AndDeMorgan,
                   {val(ZReg), val(A), val(Bv), Expr::val(Ghost),
                    val(InnerA), val(InnerB)}),
              S);
        // Target: w-hat >= w, then xor w-hat -1 >= xor w -1 >= z.
        B.inf(rule(InfruleKind::Transitivity,
                   {Expr::val(Ghost), OrE, val(WReg)})
                  .withSide(Side::Tgt),
              S);
        B.inf(rule(InfruleKind::Substitute,
                   {NotGhost, Expr::val(Ghost), val(WReg)})
                  .withSide(Side::Tgt),
              S);
        B.inf(rule(InfruleKind::Transitivity,
                   {NotGhost, NotW, val(ZReg)})
                  .withSide(Side::Tgt),
              S);
        B.inf(rule(InfruleKind::ReduceMaydiffLessdef,
                   {val(ZReg), NotGhost, NotGhost}),
              S);
        // The w-hat >= w fact must be available when the rule runs; the
        // target definition of w provides `or a b >= w` at slot WS.
        B.assn(Pred::lessdef(OrE, Expr::val(phy(WReg))), Side::Tgt,
               PPoint::afterSlot(WS), PPoint::beforeSlot(S));
        B.enableAuto("transitivity");
        B.enableAuto("reduce_maydiff");
      }
// PROOFGEN-END
      B.replaceTgt(S, std::move(NewI));
      Touched.insert(S);
      Touched.insert(WS);
      ++Counts["and-de-morgan"];
      ++Rewrites;
      return true;
    }
  }
  // or-xor2: y = or (xor a b) b -> or a b; or-or: y = or (or a b) b -> z
  if (Op == Opcode::Or) {
    if (const Instruction *D = defInstr(A, DS)) {
      if (D->opcode() == Opcode::Xor && D->operands()[1] == Bv) {
        rewriteInPlace("or-xor2", S,
                       Instruction::binary(Opcode::Or, *I.result(), Ty,
                                           D->operands()[0],
                                           D->operands()[1]),
                       rule(InfruleKind::OrXor2,
                            {val(Y), val(A), val(D->operands()[0]),
                             val(D->operands()[1])}),
                       {{A.regName(), *DS}});
        return true;
      }
      if (D->opcode() == Opcode::Or && D->operands()[1] == Bv) {
        foldToValue("or-or", S, A,
                    rule(InfruleKind::OrOr,
                         {val(Y), val(A), val(D->operands()[0]),
                          val(D->operands()[1])}),
                    {{A.regName(), *DS}});
        return true;
      }
    }
  }
  // icmp-inverse: y = xor (icmp p a b) 1 (i1) -> icmp inv(p) a b
  if (Op == Opcode::Xor && Ty == ir::Type::intTy(1) && constIs(Bv, -1)) {
    if (const Instruction *D = defInstr(A, DS)) {
      if (D->opcode() == Opcode::ICmp) {
        auto Inverse = [](IcmpPred Q) {
          switch (Q) {
          case IcmpPred::Eq:
            return IcmpPred::Ne;
          case IcmpPred::Ne:
            return IcmpPred::Eq;
          case IcmpPred::Ugt:
            return IcmpPred::Ule;
          case IcmpPred::Uge:
            return IcmpPred::Ult;
          case IcmpPred::Ult:
            return IcmpPred::Uge;
          case IcmpPred::Ule:
            return IcmpPred::Ugt;
          case IcmpPred::Sgt:
            return IcmpPred::Sle;
          case IcmpPred::Sge:
            return IcmpPred::Slt;
          case IcmpPred::Slt:
            return IcmpPred::Sge;
          case IcmpPred::Sle:
            return IcmpPred::Sgt;
          }
          return Q;
        };
        rewriteInPlace(
            "icmp-inverse", S,
            Instruction::icmp(*I.result(), Inverse(D->icmpPred()),
                              D->operands()[0], D->operands()[1]),
            rule(InfruleKind::IcmpInverse,
                 {val(A), val(Y),
                  val(ir::Value::constInt(
                      static_cast<int64_t>(D->icmpPred()),
                      ir::Type::intTy(32))),
                  val(D->operands()[0]), val(D->operands()[1])}),
            {{A.regName(), *DS}});
        return true;
      }
    }
  }
  // xor-not: z = xor (xor a -1) -1 -> a
  if (Op == Opcode::Xor && constIs(Bv, -1)) {
    if (const Instruction *D = defInstr(A, DS)) {
      if (D->opcode() == Opcode::Xor && constIs(D->operands()[1], -1)) {
        foldToValue("xor-not", S, D->operands()[0],
                    rule(InfruleKind::XorNot,
                         {val(Y), val(A), val(D->operands()[0])}),
                    {{A.regName(), *DS}});
        return true;
      }
    }
  }
  // xor-xor / and-and / or-const: op (op a C1) C2 -> op a (C1 op C2)
  if (Bv.isConstInt()) {
    if (const Instruction *D = defInstr(A, DS)) {
      if (D->opcode() == Op && D->operands()[1].isConstInt()) {
        int64_t C1 = D->operands()[1].intValue(), C2 = Bv.intValue();
        int64_t C3 = Op == Opcode::Xor   ? (C1 ^ C2)
                     : Op == Opcode::And ? (C1 & C2)
                                         : (C1 | C2);
        const char *Name = Op == Opcode::Xor   ? "xor-xor"
                           : Op == Opcode::And ? "and-and"
                                               : "or-const";
        InfruleKind K = Op == Opcode::Xor   ? InfruleKind::XorXor
                        : Op == Opcode::And ? InfruleKind::AndAnd
                                            : InfruleKind::OrConst;
        rewriteInPlace(Name, S,
                       Instruction::binary(Op, *I.result(), Ty,
                                           D->operands()[0], cInt(C3, Ty)),
                       rule(K, {val(Y), val(A), val(D->operands()[0]),
                                val(D->operands()[1]), val(Bv)}),
                       {{A.regName(), *DS}});
        return true;
      }
    }
  }
  // or-xor: y = or (xor a b) (and a b) -> or a b
  if (Op == Opcode::Or) {
    const Instruction *DZ = defInstr(A, DS);
    const Instruction *DX = defInstr(Bv, DS2);
    if (DZ && DX && DZ->opcode() == Opcode::Xor &&
        DX->opcode() == Opcode::And &&
        DZ->operands() == DX->operands()) {
      rewriteInPlace(
          "or-xor", S,
          Instruction::binary(Opcode::Or, *I.result(), Ty,
                              DZ->operands()[0], DZ->operands()[1]),
          rule(InfruleKind::OrXor,
               {val(Y), val(A), val(Bv), val(DZ->operands()[0]),
                val(DZ->operands()[1])}),
          {{A.regName(), *DS}, {Bv.regName(), *DS2}});
      return true;
    }
  }
  return false;
}

bool Combiner::combineShift(SlotId S, const Instruction &I) {
  const ir::Value &A = I.operands()[0], &Bv = I.operands()[1];
  ir::Type Ty = I.type();
  ir::Value Y = ir::Value::reg(*I.result(), Ty);
  if (constIs(Bv, 0)) {
    InfruleKind K = I.opcode() == Opcode::Shl    ? InfruleKind::ShiftZero1
                    : I.opcode() == Opcode::LShr ? InfruleKind::LshrZero
                                                 : InfruleKind::AshrZero;
    const char *Name = I.opcode() == Opcode::Shl    ? "shift-zero1"
                       : I.opcode() == Opcode::LShr ? "lshr-zero"
                                                    : "ashr-zero";
    foldToValue(Name, S, A, rule(K, {val(Y), val(A)}));
    return true;
  }
  // shl-shl / lshr-lshr: y = shift (shift a C1) C2 -> shift a (C1+C2)
  if ((I.opcode() == Opcode::Shl || I.opcode() == Opcode::LShr) &&
      Bv.isConstInt()) {
    std::optional<SlotId> DS;
    if (const Instruction *D = defInstr(A, DS)) {
      if (D->opcode() == I.opcode() && D->operands()[1].isConstInt()) {
        int64_t C1 = D->operands()[1].intValue(), C2 = Bv.intValue();
        // Compare the sum as uint64_t: C1 + C2 overflows int64_t (UB)
        // for large parsed constants, e.g. two INT64_MAX shift amounts.
        if (C1 >= 0 && C2 >= 0 &&
            static_cast<uint64_t>(C1) + static_cast<uint64_t>(C2) <
                Ty.intWidth()) {
          bool IsShl = I.opcode() == Opcode::Shl;
          rewriteInPlace(
              IsShl ? "shl-shl" : "lshr-lshr", S,
              Instruction::binary(I.opcode(), *I.result(), Ty,
                                  D->operands()[0], cInt(wrapAdd(C1, C2), Ty)),
              rule(IsShl ? InfruleKind::ShlShl : InfruleKind::LshrLshr,
                   {val(Y), val(A), val(D->operands()[0]),
                    val(D->operands()[1]), val(Bv)}),
              {{A.regName(), *DS}});
          return true;
        }
      }
    }
  }
  // lshr-zero2 / ashr-zero2: y = shift 0 a -> 0
  if (I.opcode() != Opcode::Shl && constIs(A, 0)) {
    bool IsLshr = I.opcode() == Opcode::LShr;
    foldToValue(IsLshr ? "lshr-zero2" : "ashr-zero2", S, cInt(0, Ty),
                rule(IsLshr ? InfruleKind::LshrZero2
                            : InfruleKind::AshrZero2,
                     {val(Y), val(Bv)}));
    return true;
  }
  if (I.opcode() != Opcode::Shl)
    return false;
  if (constIs(A, 0)) {
    foldToValue("shift-zero2", S, cInt(0, Ty),
                rule(InfruleKind::ShiftZero2, {val(Y), val(Bv)}));
    return true;
  }
  if (Bv.isUndef()) {
    foldToValue("shift-undef1", S, ir::Value::undef(Ty),
                rule(InfruleKind::ShiftUndef1, {val(Y), val(A)}));
    return true;
  }
  return false;
}

bool Combiner::combineIcmp(SlotId S, const Instruction &I) {
  const ir::Value &A = I.operands()[0], &Bv = I.operands()[1];
  ir::Type B1 = ir::Type::intTy(1);
  ir::Value Y = ir::Value::reg(*I.result(), B1);

  // icmp-same: icmp p a a -> constant
  if (A == Bv && A.isReg()) {
    bool Reflexive = I.icmpPred() == IcmpPred::Eq ||
                     I.icmpPred() == IcmpPred::Uge ||
                     I.icmpPred() == IcmpPred::Ule ||
                     I.icmpPred() == IcmpPred::Sge ||
                     I.icmpPred() == IcmpPred::Sle;
    foldToValue(
        "icmp-same", S, ir::Value::constInt(Reflexive ? 1 : 0, B1),
        rule(InfruleKind::IcmpSame,
             {val(Y),
              val(ir::Value::constInt(
                  static_cast<int64_t>(I.icmpPred()), ir::Type::intTy(32))),
              val(A)}));
    return true;
  }
  // icmp-eq-sub / icmp-ne-sub / icmp-eq-xor / icmp-ne-xor:
  //   icmp eq/ne (sub|xor a b) 0 -> icmp eq/ne a b
  if ((I.icmpPred() == IcmpPred::Eq || I.icmpPred() == IcmpPred::Ne) &&
      constIs(Bv, 0)) {
    std::optional<SlotId> DS;
    if (const Instruction *D = defInstr(A, DS)) {
      bool IsEq = I.icmpPred() == IcmpPred::Eq;
      if (D->opcode() == Opcode::Sub || D->opcode() == Opcode::Xor) {
        bool IsSub = D->opcode() == Opcode::Sub;
        InfruleKind K = IsSub ? (IsEq ? InfruleKind::IcmpEqSub
                                      : InfruleKind::IcmpNeSub)
                              : (IsEq ? InfruleKind::IcmpEqXor
                                      : InfruleKind::IcmpNeXor);
        const char *Name = IsSub ? (IsEq ? "icmp-eq-sub" : "icmp-ne-sub")
                                 : (IsEq ? "icmp-eq-xor" : "icmp-ne-xor");
        rewriteInPlace(Name, S,
                       Instruction::icmp(*I.result(), I.icmpPred(),
                                         D->operands()[0],
                                         D->operands()[1]),
                       rule(K, {val(Y), val(A), val(D->operands()[0]),
                                val(D->operands()[1])}),
                       {{A.regName(), *DS}});
        return true;
      }
      // icmp-eq-srem: icmp eq (srem a 1|-1) 0 -> true
      if (IsEq && D->opcode() == Opcode::SRem &&
          (constIs(D->operands()[1], 1) || constIs(D->operands()[1], -1))) {
        foldToValue("icmp-eq-srem", S, ir::Value::constInt(1, B1),
                    rule(InfruleKind::IcmpEqSrem,
                         {val(Y), val(A), val(D->operands()[0]),
                          val(D->operands()[1])}),
                    {{A.regName(), *DS}});
        return true;
      }
    }
  }
  // icmp-eq-add-add / icmp-ne-add-add: icmp p (add a c) (add b c)
  if (I.icmpPred() == IcmpPred::Eq || I.icmpPred() == IcmpPred::Ne) {
    std::optional<SlotId> DS1, DS2;
    const Instruction *DA = defInstr(A, DS1);
    const Instruction *DB = defInstr(Bv, DS2);
    if (DA && DB && DA->opcode() == Opcode::Add &&
        DB->opcode() == Opcode::Add &&
        DA->operands()[1] == DB->operands()[1]) {
      bool IsEq = I.icmpPred() == IcmpPred::Eq;
      rewriteInPlace(
          IsEq ? "icmp-eq-add-add" : "icmp-ne-add-add", S,
          Instruction::icmp(*I.result(), I.icmpPred(), DA->operands()[0],
                            DB->operands()[0]),
          rule(IsEq ? InfruleKind::IcmpEqAddAdd : InfruleKind::IcmpNeAddAdd,
               {val(Y), val(A), val(Bv), val(DA->operands()[0]),
                val(DB->operands()[0]), val(DA->operands()[1])}),
          {{A.regName(), *DS1}, {Bv.regName(), *DS2}});
      return true;
    }
  }
  // icmp-ult-zero / icmp-uge-zero: unsigned comparison against 0.
  if ((I.icmpPred() == IcmpPred::Ult || I.icmpPred() == IcmpPred::Uge) &&
      constIs(Bv, 0)) {
    bool IsUge = I.icmpPred() == IcmpPred::Uge;
    foldToValue(IsUge ? "icmp-uge-zero" : "icmp-ult-zero", S,
                ir::Value::constInt(IsUge ? 1 : 0, B1),
                rule(IsUge ? InfruleKind::IcmpUgeZero
                           : InfruleKind::IcmpUltZero,
                     {val(Y), val(A)}));
    return true;
  }
  // icmp-ule-mone / icmp-ugt-mone: unsigned comparison against -1.
  if ((I.icmpPred() == IcmpPred::Ule || I.icmpPred() == IcmpPred::Ugt) &&
      constIs(Bv, -1)) {
    bool IsUle = I.icmpPred() == IcmpPred::Ule;
    foldToValue(IsUle ? "icmp-ule-mone" : "icmp-ugt-mone", S,
                ir::Value::constInt(IsUle ? 1 : 0, B1),
                rule(IsUle ? InfruleKind::IcmpUleMone
                           : InfruleKind::IcmpUgtMone,
                     {val(Y), val(A)}));
    return true;
  }
  // icmp-sge-smin / icmp-slt-smin: signed comparison against INT_MIN.
  if ((I.icmpPred() == IcmpPred::Sge || I.icmpPred() == IcmpPred::Slt) &&
      Bv.isConstInt() && A.type().isInt() &&
      Bv == cInt(signedPow2(A.type().intWidth() - 1), A.type())) {
    bool IsSge = I.icmpPred() == IcmpPred::Sge;
    foldToValue(IsSge ? "icmp-sge-smin" : "icmp-slt-smin", S,
                ir::Value::constInt(IsSge ? 1 : 0, B1),
                rule(IsSge ? InfruleKind::IcmpSgeSmin
                           : InfruleKind::IcmpSltSmin,
                     {val(Y), val(A)}));
    return true;
  }
  // icmp-swap: canonicalize gt to lt by swapping the operands.
  if ((I.icmpPred() == IcmpPred::Sgt || I.icmpPred() == IcmpPred::Ugt) &&
      A.isConstInt() && !Bv.isConstInt()) {
    IcmpPred NewP =
        I.icmpPred() == IcmpPred::Sgt ? IcmpPred::Slt : IcmpPred::Ult;
    rewriteInPlace(
        "icmp-swap", S,
        Instruction::icmp(*I.result(), NewP, Bv, A),
        rule(InfruleKind::IcmpSwap,
             {val(Y),
              val(ir::Value::constInt(
                  static_cast<int64_t>(I.icmpPred()), ir::Type::intTy(32))),
              val(A), val(Bv)}));
    return true;
  }
  return false;
}

bool Combiner::combineSelect(SlotId S, const Instruction &I) {
  const ir::Value &C = I.operands()[0], &A = I.operands()[1],
                  &Bv = I.operands()[2];
  ir::Value Y = ir::Value::reg(*I.result(), I.type());
  if (constIs(C, 1)) {
    foldToValue("select-true", S, A,
                rule(InfruleKind::SelectTrue, {val(Y), val(A), val(Bv)}));
    return true;
  }
  if (C.isConstInt() && C.intValue() == 0) {
    foldToValue("select-false", S, Bv,
                rule(InfruleKind::SelectFalse, {val(Y), val(A), val(Bv)}));
    return true;
  }
  if (A == Bv) {
    foldToValue("select-same", S, A,
                rule(InfruleKind::SelectSame, {val(Y), val(C), val(A)}));
    return true;
  }
  // select-not-cond: z = select (xor c 1) a b -> select c b a
  if (C.isReg()) {
    std::optional<SlotId> DS;
    if (const Instruction *D = defInstr(C, DS)) {
      if (D->opcode() == Opcode::Xor && constIs(D->operands()[1], -1)) {
        rewriteInPlace("select-not-cond", S,
                       Instruction::select(*I.result(), I.type(),
                                           D->operands()[0], Bv, A),
                       rule(InfruleKind::SelectNotCond,
                            {val(Y), val(C), val(D->operands()[0]), val(A),
                             val(Bv)}),
                       {{C.regName(), *DS}});
        return true;
      }
    }
  }
  // select-icmp-eq: select (icmp eq a C), C, a -> a
  // select-icmp-ne: select (icmp ne a C), a, C -> a
  if (C.isReg()) {
    std::optional<SlotId> DS;
    if (const Instruction *D = defInstr(C, DS)) {
      if (D->opcode() == Opcode::ICmp && D->operands()[1].isConstInt()) {
        const ir::Value &CA = D->operands()[0];
        const ir::Value &CC = D->operands()[1];
        if (D->icmpPred() == IcmpPred::Eq && A == CC && Bv == CA) {
          foldToValue("select-icmp-eq", S, CA,
                      rule(InfruleKind::SelectIcmpEq,
                           {val(Y), val(C), val(CA), val(CC)}),
                      {{C.regName(), *DS}});
          return true;
        }
        if (D->icmpPred() == IcmpPred::Ne && A == CA && Bv == CC) {
          foldToValue("select-icmp-ne", S, CA,
                      rule(InfruleKind::SelectIcmpNe,
                           {val(Y), val(C), val(CA), val(CC)}),
                      {{C.regName(), *DS}});
          return true;
        }
      }
    }
  }
  return false;
}

/// fold-phi-bin-const (paper §4's running example): a phi whose every
/// incoming value is a single-use `xi := op ai C` with the same operator
/// and constant becomes `t := phi(a1..an)` followed by `z := op t C`. The
/// proof needs the old-register machinery: the ghost ẑ is bound per
/// incoming edge in terms of the predecessors' old values.
void Combiner::combinePhis(const std::string &BlkName) {
  // Non-trapping integer binary operators only; a shift could introduce
  // poison the folded form does not have on the edge where it is skipped.
  auto Foldable = [](Opcode Op) {
    return Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::Mul ||
           Op == Opcode::And || Op == Opcode::Or || Op == Opcode::Xor;
  };
  // Register use count over the *source* function (instruction operands
  // and phi incomings); the single-use requirement is stated there.
  auto countSrcUses = [this](const std::string &Reg) {
    unsigned N = 0;
    for (const BasicBlock &Blk : B.srcFunction().Blocks) {
      for (const ir::Phi &P : Blk.Phis)
        for (const auto &In : P.Incoming)
          if (In.second.isReg() && In.second.regName() == Reg)
            ++N;
      for (const Instruction &I : Blk.Insts)
        for (const ir::Value &Op : I.operands())
          if (Op.isReg() && Op.regName() == Reg)
            ++N;
    }
    return N;
  };
  const BasicBlock *SrcBlk = nullptr;
  for (const BasicBlock &Blk : B.srcFunction().Blocks)
    if (Blk.Name == BlkName)
      SrcBlk = &Blk;
  assert(SrcBlk);

  auto &Phis = B.tgtPhis(BlkName);
  for (size_t PI = 0; PI != Phis.size(); ++PI) {
    ir::Phi &P = Phis[PI];
    if (!P.Ty.isInt() || P.Incoming.size() < 2)
      continue;
    // The phi must still be the unmodified source phi: the edge facts
    // below are stated about the source program.
    const ir::Phi *SP = nullptr;
    for (const ir::Phi &Q : SrcBlk->Phis)
      if (Q.Result == P.Result)
        SP = &Q;
    if (!SP || !(SP->Ty == P.Ty) || SP->Incoming != P.Incoming)
      continue;

    struct Edge {
      std::string Pred;
      ir::Value Xi;
      SlotId Def;
      ir::Value Ai;
    };
    std::vector<Edge> Edges;
    Opcode Op = Opcode::Add;
    std::optional<ir::Value> CVal;
    std::set<std::string> SeenXi;
    bool OK = true;
    for (const auto &In : P.Incoming) {
      std::optional<SlotId> DS;
      const Instruction *D = defInstr(In.second, DS);
      if (!D || !Foldable(D->opcode()) || !D->operands()[1].isConstInt()) {
        OK = false;
        break;
      }
      if (Edges.empty()) {
        Op = D->opcode();
        CVal = D->operands()[1];
      } else if (D->opcode() != Op || !(D->operands()[1] == *CVal)) {
        OK = false;
        break;
      }
      if (!SeenXi.insert(In.second.regName()).second ||
          countSrcUses(In.second.regName()) != 1 ||
          Anchored.count(In.second.regName())) {
        OK = false;
        break;
      }
      Edges.push_back({In.first, In.second, *DS, D->operands()[0]});
    }
    if (!OK || Edges.empty())
      continue;

    ir::Type Ty = P.Ty;
    std::string Z = P.Result;
    std::string T = Z + ".fphi";
    std::vector<std::pair<std::string, ir::Value>> NewInc;
    for (const Edge &E : Edges)
      NewInc.push_back({E.Pred, E.Ai});
    P = ir::Phi{T, Ty, std::move(NewInc)};
    std::vector<SlotId> BlkSlots = B.slotsOf(BlkName);
    assert(!BlkSlots.empty() && "block has at least a terminator");
    SlotId ZS = B.insertTgtBefore(
        BlkSlots.front(),
        Instruction::binary(Op, Z, Ty, ir::Value::reg(T, Ty), *CVal));
    Touched.insert(ZS);
    B.maydiffGlobal(RegT{T, Tag::Phy});
    B.maydiffAtEntry(RegT{Z, Tag::Phy}, BlkName);
    ++Counts["fold-phi-bin-const"];
    ++Rewrites;
    if (!GenProof)
      continue;

// PROOFGEN-BEGIN
    std::string G = B.freshGhost(Z);
    ValT Ghost = ValT::ghost(G, Ty);
    for (const Edge &E : Edges) {
      // xi's definition fact must reach the end of the predecessor.
      B.assn(Pred::lessdef(val(E.Xi),
                           Expr::bop(Op, Ty, phy(E.Ai), phy(*CVal))),
             Side::Src, PPoint::afterSlot(E.Def), PPoint::endOf(E.Pred));
      // ẑ is bound per edge in terms of the predecessor's (old) values.
      ValT AiAtEdge = E.Ai.isReg() ? ValT::old(E.Ai.regName(), E.Ai.type())
                                   : phy(E.Ai);
      B.infAtPhi(rule(InfruleKind::IntroGhost,
                      {Expr::val(Ghost),
                       Expr::bop(Op, Ty, AiAtEdge, phy(*CVal))}),
                 BlkName, E.Pred);
    }
    // At the block entry: z_src >= ẑ, and ẑ >= op(t, C) pending on the
    // target until the inserted command defines z there.
    ir::Value ZReg = ir::Value::reg(Z, Ty);
    ir::Value TReg = ir::Value::reg(T, Ty);
    B.assn(Pred::lessdef(val(ZReg), Expr::val(Ghost)), Side::Src,
           PPoint::entryOf(BlkName), PPoint::beforeSlot(ZS));
    B.assn(Pred::lessdef(Expr::val(Ghost),
                         Expr::bop(Op, Ty, phy(TReg), phy(*CVal))),
           Side::Tgt, PPoint::entryOf(BlkName), PPoint::beforeSlot(ZS));
    B.enableAuto("gvn_pre");
// PROOFGEN-END
  }
}

bool Combiner::combineCast(SlotId S, const Instruction &I) {
  const ir::Value &A = I.operands()[0];
  ir::Value Y = ir::Value::reg(*I.result(), I.type());
  std::optional<SlotId> DS;

  if (I.opcode() == Opcode::Bitcast) {
    if (A.type() == I.type()) {
      foldToValue("bitcast-sametype", S, A,
                  rule(InfruleKind::BitcastSame, {val(Y), val(A)}));
      return true;
    }
    // Note: a bitcast-bitcast chain cannot occur here — our bitcasts are
    // always same-type, so bitcast-sametype already folded the inner one.
    return false;
  }
  if (I.opcode() == Opcode::IntToPtr) {
    if (const Instruction *D = defInstr(A, DS)) {
      if (D->opcode() == Opcode::PtrToInt &&
          A.type() == ir::Type::intTy(64)) {
        foldToValue("inttoptr-ptrtoint", S, D->operands()[0],
                    rule(InfruleKind::InttoptrPtrtoint,
                         {val(Y), val(A), val(D->operands()[0])}),
                    {{A.regName(), *DS}});
        return true;
      }
    }
    return false;
  }

  const Instruction *D = defInstr(A, DS);
  if (!D || !isCast(D->opcode()))
    return false;
  const ir::Value &Inner = D->operands()[0];

  // trunc(zext a) back to a's width -> a
  if (I.opcode() == Opcode::Trunc && D->opcode() == Opcode::ZExt &&
      I.type() == Inner.type()) {
    foldToValue("trunc-zext", S, Inner,
                rule(InfruleKind::TruncZext, {val(Y), val(A), val(Inner)}),
                {{A.regName(), *DS}});
    return true;
  }
  auto Chain = [&](Opcode Outer, Opcode InnerOp, InfruleKind K,
                   const char *Name, Opcode NewOp) {
    if (I.opcode() != Outer || D->opcode() != InnerOp)
      return false;
    if (NewOp != Opcode::Trunc) {
      if (!(I.type().intWidth() > A.type().intWidth() &&
            A.type().intWidth() > Inner.type().intWidth()))
        return false;
    } else if (!(I.type().intWidth() < A.type().intWidth() &&
                 A.type().intWidth() < Inner.type().intWidth())) {
      return false;
    }
    rewriteInPlace(Name, S,
                   Instruction::cast(NewOp, *I.result(), I.type(), Inner),
                   rule(K, {val(Y), val(A), val(Inner)}),
                   {{A.regName(), *DS}});
    return true;
  };
  if (Chain(Opcode::ZExt, Opcode::ZExt, InfruleKind::ZextZext, "zext-zext",
            Opcode::ZExt))
    return true;
  if (Chain(Opcode::SExt, Opcode::SExt, InfruleKind::SextSext, "sext-sext",
            Opcode::SExt))
    return true;
  if (Chain(Opcode::SExt, Opcode::ZExt, InfruleKind::SextZext, "sext-zext",
            Opcode::ZExt))
    return true;
  if (Chain(Opcode::Trunc, Opcode::Trunc, InfruleKind::TruncTrunc,
            "trunc-trunc", Opcode::Trunc))
    return true;
  return false;
}

bool Combiner::combineGep(SlotId S, const Instruction &I) {
  const ir::Value &P = I.operands()[0], &Idx = I.operands()[1];
  if (!constIs(Idx, 0))
    return false;
  ir::Value Y = ir::Value::reg(*I.result(), ir::Type::ptrTy());
  foldToValue("gep-zero", S, P,
              rule(InfruleKind::GepZero,
                   {val(Y), val(P),
                    val(ir::Value::constInt(I.isInbounds() ? 1 : 0,
                                            ir::Type::intTy(32)))}));
  return true;
}

void Combiner::eliminateDeadCode() {
  // Iterate: removing one instruction can make its operands dead.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Count uses over the current target state.
    std::map<std::string, unsigned> Uses;
    for (const BasicBlock &Blk : B.srcFunction().Blocks) {
      for (SlotId U : B.slotsOf(Blk.Name)) {
        if (const Instruction *TI = B.tgtAt(U))
          for (const ir::Value &V : TI->operands())
            if (V.isReg())
              ++Uses[V.regName()];
      }
      for (const ir::Phi &P : B.tgtPhis(Blk.Name))
        for (const auto &In : P.Incoming)
          if (In.second.isReg())
            ++Uses[In.second.regName()];
    }
    for (const BasicBlock &Blk : B.srcFunction().Blocks) {
      for (SlotId S : B.slotsOf(Blk.Name)) {
        const Instruction *TI = B.tgtAt(S);
        if (!TI || TI->isTerminator())
          continue;
        auto R = TI->result();
        if (!R || Uses[*R] != 0 || Anchored.count(*R))
          continue;
        switch (TI->opcode()) {
        case Opcode::Call:
        case Opcode::Store:
        case Opcode::Alloca: // alloca removal is mem2reg's job
          continue;
        default:
          break;
        }
        B.removeTgt(S);
        Touched.insert(S);
        B.maydiffGlobal(RegT{*R, Tag::Phy});
        ++Counts["dead-code-elim"];
        ++Rewrites;
        Changed = true;
      }
    }
  }
}

} // namespace

PassResult InstCombine::run(const ir::Module &Src, bool GenProof) {
  PassResult Out;
  Out.Tgt = Src;
  for (ir::Function &F : Out.Tgt.Funcs) {
    ProofBuilder B(F);
    Combiner C(B, GenProof, Bugs, Counts);
    C.run();
    Out.Rewrites += C.rewrites();
    auto R = B.finalize();
    F = R.TgtF;
    if (GenProof)
      Out.Proof.Functions[F.Name] = std::move(R.FProof);
  }
  return Out;
}

std::vector<std::string> InstCombine::microOptNames() {
  return {"add-zero",      "add-comm-sub",  "add-shift",
          "add-onebit",    "add-signbit",   "bop-associativity",
          "add-zext-bool", "add-sub",       "add-or-and",
          "add-xor-and",   "sub-zero",      "sub-remove-same",
          "sub-onebit",    "sub-mone",      "sub-const-add",
          "sub-sub",       "sub-const-not", "sub-add",
          "sub-remove",    "sub-shl",       "sub-or-xor",
          "sdiv-mone",     "mul-zero",      "mul-one",
          "mul-mone",      "mul-bool",      "mul-shl",
          "mul-neg",       "and-same",      "and-undef",
          "and-zero",      "and-mone",      "and-not",
          "and-or",        "and-de-morgan", "or-same",
          "or-undef",      "or-zero",       "or-mone",
          "or-not",        "or-and",        "or-xor",
          "xor-same",      "xor-undef",     "xor-zero",
          "shift-zero1",   "shift-zero2",   "shift-undef1",
          "icmp-same",     "icmp-eq-sub",   "icmp-ne-sub",
          "icmp-eq-xor",   "icmp-ne-xor",   "icmp-eq-srem",
          "icmp-swap",     "select-true",   "select-false",
          "select-same",   "trunc-zext",    "zext-zext",
          "sext-sext",     "sext-zext",     "trunc-trunc",
          "bitcast-sametype", "inttoptr-ptrtoint",
          "gep-zero",      "udiv-one",      "urem-one",
          "lshr-zero",     "ashr-zero",     "or-xor2",
          "or-or",         "icmp-eq-add-add", "icmp-ne-add-add",
          "select-icmp-eq", "select-icmp-ne", "fold-phi-bin-const",
          "neg-val",       "xor-not",       "xor-xor",
          "and-and",       "or-const",      "shl-shl",
          "lshr-lshr",     "sdiv-one",      "srem-one",
          "srem-mone",     "icmp-ult-zero", "icmp-uge-zero",
          "icmp-inverse",  "select-not-cond", "sdiv-sub-srem",
          "udiv-sub-urem", "lshr-zero2",    "ashr-zero2",
          "icmp-ule-mone", "icmp-ugt-mone", "icmp-sge-smin",
          "icmp-slt-smin", "comm-canonicalize", "dead-code-elim"};
}
