//===- passes/LICM.h - Loop-invariant code motion ----------------*- C++ -*-===//
///
/// \file
/// Loop-invariant code motion (paper §6, partially covered as in the
/// paper): hoists pure loop-invariant computations into an existing
/// preheader. Creating preheaders or moving loads
/// (promoteLoopAccessesToScalars) would need CFG changes / alias analysis,
/// which the framework does not support — exactly the paper's coverage
/// boundary. Hoisting a division needs the division-by-zero analysis the
/// validator lacks, so such translations are performed but marked #NS
/// (paper §7's "alias and division-by-zero analysis" class).
///
/// The proof: the hoisted register x is defined by the target in the
/// preheader and by the source inside the loop. x is in the maydiff set
/// exactly at the points dominated by the target definition but not by the
/// source definition; the target-side fact `e >= x` is asserted through
/// the loop, and reduce_maydiff discharges x at the source definition.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PASSES_LICM_H
#define CRELLVM_PASSES_LICM_H

#include "passes/Pass.h"

namespace crellvm {
namespace passes {

/// Proof-generating loop-invariant code motion.
class LICM : public Pass {
public:
  explicit LICM(const BugConfig &Bugs) : Bugs(Bugs) {}

  std::string name() const override { return "licm"; }
  PassResult run(const ir::Module &Src, bool GenProof) override;

private:
  BugConfig Bugs;
};

} // namespace passes
} // namespace crellvm

#endif // CRELLVM_PASSES_LICM_H
