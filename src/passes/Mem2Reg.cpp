//===- passes/Mem2Reg.cpp ---------------------------------------*- C++ -*-===//

#include "passes/Mem2Reg.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "proofgen/ProofBuilder.h"

#include <algorithm>
#include <cassert>

using namespace crellvm;
using namespace crellvm::passes;
using namespace crellvm::erhl;
using namespace crellvm::ir;
using proofgen::PPoint;
using proofgen::ProofBuilder;
using SlotId = ProofBuilder::SlotId;

namespace {

/// Register promotion for one function.
class Promoter {
public:
  Promoter(ProofBuilder &B, const BugConfig &Bugs, bool GenProof)
      : B(B), Bugs(Bugs), GenProof(GenProof), F(B.srcFunction()), G(F),
        DT(G), LI(F, G, DT) {}

  uint64_t run();

private:
  struct AllocaInfo {
    SlotId Slot = 0;
    std::string P;
    ir::Type Ty;
    std::vector<SlotId> Loads;
    std::vector<SlotId> Stores;
    std::vector<SlotId> LifetimeCalls;
    std::string Ghost; ///< the alloca's ghost register name (p-hat)
  };

  // --- Analysis -------------------------------------------------------------
  std::optional<AllocaInfo> analyze(SlotId AllocaSlot);
  bool slotDominates(SlotId A, SlotId Bslot) const;
  size_t slotIndexInBlock(SlotId S) const;

  // --- Promotion paths -------------------------------------------------------
  bool trySingleStore(AllocaInfo &AI);
  bool trySingleBlock(AllocaInfo &AI);
  void promoteGeneral(AllocaInfo &AI);

  // --- Shared pieces ----------------------------------------------------------
  /// Common prelude (Algorithm 2 lines A3-A4): removes the alloca, pins
  /// Uniq(p) and MD(p) globally, binds the ghost to undef.
  void prelude(AllocaInfo &AI);
  /// Handles one store *p := w: removes it and rebinds the ghost
  /// (Algorithm 2 line A10). Returns the target-side value now in *p.
  ir::Value handleStore(const AllocaInfo &AI, SlotId StoreSlot);
  /// Handles one load x := *p reached by value \p V stored at \p From
  /// (Algorithm 2 lines A12-A18).
  void handleLoad(const AllocaInfo &AI, SlotId LoadSlot, const ir::Value &V,
                  const PPoint &From);
  void removeLifetimeCalls(const AllocaInfo &AI);

  Infrule mkRule(InfruleKind K, Side S, std::vector<Expr> Args) const {
    Infrule R;
    R.K = K;
    R.S = S;
    R.Args = std::move(Args);
    return R;
  }
  static Expr val(const ir::Value &V) { return Expr::val(ValT::phy(V)); }

  ProofBuilder &B;
  const BugConfig &Bugs;
  bool GenProof;
  const ir::Function &F;
  analysis::CFG G;
  analysis::DomTree DT;
  analysis::LoopInfo LI;
  /// Source register -> (ghost name, replacement value) for every promoted
  /// load, used to justify stores whose operand was itself replaced.
  std::map<std::string, std::pair<std::string, ir::Value>> LoadGhosts;
  uint64_t Promoted = 0;
};

size_t Promoter::slotIndexInBlock(SlotId S) const {
  auto Slots = B.slotsOf(B.blockOf(S));
  auto It = std::find(Slots.begin(), Slots.end(), S);
  assert(It != Slots.end());
  return static_cast<size_t>(It - Slots.begin());
}

bool Promoter::slotDominates(SlotId A, SlotId Bslot) const {
  size_t BA = G.index(B.blockOf(A));
  size_t BB = G.index(B.blockOf(Bslot));
  if (BA != BB)
    return DT.dominates(BA, BB);
  return slotIndexInBlock(A) < slotIndexInBlock(Bslot);
}

std::optional<Promoter::AllocaInfo> Promoter::analyze(SlotId AllocaSlot) {
  const Instruction *AllocaInst = B.tgtAt(AllocaSlot);
  if (!AllocaInst || AllocaInst->opcode() != Opcode::Alloca)
    return std::nullopt;
  if (AllocaInst->allocaSize() != 1)
    return std::nullopt;
  if (B.blockOf(AllocaSlot) != F.entry().Name)
    return std::nullopt;
  // Promotion requires fully reachable functions: phi edges from dead
  // blocks cannot justify the promoted value.
  for (size_t I = 0; I != G.numBlocks(); ++I)
    if (!G.isReachable(I))
      return std::nullopt;

  AllocaInfo AI;
  AI.Slot = AllocaSlot;
  AI.P = *AllocaInst->result();
  AI.Ty = AllocaInst->type();

  for (const BasicBlock &Blk : F.Blocks) {
    for (const Phi &P : Blk.Phis)
      for (const auto &In : P.Incoming)
        if (In.second.isReg() && In.second.regName() == AI.P)
          return std::nullopt; // the address escapes through a phi
    auto Slots = B.slotsOf(Blk.Name);
    for (size_t I = 0; I != Blk.Insts.size(); ++I) {
      const Instruction &Ins = Blk.Insts[I];
      SlotId S = B.slotOfSrc(Blk.Name, I);
      bool UsesP = false;
      for (const ir::Value &V : Ins.operands())
        if (V.isReg() && V.regName() == AI.P)
          UsesP = true;
      if (!UsesP)
        continue;
      if (Ins.opcode() == Opcode::Load && Ins.operands()[0].isReg() &&
          Ins.operands()[0].regName() == AI.P) {
        AI.Loads.push_back(S);
        continue;
      }
      if (Ins.opcode() == Opcode::Store && Ins.operands()[1].isReg() &&
          Ins.operands()[1].regName() == AI.P &&
          !(Ins.operands()[0].isReg() &&
            Ins.operands()[0].regName() == AI.P)) {
        AI.Stores.push_back(S);
        continue;
      }
      if (Ins.opcode() == Opcode::Call &&
          Ins.callee().rfind("llvm.lifetime.", 0) == 0) {
        AI.LifetimeCalls.push_back(S);
        continue;
      }
      return std::nullopt; // any other use blocks promotion
    }
    (void)Slots;
  }
  AI.Ghost = B.freshGhost(AI.P);
  return AI;
}

void Promoter::prelude(AllocaInfo &AI) {
  B.removeTgt(AI.Slot);
  B.maydiffGlobal(RegT{AI.P, Tag::Phy});
// PROOFGEN-BEGIN
  if (GenProof) {
    B.assnGlobal(Pred::unique(AI.P), Side::Src);
    B.inf(mkRule(InfruleKind::IntroGhost, Side::Src,
                 {Expr::val(ValT::ghost(AI.Ghost, AI.Ty)),
                  val(ir::Value::undef(AI.Ty))}),
          AI.Slot);
    B.enableAuto("transitivity");
    B.enableAuto("reduce_maydiff");
  }
// PROOFGEN-END
  removeLifetimeCalls(AI);
}

void Promoter::removeLifetimeCalls(const AllocaInfo &AI) {
  // Lifetime intrinsics on the promoted slot are dropped. They make the
  // whole function #NS at validation time (paper §7, CSmith experiment).
  for (SlotId S : AI.LifetimeCalls)
    B.removeTgt(S);
}

ir::Value Promoter::handleStore(const AllocaInfo &AI, SlotId StoreSlot) {
  const Instruction *TgtStore = B.tgtAt(StoreSlot);
  assert(TgtStore && TgtStore->opcode() == Opcode::Store);
  ir::Value WTgt = TgtStore->operands()[0];
  ir::Value WSrc = B.srcAt(StoreSlot)->operands()[0];
  B.removeTgt(StoreSlot);
  if (!GenProof)
    return WTgt;

// PROOFGEN-BEGIN
  ValT Ghost = ValT::ghost(AI.Ghost, AI.Ty);
  if (WSrc == WTgt) {
    // intro_ghost(p-hat, w) (Algorithm 2 line A10).
    B.inf(mkRule(InfruleKind::IntroGhost, Side::Src,
                 {Expr::val(Ghost), val(WTgt)}),
          StoreSlot);
  } else {
    // The stored operand was itself a promoted load: link through its
    // ghost (x-hat), then derive p-hat >= v on the target side.
    assert(WSrc.isReg() && LoadGhosts.count(WSrc.regName()) &&
           "stored operand rewritten by an unknown transformation");
    const auto &[GhostX, VX] = LoadGhosts.at(WSrc.regName());
    ValT GX = ValT::ghost(GhostX, AI.Ty);
    B.inf(mkRule(InfruleKind::IntroGhost, Side::Src,
                 {Expr::val(Ghost), Expr::val(GX)}),
          StoreSlot);
    B.inf(mkRule(InfruleKind::Transitivity, Side::Tgt,
                 {Expr::val(Ghost), Expr::val(GX), val(WTgt)}),
          StoreSlot);
  }
  return WTgt;
// PROOFGEN-END
}

void Promoter::handleLoad(const AllocaInfo &AI, SlotId LoadSlot,
                          const ir::Value &V, const PPoint &From) {
  const Instruction &SrcLoad = *B.srcAt(LoadSlot);
  std::string X = *SrcLoad.result();
  ir::Type Ty = SrcLoad.type();
  std::string GhostX = B.freshGhost(X);
  LoadGhosts[X] = {GhostX, V};

  // Replace every use of x with v, collecting use points for the
  // relational assertions (Algorithm 2 line A16).
  std::vector<PPoint> UsePoints;
  for (const BasicBlock &Blk : F.Blocks) {
    for (SlotId U : B.slotsOf(Blk.Name)) {
      if (U == LoadSlot)
        continue;
      if (Instruction *TI = B.tgtAt(U)) {
        // Divisor rewrites need division-by-zero analysis (#NS, paper S7).
        if (isBinaryOp(TI->opcode()) && mayTrap(TI->opcode()) &&
            TI->operands()[1].isReg() && TI->operands()[1].regName() == X)
          B.markNotSupported("division-by-zero analysis");
        if (TI->replaceUses(X, V))
          UsePoints.push_back(PPoint::beforeSlot(U));
      }
    }
    for (ir::Phi &P : B.tgtPhis(Blk.Name))
      for (auto &In : P.Incoming)
        if (In.second.isReg() && In.second.regName() == X) {
          In.second = V;
          UsePoints.push_back(PPoint::endOf(In.first));
        }
  }

  B.removeTgt(LoadSlot);
  B.maydiffGlobal(RegT{X, Tag::Phy});
  if (!GenProof)
    return;

// PROOFGEN-BEGIN
  ValT GhostP = ValT::ghost(AI.Ghost, ir::Type::ptrTy());
  ValT GhostPT = ValT::ghost(AI.Ghost, Ty);
  ValT GX = ValT::ghost(GhostX, Ty);
  Expr Cell = Expr::load(Ty, ValT::phy(ir::Value::reg(AI.P,
                                                      ir::Type::ptrTy())));
  // [A13] *p >= p-hat (src) and p-hat >= v (tgt) from the store to here.
  B.assn(Pred::lessdef(Cell, Expr::val(GhostPT)), Side::Src, From,
         PPoint::beforeSlot(LoadSlot));
  B.assn(Pred::lessdef(Expr::val(GhostPT), val(V)), Side::Tgt, From,
         PPoint::beforeSlot(LoadSlot));
  // [A14] intro_ghost(x-hat, p-hat).
  B.inf(mkRule(InfruleKind::IntroGhost, Side::Src,
               {Expr::val(GX), Expr::val(GhostPT)}),
        LoadSlot);
  // Target side: x-hat >= p-hat >= v.
  B.inf(mkRule(InfruleKind::Transitivity, Side::Tgt,
               {Expr::val(GX), Expr::val(GhostPT), val(V)}),
        LoadSlot);
  // [A16] x >= x-hat (src) and x-hat >= v (tgt) to every use.
  ir::Value XReg = ir::Value::reg(X, Ty);
  for (const PPoint &P : UsePoints) {
    B.assn(Pred::lessdef(val(XReg), Expr::val(GX)), Side::Src,
           PPoint::afterSlot(LoadSlot), P);
    B.assn(Pred::lessdef(Expr::val(GX), val(V)), Side::Tgt,
           PPoint::afterSlot(LoadSlot), P);
  }
  (void)GhostP;
// PROOFGEN-END
}

bool Promoter::trySingleStore(AllocaInfo &AI) {
  if (AI.Stores.size() != 1)
    return false;
  SlotId StoreSlot = AI.Stores[0];

  std::vector<SlotId> Dominated, NonDominated;
  for (SlotId L : AI.Loads)
    (slotDominates(StoreSlot, L) ? Dominated : NonDominated).push_back(L);

  const Instruction *TgtStore = B.tgtAt(StoreSlot);
  ir::Value W = TgtStore->operands()[0];
  bool Speculate = false;
  if (!NonDominated.empty()) {
    // PR33673: assume constants (including trapping constant expressions)
    // are safe to use at loads the store does not reach.
    if (Bugs.Mem2RegConstexprSpeculate && W.isConstant() && !W.isUndef())
      Speculate = true;
    else
      return false; // fall back to the general algorithm
  }

  prelude(AI);
  ir::Value V = handleStore(AI, StoreSlot);
// PROOFGEN-BEGIN
  if (Speculate && GenProof) {
    // The unsound step: undef may be refined to the constant expression
    // (constexpr_no_ub), so p-hat >= C already at the allocation.
    ValT GhostPT = ValT::ghost(AI.Ghost, AI.Ty);
    B.inf(mkRule(InfruleKind::ConstexprNoUb, Side::Tgt,
                 {val(ir::Value::undef(AI.Ty)), val(W)}),
          AI.Slot);
    B.inf(mkRule(InfruleKind::Transitivity, Side::Tgt,
                 {Expr::val(GhostPT), val(ir::Value::undef(AI.Ty)),
                  val(W)}),
          AI.Slot);
  }
// PROOFGEN-END
  for (SlotId L : Dominated)
    handleLoad(AI, L, V, PPoint::afterSlot(StoreSlot));
  for (SlotId L : NonDominated)
    handleLoad(AI, L, Speculate ? W : ir::Value::undef(AI.Ty),
               PPoint::afterSlot(AI.Slot));
  ++Promoted;
  return true;
}

bool Promoter::trySingleBlock(AllocaInfo &AI) {
  if (AI.Loads.empty() && AI.Stores.empty())
    return false;
  std::string Blk;
  for (SlotId S : AI.Loads) {
    if (Blk.empty())
      Blk = B.blockOf(S);
    else if (Blk != B.blockOf(S))
      return false;
  }
  for (SlotId S : AI.Stores) {
    if (Blk.empty())
      Blk = B.blockOf(S);
    else if (Blk != B.blockOf(S))
      return false;
  }

  // Is there a load before the first store?
  std::set<SlotId> LoadSet(AI.Loads.begin(), AI.Loads.end());
  std::set<SlotId> StoreSet(AI.Stores.begin(), AI.Stores.end());
  bool LoadBeforeStore = false;
  bool SeenStore = false;
  std::vector<std::pair<SlotId, bool>> Accesses; // (slot, isStore) in order
  for (SlotId S : B.slotsOf(Blk)) {
    if (StoreSet.count(S)) {
      SeenStore = true;
      Accesses.emplace_back(S, true);
    } else if (LoadSet.count(S)) {
      if (!SeenStore)
        LoadBeforeStore = true;
      Accesses.emplace_back(S, false);
    }
  }

  if (LoadBeforeStore && !AI.Stores.empty() && !Bugs.Mem2RegUndefLoop) {
    // PR24179 guard: a back edge could bring a stored value around to the
    // early load; only the general algorithm handles that.
    size_t BlkIdx = G.index(Blk);
    for (const analysis::Loop &L : LI.loops())
      if (L.contains(BlkIdx))
        return false;
  }

  prelude(AI);
  ir::Value V = ir::Value::undef(AI.Ty);
  PPoint From = PPoint::afterSlot(AI.Slot);
  for (auto &[S, IsStore] : Accesses) {
    if (IsStore) {
      V = handleStore(AI, S);
      From = PPoint::afterSlot(S);
    } else {
      handleLoad(AI, S, V, From);
    }
  }
  ++Promoted;
  return true;
}

void Promoter::promoteGeneral(AllocaInfo &AI) {
  // [A2] Insert empty phi nodes at the iterated dominance frontier of the
  // definition blocks.
  analysis::DominanceFrontier DF(G, DT);
  std::set<size_t> DefBlocks{G.index(B.blockOf(AI.Slot))};
  for (SlotId S : AI.Stores)
    DefBlocks.insert(G.index(B.blockOf(S)));
  std::set<size_t> PhiBlocks;
  std::vector<size_t> Work(DefBlocks.begin(), DefBlocks.end());
  while (!Work.empty()) {
    size_t Blk = Work.back();
    Work.pop_back();
    for (size_t FB : DF.frontier(Blk))
      if (PhiBlocks.insert(FB).second)
        Work.push_back(FB);
  }
  std::map<size_t, std::string> PhiReg;
  unsigned PhiCounter = 0;
  for (size_t PB : PhiBlocks) {
    std::string Name = AI.P + ".m2r" + std::to_string(PhiCounter++);
    PhiReg[PB] = Name;
    B.insertTgtPhi(G.name(PB), ir::Phi{Name, AI.Ty, {}});
    B.maydiffGlobal(RegT{Name, Tag::Phy});
  }

  prelude(AI);

  std::set<SlotId> LoadSet(AI.Loads.begin(), AI.Loads.end());
  std::set<SlotId> StoreSet(AI.Stores.begin(), AI.Stores.end());

  // [A5] DFS worklist from the entry.
  struct WorkItem {
    size_t Blk;
    ir::Value V;
    PPoint From;
  };
  std::vector<WorkItem> WL{{0, ir::Value::undef(AI.Ty),
                            PPoint::afterSlot(AI.Slot)}};
  std::vector<bool> Visited(G.numBlocks(), false);
  Visited[0] = true;

  while (!WL.empty()) {
    WorkItem Item = WL.back();
    WL.pop_back();
    const std::string &BlkName = G.name(Item.Blk);
    ir::Value V = Item.V;
    PPoint From = Item.From;

    for (SlotId S : B.slotsOf(BlkName)) {
      if (StoreSet.count(S)) {
        V = handleStore(AI, S);
        From = PPoint::afterSlot(S);
      } else if (LoadSet.count(S)) {
        handleLoad(AI, S, V, From);
      }
    }

    // [A21] Successors.
    Expr Cell = Expr::load(
        AI.Ty, ValT::phy(ir::Value::reg(AI.P, ir::Type::ptrTy())));
    ValT GhostPT = ValT::ghost(AI.Ghost, AI.Ty);
    for (size_t Succ : G.succs(Item.Blk)) {
      auto PhiIt = PhiReg.find(Succ);
      if (PhiIt != PhiReg.end()) {
        ir::Phi *Z = B.tgtPhi(G.name(Succ), PhiIt->second);
        assert(Z && "inserted phi vanished");
        Z->setIncoming(BlkName, V);
// PROOFGEN-BEGIN
        if (GenProof) {
          // [A23] the value is used at the phi: assert through the end of
          // this block.
          B.assn(Pred::lessdef(Cell, Expr::val(GhostPT)), Side::Src, From,
                 PPoint::endOf(BlkName));
          B.assn(Pred::lessdef(Expr::val(GhostPT), val(V)), Side::Tgt,
                 From, PPoint::endOf(BlkName));
        }
// PROOFGEN-END
        if (!Visited[Succ]) {
          Visited[Succ] = true;
          WL.push_back({Succ,
                        ir::Value::reg(PhiIt->second, AI.Ty),
                        PPoint::entryOf(G.name(Succ))});
        }
      } else if (!Visited[Succ]) {
        Visited[Succ] = true;
        WL.push_back({Succ, V, From});
      }
    }
  }
  ++Promoted;
}

uint64_t Promoter::run() {
  // Collect promotable allocas first; slots are stable under the edits.
  std::vector<AllocaInfo> Candidates;
  for (const BasicBlock &Blk : F.Blocks)
    for (size_t I = 0; I != Blk.Insts.size(); ++I)
      if (Blk.Insts[I].opcode() == Opcode::Alloca)
        if (auto AI = analyze(B.slotOfSrc(Blk.Name, I)))
          Candidates.push_back(std::move(*AI));

  for (AllocaInfo &AI : Candidates) {
    if (trySingleStore(AI))
      continue;
    if (trySingleBlock(AI))
      continue;
    promoteGeneral(AI);
  }
  return Promoted;
}

} // namespace

PassResult Mem2Reg::run(const ir::Module &Src, bool GenProof) {
  PassResult Out;
  Out.Tgt = Src;
  for (ir::Function &F : Out.Tgt.Funcs) {
    ProofBuilder B(F);
    Promoter P(B, Bugs, GenProof);
    Out.Rewrites += P.run();
    auto R = B.finalize();
    F = R.TgtF;
    if (GenProof)
      Out.Proof.Functions[F.Name] = std::move(R.FProof);
  }
  return Out;
}
