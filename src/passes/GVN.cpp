//===- passes/GVN.cpp -------------------------------------------*- C++ -*-===//

#include "passes/GVN.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "proofgen/ProofBuilder.h"

#include <algorithm>
#include <cassert>

using namespace crellvm;
using namespace crellvm::passes;
using namespace crellvm::erhl;
using namespace crellvm::ir;
using proofgen::PPoint;
using proofgen::ProofBuilder;
using SlotId = ProofBuilder::SlotId;

namespace {

bool isCommutative(Opcode Op) {
  return Op == Opcode::Add || Op == Opcode::Mul || Op == Opcode::And ||
         Op == Opcode::Or || Op == Opcode::Xor;
}

Expr rhsExpr(const Instruction &I) {
  auto P = [](const ir::Value &V) { return ValT::phy(V); };
  const auto &Ops = I.operands();
  if (isBinaryOp(I.opcode()))
    return Expr::bop(I.opcode(), I.type(), P(Ops[0]), P(Ops[1]));
  if (isCast(I.opcode()))
    return Expr::cast(I.opcode(), I.type(), P(Ops[0]));
  if (I.opcode() == Opcode::ICmp)
    return Expr::icmp(I.icmpPred(), P(Ops[0]), P(Ops[1]));
  if (I.opcode() == Opcode::Select)
    return Expr::select(I.type(), P(Ops[0]), P(Ops[1]), P(Ops[2]));
  assert(I.opcode() == Opcode::Gep);
  return Expr::gep(I.isInbounds(), P(Ops[0]), P(Ops[1]));
}

/// GVN-PRE over one function.
class GvnRunner {
public:
  GvnRunner(ProofBuilder &B, const BugConfig &Bugs, bool GenProof)
      : B(B), Bugs(Bugs), GenProof(GenProof), F(B.srcFunction()), G(F),
        DT(G) {}

  uint64_t run() {
    for (size_t Blk : G.rpo()) {
      const std::string &Name = G.name(Blk);
      for (SlotId S : B.slotsOf(Name))
        processSlot(S);
    }
    return Eliminated;
  }

private:
  struct Leader {
    std::string Reg;
    SlotId Slot;
    Instruction Inst;
  };

  // --- Utilities ------------------------------------------------------------
  size_t slotIndexInBlock(SlotId S) const {
    auto Slots = B.slotsOf(B.blockOf(S));
    auto It = std::find(Slots.begin(), Slots.end(), S);
    return static_cast<size_t>(It - Slots.begin());
  }

  bool slotDominates(SlotId A, SlotId Bslot) const {
    size_t BA = G.index(B.blockOf(A));
    size_t BB = G.index(B.blockOf(Bslot));
    if (BA != BB)
      return DT.dominates(BA, BB);
    return slotIndexInBlock(A) < slotIndexInBlock(Bslot);
  }

  /// Does the definition at \p A dominate the end of block \p Blk?
  bool slotDominatesBlockEnd(SlotId A, size_t Blk) const {
    size_t BA = G.index(B.blockOf(A));
    return BA == Blk || DT.dominates(BA, Blk);
  }

  /// Does the definition of value \p V dominate the end of block \p Blk?
  bool valueDefDominatesBlockEnd(const ir::Value &V, size_t Blk) const {
    if (!V.isReg())
      return true;
    std::string DefBlock;
    size_t DefIdx;
    if (!F.findDef(V.regName(), DefBlock, DefIdx))
      return false;
    if (DefBlock.empty())
      return true; // parameter
    size_t DB = G.index(DefBlock);
    return DB == Blk || DT.dominates(DB, Blk);
  }

  /// Is \p I eligible for value numbering?
  bool eligible(const Instruction &I) const {
    if (!I.result() || I.type().isVec())
      return false;
    for (const ir::Value &V : I.operands()) {
      if (V.type().isVec())
        return false;
      if (V.isReg() && Replaced.count(V.regName()))
        return false; // one merge per chain per run; the pipeline iterates
    }
    if (isBinaryOp(I.opcode()) || isCast(I.opcode()))
      return true;
    switch (I.opcode()) {
    case Opcode::ICmp:
    case Opcode::Select:
    case Opcode::Gep:
      return true;
    default:
      return false;
    }
  }

  /// The value-numbering key of \p I: a canonical expression rendering
  /// with commutative operands sorted. \p DropInbounds reproduces the
  /// PR28562/PR29057 confusion.
  std::string keyOf(const Instruction &I, bool DropInbounds) const {
    Instruction K = I.withResult("");
    if (isBinaryOp(K.opcode()) && isCommutative(K.opcode()) &&
        K.operands()[1] < K.operands()[0])
      std::swap(K.operands()[0], K.operands()[1]);
    if (K.opcode() == Opcode::Gep && DropInbounds)
      K.setInbounds(false);
    return K.str();
  }

  Infrule mkRule(InfruleKind K, Side S, std::vector<Expr> Args) const {
    Infrule R;
    R.K = K;
    R.S = S;
    R.Args = std::move(Args);
    return R;
  }
  static Expr val(const ir::Value &V) { return Expr::val(ValT::phy(V)); }

  /// Replaces all uses of \p Y with \p V, recording the relational
  /// assertions through ghost \p Ghost (Appendix C value assertions).
  void rewireUses(SlotId YSlot, const std::string &Y, ir::Type Ty,
                  const ir::Value &V, const std::string &Ghost) {
    std::vector<PPoint> UsePoints;
    for (const BasicBlock &Blk : F.Blocks) {
      for (SlotId U : B.slotsOf(Blk.Name)) {
        if (U == YSlot)
          continue;
        if (Instruction *TI = B.tgtAt(U)) {
          // Rewriting the divisor of a trapping operation needs the
          // division-by-zero analysis the validator lacks (#NS, paper S7).
          if (isBinaryOp(TI->opcode()) && mayTrap(TI->opcode()) &&
              TI->operands()[1].isReg() &&
              TI->operands()[1].regName() == Y)
            B.markNotSupported("division-by-zero analysis");
          if (TI->replaceUses(Y, V))
            UsePoints.push_back(PPoint::beforeSlot(U));
        }
      }
      for (ir::Phi &P : B.tgtPhis(Blk.Name))
        for (auto &In : P.Incoming)
          if (In.second.isReg() && In.second.regName() == Y) {
            In.second = V;
            UsePoints.push_back(PPoint::endOf(In.first));
          }
    }
// PROOFGEN-BEGIN
    if (!GenProof)
      return;
    ValT GhostV = ValT::ghost(Ghost, Ty);
    ir::Value YReg = ir::Value::reg(Y, Ty);
    for (const PPoint &P : UsePoints) {
      B.assn(Pred::lessdef(val(YReg), Expr::val(GhostV)), Side::Src,
             PPoint::afterSlot(YSlot), P);
      B.assn(Pred::lessdef(Expr::val(GhostV), val(V)), Side::Tgt,
             PPoint::afterSlot(YSlot), P);
    }
  }
// PROOFGEN-END

  // --- Full redundancy --------------------------------------------------------
  bool tryFullRedundancy(SlotId S, const Instruction &I) {
    std::string Key = keyOf(I, Bugs.GvnIgnoreInbounds);
    auto It = Leaders.find(Key);
    if (It == Leaders.end())
      return false;
    const Leader *L = nullptr;
    for (const Leader &Cand : It->second)
      if (slotDominates(Cand.Slot, S)) {
        L = &Cand;
        break;
      }
    if (!L)
      return false;

    std::string Y = *I.result();
    ir::Type Ty = I.type();
    ir::Value X = ir::Value::reg(L->Reg, Ty);
    std::string Ghost = B.freshGhost(Y);

    B.removeTgt(S);
    Replaced.insert(Y);
    B.maydiffGlobal(RegT{Y, Tag::Phy});
    ++Eliminated;

// PROOFGEN-BEGIN
    if (GenProof) {
      // Leader value assertion (Appendix C RET): its expression still
      // names its register at the replacement site.
      B.assn(Pred::lessdef(rhsExpr(L->Inst), val(X)), Side::Src,
             PPoint::afterSlot(L->Slot), PPoint::beforeSlot(S));
      B.inf(mkRule(InfruleKind::IntroGhost, Side::Src,
                   {Expr::val(ValT::ghost(Ghost, Ty)), val(X)}),
            S);
      B.enableAuto("gvn_pre");
    }
// PROOFGEN-END
    rewireUses(S, Y, Ty, X, Ghost);
    return true;
  }

  // --- Partial redundancy ------------------------------------------------------
  struct PredPlan {
    enum class Kind { Leader, BranchConst, Insert } K;
    std::string PredName;
    // Leader:
    const Leader *L = nullptr;
    // BranchConst:
    std::string CondReg;
    SlotId CondSlot = 0;
    ir::Value WReg;     // the register compared against the constant
    SlotId WSlot = 0;   // its defining slot
    ir::Value Const;    // the constant the edge pins
  };

  bool tryPRE(SlotId S, const Instruction &I) {
    size_t Blk = G.index(B.blockOf(S));
    const auto &Preds = G.preds(Blk);
    if (Preds.size() < 2)
      return false;
    // Every per-predecessor plan below rests on dominance facts
    // (leaderAtBlockEnd, valueDefDominatesBlockEnd), and dominance is
    // meaningless in dead code: an unreachable predecessor would always
    // fall through to the Insert plan and plant the computation in a
    // dead block. Bail instead of deciding anything from such queries.
    for (size_t P : Preds)
      if (!G.isReachable(P))
        return false;
    // Operands must be available at every predecessor's end.
    for (const ir::Value &V : I.operands())
      for (size_t P : Preds)
        if (!valueDefDominatesBlockEnd(V, P))
          return false;

    bool DropInb = Bugs.GvnIgnoreInboundsPRE || Bugs.GvnIgnoreInbounds;
    std::string Key = keyOf(I, DropInb);
    bool Trapping = isBinaryOp(I.opcode()) && mayTrap(I.opcode());

    std::vector<PredPlan> Plans;
    unsigned Inserts = 0;
    for (size_t P : Preds) {
      PredPlan Plan;
      Plan.PredName = G.name(P);
      if (const Leader *L = leaderAtBlockEnd(Key, P)) {
        Plan.K = PredPlan::Kind::Leader;
        Plan.L = L;
      } else if (findBranchConst(Key, P, Blk, Plan)) {
        Plan.K = PredPlan::Kind::BranchConst;
      } else {
        Plan.K = PredPlan::Kind::Insert;
        ++Inserts;
        // Insertion needs an edge that is not critical.
        if (G.succs(P).size() != 1)
          return false;
        if (Trapping && !Bugs.GvnPREWrongLeader)
          return false; // might introduce a trap (D38619 class)
      }
      Plans.push_back(std::move(Plan));
    }
    if (Inserts > 1)
      return false;

    // --- Transformation.
    std::string Y = *I.result();
    ir::Type Ty = I.type();
    std::string Y4 = Y + ".pre";
    std::string Ghost = B.freshGhost(Y);
    Expr E = rhsExpr(I);
    ValT GhostV = ValT::ghost(Ghost, Ty);

    ir::Phi NewPhi{Y4, Ty, {}};
    for (PredPlan &Plan : Plans) {
      ir::Value Incoming;
      switch (Plan.K) {
      case PredPlan::Kind::Leader:
        Incoming = ir::Value::reg(Plan.L->Reg, Ty);
        break;
      case PredPlan::Kind::BranchConst:
        Incoming = Plan.Const;
        break;
      case PredPlan::Kind::Insert: {
        std::string Ins = Y + ".pre.ins";
        SlotId NewSlot = B.insertTgtBeforeTerminator(
            Plan.PredName, I.withResult(Ins));
        B.maydiffGlobal(RegT{Ins, Tag::Phy});
        Incoming = ir::Value::reg(Ins, Ty);
// PROOFGEN-BEGIN
        if (GenProof)
          B.assn(Pred::lessdef(E, val(Incoming)), Side::Tgt,
                 PPoint::afterSlot(NewSlot), PPoint::endOf(Plan.PredName));
// PROOFGEN-END
        break;
      }
      }
      NewPhi.setIncoming(Plan.PredName, Incoming);
    }
    const std::string &BlkName = B.blockOf(S);
    B.insertTgtPhi(BlkName, NewPhi);
    B.maydiffGlobal(RegT{Y4, Tag::Phy});
    B.removeTgt(S);
    Replaced.insert(Y);
    B.maydiffGlobal(RegT{Y, Tag::Phy});
    ++Eliminated;

// PROOFGEN-BEGIN
    if (GenProof) {
      for (const PredPlan &Plan : Plans) {
        B.infAtPhi(mkRule(InfruleKind::IntroGhost, Side::Src,
                          {Expr::val(GhostV), E}),
                   BlkName, Plan.PredName);
        if (Plan.K == PredPlan::Kind::Leader) {
          B.assn(Pred::lessdef(rhsExpr(Plan.L->Inst),
                               val(ir::Value::reg(Plan.L->Reg, Ty))),
                 Side::Tgt, PPoint::afterSlot(Plan.L->Slot),
                 PPoint::endOf(Plan.PredName));
        } else if (Plan.K == PredPlan::Kind::BranchConst) {
          const Instruction *CondDef = B.tgtAt(Plan.CondSlot);
          const Instruction *WDef = B.tgtAt(Plan.WSlot);
          B.assn(Pred::lessdef(rhsExpr(*WDef), val(Plan.WReg)), Side::Tgt,
                 PPoint::afterSlot(Plan.WSlot), PPoint::endOf(Plan.PredName));
          B.assn(
              Pred::lessdef(rhsExpr(*CondDef),
                            val(ir::Value::reg(Plan.CondReg,
                                               ir::Type::intTy(1)))),
              Side::Tgt, PPoint::afterSlot(Plan.CondSlot),
              PPoint::endOf(Plan.PredName));
          // Fig. 15: the taken branch pins the compared value.
          B.infAtPhi(
              mkRule(InfruleKind::IcmpToEq, Side::Tgt,
                     {val(ir::Value::reg(Plan.CondReg, ir::Type::intTy(1))),
                      val(Plan.WReg), val(Plan.Const)}),
              BlkName, Plan.PredName);
        }
      }
      // The value-number facts at the head of the block (Fig. 15's v-hat
      // assertions): E >= y-hat (src) and y-hat >= y4 (tgt).
      B.assn(Pred::lessdef(E, Expr::val(GhostV)), Side::Src,
             PPoint::entryOf(BlkName), PPoint::beforeSlot(S));
      B.assn(Pred::lessdef(Expr::val(GhostV),
                           val(ir::Value::reg(Y4, Ty))),
             Side::Tgt, PPoint::entryOf(BlkName), PPoint::beforeSlot(S));
      B.enableAuto("gvn_pre");
    }
    rewireUses(S, Y, Ty, ir::Value::reg(Y4, Ty), Ghost);
// PROOFGEN-END
    return true;
  }

  const Leader *leaderAtBlockEnd(const std::string &Key, size_t Blk) {
    auto It = Leaders.find(Key);
    if (It == Leaders.end())
      return nullptr;
    for (const Leader &Cand : It->second)
      if (slotDominatesBlockEnd(Cand.Slot, Blk))
        return &Cand;
    return nullptr;
  }

  /// Fig. 15 branch-derived constants: the edge P -> Blk is the true edge
  /// of `br i1 c` with `c := icmp eq w C` and VN(w) == Key.
  bool findBranchConst(const std::string &Key, size_t P, size_t Blk,
                       PredPlan &Plan) {
    const BasicBlock *PB = F.getBlock(G.name(P));
    const Instruction &Term = PB->terminator();
    if (Term.opcode() != Opcode::CondBr)
      return false;
    if (Term.successors()[0] != G.name(Blk) ||
        Term.successors()[1] == G.name(Blk))
      return false;
    const ir::Value &Cond = Term.operands()[0];
    if (!Cond.isReg())
      return false;
    std::string CondDefBlock;
    size_t CondDefIdx;
    if (!F.findDef(Cond.regName(), CondDefBlock, CondDefIdx) ||
        CondDefBlock.empty() || CondDefIdx == ~size_t(0))
      return false;
    SlotId CondSlot = B.slotOfSrc(CondDefBlock, CondDefIdx);
    const Instruction *CondDef = B.tgtAt(CondSlot);
    if (!CondDef || CondDef->opcode() != Opcode::ICmp ||
        CondDef->icmpPred() != IcmpPred::Eq)
      return false;
    const ir::Value &W = CondDef->operands()[0];
    const ir::Value &C = CondDef->operands()[1];
    if (!W.isReg() || !C.isConstInt())
      return false;
    std::string WDefBlock;
    size_t WDefIdx;
    if (!F.findDef(W.regName(), WDefBlock, WDefIdx) || WDefBlock.empty() ||
        WDefIdx == ~size_t(0))
      return false;
    SlotId WSlot = B.slotOfSrc(WDefBlock, WDefIdx);
    const Instruction *WDef = B.tgtAt(WSlot);
    if (!WDef || !eligible(*WDef))
      return false;
    bool DropInb = Bugs.GvnIgnoreInboundsPRE || Bugs.GvnIgnoreInbounds;
    if (keyOf(*WDef, DropInb) != Key)
      return false;
    if (!slotDominatesBlockEnd(WSlot, P) ||
        !slotDominatesBlockEnd(CondSlot, P))
      return false;
    Plan.CondReg = Cond.regName();
    Plan.CondSlot = CondSlot;
    Plan.WReg = ir::Value::reg(W.regName(), WDef->type());
    Plan.WSlot = WSlot;
    Plan.Const = C;
    return true;
  }

  void processSlot(SlotId S) {
    const Instruction *IP = B.tgtAt(S);
    if (!IP)
      return;
    const Instruction I = *IP;
    if (!eligible(I))
      return;
    const Instruction *Orig = B.srcAt(S);
    if (!Orig || I != *Orig)
      return; // touched by an earlier rewrite, or target-only
    if (tryFullRedundancy(S, I))
      return;
    if (tryPRE(S, I))
      return;
    // Record as a leader for later occurrences.
    Leaders[keyOf(I, Bugs.GvnIgnoreInbounds)].push_back(
        Leader{*I.result(), S, I});
  }

  ProofBuilder &B;
  const BugConfig &Bugs;
  bool GenProof;
  const ir::Function &F;
  analysis::CFG G;
  analysis::DomTree DT;
  std::map<std::string, std::vector<Leader>> Leaders;
  std::set<std::string> Replaced;
  uint64_t Eliminated = 0;
};

} // namespace

PassResult GVN::run(const ir::Module &Src, bool GenProof) {
  PassResult Out;
  Out.Tgt = Src;
  for (ir::Function &F : Out.Tgt.Funcs) {
    ProofBuilder B(F);
    GvnRunner R(B, Bugs, GenProof);
    Out.Rewrites += R.run();
    auto Res = B.finalize();
    F = Res.TgtF;
    if (GenProof)
      Out.Proof.Functions[F.Name] = std::move(Res.FProof);
  }
  return Out;
}
