//===- passes/GVN.h - Global value numbering with PRE -----------*- C++ -*-===//
///
/// \file
/// Global value numbering with partial-redundancy elimination (paper
/// Appendix C). Pure instructions are keyed by their expressions
/// (commutative operations normalized); a later instruction whose key has
/// a dominating leader is removed and its uses are rewired to the leader.
/// PRE eliminates an instruction that is redundant along every incoming
/// edge of its block — through a dominating leader, through a
/// branch-derived constant (the icmp_to_eq reasoning of Fig. 15), or by
/// inserting the expression into the one predecessor that misses it — by
/// building a phi node.
///
/// Proof generation follows Appendix C: a ghost register per eliminated
/// instruction plays the role of the value number (the v-hat registers of
/// Fig. 15), leader value assertions are propagated to the replacement
/// site, and the gvn_pre automation (commutativity + substitution +
/// transitivity) closes the chains.
///
/// Injected bugs (DESIGN.md §4):
///  - GvnIgnoreInbounds (PR28562): gep inbounds and plain gep share a
///    value number, so one replaces the other — introducing poison.
///  - GvnIgnoreInboundsPRE (PR29057): the same confusion in PRE leader
///    matching.
///  - GvnPREWrongLeader (modeled after D38619): PRE inserts a trapping
///    expression (a division) into a predecessor, introducing UB.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PASSES_GVN_H
#define CRELLVM_PASSES_GVN_H

#include "passes/Pass.h"

namespace crellvm {
namespace passes {

/// Proof-generating GVN-PRE.
class GVN : public Pass {
public:
  explicit GVN(const BugConfig &Bugs) : Bugs(Bugs) {}

  std::string name() const override { return "gvn"; }
  PassResult run(const ir::Module &Src, bool GenProof) override;

private:
  BugConfig Bugs;
};

} // namespace passes
} // namespace crellvm

#endif // CRELLVM_PASSES_GVN_H
