//===- passes/InstCombine.h - Peephole micro-optimizations ------*- C++ -*-===//
///
/// \file
/// The instruction-combining pass: a catalog of peephole micro-
/// optimizations in the style of the paper's Appendix D list (assoc-add,
/// add-zero, and-de-morgan, ...), each paired with the proof-generation
/// code of Algorithm 1: definition assertions between the matched
/// definition and the rewrite site, one fused arithmetic inference rule at
/// the rewrite line, and the reduce_maydiff / transitivity automation.
///
/// Micro-optimizations come in three shapes:
///  - in-place rewrites (y := add x 2 becomes y := add a 3);
///  - folds, which remove the instruction and replace every use with an
///    existing value or constant (justified through a ghost register when
///    the replacement is a register, §3.2);
///  - dead-code elimination of unused pure instructions.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PASSES_INSTCOMBINE_H
#define CRELLVM_PASSES_INSTCOMBINE_H

#include "passes/Pass.h"

#include <map>

namespace crellvm {
namespace passes {

/// Proof-generating instruction combiner.
class InstCombine : public Pass {
public:
  explicit InstCombine(const BugConfig &Bugs) : Bugs(Bugs) {}

  std::string name() const override { return "instcombine"; }
  PassResult run(const ir::Module &Src, bool GenProof) override;

  /// Rewrites per micro-optimization name, accumulated across runs.
  const std::map<std::string, uint64_t> &rewriteCounts() const {
    return Counts;
  }

  /// Names of all installed micro-optimizations.
  static std::vector<std::string> microOptNames();

private:
  BugConfig Bugs;
  std::map<std::string, uint64_t> Counts;
};

} // namespace passes
} // namespace crellvm

#endif // CRELLVM_PASSES_INSTCOMBINE_H
