//===- passes/Pipeline.cpp --------------------------------------*- C++ -*-===//

#include "passes/Pipeline.h"

#include "passes/GVN.h"
#include "passes/InstCombine.h"
#include "passes/LICM.h"
#include "passes/Mem2Reg.h"

using namespace crellvm;
using namespace crellvm::passes;

std::vector<std::unique_ptr<Pass>>
crellvm::passes::makeO2Pipeline(const BugConfig &Bugs) {
  std::vector<std::unique_ptr<Pass>> Pipeline;
  Pipeline.push_back(std::make_unique<Mem2Reg>(Bugs));
  Pipeline.push_back(std::make_unique<InstCombine>(Bugs));
  Pipeline.push_back(std::make_unique<LICM>(Bugs));
  Pipeline.push_back(std::make_unique<GVN>(Bugs));
  Pipeline.push_back(std::make_unique<InstCombine>(Bugs));
  return Pipeline;
}

std::unique_ptr<Pass> crellvm::passes::makePass(const std::string &Name,
                                                const BugConfig &Bugs) {
  if (Name == "mem2reg")
    return std::make_unique<Mem2Reg>(Bugs);
  if (Name == "instcombine")
    return std::make_unique<InstCombine>(Bugs);
  if (Name == "licm")
    return std::make_unique<LICM>(Bugs);
  if (Name == "gvn")
    return std::make_unique<GVN>(Bugs);
  return nullptr;
}
