//===- passes/Pass.h - Common pass interface --------------------*- C++ -*-===//
///
/// \file
/// The interface shared by the four proof-generating optimization passes
/// (instcombine, mem2reg, gvn, licm). A pass can run in two modes,
/// mirroring the paper's Fig. 1: the plain mode produces only the target
/// module (the "original optimizer", time column Orig); the proof mode
/// additionally produces the translation proof (time column PCal). Both
/// modes perform the identical transformation, which llvm-diff-style
/// alpha-equivalence checking confirms in the driver.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PASSES_PASS_H
#define CRELLVM_PASSES_PASS_H

#include "passes/BugConfig.h"
#include "proofgen/Proof.h"

namespace crellvm {
namespace passes {

/// Result of running a pass over a module.
struct PassResult {
  ir::Module Tgt;
  proofgen::Proof Proof; ///< empty in plain mode
  /// How many rewrite opportunities fired (used by the workload shaping
  /// and the benches' #V accounting).
  uint64_t Rewrites = 0;
};

/// A proof-generating optimization pass.
class Pass {
public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  /// Runs the pass. \p GenProof selects proof mode.
  virtual PassResult run(const ir::Module &Src, bool GenProof) = 0;
};

} // namespace passes
} // namespace crellvm

#endif // CRELLVM_PASSES_PASS_H
