//===- passes/BugConfig.h - Historical bug injection ------------*- C++ -*-===//
///
/// \file
/// Switches that re-introduce the historical LLVM miscompilation bugs the
/// paper found (DESIGN.md §4), so that the benches can reproduce the
/// paper's validation-failure counts for LLVM 3.7.1 and 5.0.1:
///
///   Mem2RegUndefLoop         PR24179 [5]  — single-block fast path
///   Mem2RegConstexprSpeculate PR33673 [9] — constant expressions assumed
///                                           trap-free (caught only by
///                                           rule verification)
///   GvnIgnoreInbounds        PR28562 [6]  — gep inbounds equated with gep
///   GvnIgnoreInboundsPRE     PR29057 [7]  — same root cause in PRE
///   GvnPREWrongLeader        D38619 [11]  — performScalarPREInsertion
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PASSES_BUGCONFIG_H
#define CRELLVM_PASSES_BUGCONFIG_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace crellvm {
namespace passes {

/// Which injected historical bugs are active.
struct BugConfig {
  bool Mem2RegUndefLoop = false;
  bool Mem2RegConstexprSpeculate = false;
  bool GvnIgnoreInbounds = false;
  bool GvnIgnoreInboundsPRE = false;
  bool GvnPREWrongLeader = false;
  /// Test-only (not part of any historical preset): instcombine rewrites
  /// add a b -> or a b for *arbitrary* operands, justified by the
  /// AddDisjointOr infrule. With the rule's side condition intact the
  /// checker rejects the proof; with the check weakened
  /// (erhl::setWeakenedDisjointOrCheck) the checker accepts it and only
  /// the differential-execution oracle exposes the miscompile.
  bool UnsoundAddToOr = false;

  /// All bugs present: the state of LLVM 3.7.1 when the paper's study
  /// began.
  static BugConfig llvm371() {
    BugConfig C;
    C.Mem2RegUndefLoop = true;
    C.Mem2RegConstexprSpeculate = true;
    C.GvnIgnoreInbounds = true;
    C.GvnIgnoreInboundsPRE = true;
    C.GvnPREWrongLeader = true;
    return C;
  }
  /// LLVM 5.0.1 before the D38619 GVN patch (paper Fig. 9-11): the
  /// mem2reg and gvn-inbounds reports were fixed, D38619 was not.
  /// PR33673 remained unfixed (paper §7 "has not been fixed yet") but
  /// produces no validation failures.
  static BugConfig llvm501PreGvnPatch() {
    BugConfig C;
    C.GvnPREWrongLeader = true;
    C.Mem2RegConstexprSpeculate = true;
    return C;
  }
  /// LLVM 5.0.1 after the GVN patch (paper Fig. 12-14).
  static BugConfig llvm501PostGvnPatch() {
    BugConfig C;
    C.Mem2RegConstexprSpeculate = true;
    return C;
  }
  /// Everything fixed.
  static BugConfig fixed() { return BugConfig(); }

  /// Resolves a preset name: the four compiler-version presets
  /// (371 | 501pre | 501post | fixed) or a single historical bug by its
  /// report id (pr24179 | pr33673 | pr28562 | pr29057 | d38619). The
  /// flag-level names are what the campaign's bug-hunt mode plants one at
  /// a time; every CLI and the wire protocol accept them uniformly.
  static std::optional<BugConfig> byName(const std::string &Name);

  /// The 4+1 historical planted-bug presets, one flag each, in report
  /// order. The "+1" is PR33673, whose validation succeeds (the unsound
  /// constexpr_no_ub rule is installed) and which only the differential
  /// -execution oracle exposes end-to-end.
  static const std::vector<std::pair<std::string, BugConfig>> &
  historicalPresets();

  std::string str() const;
};

} // namespace passes
} // namespace crellvm

#endif // CRELLVM_PASSES_BUGCONFIG_H
