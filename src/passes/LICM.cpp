//===- passes/LICM.cpp ------------------------------------------*- C++ -*-===//

#include "passes/LICM.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "proofgen/ProofBuilder.h"

#include <algorithm>

using namespace crellvm;
using namespace crellvm::passes;
using namespace crellvm::erhl;
using namespace crellvm::ir;
using proofgen::PPoint;
using proofgen::ProofBuilder;
using SlotId = ProofBuilder::SlotId;

namespace {

/// Is this a pure instruction LICM may consider?
bool isHoistableShape(const Instruction &I) {
  if (I.type().isVec())
    return false;
  if (isBinaryOp(I.opcode()) || isCast(I.opcode()))
    return true;
  switch (I.opcode()) {
  case Opcode::ICmp:
  case Opcode::Select:
    return true;
  case Opcode::Gep:
    return true; // gep only yields poison, never UB
  default:
    return false;
  }
}

/// The expression of a pure instruction with physical tags.
Expr rhsExpr(const Instruction &I) {
  auto P = [](const ir::Value &V) { return ValT::phy(V); };
  const auto &Ops = I.operands();
  if (isBinaryOp(I.opcode()))
    return Expr::bop(I.opcode(), I.type(), P(Ops[0]), P(Ops[1]));
  if (isCast(I.opcode()))
    return Expr::cast(I.opcode(), I.type(), P(Ops[0]));
  if (I.opcode() == Opcode::ICmp)
    return Expr::icmp(I.icmpPred(), P(Ops[0]), P(Ops[1]));
  if (I.opcode() == Opcode::Select)
    return Expr::select(I.type(), P(Ops[0]), P(Ops[1]), P(Ops[2]));
  return Expr::gep(I.isInbounds(), P(Ops[0]), P(Ops[1]));
}

uint64_t hoistInFunction(ProofBuilder &B, bool GenProof) {
  const ir::Function &F = B.srcFunction();
  analysis::CFG G(F);
  analysis::DomTree DT(G);
  analysis::LoopInfo LI(F, G, DT);
  uint64_t Hoisted = 0;

  for (const analysis::Loop &L : LI.loops()) {
    if (!L.hasPreheader())
      continue;
    // Re-check the preheader precondition independently of LoopInfo: a
    // definition hoisted into the preheader is only valid if that block
    // is reachable and dominates the header (and with it every in-loop
    // use). Bail, never "hoist and hope" — an invalid target module
    // would defeat the whole validation story.
    if (!G.isReachable(L.Preheader) || !G.isReachable(L.Header) ||
        !DT.dominates(L.Preheader, L.Header))
      continue;
    const std::string &PreheaderName = G.name(L.Preheader);

    // Latches: in-loop predecessors of the header. A hoisted instruction
    // must dominate all of them, so every path around the loop recomputes
    // it on the source side.
    std::vector<size_t> Latches;
    for (size_t P : G.preds(L.Header))
      if (L.contains(P))
        Latches.push_back(P);

    // Registers invariant for this loop: defined outside, or hoisted.
    auto DefinedInLoop = [&](const ir::Value &V) {
      if (!V.isReg())
        return false;
      std::string DefBlock;
      size_t DefIdx;
      if (!F.findDef(V.regName(), DefBlock, DefIdx))
        return true; // unknown: be conservative
      if (DefBlock.empty())
        return false; // parameter
      return L.contains(G.index(DefBlock));
    };
    std::set<std::string> HoistedRegs;

    // Visit loop blocks in dominance-friendly (RPO) order so dependent
    // invariant chains hoist in one round.
    for (size_t Blk : G.rpo()) {
      if (!L.contains(Blk))
        continue;
      bool DominatesLatches = true;
      for (size_t Latch : Latches)
        if (!DT.dominates(Blk, Latch))
          DominatesLatches = false;
      if (!DominatesLatches)
        continue;
      const std::string &BlkName = G.name(Blk);

      for (SlotId S : B.slotsOf(BlkName)) {
        const Instruction *IP = B.tgtAt(S);
        if (!IP)
          continue;
        // Copy: the insertion below reallocates the slot table.
        const Instruction I = *IP;
        if (!isHoistableShape(I) || !I.result())
          continue;
        bool Invariant = true;
        for (const ir::Value &V : I.operands())
          if (DefinedInLoop(V) && !HoistedRegs.count(V.regName()))
            Invariant = false;
        if (!Invariant)
          continue;
        bool Trapping = isBinaryOp(I.opcode()) && mayTrap(I.opcode());
        if (Trapping) {
          // Hoisting a division is only safe with a constant nonzero
          // divisor; even then the validator has no division-by-zero
          // analysis, so the translation is performed but #NS.
          const ir::Value &Divisor = I.operands()[1];
          if (!Divisor.isConstInt() || Divisor.intValue() == 0)
            continue;
        }

        // Hoist: define x in the preheader on the target side, make the
        // in-loop line a target lnop.
        SlotId NewSlot = B.insertTgtBeforeTerminator(PreheaderName, I);
        B.removeTgt(S);
        HoistedRegs.insert(*I.result());
        ++Hoisted;

// PROOFGEN-BEGIN
        if (!GenProof)
          continue;
        if (Trapping) {
          B.markNotSupported("division-by-zero analysis");
          continue;
        }
        RegT X{*I.result(), Tag::Phy};
        Expr E = rhsExpr(I);
        Expr XV = Expr::val(ValT::phy(ir::Value::reg(*I.result(),
                                                     I.type())));
        B.maydiffBetween(X, NewSlot, S);
        B.assn(Pred::lessdef(E, XV), Side::Tgt, PPoint::afterSlot(NewSlot),
               PPoint::beforeSlot(S));
        B.enableAuto("transitivity");
        B.enableAuto("reduce_maydiff");
// PROOFGEN-END
      }
    }
  }
  return Hoisted;
}

} // namespace

PassResult LICM::run(const ir::Module &Src, bool GenProof) {
  PassResult Out;
  Out.Tgt = Src;
  for (ir::Function &F : Out.Tgt.Funcs) {
    ProofBuilder B(F);
    Out.Rewrites += hoistInFunction(B, GenProof);
    auto R = B.finalize();
    F = R.TgtF;
    if (GenProof)
      Out.Proof.Functions[F.Name] = std::move(R.FProof);
  }
  return Out;
}
