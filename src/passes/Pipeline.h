//===- passes/Pipeline.h - The -O2-style pass pipeline ----------*- C++ -*-===//
///
/// \file
/// The optimization pipeline the experiments compile with: mem2reg first
/// (as clang -O2 does via SROA), then instcombine, then licm, then gvn,
/// then a final instcombine cleanup — each step a separately validated
/// translation (paper §7 "we compiled each benchmark program with the -O2
/// flag and validated the intermediate translations").
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PASSES_PIPELINE_H
#define CRELLVM_PASSES_PIPELINE_H

#include "passes/Pass.h"

#include <functional>
#include <memory>
#include <vector>

namespace crellvm {
namespace passes {

/// Creates the -O2-style pipeline in execution order.
std::vector<std::unique_ptr<Pass>> makeO2Pipeline(const BugConfig &Bugs);

/// Creates a single pass by name ("mem2reg", "gvn", "licm",
/// "instcombine"); nullptr for unknown names.
std::unique_ptr<Pass> makePass(const std::string &Name,
                               const BugConfig &Bugs);

} // namespace passes
} // namespace crellvm

#endif // CRELLVM_PASSES_PIPELINE_H
