//===- passes/BugConfig.cpp -------------------------------------*- C++ -*-===//

#include "passes/BugConfig.h"

using namespace crellvm;
using namespace crellvm::passes;

std::string BugConfig::str() const {
  std::string S;
  auto Add = [&S](bool On, const char *Name) {
    if (!On)
      return;
    if (!S.empty())
      S += ",";
    S += Name;
  };
  Add(Mem2RegUndefLoop, "mem2reg-undef-loop(PR24179)");
  Add(Mem2RegConstexprSpeculate, "mem2reg-constexpr(PR33673)");
  Add(GvnIgnoreInbounds, "gvn-inbounds(PR28562)");
  Add(GvnIgnoreInboundsPRE, "gvn-inbounds-pre(PR29057)");
  Add(GvnPREWrongLeader, "gvn-pre-insert(D38619)");
  Add(UnsoundAddToOr, "unsound-add-to-or(test-only)");
  return S.empty() ? "none" : S;
}
