//===- passes/BugConfig.cpp -------------------------------------*- C++ -*-===//

#include "passes/BugConfig.h"

using namespace crellvm;
using namespace crellvm::passes;

std::optional<BugConfig> BugConfig::byName(const std::string &Name) {
  if (Name == "371")
    return llvm371();
  if (Name == "501pre")
    return llvm501PreGvnPatch();
  if (Name == "501post")
    return llvm501PostGvnPatch();
  if (Name == "fixed")
    return fixed();
  for (const auto &KV : historicalPresets())
    if (KV.first == Name)
      return KV.second;
  return std::nullopt;
}

const std::vector<std::pair<std::string, BugConfig>> &
BugConfig::historicalPresets() {
  static const std::vector<std::pair<std::string, BugConfig>> Presets = [] {
    std::vector<std::pair<std::string, BugConfig>> P(5);
    P[0].first = "pr24179";
    P[0].second.Mem2RegUndefLoop = true;
    P[1].first = "pr28562";
    P[1].second.GvnIgnoreInbounds = true;
    P[2].first = "pr29057";
    P[2].second.GvnIgnoreInboundsPRE = true;
    P[3].first = "d38619";
    P[3].second.GvnPREWrongLeader = true;
    P[4].first = "pr33673";
    P[4].second.Mem2RegConstexprSpeculate = true;
    return P;
  }();
  return Presets;
}

std::string BugConfig::str() const {
  std::string S;
  auto Add = [&S](bool On, const char *Name) {
    if (!On)
      return;
    if (!S.empty())
      S += ",";
    S += Name;
  };
  Add(Mem2RegUndefLoop, "mem2reg-undef-loop(PR24179)");
  Add(Mem2RegConstexprSpeculate, "mem2reg-constexpr(PR33673)");
  Add(GvnIgnoreInbounds, "gvn-inbounds(PR28562)");
  Add(GvnIgnoreInboundsPRE, "gvn-inbounds-pre(PR29057)");
  Add(GvnPREWrongLeader, "gvn-pre-insert(D38619)");
  Add(UnsoundAddToOr, "unsound-add-to-or(test-only)");
  return S.empty() ? "none" : S;
}
