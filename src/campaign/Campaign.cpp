//===- campaign/Campaign.cpp - Campaign orchestrator + local backend ------===//

#include "campaign/Campaign.h"
#include "campaign/SweepInternal.h"

#include "driver/Driver.h"
#include "ir/Printer.h"
#include "passes/BugConfig.h"
#include "support/Resource.h"
#include "support/ThreadPool.h"
#include "workload/RandomProgram.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <ostream>

using namespace crellvm;
using namespace crellvm::campaign;

// --- Unit identity ---------------------------------------------------------

namespace {

uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Findings kept per sweep; the minimal-index one always survives, the
/// rest are a bounded sample.
constexpr size_t MaxFindingsPerSweep = 8;

} // namespace

uint64_t campaign::unitSeed(uint64_t CampaignSeed, uint64_t Index) {
  // Mixing the index before xoring with the campaign seed decorrelates
  // neighboring units; two mix rounds total keep campaigns with nearby
  // seeds unrelated too. The 63-bit mask round-trips through the wire
  // protocol's signed JSON integers unchanged.
  return splitmix64(CampaignSeed ^ splitmix64(Index + 0x633d5c4b90f0ca1full)) &
         0x7fffffffffffffffull;
}

uint64_t campaign::fnv1a64(const std::string &Bytes) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t campaign::unitFingerprint(uint64_t CampaignSeed, uint64_t Index) {
  workload::GenOptions G;
  G.Seed = unitSeed(CampaignSeed, Index);
  return fnv1a64(ir::printModule(workload::generateModule(G)));
}

const char *campaign::modeName(Mode M) {
  switch (M) {
  case Mode::Throughput:
    return "throughput";
  case Mode::Soak:
    return "soak";
  case Mode::BugHunt:
    return "bug-hunt";
  case Mode::Replay:
    return "replay";
  }
  return "?";
}

std::optional<Mode> campaign::modeByName(const std::string &Name) {
  if (Name == "throughput")
    return Mode::Throughput;
  if (Name == "soak")
    return Mode::Soak;
  if (Name == "bug-hunt")
    return Mode::BugHunt;
  if (Name == "replay")
    return Mode::Replay;
  return std::nullopt;
}

// --- Local backend ---------------------------------------------------------

void detail::runLocalSweep(Sweep &S, ThreadPool &Pool) {
  auto Bugs = passes::BugConfig::byName(S.Bugs);
  if (!Bugs) {
    S.R.TransportError = "unknown bugs preset '" + S.Bugs + "'";
    return;
  }

  driver::DriverOptions DOpts;
  // In-memory Fig. 1 exchange: verdicts are identical with or without the
  // file leg (only the I/O timing column differs), and a MLOC-scale sweep
  // must not grind the temp filesystem.
  DOpts.WriteFiles = false;
  DOpts.RunOracle = S.ForceOracle || S.Opts.Oracle;
  DOpts.Plans = S.Plans;

  UnitStream Stream(S.Opts.CampaignSeed, S.Begin, S.End);
  const auto IssueDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(S.DurationS);

  std::mutex FindMu;
  std::atomic<uint64_t> Digest{0};

  while (Stream.remaining()) {
    if (S.DurationS && std::chrono::steady_clock::now() >= IssueDeadline)
      break;

    const size_t Window = S.Opts.Window ? S.Opts.Window : 1;
    std::vector<UnitDesc> Batch;
    Batch.reserve(std::min<uint64_t>(Window, Stream.remaining()));
    while (Batch.size() < Window) {
      auto D = Stream.next();
      if (!D)
        break;
      Batch.push_back(*D);
    }
    S.R.MaxInFlight = std::max<uint64_t>(S.R.MaxInFlight, Batch.size());

    driver::BatchOptions BOpts;
    BOpts.Jobs = S.Opts.Jobs;
    BOpts.OnUnitDone = [&](size_t I, const driver::StatsMap &Unit,
                           driver::UnitOutcome Outcome,
                           const std::string &) {
      if (Outcome != driver::UnitOutcome::Ok)
        return; // tallied from the batch report
      uint64_t F = 0, Diff = 0, Div = 0;
      double Sec = 0;
      std::string FailSample, DivSample;
      for (const auto &KV : Unit) {
        const driver::PassStats &P = KV.second;
        F += P.F;
        Diff += P.DiffMismatches;
        Div += P.OracleDivergences;
        Sec += P.Orig + P.PCal + P.IO + P.PCheck + P.Oracle + P.CacheSec;
        if (FailSample.empty() && !P.FailureSamples.empty())
          FailSample = "[" + KV.first + "] " + P.FailureSamples.front();
        if (DivSample.empty() && !P.OracleSamples.empty())
          DivSample = P.OracleSamples.front(); // already "[pass]"-prefixed
      }
      S.LatencyUs.record(static_cast<uint64_t>(Sec * 1e6));
      if (S.Opts.ComputeDigest)
        Digest.fetch_xor(unitFingerprint(S.Opts.CampaignSeed, Batch[I].Index),
                         std::memory_order_relaxed);
      if (F || Diff || Div) {
        Finding Fd;
        Fd.Preset = S.Bugs;
        Fd.UnitIndex = Batch[I].Index;
        Fd.Seed = Batch[I].Seed;
        if (F) {
          Fd.Kind = "validation_failure";
          Fd.Detail = FailSample;
        } else if (Diff) {
          Fd.Kind = "diff_mismatch";
        } else {
          Fd.Kind = "oracle_divergence";
          Fd.Detail = DivSample;
        }
        std::lock_guard<std::mutex> L(FindMu);
        S.Findings.push_back(std::move(Fd));
      }
    };

    auto Rep = driver::runBatchValidated(
        *Bugs, DOpts, Batch.size(),
        [&Batch](size_t I) {
          // Exactly what `crellvm-validate --seed S` and a seed-named
          // daemon request feed the driver, so a finding replays
          // identically through every backend.
          workload::GenOptions G;
          G.Seed = Batch[I].Seed;
          return workload::generateModule(G);
        },
        BOpts, &Pool);

    S.R.Submitted += Batch.size();
    S.R.Completed +=
        Rep.Units - Rep.Cancelled - Rep.InternalErrors - Rep.TimedOut;
    S.R.InternalErrors += Rep.InternalErrors + Rep.TimedOut;
    S.R.CpuSeconds += Rep.CpuSeconds;
    S.R.JobsUsed = Rep.JobsUsed;
    for (const auto &KV : Rep.Stats) {
      S.R.V += KV.second.V;
      S.R.F += KV.second.F;
      S.R.NS += KV.second.NS;
      S.R.Diff += KV.second.DiffMismatches;
      S.R.Div += KV.second.OracleDivergences;
      S.R.PlanBuilds += KV.second.PlanBuilds;
      S.R.PlanHits += KV.second.PlanHits;
      S.R.PlanSpecialized += KV.second.PlanSpecialized;
      S.R.PlanFallbacks += KV.second.PlanFallbacks;
      S.R.PlanShadowChecks += KV.second.PlanShadowChecks;
      S.R.PlanDivergences += KV.second.PlanDivergences;
    }

    if (S.Opts.Progress && S.Opts.ProgressEveryUnits &&
        (S.R.Completed / S.Opts.ProgressEveryUnits) !=
            ((S.R.Completed - Batch.size()) / S.Opts.ProgressEveryUnits))
      *S.Opts.Progress << "campaign: " << S.R.Completed << " units done, rss "
                       << (support::currentRssBytes() >> 20) << " MiB\n";

    if (S.StopOnFinding) {
      std::lock_guard<std::mutex> L(FindMu);
      if (!S.Findings.empty())
        break;
    }
  }

  S.R.UnitsDigest ^= Digest.load(std::memory_order_relaxed);
}

// --- Orchestration ---------------------------------------------------------

namespace {

std::string describeFinding(const Finding &F) {
  return "preset=" + F.Preset + " unit=" + std::to_string(F.UnitIndex) +
         " kind=" + F.Kind;
}

} // namespace

CampaignReport campaign::runCampaign(const CampaignOptions &Opts) {
  CampaignReport R;
  R.M = Opts.M;
  R.CampaignSeed = Opts.CampaignSeed;

  Histogram Lat;
  detail::StatsWatch Watch;
  Watch.RecoveryWindow = Opts.RecoveryWindowScrapes;
  const bool UseSocket = !Opts.Socket.empty();
  std::optional<ThreadPool> Pool;
  std::optional<plan::PlanManager> Plans;
  if (!UseSocket) {
    Pool.emplace(Opts.Jobs);
    R.JobsUsed = Pool->numThreads();
    if (Opts.Plan != plan::PlanMode::Off) {
      // One plan runtime for the whole campaign: plans built on the
      // first sweep stay warm for every later sweep of the same preset.
      // Memory-only — a campaign is a single process, nothing to share.
      plan::PlanManagerOptions PO;
      PO.Mode = Opts.Plan;
      Plans.emplace(PO);
    }
  }

  const auto Start = std::chrono::steady_clock::now();

  // One preset-scoped sweep; findings come back sorted with the minimal
  // unit index first (the deterministic reproducer) and capped.
  auto RunSweep = [&](const std::string &Bugs, uint64_t Begin, uint64_t End,
                      bool StopOnFinding, uint64_t DurationS,
                      bool ForceOracle) {
    detail::Sweep S{Opts, R, Lat, &Watch, Bugs, Begin,
                    End,  StopOnFinding, DurationS, ForceOracle,
                    Plans ? &*Plans : nullptr};
    if (UseSocket)
      detail::runSocketSweep(S);
    else
      detail::runLocalSweep(S, *Pool);
    std::sort(S.Findings.begin(), S.Findings.end(),
              [](const Finding &A, const Finding &B) {
                return A.UnitIndex < B.UnitIndex;
              });
    if (S.Findings.size() > MaxFindingsPerSweep)
      S.Findings.resize(MaxFindingsPerSweep);
    R.Findings.insert(R.Findings.end(), S.Findings.begin(), S.Findings.end());
    return S.Findings;
  };

  switch (Opts.M) {
  case Mode::Throughput: {
    RunSweep(Opts.Bugs, 0, Opts.Units, false, 0, false);
    if (R.TransportError.empty()) {
      if (!R.Findings.empty())
        R.GateFailure = "unexpected finding under preset '" + Opts.Bugs +
                        "': " + describeFinding(R.Findings.front());
      else if (R.InternalErrors)
        R.GateFailure =
            std::to_string(R.InternalErrors) + " internal error(s)";
      else if (R.Rejected)
        R.GateFailure = std::to_string(R.Rejected) + " terminal rejection(s)";
    }
    break;
  }

  case Mode::Soak: {
    if (!UseSocket) {
      R.TransportError =
          "soak mode requires --socket (a running crellvm-served daemon)";
      break;
    }
    uint64_t End =
        Opts.Units ? Opts.Units : std::numeric_limits<uint64_t>::max();
    RunSweep(Opts.Bugs, 0, End, false, Opts.DurationS, false);
    if (!R.TransportError.empty())
      break;
    // Final quiesced scrape: every one of our requests has been answered
    // and counted (the daemon bumps counters before writing responses),
    // and a soak is the daemon's sole client, so the drain *equation*
    // must now hold exactly.
    std::string Err;
    auto Stats = detail::scrapeStats(Opts.Socket, Err);
    if (!Stats) {
      R.TransportError = "final stats scrape failed: " + Err;
      break;
    }
    Watch.observe(*Stats);
    ++R.StatsScrapes;
    R.StatsMonotonic = Watch.Monotonic;
    R.DrainHolds = Watch.InequalityOk && Watch.drainEquality();
    R.RecoveryOk = Watch.RecoveryOk;
    R.MemberDeathsObserved = Watch.MemberDeaths;
    R.Recoveries = Watch.Recoveries;
    if (!R.DrainHolds)
      R.GateFailure =
          "drain equation violated: accepted=" + std::to_string(Watch.Accepted) +
          " != completed=" + std::to_string(Watch.Completed) +
          " + deadline_exceeded=" + std::to_string(Watch.DeadlineExceeded) +
          " + internal_errors=" + std::to_string(Watch.InternalErrors) +
          (Watch.FirstViolation.empty() ? "" : " (" + Watch.FirstViolation + ")");
    else if (!R.StatsMonotonic)
      R.GateFailure = "stats counter regressed: " + Watch.FirstViolation;
    else if (!R.RecoveryOk)
      R.GateFailure = "recovery trajectory violated after member death: " +
                      Watch.RecoveryDetail;
    break;
  }

  case Mode::BugHunt: {
    std::vector<std::string> Presets = Opts.HuntPresets;
    if (Presets.empty())
      for (const auto &KV : passes::BugConfig::historicalPresets())
        Presets.push_back(KV.first);

    // PR33673 is checker-accepted; only the differential-execution oracle
    // sees it, and against a daemon the oracle runs (or not) server-side.
    bool DaemonOracle = false;
    if (UseSocket) {
      std::string Err;
      auto Stats = detail::scrapeStats(Opts.Socket, Err);
      if (!Stats) {
        R.TransportError = "stats scrape failed: " + Err;
        break;
      }
      const json::Value *Server = Stats->find("server");
      const json::Value *Oracle = Server ? Server->find("oracle") : nullptr;
      DaemonOracle = Oracle && Oracle->getBool();
    }

    for (const std::string &Preset : Presets) {
      if (!passes::BugConfig::byName(Preset)) {
        R.TransportError = "unknown hunt preset '" + Preset + "'";
        break;
      }
      if (Preset == "pr33673" && UseSocket && !DaemonOracle) {
        R.HuntMissed.push_back(Preset);
        R.GateFailure = "hunting pr33673 needs the daemon started with "
                        "--oracle (stats says server.oracle=false)";
        continue;
      }
      auto Found = RunSweep(Preset, 0, Opts.Units, true, 0, true);
      if (!R.TransportError.empty())
        break;
      if (Found.empty())
        R.HuntMissed.push_back(Preset);
    }
    if (R.TransportError.empty() && R.GateFailure.empty() &&
        !R.HuntMissed.empty()) {
      R.GateFailure = "bug hunt missed preset(s):";
      for (const std::string &P : R.HuntMissed)
        R.GateFailure += " " + P;
    }
    break;
  }

  case Mode::Replay: {
    RunSweep(Opts.Bugs, Opts.ReplayUnit, Opts.ReplayUnit + 1, false, 0,
             Opts.Oracle);
    // No gate: the caller inspects Findings (a replay that reproduces its
    // finding is a success story with a nonzero exit code).
    break;
  }
  }

  // Plan shadow divergence outranks every other gate verdict short of a
  // transport error: a specialized verdict that disagrees with the
  // general checker means the plan pipeline is unsound, and no clean
  // sweep can vouch for it.
  if (R.TransportError.empty() && R.PlanDivergences)
    R.GateFailure = "plan shadow divergence: " +
                    std::to_string(R.PlanDivergences) +
                    " specialized verdict(s) disagreed with the general "
                    "checker" +
                    (R.GateFailure.empty() ? "" : "; also: " + R.GateFailure);

  R.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  R.UnitsPerSecond = R.WallSeconds > 0 ? R.Completed / R.WallSeconds : 0;
  auto Snap = Lat.snapshot();
  R.P50Us = Snap.quantile(0.5);
  R.P99Us = Snap.quantile(0.99);
  R.PeakRssBytes = support::peakRssBytes();
  return R;
}
