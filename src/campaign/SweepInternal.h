//===- campaign/SweepInternal.h - Campaign backend interface ---*- C++ -*-===//
///
/// \file
/// The contract between the campaign orchestrator (Campaign.cpp) and its
/// two unit-streaming backends: the in-process windowed batch backend
/// (also Campaign.cpp) and the daemon socket backend (SocketCampaign.cpp).
/// Internal to src/campaign — nothing here is API.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CAMPAIGN_SWEEPINTERNAL_H
#define CRELLVM_CAMPAIGN_SWEEPINTERNAL_H

#include "campaign/Campaign.h"
#include "json/Json.h"
#include "support/Histogram.h"

#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace crellvm {

class ThreadPool;

namespace campaign {
namespace detail {

/// Watches scraped daemon stats documents across a campaign: every
/// monotone counter under "requests" and "verdicts" must never decrease
/// between observations, and the drain *inequality*
/// accepted >= completed + deadline_exceeded + internal_errors must hold
/// at every observation (requests still queued or running account for
/// the slack). One exception: a cluster aggregate sums live members
/// only, so an observation whose own document reports fresh member
/// deaths (cluster.router.member_deaths moved) may regress — that is a
/// rebase of the sums, not a violation. The exact drain *equation* is checked by drainEquality()
/// once the campaign — the daemon's sole client in a soak — has received
/// every response.
struct StatsWatch {
  bool Monotonic = true;
  bool InequalityOk = true;
  std::string FirstViolation; ///< human-readable first offense

  uint64_t Accepted = 0, Completed = 0, DeadlineExceeded = 0,
           InternalErrors = 0; ///< latest observation

  /// Recovery trajectory (DESIGN.md §18): against a supervised cluster
  /// router the scraped doc carries cluster.router.member_deaths. When
  /// that counter increments — a member was killed or died — the watch
  /// freezes its pre-kill steady-state throughput (an EMA of
  /// completed-units/sec across scrape intervals) as the baseline and
  /// requires the observed rate to climb back to RecoveryFraction of it
  /// within RecoveryWindow subsequent scrapes. 0 disables the check
  /// entirely; a death still pending when observations stop is
  /// inconclusive, not a failure (the drain equation is the backstop
  /// that no accepted request was lost).
  uint64_t RecoveryWindow = 0;    ///< scrapes allowed per recovery; 0 = off
  double RecoveryFraction = 0.9;  ///< of the pre-kill steady-state rate
  bool RecoveryOk = true;
  uint64_t MemberDeaths = 0;      ///< latest cluster.router.member_deaths
  uint64_t Recoveries = 0;        ///< death episodes that recovered in time
  std::string RecoveryDetail;     ///< first recovery-gate offense

  void observe(const json::Value &Stats);
  bool drainEquality() const {
    return Accepted == Completed + DeadlineExceeded + InternalErrors;
  }

private:
  std::map<std::string, uint64_t> Prev;

  // Recovery-trajectory state. The rate sample for an observation is
  // (completed delta) / (wall delta) between consecutive observe()
  // calls; the steady-state baseline is an EMA over samples taken while
  // no recovery is pending, so the degraded post-kill samples never
  // pollute it.
  bool HaveLastSample = false;
  std::chrono::steady_clock::time_point LastSampleAt;
  uint64_t LastCompleted = 0;
  bool SteadyValid = false;
  double SteadyRate = 0;          ///< EMA, completed units per second
  bool RecoveryPending = false;
  double BaselineRate = 0;        ///< SteadyRate frozen at the death
  uint64_t ScrapesSinceDeath = 0;
};

/// One preset-scoped streaming pass over the unit index range
/// [Begin, End). The orchestrator owns the shared accumulators (report
/// counters, latency histogram, stats watch); a backend fills them and
/// leaves its findings in Findings (unsorted — the orchestrator sorts by
/// unit index so the minimal reproducer leads).
struct Sweep {
  const CampaignOptions &Opts;
  CampaignReport &R;
  Histogram &LatencyUs;
  StatsWatch *Watch = nullptr; ///< socket backend only

  std::string Bugs;            ///< preset for this sweep
  uint64_t Begin = 0, End = 0;
  bool StopOnFinding = false;  ///< bug-hunt: stop issuing, then drain
  uint64_t DurationS = 0;      ///< soak: stop issuing after this long
  bool ForceOracle = false;    ///< local backend: arm the diff oracle
  /// Local backend: shared plan runtime for the whole campaign (one warm
  /// plan cache across every sweep), or nullptr when --plan=off.
  plan::PlanManager *Plans = nullptr;

  std::vector<Finding> Findings;
};

/// In-process backend: window-sized batches through runBatchValidated on
/// one warm pool. Sets R.TransportError only on an unknown preset.
void runLocalSweep(Sweep &S, ThreadPool &Pool);

/// Daemon backend: pipelines up to Window seed-named validate requests on
/// one connection, retrying queue_full rejections with seeded exponential
/// backoff and interleaving stats scrapes. Sets R.TransportError on any
/// connection or protocol failure.
void runSocketSweep(Sweep &S);

/// One-shot stats scrape on its own short-lived connection. nullopt with
/// \p Err set on failure.
std::optional<json::Value> scrapeStats(const std::string &Socket,
                                       std::string &Err);

} // namespace detail
} // namespace campaign
} // namespace crellvm

#endif // CRELLVM_CAMPAIGN_SWEEPINTERNAL_H
