//===- campaign/SocketCampaign.cpp - Daemon socket campaign backend -------===//
//
// Drives a running crellvm-served daemon over its Unix-domain socket: up
// to Window seed-named validate requests pipelined on one connection,
// topped up as responses arrive, so the daemon's admission queue sees a
// steady bounded stream rather than a thundering herd. queue_full
// rejections are retried with seeded exponential backoff (honoring the
// server's retry_after_ms hint); deliberate rejections (shutting_down,
// quarantined) are terminal. Stats scrapes ride the same connection with
// negative ids so they never collide with unit ids.
//
//===----------------------------------------------------------------------===//

#include "campaign/SweepInternal.h"

#include "ir/Printer.h"
#include "server/Protocol.h"
#include "support/Backoff.h"
#include "support/RNG.h"
#include "workload/RandomProgram.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::campaign;
using namespace crellvm::server;

namespace {

using Clock = std::chrono::steady_clock;

int connectTo(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  if (Path.size() + 1 > sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return -1;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "cannot connect to " + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

constexpr uint64_t BackoffBaseMs = 25;

struct InFlightUnit {
  UnitDesc D;
  uint64_t Tries = 0; ///< queue_full rounds already burned
};

/// Blocking hello exchange right after connect (nothing is in flight
/// yet). False only on transport failure; a daemon that rejects the
/// hello keeps the session on json.
bool negotiate(int Fd, WireCodec Want, WireCodec &Session) {
  Session = WireCodec::Json;
  if (Want == WireCodec::Json)
    return true;
  if (!writeFrame(Fd, requestToJson(helloRequest(Want))))
    return false;
  std::string Frame, Err;
  if (!readFrame(Fd, Frame, &Err))
    return false;
  auto Rsp = responseFromJson(Frame, &Err);
  if (!Rsp)
    return false;
  if (Rsp->Status != ResponseStatus::Ok)
    return true; // daemon predates negotiation: degrade, don't die
  if (auto C = codecByName(Rsp->Codec))
    Session = *C;
  return true;
}

} // namespace

// --- StatsWatch ------------------------------------------------------------

void detail::StatsWatch::observe(const json::Value &Stats) {
  // Against a supervised cluster router the aggregate sums LIVE members
  // only, so a member death between two scrapes legitimately shrinks the
  // summed counters. The same document that shows the regression also
  // carries the death (cluster.router.member_deaths), so an observation
  // with a fresh death is a rebase, not a monotonicity violation.
  uint64_t Deaths = MemberDeaths;
  if (const json::Value *Cluster = Stats.find("cluster"))
    if (const json::Value *Router = Cluster->find("router"))
      if (const json::Value *D = Router->find("member_deaths"))
        if (D->kind() == json::Value::Kind::Int)
          Deaths = static_cast<uint64_t>(D->getInt());
  const bool DeathThisObservation = Deaths > MemberDeaths;

  auto Flatten = [&](const char *Section) {
    const json::Value *Obj = Stats.find(Section);
    if (!Obj || Obj->kind() != json::Value::Kind::Object)
      return;
    for (const auto &KV : Obj->members()) {
      if (KV.second.kind() != json::Value::Kind::Int)
        continue;
      std::string Key = std::string(Section) + "." + KV.first;
      uint64_t New = static_cast<uint64_t>(KV.second.getInt());
      auto It = Prev.find(Key);
      if (It != Prev.end() && New < It->second && !DeathThisObservation &&
          Monotonic) {
        Monotonic = false;
        if (FirstViolation.empty())
          FirstViolation = Key + " went " + std::to_string(It->second) +
                           " -> " + std::to_string(New);
      }
      Prev[Key] = New;
    }
  };
  Flatten("requests");
  Flatten("verdicts");

  auto Get = [&](const char *Key) -> uint64_t {
    auto It = Prev.find(std::string("requests.") + Key);
    return It == Prev.end() ? 0 : It->second;
  };
  Accepted = Get("accepted");
  Completed = Get("completed");
  DeadlineExceeded = Get("deadline_exceeded");
  InternalErrors = Get("internal_errors");

  // Recovery trajectory: throughput sample for this interval, death
  // detection from the router section, and the bounded-window gate.
  auto Now = std::chrono::steady_clock::now();
  double Rate = -1; // < 0: no sample this observation
  if (HaveLastSample && Completed >= LastCompleted) {
    double Dt = std::chrono::duration<double>(Now - LastSampleAt).count();
    if (Dt > 0)
      Rate = (Completed - LastCompleted) / Dt;
  }
  HaveLastSample = true;
  LastSampleAt = Now;
  LastCompleted = Completed;

  if (RecoveryWindow && DeathThisObservation) {
    if (!RecoveryPending) {
      // Freeze the pre-kill steady state; later deaths inside the same
      // episode just restart the window against the same baseline.
      RecoveryPending = true;
      BaselineRate = SteadyValid ? SteadyRate : 0;
    }
    ScrapesSinceDeath = 0;
  }
  MemberDeaths = Deaths;

  if (RecoveryWindow && Rate >= 0) {
    if (RecoveryPending) {
      ++ScrapesSinceDeath;
      if (Rate >= RecoveryFraction * BaselineRate) {
        RecoveryPending = false;
        ++Recoveries;
        SteadyRate = SteadyValid ? 0.7 * SteadyRate + 0.3 * Rate : Rate;
        SteadyValid = true;
      } else if (ScrapesSinceDeath >= RecoveryWindow && RecoveryOk) {
        RecoveryOk = false;
        RecoveryDetail =
            "throughput stuck at " + std::to_string(Rate) + " units/s after " +
            std::to_string(ScrapesSinceDeath) + " scrapes (needs >= " +
            std::to_string(RecoveryFraction * BaselineRate) +
            ", pre-kill steady state " + std::to_string(BaselineRate) + ")";
        RecoveryPending = false;
      }
    } else {
      SteadyRate = SteadyValid ? 0.7 * SteadyRate + 0.3 * Rate : Rate;
      SteadyValid = true;
    }
  }
  // The in-load drain inequality: what was admitted is at least what has
  // terminally concluded; the slack is the work still queued or running.
  if (Accepted < Completed + DeadlineExceeded + InternalErrors &&
      InequalityOk) {
    InequalityOk = false;
    if (FirstViolation.empty())
      FirstViolation =
          "accepted=" + std::to_string(Accepted) + " < completed=" +
          std::to_string(Completed) + " + deadline_exceeded=" +
          std::to_string(DeadlineExceeded) + " + internal_errors=" +
          std::to_string(InternalErrors);
  }
}

// --- One-shot scrape -------------------------------------------------------

std::optional<json::Value> detail::scrapeStats(const std::string &Socket,
                                               std::string &Err) {
  int Fd = connectTo(Socket, Err);
  if (Fd < 0)
    return std::nullopt;
  Request Rq;
  Rq.Kind = RequestKind::Stats;
  Rq.Id = 1;
  if (!writeFrame(Fd, requestToJson(Rq))) {
    Err = "stats request write failed";
    ::close(Fd);
    return std::nullopt;
  }
  std::string Frame, ReadErr;
  if (!readFrame(Fd, Frame, &ReadErr)) {
    Err = "stats response read failed" +
          (ReadErr.empty() ? std::string() : ": " + ReadErr);
    ::close(Fd);
    return std::nullopt;
  }
  ::close(Fd);
  auto Rsp = responseFromJson(Frame, &ReadErr);
  if (!Rsp || Rsp->Status != ResponseStatus::Ok || Rsp->Stats.isNull()) {
    Err = "bad stats response" +
          (ReadErr.empty() ? std::string() : ": " + ReadErr);
    return std::nullopt;
  }
  return Rsp->Stats;
}

// --- The streaming sweep ---------------------------------------------------

void detail::runSocketSweep(Sweep &S) {
  std::string ConnErr;
  int Fd = connectTo(S.Opts.Socket, ConnErr);
  if (Fd < 0) {
    S.R.TransportError = ConnErr;
    return;
  }

  // Negotiate the session codec before any unit is in flight; every
  // frame after the daemon's ack — both directions — is the pick.
  WireCodec Want = WireCodec::Json;
  if (auto C = codecByName(S.Opts.Codec))
    Want = *C;
  WireCodec Session;
  if (!negotiate(Fd, Want, Session)) {
    S.R.TransportError = "connection lost during codec negotiation";
    ::close(Fd);
    return;
  }
  WireEncoder Enc(Session);
  WireDecoder Dec(Session);

  UnitStream Stream(S.Opts.CampaignSeed, S.Begin, S.End);
  const auto IssueDeadline = Clock::now() + std::chrono::seconds(S.DurationS);

  std::map<int64_t, InFlightUnit> InFlight;
  std::multimap<Clock::time_point, InFlightUnit> RetryQ;
  // Seeded jitter keeps even the backoff schedule reproducible.
  RNG Jitter(S.Opts.CampaignSeed ^ 0x9bdull);
  const size_t Window = S.Opts.Window ? S.Opts.Window : 1;
  int64_t NextStatsId = -1;
  int64_t StatsOutstanding = 0;
  uint64_t SinceScrape = 0;
  bool StopIssuing = false;

  auto Fail = [&](const std::string &Msg) {
    S.R.TransportError = Msg;
    ::close(Fd);
  };

  auto SendUnit = [&](const InFlightUnit &U) {
    Request Rq;
    Rq.Kind = RequestKind::Validate;
    Rq.Id = static_cast<int64_t>(U.D.Index);
    Rq.HasSeed = true;
    Rq.Seed = U.D.Seed;
    Rq.Bugs = S.Bugs;
    Rq.DeadlineMs = S.Opts.DeadlineMs;
    auto Payload = Enc.encode(requestToValue(Rq));
    if (!Payload || !writeFrame(Fd, *Payload))
      return false;
    InFlight.emplace(Rq.Id, U);
    return true;
  };

  for (;;) {
    const auto Now = Clock::now();
    if (S.DurationS && Now >= IssueDeadline)
      StopIssuing = true;

    // Top up the window: due retries first (they hold the oldest — i.e.
    // smallest — indices, which keeps reproducers minimal), then fresh
    // units in index order.
    while (InFlight.size() < Window) {
      if (!RetryQ.empty() && RetryQ.begin()->first <= Now) {
        InFlightUnit U = RetryQ.begin()->second;
        RetryQ.erase(RetryQ.begin());
        ++S.R.Retries;
        if (!SendUnit(U))
          return Fail("request write failed (retry)");
        continue;
      }
      if (StopIssuing)
        break;
      auto D = Stream.next();
      if (!D) {
        StopIssuing = true;
        break;
      }
      if (!SendUnit({*D, 0}))
        return Fail("request write failed");
      ++S.R.Submitted;
    }
    S.R.MaxInFlight = std::max<uint64_t>(S.R.MaxInFlight, InFlight.size());

    if (InFlight.empty() && StatsOutstanding == 0) {
      if (!RetryQ.empty()) {
        // Nothing to read until the earliest retry comes due.
        std::this_thread::sleep_until(RetryQ.begin()->first);
        continue;
      }
      break; // issued everything, drained everything
    }

    std::string Frame, Err;
    if (!readFrame(Fd, Frame, &Err))
      return Fail("connection closed with " +
                  std::to_string(InFlight.size() + RetryQ.size()) +
                  " unit(s) outstanding" + (Err.empty() ? "" : ": " + Err));
    auto RspV = Dec.decode(Frame, &Err);
    std::optional<Response> Rsp;
    if (RspV)
      Rsp = responseFromValue(*RspV, &Err);
    if (!Rsp)
      return Fail("bad response: " + Err);

    if (Rsp->Id < 0) {
      // An interleaved stats scrape.
      --StatsOutstanding;
      if (Rsp->Status == ResponseStatus::Ok && !Rsp->Stats.isNull() &&
          S.Watch) {
        S.Watch->observe(Rsp->Stats);
        ++S.R.StatsScrapes;
        S.R.StatsMonotonic = S.Watch->Monotonic;
      }
      continue;
    }

    auto It = InFlight.find(Rsp->Id);
    if (It == InFlight.end())
      return Fail("response for unknown id " + std::to_string(Rsp->Id));
    InFlightUnit U = It->second;
    InFlight.erase(It);

    switch (Rsp->Status) {
    case ResponseStatus::Ok: {
      ++S.R.Completed;
      S.R.V += Rsp->totalV();
      S.R.F += Rsp->totalF();
      S.R.NS += Rsp->totalNS();
      S.R.Diff += Rsp->totalDiff();
      S.R.Div += Rsp->totalDiv();
      S.LatencyUs.record(Rsp->TotalUs);
      if (S.Opts.ComputeDigest)
        S.R.UnitsDigest ^= unitFingerprint(S.Opts.CampaignSeed, U.D.Index);
      if (Rsp->totalF() || Rsp->totalDiff() || Rsp->totalDiv()) {
        Finding Fd2;
        Fd2.Preset = S.Bugs;
        Fd2.UnitIndex = U.D.Index;
        Fd2.Seed = U.D.Seed;
        if (Rsp->totalF()) {
          Fd2.Kind = "validation_failure";
          if (!Rsp->Failures.empty())
            Fd2.Detail = Rsp->Failures.front();
        } else if (Rsp->totalDiff()) {
          Fd2.Kind = "diff_mismatch";
        } else {
          Fd2.Kind = "oracle_divergence";
          if (!Rsp->Divergences.empty())
            Fd2.Detail = Rsp->Divergences.front();
        }
        S.Findings.push_back(std::move(Fd2));
        if (S.StopOnFinding)
          StopIssuing = true; // drain what is in flight, then conclude
      }
      if (S.Opts.StatsEveryUnits && ++SinceScrape >= S.Opts.StatsEveryUnits) {
        SinceScrape = 0;
        Request Sq;
        Sq.Kind = RequestKind::Stats;
        Sq.Id = NextStatsId--;
        auto Payload = Enc.encode(requestToValue(Sq));
        if (!Payload || !writeFrame(Fd, *Payload))
          return Fail("stats request write failed");
        ++StatsOutstanding;
      }
      if (S.Opts.Progress && S.Opts.ProgressEveryUnits &&
          S.R.Completed % S.Opts.ProgressEveryUnits == 0)
        *S.Opts.Progress << "campaign: " << S.R.Completed
                         << " units done, in-flight " << InFlight.size()
                         << ", retries " << S.R.Retries << "\n";
      break;
    }
    case ResponseStatus::Rejected:
      // Only backpressure is retryable; shutting_down and quarantined are
      // the daemon saying "stop asking".
      if (Rsp->Reason == "queue_full" && U.Tries < S.Opts.MaxRetries) {
        // Overflow-proof exponential backoff, capped at ~6.4s.
        uint64_t Backoff =
            backoff::delayMs(BackoffBaseMs, U.Tries, BackoffBaseMs * 256);
        Backoff = std::max(Backoff, Rsp->RetryAfterMs);
        Backoff += Jitter.below(BackoffBaseMs + 1);
        ++U.Tries;
        RetryQ.emplace(Now + std::chrono::milliseconds(Backoff), U);
      } else {
        ++S.R.Rejected;
      }
      break;
    case ResponseStatus::DeadlineExceeded:
      ++S.R.DeadlineExceeded;
      break;
    case ResponseStatus::InternalError:
      ++S.R.InternalErrors;
      break;
    case ResponseStatus::Error:
      // The daemon called our request malformed — a campaign bug, not a
      // daemon state; nothing downstream is trustworthy.
      return Fail("error response for unit " + std::to_string(U.D.Index) +
                  ": " + Rsp->Reason);
    }
  }

  ::close(Fd);
}
