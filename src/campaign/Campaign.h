//===- campaign/Campaign.h - Streaming MLOC-scale campaigns ----*- C++ -*-===//
///
/// \file
/// The campaign driver: streams millions of seeded validation units
/// (RandomProgram sweeps × BugConfig presets) through either the
/// in-process batch driver or a running crellvm-served daemon, with
/// bounded memory. This is the reproduction of the paper's §5 evaluation
/// *shape* — millions of lines of SPEC/nightly code pushed through the
/// validator, a campaign that itself surfaced 4 new LLVM bugs plus one
/// miscompilation — re-targeted at the service stack (DESIGN.md §14).
///
/// **Streaming identity.** A campaign never materializes a corpus. Unit
/// \p I of campaign seed \p S has the deterministic generation seed
/// `unitSeed(S, I)` (one splitmix64 mix, so neighboring indices
/// decorrelate), and that pair is the unit's durable name: any finding is
/// reported as `(campaign seed, unit index)` and replays standalone with
/// one command,
///
///   crellvm-campaign --replay --seed S --unit I --bugs PRESET [--oracle]
///
/// at any later time, on any machine, regardless of how wide the window
/// or how many jobs the discovering run used.
///
/// **Bounded window.** At most CampaignOptions::Window units are in
/// flight at once; the local backend validates window-sized batches on
/// one warm thread pool, the socket backend pipelines up to Window
/// requests on one connection and refills as responses arrive, honoring
/// queue_full backpressure with seeded exponential backoff. Memory is
/// O(Window), never O(Units) — CampaignReport::MaxInFlight and
/// PeakRssBytes are the receipts.
///
/// **Modes.**
///   Throughput  clean sweep of Units units under one preset; the perf
///               trajectory entry (`validation_campaign`) is cut from
///               this mode's report.
///   Soak        long-run against a daemon (typically under --chaos on
///               the daemon side): stream for DurationS seconds, then
///               require every submitted request answered, scraped stats
///               counters monotone, and the drain equation
///               accepted == completed + deadline_exceeded +
///               internal_errors at the final quiesced observation.
///   BugHunt     differential mode: plants each hunted preset (default:
///               the 4+1 historical bugs, BugConfig::historicalPresets)
///               one at a time and streams units until the bug resurfaces
///               as a validation failure, an llvm-diff mismatch, or a
///               differential-execution oracle divergence — the PR33673
///               miscompilation is checker-accepted and *only* the oracle
///               sees it, so hunts include it only when the oracle runs.
///               The reported reproducer is the minimal unit index, which
///               is deterministic across window sizes and job counts
///               because units are issued in index order and the stream
///               drains before concluding.
///   Replay      validate exactly one unit, verbosely.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CAMPAIGN_CAMPAIGN_H
#define CRELLVM_CAMPAIGN_CAMPAIGN_H

#include "plan/PlanManager.h"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace crellvm {
namespace campaign {

/// The deterministic generation seed of unit \p Index in campaign
/// \p CampaignSeed. Masked to 63 bits so the value survives the wire
/// protocol's signed JSON integers unchanged.
uint64_t unitSeed(uint64_t CampaignSeed, uint64_t Index);

/// FNV-1a-64 over the printed text of the module unit \p Index generates:
/// the unit's content fingerprint. Two campaign runs agree on every
/// fingerprint iff the generator is unchanged — this is what pins seed
/// stability (an accidental generator change silently invalidates every
/// recorded reproducer seed and cache entry, so tests fail loudly on it).
uint64_t unitFingerprint(uint64_t CampaignSeed, uint64_t Index);

/// FNV-1a-64 of an arbitrary byte string (the fingerprint primitive,
/// exposed for the golden seed-stability table).
uint64_t fnv1a64(const std::string &Bytes);

/// One unit's durable identity.
struct UnitDesc {
  uint64_t Index = 0;
  uint64_t Seed = 0;
};

/// O(1)-state streaming source of unit descriptors [Begin, End).
/// Descriptors, not modules: generation happens inside whichever backend
/// worker runs the unit, so the stream itself can name millions of units
/// without materializing any.
class UnitStream {
public:
  UnitStream(uint64_t CampaignSeed, uint64_t Begin, uint64_t End)
      : CampaignSeed(CampaignSeed), Next(Begin), End(End) {}

  std::optional<UnitDesc> next() {
    if (Next >= End)
      return std::nullopt;
    UnitDesc D{Next, unitSeed(CampaignSeed, Next)};
    ++Next;
    return D;
  }
  uint64_t remaining() const { return End - Next; }

private:
  uint64_t CampaignSeed;
  uint64_t Next;
  uint64_t End;
};

enum class Mode : uint8_t { Throughput, Soak, BugHunt, Replay };

const char *modeName(Mode M);
std::optional<Mode> modeByName(const std::string &Name);

struct CampaignOptions {
  Mode M = Mode::Throughput;
  uint64_t CampaignSeed = 1;
  /// Throughput/soak: total units to stream (soak: cap, 0 = unbounded
  /// while the clock runs). Bug-hunt: per-preset unit budget.
  uint64_t Units = 10000;
  /// Replay: the unit index to validate.
  uint64_t ReplayUnit = 0;
  /// Max units in flight; memory is O(Window).
  size_t Window = 256;
  /// Local backend worker threads; 0 = hardware concurrency.
  unsigned Jobs = 0;
  /// Preset for throughput/soak/replay (byName grammar, flag-level
  /// presets included).
  std::string Bugs = "fixed";
  /// Bug-hunt preset list; empty = all of BugConfig::historicalPresets().
  std::vector<std::string> HuntPresets;
  /// Non-empty: drive the daemon at this Unix socket over the client
  /// protocol instead of validating in-process.
  std::string Socket;
  /// Per-request deadline forwarded to the daemon (socket backend).
  uint64_t DeadlineMs = 0;
  /// Wire codec for the socket backend: "json" (default) or "cbj1".
  /// cbj1 is negotiated with a hello frame; a daemon that predates
  /// negotiation degrades the session back to json instead of failing.
  std::string Codec = "json";
  /// queue_full retry rounds per unit before counting it rejected.
  uint64_t MaxRetries = 8;
  /// Soak: stop issuing new units after this many seconds.
  uint64_t DurationS = 0;
  /// Local backend: run the differential-execution oracle. Bug-hunt
  /// forces this on locally; against a daemon the daemon's own --oracle
  /// flag governs (scraped and verified before a hunt).
  bool Oracle = false;
  /// Scrape daemon stats every N completed units (socket backend;
  /// 0 = only the final scrape). Every scrape checks counter
  /// monotonicity and the drain inequality.
  uint64_t StatsEveryUnits = 0;
  /// Soak against a supervised cluster router: when the scraped
  /// cluster.router.member_deaths counter increments, require observed
  /// throughput (completed-units/sec across scrape intervals) to return
  /// to >= 90% of the pre-kill steady state within this many subsequent
  /// scrapes. 0 disables the recovery-trajectory gate. Needs
  /// StatsEveryUnits > 0 to have intervals to measure.
  uint64_t RecoveryWindowScrapes = 0;
  /// Compute the order-independent per-unit fingerprint digest
  /// (regenerates each module client-side — test/verification feature,
  /// not for MLOC runs).
  bool ComputeDigest = false;
  /// Per-preset checker plans for the local backend (the socket backend
  /// ignores this — plans are server-local, so the daemon's own --plan
  /// governs there). Shadow mode double-checks every specialized verdict
  /// against the general checker and the campaign gate fails on any
  /// divergence, which is how a soak-style local sweep proves plan
  /// specialization verdict-neutral at scale.
  plan::PlanMode Plan = plan::PlanMode::Off;
  /// Progress sink (nullptr = silent) and cadence in completed units.
  std::ostream *Progress = nullptr;
  uint64_t ProgressEveryUnits = 100000;
};

/// One rediscovered bug (or unexpected failure) with its replay identity.
struct Finding {
  std::string Preset;      ///< bugs preset the unit ran under
  uint64_t UnitIndex = 0;
  uint64_t Seed = 0;       ///< unitSeed(CampaignSeed, UnitIndex)
  std::string Kind;        ///< validation_failure | diff_mismatch |
                           ///< oracle_divergence
  std::string Detail;      ///< first sample reason
};

struct CampaignReport {
  Mode M = Mode::Throughput;
  uint64_t CampaignSeed = 0;

  // Unit accounting.
  uint64_t Submitted = 0;   ///< units issued to the backend
  uint64_t Completed = 0;   ///< terminal verdict responses (status ok)
  uint64_t DeadlineExceeded = 0;
  uint64_t InternalErrors = 0;
  uint64_t Rejected = 0;    ///< terminal rejections (retries exhausted,
                            ///< shutting_down, quarantined)
  uint64_t Retries = 0;     ///< queue_full resubmissions performed

  // Verdict sums over completed units.
  uint64_t V = 0, F = 0, NS = 0, Diff = 0, Div = 0;

  // Throughput/latency/memory.
  double WallSeconds = 0;
  double CpuSeconds = 0;        ///< local backend only (per-unit sums)
  double UnitsPerSecond = 0;
  uint64_t P50Us = 0, P99Us = 0; ///< per-unit campaign-observed latency
  uint64_t PeakRssBytes = 0;
  uint64_t MaxInFlight = 0;      ///< observed; must stay <= Window
  unsigned JobsUsed = 0;

  // Plan-pipeline counters (local backend with --plan != off; summed
  // from the per-pass driver stats). PlanDivergences > 0 fails the
  // campaign gate: a shadow-mode specialized verdict disagreed with the
  // general checker.
  uint64_t PlanBuilds = 0, PlanHits = 0, PlanSpecialized = 0,
           PlanFallbacks = 0, PlanShadowChecks = 0, PlanDivergences = 0;

  /// XOR-accumulated per-unit fingerprint digest (ComputeDigest only):
  /// order-independent, so identical for every window size and job
  /// count that covers the same units.
  uint64_t UnitsDigest = 0;

  std::vector<Finding> Findings;      ///< capped sample, minimal-index
                                      ///< finding first per preset
  std::vector<std::string> HuntMissed; ///< bug-hunt presets not rediscovered

  // Soak gates (socket backend).
  bool StatsMonotonic = true;  ///< no scraped counter ever decreased
  bool DrainHolds = true;      ///< accepted == completed + deadline +
                               ///< internal at the final quiesced scrape
  uint64_t StatsScrapes = 0;
  // Recovery trajectory (RecoveryWindowScrapes > 0, supervised cluster).
  bool RecoveryOk = true;      ///< every death episode recovered in window
  uint64_t MemberDeathsObserved = 0; ///< cluster.router.member_deaths seen
  uint64_t Recoveries = 0;     ///< death episodes that recovered in time

  std::string TransportError;  ///< non-empty: the campaign could not run
  std::string GateFailure;     ///< non-empty: why success() is false

  bool success() const { return TransportError.empty() && GateFailure.empty(); }
};

/// Runs the campaign; never throws. Transport problems land in
/// CampaignReport::TransportError, gate verdicts in GateFailure.
CampaignReport runCampaign(const CampaignOptions &Opts);

} // namespace campaign
} // namespace crellvm

#endif // CRELLVM_CAMPAIGN_CAMPAIGN_H
