//===- campaign/CampaignMain.cpp - The crellvm-campaign CLI ---------------===//
//
// Streaming MLOC-scale validation campaigns (DESIGN.md §14):
//
//   crellvm-campaign --mode throughput --units 1000000
//   crellvm-campaign --mode soak --socket /tmp/cre.sock --duration-s 60
//   crellvm-campaign --mode bug-hunt --socket /tmp/cre.sock --units 500
//   crellvm-campaign --replay --seed S --unit I --bugs PRESET [--oracle]
//
// Exit codes: 0 campaign gates passed (replay: the unit is clean),
// 1 a gate failed or the replayed unit exhibits its finding,
// 2 bad usage or daemon not running, 3 transport error mid-campaign.
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"

#include "bench/BenchJson.h"
#include "checker/Version.h"
#include "passes/BugConfig.h"

#include <cstring>
#include <iostream>
#include <sstream>

using namespace crellvm;
using namespace crellvm::campaign;

namespace {

struct CliOptions {
  CampaignOptions C;
  std::string BenchJson;
  std::string BenchName = "validation_campaign";
  bool Json = false;
  bool UnitsSet = false;
};

void printUsage(std::ostream &OS, const char *Argv0) {
  OS << "usage: " << Argv0 << " [--mode M] [options]\n"
     << "\n"
     << "Bounded-memory streaming validation campaigns over seeded units.\n"
     << "Unit I of campaign seed S is fully named by (S, I); any finding\n"
     << "replays standalone with:\n"
     << "  " << Argv0 << " --replay --seed S --unit I --bugs PRESET\n"
     << "\n"
     << "modes:\n"
     << "  throughput       clean sweep of --units units (default mode)\n"
     << "  soak             stream against a daemon for --duration-s, then\n"
     << "                   gate on stats monotonicity + the drain equation\n"
     << "  bug-hunt         plant each hunted preset and stream until the\n"
     << "                   bug resurfaces; report minimal reproducer units\n"
     << "  replay           validate exactly one unit\n"
     << "\n"
     << "options:\n"
     << "  --mode M         throughput | soak | bug-hunt | replay\n"
     << "  --replay         shorthand for --mode replay\n"
     << "  --seed S         campaign seed (default 1)\n"
     << "  --units N        units to stream; bug-hunt: per-preset budget\n"
     << "                   (default 10000; soak: 0 = duration-bounded)\n"
     << "  --unit I         replay: the unit index (default 0)\n"
     << "  --window N       max units in flight; memory is O(window)\n"
     << "                   (default 256)\n"
     << "  --jobs N         in-process worker threads (0 = all cores)\n"
     << "  --bugs CFG       preset for throughput/soak/replay: 371 | 501pre\n"
     << "                   | 501post | fixed (default), or a single\n"
     << "                   historical bug: pr24179 | pr33673 | pr28562 |\n"
     << "                   pr29057 | d38619\n"
     << "  --hunt LIST      comma-separated bug-hunt presets (default: all\n"
     << "                   five historical bugs)\n"
     << "  --socket PATH    drive the crellvm-served daemon at PATH instead\n"
     << "                   of validating in-process\n"
     << "  --deadline-ms N  per-request deadline (socket; default none)\n"
     << "  --codec NAME     socket wire codec: json (default) or cbj1;\n"
     << "                   cbj1 is negotiated, degrading to json against\n"
     << "                   a daemon that predates negotiation\n"
     << "  --retries N      queue_full retry rounds per unit (default 8)\n"
     << "  --duration-s N   soak: issue units for N seconds\n"
     << "  --oracle         in-process: run the differential-execution\n"
     << "                   oracle (bug-hunt arms it automatically)\n"
     << "  --plan MODE      in-process: per-preset checker plans, off\n"
     << "                   (default) | shadow | on. Shadow double-checks\n"
     << "                   every specialized verdict against the general\n"
     << "                   checker and the campaign gate fails on any\n"
     << "                   divergence. Against a daemon this is\n"
     << "                   informational: pass --plan to crellvm-served\n"
     << "  --stats-every N  scrape daemon stats every N completed units\n"
     << "                   and check counter monotonicity (default: final\n"
     << "                   scrape only)\n"
     << "  --recovery-window N  soak against a supervised cluster: after a\n"
     << "                   scraped member-death, throughput must return to\n"
     << "                   >= 90% of the pre-kill steady state within N\n"
     << "                   scrapes (needs --stats-every; default: off)\n"
     << "  --digest         compute the order-independent unit fingerprint\n"
     << "                   digest (regenerates units; test feature)\n"
     << "  --progress-every N  progress line cadence in units (0 silent;\n"
     << "                   default 100000)\n"
     << "  --bench-json FILE  merge a campaign entry into FILE\n"
     << "                   (BENCH_validation.json schema)\n"
     << "  --bench-name NAME  entry name (default validation_campaign)\n"
     << "  --json           print the report as one JSON object\n"
     << "  --version        print version and exit\n"
     << "  --help, -h       print this help and exit\n";
}

bool WantHelp = false;
bool WantVersion = false;
std::string BadArg;

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    BadArg = A;
    auto NextNum = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      char *End = nullptr;
      Out = std::strtoull(Argv[I + 1], &End, 10);
      if (End == Argv[I + 1] || *End)
        return false;
      ++I;
      return true;
    };
    uint64_t N = 0;
    if (A == "--help" || A == "-h") {
      WantHelp = true;
      return true;
    } else if (A == "--version") {
      WantVersion = true;
      return true;
    } else if (A == "--mode" && I + 1 < Argc) {
      auto M = modeByName(Argv[++I]);
      if (!M) {
        BadArg = std::string("--mode ") + Argv[I];
        return false;
      }
      O.C.M = *M;
    } else if (A == "--replay")
      O.C.M = Mode::Replay;
    else if (A == "--seed" && NextNum(N))
      O.C.CampaignSeed = N;
    else if (A == "--units" && NextNum(N)) {
      O.C.Units = N;
      O.UnitsSet = true;
    } else if (A == "--unit" && NextNum(N))
      O.C.ReplayUnit = N;
    else if (A == "--window" && NextNum(N) && N)
      O.C.Window = static_cast<size_t>(N);
    else if (A == "--jobs" && NextNum(N))
      O.C.Jobs = static_cast<unsigned>(N);
    else if (A == "--bugs" && I + 1 < Argc)
      O.C.Bugs = Argv[++I];
    else if (A == "--hunt" && I + 1 < Argc) {
      std::istringstream In(Argv[++I]);
      std::string Tok;
      while (std::getline(In, Tok, ','))
        if (!Tok.empty())
          O.C.HuntPresets.push_back(Tok);
    } else if (A == "--socket" && I + 1 < Argc)
      O.C.Socket = Argv[++I];
    else if (A == "--deadline-ms" && NextNum(N))
      O.C.DeadlineMs = N;
    else if (A == "--codec" && I + 1 < Argc) {
      std::string Name = Argv[++I];
      if (Name != "json" && Name != "cbj1") {
        BadArg = A + " " + Name;
        return false;
      }
      O.C.Codec = Name;
    } else if (A == "--retries" && NextNum(N))
      O.C.MaxRetries = N;
    else if (A == "--duration-s" && NextNum(N))
      O.C.DurationS = N;
    else if (A == "--oracle")
      O.C.Oracle = true;
    else if (A.rfind("--plan=", 0) == 0) {
      auto P = plan::parsePlanMode(A.substr(std::strlen("--plan=")));
      if (!P)
        return false;
      O.C.Plan = *P;
    } else if (A == "--plan" && I + 1 < Argc) {
      auto P = plan::parsePlanMode(Argv[++I]);
      if (!P)
        return false;
      O.C.Plan = *P;
    }
    else if (A == "--stats-every" && NextNum(N))
      O.C.StatsEveryUnits = N;
    else if (A == "--recovery-window" && NextNum(N))
      O.C.RecoveryWindowScrapes = N;
    else if (A == "--digest")
      O.C.ComputeDigest = true;
    else if (A == "--progress-every" && NextNum(N))
      O.C.ProgressEveryUnits = N;
    else if (A == "--bench-json" && I + 1 < Argc)
      O.BenchJson = Argv[++I];
    else if (A == "--bench-name" && I + 1 < Argc)
      O.BenchName = Argv[++I];
    else if (A == "--json")
      O.Json = true;
    else
      return false;
  }
  return true;
}

std::string replayCommand(const char *Argv0, const CampaignReport &R,
                          const Finding &F, bool Oracle) {
  std::string Cmd = std::string(Argv0) + " --replay --seed " +
                    std::to_string(R.CampaignSeed) + " --unit " +
                    std::to_string(F.UnitIndex) + " --bugs " + F.Preset;
  if (Oracle || F.Kind == "oracle_divergence")
    Cmd += " --oracle";
  return Cmd;
}

json::Value findingJson(const Finding &F) {
  json::Value O = json::Value::object();
  O.set("preset", json::Value(F.Preset));
  O.set("unit", json::Value(F.UnitIndex));
  O.set("seed", json::Value(F.Seed));
  O.set("kind", json::Value(F.Kind));
  if (!F.Detail.empty())
    O.set("detail", json::Value(F.Detail));
  return O;
}

json::Value reportJson(const CampaignReport &R) {
  json::Value O = json::Value::object();
  O.set("mode", json::Value(modeName(R.M)));
  O.set("campaign_seed", json::Value(R.CampaignSeed));
  O.set("submitted", json::Value(R.Submitted));
  O.set("completed", json::Value(R.Completed));
  O.set("deadline_exceeded", json::Value(R.DeadlineExceeded));
  O.set("internal_errors", json::Value(R.InternalErrors));
  O.set("rejected", json::Value(R.Rejected));
  O.set("retries", json::Value(R.Retries));
  O.set("V", json::Value(R.V));
  O.set("F", json::Value(R.F));
  O.set("NS", json::Value(R.NS));
  O.set("diff", json::Value(R.Diff));
  O.set("oracle_div", json::Value(R.Div));
  O.set("wall_us", json::Value(static_cast<int64_t>(R.WallSeconds * 1e6)));
  O.set("units_per_s_ppm",
        json::Value(static_cast<int64_t>(R.UnitsPerSecond * 1e6)));
  O.set("unit_p50_us", json::Value(R.P50Us));
  O.set("unit_p99_us", json::Value(R.P99Us));
  O.set("peak_rss_bytes", json::Value(R.PeakRssBytes));
  O.set("max_in_flight", json::Value(R.MaxInFlight));
  O.set("units_digest", json::Value(R.UnitsDigest));
  O.set("plan_builds", json::Value(R.PlanBuilds));
  O.set("plan_hits", json::Value(R.PlanHits));
  O.set("plan_specialized", json::Value(R.PlanSpecialized));
  O.set("plan_fallbacks", json::Value(R.PlanFallbacks));
  O.set("plan_shadow_checks", json::Value(R.PlanShadowChecks));
  O.set("plan_divergences", json::Value(R.PlanDivergences));
  O.set("stats_scrapes", json::Value(R.StatsScrapes));
  O.set("stats_monotonic", json::Value(R.StatsMonotonic));
  O.set("drain_holds", json::Value(R.DrainHolds));
  O.set("recovery_ok", json::Value(R.RecoveryOk));
  O.set("member_deaths_observed", json::Value(R.MemberDeathsObserved));
  O.set("recoveries", json::Value(R.Recoveries));
  json::Value Finds = json::Value::array();
  for (const Finding &F : R.Findings)
    Finds.push(findingJson(F));
  O.set("findings", std::move(Finds));
  json::Value Missed = json::Value::array();
  for (const std::string &P : R.HuntMissed)
    Missed.push(json::Value(P));
  O.set("hunt_missed", std::move(Missed));
  if (!R.GateFailure.empty())
    O.set("gate_failure", json::Value(R.GateFailure));
  if (!R.TransportError.empty())
    O.set("transport_error", json::Value(R.TransportError));
  return O;
}

void printHuman(std::ostream &OS, const char *Argv0, const CliOptions &Cli,
                const CampaignReport &R) {
  OS << "campaign: mode=" << modeName(R.M) << " seed=" << R.CampaignSeed
     << " window=" << Cli.C.Window
     << (Cli.C.Socket.empty()
             ? " backend=local jobs=" + std::to_string(R.JobsUsed)
             : " backend=" + Cli.C.Socket)
     << "\n";
  OS << "units: submitted=" << R.Submitted << " completed=" << R.Completed
     << " deadline_exceeded=" << R.DeadlineExceeded << " internal_errors="
     << R.InternalErrors << " rejected=" << R.Rejected << " retries="
     << R.Retries << "\n";
  OS << "verdicts: V=" << R.V << " F=" << R.F << " NS=" << R.NS
     << " diff=" << R.Diff << " oracle-div=" << R.Div << "\n";
  OS << "perf: " << static_cast<uint64_t>(R.UnitsPerSecond)
     << " units/s  p50=" << R.P50Us << "us p99=" << R.P99Us
     << "us  peak-rss=" << (R.PeakRssBytes >> 20)
     << "MiB  max-in-flight=" << R.MaxInFlight << "\n";
  if (Cli.C.ComputeDigest) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%016llx",
                  static_cast<unsigned long long>(R.UnitsDigest));
    OS << "units-digest: " << Buf << "\n";
  }
  if (Cli.C.Plan != plan::PlanMode::Off && Cli.C.Socket.empty())
    OS << "plan: mode=" << plan::planModeName(Cli.C.Plan)
       << " builds=" << R.PlanBuilds << " hits=" << R.PlanHits
       << " specialized=" << R.PlanSpecialized << " fallbacks="
       << R.PlanFallbacks << " shadow-checks=" << R.PlanShadowChecks
       << " divergences=" << R.PlanDivergences << "\n";
  if (R.M == Mode::Soak) {
    OS << "soak gates: monotonic=" << (R.StatsMonotonic ? "yes" : "NO")
       << " drain=" << (R.DrainHolds ? "holds" : "VIOLATED")
       << " (scrapes=" << R.StatsScrapes << ")\n";
    if (Cli.C.RecoveryWindowScrapes)
      OS << "recovery: member-deaths=" << R.MemberDeathsObserved
         << " recovered=" << R.Recoveries << " trajectory="
         << (R.RecoveryOk ? "ok" : "VIOLATED") << " (window="
         << Cli.C.RecoveryWindowScrapes << " scrapes)\n";
  }
  for (const Finding &F : R.Findings) {
    OS << "finding: preset=" << F.Preset << " unit=" << F.UnitIndex
       << " seed=" << F.Seed << " kind=" << F.Kind;
    if (!F.Detail.empty())
      OS << "\n  " << F.Detail;
    OS << "\n  replay: " << replayCommand(Argv0, R, F, Cli.C.Oracle) << "\n";
  }
  for (const std::string &P : R.HuntMissed)
    OS << "hunt MISSED: " << P << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    std::cerr << "error: unknown or malformed option '" << BadArg << "'\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (WantHelp) {
    printUsage(std::cout, Argv[0]);
    return 0;
  }
  if (WantVersion) {
    std::cout << checker::versionLine("crellvm-campaign") << "\n";
    return 0;
  }

  // Usage-level validation, answered with exit 2 before any work starts.
  if (Cli.C.M != Mode::BugHunt && !passes::BugConfig::byName(Cli.C.Bugs)) {
    std::cerr << "error: unknown bugs preset '" << Cli.C.Bugs << "'\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  for (const std::string &P : Cli.C.HuntPresets)
    if (!passes::BugConfig::byName(P)) {
      std::cerr << "error: unknown hunt preset '" << P << "'\n\n";
      printUsage(std::cerr, Argv[0]);
      return 2;
    }
  if (Cli.C.M == Mode::Soak) {
    if (Cli.C.Socket.empty()) {
      std::cerr << "error: --mode soak requires --socket\n\n";
      printUsage(std::cerr, Argv[0]);
      return 2;
    }
    if (Cli.C.DurationS == 0 && (!Cli.UnitsSet || Cli.C.Units == 0)) {
      std::cerr << "error: --mode soak needs --duration-s or --units\n\n";
      printUsage(std::cerr, Argv[0]);
      return 2;
    }
  }
  if (!Cli.C.HuntPresets.empty() && Cli.C.M != Mode::BugHunt) {
    std::cerr << "error: --hunt only applies to --mode bug-hunt\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (Cli.C.RecoveryWindowScrapes &&
      (Cli.C.M != Mode::Soak || Cli.C.StatsEveryUnits == 0)) {
    std::cerr << "error: --recovery-window needs --mode soak with "
                 "--stats-every (rate samples come from periodic scrapes)\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }

  if (Cli.C.Plan != plan::PlanMode::Off && !Cli.C.Socket.empty())
    std::cerr << "note: --plan=" << plan::planModeName(Cli.C.Plan)
              << " only applies to the in-process backend; against a "
                 "daemon pass --plan to crellvm-served\n";

  if (Cli.C.ProgressEveryUnits)
    Cli.C.Progress = &std::cerr;

  CampaignReport R = runCampaign(Cli.C);

  if (Cli.Json)
    std::cout << reportJson(R).write() << "\n";
  else
    printHuman(std::cout, Argv[0], Cli, R);

  if (!R.TransportError.empty()) {
    std::cerr << "error: " << R.TransportError << "\n";
    // "Nobody is listening" reads as usage, like crellvm-client.
    if (R.TransportError.find("cannot connect") != std::string::npos ||
        R.TransportError.find("requires --socket") != std::string::npos)
      return 2;
    return 3;
  }

  if (!Cli.BenchJson.empty() && R.M == Mode::Throughput) {
    bench::BenchEntry E;
    E.Name = Cli.BenchName;
    E.WallSeconds = R.WallSeconds;
    E.CpuSeconds = R.CpuSeconds;
    E.Jobs = R.JobsUsed ? R.JobsUsed : 1;
    E.ParallelEfficiency =
        R.WallSeconds > 0 && E.Jobs
            ? R.CpuSeconds / R.WallSeconds / E.Jobs
            : 0;
    E.V = R.V;
    E.F = R.F;
    E.NS = R.NS;
    E.Extra.emplace_back("units_per_s_ppm",
                         static_cast<int64_t>(R.UnitsPerSecond * 1e6));
    E.Extra.emplace_back("unit_p50_us", static_cast<int64_t>(R.P50Us));
    E.Extra.emplace_back("unit_p99_us", static_cast<int64_t>(R.P99Us));
    E.Extra.emplace_back("peak_rss_kib",
                         static_cast<int64_t>(R.PeakRssBytes >> 10));
    E.Extra.emplace_back("max_in_flight",
                         static_cast<int64_t>(R.MaxInFlight));
    E.Extra.emplace_back("window", static_cast<int64_t>(Cli.C.Window));
    E.Extra.emplace_back("submitted", static_cast<int64_t>(R.Submitted));
    E.Extra.emplace_back("completed", static_cast<int64_t>(R.Completed));
    bench::writeBenchJson({E}, Cli.BenchJson);
  }

  if (R.M == Mode::Replay)
    // A replay that reproduces its finding "fails" like crellvm-validate
    // does on a validation failure — that nonzero exit is the point.
    return R.Findings.empty() && R.InternalErrors == 0 ? 0 : 1;
  if (!R.GateFailure.empty()) {
    std::cerr << "gate failure: " << R.GateFailure << "\n";
    return 1;
  }
  return 0;
}
