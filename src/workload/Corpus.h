//===- workload/Corpus.h - The paper's benchmark corpus ---------*- C++ -*-===//
///
/// \file
/// The synthetic stand-in for the paper's §7 corpus: SPEC CINT2006, five
/// open-source C projects, and the LLVM nightly test suite — 5.3 MLOC in
/// total. Each row becomes a deterministic set of generated modules whose
/// function count is scaled from the paper's per-row mem2reg #V (roughly
/// one register-promotion validation per compiled function) and whose
/// feature mix mirrors the row's relative #NS rate (DESIGN.md §3).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_WORKLOAD_CORPUS_H
#define CRELLVM_WORKLOAD_CORPUS_H

#include "workload/RandomProgram.h"

#include <string>
#include <vector>

namespace crellvm {
namespace workload {

/// One benchmark row of the paper's Fig. 7.
struct Project {
  std::string Name;
  uint64_t PaperKLoc;     ///< the row's LOC column (in units of 10 lines)
  unsigned NumFunctions;  ///< scaled function count
  GenOptions Opts;        ///< per-row feature mix (seed included)

  unsigned numModules() const { return (NumFunctions + 3) / 4; }
};

/// The 18 rows of Fig. 7. \p Scale divides the function counts (1 = the
/// default bench size, larger = faster runs).
std::vector<Project> paperCorpus(unsigned Scale = 1);

/// Deterministically generates module \p Index of \p P.
ir::Module generateProjectModule(const Project &P, unsigned Index);

} // namespace workload
} // namespace crellvm

#endif // CRELLVM_WORKLOAD_CORPUS_H
