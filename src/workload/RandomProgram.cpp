//===- workload/RandomProgram.cpp --------------------------------*- C++ -*-===//

#include "workload/RandomProgram.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

#include <cassert>

using namespace crellvm;
using namespace crellvm::workload;
using namespace crellvm::ir;

namespace {

/// Generates one function at a time. Values are tracked per "scope":
/// entering a divergent branch snapshots the available list, leaving
/// restores it, so every emitted use is dominated by its definition.
class FunctionGen {
public:
  FunctionGen(RNG &R, const GenOptions &Opts, Function &F)
      : R(R), Opts(Opts), F(F), B(F) {}

  void straightLine();
  void diamond();
  void loop();
  void vecBody();
  void fig15();
  void preInsertDiv();
  void foldPhi();
  void switchDispatch();

private:
  ir::Type i32() const { return Type::intTy(32); }
  Value c32(int64_t N) { return Value::constInt(N, i32()); }

  std::string fresh() { return "t" + std::to_string(Counter++); }

  /// A random available i32 value (register or constant).
  Value pick() {
    if (Avail.empty() || R.chance(1, 4))
      return c32(R.range(-4, 9));
    return Avail[R.below(Avail.size())];
  }

  void remember(Value V) { Avail.push_back(std::move(V)); }

  /// Emits a random pure i32 computation and remembers the result.
  Value randomArith() {
    static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                 Opcode::And, Opcode::Or,  Opcode::Xor,
                                 Opcode::Shl};
    Opcode Op = Ops[R.below(7)];
    Value A = pick();
    Value Bv = Op == Opcode::Shl ? c32(R.range(0, 7)) : pick();
    Value V = B.binary(Op, fresh(), A, Bv);
    remember(V);
    return V;
  }

  /// Emits instcombine feedstock: one of the catalog shapes.
  void peepholeFeed() {
    Value A = pick();
    switch (R.below(14)) {
    case 0: { // assoc-add chain
      Value X = B.binary(Opcode::Add, fresh(), A, c32(R.range(1, 5)));
      remember(B.binary(Opcode::Add, fresh(), X, c32(R.range(1, 5))));
      break;
    }
    case 1:
      remember(B.binary(Opcode::Add, fresh(), A, c32(0)));
      break;
    case 2:
      remember(B.binary(Opcode::Sub, fresh(), A, A));
      break;
    case 3:
      remember(B.binary(Opcode::Mul, fresh(), A, c32(8)));
      break;
    case 4: { // de morgan
      Value NA = B.binary(Opcode::Xor, fresh(), A, c32(-1));
      Value NB = B.binary(Opcode::Xor, fresh(), pick(), c32(-1));
      remember(B.binary(Opcode::And, fresh(), NA, NB));
      break;
    }
    case 5:
      remember(B.binary(Opcode::And, fresh(), A, c32(-1)));
      break;
    case 6: { // icmp-eq-sub feeding a select
      Value D = B.binary(Opcode::Sub, fresh(), A, pick());
      Value C = B.icmp(fresh(), IcmpPred::Eq, D, c32(0));
      remember(B.select(fresh(), C, pick(), pick()));
      break;
    }
    case 7: { // zext/trunc chain
      Value Z = B.cast(Opcode::ZExt, fresh(), Type::intTy(64), A);
      remember(B.cast(Opcode::Trunc, fresh(), i32(), Z));
      break;
    }
    case 8:
      remember(B.binary(Opcode::Or, fresh(), A, c32(0)));
      break;
    case 9: { // double negation / double not
      Opcode Op = R.chance(1, 2) ? Opcode::Sub : Opcode::Xor;
      Value X = Op == Opcode::Sub
                    ? B.binary(Opcode::Sub, fresh(), c32(0), A)
                    : B.binary(Opcode::Xor, fresh(), A, c32(-1));
      remember(Op == Opcode::Sub
                   ? B.binary(Opcode::Sub, fresh(), c32(0), X)
                   : B.binary(Opcode::Xor, fresh(), X, c32(-1)));
      break;
    }
    case 10: { // bitwise constant chain
      static const Opcode Chain[] = {Opcode::Xor, Opcode::And, Opcode::Or};
      Opcode Op = Chain[R.below(3)];
      Value X = B.binary(Op, fresh(), A, c32(R.range(1, 15)));
      remember(B.binary(Op, fresh(), X, c32(R.range(1, 15))));
      break;
    }
    case 11: { // shift chain
      Opcode Op = R.chance(1, 2) ? Opcode::Shl : Opcode::LShr;
      Value X = B.binary(Op, fresh(), A, c32(R.range(0, 7)));
      remember(B.binary(Op, fresh(), X, c32(R.range(0, 7))));
      break;
    }
    case 12: { // exact-division shape (sdiv/udiv-sub-srem/urem)
      bool Signed = R.chance(1, 2);
      Value Bv = pick();
      Value Rem = B.binary(Signed ? Opcode::SRem : Opcode::URem, fresh(),
                           A, Bv);
      Value X = B.binary(Opcode::Sub, fresh(), A, Rem);
      remember(B.binary(Signed ? Opcode::SDiv : Opcode::UDiv, fresh(), X,
                        Bv));
      break;
    }
    case 13: { // negated comparison feeding a select
      Value C = B.icmp(fresh(), IcmpPred::Slt, A, pick());
      Value N = B.binary(Opcode::Xor, fresh(), C,
                         Value::constInt(1, Type::intTy(1)));
      remember(B.select(fresh(), N, pick(), pick()));
      break;
    }
    default: { // redundant twin for gvn
      Value X = B.binary(Opcode::Add, fresh(), A, c32(3));
      Value Y = B.binary(Opcode::Add, fresh(), A, c32(3));
      remember(X);
      remember(Y);
      break;
    }
    }
  }

  /// Emits a gep pair with possibly mixed inbounds flags into @arr
  /// (PR28562 shape) and leaks both pointers observably.
  void gepPair() {
    Value Base = Value::global("arr");
    Value Idx = Value::constInt(R.range(0, 7), Type::intTy(64));
    bool Inb1 = R.chance(1, 2);
    bool Inb2 = R.chance(1, 2) ? !Inb1 : Inb1; // often a mixed pair
    Value Q1 = B.gep(fresh(), Inb1, Base, Idx);
    Value Q2 = B.gep(fresh(), Inb2, Base, Idx);
    B.call("", Type::voidTy(), "barp", {Q1, Q2});
  }

  /// Emits a promotable alloca scenario. Returns the loaded value.
  void allocaScenario(bool InLoopBody) {
    // The alloca always goes to the entry block.
    std::string Cur = B.current().Name;
    B.setInsertPoint(F.Blocks.front().Name);
    std::string P = fresh();
    // Insert the alloca before the terminator if the entry already ends.
    Value PV;
    {
      BasicBlock &Entry = F.Blocks.front();
      Instruction AI = Instruction::allocaInst(P, i32(), 1);
      if (!Entry.Insts.empty() && Entry.Insts.back().isTerminator())
        Entry.Insts.insert(Entry.Insts.end() - 1, AI);
      else
        Entry.Insts.push_back(AI);
      PV = Value::reg(P, Type::ptrTy());
    }
    B.setInsertPoint(Cur);

    bool Lifetime = R.chance(Opts.LifetimePct, 100);
    if (Lifetime)
      B.call("", Type::voidTy(), "llvm.lifetime.start", {PV});

    if (InLoopBody) {
      // Single-block accesses inside a loop block: the PR24179 shape when
      // a load precedes the first store.
      if (R.chance(1, 2)) {
        Value L0 = B.load(fresh(), i32(), PV);
        B.call("", Type::voidTy(), "sink", {L0});
      }
      B.store(pick(), PV);
      Value L1 = B.load(fresh(), i32(), PV);
      B.call("", Type::voidTy(), "sink", {L1});
      if (Lifetime)
        B.call("", Type::voidTy(), "llvm.lifetime.end", {PV});
      return;
    }
    if (R.chance(Opts.ConstexprStorePct, 100)) {
      // PR33673 shape: load before a store of a trapping constant
      // expression that may never execute.
      Value X = B.load(fresh(), i32(), PV);
      B.call("", Type::voidTy(), "sink", {X});
      Value G = Value::global("G");
      Value P2I = Value::constExpr(Opcode::PtrToInt, i32(), {G});
      Value Diff = Value::constExpr(Opcode::Sub, i32(), {P2I, P2I});
      Value CE = Value::constExpr(Opcode::SDiv, i32(),
                                  {Value::constInt(1, i32()), Diff});
      B.store(CE, PV);
    } else {
      switch (R.below(3)) {
      case 0: { // single store dominating loads
        B.store(pick(), PV);
        Value L1 = B.load(fresh(), i32(), PV);
        remember(L1);
        B.call("", Type::voidTy(), "sink", {L1});
        break;
      }
      case 1: { // single-block store/load mix
        if (R.chance(1, 3)) {
          Value L0 = B.load(fresh(), i32(), PV); // load before first store
          B.call("", Type::voidTy(), "sink", {L0});
        }
        B.store(pick(), PV);
        Value L1 = B.load(fresh(), i32(), PV);
        B.store(B.binary(Opcode::Add, fresh(), L1, c32(1)), PV);
        Value L2 = B.load(fresh(), i32(), PV);
        remember(L2);
        B.call("", Type::voidTy(), "sink", {L2});
        break;
      }
      default: { // two stores; the general algorithm will see this slot
        B.store(pick(), PV);
        Value L1 = B.load(fresh(), i32(), PV);
        B.store(B.binary(Opcode::Xor, fresh(), L1, c32(5)), PV);
        Value L2 = B.load(fresh(), i32(), PV);
        remember(L2);
        B.call("", Type::voidTy(), "sink", {L2});
        break;
      }
      }
    }
    if (Lifetime)
      B.call("", Type::voidTy(), "llvm.lifetime.end", {PV});
  }

  void sinkSome() {
    if (!Avail.empty())
      B.call("", Type::voidTy(), "sink", {Avail[R.below(Avail.size())]});
  }

  void emitBodyChunk(bool InLoopBody) {
    unsigned N = 2 + R.below(4);
    for (unsigned I = 0; I != N; ++I) {
      switch (R.below(6)) {
      case 0:
        peepholeFeed();
        break;
      case 1:
        if (R.chance(Opts.GepPairPct, 100)) {
          gepPair();
          break;
        }
        randomArith();
        break;
      case 2:
        allocaScenario(InLoopBody);
        break;
      case 3: { // global traffic (public memory)
        Value G = Value::global("G");
        Value L = B.load(fresh(), i32(), G);
        remember(L);
        B.store(B.binary(Opcode::Add, fresh(), L, pick()), G);
        break;
      }
      default:
        randomArith();
        break;
      }
    }
    sinkSome();
  }

  RNG &R;
  const GenOptions &Opts;
  Function &F;
  IRBuilder B;
  std::vector<Value> Avail;
  unsigned Counter = 0;

public:
  void seedParams() {
    for (const Param &P : F.Params)
      if (P.Ty == i32())
        Avail.push_back(Value::reg(P.Name, P.Ty));
  }
};

void FunctionGen::straightLine() {
  B.block("entry");
  seedParams();
  emitBodyChunk(false);
  emitBodyChunk(false);
  B.ret(pick());
}

void FunctionGen::diamond() {
  B.block("entry");
  seedParams();
  emitBodyChunk(false);
  Value C = B.icmp(fresh(), IcmpPred::Slt, pick(), pick());
  B.condBr(C, "left", "right");

  size_t Mark = Avail.size();
  B.block("left");
  emitBodyChunk(false);
  Value LV = pick();
  B.br("join");
  Avail.resize(Mark);

  B.block("right");
  emitBodyChunk(false);
  Value RV = pick();
  B.br("join");
  Avail.resize(Mark);

  B.block("join");
  Value M = B.phi(fresh(), i32(), {{"left", LV}, {"right", RV}});
  remember(M);
  emitBodyChunk(false);
  B.ret(pick());
}

void FunctionGen::loop() {
  B.block("entry");
  seedParams();
  emitBodyChunk(false);
  Value Init = pick();
  Value Bound = c32(R.range(2, 9));
  B.br("header");

  // Names fixed up after the body is generated.
  std::string IName = fresh(), AccName = fresh(), I2Name = fresh();
  B.block("header");
  Value IV = B.phi(IName, i32(),
                   {{"entry", c32(0)}, {"latch", Value::reg(I2Name, i32())}});
  Value Acc = B.phi(AccName, i32(),
                    {{"entry", Init},
                     {"latch", Value::reg(AccName + ".n", i32())}});
  Value Cmp = B.icmp(fresh(), IcmpPred::Slt, IV, Bound);
  B.condBr(Cmp, "body", "done");

  B.block("body");
  size_t Mark = Avail.size();
  // Loop-invariant computation (licm fodder) over entry values only.
  Value Inv = B.binary(Opcode::Mul, fresh(), pick(), pick());
  if (R.chance(Opts.LoopDivPct, 100))
    Inv = B.binary(Opcode::SDiv, fresh(), Inv, c32(R.range(2, 7)));
  remember(IV);
  emitBodyChunk(true);
  Value AccN =
      B.binary(Opcode::Add, AccName + ".n", Acc,
               B.binary(Opcode::Add, fresh(), Inv, IV));
  B.call("", Type::voidTy(), "sink", {AccN});
  B.br("latch");
  Avail.resize(Mark);

  B.block("latch");
  B.binary(Opcode::Add, I2Name, IV, c32(1));
  B.br("header");

  B.block("done");
  B.call("", Type::voidTy(), "sink", {Acc});
  emitBodyChunk(false);
  B.ret(pick());
}

void FunctionGen::vecBody() {
  // Vector arithmetic: the validator's dominant #NS class.
  B.block("entry");
  Type VTy = Type::vecTy(4, 32);
  Value A = Value::reg(F.Params[0].Name, VTy);
  Value X = B.binary(Opcode::Add, fresh(), A, A);
  Value Y = B.binary(Opcode::Mul, fresh(), X, A);
  Value Z = B.binary(Opcode::Xor, fresh(), Y, Value::undef(VTy));
  B.call("", Type::voidTy(), "vsink", {Z});
  B.retVoid();
}

void FunctionGen::fig15() {
  // The PRE showcase of paper Fig. 15, with randomized constants.
  int64_t K = R.range(2, 6);
  int64_t C = R.range(8, 12);
  B.block("entry");
  seedParams();
  Value N = pick();
  Value X1 = B.binary(Opcode::Sub, fresh(), N, c32(K));
  Value C1 = B.icmp(fresh(), IcmpPred::Slt, pick(), pick());
  B.condBr(C1, "left", "right");

  B.block("left");
  Value Y1 = B.binary(Opcode::Add, fresh(), X1, c32(1));
  Value C2 = B.icmp(fresh(), IcmpPred::Eq, Y1, c32(C));
  B.condBr(C2, "exit", "right");

  B.block("right");
  Value Y2 = B.binary(Opcode::Add, fresh(), X1, c32(1));
  B.call("", Type::voidTy(), "sink", {Y2});
  B.br("exit");

  B.block("exit");
  Value Y3 = B.binary(Opcode::Add, fresh(), X1, c32(1));
  B.call("", Type::voidTy(), "sink", {Y3});
  B.ret(Y3);
}

void FunctionGen::preInsertDiv() {
  // The D38619 shape: a division redundant along one edge only, tempting
  // PRE to insert it into the other predecessor.
  B.block("entry");
  seedParams();
  Value N = pick();
  Value D = pick();
  Value C = B.icmp(fresh(), IcmpPred::Slt, pick(), pick());
  B.condBr(C, "left", "right");

  B.block("left");
  Value Y1 = B.binary(Opcode::SDiv, fresh(), N, D);
  B.call("", Type::voidTy(), "sink", {Y1});
  B.br("exit");

  B.block("right");
  emitBodyChunk(false);
  B.br("exit");

  B.block("exit");
  Value Y3 = B.binary(Opcode::SDiv, fresh(), N, D);
  B.call("", Type::voidTy(), "sink", {Y3});
  B.ret(Y3);
}

void FunctionGen::switchDispatch() {
  // A multi-way switch whose cases merge through a phi: exercises the
  // checker's phi-edge handling over switch edges and passes over
  // multi-successor CFGs.
  B.block("entry");
  seedParams();
  Value Sel = pick();
  B.switchTo(Sel, "dflt", {0, 1, int64_t(R.range(2, 6))},
             {"c0", "c1", "c2"});

  size_t Mark = Avail.size();
  B.block("c0");
  emitBodyChunk(false);
  Value V0 = pick();
  B.br("join");
  Avail.resize(Mark);

  B.block("c1");
  Value V1 = B.binary(Opcode::Add, fresh(), pick(), c32(R.range(1, 9)));
  B.br("join");
  Avail.resize(Mark);

  B.block("c2");
  emitBodyChunk(false);
  Value V2 = pick();
  B.br("join");
  Avail.resize(Mark);

  B.block("dflt");
  Value VD = B.binary(Opcode::Xor, fresh(), pick(), c32(R.range(1, 9)));
  B.br("join");
  Avail.resize(Mark);

  B.block("join");
  Value M = B.phi(fresh(), i32(),
                  {{"c0", V0}, {"c1", V1}, {"c2", V2}, {"dflt", VD}});
  remember(M);
  emitBodyChunk(false);
  B.ret(pick());
}

void FunctionGen::foldPhi() {
  // The paper S4 fold-phi feedstock: every incoming value of a phi is a
  // single-use `op ai C` with one shared constant, so instcombine sinks
  // the operation below the phi — across a back edge half of the time.
  int64_t K = R.range(1, 9);
  Opcode Op = R.chance(1, 2) ? Opcode::Add : Opcode::Xor;
  if (R.chance(1, 2)) {
    B.block("entry");
    seedParams();
    Value Cond = B.icmp(fresh(), IcmpPred::Slt, pick(), pick());
    B.condBr(Cond, "left", "right");

    B.block("left");
    Value X1 = B.binary(Op, fresh(), pick(), c32(K));
    B.br("join");

    B.block("right");
    Value X2 = B.binary(Op, fresh(), pick(), c32(K));
    B.br("join");

    B.block("join");
    Value M = B.phi(fresh(), i32(), {{"left", X1}, {"right", X2}});
    remember(M);
    emitBodyChunk(false);
    B.ret(pick());
    return;
  }
  // The S4 shape itself: the new value of z depends on its old value
  // around the loop, so the proof needs the old-register rotation.
  B.block("entry");
  seedParams();
  Value X = B.binary(Op, fresh(), pick(), c32(K));
  B.br("header");

  std::string ZName = fresh(), YName = fresh();
  B.block("header");
  Value Z = B.phi(ZName, i32(),
                  {{"entry", X}, {"latch", Value::reg(YName, i32())}});
  Value C = B.call(fresh(), Type::intTy(1), "cond", {});
  B.condBr(C, "latch", "done");

  B.block("latch");
  B.binary(Op, YName, Z, c32(K));
  B.br("header");

  B.block("done");
  B.call("", Type::voidTy(), "sink", {Z});
  B.ret(Z);
}

} // namespace

ir::Module crellvm::workload::generateModule(const GenOptions &Opts) {
  RNG R(Opts.Seed);
  Module M;
  M.Globals.push_back(GlobalVar{"G", Type::intTy(32), 1});
  M.Globals.push_back(GlobalVar{"arr", Type::intTy(32), 8});
  M.Decls.push_back(FuncDecl{"sink", Type::voidTy(), {Type::intTy(32)}});
  M.Decls.push_back(FuncDecl{"vsink", Type::voidTy(), {Type::vecTy(4, 32)}});
  M.Decls.push_back(
      FuncDecl{"barp", Type::voidTy(), {Type::ptrTy(), Type::ptrTy()}});
  M.Decls.push_back(FuncDecl{"cond", Type::intTy(1), {}});
  M.Decls.push_back(FuncDecl{"get", Type::intTy(32), {}});
  M.Decls.push_back(
      FuncDecl{"llvm.lifetime.start", Type::voidTy(), {Type::ptrTy()}});
  M.Decls.push_back(
      FuncDecl{"llvm.lifetime.end", Type::voidTy(), {Type::ptrTy()}});

  for (unsigned FI = 0; FI != Opts.NumFunctions; ++FI) {
    Function F;
    F.Name = "f" + std::to_string(FI);
    bool Vec = R.chance(Opts.VecFunctionPct, 100);
    if (Vec) {
      F.RetTy = Type::voidTy();
      F.Params.push_back(Param{"v", Type::vecTy(4, 32)});
    } else {
      F.RetTy = Type::intTy(32);
      unsigned NP = 1 + R.below(3);
      for (unsigned P = 0; P != NP; ++P)
        F.Params.push_back(
            Param{"a" + std::to_string(P), Type::intTy(32)});
    }
    FunctionGen G(R, Opts, F);
    if (Vec) {
      G.vecBody();
    } else {
      uint64_t Roll = R.below(100);
      if (Roll < Opts.LoopPct)
        G.loop();
      else if (Roll < Opts.LoopPct + 12)
        G.fig15();
      else if (Roll < Opts.LoopPct + 18)
        G.preInsertDiv();
      else if (Roll < Opts.LoopPct + 26)
        G.foldPhi();
      else if (Roll < Opts.LoopPct + 32)
        G.switchDispatch();
      else if (Roll < Opts.LoopPct + 48)
        G.diamond();
      else
        G.straightLine();
    }
    M.Funcs.push_back(std::move(F));
  }
  return M;
}
