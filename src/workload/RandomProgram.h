//===- workload/RandomProgram.h - Random IR generation ----------*- C++ -*-===//
///
/// \file
/// The CSmith analog (DESIGN.md §2): deterministic, seeded generation of
/// well-formed IR modules whose feature mix exercises every code path of
/// the four passes and of the validator:
///
///  - promotable allocas in all three mem2reg shapes, including the
///    load-before-store-in-a-loop shape (PR24179 trigger) and the
///    single-store-of-a-constant-expression shape (PR33673 trigger);
///  - redundant pure expressions, commutative twins, and gep pairs with
///    mixed inbounds flags (PR28562/PR29057 triggers);
///  - partially redundant expressions in Fig. 15 shapes (PRE, including
///    the branch-derived-constant case) and insertion shapes (D38619);
///  - loops with preheaders and invariant code (licm), including
///    constant divisions (the division-by-zero #NS class);
///  - instcombine feedstock drawn from the micro-opt catalog;
///  - the not-supported features: vector arithmetic and lifetime
///    intrinsics (the dominant #NS classes of paper §7).
///
/// All results are observable through calls to external functions, so
/// differential interpretation is meaningful.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_WORKLOAD_RANDOMPROGRAM_H
#define CRELLVM_WORKLOAD_RANDOMPROGRAM_H

#include "ir/Module.h"

#include <cstdint>

namespace crellvm {
namespace workload {

/// Feature mix for generation. Percentages are per-function probabilities.
struct GenOptions {
  uint64_t Seed = 1;
  unsigned NumFunctions = 4;
  /// Function is vector-typed arithmetic (#NS, paper: 90% of #NS).
  unsigned VecFunctionPct = 4;
  /// Promotable allocas are wrapped in lifetime intrinsics (#NS for
  /// mem2reg; drives the paper's CSmith-experiment 27.7% NS rate).
  unsigned LifetimePct = 10;
  /// Loop-based function bodies.
  unsigned LoopPct = 45;
  /// Emit gep pairs with mixed inbounds flags.
  unsigned GepPairPct = 25;
  /// Store a trapping constant expression into a promotable slot.
  unsigned ConstexprStorePct = 6;
  /// Emit a constant division inside a loop (licm #NS class).
  unsigned LoopDivPct = 15;
};

/// Generates one deterministic module.
ir::Module generateModule(const GenOptions &Opts);

} // namespace workload
} // namespace crellvm

#endif // CRELLVM_WORKLOAD_RANDOMPROGRAM_H
