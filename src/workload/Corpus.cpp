//===- workload/Corpus.cpp --------------------------------------*- C++ -*-===//

#include "workload/Corpus.h"

using namespace crellvm;
using namespace crellvm::workload;

namespace {

/// Raw row data: name, paper LOC (in K), paper mem2reg #V (used for
/// scaling), and the not-supported tilt (0 = almost none, 1 = mild,
/// 2 = heavy — sendmail/libquantum/ghostscript had 10-70% #NS rows).
struct RowSpec {
  const char *Name;
  uint64_t KLoc10;   // LOC / 100, so 168.16K -> 1682
  unsigned PaperV;   // paper mem2reg #V
  unsigned NsTilt;
};

const RowSpec Rows[] = {
    {"400.perlbench", 1682, 1750, 0},
    {"401.bzip2", 83, 90, 0},
    {"403.gcc", 5175, 5430, 0},
    {"429.mcf", 27, 24, 0},
    {"433.milc", 150, 235, 0},
    {"445.gobmk", 1962, 2640, 0},
    {"456.hmmer", 360, 558, 0},
    {"458.sjeng", 139, 130, 0},
    {"462.libquantum", 44, 123, 2},
    {"464.h264ref", 516, 532, 0},
    {"470.lbm", 12, 19, 0},
    {"482.sphinx3", 251, 364, 0},
    {"sendmail-8.15.2", 1387, 536, 2},
    {"emacs-25.1", 4635, 5150, 0},
    {"python-3.4.1", 4864, 8780, 0},
    {"gimp-2.8.18", 10042, 19450, 1},
    {"ghostscript-9.14.0", 7977, 13000, 2},
    {"LLVM nightly test", 13588, 17980, 1},
};

} // namespace

std::vector<Project> crellvm::workload::paperCorpus(unsigned Scale) {
  if (Scale == 0)
    Scale = 1;
  std::vector<Project> Out;
  uint64_t Seed = 0x5eed;
  for (const RowSpec &Row : Rows) {
    Project P;
    P.Name = Row.Name;
    P.PaperKLoc = Row.KLoc10;
    // ~1/160 of the paper's per-row function count, floor 3.
    P.NumFunctions = Row.PaperV / (160 * Scale);
    if (P.NumFunctions < 3)
      P.NumFunctions = 3;
    P.Opts.Seed = Seed++;
    P.Opts.NumFunctions = 4;
    switch (Row.NsTilt) {
    case 0:
      P.Opts.VecFunctionPct = 3;
      P.Opts.LifetimePct = 6;
      break;
    case 1:
      P.Opts.VecFunctionPct = 10;
      P.Opts.LifetimePct = 12;
      break;
    default:
      P.Opts.VecFunctionPct = 25;
      P.Opts.LifetimePct = 25;
      break;
    }
    Out.push_back(std::move(P));
  }
  return Out;
}

ir::Module crellvm::workload::generateProjectModule(const Project &P,
                                                    unsigned Index) {
  GenOptions Opts = P.Opts;
  Opts.Seed = P.Opts.Seed * 1000003 + Index;
  unsigned Remaining = P.NumFunctions - Index * 4;
  Opts.NumFunctions = Remaining < 4 ? Remaining : 4;
  return generateModule(Opts);
}
