//===- server/Protocol.h - Validation service wire protocol -----*- C++ -*-===//
///
/// \file
/// The `crellvm-served` wire protocol: length-prefixed frames over a
/// byte stream (a Unix-domain socket in production, an in-process string
/// round-trip in the loopback transport used by tests).
///
/// **Framing.** Each message is a 4-byte big-endian payload length
/// followed by that many payload bytes. Frames above MaxFrameBytes are
/// rejected before allocation — a malformed or hostile peer can cost at
/// most one bounded read, never an OOM, and the bound is enforced at the
/// frame layer so it holds identically for every payload codec. Reads
/// and writes loop over partial transfers and EINTR.
///
/// **Payload codecs.** A connection starts in `json` (UTF-8 text, the
/// legacy protocol byte-for-byte). A client may open with a `hello`
/// request advertising `codecs:["json","cbj1"]`; the daemon answers with
/// its pick in `codec` and *both* directions switch to it for every
/// frame after the ack (`cbj1` is json/Binary.h with per-connection
/// intern tables, reset at the hello). Old clients that never send a
/// hello stay on json — zero protocol break. See DESIGN.md §16.
///
/// **Requests** (`"type"` selects the kind; `"id"` is an opaque client
/// token echoed in the response, which is how clients pipeline many
/// requests on one connection even though batching completes them out of
/// order):
///
///   {"type":"validate","id":7,"seed":3,"bugs":"fixed","deadline_ms":500}
///   {"type":"validate","id":8,"module":"<.ll text>"}
///   {"type":"stats","id":1}
///   {"type":"ping","id":2}
///   {"type":"ping","id":2,"deep":true,"deadline_ms":250}
///   {"type":"shutdown","id":3}
///
/// A validate request names its unit either by `seed` (the server
/// generates the same module `crellvm-validate --seed S` would) or by
/// `module` (verbatim .ll text). `bugs` picks the pass configuration
/// (371 | 501pre | 501post | fixed); `deadline_ms` bounds queue+run time.
///
/// A `ping` answer distinguishes *liveness* from *readiness*: any answer
/// at all proves the process is alive and its event loop is turning,
/// while readiness is `status:ok` with an empty `reason` — a draining
/// daemon still answers Ok but stamps `reason:"draining"`, so a
/// supervisor admits members by readiness and health-checks them by
/// liveness (src/supervise/). `deep:true` against a cluster router fans
/// the ping to every member within `deadline_ms` and returns the
/// per-member liveness map in `stats`.
///
/// **Responses** echo `id` and carry `status`:
///
///   ok                  per-pass verdict counts, failures, latencies
///   rejected            backpressure (`reason`: queue_full with
///                       retry_after_ms, shutting_down, or quarantined) —
///                       the request was NOT validated
///   deadline_exceeded   admitted but expired before validation started
///   internal_error      admitted and started, but the unit threw or blew
///                       its watchdog deadline; the failure is isolated
///                       to this request (reason says what happened, the
///                       batch and the daemon keep running)
///   error               malformed request (reason says why)
///
/// The protocol is *outside* the TCB: it moves bytes to and from the
/// same driver + checker stack `crellvm-validate` runs, and a verdict is
/// only ever produced by that stack (DESIGN.md §12).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SERVER_PROTOCOL_H
#define CRELLVM_SERVER_PROTOCOL_H

#include "driver/Driver.h"
#include "json/Binary.h"
#include "json/Json.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace crellvm {
namespace server {

/// Upper bound on one frame's payload; a module plus headroom.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Version of the stats JSON document a `stats` request returns. Every
/// member stamps its document with a top-level `schema_version` (plus its
/// `member_id`); the cluster router's aggregator refuses — with a named
/// error, not a silent merge — any member whose version differs, because
/// summing counters across incompatible schemas produces numbers that
/// *look* right (the failure mode monitoring must never have). Bump this
/// whenever a counter's meaning changes, not just when one is added.
/// 2: added the "batching" and "plan" sections (members and router are
///    rebuilt together, and mixing documents with and without them would
///    silently under-count the new totals).
constexpr uint64_t StatsSchemaVersion = 2;

/// Hard lower bound on the `retry_after_ms` backpressure hint. A cold
/// daemon has an empty latency histogram (p50 = 0), and a hint of 0 ms
/// turns every backpressured client into a hot-spinning one — so the
/// hint never drops below this, no matter how the floor is configured.
constexpr uint64_t MinRetryAfterMs = 5;

/// Payload codec of one direction of one connection. Json is the legacy
/// text protocol; Cbj1 is the interned binary encoding (json/Binary.h)
/// with tables persisting for the life of the connection.
enum class WireCodec : uint8_t { Json, Cbj1 };

/// "json" / "cbj1" — the names used in hello `codecs` lists and acks.
const char *codecName(WireCodec C);
std::optional<WireCodec> codecByName(const std::string &Name);

/// Prepends the 4-byte big-endian length header.
std::string encodeFrame(const std::string &Payload);

/// Writes one frame to \p Fd, looping over partial writes. False on any
/// I/O error (the connection is then unusable).
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one frame from \p Fd. False on EOF, I/O error, or an oversize
/// header (\p Err names the cause; empty string means clean EOF).
bool readFrame(int Fd, std::string &Out, std::string *Err = nullptr);

enum class RequestKind : uint8_t { Validate, Stats, Ping, Shutdown, Hello };

struct Request {
  RequestKind Kind = RequestKind::Ping;
  int64_t Id = 0;
  /// Validate: verbatim module text; empty means generate from Seed.
  std::string ModuleText;
  uint64_t Seed = 0;
  bool HasSeed = false;
  /// Bug preset name, as crellvm-validate's --bugs.
  std::string Bugs = "fixed";
  /// Queue-wait + validation budget; 0 = unbounded.
  uint64_t DeadlineMs = 0;
  /// Ping: when true, a cluster router fans the ping to every ring
  /// member (short-lived probe connections, bounded by DeadlineMs) and
  /// reports per-member liveness in the response's Stats object. A plain
  /// daemon answers a deep ping like a shallow one — depth is a routing
  /// concept, and a leaf has nothing to fan to.
  bool Deep = false;
  /// Hello: codec names the client can speak, in preference order.
  std::vector<std::string> Codecs;
};

json::Value requestToValue(const Request &R);
std::optional<Request> requestFromValue(const json::Value &V,
                                        std::string *Err = nullptr);
std::string requestToJson(const Request &R);
std::optional<Request> requestFromJson(const std::string &Text,
                                       std::string *Err = nullptr);

/// The hello a client sends to negotiate \p Want (advertises json too,
/// so the server always has a common pick).
Request helloRequest(WireCodec Want, int64_t Id = 0);

/// The server's pick from an advertised codec list: cbj1 when offered
/// (it is strictly cheaper on the hot path), else json. std::nullopt if
/// the list names nothing the server speaks.
std::optional<WireCodec> pickCodec(const std::vector<std::string> &Offered);

enum class ResponseStatus : uint8_t {
  Ok,
  Rejected,
  DeadlineExceeded,
  InternalError,
  Error,
};

const char *statusName(ResponseStatus S);

/// Per-pass verdict counts, the comparable core of driver::PassStats —
/// exactly the fields that must be bit-identical between the service and
/// a standalone `crellvm-validate` run on the same unit.
struct PassVerdicts {
  uint64_t V = 0, F = 0, NS = 0, Diff = 0;
  /// Differential-execution oracle divergences (checker-accepted but
  /// observably wrong; nonzero only when the daemon runs --oracle). This
  /// is how the one historical miscompilation the checker accepts
  /// (PR33673) is visible to campaign clients end-to-end.
  uint64_t Div = 0;
  bool operator==(const PassVerdicts &O) const = default;
};

struct Response {
  int64_t Id = 0;
  ResponseStatus Status = ResponseStatus::Error;
  std::string Reason;          ///< rejected/error detail
  uint64_t RetryAfterMs = 0;   ///< rejected(queue_full) backoff hint
  std::map<std::string, PassVerdicts> Passes;
  std::vector<std::string> Failures;
  /// First few oracle divergence reports (paired with nonzero Div).
  std::vector<std::string> Divergences;
  uint64_t CacheHits = 0, CacheMisses = 0;
  uint64_t QueueUs = 0, TotalUs = 0;
  /// Hello ack: the codec the server picked ("json" / "cbj1"); empty on
  /// every other response. The ack itself is still encoded with the
  /// *previous* codec — the switch happens on the next frame.
  std::string Codec;
  /// Stats-request payload (object), null otherwise.
  json::Value Stats;

  uint64_t totalV() const;
  uint64_t totalF() const;
  uint64_t totalNS() const;
  uint64_t totalDiff() const;
  uint64_t totalDiv() const;
};

json::Value responseToValue(const Response &R);
std::optional<Response> responseFromValue(const json::Value &V,
                                          std::string *Err = nullptr);
std::string responseToJson(const Response &R);
std::optional<Response> responseFromJson(const std::string &Text,
                                         std::string *Err = nullptr);

/// Collapses a driver StatsMap into the wire verdict map.
std::map<std::string, PassVerdicts> passVerdictsOf(const driver::StatsMap &S);

/// One direction of one connection's payload codec. Starts in json (the
/// legacy protocol, stateless); use() switches codec and resets any
/// session state — call it exactly at the hello-ack boundary, on both
/// ends, so the cbj1 intern tables stay in lockstep.
class WireEncoder {
public:
  explicit WireEncoder(WireCodec C = WireCodec::Json) : C(C) {}

  WireCodec codec() const { return C; }
  void use(WireCodec Next) {
    C = Next;
    Writer.reset();
  }

  /// Encodes one frame payload. Json cannot fail; cbj1 fails only on
  /// over-deep nesting (then the session is poisoned — close the
  /// connection).
  std::optional<std::string> encode(const json::Value &V,
                                    std::string *Err = nullptr) {
    if (C == WireCodec::Json)
      return V.write();
    return Writer.encode(V, Err);
  }

private:
  WireCodec C;
  json::BinaryWriter Writer;
};

/// Decoding mirror of WireEncoder. A failed cbj1 frame rolls the intern
/// table back to its pre-frame state (json/Binary.h), so the caller can
/// answer an error and keep reading — exactly the legacy behavior for a
/// bad JSON frame.
class WireDecoder {
public:
  explicit WireDecoder(WireCodec C = WireCodec::Json) : C(C) {}

  WireCodec codec() const { return C; }
  void use(WireCodec Next) {
    C = Next;
    Reader.reset();
  }

  std::optional<json::Value> decode(const std::string &Payload,
                                    std::string *Err = nullptr) {
    if (C == WireCodec::Json)
      return json::parse(Payload, Err);
    return Reader.decode(Payload, Err);
  }

private:
  WireCodec C;
  json::BinaryReader Reader;
};

} // namespace server
} // namespace crellvm

#endif // CRELLVM_SERVER_PROTOCOL_H
