//===- server/Protocol.h - Validation service wire protocol -----*- C++ -*-===//
///
/// \file
/// The `crellvm-served` wire protocol: length-prefixed JSON frames over a
/// byte stream (a Unix-domain socket in production, an in-process string
/// round-trip in the loopback transport used by tests).
///
/// **Framing.** Each message is a 4-byte big-endian payload length
/// followed by that many bytes of UTF-8 JSON. Frames above MaxFrameBytes
/// are rejected before allocation — a malformed or hostile peer can cost
/// at most one bounded read, never an OOM. Reads and writes loop over
/// partial transfers and EINTR.
///
/// **Requests** (`"type"` selects the kind; `"id"` is an opaque client
/// token echoed in the response, which is how clients pipeline many
/// requests on one connection even though batching completes them out of
/// order):
///
///   {"type":"validate","id":7,"seed":3,"bugs":"fixed","deadline_ms":500}
///   {"type":"validate","id":8,"module":"<.ll text>"}
///   {"type":"stats","id":1}
///   {"type":"ping","id":2}
///   {"type":"shutdown","id":3}
///
/// A validate request names its unit either by `seed` (the server
/// generates the same module `crellvm-validate --seed S` would) or by
/// `module` (verbatim .ll text). `bugs` picks the pass configuration
/// (371 | 501pre | 501post | fixed); `deadline_ms` bounds queue+run time.
///
/// **Responses** echo `id` and carry `status`:
///
///   ok                  per-pass verdict counts, failures, latencies
///   rejected            backpressure (`reason`: queue_full with
///                       retry_after_ms, shutting_down, or quarantined) —
///                       the request was NOT validated
///   deadline_exceeded   admitted but expired before validation started
///   internal_error      admitted and started, but the unit threw or blew
///                       its watchdog deadline; the failure is isolated
///                       to this request (reason says what happened, the
///                       batch and the daemon keep running)
///   error               malformed request (reason says why)
///
/// The protocol is *outside* the TCB: it moves bytes to and from the
/// same driver + checker stack `crellvm-validate` runs, and a verdict is
/// only ever produced by that stack (DESIGN.md §12).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SERVER_PROTOCOL_H
#define CRELLVM_SERVER_PROTOCOL_H

#include "driver/Driver.h"
#include "json/Json.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace crellvm {
namespace server {

/// Upper bound on one frame's payload; a module plus headroom.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Version of the stats JSON document a `stats` request returns. Every
/// member stamps its document with a top-level `schema_version` (plus its
/// `member_id`); the cluster router's aggregator refuses — with a named
/// error, not a silent merge — any member whose version differs, because
/// summing counters across incompatible schemas produces numbers that
/// *look* right (the failure mode monitoring must never have). Bump this
/// whenever a counter's meaning changes, not just when one is added.
constexpr uint64_t StatsSchemaVersion = 1;

/// Prepends the 4-byte big-endian length header.
std::string encodeFrame(const std::string &Payload);

/// Writes one frame to \p Fd, looping over partial writes. False on any
/// I/O error (the connection is then unusable).
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one frame from \p Fd. False on EOF, I/O error, or an oversize
/// header (\p Err names the cause; empty string means clean EOF).
bool readFrame(int Fd, std::string &Out, std::string *Err = nullptr);

enum class RequestKind : uint8_t { Validate, Stats, Ping, Shutdown };

struct Request {
  RequestKind Kind = RequestKind::Ping;
  int64_t Id = 0;
  /// Validate: verbatim module text; empty means generate from Seed.
  std::string ModuleText;
  uint64_t Seed = 0;
  bool HasSeed = false;
  /// Bug preset name, as crellvm-validate's --bugs.
  std::string Bugs = "fixed";
  /// Queue-wait + validation budget; 0 = unbounded.
  uint64_t DeadlineMs = 0;
};

std::string requestToJson(const Request &R);
std::optional<Request> requestFromJson(const std::string &Text,
                                       std::string *Err = nullptr);

enum class ResponseStatus : uint8_t {
  Ok,
  Rejected,
  DeadlineExceeded,
  InternalError,
  Error,
};

const char *statusName(ResponseStatus S);

/// Per-pass verdict counts, the comparable core of driver::PassStats —
/// exactly the fields that must be bit-identical between the service and
/// a standalone `crellvm-validate` run on the same unit.
struct PassVerdicts {
  uint64_t V = 0, F = 0, NS = 0, Diff = 0;
  /// Differential-execution oracle divergences (checker-accepted but
  /// observably wrong; nonzero only when the daemon runs --oracle). This
  /// is how the one historical miscompilation the checker accepts
  /// (PR33673) is visible to campaign clients end-to-end.
  uint64_t Div = 0;
  bool operator==(const PassVerdicts &O) const = default;
};

struct Response {
  int64_t Id = 0;
  ResponseStatus Status = ResponseStatus::Error;
  std::string Reason;          ///< rejected/error detail
  uint64_t RetryAfterMs = 0;   ///< rejected(queue_full) backoff hint
  std::map<std::string, PassVerdicts> Passes;
  std::vector<std::string> Failures;
  /// First few oracle divergence reports (paired with nonzero Div).
  std::vector<std::string> Divergences;
  uint64_t CacheHits = 0, CacheMisses = 0;
  uint64_t QueueUs = 0, TotalUs = 0;
  /// Stats-request payload (object), null otherwise.
  json::Value Stats;

  uint64_t totalV() const;
  uint64_t totalF() const;
  uint64_t totalNS() const;
  uint64_t totalDiff() const;
  uint64_t totalDiv() const;
};

std::string responseToJson(const Response &R);
std::optional<Response> responseFromJson(const std::string &Text,
                                         std::string *Err = nullptr);

/// Collapses a driver StatsMap into the wire verdict map.
std::map<std::string, PassVerdicts> passVerdictsOf(const driver::StatsMap &S);

} // namespace server
} // namespace crellvm

#endif // CRELLVM_SERVER_PROTOCOL_H
