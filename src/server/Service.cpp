//===- server/Service.cpp ---------------------------------------*- C++ -*-===//

#include "server/Service.h"

#include "ir/Parser.h"
#include "support/FaultInjection.h"
#include "workload/RandomProgram.h"

#include <condition_variable>

#include <unistd.h>

using namespace crellvm;
using namespace crellvm::server;

namespace {

std::optional<passes::BugConfig> parseBugs(const std::string &Name) {
  // Version presets plus the flag-level historical bugs (pr24179, ...):
  // the campaign's bug-hunt mode plants one bug at a time through the
  // same wire field.
  return passes::BugConfig::byName(Name);
}

json::Value histJson(const Histogram &H) {
  Histogram::Snapshot S = H.snapshot();
  json::Value O = json::Value::object();
  O.set("count", json::Value(S.Count));
  O.set("sum", json::Value(S.Sum));
  O.set("mean", json::Value(static_cast<uint64_t>(S.mean() + 0.5)));
  O.set("p50", json::Value(S.quantile(0.50)));
  O.set("p95", json::Value(S.quantile(0.95)));
  O.set("p99", json::Value(S.quantile(0.99)));
  O.set("max", json::Value(S.Max));
  // Raw log2 bucket counts. Quantiles cannot be averaged across members,
  // but bucket counts sum exactly — the router merges these and derives
  // true cluster-wide percentiles (trailing zero buckets are trimmed).
  json::Value Buckets = json::Value::array();
  unsigned Last = Histogram::NumBuckets;
  while (Last > 0 && S.Buckets[Last - 1] == 0)
    --Last;
  for (unsigned I = 0; I != Last; ++I)
    Buckets.push(json::Value(S.Buckets[I]));
  O.set("buckets", std::move(Buckets));
  return O;
}

const char *policyName(cache::CachePolicy P) {
  switch (P) {
  case cache::CachePolicy::Off:
    return "off";
  case cache::CachePolicy::ReadOnly:
    return "ro";
  case cache::CachePolicy::ReadWrite:
    return "rw";
  }
  return "?";
}

} // namespace

namespace {
plan::PlanManagerOptions
planOptionsFor(plan::PlanMode Mode, cache::ValidationCache &Cache) {
  plan::PlanManagerOptions PO;
  PO.Mode = Mode;
  PO.Disk = Cache.enabled() ? Cache.diskStore() : nullptr;
  return PO;
}
} // namespace

ValidationService::ValidationService(ServiceOptions Options)
    : Opts(std::move(Options)), Cache(Opts.Cache),
      Plans(planOptionsFor(Opts.Plan, Cache)), Pool(Opts.Jobs),
      Paused(Opts.StartPaused) {
  // The service owns the one warm cache and plan runtime; whatever the
  // caller put in the base driver options is replaced.
  Opts.Driver.Cache = Cache.enabled() ? &Cache : nullptr;
  Opts.Driver.Plans = Opts.Plan != plan::PlanMode::Off ? &Plans : nullptr;
  if (Opts.MemberId.empty())
    Opts.MemberId = "pid:" + std::to_string(static_cast<uint64_t>(::getpid()));
  Dispatcher = std::thread([this] { dispatcherLoop(); });
}

ValidationService::~ValidationService() {
  {
    std::lock_guard<std::mutex> L(M);
    Draining = true;
    Stopping = true;
    Paused = false;
  }
  QueueCv.notify_all();
  Dispatcher.join();
}

void ValidationService::resume() {
  {
    std::lock_guard<std::mutex> L(M);
    Paused = false;
  }
  QueueCv.notify_all();
}

void ValidationService::beginShutdown() {
  {
    std::lock_guard<std::mutex> L(M);
    Draining = true;
    // A paused service still owes verdicts to everything it admitted:
    // drain implies dispatching.
    Paused = false;
  }
  QueueCv.notify_all();
}

bool ValidationService::draining() const {
  std::lock_guard<std::mutex> L(M);
  return Draining;
}

size_t ValidationService::queueDepth() const {
  std::lock_guard<std::mutex> L(M);
  return Queue.size();
}

ServiceCounters ValidationService::counters() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}

std::string ValidationService::unitKey(const Request &R) {
  // Module-text identity is its FNV-1a hash; seeds are their own identity.
  if (!R.ModuleText.empty()) {
    uint64_t H = 1469598103934665603ull;
    for (char C : R.ModuleText) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
    return "mod:" + std::to_string(H) + "|" + R.Bugs;
  }
  return "seed:" + std::to_string(R.Seed) + "|" + R.Bugs;
}

void ValidationService::noteUnitResult(const Request &R, bool Failed) {
  if (!Opts.QuarantineAfter)
    return;
  std::lock_guard<std::mutex> L(M);
  if (Failed)
    ++FailStreaks[unitKey(R)];
  else
    FailStreaks.erase(unitKey(R));
}

uint64_t ValidationService::retryAfterMsHint() {
  // Half a typical request latency is a reasonable first retry; the floor
  // keeps the hint sane before any request completed. On a cold daemon
  // the histogram is empty (p50 = 0), so if the configured floor is 0 the
  // hint would be 0 ms and every backpressured client would hot-spin —
  // MinRetryAfterMs is a hard lower bound, independent of configuration.
  uint64_t P50Us = TotalLatencyUs.snapshot().quantile(0.5);
  uint64_t Hint = P50Us / 2000;
  if (Hint < Opts.RetryAfterMsFloor)
    Hint = Opts.RetryAfterMsFloor;
  return Hint < MinRetryAfterMs ? MinRetryAfterMs : Hint;
}

void ValidationService::submit(const Request &R, Callback Done) {
  {
    std::lock_guard<std::mutex> L(M);
    ++Stats.Received;
  }
  Response Rsp;
  Rsp.Id = R.Id;

  switch (R.Kind) {
  case RequestKind::Ping:
    // Liveness vs. readiness (Protocol.h): any answer proves the process
    // alive; readiness is Ok with an empty reason. A draining daemon is
    // alive but not ready — still Ok (old health checks keep passing),
    // with the reason supervisors gate admission on.
    Rsp.Status = ResponseStatus::Ok;
    {
      std::lock_guard<std::mutex> L(M);
      if (Draining)
        Rsp.Reason = "draining";
    }
    Done(std::move(Rsp));
    return;
  case RequestKind::Stats:
    Rsp.Status = ResponseStatus::Ok;
    Rsp.Stats = statsJson();
    {
      std::lock_guard<std::mutex> L(M);
      ++Stats.StatsRequests;
    }
    Done(std::move(Rsp));
    return;
  case RequestKind::Shutdown:
    beginShutdown();
    Rsp.Status = ResponseStatus::Ok;
    Rsp.Reason = "draining";
    Done(std::move(Rsp));
    return;
  case RequestKind::Hello:
    // Codec negotiation is transport business; SocketServer answers it
    // before the request ever reaches a handler. A hello arriving here
    // came over the loopback transport, which has no frames to re-encode
    // — so the honest answer is the codec loopback already speaks.
    Rsp.Status = ResponseStatus::Ok;
    Rsp.Codec = codecName(WireCodec::Json);
    Done(std::move(Rsp));
    return;
  case RequestKind::Validate:
    break;
  }

  // Admission-time validation: anything malformed is answered now, on the
  // caller's thread, without consuming queue capacity.
  auto Bugs = parseBugs(R.Bugs);
  if (!Bugs) {
    std::lock_guard<std::mutex> L(M);
    ++Stats.BadRequests;
    Rsp.Status = ResponseStatus::Error;
    Rsp.Reason = "unknown bugs preset '" + R.Bugs + "'";
  }
  std::optional<ir::Module> Mod;
  if (Bugs && !R.ModuleText.empty()) {
    std::string Err;
    Mod = ir::parseModule(R.ModuleText, &Err);
    if (!Mod) {
      std::lock_guard<std::mutex> L(M);
      ++Stats.BadRequests;
      Rsp.Status = ResponseStatus::Error;
      Rsp.Reason = "module parse error: " + Err;
    }
  }
  if (Rsp.Status == ResponseStatus::Error && !Rsp.Reason.empty()) {
    Done(std::move(Rsp));
    return;
  }

  // Quarantine: a unit that repeatedly crashed or hung gets refused at
  // admission instead of burning another worker (and another watchdog
  // deadline). The rejection is deliberate, so the client must not retry
  // it the way it retries queue_full.
  if (Opts.QuarantineAfter) {
    std::lock_guard<std::mutex> L(M);
    auto It = FailStreaks.find(unitKey(R));
    if (It != FailStreaks.end() && It->second >= Opts.QuarantineAfter) {
      ++Stats.RejectedQuarantined;
      Rsp.Status = ResponseStatus::Rejected;
      Rsp.Reason = "quarantined";
    }
  }
  if (Rsp.Status == ResponseStatus::Rejected) {
    Done(std::move(Rsp));
    return;
  }

  Pending P;
  P.R = R;
  P.Done = std::move(Done);
  P.Mod = std::move(Mod);
  P.Bugs = *Bugs;
  P.Arrival = Clock::now();
  if (R.DeadlineMs)
    P.Deadline = P.Arrival + std::chrono::milliseconds(R.DeadlineMs);

  bool Notify = false;
  {
    std::lock_guard<std::mutex> L(M);
    if (Draining) {
      ++Stats.RejectedShutdown;
      Rsp.Status = ResponseStatus::Rejected;
      Rsp.Reason = "shutting_down";
    } else if (Queue.size() >= Opts.QueueMax ||
               fault::shouldFail("queue.admit")) {
      // The chaos site models admission pressure: a forced shed is
      // answered exactly like a genuinely full queue (rejected +
      // retry_after_ms), so load is shed, never deadlocked on.
      ++Stats.RejectedQueueFull;
      Rsp.Status = ResponseStatus::Rejected;
      Rsp.Reason = "queue_full";
      Rsp.RetryAfterMs = retryAfterMsHint();
    } else {
      ++Stats.Accepted;
      Queue.push_back(std::move(P));
      Notify = true;
    }
  }
  if (Notify) {
    QueueCv.notify_all();
    return;
  }
  P.Done(std::move(Rsp)); // rejected: P was not moved into the queue
}

Response ValidationService::call(const Request &R) {
  struct Waiter {
    std::mutex M;
    std::condition_variable Cv;
    bool Ready = false;
    Response Rsp;
  };
  auto W = std::make_shared<Waiter>();
  submit(R, [W](Response Rsp) {
    std::lock_guard<std::mutex> L(W->M);
    W->Rsp = std::move(Rsp);
    W->Ready = true;
    W->Cv.notify_all();
  });
  std::unique_lock<std::mutex> L(W->M);
  W->Cv.wait(L, [&W] { return W->Ready; });
  return W->Rsp;
}

std::vector<ValidationService::Pending> ValidationService::takeBatchLocked() {
  std::vector<Pending> Batch;
  if (Queue.empty())
    return Batch;
  // One driver batch shares one BugConfig, so coalesce only requests with
  // the front's preset; others keep their queue position for a later
  // batch (FIFO across presets is preserved within each preset).
  const std::string Preset = Queue.front().R.Bugs;
  for (auto It = Queue.begin();
       It != Queue.end() && Batch.size() < Opts.BatchMax;) {
    if (It->R.Bugs == Preset) {
      Batch.push_back(std::move(*It));
      It = Queue.erase(It);
    } else {
      ++It;
    }
  }
  return Batch;
}

void ValidationService::finishOne(Pending &P, Response Rsp,
                                  Clock::time_point BatchStart) {
  auto Now = Clock::now();
  auto Us = [](Clock::duration D) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(D).count());
  };
  Rsp.Id = P.R.Id;
  Rsp.QueueUs = Us(BatchStart - P.Arrival);
  Rsp.TotalUs = Us(Now - P.Arrival);
  QueueLatencyUs.record(Rsp.QueueUs);
  TotalLatencyUs.record(Rsp.TotalUs);
  {
    std::lock_guard<std::mutex> L(M);
    if (Rsp.Status == ResponseStatus::DeadlineExceeded) {
      ++Stats.DeadlineExpired;
    } else if (Rsp.Status == ResponseStatus::InternalError) {
      ++Stats.InternalErrors;
    } else {
      ++Stats.Completed;
      Stats.VerdictsV += Rsp.totalV();
      Stats.VerdictsF += Rsp.totalF();
      Stats.VerdictsNS += Rsp.totalNS();
      Stats.DiffMismatches += Rsp.totalDiff();
      Stats.OracleDivergences += Rsp.totalDiv();
      Stats.CacheHits += Rsp.CacheHits;
      Stats.CacheMisses += Rsp.CacheMisses;
    }
  }
  Callback Done = std::move(P.Done);
  Done(std::move(Rsp));
}

void ValidationService::runBatch(std::vector<Pending> &Batch) {
  Clock::time_point BatchStart = Clock::now();
  // Counted at dispatch, not at completion: per-unit callbacks answer
  // clients while the batch is still running, and a stats probe racing
  // them must already see the batch.
  BatchSizes.record(Batch.size());
  {
    std::lock_guard<std::mutex> L(M);
    ++Stats.Batches;
  }
  static std::atomic<uint64_t> BatchSeq{0};
  driver::DriverOptions DOpts = Opts.Driver;
  DOpts.Cache = Cache.enabled() ? &Cache : nullptr;
  DOpts.ExchangeTag = "srv" + std::to_string(
                                  BatchSeq.fetch_add(1, std::memory_order_relaxed));

  driver::BatchOptions BOpts;
  BOpts.Jobs = Pool.numThreads();
  BOpts.UnitTimeoutMs = Opts.UnitTimeoutMs;
  BOpts.CancelUnit = [&Batch](size_t I) {
    const Pending &P = Batch[I];
    return P.R.DeadlineMs != 0 && Clock::now() > P.Deadline;
  };
  BOpts.OnUnitDone = [this, &Batch, BatchStart](size_t I,
                                                const driver::StatsMap &Unit,
                                                driver::UnitOutcome Outcome,
                                                const std::string &Detail) {
    Response Rsp;
    switch (Outcome) {
    case driver::UnitOutcome::Cancelled:
      Rsp.Status = ResponseStatus::DeadlineExceeded;
      Rsp.Reason = "deadline passed before validation started";
      break;
    case driver::UnitOutcome::InternalError:
      Rsp.Status = ResponseStatus::InternalError;
      Rsp.Reason = "validation unit failed: " + Detail;
      break;
    case driver::UnitOutcome::TimedOut:
      Rsp.Status = ResponseStatus::InternalError;
      Rsp.Reason = "watchdog: " + Detail;
      {
        std::lock_guard<std::mutex> L(M);
        ++Stats.WatchdogTimeouts;
      }
      break;
    case driver::UnitOutcome::Ok:
      Rsp.Status = ResponseStatus::Ok;
      Rsp.Passes = passVerdictsOf(Unit);
      for (const auto &KV : Unit) {
        for (const std::string &S : KV.second.FailureSamples)
          if (Rsp.Failures.size() < 16)
            Rsp.Failures.push_back("[" + KV.first + "] " + S);
        for (const std::string &S : KV.second.OracleSamples)
          if (Rsp.Divergences.size() < 16)
            Rsp.Divergences.push_back(S); // already "[pass]"-prefixed
        Rsp.CacheHits += KV.second.CacheHits;
        Rsp.CacheMisses += KV.second.CacheMisses;
      }
      break;
    }
    // Only Ok and the two failure outcomes touch the quarantine streak; a
    // deadline expiry says nothing about the unit itself.
    if (Outcome != driver::UnitOutcome::Cancelled)
      noteUnitResult(Batch[I].R, Outcome != driver::UnitOutcome::Ok);
    finishOne(Batch[I], std::move(Rsp), BatchStart);
  };

  driver::runBatchValidated(
      Batch.front().Bugs, DOpts, Batch.size(),
      [&Batch](size_t I) {
        const Pending &P = Batch[I];
        if (P.Mod)
          return *P.Mod;
        // Exactly what `crellvm-validate --seed S --modules 1` feeds the
        // driver, so verdicts are comparable bit for bit.
        workload::GenOptions G;
        G.Seed = P.R.Seed;
        return workload::generateModule(G);
      },
      BOpts, &Pool);
}

void ValidationService::dispatcherLoop() {
  for (;;) {
    std::vector<Pending> Batch;
    {
      std::unique_lock<std::mutex> L(M);
      QueueCv.wait(L, [this] {
        return Stopping || (!Paused && !Queue.empty());
      });
      if (Queue.empty()) {
        IdleCv.notify_all();
        if (Stopping)
          return;
        continue;
      }
      // Micro-batching: when the queue is shallower than a full batch,
      // linger briefly so closely spaced submitters coalesce into one
      // driver batch instead of many tiny ones.
      bool Lingered = false, LingerGrew = false;
      if (!Stopping && Opts.BatchLingerUs &&
          Queue.size() < Opts.BatchMax) {
        size_t PreLinger = Queue.size();
        Lingered = true;
        QueueCv.wait_for(L, std::chrono::microseconds(Opts.BatchLingerUs),
                         [this] {
                           return Stopping || Queue.size() >= Opts.BatchMax;
                         });
        LingerGrew = Queue.size() > PreLinger;
      }
      Batch = takeBatchLocked();
      InFlight = Batch.size();
      if (Lingered) {
        ++Stats.LingerWaits;
        if (LingerGrew)
          ++Stats.LingerHits;
      }
      if (!Batch.empty()) {
        // A linger hit is attributed to the batch it fed — the one formed
        // immediately after the wait — so per-preset linger effectiveness
        // reflects which preset's traffic actually coalesced.
        Stats.BatchedUnits += Batch.size();
        PresetBatching &PB = BatchingByPreset[Batch.front().R.Bugs];
        ++PB.Batches;
        PB.Units += Batch.size();
        if (Lingered && LingerGrew)
          ++PB.LingerHits;
      }
    }
    if (!Batch.empty())
      runBatch(Batch);
    {
      std::lock_guard<std::mutex> L(M);
      InFlight = 0;
      if (Queue.empty())
        IdleCv.notify_all();
    }
  }
}

void ValidationService::drain() {
  std::unique_lock<std::mutex> L(M);
  IdleCv.wait(L, [this] { return Queue.empty() && InFlight == 0; });
}

json::Value ValidationService::statsJson() {
  ServiceCounters C;
  size_t Depth;
  bool IsDraining;
  std::map<std::string, PresetBatching> Batching;
  {
    std::lock_guard<std::mutex> L(M);
    C = Stats;
    Depth = Queue.size();
    IsDraining = Draining;
    Batching = BatchingByPreset;
  }

  json::Value Root = json::Value::object();
  // Schema stamp first: the router's aggregator checks these two fields
  // before trusting any counter below them.
  Root.set("schema_version", json::Value(StatsSchemaVersion));
  Root.set("member_id", json::Value(Opts.MemberId));

  json::Value Server = json::Value::object();
  Server.set("draining", json::Value(IsDraining));
  Server.set("jobs", json::Value(static_cast<uint64_t>(Pool.numThreads())));
  Server.set("queue_depth", json::Value(static_cast<uint64_t>(Depth)));
  Server.set("queue_max", json::Value(static_cast<uint64_t>(Opts.QueueMax)));
  Server.set("batch_max", json::Value(static_cast<uint64_t>(Opts.BatchMax)));
  // Campaign clients check this before a bug-hunt: without the oracle the
  // daemon cannot expose checker-accepted miscompilations (PR33673).
  Server.set("oracle", json::Value(Opts.Driver.RunOracle));
  json::Value PoolV = json::Value::object();
  PoolV.set("queue_depth", json::Value(Pool.queueDepth()));
  PoolV.set("active_workers",
            json::Value(static_cast<uint64_t>(Pool.activeWorkers())));
  Server.set("pool", std::move(PoolV));
  Root.set("server", std::move(Server));

  json::Value Req = json::Value::object();
  Req.set("received", json::Value(C.Received));
  Req.set("accepted", json::Value(C.Accepted));
  Req.set("completed", json::Value(C.Completed));
  Req.set("rejected_queue_full", json::Value(C.RejectedQueueFull));
  Req.set("rejected_shutting_down", json::Value(C.RejectedShutdown));
  Req.set("rejected_quarantined", json::Value(C.RejectedQuarantined));
  Req.set("bad_requests", json::Value(C.BadRequests));
  Req.set("deadline_exceeded", json::Value(C.DeadlineExpired));
  Req.set("internal_errors", json::Value(C.InternalErrors));
  Req.set("watchdog_timeouts", json::Value(C.WatchdogTimeouts));
  Req.set("batches", json::Value(C.Batches));
  Req.set("stats_requests", json::Value(C.StatsRequests));
  Root.set("requests", std::move(Req));

  json::Value Verd = json::Value::object();
  Verd.set("V", json::Value(C.VerdictsV));
  Verd.set("F", json::Value(C.VerdictsF));
  Verd.set("NS", json::Value(C.VerdictsNS));
  Verd.set("diff", json::Value(C.DiffMismatches));
  Verd.set("oracle_div", json::Value(C.OracleDivergences));
  Root.set("verdicts", std::move(Verd));

  json::Value CacheV = json::Value::object();
  CacheV.set("policy", json::Value(policyName(Cache.policy())));
  CacheV.set("configured_policy",
             json::Value(policyName(Cache.configuredPolicy())));
  CacheV.set("demotions", json::Value(Cache.demotions()));
  CacheV.set("disk_faults", json::Value(Cache.diskFaults()));
  CacheV.set("hits", json::Value(C.CacheHits));
  CacheV.set("misses", json::Value(C.CacheMisses));
  uint64_t Lookups = C.CacheHits + C.CacheMisses;
  CacheV.set("hit_rate_ppm",
             json::Value(Lookups ? static_cast<uint64_t>(
                                       C.CacheHits * 1000000.0 / Lookups + 0.5)
                                 : 0));
  CacheV.set("mem_entries", json::Value(static_cast<uint64_t>(Cache.memSize())));
  CacheV.set("disk_bytes", json::Value(Cache.diskBytes()));
  Root.set("cache", std::move(CacheV));

  // Micro-batching effectiveness. Flat ints sum across members; the
  // mean is recomputed from the summed fields by the aggregator (a mean
  // of means would weight idle members equally with loaded ones).
  json::Value BatchV = json::Value::object();
  BatchV.set("batches_formed", json::Value(C.Batches));
  BatchV.set("batched_units", json::Value(C.BatchedUnits));
  BatchV.set("linger_waits", json::Value(C.LingerWaits));
  BatchV.set("linger_hits", json::Value(C.LingerHits));
  BatchV.set("mean_batch_size_ppm",
             json::Value(C.Batches
                             ? static_cast<uint64_t>(C.BatchedUnits *
                                                         1000000.0 / C.Batches +
                                                     0.5)
                             : 0));
  json::Value PerPreset = json::Value::object();
  for (const auto &KV : Batching) {
    json::Value E = json::Value::object();
    E.set("batches", json::Value(KV.second.Batches));
    E.set("units", json::Value(KV.second.Units));
    E.set("linger_hits", json::Value(KV.second.LingerHits));
    E.set("mean_batch_size_ppm",
          json::Value(KV.second.Batches
                          ? static_cast<uint64_t>(KV.second.Units * 1000000.0 /
                                                      KV.second.Batches +
                                                  0.5)
                          : 0));
    PerPreset.set(KV.first, std::move(E));
  }
  BatchV.set("per_preset", std::move(PerPreset));
  Root.set("batching", std::move(BatchV));

  // Checker-plan pipeline (plan/PlanManager.h): flat totals sum across
  // members; the nested per_preset detail stays per-member.
  Root.set("plan", Plans.statsJson());

  json::Value Lat = json::Value::object();
  Lat.set("queue", histJson(QueueLatencyUs));
  Lat.set("total", histJson(TotalLatencyUs));
  Root.set("latency_us", std::move(Lat));
  Root.set("batch_size", histJson(BatchSizes));

  // Fault-injection telemetry, so an operator can tell a chaos run (and
  // what it injected) apart from a genuinely failing disk or peer.
  json::Value Chaos = json::Value::object();
  Chaos.set("armed", json::Value(fault::armed()));
  Chaos.set("spec", json::Value(fault::activeSpec()));
  Chaos.set("injected", json::Value(fault::totalInjected()));
  Root.set("chaos", std::move(Chaos));
  return Root;
}

// --- LoopbackTransport -------------------------------------------------------

void LoopbackTransport::submit(const Request &R,
                               ValidationService::Callback Done) {
  std::string Err;
  auto Decoded = requestFromJson(requestToJson(R), &Err);
  if (!Decoded) {
    Response Rsp;
    Rsp.Id = R.Id;
    Rsp.Status = ResponseStatus::Error;
    Rsp.Reason = Err;
    Done(std::move(Rsp));
    return;
  }
  S.submit(*Decoded, [Done = std::move(Done)](Response Rsp) {
    std::string CodecErr;
    auto Back = responseFromJson(responseToJson(Rsp), &CodecErr);
    if (!Back) {
      Response Bad;
      Bad.Id = Rsp.Id;
      Bad.Status = ResponseStatus::Error;
      Bad.Reason = "response codec round-trip failed: " + CodecErr;
      Done(std::move(Bad));
      return;
    }
    Done(std::move(*Back));
  });
}

Response LoopbackTransport::call(const Request &R) {
  struct Waiter {
    std::mutex M;
    std::condition_variable Cv;
    bool Ready = false;
    Response Rsp;
  };
  auto W = std::make_shared<Waiter>();
  submit(R, [W](Response Rsp) {
    std::lock_guard<std::mutex> L(W->M);
    W->Rsp = std::move(Rsp);
    W->Ready = true;
    W->Cv.notify_all();
  });
  std::unique_lock<std::mutex> L(W->M);
  W->Cv.wait(L, [&W] { return W->Ready; });
  return W->Rsp;
}
