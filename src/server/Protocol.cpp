//===- server/Protocol.cpp --------------------------------------*- C++ -*-===//

#include "server/Protocol.h"

#include "support/FaultInjection.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::server;

const char *server::codecName(WireCodec C) {
  switch (C) {
  case WireCodec::Json:
    return "json";
  case WireCodec::Cbj1:
    return "cbj1";
  }
  return "?";
}

std::optional<WireCodec> server::codecByName(const std::string &Name) {
  if (Name == "json")
    return WireCodec::Json;
  if (Name == "cbj1")
    return WireCodec::Cbj1;
  return std::nullopt;
}

Request server::helloRequest(WireCodec Want, int64_t Id) {
  Request R;
  R.Kind = RequestKind::Hello;
  R.Id = Id;
  R.Codecs.push_back(codecName(Want));
  if (Want != WireCodec::Json)
    R.Codecs.push_back(codecName(WireCodec::Json));
  return R;
}

std::optional<WireCodec>
server::pickCodec(const std::vector<std::string> &Offered) {
  bool HasJson = false;
  for (const std::string &Name : Offered) {
    if (Name == "cbj1")
      return WireCodec::Cbj1;
    if (Name == "json")
      HasJson = true;
  }
  if (HasJson)
    return WireCodec::Json;
  return std::nullopt;
}

std::string server::encodeFrame(const std::string &Payload) {
  uint32_t N = static_cast<uint32_t>(Payload.size());
  std::string Out;
  Out.reserve(4 + Payload.size());
  Out.push_back(static_cast<char>((N >> 24) & 0xff));
  Out.push_back(static_cast<char>((N >> 16) & 0xff));
  Out.push_back(static_cast<char>((N >> 8) & 0xff));
  Out.push_back(static_cast<char>(N & 0xff));
  Out += Payload;
  return Out;
}

namespace {

/// Both loops below already retry EINTR and partial transfers; the chaos
/// sites (support/FaultInjection.h) exist to *exercise* those retries:
/// sock.eintr skips one syscall and loops (as a signal would), sock.short
/// caps the transfer at one byte, sock.read/sock.write fail the whole
/// operation mid-frame (peer reset).
bool writeAll(int Fd, const char *Buf, size_t N) {
  while (N) {
    if (fault::shouldFail("sock.write")) {
      errno = ECONNRESET;
      return false;
    }
    if (fault::shouldFail("sock.eintr"))
      continue;
    size_t Chunk = fault::shouldFail("sock.short") ? 1 : N;
    // MSG_NOSIGNAL: a peer that vanished mid-frame must surface as EPIPE,
    // not kill the process (the codec also serves pipes, hence the
    // ENOTSOCK fallback).
    ssize_t W = ::send(Fd, Buf, Chunk, MSG_NOSIGNAL);
    if (W < 0 && errno == ENOTSOCK)
      W = ::write(Fd, Buf, Chunk);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Buf += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

/// Reads exactly \p N bytes; false on EOF or error. \p SawAny reports
/// whether any byte arrived (distinguishes clean EOF from truncation).
bool readAll(int Fd, char *Buf, size_t N, bool &SawAny) {
  while (N) {
    if (fault::shouldFail("sock.read")) {
      errno = ECONNRESET;
      return false;
    }
    if (fault::shouldFail("sock.eintr"))
      continue;
    size_t Chunk = fault::shouldFail("sock.short") ? 1 : N;
    ssize_t R = ::read(Fd, Buf, Chunk);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (R == 0)
      return false;
    SawAny = true;
    Buf += R;
    N -= static_cast<size_t>(R);
  }
  return true;
}

} // namespace

bool server::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  std::string Frame = encodeFrame(Payload);
  return writeAll(Fd, Frame.data(), Frame.size());
}

bool server::readFrame(int Fd, std::string &Out, std::string *Err) {
  if (Err)
    Err->clear();
  unsigned char Hdr[4];
  bool SawAny = false;
  if (!readAll(Fd, reinterpret_cast<char *>(Hdr), 4, SawAny)) {
    if (Err && SawAny)
      *Err = "truncated frame header";
    return false; // clean EOF leaves *Err empty
  }
  uint32_t N = (uint32_t(Hdr[0]) << 24) | (uint32_t(Hdr[1]) << 16) |
               (uint32_t(Hdr[2]) << 8) | uint32_t(Hdr[3]);
  if (N > MaxFrameBytes) {
    if (Err)
      *Err = "frame exceeds " + std::to_string(MaxFrameBytes) + " bytes";
    return false;
  }
  Out.assign(N, '\0');
  if (N && !readAll(Fd, Out.data(), N, SawAny)) {
    if (Err)
      *Err = "truncated frame payload";
    return false;
  }
  return true;
}

// --- Request codec -----------------------------------------------------------

json::Value server::requestToValue(const Request &R) {
  json::Value O = json::Value::object();
  switch (R.Kind) {
  case RequestKind::Validate:
    O.set("type", json::Value("validate"));
    break;
  case RequestKind::Stats:
    O.set("type", json::Value("stats"));
    break;
  case RequestKind::Ping:
    O.set("type", json::Value("ping"));
    break;
  case RequestKind::Shutdown:
    O.set("type", json::Value("shutdown"));
    break;
  case RequestKind::Hello:
    O.set("type", json::Value("hello"));
    break;
  }
  O.set("id", json::Value(R.Id));
  if (R.Kind == RequestKind::Validate) {
    if (!R.ModuleText.empty())
      O.set("module", json::Value(R.ModuleText));
    else if (R.HasSeed)
      O.set("seed", json::Value(R.Seed));
    O.set("bugs", json::Value(R.Bugs));
    if (R.DeadlineMs)
      O.set("deadline_ms", json::Value(R.DeadlineMs));
  }
  if (R.Kind == RequestKind::Ping && R.Deep) {
    O.set("deep", json::Value(true));
    if (R.DeadlineMs)
      O.set("deadline_ms", json::Value(R.DeadlineMs));
  }
  if (R.Kind == RequestKind::Hello) {
    json::Value Codecs = json::Value::array();
    for (const std::string &Name : R.Codecs)
      Codecs.push(json::Value(Name));
    O.set("codecs", std::move(Codecs));
  }
  return O;
}

std::string server::requestToJson(const Request &R) {
  return requestToValue(R).write();
}

namespace {

const json::Value *findKind(const json::Value &V, const char *Key,
                            json::Value::Kind K) {
  const json::Value *F = V.find(Key);
  return F && F->kind() == K ? F : nullptr;
}

} // namespace

std::optional<Request> server::requestFromValue(const json::Value &V,
                                                std::string *Err) {
  if (V.kind() != json::Value::Kind::Object) {
    if (Err)
      *Err = "request is not a JSON object";
    return std::nullopt;
  }
  const json::Value *Type = findKind(V, "type", json::Value::Kind::String);
  if (!Type) {
    if (Err)
      *Err = "request has no string 'type'";
    return std::nullopt;
  }
  Request R;
  const std::string &T = Type->getString();
  if (T == "validate")
    R.Kind = RequestKind::Validate;
  else if (T == "stats")
    R.Kind = RequestKind::Stats;
  else if (T == "ping")
    R.Kind = RequestKind::Ping;
  else if (T == "shutdown")
    R.Kind = RequestKind::Shutdown;
  else if (T == "hello")
    R.Kind = RequestKind::Hello;
  else {
    if (Err)
      *Err = "unknown request type '" + T + "'";
    return std::nullopt;
  }
  if (const json::Value *Id = findKind(V, "id", json::Value::Kind::Int))
    R.Id = Id->getInt();
  if (R.Kind == RequestKind::Validate) {
    if (const json::Value *M = findKind(V, "module", json::Value::Kind::String))
      R.ModuleText = M->getString();
    if (const json::Value *S = findKind(V, "seed", json::Value::Kind::Int)) {
      R.Seed = static_cast<uint64_t>(S->getInt());
      R.HasSeed = true;
    }
    if (R.ModuleText.empty() && !R.HasSeed) {
      if (Err)
        *Err = "validate request needs 'module' or 'seed'";
      return std::nullopt;
    }
    if (const json::Value *B = findKind(V, "bugs", json::Value::Kind::String))
      R.Bugs = B->getString();
    if (const json::Value *D =
            findKind(V, "deadline_ms", json::Value::Kind::Int))
      R.DeadlineMs = static_cast<uint64_t>(D->getInt());
  }
  if (R.Kind == RequestKind::Ping) {
    if (const json::Value *D = findKind(V, "deep", json::Value::Kind::Bool))
      R.Deep = D->getBool();
    if (const json::Value *D =
            findKind(V, "deadline_ms", json::Value::Kind::Int))
      R.DeadlineMs = static_cast<uint64_t>(D->getInt());
  }
  if (R.Kind == RequestKind::Hello) {
    const json::Value *C = findKind(V, "codecs", json::Value::Kind::Array);
    if (!C) {
      if (Err)
        *Err = "hello request needs a 'codecs' array";
      return std::nullopt;
    }
    for (const json::Value &E : C->elements())
      if (E.kind() == json::Value::Kind::String)
        R.Codecs.push_back(E.getString());
  }
  return R;
}

std::optional<Request> server::requestFromJson(const std::string &Text,
                                               std::string *Err) {
  std::string ParseErr;
  auto V = json::parse(Text, &ParseErr);
  if (!V) {
    if (Err)
      *Err = ParseErr.empty() ? "request is not a JSON object" : ParseErr;
    return std::nullopt;
  }
  return requestFromValue(*V, Err);
}

// --- Response codec ----------------------------------------------------------

const char *server::statusName(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::Ok:
    return "ok";
  case ResponseStatus::Rejected:
    return "rejected";
  case ResponseStatus::DeadlineExceeded:
    return "deadline_exceeded";
  case ResponseStatus::InternalError:
    return "internal_error";
  case ResponseStatus::Error:
    return "error";
  }
  return "?";
}

uint64_t Response::totalV() const {
  uint64_t N = 0;
  for (const auto &KV : Passes)
    N += KV.second.V;
  return N;
}
uint64_t Response::totalF() const {
  uint64_t N = 0;
  for (const auto &KV : Passes)
    N += KV.second.F;
  return N;
}
uint64_t Response::totalNS() const {
  uint64_t N = 0;
  for (const auto &KV : Passes)
    N += KV.second.NS;
  return N;
}
uint64_t Response::totalDiff() const {
  uint64_t N = 0;
  for (const auto &KV : Passes)
    N += KV.second.Diff;
  return N;
}
uint64_t Response::totalDiv() const {
  uint64_t N = 0;
  for (const auto &KV : Passes)
    N += KV.second.Div;
  return N;
}

std::map<std::string, PassVerdicts>
server::passVerdictsOf(const driver::StatsMap &S) {
  std::map<std::string, PassVerdicts> Out;
  for (const auto &KV : S) {
    PassVerdicts &P = Out[KV.first];
    P.V = KV.second.V;
    P.F = KV.second.F;
    P.NS = KV.second.NS;
    P.Diff = KV.second.DiffMismatches;
    P.Div = KV.second.OracleDivergences;
  }
  return Out;
}

json::Value server::responseToValue(const Response &R) {
  json::Value O = json::Value::object();
  O.set("id", json::Value(R.Id));
  O.set("status", json::Value(statusName(R.Status)));
  if (!R.Reason.empty())
    O.set("reason", json::Value(R.Reason));
  if (R.RetryAfterMs)
    O.set("retry_after_ms", json::Value(R.RetryAfterMs));
  if (!R.Codec.empty())
    O.set("codec", json::Value(R.Codec));
  if (!R.Passes.empty()) {
    json::Value Passes = json::Value::object();
    for (const auto &KV : R.Passes) {
      json::Value P = json::Value::object();
      P.set("V", json::Value(KV.second.V));
      P.set("F", json::Value(KV.second.F));
      P.set("NS", json::Value(KV.second.NS));
      P.set("diff", json::Value(KV.second.Diff));
      if (KV.second.Div)
        P.set("div", json::Value(KV.second.Div));
      Passes.set(KV.first, std::move(P));
    }
    O.set("passes", std::move(Passes));
  }
  if (!R.Failures.empty()) {
    json::Value F = json::Value::array();
    for (const std::string &S : R.Failures)
      F.push(json::Value(S));
    O.set("failures", std::move(F));
  }
  if (!R.Divergences.empty()) {
    json::Value D = json::Value::array();
    for (const std::string &S : R.Divergences)
      D.push(json::Value(S));
    O.set("divergences", std::move(D));
  }
  if (R.Status == ResponseStatus::Ok && R.Stats.isNull()) {
    json::Value C = json::Value::object();
    C.set("hits", json::Value(R.CacheHits));
    C.set("misses", json::Value(R.CacheMisses));
    O.set("cache", std::move(C));
    O.set("queue_us", json::Value(R.QueueUs));
    O.set("total_us", json::Value(R.TotalUs));
  }
  if (!R.Stats.isNull())
    O.set("stats", R.Stats);
  return O;
}

std::string server::responseToJson(const Response &R) {
  return responseToValue(R).write();
}

std::optional<Response> server::responseFromValue(const json::Value &V,
                                                  std::string *Err) {
  if (V.kind() != json::Value::Kind::Object) {
    if (Err)
      *Err = "response is not a JSON object";
    return std::nullopt;
  }
  const json::Value *St = findKind(V, "status", json::Value::Kind::String);
  if (!St) {
    if (Err)
      *Err = "response has no string 'status'";
    return std::nullopt;
  }
  Response R;
  const std::string &S = St->getString();
  if (S == "ok")
    R.Status = ResponseStatus::Ok;
  else if (S == "rejected")
    R.Status = ResponseStatus::Rejected;
  else if (S == "deadline_exceeded")
    R.Status = ResponseStatus::DeadlineExceeded;
  else if (S == "internal_error")
    R.Status = ResponseStatus::InternalError;
  else if (S == "error")
    R.Status = ResponseStatus::Error;
  else {
    if (Err)
      *Err = "unknown response status '" + S + "'";
    return std::nullopt;
  }
  if (const json::Value *Id = findKind(V, "id", json::Value::Kind::Int))
    R.Id = Id->getInt();
  if (const json::Value *Re = findKind(V, "reason", json::Value::Kind::String))
    R.Reason = Re->getString();
  if (const json::Value *Ra =
          findKind(V, "retry_after_ms", json::Value::Kind::Int))
    R.RetryAfterMs = static_cast<uint64_t>(Ra->getInt());
  if (const json::Value *C = findKind(V, "codec", json::Value::Kind::String))
    R.Codec = C->getString();
  if (const json::Value *Passes =
          findKind(V, "passes", json::Value::Kind::Object))
    for (const auto &KV : Passes->members()) {
      if (KV.second.kind() != json::Value::Kind::Object)
        continue;
      PassVerdicts P;
      if (const json::Value *N = findKind(KV.second, "V", json::Value::Kind::Int))
        P.V = static_cast<uint64_t>(N->getInt());
      if (const json::Value *N = findKind(KV.second, "F", json::Value::Kind::Int))
        P.F = static_cast<uint64_t>(N->getInt());
      if (const json::Value *N =
              findKind(KV.second, "NS", json::Value::Kind::Int))
        P.NS = static_cast<uint64_t>(N->getInt());
      if (const json::Value *N =
              findKind(KV.second, "diff", json::Value::Kind::Int))
        P.Diff = static_cast<uint64_t>(N->getInt());
      if (const json::Value *N =
              findKind(KV.second, "div", json::Value::Kind::Int))
        P.Div = static_cast<uint64_t>(N->getInt());
      R.Passes[KV.first] = P;
    }
  if (const json::Value *F = findKind(V, "failures", json::Value::Kind::Array))
    for (const json::Value &E : F->elements())
      if (E.kind() == json::Value::Kind::String)
        R.Failures.push_back(E.getString());
  if (const json::Value *D =
          findKind(V, "divergences", json::Value::Kind::Array))
    for (const json::Value &E : D->elements())
      if (E.kind() == json::Value::Kind::String)
        R.Divergences.push_back(E.getString());
  if (const json::Value *C = findKind(V, "cache", json::Value::Kind::Object)) {
    if (const json::Value *N = findKind(*C, "hits", json::Value::Kind::Int))
      R.CacheHits = static_cast<uint64_t>(N->getInt());
    if (const json::Value *N = findKind(*C, "misses", json::Value::Kind::Int))
      R.CacheMisses = static_cast<uint64_t>(N->getInt());
  }
  if (const json::Value *N = findKind(V, "queue_us", json::Value::Kind::Int))
    R.QueueUs = static_cast<uint64_t>(N->getInt());
  if (const json::Value *N = findKind(V, "total_us", json::Value::Kind::Int))
    R.TotalUs = static_cast<uint64_t>(N->getInt());
  if (const json::Value *Stats =
          findKind(V, "stats", json::Value::Kind::Object))
    R.Stats = *Stats;
  return R;
}

std::optional<Response> server::responseFromJson(const std::string &Text,
                                                 std::string *Err) {
  std::string ParseErr;
  auto V = json::parse(Text, &ParseErr);
  if (!V) {
    if (Err)
      *Err = ParseErr.empty() ? "response is not a JSON object" : ParseErr;
    return std::nullopt;
  }
  return responseFromValue(*V, Err);
}
