//===- server/Service.h - Long-running validation service ------*- C++ -*-===//
///
/// \file
/// The transport-agnostic heart of `crellvm-served`: one warm
/// cache::ValidationCache and one work-stealing ThreadPool owned for the
/// process lifetime, fed by a bounded admission queue with explicit
/// backpressure, a micro-batching dispatcher, per-request deadlines, and
/// a graceful drain.
///
/// Request lifecycle:
///
///   submit()            admission: parse/validate the request, reject
///                       with `queue_full` + retry_after_ms when the
///                       bounded queue is at capacity, or with
///                       `shutting_down` once a drain began. Admission
///                       never blocks the caller.
///   dispatcher thread   pops the queue, coalescing up to BatchMax
///                       requests that share a bug configuration into one
///                       driver::runBatchValidated call (after lingering
///                       BatchLingerUs for stragglers when the queue is
///                       shallow), run on the shared pool so units of one
///                       batch validate concurrently.
///   per-unit hooks      BatchOptions::CancelUnit expires requests whose
///                       deadline passed while queued;
///                       BatchOptions::OnUnitDone answers each request
///                       from the worker thread the moment its unit
///                       finishes — a slow unit never delays its batch
///                       siblings' responses.
///   beginShutdown()     new work is rejected, everything already
///                       admitted still gets a verdict (or its deadline
///                       expiry); drain() blocks until the queue and the
///                       in-flight batch are empty. **No admitted request
///                       is ever dropped without a response.**
///
/// Every verdict is produced by exactly the same ValidationDriver stack
/// `crellvm-validate` uses — the service adds scheduling, never
/// semantics — so per-pass #V/#F/#NS must be bit-identical to a
/// standalone run on the same units (ServerTest pins this).
///
/// statsJson() exposes live metrics: request/verdict counters, queue
/// depth and pool gauges (ThreadPool::queueDepth/activeWorkers), cache
/// hit rate, and latency histograms (support/Histogram.h) with
/// p50/p95/p99 for queue wait and total latency.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SERVER_SERVICE_H
#define CRELLVM_SERVER_SERVICE_H

#include "cache/ValidationCache.h"
#include "plan/PlanManager.h"
#include "server/Protocol.h"
#include "server/RequestHandler.h"
#include "support/Histogram.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

namespace crellvm {
namespace server {

struct ServiceOptions {
  /// Pool workers shared by all batches; 0 = hardware concurrency.
  unsigned Jobs = 0;
  /// Bounded admission queue; submits beyond it are rejected with
  /// `queue_full` and a retry_after_ms hint (explicit backpressure, the
  /// alternative being unbounded memory growth under overload).
  size_t QueueMax = 256;
  /// Most units one driver batch coalesces.
  size_t BatchMax = 32;
  /// How long the dispatcher lingers for more requests when fewer than
  /// BatchMax are queued; 0 = dispatch immediately (no coalescing delay).
  uint64_t BatchLingerUs = 200;
  /// Floor for the retry_after_ms backoff hint. However low this is
  /// configured, the hint never drops below server::MinRetryAfterMs — a
  /// cold daemon's empty latency histogram must not hint 0 ms and turn
  /// backpressured clients into hot-spinners.
  uint64_t RetryAfterMsFloor = 10;
  /// Per-unit watchdog deadline handed to driver::BatchOptions; a unit
  /// still running past it is answered `internal_error` while its batch
  /// siblings proceed. 0 disables the watchdog.
  uint64_t UnitTimeoutMs = 0;
  /// After this many *consecutive* internal_error answers for the same
  /// unit identity (seed or module hash, plus bugs preset), further
  /// submissions of it are rejected with reason "quarantined" instead of
  /// re-running a unit that keeps crashing or hanging the pool. A
  /// successful run clears the streak. 0 disables quarantining.
  uint64_t QuarantineAfter = 2;
  /// Construct with the dispatcher paused; tests use this to set up
  /// deterministic queue states (a full queue, an expired deadline)
  /// before any batch runs. resume() starts dispatching.
  bool StartPaused = false;
  /// Identity stamped as `member_id` into the stats document, so the
  /// cluster router can attribute an aggregated counter back to the
  /// member that produced it. Empty = "pid:<pid>" (standalone daemons
  /// need no configuration; cluster members pass --member-id).
  std::string MemberId;
  /// Base driver configuration (file exchange, oracle, binary proofs);
  /// the Cache pointer is overwritten with the service-owned cache.
  driver::DriverOptions Driver;
  /// The warm cache kept across all requests (policy Off disables it).
  cache::ValidationCacheOptions Cache;
  /// Checker-plan mode for every batch (plan/PlanManager.h). The service
  /// owns one warm PlanManager for the process lifetime, wired to the
  /// cache's disk tier so plans persist — and, in a cluster, are shared —
  /// through the same content-addressed store as verdicts. Plans are
  /// strictly server-local: nothing about them crosses the wire, so the
  /// protocol needs no negotiation and clients need no knowledge of the
  /// member's mode.
  plan::PlanMode Plan = plan::PlanMode::Off;
};

/// Monotonic counters; snapshot via counters().
struct ServiceCounters {
  uint64_t Received = 0;          ///< all submit() calls
  uint64_t Accepted = 0;          ///< admitted to the queue
  uint64_t RejectedQueueFull = 0;
  uint64_t RejectedShutdown = 0;
  uint64_t RejectedQuarantined = 0;
  uint64_t BadRequests = 0;       ///< parse/validation errors at admission
  uint64_t Completed = 0;         ///< answered with a verdict
  uint64_t DeadlineExpired = 0;
  uint64_t InternalErrors = 0;    ///< answered internal_error (threw/hung)
  uint64_t WatchdogTimeouts = 0;  ///< InternalErrors due to the watchdog
  uint64_t Batches = 0;
  uint64_t BatchedUnits = 0;      ///< units across all formed batches
  uint64_t LingerWaits = 0;       ///< dispatcher lingered for stragglers
  uint64_t LingerHits = 0;        ///< lingers during which the queue grew
  uint64_t VerdictsV = 0, VerdictsF = 0, VerdictsNS = 0;
  uint64_t DiffMismatches = 0;
  uint64_t OracleDivergences = 0; ///< nonzero only with Driver.RunOracle
  uint64_t CacheHits = 0, CacheMisses = 0;
  uint64_t StatsRequests = 0;
};

class ValidationService : public RequestHandler {
public:
  using Callback = RequestHandler::Callback;

  explicit ValidationService(ServiceOptions Opts);

  /// Drains (rejecting nothing that was admitted) and stops the
  /// dispatcher.
  ~ValidationService() override;

  ValidationService(const ValidationService &) = delete;
  ValidationService &operator=(const ValidationService &) = delete;

  /// Admits \p R or rejects it; \p Done is invoked exactly once, from
  /// the caller (rejections, errors, stats/ping) or from a pool worker
  /// (verdicts). \p Done must be thread-safe against other callbacks and
  /// must not throw.
  void submit(const Request &R, Callback Done) override;

  /// Synchronous convenience: submit and wait for the response.
  Response call(const Request &R);

  /// Starts the dispatcher when constructed with StartPaused.
  void resume();

  /// Stops admitting; everything already queued or running still
  /// completes. Idempotent.
  void beginShutdown() override;

  /// Blocks until the queue and any in-flight batch are empty.
  void drain() override;

  bool draining() const;

  /// Live metrics as one JSON object (see file comment).
  json::Value statsJson();

  ServiceCounters counters() const;
  size_t queueDepth() const;
  cache::ValidationCache &cache() { return Cache; }
  plan::PlanManager &plans() { return Plans; }
  unsigned jobs() const { return Pool.numThreads(); }

private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request R;
    Callback Done;
    std::optional<ir::Module> Mod; ///< pre-parsed explicit module
    passes::BugConfig Bugs;
    Clock::time_point Arrival;
    Clock::time_point Deadline; ///< meaningful iff R.DeadlineMs != 0
  };

  void dispatcherLoop();
  /// Pops up to BatchMax queued requests sharing the front's bug config.
  std::vector<Pending> takeBatchLocked();
  void runBatch(std::vector<Pending> &Batch);
  void finishOne(Pending &P, Response Rsp, Clock::time_point BatchStart);
  uint64_t retryAfterMsHint();
  /// Stable identity of a validate request for the quarantine list.
  static std::string unitKey(const Request &R);
  /// Updates the consecutive-failure streak for \p R (failure increments,
  /// success clears) under M.
  void noteUnitResult(const Request &R, bool Failed);

  ServiceOptions Opts;
  cache::ValidationCache Cache;
  /// Warm per-preset plan runtime; shares Cache's disk tier (constructed
  /// after Cache — member order matters).
  plan::PlanManager Plans;
  ThreadPool Pool;

  mutable std::mutex M;
  std::condition_variable QueueCv; ///< wakes the dispatcher
  std::condition_variable IdleCv;  ///< wakes drain()ers
  std::deque<Pending> Queue;
  bool Paused = false;
  bool Draining = false;
  bool Stopping = false;   ///< dispatcher must exit once queue is empty
  size_t InFlight = 0;     ///< units handed to the current batch
  ServiceCounters Stats;
  /// unitKey -> consecutive internal_error count (guarded by M). Keys at
  /// or above QuarantineAfter are refused admission.
  std::map<std::string, uint64_t> FailStreaks;
  /// Per-preset micro-batching detail (guarded by M), keyed by the
  /// request's bugs preset name; surfaced nested under stats "batching".
  struct PresetBatching {
    uint64_t Batches = 0;
    uint64_t Units = 0;
    uint64_t LingerHits = 0;
  };
  std::map<std::string, PresetBatching> BatchingByPreset;

  Histogram QueueLatencyUs; ///< admission -> batch start
  Histogram TotalLatencyUs; ///< admission -> response
  Histogram BatchSizes;

  std::thread Dispatcher;
};

/// In-process transport for tests: every request and response crosses the
/// same JSON codec the socket uses (requestToJson -> requestFromJson on
/// the way in, responseToJson -> responseFromJson on the way out), so
/// loopback tests cover the wire format, minus only the fd plumbing.
class LoopbackTransport {
public:
  explicit LoopbackTransport(ValidationService &S) : S(S) {}

  void submit(const Request &R, ValidationService::Callback Done);
  Response call(const Request &R);

private:
  ValidationService &S;
};

} // namespace server
} // namespace crellvm

#endif // CRELLVM_SERVER_SERVICE_H
