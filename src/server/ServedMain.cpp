//===- server/ServedMain.cpp - The crellvm-served daemon --------*- C++ -*-===//
//
// Long-running validation daemon: one warm ValidationCache and one
// ThreadPool serving validation requests over a Unix-domain socket with
// the length-prefixed JSON protocol (server/Protocol.h). SIGTERM/SIGINT
// drain gracefully: in-flight and queued requests finish, new ones are
// rejected, the cache flushes, then the process exits 0.
//
//   crellvm-served --socket PATH [--jobs N] [--queue-max N]
//                  [--batch-max N] [--linger-us N] [--files] [--oracle]
//                  [--cache=off|ro|rw] [--cache-dir DIR] [--cache-shared]
//                  [--cache-max-mb N] [--unit-timeout-ms N]
//                  [--quarantine-after N] [--member-id ID] [--chaos SPEC]
//                  [--plan=off|shadow|on] [--version] [--help]
//
//===----------------------------------------------------------------------===//

#include "checker/Version.h"
#include "server/Service.h"
#include "server/SocketServer.h"
#include "support/FaultInjection.h"

#include <csignal>
#include <cstring>
#include <iostream>

#include <unistd.h>

using namespace crellvm;

namespace {

struct CliOptions {
  std::string Socket;
  server::ServiceOptions Service;
  cache::CachePolicy CachePolicy = cache::CachePolicy::Off;
  std::string CacheDir = ".crellvm-cache";
  uint64_t CacheMaxMb = 256;
  std::string Chaos; ///< --chaos SPEC; also CRELLVM_CHAOS env
};

void printUsage(std::ostream &OS, const char *Argv0) {
  OS << "usage: " << Argv0 << " --socket PATH [options]\n"
     << "\n"
     << "Persistent validation service: accepts validation requests over a\n"
     << "Unix-domain socket (length-prefixed JSON frames), coalesces them\n"
     << "into batches on a shared thread pool, and keeps one validation\n"
     << "cache warm across all requests. SIGTERM drains gracefully: every\n"
     << "accepted request still gets its verdict, new ones are rejected.\n"
     << "\n"
     << "options:\n"
     << "  --socket PATH     Unix-domain socket to listen on (required)\n"
     << "  --jobs N          pool worker threads (default: all hardware)\n"
     << "  --queue-max N     admission queue bound; beyond it requests are\n"
     << "                    rejected with retry_after_ms (default 256)\n"
     << "  --batch-max N     max requests coalesced per batch (default 32)\n"
     << "  --linger-us N     micro-batching linger in microseconds\n"
     << "                    (default 200; 0 = dispatch immediately)\n"
     << "  --files           exchange src/tgt/proof through files (I/O col)\n"
     << "  --oracle          differentially execute accepted translations\n"
     << "  --cache=MODE      validation cache: off (default) | ro | rw\n"
     << "  --cache-dir DIR   cache directory (default .crellvm-cache)\n"
     << "  --cache-shared    open the disk tier in shared multi-writer\n"
     << "                    mode: several cluster members publish into\n"
     << "                    one --cache-dir (writer lease rotates;\n"
     << "                    reads never block)\n"
     << "  --cache-max-mb N  on-disk cache bound in MiB (default 256)\n"
     << "  --unit-timeout-ms N  per-unit watchdog; a unit still running\n"
     << "                    past it is answered internal_error while its\n"
     << "                    batch continues (default: off)\n"
     << "  --quarantine-after N  reject a unit after N consecutive\n"
     << "                    internal_error runs (default 2; 0 = never)\n"
     << "  --plan=MODE       per-preset checker plans: off (default) |\n"
     << "                    shadow (double-check specialized verdicts\n"
     << "                    against the general checker; a divergence\n"
     << "                    demotes plans to off) | on. Verdicts are\n"
     << "                    identical in every mode; plans persist and\n"
     << "                    are shared through the cache disk tier\n"
     << "  --member-id ID    identity stamped into the stats document\n"
     << "                    (cluster members; default pid:<pid>)\n"
     << "  --chaos SPEC      arm deterministic fault injection, e.g.\n"
     << "                    'seed=42;disk.write:every=7;sock.short:every=3'\n"
     << "                    (also read from $CRELLVM_CHAOS; flag wins)\n"
     << "  --version         print version and exit\n"
     << "  --help, -h        print this help and exit\n";
}

bool WantHelp = false;
bool WantVersion = false;
std::string BadArg;

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    BadArg = A;
    auto NextNum = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    uint64_t N = 0;
    if (A == "--help" || A == "-h") {
      WantHelp = true;
      return true;
    } else if (A == "--version") {
      WantVersion = true;
      return true;
    } else if (A == "--socket" && I + 1 < Argc)
      O.Socket = Argv[++I];
    else if (A == "--jobs" && NextNum(N))
      O.Service.Jobs = static_cast<unsigned>(N);
    else if (A == "--queue-max" && NextNum(N))
      O.Service.QueueMax = static_cast<size_t>(N);
    else if (A == "--batch-max" && NextNum(N))
      O.Service.BatchMax = static_cast<size_t>(N);
    else if (A == "--linger-us" && NextNum(N))
      O.Service.BatchLingerUs = N;
    else if (A == "--files")
      O.Service.Driver.WriteFiles = true;
    else if (A == "--oracle")
      O.Service.Driver.RunOracle = true;
    else if (A.rfind("--cache=", 0) == 0) {
      auto P = cache::parseCachePolicy(A.substr(std::strlen("--cache=")));
      if (!P)
        return false;
      O.CachePolicy = *P;
    } else if (A == "--cache" && I + 1 < Argc) {
      auto P = cache::parseCachePolicy(Argv[++I]);
      if (!P)
        return false;
      O.CachePolicy = *P;
    } else if (A == "--cache-dir" && I + 1 < Argc)
      O.CacheDir = Argv[++I];
    else if (A == "--cache-shared")
      O.Service.Cache.SharedDisk = true;
    else if (A == "--member-id" && I + 1 < Argc)
      O.Service.MemberId = Argv[++I];
    else if (A == "--cache-max-mb" && NextNum(N))
      O.CacheMaxMb = N;
    else if (A == "--unit-timeout-ms" && NextNum(N))
      O.Service.UnitTimeoutMs = N;
    else if (A == "--quarantine-after" && NextNum(N))
      O.Service.QuarantineAfter = N;
    else if (A == "--chaos" && I + 1 < Argc)
      O.Chaos = Argv[++I];
    else if (A.rfind("--plan=", 0) == 0) {
      auto P = plan::parsePlanMode(A.substr(std::strlen("--plan=")));
      if (!P)
        return false;
      O.Service.Plan = *P;
    } else if (A == "--plan" && I + 1 < Argc) {
      auto P = plan::parsePlanMode(Argv[++I]);
      if (!P)
        return false;
      O.Service.Plan = *P;
    } else
      return false;
  }
  return true;
}

/// The self-pipe fd the signal handler writes to. Signal handlers may
/// only touch async-signal-safe calls, hence write(2) on a pre-stored fd.
volatile int SignalStopFd = -1;

void onTerminate(int) {
  int Fd = SignalStopFd;
  if (Fd >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t W = ::write(Fd, &B, 1);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  Cli.Service.Driver.WriteFiles = false;
  if (!parseArgs(Argc, Argv, Cli)) {
    std::cerr << "error: unknown or malformed option '" << BadArg << "'\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (WantHelp) {
    printUsage(std::cout, Argv[0]);
    return 0;
  }
  if (WantVersion) {
    std::cout << checker::versionLine("crellvm-served") << "\n";
    return 0;
  }
  if (Cli.Socket.empty()) {
    std::cerr << "error: --socket PATH is required\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }

  std::string ChaosErr;
  bool ChaosOk = Cli.Chaos.empty() ? fault::configureFromEnv(&ChaosErr)
                                   : fault::configure(Cli.Chaos, &ChaosErr);
  if (!ChaosOk) {
    std::cerr << "error: " << ChaosErr << "\n";
    return 2;
  }
  if (fault::armed())
    std::cerr << "chaos: armed with '" << fault::activeSpec() << "'\n";

  Cli.Service.Cache.Policy = Cli.CachePolicy;
  Cli.Service.Cache.Dir = Cli.CacheDir;
  Cli.Service.Cache.MaxDiskBytes = Cli.CacheMaxMb << 20;

  server::ValidationService Service(Cli.Service);
  server::SocketServer Server(Service, {Cli.Socket, /*Backlog=*/64});
  std::string Err;
  if (!Server.start(&Err)) {
    std::cerr << "error: " << Err << "\n";
    return 1;
  }

  SignalStopFd = Server.stopFdForSignals();
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTerminate;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  ::signal(SIGPIPE, SIG_IGN); // a vanished client must not kill the daemon

  // The readiness line CI and scripts wait for.
  std::cout << "crellvm-served listening on " << Cli.Socket << " (jobs="
            << Service.jobs() << ")" << std::endl;

  Server.run(); // returns after the graceful drain

  server::ServiceCounters C = Service.counters();
  std::cout << "crellvm-served drained: accepted=" << C.Accepted
            << " completed=" << C.Completed << " deadline_exceeded="
            << C.DeadlineExpired << " internal_errors=" << C.InternalErrors
            << " rejected="
            << (C.RejectedQueueFull + C.RejectedShutdown +
                C.RejectedQuarantined)
            << std::endl;
  if (fault::armed())
    std::cout << "chaos: injected " << fault::totalInjected()
              << " faults from '" << fault::activeSpec() << "'" << std::endl;
  if (Cli.Service.Plan != plan::PlanMode::Off) {
    plan::PlanManager &Plans = Service.plans();
    std::cout << "plan: mode=" << plan::planModeName(Plans.configuredMode())
              << " effective=" << plan::planModeName(Plans.effectiveMode())
              << " divergences=" << Plans.divergences() << std::endl;
  }
  // Every accepted request must be accounted for: a verdict, a deadline
  // expiry, or a structured internal error — never silence.
  return C.Accepted == C.Completed + C.DeadlineExpired + C.InternalErrors
             ? 0
             : 1;
}
