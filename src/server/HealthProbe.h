//===- server/HealthProbe.h - One-shot ping probe ---------------*- C++ -*-===//
///
/// \file
/// A deadline-bounded one-shot ping over a short-lived connection: the
/// primitive behind both the member supervisor's liveness probing
/// (src/supervise/) and the cluster router's deep ping fan-out. It is
/// deliberately NOT a MemberLink send — a ping riding the routed request
/// path would fail over to a *different* member on death and falsely
/// report the dead one alive. A probe talks to exactly one socket, on
/// the legacy json codec (no hello; probes are rare and tiny), and
/// bounds the whole exchange with SO_RCVTIMEO/SO_SNDTIMEO so a hung
/// process — one that accept(2)s via the listen backlog but never
/// answers, e.g. under SIGSTOP — turns into a timed-out probe instead of
/// a stuck supervisor.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SERVER_HEALTHPROBE_H
#define CRELLVM_SERVER_HEALTHPROBE_H

#include <cstdint>
#include <string>

namespace crellvm {
namespace server {

/// The outcome of one probePing().
struct ProbeResult {
  /// The process answered the ping at all (liveness).
  bool Reachable = false;
  /// Reachable with status ok and an empty reason (readiness): a
  /// draining daemon answers `reason:"draining"` and is alive but not
  /// ready (Protocol.h).
  bool Ready = false;
  /// Round-trip time of the whole exchange (connect through decode).
  uint64_t RttUs = 0;
  /// Why Reachable is false (connect refused, timeout, bad frame...).
  std::string Error;
};

/// Pings \p SocketPath once on a fresh connection, giving the whole
/// exchange at most \p DeadlineMs milliseconds (0 means a 1 s default —
/// a probe must never block forever). Thread-safe and state-free.
ProbeResult probePing(const std::string &SocketPath, uint64_t DeadlineMs);

} // namespace server
} // namespace crellvm

#endif // CRELLVM_SERVER_HEALTHPROBE_H
