//===- server/RequestHandler.h - Transport/backend seam ---------*- C++ -*-===//
///
/// \file
/// The seam between the socket front end and whatever answers requests
/// behind it. SocketServer speaks framing and connection lifecycle; a
/// RequestHandler speaks requests. Two implementations exist:
///
///   - server::ValidationService — validates locally (crellvm-served);
///   - cluster::ClusterRouter    — forwards to N member daemons by
///                                 consistent fingerprint hashing
///                                 (crellvm-cluster).
///
/// Both honor the same drain contract SocketServer's shutdown sequence
/// relies on: after beginShutdown(), new submissions are rejected with
/// `shutting_down`, and drain() returns only once every previously
/// admitted request has had its callback invoked. That contract is what
/// makes "SIGTERM loses zero accepted requests" hold identically for a
/// standalone daemon and for a whole cluster.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SERVER_REQUESTHANDLER_H
#define CRELLVM_SERVER_REQUESTHANDLER_H

#include "server/Protocol.h"

#include <functional>

namespace crellvm {
namespace server {

class RequestHandler {
public:
  using Callback = std::function<void(Response)>;

  virtual ~RequestHandler() = default;

  /// Admits or rejects \p R; \p Done fires exactly once, possibly on
  /// another thread, and must be thread-safe and non-throwing.
  virtual void submit(const Request &R, Callback Done) = 0;

  /// Stops admitting (new submissions answer `shutting_down`); everything
  /// already admitted still gets its callback. Idempotent.
  virtual void beginShutdown() = 0;

  /// Blocks until every admitted request has been answered.
  virtual void drain() = 0;
};

} // namespace server
} // namespace crellvm

#endif // CRELLVM_SERVER_REQUESTHANDLER_H
