//===- server/ClientMain.cpp - The crellvm-client CLI -----------*- C++ -*-===//
//
// Thin client for crellvm-served: connects to the daemon's Unix-domain
// socket, pipelines validation requests (matched to responses by id),
// and prints verdict summaries, or fetches the live stats document.
//
//   crellvm-client --socket PATH [--seed S] [--modules N] [--module FILE]
//                  [--bugs CFG] [--deadline-ms N] [--stats] [--ping]
//                  [--shutdown] [--json] [--version] [--help]
//
// Exit codes: 0 all verdicts clean, 1 failures/rejections/divergences,
// 2 bad usage, 3 transport error.
//
//===----------------------------------------------------------------------===//

#include "checker/Version.h"
#include "server/Protocol.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::server;

namespace {

struct CliOptions {
  std::string Socket;
  uint64_t Seed = 1;
  unsigned Modules = 1;
  std::string ModuleFile;
  std::string Bugs = "fixed";
  uint64_t DeadlineMs = 0;
  bool Stats = false;
  bool Ping = false;
  bool Shutdown = false;
  bool Json = false;
};

void printUsage(std::ostream &OS, const char *Argv0) {
  OS << "usage: " << Argv0 << " --socket PATH [options]\n"
     << "\n"
     << "Client for the crellvm-served validation daemon.\n"
     << "\n"
     << "options:\n"
     << "  --socket PATH    daemon socket (required)\n"
     << "  --seed S         first generation seed (default 1)\n"
     << "  --modules N      pipeline N seeded requests, seeds S..S+N-1\n"
     << "                   (default 1)\n"
     << "  --module FILE    validate the .ll module in FILE instead\n"
     << "  --bugs CFG       371 | 501pre | 501post | fixed (default)\n"
     << "  --deadline-ms N  per-request deadline (default: none)\n"
     << "  --stats          fetch and print the server stats document\n"
     << "  --ping           liveness check\n"
     << "  --shutdown       ask the daemon to drain and exit\n"
     << "  --json           print raw response JSON, one per line\n"
     << "  --version        print version and exit\n"
     << "  --help, -h       print this help and exit\n";
}

bool WantHelp = false;
bool WantVersion = false;
std::string BadArg;

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    BadArg = A;
    auto NextNum = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    uint64_t N = 0;
    if (A == "--help" || A == "-h") {
      WantHelp = true;
      return true;
    } else if (A == "--version") {
      WantVersion = true;
      return true;
    } else if (A == "--socket" && I + 1 < Argc)
      O.Socket = Argv[++I];
    else if (A == "--seed" && NextNum(N))
      O.Seed = N;
    else if (A == "--modules" && NextNum(N))
      O.Modules = static_cast<unsigned>(N);
    else if (A == "--module" && I + 1 < Argc)
      O.ModuleFile = Argv[++I];
    else if (A == "--bugs" && I + 1 < Argc)
      O.Bugs = Argv[++I];
    else if (A == "--deadline-ms" && NextNum(N))
      O.DeadlineMs = N;
    else if (A == "--stats")
      O.Stats = true;
    else if (A == "--ping")
      O.Ping = true;
    else if (A == "--shutdown")
      O.Shutdown = true;
    else if (A == "--json")
      O.Json = true;
    else
      return false;
  }
  return true;
}

int connectTo(const std::string &Path) {
  sockaddr_un Addr;
  if (Path.size() + 1 > sizeof(Addr.sun_path))
    return -1;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    std::cerr << "error: unknown or malformed option '" << BadArg << "'\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (WantHelp) {
    printUsage(std::cout, Argv[0]);
    return 0;
  }
  if (WantVersion) {
    std::cout << checker::versionLine("crellvm-client") << "\n";
    return 0;
  }
  if (Cli.Socket.empty()) {
    std::cerr << "error: --socket PATH is required\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }

  int Fd = connectTo(Cli.Socket);
  if (Fd < 0) {
    std::cerr << "error: cannot connect to " << Cli.Socket << "\n";
    return 3;
  }

  // Build the request list.
  std::vector<Request> Requests;
  if (Cli.Stats || Cli.Ping || Cli.Shutdown) {
    Request R;
    R.Kind = Cli.Stats    ? RequestKind::Stats
             : Cli.Ping   ? RequestKind::Ping
                          : RequestKind::Shutdown;
    Requests.push_back(std::move(R));
  } else if (!Cli.ModuleFile.empty()) {
    std::ifstream In(Cli.ModuleFile);
    if (!In) {
      std::cerr << "error: cannot read " << Cli.ModuleFile << "\n";
      ::close(Fd);
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Request R;
    R.Kind = RequestKind::Validate;
    R.ModuleText = Buf.str();
    R.Bugs = Cli.Bugs;
    R.DeadlineMs = Cli.DeadlineMs;
    Requests.push_back(std::move(R));
  } else {
    for (unsigned I = 0; I != Cli.Modules; ++I) {
      Request R;
      R.Kind = RequestKind::Validate;
      R.HasSeed = true;
      R.Seed = Cli.Seed + I;
      R.Bugs = Cli.Bugs;
      R.DeadlineMs = Cli.DeadlineMs;
      Requests.push_back(std::move(R));
    }
  }

  // Pipeline: write everything, then collect responses (matched by id —
  // the server batches, so responses arrive in completion order).
  for (size_t I = 0; I != Requests.size(); ++I) {
    Requests[I].Id = static_cast<int64_t>(I);
    if (!writeFrame(Fd, requestToJson(Requests[I]))) {
      std::cerr << "error: write failed\n";
      ::close(Fd);
      return 3;
    }
  }

  uint64_t V = 0, F = 0, NS = 0, Diff = 0, Ok = 0, Rejected = 0, Expired = 0,
           Errors = 0, CacheHits = 0, CacheMisses = 0;
  std::map<std::string, PassVerdicts> Passes;
  for (size_t Got = 0; Got != Requests.size(); ++Got) {
    std::string Frame, Err;
    if (!readFrame(Fd, Frame, &Err)) {
      std::cerr << "error: connection closed with "
                << (Requests.size() - Got) << " responses outstanding"
                << (Err.empty() ? "" : (": " + Err)) << "\n";
      ::close(Fd);
      return 3;
    }
    if (Cli.Json)
      std::cout << Frame << "\n";
    auto Rsp = responseFromJson(Frame, &Err);
    if (!Rsp) {
      std::cerr << "error: bad response: " << Err << "\n";
      ::close(Fd);
      return 3;
    }
    switch (Rsp->Status) {
    case ResponseStatus::Ok:
      ++Ok;
      V += Rsp->totalV();
      F += Rsp->totalF();
      NS += Rsp->totalNS();
      Diff += Rsp->totalDiff();
      CacheHits += Rsp->CacheHits;
      CacheMisses += Rsp->CacheMisses;
      for (const auto &KV : Rsp->Passes) {
        PassVerdicts &P = Passes[KV.first];
        P.V += KV.second.V;
        P.F += KV.second.F;
        P.NS += KV.second.NS;
        P.Diff += KV.second.Diff;
      }
      if (!Cli.Json && !Rsp->Stats.isNull())
        std::cout << Rsp->Stats.write() << "\n";
      for (const std::string &Msg : Rsp->Failures)
        std::cerr << "failure: " << Msg << "\n";
      break;
    case ResponseStatus::Rejected:
      ++Rejected;
      std::cerr << "rejected: " << Rsp->Reason;
      if (Rsp->RetryAfterMs)
        std::cerr << " (retry after " << Rsp->RetryAfterMs << "ms)";
      std::cerr << "\n";
      break;
    case ResponseStatus::DeadlineExceeded:
      ++Expired;
      break;
    case ResponseStatus::Error:
      ++Errors;
      std::cerr << "error response: " << Rsp->Reason << "\n";
      break;
    }
  }
  ::close(Fd);

  bool IsValidate = !Requests.empty() &&
                    Requests.front().Kind == RequestKind::Validate;
  if (!Cli.Json && IsValidate) {
    std::cout << "responses: ok=" << Ok << " rejected=" << Rejected
              << " deadline_exceeded=" << Expired << " errors=" << Errors
              << "\n";
    for (const auto &KV : Passes)
      std::cout << "  " << KV.first << ": V=" << KV.second.V << " F="
                << KV.second.F << " NS=" << KV.second.NS << " diff="
                << KV.second.Diff << "\n";
    std::cout << "verdicts: V=" << V << " F=" << F << " NS=" << NS
              << " diff=" << Diff << " cache-hits=" << CacheHits
              << " cache-misses=" << CacheMisses << "\n";
  }

  if (Errors || (IsValidate && (F || Diff || Rejected || Expired)))
    return 1;
  return 0;
}
