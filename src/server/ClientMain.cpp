//===- server/ClientMain.cpp - The crellvm-client CLI -----------*- C++ -*-===//
//
// Thin client for crellvm-served: connects to the daemon's Unix-domain
// socket, pipelines validation requests (matched to responses by id),
// and prints verdict summaries, or fetches the live stats document.
//
//   crellvm-client --socket PATH [--seed S] [--modules N] [--module FILE]
//                  [--bugs CFG] [--deadline-ms N] [--retries N]
//                  [--codec NAME] [--plan MODE] [--stats] [--ping]
//                  [--shutdown] [--json] [--version] [--help]
//
// With --retries N, requests the daemon rejected with queue_full are
// resent up to N more rounds, backing off exponentially with jitter and
// honoring the server's retry_after_ms hint. Deliberate rejections
// (shutting_down, quarantined) are never retried.
//
// With --codec cbj1 the client opens the session with a hello frame and,
// when the daemon acks, speaks the compact binary codec for the rest of
// the connection. A daemon that predates negotiation answers the hello
// with an error; the client degrades to json rather than failing.
//
// Exit codes: 0 all verdicts clean, 1 failures/rejections/divergences,
// 2 bad usage or daemon not running, 3 transport error.
//
//===----------------------------------------------------------------------===//

#include "checker/Version.h"
#include "plan/PlanManager.h"
#include "server/Protocol.h"
#include "support/Backoff.h"
#include "support/RNG.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::server;

namespace {

struct CliOptions {
  std::string Socket;
  uint64_t Seed = 1;
  unsigned Modules = 1;
  std::string ModuleFile;
  std::string Bugs = "fixed";
  uint64_t DeadlineMs = 0;
  uint64_t Retries = 0;
  WireCodec Codec = WireCodec::Json;
  bool Stats = false;
  bool Ping = false;
  bool Shutdown = false;
  bool Json = false;
  /// Accepted for CLI symmetry and validated strictly, but otherwise
  /// unused: the client never validates locally, and checker plans are
  /// server-local (nothing about plans crosses the wire) — pass --plan
  /// to crellvm-served instead.
  plan::PlanMode Plan = plan::PlanMode::Off;
};

void printUsage(std::ostream &OS, const char *Argv0) {
  OS << "usage: " << Argv0 << " --socket PATH [options]\n"
     << "\n"
     << "Client for the crellvm-served validation daemon.\n"
     << "\n"
     << "options:\n"
     << "  --socket PATH    daemon socket (required)\n"
     << "  --seed S         first generation seed (default 1)\n"
     << "  --modules N      pipeline N seeded requests, seeds S..S+N-1\n"
     << "                   (default 1)\n"
     << "  --module FILE    validate the .ll module in FILE instead\n"
     << "  --bugs CFG       371 | 501pre | 501post | fixed (default), or a\n"
     << "                   single historical bug: pr24179 | pr33673 |\n"
     << "                   pr28562 | pr29057 | d38619\n"
     << "  --deadline-ms N  per-request deadline (default: none)\n"
     << "  --retries N      resend queue_full rejections up to N rounds,\n"
     << "                   exponential backoff + jitter, honoring the\n"
     << "                   server's retry_after_ms hint (default 0)\n"
     << "  --codec NAME     wire codec: json (default) or cbj1. cbj1 is\n"
     << "                   negotiated with a hello frame; a daemon that\n"
     << "                   predates negotiation degrades back to json\n"
     << "  --plan MODE      accepted for symmetry with the other tools\n"
     << "                   (off | shadow | on) but informational only:\n"
     << "                   checker plans are server-local — pass --plan\n"
     << "                   to crellvm-served; its stats document carries\n"
     << "                   the plan counters\n"
     << "  --stats          fetch and print the server stats document\n"
     << "  --ping           liveness check. Against a cluster router the\n"
     << "                   ping is deep: it fans to every member within\n"
     << "                   --deadline-ms and prints per-member liveness\n"
     << "  --shutdown       ask the daemon to drain and exit\n"
     << "  --json           print raw response JSON, one per line\n"
     << "  --version        print version and exit\n"
     << "  --help, -h       print this help and exit\n";
}

bool WantHelp = false;
bool WantVersion = false;
std::string BadArg;

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    BadArg = A;
    auto NextNum = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    uint64_t N = 0;
    if (A == "--help" || A == "-h") {
      WantHelp = true;
      return true;
    } else if (A == "--version") {
      WantVersion = true;
      return true;
    } else if (A == "--socket" && I + 1 < Argc)
      O.Socket = Argv[++I];
    else if (A == "--seed" && NextNum(N))
      O.Seed = N;
    else if (A == "--modules" && NextNum(N))
      O.Modules = static_cast<unsigned>(N);
    else if (A == "--module" && I + 1 < Argc)
      O.ModuleFile = Argv[++I];
    else if (A == "--bugs" && I + 1 < Argc)
      O.Bugs = Argv[++I];
    else if (A == "--deadline-ms" && NextNum(N))
      O.DeadlineMs = N;
    else if (A == "--retries" && NextNum(N))
      O.Retries = N;
    else if (A == "--codec" && I + 1 < Argc) {
      auto C = codecByName(Argv[++I]);
      if (!C) {
        BadArg = A + std::string(" ") + Argv[I];
        return false;
      }
      O.Codec = *C;
    } else if (A.rfind("--plan=", 0) == 0) {
      auto P = plan::parsePlanMode(A.substr(std::strlen("--plan=")));
      if (!P)
        return false;
      O.Plan = *P;
    } else if (A == "--plan" && I + 1 < Argc) {
      auto P = plan::parsePlanMode(Argv[++I]);
      if (!P)
        return false;
      O.Plan = *P;
    } else if (A == "--stats")
      O.Stats = true;
    else if (A == "--ping")
      O.Ping = true;
    else if (A == "--shutdown")
      O.Shutdown = true;
    else if (A == "--json")
      O.Json = true;
    else
      return false;
  }
  return true;
}

/// When the stats document came from a crellvm-cluster router it carries
/// a "cluster" section; render the member topology as readable lines so
/// an operator sees at a glance who is live and who carries the load.
void printClusterTopology(const json::Value &Stats) {
  const json::Value *Cluster =
      Stats.kind() == json::Value::Kind::Object ? Stats.find("cluster")
                                                : nullptr;
  if (!Cluster || Cluster->kind() != json::Value::Kind::Object)
    return;
  auto IntOf = [](const json::Value *Obj, const char *Key) -> int64_t {
    const json::Value *V = Obj ? Obj->find(Key) : nullptr;
    return V && V->kind() == json::Value::Kind::Int ? V->getInt() : 0;
  };
  std::cout << "cluster: " << IntOf(Cluster, "live") << "/"
            << IntOf(Cluster, "size") << " members live\n";
  const json::Value *Members = Cluster->find("members");
  if (!Members || Members->kind() != json::Value::Kind::Array)
    return;
  for (const json::Value &M : Members->elements()) {
    if (M.kind() != json::Value::Kind::Object)
      continue;
    const json::Value *Id = M.find("member_id");
    const json::Value *Sock = M.find("socket");
    const json::Value *Live = M.find("live");
    bool IsLive = Live && Live->kind() == json::Value::Kind::Bool &&
                  Live->getBool();
    std::cout << "  member "
              << (Id && Id->kind() == json::Value::Kind::String
                      ? Id->getString()
                      : std::string("?"))
              << " at "
              << (Sock && Sock->kind() == json::Value::Kind::String
                      ? Sock->getString()
                      : std::string("?"))
              << ": " << (IsLive ? "live" : "DOWN");
    const json::Value *MS = M.find("stats");
    if (MS && MS->kind() == json::Value::Kind::Object) {
      const json::Value *Req = MS->find("requests");
      const json::Value *Cache = MS->find("cache");
      std::cout << " received=" << IntOf(Req, "received")
                << " completed=" << IntOf(Req, "completed")
                << " cache-hits=" << IntOf(Cache, "hits");
    }
    std::cout << "\n";
  }
}

/// True when \p Stats is a deep-ping liveness document (Router.cpp
/// deepPing), as opposed to a stats or aggregated-stats document.
bool isDeepPingDoc(const json::Value &Stats) {
  if (Stats.kind() != json::Value::Kind::Object)
    return false;
  const json::Value *D = Stats.find("deep");
  return D && D->kind() == json::Value::Kind::Bool && D->getBool();
}

/// Renders the deep-ping member summary:
///   ping: 3/3 members live
///     member s0 at /tmp/r.sock.s0: live ready rtt=142us
void printMemberLiveness(const json::Value &Doc) {
  auto IntOf = [](const json::Value &Obj, const char *Key) -> int64_t {
    const json::Value *V = Obj.find(Key);
    return V && V->kind() == json::Value::Kind::Int ? V->getInt() : 0;
  };
  auto StrOf = [](const json::Value &Obj, const char *Key) -> std::string {
    const json::Value *V = Obj.find(Key);
    return V && V->kind() == json::Value::Kind::String ? V->getString()
                                                       : std::string("?");
  };
  auto BoolOf = [](const json::Value &Obj, const char *Key) {
    const json::Value *V = Obj.find(Key);
    return V && V->kind() == json::Value::Kind::Bool && V->getBool();
  };
  std::cout << "ping: " << IntOf(Doc, "live") << "/" << IntOf(Doc, "size")
            << " members live\n";
  const json::Value *Members = Doc.find("members");
  if (!Members || Members->kind() != json::Value::Kind::Array)
    return;
  for (const json::Value &M : Members->elements()) {
    if (M.kind() != json::Value::Kind::Object)
      continue;
    std::cout << "  member " << StrOf(M, "member_id") << " at "
              << StrOf(M, "socket") << ": ";
    if (BoolOf(M, "reachable"))
      std::cout << "live " << (BoolOf(M, "ready") ? "ready" : "NOT-READY")
                << " rtt=" << IntOf(M, "rtt_us") << "us";
    else
      std::cout << "DOWN (" << StrOf(M, "error") << ")";
    std::cout << "\n";
  }
}

int connectTo(const std::string &Path, int &ConnectErrno) {
  ConnectErrno = 0;
  sockaddr_un Addr;
  if (Path.size() + 1 > sizeof(Addr.sun_path)) {
    ConnectErrno = ENAMETOOLONG;
    return -1;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    ConnectErrno = errno;
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ConnectErrno = errno;
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Blocking hello exchange right after connect (nothing else is in
/// flight, so plain request/response). False only on transport failure;
/// a daemon that rejects the hello keeps the session on json.
bool negotiate(int Fd, WireCodec Want, WireCodec &Session) {
  Session = WireCodec::Json;
  if (Want == WireCodec::Json)
    return true;
  if (!writeFrame(Fd, requestToJson(helloRequest(Want))))
    return false;
  std::string Frame, Err;
  if (!readFrame(Fd, Frame, &Err))
    return false;
  auto Rsp = responseFromJson(Frame, &Err);
  if (!Rsp)
    return false;
  if (Rsp->Status != ResponseStatus::Ok) {
    std::cerr << "note: daemon declined codec negotiation ("
              << Rsp->Reason << "); staying on json\n";
    return true;
  }
  if (auto C = codecByName(Rsp->Codec))
    Session = *C;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    std::cerr << "error: unknown or malformed option '" << BadArg << "'\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (WantHelp) {
    printUsage(std::cout, Argv[0]);
    return 0;
  }
  if (WantVersion) {
    std::cout << checker::versionLine("crellvm-client") << "\n";
    return 0;
  }
  if (Cli.Socket.empty()) {
    std::cerr << "error: --socket PATH is required\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }

  if (Cli.Plan != plan::PlanMode::Off)
    std::cerr << "note: --plan=" << plan::planModeName(Cli.Plan)
              << " is server-local; pass it to crellvm-served (its stats "
                 "document carries the plan counters)\n";

  int ConnectErrno = 0;
  int Fd = connectTo(Cli.Socket, ConnectErrno);
  if (Fd < 0) {
    // The two "nobody is listening" cases get a plain-language message
    // and the usage exit code: no socket file at all, or a socket file
    // whose daemon is gone.
    if (ConnectErrno == ENOENT || ConnectErrno == ECONNREFUSED) {
      std::cerr << "error: daemon not running at " << Cli.Socket
                << " (start crellvm-served --socket " << Cli.Socket << ")\n";
      return 2;
    }
    std::cerr << "error: cannot connect to " << Cli.Socket << ": "
              << std::strerror(ConnectErrno) << "\n";
    return 3;
  }

  // Negotiate the session codec before anything else is in flight;
  // every frame after the daemon's ack — both directions — is the pick.
  WireCodec Session;
  if (!negotiate(Fd, Cli.Codec, Session)) {
    std::cerr << "error: connection lost during codec negotiation\n";
    ::close(Fd);
    return 3;
  }
  WireEncoder Enc(Session);
  WireDecoder Dec(Session);

  // Build the request list.
  std::vector<Request> Requests;
  if (Cli.Stats || Cli.Ping || Cli.Shutdown) {
    Request R;
    R.Kind = Cli.Stats    ? RequestKind::Stats
             : Cli.Ping   ? RequestKind::Ping
                          : RequestKind::Shutdown;
    if (Cli.Ping) {
      // Always deep: a plain daemon answers it like a shallow ping (no
      // member summary), a router proves its members, not just itself.
      R.Deep = true;
      R.DeadlineMs = Cli.DeadlineMs;
    }
    Requests.push_back(std::move(R));
  } else if (!Cli.ModuleFile.empty()) {
    std::ifstream In(Cli.ModuleFile);
    if (!In) {
      std::cerr << "error: cannot read " << Cli.ModuleFile << "\n";
      ::close(Fd);
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Request R;
    R.Kind = RequestKind::Validate;
    R.ModuleText = Buf.str();
    R.Bugs = Cli.Bugs;
    R.DeadlineMs = Cli.DeadlineMs;
    Requests.push_back(std::move(R));
  } else {
    for (unsigned I = 0; I != Cli.Modules; ++I) {
      Request R;
      R.Kind = RequestKind::Validate;
      R.HasSeed = true;
      R.Seed = Cli.Seed + I;
      R.Bugs = Cli.Bugs;
      R.DeadlineMs = Cli.DeadlineMs;
      Requests.push_back(std::move(R));
    }
  }

  uint64_t V = 0, F = 0, NS = 0, Diff = 0, Div = 0, Ok = 0, Rejected = 0,
           Expired = 0, Errors = 0, Internal = 0, CacheHits = 0,
           CacheMisses = 0;
  std::map<std::string, PassVerdicts> Passes;

  // Ids are assigned once and stay stable across retry rounds, so a
  // response always names its original request.
  for (size_t I = 0; I != Requests.size(); ++I)
    Requests[I].Id = static_cast<int64_t>(I);
  std::vector<size_t> Outstanding(Requests.size());
  for (size_t I = 0; I != Requests.size(); ++I)
    Outstanding[I] = I;

  // Jitter is seeded from the request seed, keeping even the backoff
  // schedule reproducible run to run.
  RNG JitterRng(Cli.Seed ^ 0xc0ffee5eedull);
  constexpr uint64_t BackoffBaseMs = 25;

  for (uint64_t Round = 0; !Outstanding.empty(); ++Round) {
    // Pipeline: write every outstanding request, then collect responses
    // (matched by id — the server batches, so responses arrive in
    // completion order).
    for (size_t Idx : Outstanding) {
      auto Payload = Enc.encode(requestToValue(Requests[Idx]));
      if (!Payload || !writeFrame(Fd, *Payload)) {
        std::cerr << "error: write failed\n";
        ::close(Fd);
        return 3;
      }
    }

    std::vector<size_t> Retry;
    uint64_t ServerHintMs = 0;
    for (size_t Got = 0; Got != Outstanding.size(); ++Got) {
      std::string Frame, Err;
      if (!readFrame(Fd, Frame, &Err)) {
        std::cerr << "error: connection closed with "
                  << (Outstanding.size() - Got) << " responses outstanding"
                  << (Err.empty() ? "" : (": " + Err)) << "\n";
        ::close(Fd);
        return 3;
      }
      auto RspV = Dec.decode(Frame, &Err);
      std::optional<Response> Rsp;
      if (RspV)
        Rsp = responseFromValue(*RspV, &Err);
      if (!Rsp) {
        std::cerr << "error: bad response: " << Err << "\n";
        ::close(Fd);
        return 3;
      }
      if (Cli.Json)
        // Raw frames are binary under cbj1; print the json rendering so
        // --json output is codec-independent.
        std::cout << (Session == WireCodec::Json ? Frame : RspV->write())
                  << "\n";
      switch (Rsp->Status) {
      case ResponseStatus::Ok:
        ++Ok;
        V += Rsp->totalV();
        F += Rsp->totalF();
        NS += Rsp->totalNS();
        Diff += Rsp->totalDiff();
        Div += Rsp->totalDiv();
        CacheHits += Rsp->CacheHits;
        CacheMisses += Rsp->CacheMisses;
        for (const auto &KV : Rsp->Passes) {
          PassVerdicts &P = Passes[KV.first];
          P.V += KV.second.V;
          P.F += KV.second.F;
          P.NS += KV.second.NS;
          P.Diff += KV.second.Diff;
          P.Div += KV.second.Div;
        }
        if (!Cli.Json && !Rsp->Stats.isNull()) {
          if (isDeepPingDoc(Rsp->Stats)) {
            printMemberLiveness(Rsp->Stats);
          } else {
            std::cout << Rsp->Stats.write() << "\n";
            printClusterTopology(Rsp->Stats);
          }
        }
        for (const std::string &Msg : Rsp->Failures)
          std::cerr << "failure: " << Msg << "\n";
        for (const std::string &Msg : Rsp->Divergences)
          std::cerr << "divergence: " << Msg << "\n";
        break;
      case ResponseStatus::Rejected:
        // Only backpressure is worth retrying; shutting_down and
        // quarantined are the daemon saying "stop asking".
        if (Rsp->Reason == "queue_full" && Round < Cli.Retries &&
            Rsp->Id >= 0 &&
            static_cast<size_t>(Rsp->Id) < Requests.size()) {
          Retry.push_back(static_cast<size_t>(Rsp->Id));
          ServerHintMs = std::max(ServerHintMs, Rsp->RetryAfterMs);
          break;
        }
        ++Rejected;
        std::cerr << "rejected: " << Rsp->Reason;
        if (Rsp->RetryAfterMs)
          std::cerr << " (retry after " << Rsp->RetryAfterMs << "ms)";
        std::cerr << "\n";
        break;
      case ResponseStatus::DeadlineExceeded:
        ++Expired;
        break;
      case ResponseStatus::InternalError:
        ++Internal;
        std::cerr << "internal error response: " << Rsp->Reason << "\n";
        break;
      case ResponseStatus::Error:
        ++Errors;
        std::cerr << "error response: " << Rsp->Reason << "\n";
        break;
      }
    }

    Outstanding = std::move(Retry);
    if (Outstanding.empty())
      break;
    // Exponential backoff (overflow-proof, capped at ~6.4s), floored at
    // the server's own hint, plus jitter so a burst of clients does not
    // resubmit in lockstep.
    uint64_t Backoff =
        backoff::delayMs(BackoffBaseMs, Round, BackoffBaseMs * 256);
    Backoff = std::max(Backoff, ServerHintMs);
    Backoff += JitterRng.below(BackoffBaseMs + 1);
    std::cerr << "retrying " << Outstanding.size() << " rejected request"
              << (Outstanding.size() == 1 ? "" : "s") << " in " << Backoff
              << "ms (round " << (Round + 1) << "/" << Cli.Retries << ")\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
  }
  ::close(Fd);

  bool IsValidate = !Requests.empty() &&
                    Requests.front().Kind == RequestKind::Validate;
  if (!Cli.Json && IsValidate) {
    std::cout << "responses: ok=" << Ok << " rejected=" << Rejected
              << " deadline_exceeded=" << Expired << " internal_errors="
              << Internal << " errors=" << Errors << "\n";
    for (const auto &KV : Passes)
      std::cout << "  " << KV.first << ": V=" << KV.second.V << " F="
                << KV.second.F << " NS=" << KV.second.NS << " diff="
                << KV.second.Diff << "\n";
    std::cout << "verdicts: V=" << V << " F=" << F << " NS=" << NS
              << " diff=" << Diff << " oracle-div=" << Div
              << " cache-hits=" << CacheHits
              << " cache-misses=" << CacheMisses << "\n";
  }

  if (Errors ||
      (IsValidate && (F || Diff || Div || Rejected || Expired || Internal)))
    return 1;
  return 0;
}
