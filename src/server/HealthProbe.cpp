//===- server/HealthProbe.cpp -----------------------------------*- C++ -*-===//

#include "server/HealthProbe.h"

#include "server/Protocol.h"

#include <chrono>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::server;

namespace {

/// Socket-level deadline on every blocking call of the probe exchange.
/// On Linux SO_SNDTIMEO also bounds connect(2), which matters: a
/// SIGSTOPped daemon keeps accepting via its listen backlog until the
/// backlog fills, after which connect would block forever.
bool setDeadline(int Fd, uint64_t Ms) {
  timeval Tv;
  Tv.tv_sec = static_cast<time_t>(Ms / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  return ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) == 0 &&
         ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv)) == 0;
}

} // namespace

ProbeResult server::probePing(const std::string &SocketPath,
                              uint64_t DeadlineMs) {
  using Clock = std::chrono::steady_clock;
  if (DeadlineMs == 0)
    DeadlineMs = 1000;
  ProbeResult PR;
  Clock::time_point T0 = Clock::now();
  auto Fail = [&](std::string Why) {
    PR.Error = std::move(Why);
    PR.RttUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              T0)
            .count());
    return PR;
  };

  sockaddr_un Addr;
  if (SocketPath.size() + 1 > sizeof(Addr.sun_path))
    return Fail("socket path too long");
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("socket() failed");
  if (!setDeadline(Fd, DeadlineMs)) {
    ::close(Fd);
    return Fail("setsockopt timeout failed");
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    std::string E = std::strerror(errno);
    ::close(Fd);
    return Fail("connect: " + E);
  }

  Request R;
  R.Kind = RequestKind::Ping;
  R.Id = -1;
  std::string Frame, E;
  bool Ok = writeFrame(Fd, requestToJson(R)) && readFrame(Fd, Frame, &E);
  ::close(Fd);
  if (!Ok)
    return Fail(E.empty() ? "ping exchange timed out" : "ping: " + E);
  auto Rsp = responseFromJson(Frame, &E);
  if (!Rsp)
    return Fail("bad ping response: " + E);
  PR.Reachable = true;
  PR.Ready = Rsp->Status == ResponseStatus::Ok && Rsp->Reason.empty();
  PR.RttUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - T0)
          .count());
  return PR;
}
