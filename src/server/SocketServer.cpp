//===- server/SocketServer.cpp ----------------------------------*- C++ -*-===//

#include "server/SocketServer.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::server;

namespace {

bool fillSockAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *Err) {
  if (Path.size() + 1 > sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

SocketServer::Connection::~Connection() {
  if (Fd >= 0)
    ::close(Fd);
}

bool SocketServer::Connection::send(const std::string &Payload) {
  std::lock_guard<std::mutex> L(WriteM);
  if (!Open.load(std::memory_order_relaxed))
    return false;
  if (!writeFrame(Fd, Payload)) {
    Open.store(false, std::memory_order_relaxed);
    return false;
  }
  return true;
}

SocketServer::SocketServer(RequestHandler &Service,
                           SocketServerOptions Options)
    : Service(Service), Opts(std::move(Options)) {}

SocketServer::~SocketServer() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.Path.c_str());
  }
  for (int Fd : StopPipe)
    if (Fd >= 0)
      ::close(Fd);
}

bool SocketServer::start(std::string *Err) {
  if (::pipe(StopPipe) != 0) {
    if (Err)
      *Err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr;
  if (!fillSockAddr(Opts.Path, Addr, Err))
    return false;
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (errno != EADDRINUSE) {
      if (Err)
        *Err = std::string("bind: ") + std::strerror(errno);
      return false;
    }
    // A socket file exists. If no server answers on it, it is a leftover
    // from a crashed daemon: replace it. If one answers, refuse — two
    // daemons on one path would split the client stream.
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    bool Live = Probe >= 0 && ::connect(Probe,
                                        reinterpret_cast<sockaddr *>(&Addr),
                                        sizeof(Addr)) == 0;
    if (Probe >= 0)
      ::close(Probe);
    if (Live) {
      if (Err)
        *Err = "another server is listening on " + Opts.Path;
      return false;
    }
    ::unlink(Opts.Path.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      if (Err)
        *Err = std::string("bind: ") + std::strerror(errno);
      return false;
    }
  }
  if (::listen(ListenFd, Opts.Backlog) != 0) {
    if (Err)
      *Err = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void SocketServer::requestStop() {
  // One byte on the self-pipe; poll() in run() wakes up. write(2) is
  // async-signal-safe, so signal handlers route here via stopFdForSignals.
  // Retry EINTR: a signal arriving during the stop write must not eat the
  // stop byte, or the accept loop would never wake. (EAGAIN means the
  // pipe already holds unread stop bytes — just as good as ours.)
  StopRequested.store(true, std::memory_order_relaxed);
  char B = 1;
  while (::write(StopPipe[1], &B, 1) < 0 && errno == EINTR) {
  }
}

void SocketServer::run() {
  acceptLoop();

  // Graceful drain. Ordering matters: stop admitting fresh connections,
  // then fresh requests, then let everything admitted finish, and only
  // then tear the connections down.
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(Opts.Path.c_str());

  Service.beginShutdown();
  Service.drain();

  std::vector<std::shared_ptr<Connection>> Live;
  {
    std::lock_guard<std::mutex> L(ConnM);
    for (auto &W : Conns)
      if (auto C = W.lock())
        Live.push_back(std::move(C));
  }
  for (auto &C : Live) {
    C->Open.store(false, std::memory_order_relaxed);
    ::shutdown(C->Fd, SHUT_RDWR); // unblocks the reader thread
  }
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> L(ConnM);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    T.join();
}

void SocketServer::acceptLoop() {
  while (!StopRequested.load(std::memory_order_relaxed)) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {StopPipe[0], POLLIN, 0}};
    int N = ::poll(Fds, 2, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (Fds[1].revents)
      return; // stop byte
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    std::lock_guard<std::mutex> L(ConnM);
    Conns.push_back(Conn);
    ConnThreads.emplace_back(
        [this, Conn = std::move(Conn)]() mutable { serveConnection(Conn); });
  }
}

void SocketServer::serveConnection(std::shared_ptr<Connection> Conn) {
  std::string Frame;
  std::string Err;
  while (Conn->Open.load(std::memory_order_relaxed) &&
         readFrame(Conn->Fd, Frame, &Err)) {
    std::string ParseErr;
    auto R = requestFromJson(Frame, &ParseErr);
    if (!R) {
      Response Bad;
      Bad.Status = ResponseStatus::Error;
      Bad.Reason = ParseErr;
      Conn->send(responseToJson(Bad));
      continue;
    }
    if (R->Kind == RequestKind::Shutdown) {
      // Ack first, then trigger the same drain path SIGTERM takes; the
      // service starts rejecting new work inside requestStop()'s run()
      // sequence, while this response is already on the wire.
      Response Ack;
      Ack.Id = R->Id;
      Ack.Status = ResponseStatus::Ok;
      Ack.Reason = "draining";
      Conn->send(responseToJson(Ack));
      requestStop();
      continue;
    }
    // The callback may fire on a pool worker thread long after this loop
    // iteration; the shared_ptr keeps the connection (and its write
    // mutex) alive until the last response is written.
    Service.submit(*R, [Conn](Response Rsp) {
      Conn->send(responseToJson(Rsp));
    });
  }
}
