//===- server/SocketServer.cpp ----------------------------------*- C++ -*-===//

#include "server/SocketServer.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::server;

namespace {

bool fillSockAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *Err) {
  if (Path.size() + 1 > sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

json::Value WireStats::toJson() const {
  json::Value O = json::Value::object();
  auto Set = [&](const char *Key, const std::atomic<uint64_t> &V) {
    O.set(Key, json::Value(V.load(std::memory_order_relaxed)));
  };
  Set("json_frames_in", FramesIn[0]);
  Set("json_bytes_in", BytesIn[0]);
  Set("json_frames_out", FramesOut[0]);
  Set("json_bytes_out", BytesOut[0]);
  Set("cbj1_frames_in", FramesIn[1]);
  Set("cbj1_bytes_in", BytesIn[1]);
  Set("cbj1_frames_out", FramesOut[1]);
  Set("cbj1_bytes_out", BytesOut[1]);
  Set("hellos", Hellos);
  return O;
}

SocketServer::Connection::~Connection() {
  if (Fd >= 0)
    ::close(Fd);
}

bool SocketServer::Connection::sendLocked(const json::Value &V) {
  if (!Open.load(std::memory_order_relaxed))
    return false;
  auto Payload = Enc.encode(V);
  if (!Payload || !writeFrame(Fd, *Payload)) {
    Open.store(false, std::memory_order_relaxed);
    return false;
  }
  if (Stats)
    Stats->noteOut(Enc.codec(), Payload->size());
  return true;
}

bool SocketServer::Connection::send(const Response &Rsp) {
  std::lock_guard<std::mutex> L(WriteM);
  return sendLocked(responseToValue(Rsp));
}

bool SocketServer::Connection::sendSwitching(const Response &Ack,
                                             WireCodec Next) {
  std::lock_guard<std::mutex> L(WriteM);
  if (!sendLocked(responseToValue(Ack)))
    return false;
  Enc.use(Next);
  return true;
}

SocketServer::SocketServer(RequestHandler &Service,
                           SocketServerOptions Options)
    : Service(Service), Opts(std::move(Options)) {}

SocketServer::~SocketServer() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.Path.c_str());
  }
  for (int Fd : StopPipe)
    if (Fd >= 0)
      ::close(Fd);
}

bool SocketServer::start(std::string *Err) {
  if (::pipe(StopPipe) != 0) {
    if (Err)
      *Err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr;
  if (!fillSockAddr(Opts.Path, Addr, Err))
    return false;
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (errno != EADDRINUSE) {
      if (Err)
        *Err = std::string("bind: ") + std::strerror(errno);
      return false;
    }
    // A socket file exists. If no server answers on it, it is a leftover
    // from a crashed daemon: replace it. If one answers, refuse — two
    // daemons on one path would split the client stream.
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    bool Live = Probe >= 0 && ::connect(Probe,
                                        reinterpret_cast<sockaddr *>(&Addr),
                                        sizeof(Addr)) == 0;
    if (Probe >= 0)
      ::close(Probe);
    if (Live) {
      if (Err)
        *Err = "another server is listening on " + Opts.Path;
      return false;
    }
    ::unlink(Opts.Path.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      if (Err)
        *Err = std::string("bind: ") + std::strerror(errno);
      return false;
    }
  }
  if (::listen(ListenFd, Opts.Backlog) != 0) {
    if (Err)
      *Err = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void SocketServer::requestStop() {
  // One byte on the self-pipe; poll() in run() wakes up. write(2) is
  // async-signal-safe, so signal handlers route here via stopFdForSignals.
  // Retry EINTR: a signal arriving during the stop write must not eat the
  // stop byte, or the accept loop would never wake. (EAGAIN means the
  // pipe already holds unread stop bytes — just as good as ours.)
  StopRequested.store(true, std::memory_order_relaxed);
  char B = 1;
  while (::write(StopPipe[1], &B, 1) < 0 && errno == EINTR) {
  }
}

void SocketServer::run() {
  acceptLoop();

  // Graceful drain. Ordering matters: stop admitting fresh connections,
  // then fresh requests, then let everything admitted finish, and only
  // then tear the connections down.
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(Opts.Path.c_str());

  Service.beginShutdown();
  Service.drain();

  std::vector<std::shared_ptr<Connection>> Live;
  {
    std::lock_guard<std::mutex> L(ConnM);
    for (auto &W : Conns)
      if (auto C = W.lock())
        Live.push_back(std::move(C));
  }
  for (auto &C : Live) {
    C->Open.store(false, std::memory_order_relaxed);
    ::shutdown(C->Fd, SHUT_RDWR); // unblocks the reader thread
  }
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> L(ConnM);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    T.join();
}

void SocketServer::acceptLoop() {
  while (!StopRequested.load(std::memory_order_relaxed)) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {StopPipe[0], POLLIN, 0}};
    int N = ::poll(Fds, 2, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (Fds[1].revents)
      return; // stop byte
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    Conn->Stats = &Wire;
    std::lock_guard<std::mutex> L(ConnM);
    Conns.push_back(Conn);
    ConnThreads.emplace_back(
        [this, Conn = std::move(Conn)]() mutable { serveConnection(Conn); });
  }
}

void SocketServer::spliceWireStats(Response &Rsp) {
  if (Rsp.Stats.kind() != json::Value::Kind::Object)
    return;
  json::Value Mine = Wire.toJson();
  if (const json::Value *Agg = Rsp.Stats.find("wire")) {
    // A cluster router's handler already aggregated its members' wire
    // sections; add this listener's own client-facing traffic on top.
    if (Agg->kind() == json::Value::Kind::Object) {
      json::Value Sum = json::Value::object();
      for (const auto &KV : Agg->members()) {
        int64_t N = KV.second.kind() == json::Value::Kind::Int
                        ? KV.second.getInt()
                        : 0;
        if (const json::Value *M = Mine.find(KV.first))
          N += M->getInt();
        Sum.set(KV.first, json::Value(N));
      }
      for (const auto &KV : Mine.members())
        if (!Agg->find(KV.first))
          Sum.set(KV.first, KV.second);
      Mine = std::move(Sum);
    }
  }
  Rsp.Stats.set("wire", std::move(Mine));
}

void SocketServer::serveConnection(std::shared_ptr<Connection> Conn) {
  std::string Frame;
  std::string Err;
  WireDecoder Dec; // inbound codec; json until a hello negotiates cbj1
  while (Conn->Open.load(std::memory_order_relaxed) &&
         readFrame(Conn->Fd, Frame, &Err)) {
    Wire.noteIn(Dec.codec(), Frame.size());
    std::string ParseErr;
    auto V = Dec.decode(Frame, &ParseErr);
    std::optional<Request> R;
    if (V)
      R = requestFromValue(*V, &ParseErr);
    if (!R) {
      // Bad frame: answer and keep the connection. A failed cbj1 decode
      // rolled its intern table back, so later well-formed frames from a
      // confused-but-honest peer still fail loudly instead of silently
      // referencing hostile table entries.
      Response Bad;
      Bad.Status = ResponseStatus::Error;
      Bad.Reason = ParseErr;
      Conn->send(Bad);
      continue;
    }
    if (R->Kind == RequestKind::Hello) {
      // Negotiation is transport business — handled here, never queued.
      Response Ack;
      Ack.Id = R->Id;
      auto Pick = pickCodec(R->Codecs);
      if (!Pick) {
        Ack.Status = ResponseStatus::Error;
        Ack.Reason = "no common codec";
        Conn->send(Ack); // connection stays on its current codec
        continue;
      }
      Ack.Status = ResponseStatus::Ok;
      Ack.Codec = codecName(*Pick);
      Wire.Hellos.fetch_add(1, std::memory_order_relaxed);
      // The ack rides the old codec; every frame after it (in both
      // directions) is the negotiated one, with fresh intern tables.
      Conn->sendSwitching(Ack, *Pick);
      Dec.use(*Pick);
      continue;
    }
    if (R->Kind == RequestKind::Shutdown) {
      // Ack first, then trigger the same drain path SIGTERM takes; the
      // service starts rejecting new work inside requestStop()'s run()
      // sequence, while this response is already on the wire.
      Response Ack;
      Ack.Id = R->Id;
      Ack.Status = ResponseStatus::Ok;
      Ack.Reason = "draining";
      Conn->send(Ack);
      requestStop();
      continue;
    }
    // The callback may fire on a pool worker thread long after this loop
    // iteration; the shared_ptr keeps the connection (and its write
    // mutex) alive until the last response is written.
    Service.submit(*R, [this, Conn](Response Rsp) {
      spliceWireStats(Rsp);
      Conn->send(Rsp);
    });
  }
}
