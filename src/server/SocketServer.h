//===- server/SocketServer.h - Unix-domain socket front end ----*- C++ -*-===//
///
/// \file
/// The network face of a RequestHandler — the local validation service
/// in crellvm-served, the cluster router in crellvm-cluster: a
/// Unix-domain stream listener speaking the length-prefixed framing of
/// server/Protocol.h, one reader thread per connection, responses
/// written under a per-connection mutex (batching completes units out of
/// order, so responses interleave; clients match them by the echoed
/// `id`).
///
/// Codec negotiation happens here, not in the handler: a `hello` request
/// is answered directly (still in the connection's current codec) and
/// both the connection's encoder and this reader's decoder switch to the
/// pick for every later frame — so crellvm-served and crellvm-cluster
/// get the binary protocol from the same twenty lines. Per-codec
/// frame/byte counters are spliced into any stats response passing
/// through, summing with a cluster aggregate when one is present.
///
/// Shutdown is the part worth reading twice. requestStop() — called from
/// a SIGTERM/SIGINT handler via the self-pipe, from a `shutdown` request,
/// or by tests — makes run() leave its poll loop and execute the drain
/// sequence:
///
///   1. stop accepting (close the listen socket, unlink the path);
///   2. RequestHandler::beginShutdown(): requests still arriving on
///      open connections are rejected with `shutting_down`;
///   3. RequestHandler::drain(): every admitted request gets its
///      verdict written back;
///   4. only then are connection fds shut down and reader threads joined.
///
/// So a SIGTERM under load loses zero accepted requests: each gets a
/// verdict or an explicit rejection, never silence.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SERVER_SOCKETSERVER_H
#define CRELLVM_SERVER_SOCKETSERVER_H

#include "server/Protocol.h"
#include "server/RequestHandler.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace crellvm {
namespace server {

struct SocketServerOptions {
  std::string Path; ///< Unix-domain socket path
  int Backlog = 64;
};

/// Per-codec traffic counters for one listener, indexed by WireCodec.
/// Byte counts are payload bytes (the 4-byte frame header is constant
/// per frame). Rendered as the flat-int `wire` section of stats
/// documents, which the cluster aggregator sums across members.
struct WireStats {
  std::atomic<uint64_t> FramesIn[2]{}, BytesIn[2]{};
  std::atomic<uint64_t> FramesOut[2]{}, BytesOut[2]{};
  std::atomic<uint64_t> Hellos{0};

  void noteIn(WireCodec C, size_t Bytes) {
    unsigned I = static_cast<unsigned>(C);
    FramesIn[I].fetch_add(1, std::memory_order_relaxed);
    BytesIn[I].fetch_add(Bytes, std::memory_order_relaxed);
  }
  void noteOut(WireCodec C, size_t Bytes) {
    unsigned I = static_cast<unsigned>(C);
    FramesOut[I].fetch_add(1, std::memory_order_relaxed);
    BytesOut[I].fetch_add(Bytes, std::memory_order_relaxed);
  }
  /// Flat object: {json,cbj1}_{frames,bytes}_{in,out} + hellos.
  json::Value toJson() const;
};

class SocketServer {
public:
  SocketServer(RequestHandler &Service, SocketServerOptions Opts);
  ~SocketServer();

  SocketServer(const SocketServer &) = delete;
  SocketServer &operator=(const SocketServer &) = delete;

  /// Binds and listens. A stale socket file whose owner is gone is
  /// replaced; a live one fails the start. False with \p Err on failure.
  bool start(std::string *Err);

  /// Serves until requestStop(); then drains (see file comment) and
  /// returns. Call after start().
  void run();

  /// Makes run() return. Safe from any thread; the fd write it performs
  /// is async-signal-safe, so a signal handler may call it through
  /// stopFdForSignals().
  void requestStop();

  /// The write end of the self-pipe; a signal handler writes one byte to
  /// it to trigger a graceful stop.
  int stopFdForSignals() const { return StopPipe[1]; }

  const std::string &path() const { return Opts.Path; }

  /// This listener's per-codec traffic counters (all connections).
  const WireStats &wireStats() const { return Wire; }

private:
  struct Connection {
    int Fd = -1;
    std::mutex WriteM;
    std::atomic<bool> Open{true};
    /// Outbound payload codec; session state guarded by WriteM.
    WireEncoder Enc;
    WireStats *Stats = nullptr;

    ~Connection();
    /// Encodes and writes one response; false (and marks closed) on
    /// encode or I/O error.
    bool send(const Response &Rsp);
    /// Writes the hello ack in the *current* codec, then switches the
    /// encoder to \p Next — atomically under WriteM, so a response
    /// completing on another thread is either fully before the ack (old
    /// codec) or fully after (new codec), matching the decode rule
    /// "everything after the ack frame is the negotiated codec".
    bool sendSwitching(const Response &Ack, WireCodec Next);

  private:
    bool sendLocked(const json::Value &V);
  };

  void acceptLoop();
  void serveConnection(std::shared_ptr<Connection> Conn);
  /// Adds this listener's `wire` section to a stats payload (summing
  /// field-wise with an aggregate section the handler already built).
  void spliceWireStats(Response &Rsp);

  RequestHandler &Service;
  SocketServerOptions Opts;
  WireStats Wire;
  int ListenFd = -1;
  int StopPipe[2] = {-1, -1};
  std::atomic<bool> StopRequested{false};

  std::mutex ConnM;
  std::vector<std::weak_ptr<Connection>> Conns;
  std::vector<std::thread> ConnThreads;
};

} // namespace server
} // namespace crellvm

#endif // CRELLVM_SERVER_SOCKETSERVER_H
