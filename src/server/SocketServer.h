//===- server/SocketServer.h - Unix-domain socket front end ----*- C++ -*-===//
///
/// \file
/// The network face of a RequestHandler — the local validation service
/// in crellvm-served, the cluster router in crellvm-cluster: a
/// Unix-domain stream listener speaking the length-prefixed JSON framing
/// of server/Protocol.h, one reader thread per connection, responses
/// written under a per-connection mutex (batching completes units out of
/// order, so responses interleave; clients match them by the echoed
/// `id`).
///
/// Shutdown is the part worth reading twice. requestStop() — called from
/// a SIGTERM/SIGINT handler via the self-pipe, from a `shutdown` request,
/// or by tests — makes run() leave its poll loop and execute the drain
/// sequence:
///
///   1. stop accepting (close the listen socket, unlink the path);
///   2. RequestHandler::beginShutdown(): requests still arriving on
///      open connections are rejected with `shutting_down`;
///   3. RequestHandler::drain(): every admitted request gets its
///      verdict written back;
///   4. only then are connection fds shut down and reader threads joined.
///
/// So a SIGTERM under load loses zero accepted requests: each gets a
/// verdict or an explicit rejection, never silence.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SERVER_SOCKETSERVER_H
#define CRELLVM_SERVER_SOCKETSERVER_H

#include "server/RequestHandler.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace crellvm {
namespace server {

struct SocketServerOptions {
  std::string Path; ///< Unix-domain socket path
  int Backlog = 64;
};

class SocketServer {
public:
  SocketServer(RequestHandler &Service, SocketServerOptions Opts);
  ~SocketServer();

  SocketServer(const SocketServer &) = delete;
  SocketServer &operator=(const SocketServer &) = delete;

  /// Binds and listens. A stale socket file whose owner is gone is
  /// replaced; a live one fails the start. False with \p Err on failure.
  bool start(std::string *Err);

  /// Serves until requestStop(); then drains (see file comment) and
  /// returns. Call after start().
  void run();

  /// Makes run() return. Safe from any thread; the fd write it performs
  /// is async-signal-safe, so a signal handler may call it through
  /// stopFdForSignals().
  void requestStop();

  /// The write end of the self-pipe; a signal handler writes one byte to
  /// it to trigger a graceful stop.
  int stopFdForSignals() const { return StopPipe[1]; }

  const std::string &path() const { return Opts.Path; }

private:
  struct Connection {
    int Fd = -1;
    std::mutex WriteM;
    std::atomic<bool> Open{true};

    ~Connection();
    /// Frames and writes \p Payload; false (and marks closed) on error.
    bool send(const std::string &Payload);
  };

  void acceptLoop();
  void serveConnection(std::shared_ptr<Connection> Conn);

  RequestHandler &Service;
  SocketServerOptions Opts;
  int ListenFd = -1;
  int StopPipe[2] = {-1, -1};
  std::atomic<bool> StopRequested{false};

  std::mutex ConnM;
  std::vector<std::weak_ptr<Connection>> Conns;
  std::vector<std::thread> ConnThreads;
};

} // namespace server
} // namespace crellvm

#endif // CRELLVM_SERVER_SOCKETSERVER_H
