//===- audit/AuditMain.cpp - The crellvm-audit CLI --------------*- C++ -*-===//
///
/// \file
/// Command-line driver for the soundness self-audit (audit/Audit.h):
/// runs the full invariant battery over seeded feedstock and reports
/// findings as structured JSON. Exit code 0 means the tree is clean,
/// 1 means at least one invariant was violated, 2 means bad usage —
/// so CI can gate on it directly.
///
//===----------------------------------------------------------------------===//

#include "audit/Audit.h"
#include "checker/Version.h"
#include "support/FaultInjection.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace crellvm;

namespace {

struct CliOptions {
  audit::AuditOptions Audit;
  std::string ReportPath; ///< empty = no report file
  std::string BugPreset = "fixed";
  bool WantHelp = false;
  bool WantVersion = false;
  bool BadArg = false;
  std::string BadArgMsg;
};

void printUsage(FILE *Out) {
  std::fprintf(
      Out,
      "usage: crellvm-audit [options]\n"
      "\n"
      "Runs the metamorphic soundness audit over passes, checker,\n"
      "evaluators and the validation cache (DESIGN.md section 11).\n"
      "\n"
      "options:\n"
      "  --seed N        feedstock seed (default 1)\n"
      "  --rounds N      seeded pipeline rounds (default 20)\n"
      "  --report FILE   write the findings report as JSON to FILE\n"
      "  --bugs PRESET   run the audited pipeline with planted bugs:\n"
      "                  fixed (default), llvm371, llvm501-pre,\n"
      "                  llvm501-post — anything but 'fixed' is expected\n"
      "                  to produce findings (the audit's self-test)\n"
      "  --unsound-add   plant the test-only add->or instcombine bug\n"
      "  --plan MODE     off (default) | shadow | on: anything but off\n"
      "                  arms the plan-equivalence battery, which builds\n"
      "                  a profile-guided checker plan per pipeline pass\n"
      "                  and requires specialized verdicts to match the\n"
      "                  general checker on the fixed tree and every\n"
      "                  historical bug preset\n"
      "  --chaos SPEC    replay the battery under injected faults and\n"
      "                  report findings that appear only under chaos\n"
      "                  (also read from $CRELLVM_CHAOS; flag wins)\n"
      "  --version       print checker semantics version and exit\n"
      "  --help          show this help\n"
      "\n"
      "exit status: 0 clean, 1 findings reported, 2 bad usage\n");
}

bool parseUnsigned(const char *S, uint64_t &Out) {
  if (!*S)
    return false;
  uint64_t V = 0;
  for (; *S; ++S) {
    if (*S < '0' || *S > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(*S - '0');
  }
  Out = V;
  return true;
}

CliOptions parseArgs(int Argc, char **Argv) {
  CliOptions O;
  auto Bad = [&](const std::string &Msg) {
    O.BadArg = true;
    O.BadArgMsg = Msg;
  };
  for (int I = 1; I < Argc && !O.BadArg; ++I) {
    std::string A = Argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        Bad(std::string(Flag) + " requires a value");
        return nullptr;
      }
      return Argv[++I];
    };
    if (A == "--help" || A == "-h") {
      O.WantHelp = true;
    } else if (A == "--version") {
      O.WantVersion = true;
    } else if (A == "--seed") {
      const char *V = NextValue("--seed");
      if (V && !parseUnsigned(V, O.Audit.Seed))
        Bad("--seed expects a non-negative integer");
    } else if (A == "--rounds") {
      const char *V = NextValue("--rounds");
      uint64_t N = 0;
      if (V && !parseUnsigned(V, N))
        Bad("--rounds expects a non-negative integer");
      else if (V)
        O.Audit.Rounds = static_cast<unsigned>(N);
    } else if (A == "--report") {
      if (const char *V = NextValue("--report"))
        O.ReportPath = V;
    } else if (A == "--bugs") {
      const char *V = NextValue("--bugs");
      if (!V)
        continue;
      O.BugPreset = V;
      if (O.BugPreset == "fixed")
        O.Audit.Bugs = passes::BugConfig::fixed();
      else if (O.BugPreset == "llvm371")
        O.Audit.Bugs = passes::BugConfig::llvm371();
      else if (O.BugPreset == "llvm501-pre")
        O.Audit.Bugs = passes::BugConfig::llvm501PreGvnPatch();
      else if (O.BugPreset == "llvm501-post")
        O.Audit.Bugs = passes::BugConfig::llvm501PostGvnPatch();
      else
        Bad("unknown --bugs preset '" + O.BugPreset + "'");
    } else if (A == "--unsound-add") {
      O.Audit.Bugs.UnsoundAddToOr = true;
    } else if (A.rfind("--plan=", 0) == 0) {
      auto P = plan::parsePlanMode(A.substr(std::strlen("--plan=")));
      if (!P)
        Bad("unknown or malformed option '" + A + "'");
      else
        O.Audit.Plan = *P;
    } else if (A == "--plan") {
      const char *V = NextValue("--plan");
      if (!V)
        continue;
      auto P = plan::parsePlanMode(V);
      if (!P)
        Bad("unknown or malformed option '--plan=" + std::string(V) + "'");
      else
        O.Audit.Plan = *P;
    } else if (A == "--chaos") {
      if (const char *V = NextValue("--chaos"))
        O.Audit.ChaosSpec = V;
    } else {
      Bad("unknown option '" + A + "'");
    }
  }
  return O;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions O = parseArgs(Argc, Argv);
  if (O.BadArg) {
    std::fprintf(stderr, "crellvm-audit: %s\n\n", O.BadArgMsg.c_str());
    printUsage(stderr);
    return 2;
  }
  if (O.WantHelp) {
    printUsage(stdout);
    return 0;
  }
  if (O.WantVersion) {
    std::printf("%s\n", checker::versionLine("crellvm-audit").c_str());
    return 0;
  }

  if (O.Audit.ChaosSpec.empty())
    if (const char *Env = std::getenv("CRELLVM_CHAOS"))
      O.Audit.ChaosSpec = Env;
  if (!O.Audit.ChaosSpec.empty()) {
    // Validate the schedule up front so a typo is bad usage (exit 2, like
    // every other binary), not a finding from deep inside the battery.
    // runAudit arms it itself at the right moment.
    std::string ChaosErr;
    if (!fault::configure(O.Audit.ChaosSpec, &ChaosErr)) {
      std::fprintf(stderr, "crellvm-audit: %s\n", ChaosErr.c_str());
      return 2;
    }
    fault::disarm();
  }

  audit::AuditReport R = audit::runAudit(O.Audit);

  std::printf("crellvm-audit: seed %llu, %llu rounds, bugs %s\n",
              static_cast<unsigned long long>(O.Audit.Seed),
              static_cast<unsigned long long>(R.RoundsRun),
              O.BugPreset.c_str());
  std::printf("  modules audited   %llu\n",
              static_cast<unsigned long long>(R.ModulesAudited));
  std::printf("  pass steps run    %llu\n",
              static_cast<unsigned long long>(R.StepsVerified));
  std::printf("  checks evaluated  %llu\n",
              static_cast<unsigned long long>(R.ChecksRun));
  std::printf("  findings          %llu\n",
              static_cast<unsigned long long>(R.Findings.size()));
  for (const audit::Finding &F : R.Findings)
    std::printf("  [%s] %s (round %u): %s\n", F.Severity.c_str(),
                F.Invariant.c_str(), F.Round, F.Detail.c_str());

  if (!O.ReportPath.empty()) {
    std::ofstream Out(O.ReportPath, std::ios::trunc);
    Out << R.toJson().write() << "\n";
    if (!Out) {
      std::fprintf(stderr, "crellvm-audit: cannot write report to '%s'\n",
                   O.ReportPath.c_str());
      return 2;
    }
  }

  std::printf(R.clean() ? "audit: CLEAN\n" : "audit: FINDINGS\n");
  return R.clean() ? 0 : 1;
}
