//===- audit/Audit.h - Soundness self-audit over the whole stack -*- C++ -*-===//
///
/// \file
/// The metamorphic soundness-audit subsystem (DESIGN.md §11): a battery of
/// invariant checks that hunt for soundness and crash bugs in the repo's
/// *own* stack — passes, proof generation, checker, ERHL evaluator,
/// interpreter, and validation cache. The paper's checker is verified in
/// Coq; this reproduction's C++ analog is not, so the audit is the
/// standing substitute: every invariant here is a property the Coq proof
/// would give for free.
///
/// Invariant catalog (one `Finding::Invariant` tag per battery):
///
///   step-verify           every pass step of the -O2 pipeline produces a
///                         Verifier-clean target module;
///   checker-accept        every step's generated proof is accepted (on a
///                         bug-free tree; planted BugConfig bugs surface
///                         here as structured findings);
///   checker-metamorphic   verdicts are deterministic, survive a proof
///                         round-trip through both exchange codecs (JSON
///                         text and cbj1 binary), and are monotone under
///                         duplicated inference rules and under the
///                         test-only weakened side-condition switch
///                         (weakening may only accept more, never less);
///   fold-range            no pass materializes a shift instruction with a
///                         negative constant amount (the observable shadow
///                         of the historical signed-overflow UB in the
///                         instcombine shl-shl merge guard);
///   dead-code-growth      no pass adds instructions to an unreachable
///                         block (LICM hoisting into a dead "preheader"
///                         and GVN-PRE inserting into a dead predecessor
///                         both trip this);
///   verifier-strictness   a catalog of known-invalid modules (dead phi
///                         missing a predecessor, undefined register in
///                         dead code, branch to entry) is rejected and
///                         known-valid ones are accepted;
///   interp-erhl-agreement evalBinaryOp/evalIcmpOp and the ERHL expression
///                         evaluator agree on every shared operation over
///                         edge widths {1,7,8,31,32,33,63,64} and edge
///                         operands {0,1,-1,min,max,undef,poison};
///   evaluator-width-guard evalBinaryOp traps on out-of-range widths
///                         (0, 65) instead of shifting by >= 64 bits;
///   cache-fingerprint     perturbing any key ingredient (src text, tgt
///                         text, proof, pass name, checker version, each
///                         BugConfig flag) changes the fingerprint, and a
///                         stored verdict is never replayed for any
///                         perturbed key;
///   cache-ro-accounting   a read-only cache on a fresh directory never
///                         writes, never creates the directory, and keeps
///                         every store/evict/rebuild counter at zero;
///   plan-equivalence      (with --plan != off) for the fixed tree and
///                         every 4+1 historical bug preset, the
///                         specialized plan-dispatched checker
///                         (checker::validateWithPlan with a freshly
///                         profiled plan) and the general checker agree on
///                         every verdict of every pipeline step — the
///                         empirical half of the monotonicity argument in
///                         checker/PlanSpec.h.
///
/// The audit is deterministic for a given (Seed, Rounds, Bugs): module
/// feedstock comes from the seeded workload generator plus a fixed
/// adversarial-CFG corpus (unreachable blocks, multi-predecessor headers,
/// merely-parseable shapes the Verifier rejects but passes must still not
/// mangle).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_AUDIT_AUDIT_H
#define CRELLVM_AUDIT_AUDIT_H

#include "json/Json.h"
#include "passes/BugConfig.h"
#include "plan/PlanManager.h"

#include <cstdint>
#include <string>
#include <vector>

namespace crellvm {
namespace audit {

struct AuditOptions {
  uint64_t Seed = 1;
  unsigned Rounds = 20;
  /// Bug configuration the audited pipeline runs under. Anything other
  /// than fixed() is expected to produce findings — that is the
  /// self-test of the audit itself.
  passes::BugConfig Bugs;
  /// Skip the disk-touching cache batteries (used by sandboxed tests).
  bool SkipDiskBatteries = false;
  /// Anything but Off arms the plan-equivalence battery: specialized
  /// verdicts must match the general checker across the fixed tree and
  /// every historical bug preset. (The mode value itself only gates the
  /// battery — the audit always compares both paths directly.)
  plan::PlanMode Plan = plan::PlanMode::Off;
  /// Fault-injection schedule (support/FaultInjection.h grammar). When
  /// non-empty, the whole battery runs a second time with these faults
  /// armed, and any finding the fault-free baseline did not produce is
  /// reported as a `chaos-delta` robustness finding: injected I/O faults
  /// must degrade throughput, never verdicts or invariants.
  std::string ChaosSpec;
};

/// One violated invariant, structured for the JSON report.
struct Finding {
  std::string Invariant; ///< tag from the catalog in the file comment
  std::string Severity;  ///< "soundness" | "robustness" | "accounting"
  std::string Detail;    ///< human-readable one-liner with context
  uint64_t Seed = 0;     ///< audit seed that produced the feedstock
  unsigned Round = 0;    ///< round index (0 for round-independent checks)

  json::Value toJson() const;
};

struct AuditReport {
  std::vector<Finding> Findings;
  uint64_t RoundsRun = 0;
  uint64_t ModulesAudited = 0;
  uint64_t StepsVerified = 0; ///< pass steps run under step-verify
  uint64_t ChecksRun = 0;     ///< individual invariant checks evaluated

  bool clean() const { return Findings.empty(); }
  json::Value toJson() const;
};

/// Runs the full battery. Deterministic for a given options value.
AuditReport runAudit(const AuditOptions &Opts);

} // namespace audit
} // namespace crellvm

#endif // CRELLVM_AUDIT_AUDIT_H
