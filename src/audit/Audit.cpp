//===- audit/Audit.cpp - Soundness self-audit batteries ---------*- C++ -*-===//

#include "audit/Audit.h"

#include "analysis/CFG.h"
#include "analysis/Verifier.h"
#include "cache/Fingerprint.h"
#include "cache/ValidationCache.h"
#include "checker/Validator.h"
#include "checker/Version.h"
#include "erhl/Eval.h"
#include "erhl/Infrule.h"
#include "interp/Ops.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/Pipeline.h"
#include "plan/PlanBuilder.h"
#include "proofgen/ProofBinary.h"
#include "proofgen/ProofJson.h"
#include "support/FaultInjection.h"
#include "support/RNG.h"
#include "workload/RandomProgram.h"

#include <filesystem>
#include <set>

using namespace crellvm;
using namespace crellvm::audit;

json::Value Finding::toJson() const {
  json::Value O = json::Value::object();
  O.set("invariant", json::Value(Invariant));
  O.set("severity", json::Value(Severity));
  O.set("detail", json::Value(Detail));
  O.set("seed", json::Value(Seed));
  O.set("round", json::Value(static_cast<int64_t>(Round)));
  return O;
}

json::Value AuditReport::toJson() const {
  json::Value O = json::Value::object();
  O.set("clean", json::Value(clean()));
  O.set("rounds_run", json::Value(RoundsRun));
  O.set("modules_audited", json::Value(ModulesAudited));
  O.set("steps_verified", json::Value(StepsVerified));
  O.set("checks_run", json::Value(ChecksRun));
  json::Value List = json::Value::array();
  for (const Finding &F : Findings)
    List.push(F.toJson());
  O.set("findings", std::move(List));
  return O;
}

namespace {

/// Instructions an optimization may legitimately leave in an unreachable
/// block of \p F, keyed by block name (phis counted with instructions).
std::map<std::string, size_t> deadBlockSizes(const ir::Function &F) {
  std::map<std::string, size_t> Sizes;
  analysis::CFG G(F);
  for (size_t I = 0; I != G.numBlocks(); ++I) {
    if (G.isReachable(I))
      continue;
    const ir::BasicBlock *B = F.getBlock(G.name(I));
    if (B)
      Sizes[G.name(I)] = B->Insts.size() + B->Phis.size();
  }
  return Sizes;
}

/// Number of shift instructions whose constant amount is negative — a
/// value no well-formed frontend emits, and the observable shadow of the
/// historical signed-overflow bug in the instcombine shl-shl merge guard.
size_t negativeShiftCount(const ir::Module &M) {
  size_t N = 0;
  for (const ir::Function &F : M.Funcs)
    for (const ir::BasicBlock &B : F.Blocks)
      for (const ir::Instruction &I : B.Insts) {
        if (I.opcode() != ir::Opcode::Shl && I.opcode() != ir::Opcode::LShr &&
            I.opcode() != ir::Opcode::AShr)
          continue;
        const ir::Value &Amt = I.operands()[1];
        if (Amt.isConstInt() && Amt.intValue() < 0)
          ++N;
      }
  return N;
}

/// Duplicates the last inference rule of the last rule-carrying line it
/// finds; returns false when the proof applies no rules at all.
bool duplicateLastRule(proofgen::Proof &P) {
  for (auto &FKV : P.Functions)
    for (auto &BKV : FKV.second.Blocks)
      for (auto It = BKV.second.Lines.rbegin(); It != BKV.second.Lines.rend();
           ++It)
        if (!It->Rules.empty()) {
          It->Rules.push_back(It->Rules.back());
          return true;
        }
  return false;
}

/// One verdict summary for metamorphic comparison.
struct VerdictSummary {
  uint64_t Validated = 0, Failed = 0, NS = 0;
  std::string First;

  explicit VerdictSummary(const checker::ModuleResult &R)
      : Validated(R.countValidated()), Failed(R.countFailed()),
        NS(R.countNotSupported()), First(R.firstFailure()) {}
  bool operator==(const VerdictSummary &O) const {
    return Validated == O.Validated && Failed == O.Failed && NS == O.NS &&
           First == O.First;
  }
};

class Auditor {
public:
  Auditor(const AuditOptions &Opts, AuditReport &R) : Opts(Opts), R(R) {}

  void run() {
    verifierStrictnessBattery();
    evaluatorBattery();
    adversarialCfgBattery();
    fingerprintBattery();
    if (!Opts.SkipDiskBatteries)
      roAccountingBattery();
    if (Opts.Plan != plan::PlanMode::Off)
      planEquivalenceBattery();
    for (unsigned Round = 0; Round != Opts.Rounds; ++Round) {
      pipelineRound(Round);
      ++R.RoundsRun;
    }
  }

private:
  void finding(const std::string &Invariant, const std::string &Severity,
               const std::string &Detail, unsigned Round = 0) {
    R.Findings.push_back({Invariant, Severity, Detail, Opts.Seed, Round});
  }

  void check(bool Ok, const std::string &Invariant,
             const std::string &Severity, const std::string &Detail,
             unsigned Round = 0) {
    ++R.ChecksRun;
    if (!Ok)
      finding(Invariant, Severity, Detail, Round);
  }

  // --- verifier-strictness ---------------------------------------------------

  void verifierStrictnessBattery() {
    struct Case {
      const char *Name;
      const char *Text;
      bool MustVerify;
      const char *MustMention; ///< substring of the first error (bad cases)
    };
    static const Case Catalog[] = {
        {"dead phi missing a predecessor",
         "define void @f(i1 %c) {\nentry:\n  ret void\n"
         "deadA:\n  br i1 %c, label %deadJ, label %deadB\n"
         "deadB:\n  br label %deadJ\n"
         "deadJ:\n  %p = phi i32 [ 1, %deadA ]\n  ret void\n}\n",
         false, "misses predecessor"},
        {"undefined register in dead code",
         "define void @f() {\nentry:\n  ret void\n"
         "dead:\n  %y = add i32 %nope, 1\n  ret void\n}\n",
         false, "undefined register"},
        {"branch to the entry block",
         "define void @f(i1 %c) {\nentry:\n  br i1 %c, label %b, label %b\n"
         "b:\n  br label %entry\n}\n",
         false, "branches to the entry"},
        {"consistent dead code",
         "define void @f() {\nentry:\n  ret void\n"
         "dead1:\n  %z = add i32 7, 1\n  br label %dead2\n"
         "dead2:\n  %q = phi i32 [ %z, %dead1 ]\n  ret void\n}\n",
         true, ""},
        {"simple loop",
         "define i64 @f(i64 %a) {\nentry:\n  br label %h\n"
         "h:\n  %i = phi i64 [ 0, %entry ], [ %j, %h ]\n"
         "  %j = add i64 %i, 1\n  %d = icmp eq i64 %j, %a\n"
         "  br i1 %d, label %h, label %x\nx:\n  ret i64 %j\n}\n",
         true, ""},
    };
    for (const Case &C : Catalog) {
      std::string Err;
      auto M = ir::parseModule(C.Text, &Err);
      check(M.has_value(), "verifier-strictness", "robustness",
            std::string("catalog module '") + C.Name +
                "' failed to parse: " + Err);
      if (!M)
        continue;
      std::vector<std::string> Errs;
      bool Ok = analysis::verifyModule(*M, Errs);
      if (C.MustVerify) {
        check(Ok, "verifier-strictness", "soundness",
              std::string("valid module '") + C.Name + "' rejected: " +
                  (Errs.empty() ? "" : Errs[0]));
      } else {
        bool Mentioned =
            !Ok && !Errs.empty() &&
            Errs[0].find(C.MustMention) != std::string::npos;
        check(Mentioned, "verifier-strictness", "soundness",
              std::string("invalid module '") + C.Name +
                  "' must be rejected mentioning '" + C.MustMention +
                  "'; got: " + (Errs.empty() ? "<accepted>" : Errs[0]));
      }
    }
  }

  // --- evaluator-width-guard and interp-erhl-agreement -----------------------

  void evaluatorBattery() {
    using interp::RtValue;
    RtValue One = RtValue::intVal(1, 1);
    check(interp::evalBinaryOp(ir::Opcode::SDiv, 0, One, One).Trap,
          "evaluator-width-guard", "soundness",
          "evalBinaryOp accepted width 0");
    check(interp::evalBinaryOp(ir::Opcode::Add, 65, One, One).Trap,
          "evaluator-width-guard", "soundness",
          "evalBinaryOp accepted width 65");
    check(!interp::evalBinaryOp(ir::Opcode::Add, 1, One, One).Trap,
          "evaluator-width-guard", "robustness",
          "evalBinaryOp rejected width 1");
    check(!interp::evalBinaryOp(ir::Opcode::Add, 64, One, One).Trap,
          "evaluator-width-guard", "robustness",
          "evalBinaryOp rejected width 64");

    static const ir::Opcode BinOps[] = {
        ir::Opcode::Add,  ir::Opcode::Sub,  ir::Opcode::Mul,
        ir::Opcode::SDiv, ir::Opcode::UDiv, ir::Opcode::SRem,
        ir::Opcode::URem, ir::Opcode::Shl,  ir::Opcode::LShr,
        ir::Opcode::AShr, ir::Opcode::And,  ir::Opcode::Or,
        ir::Opcode::Xor};
    static const ir::IcmpPred Preds[] = {
        ir::IcmpPred::Eq,  ir::IcmpPred::Ne,  ir::IcmpPred::Ugt,
        ir::IcmpPred::Uge, ir::IcmpPred::Ult, ir::IcmpPred::Ule,
        ir::IcmpPred::Sgt, ir::IcmpPred::Sge, ir::IcmpPred::Slt,
        ir::IcmpPred::Sle};
    RNG Rng(Opts.Seed ^ 0xa0d17u);
    size_t Mismatches = 0;
    std::string FirstMismatch;
    for (unsigned W : {1u, 7u, 8u, 31u, 32u, 33u, 63u, 64u}) {
      ir::Type Ty = ir::Type::intTy(W);
      uint64_t AllOnes = W >= 64 ? ~0ull : ((uint64_t(1) << W) - 1);
      std::vector<RtValue> Operands = {
          RtValue::intVal(0, W),
          RtValue::intVal(1, W),
          RtValue::intVal(AllOnes, W),              // -1
          RtValue::intVal(uint64_t(1) << (W - 1), W), // signed min
          RtValue::intVal(AllOnes >> 1, W),         // signed max
          RtValue::intVal(Rng.next(), W),
          RtValue::undef(),
          RtValue::poison(),
      };
      erhl::RegT RA{"a", erhl::Tag::Phy}, RB{"b", erhl::Tag::Phy};
      erhl::ValT VA = erhl::ValT::reg(RA, Ty), VB = erhl::ValT::reg(RB, Ty);
      for (const RtValue &A : Operands)
        for (const RtValue &B : Operands) {
          erhl::EvalState S;
          S.Regs[RA] = A;
          S.Regs[RB] = B;
          for (ir::Opcode Op : BinOps) {
            interp::OpResult Direct = interp::evalBinaryOp(Op, W, A, B);
            erhl::ExprEval Via =
                erhl::evalExpr(erhl::Expr::bop(Op, Ty, VA, VB), S);
            ++R.ChecksRun;
            bool Agree = Direct.Trap == Via.Trap &&
                         (Direct.Trap || Direct.V == Via.V);
            if (!Agree && ++Mismatches == 1)
              FirstMismatch = "width " + std::to_string(W) + " op " +
                              ir::opcodeName(Op);
          }
          for (ir::IcmpPred P : Preds) {
            interp::OpResult Direct = interp::evalIcmpOp(P, A, B);
            erhl::ExprEval Via =
                erhl::evalExpr(erhl::Expr::icmp(P, VA, VB), S);
            ++R.ChecksRun;
            bool Agree = Direct.Trap == Via.Trap &&
                         (Direct.Trap || Direct.V == Via.V);
            if (!Agree && ++Mismatches == 1)
              FirstMismatch = "width " + std::to_string(W) + " icmp " +
                              ir::icmpPredName(P);
          }
        }
    }
    if (Mismatches)
      finding("interp-erhl-agreement", "soundness",
              std::to_string(Mismatches) +
                  " interp/ERHL evaluator disagreements, first at " +
                  FirstMismatch);
  }

  // --- adversarial CFG corpus through every pass -----------------------------

  void adversarialCfgBattery() {
    // Shapes that historically broke preheader selection, PRE planning
    // and dead-phi checking. The first is merely parseable (branch to
    // entry); passes must stay conservative on it anyway, because they
    // run before any verifier in the Fig. 1 protocol.
    static const char *Corpus[] = {
        // self-loop on entry; the only outside predecessor is dead
        "define i64 @f(i64 %a, i1 %c) {\nentry:\n  %x = add i64 %a, 1\n"
        "  br i1 %c, label %entry, label %exit\n"
        "exit:\n  ret i64 %x\ndead:\n  br label %entry\n}\n",
        // join with one reachable and one dead predecessor (PRE bait)
        "define i64 @f(i64 %a) {\nentry:\n  %x = add i64 %a, 9\n"
        "  br label %join\njoin:\n  %y = add i64 %a, 9\n  ret i64 %y\n"
        "dead:\n  br label %join\n}\n",
        // loop whose unique outside predecessor ends in a condbr
        "define i64 @f(i64 %a, i1 %c) {\nentry:\n"
        "  br i1 %c, label %h, label %out\n"
        "h:\n  %i = phi i64 [ 0, %entry ], [ %j, %h ]\n"
        "  %inv = add i64 %a, 5\n  %j = add i64 %i, %inv\n"
        "  %d = icmp eq i64 %j, %a\n  br i1 %d, label %h, label %out\n"
        "out:\n  ret i64 %a\n}\n",
        // consistent dead diamond with a phi
        "define i64 @f(i64 %a) {\nentry:\n  ret i64 %a\n"
        "dA:\n  %z = add i64 %a, 3\n  br label %dJ\n"
        "dB:\n  br label %dJ\n"
        "dJ:\n  %p = phi i64 [ %z, %dA ], [ 0, %dB ]\n  ret i64 %p\n}\n",
    };
    static const char *PassNames[] = {"mem2reg", "instcombine", "licm",
                                      "gvn"};
    for (const char *Text : Corpus) {
      std::string Err;
      auto M = ir::parseModule(Text, &Err);
      check(M.has_value(), "dead-code-growth", "robustness",
            "adversarial corpus module failed to parse: " + Err);
      if (!M)
        continue;
      ++R.ModulesAudited;
      std::vector<std::string> SrcErrs;
      bool SrcValid = analysis::verifyModule(*M, SrcErrs);
      for (const char *PN : PassNames) {
        auto P = passes::makePass(PN, Opts.Bugs);
        passes::PassResult PR = P->run(*M, /*GenProof=*/true);
        ++R.StepsVerified;
        auditStep(*M, PR.Tgt, PN, /*Round=*/0, SrcValid);
      }
    }
  }

  // --- seeded pipeline rounds ------------------------------------------------

  void pipelineRound(unsigned Round) {
    workload::GenOptions GO;
    GO.Seed = Opts.Seed * 0x9e3779b97f4a7c15ull + Round;
    ir::Module Cur = workload::generateModule(GO);
    ++R.ModulesAudited;
    auto Pipe = passes::makeO2Pipeline(Opts.Bugs);
    size_t MetaStep = Pipe.empty() ? 0 : Round % Pipe.size();
    for (size_t SI = 0; SI != Pipe.size(); ++SI) {
      passes::PassResult PR = Pipe[SI]->run(Cur, /*GenProof=*/true);
      ++R.StepsVerified;
      const std::string PN = Pipe[SI]->name();
      auditStep(Cur, PR.Tgt, PN, Round, /*SrcValid=*/true);

      checker::ModuleResult VR = checker::validate(Cur, PR.Tgt, PR.Proof);
      check(VR.countFailed() == 0, "checker-accept", "soundness",
            PN + " proof rejected: " + VR.firstFailure(), Round);
      if (VR.countFailed() == 0 && SI == MetaStep)
        metamorphicBattery(Cur, PR.Tgt, PR.Proof, VR, PN, Round);
      Cur = std::move(PR.Tgt);
    }
  }

  /// Shared per-step invariants: target verifies (when the source did),
  /// no negative shift amounts are introduced, and no unreachable block
  /// grows.
  void auditStep(const ir::Module &Src, const ir::Module &Tgt,
                 const std::string &PassName, unsigned Round,
                 bool SrcValid) {
    if (SrcValid) {
      std::vector<std::string> Errs;
      check(analysis::verifyModule(Tgt, Errs), "step-verify", "soundness",
            PassName + " produced unverifiable IR: " +
                (Errs.empty() ? "" : Errs[0]),
            Round);
    }
    check(negativeShiftCount(Tgt) <= negativeShiftCount(Src), "fold-range",
          "soundness",
          PassName + " materialized a negative constant shift amount",
          Round);
    for (const ir::Function &TF : Tgt.Funcs) {
      const ir::Function *SF = nullptr;
      for (const ir::Function &F : Src.Funcs)
        if (F.Name == TF.Name)
          SF = &F;
      if (!SF || SF->Blocks.empty() || TF.Blocks.empty())
        continue;
      std::map<std::string, size_t> Before = deadBlockSizes(*SF);
      std::map<std::string, size_t> After = deadBlockSizes(TF);
      for (const auto &KV : After) {
        auto It = Before.find(KV.first);
        if (It == Before.end())
          continue; // block was reachable (or absent) before this step
        check(KV.second <= It->second, "dead-code-growth", "soundness",
              PassName + " grew unreachable block '" + KV.first + "' of @" +
                  TF.Name + " from " + std::to_string(It->second) + " to " +
                  std::to_string(KV.second) + " instructions",
              Round);
      }
    }
  }

  // --- checker-metamorphic ---------------------------------------------------

  void metamorphicBattery(const ir::Module &Src, const ir::Module &Tgt,
                          const proofgen::Proof &Proof,
                          const checker::ModuleResult &Base,
                          const std::string &PassName, unsigned Round) {
    VerdictSummary BaseS(Base);

    // Determinism: byte-identical inputs, identical verdict.
    VerdictSummary Again(checker::validate(Src, Tgt, Proof));
    check(Again == BaseS, "checker-metamorphic", "soundness",
          PassName + " verdict not deterministic on identical inputs",
          Round);

    // The JSON exchange round-trip must preserve the verdict — the
    // checker consumes files, not in-memory objects (Fig. 1).
    std::string Err;
    auto P2 = proofgen::proofFromJson(proofgen::proofToJson(Proof), &Err);
    check(P2.has_value(), "checker-metamorphic", "soundness",
          PassName + " proof JSON round-trip failed to parse: " + Err,
          Round);
    if (P2) {
      VerdictSummary RT(checker::validate(Src, Tgt, *P2));
      check(RT == BaseS, "checker-metamorphic", "soundness",
            PassName + " verdict changed across proof JSON round-trip",
            Round);
    }

    // Same for the binary (cbj1) exchange codec: the wire protocol and
    // the proof files may both carry proofs in either codec, and neither
    // is allowed to change a verdict — the codec is transport, never
    // semantics, and it stays outside the checker's trusted base.
    auto P3 = proofgen::proofFromBinary(proofgen::proofToBinary(Proof), &Err);
    check(P3.has_value(), "checker-metamorphic", "soundness",
          PassName + " proof binary round-trip failed to decode: " + Err,
          Round);
    if (P3) {
      VerdictSummary RT(checker::validate(Src, Tgt, *P3));
      check(RT == BaseS, "checker-metamorphic", "soundness",
            PassName + " verdict changed across proof binary round-trip",
            Round);
    }

    // Infrule application is monotone over assertion sets: applying the
    // same rule twice adds the same predicates, so a duplicated rule must
    // never turn acceptance into rejection.
    proofgen::Proof Dup = Proof;
    if (duplicateLastRule(Dup)) {
      checker::ModuleResult DupR = checker::validate(Src, Tgt, Dup);
      check(DupR.countFailed() <= Base.countFailed(), "checker-metamorphic",
            "soundness",
            PassName + " duplicated infrule flipped acceptance: " +
                DupR.firstFailure(),
            Round);
    }

    // Weakening a side condition may only accept more, never less.
    erhl::setWeakenedDisjointOrCheck(true);
    checker::ModuleResult Weak = checker::validate(Src, Tgt, Proof);
    erhl::setWeakenedDisjointOrCheck(false);
    check(Weak.countFailed() <= Base.countFailed(), "checker-metamorphic",
          "soundness",
          PassName +
              " weakened side condition rejected a strictly-accepted "
              "proof: " +
              Weak.firstFailure(),
          Round);
  }

  // --- plan-equivalence ------------------------------------------------------

  /// Specialized-vs-general differential battery: for the fixed tree and
  /// every 4+1 historical bug preset, build a fresh profile-guided plan
  /// per unique pipeline pass and require checker::validateWithPlan to
  /// reproduce the general checker's verdict summary on every step of a
  /// seeded pipeline walk. A divergence here is a soundness finding: the
  /// plan pipeline's monotonicity argument (checker/PlanSpec.h) promises
  /// plans buy throughput, never a different answer — including on the
  /// buggy trees, where the *failures* must be byte-identical too.
  void planEquivalenceBattery() {
    std::vector<std::pair<std::string, passes::BugConfig>> Presets;
    Presets.emplace_back("fixed", passes::BugConfig::fixed());
    for (const auto &KV : passes::BugConfig::historicalPresets())
      Presets.emplace_back(KV.first, KV.second);

    // Bounded feedstock: the battery is about agreement, not coverage;
    // the seeded pipeline rounds above already cover checker breadth.
    const unsigned ModulesPerPreset = 3;

    for (const auto &Preset : Presets) {
      const std::string &Name = Preset.first;
      const passes::BugConfig &Bugs = Preset.second;
      auto Pipe = passes::makeO2Pipeline(Bugs);

      std::map<std::string, plan::CheckerPlan> Plans;
      for (const auto &P : Pipe)
        if (!Plans.count(P->name())) {
          plan::PlanBuildOptions BO;
          BO.FeedstockModules = 3;
          BO.FeedstockBaseSeed = Opts.Seed ^ 0x9a7b5ull;
          Plans.emplace(P->name(), plan::buildPlan(P->name(), Bugs, BO));
        }

      for (unsigned Round = 0; Round != ModulesPerPreset; ++Round) {
        workload::GenOptions GO;
        GO.Seed = Opts.Seed * 0x9e3779b97f4a7c15ull + 0x9147ull + Round;
        ir::Module Cur = workload::generateModule(GO);
        ++R.ModulesAudited;
        for (const auto &P : Pipe) {
          passes::PassResult PR = P->run(Cur, /*GenProof=*/true);
          ++R.StepsVerified;
          VerdictSummary General(checker::validate(Cur, PR.Tgt, PR.Proof));
          checker::PlanRunStats PS;
          VerdictSummary Specialized(checker::validateWithPlan(
              Cur, PR.Tgt, PR.Proof, Plans.at(P->name()).Spec, &PS));
          check(Specialized == General, "plan-equivalence", "soundness",
                "preset " + Name + " pass " + P->name() +
                    ": specialized verdict diverged from the general "
                    "checker (general V=" +
                    std::to_string(General.Validated) +
                    " F=" + std::to_string(General.Failed) +
                    " NS=" + std::to_string(General.NS) + ", specialized V=" +
                    std::to_string(Specialized.Validated) +
                    " F=" + std::to_string(Specialized.Failed) +
                    " NS=" + std::to_string(Specialized.NS) + ")",
                Round);
          Cur = std::move(PR.Tgt);
        }
      }
    }
  }

  // --- cache-fingerprint -----------------------------------------------------

  void fingerprintBattery() {
    // Real feedstock: one instcombine run so the proof is non-trivial.
    std::string Err;
    auto M = ir::parseModule("define i64 @f(i64 %a) {\nentry:\n"
                             "  %x = add i64 %a, 0\n  %y = add i64 %x, 1\n"
                             "  ret i64 %y\n}\n",
                             &Err);
    check(M.has_value(), "cache-fingerprint", "robustness",
          "fingerprint feedstock failed to parse: " + Err);
    if (!M)
      return;
    auto IC = passes::makePass("instcombine", passes::BugConfig::fixed());
    passes::PassResult PR = IC->run(*M, /*GenProof=*/true);
    std::string SrcText = ir::printModule(*M);
    std::string TgtText = ir::printModule(PR.Tgt);
    std::string Version = checker::versionFingerprint();
    passes::BugConfig Bugs; // fixed
    auto FP = [&](const std::string &S, const std::string &T,
                  const proofgen::Proof &P, const std::string &Pass,
                  const std::string &V, const passes::BugConfig &B) {
      return cache::fingerprintValidation(S, T, P, Pass, V, B);
    };
    cache::Fingerprint Base =
        FP(SrcText, TgtText, PR.Proof, "instcombine", Version, Bugs);

    struct Perturbed {
      const char *What;
      cache::Fingerprint FP;
    };
    std::vector<Perturbed> Keys;
    Keys.push_back({"src text", FP(SrcText + "\n", TgtText, PR.Proof,
                                   "instcombine", Version, Bugs)});
    Keys.push_back({"tgt text", FP(SrcText, TgtText + "\n", PR.Proof,
                                   "instcombine", Version, Bugs)});
    Keys.push_back({"pass name", FP(SrcText, TgtText, PR.Proof,
                                    "instcombine2", Version, Bugs)});
    Keys.push_back({"checker version", FP(SrcText, TgtText, PR.Proof,
                                          "instcombine", Version + "+",
                                          Bugs)});
    {
      // A name no real proof carries: inserting an existing automation
      // function (proofgen enables "transitivity" by default) would be a
      // no-op perturbation and a vacuous check.
      proofgen::Proof P2 = PR.Proof;
      if (!P2.Functions.empty())
        P2.Functions.begin()->second.AutoFuncs.insert("audit-perturbation");
      Keys.push_back({"proof auto funcs", FP(SrcText, TgtText, P2,
                                             "instcombine", Version, Bugs)});
      proofgen::Proof P3 = PR.Proof;
      if (!P3.Functions.empty()) {
        P3.Functions.begin()->second.NotSupported = true;
        Keys.push_back({"proof NS flag", FP(SrcText, TgtText, P3,
                                            "instcombine", Version, Bugs)});
      }
    }
    {
      auto Flip = [&](const char *What, auto Mut) {
        passes::BugConfig B2 = Bugs;
        Mut(B2);
        Keys.push_back({What, FP(SrcText, TgtText, PR.Proof, "instcombine",
                                 Version, B2)});
      };
      Flip("bug Mem2RegUndefLoop",
           [](passes::BugConfig &B) { B.Mem2RegUndefLoop = true; });
      Flip("bug Mem2RegConstexprSpeculate",
           [](passes::BugConfig &B) { B.Mem2RegConstexprSpeculate = true; });
      Flip("bug GvnIgnoreInbounds",
           [](passes::BugConfig &B) { B.GvnIgnoreInbounds = true; });
      Flip("bug GvnIgnoreInboundsPRE",
           [](passes::BugConfig &B) { B.GvnIgnoreInboundsPRE = true; });
      Flip("bug GvnPREWrongLeader",
           [](passes::BugConfig &B) { B.GvnPREWrongLeader = true; });
      Flip("bug UnsoundAddToOr",
           [](passes::BugConfig &B) { B.UnsoundAddToOr = true; });
    }

    std::set<cache::Fingerprint> Distinct;
    Distinct.insert(Base);
    for (const Perturbed &K : Keys) {
      check(K.FP != Base, "cache-fingerprint", "soundness",
            std::string("perturbing ") + K.What +
                " did not change the fingerprint");
      Distinct.insert(K.FP);
    }
    check(Distinct.size() == Keys.size() + 1, "cache-fingerprint",
          "soundness", "two distinct perturbations share a fingerprint");

    // A stored verdict must replay only under the exact key.
    cache::ValidationCacheOptions CO;
    CO.Policy = cache::CachePolicy::ReadWrite; // memory-only: Dir empty
    cache::ValidationCache VC(CO);
    cache::Verdict V;
    V.DiffMismatches = 7;
    VC.store(Base, V);
    auto Hit = VC.lookup(Base);
    check(Hit && Hit->DiffMismatches == 7, "cache-fingerprint", "soundness",
          "stored verdict did not replay under its own key");
    for (const Perturbed &K : Keys)
      check(!VC.lookup(K.FP).has_value(), "cache-fingerprint", "soundness",
            std::string("verdict replayed across perturbed ") + K.What);
  }

  // --- cache-ro-accounting ---------------------------------------------------

  void roAccountingBattery() {
    namespace fs = std::filesystem;
    fs::path Dir = fs::temp_directory_path() /
                   ("crellvm-audit-ro-" + std::to_string(Opts.Seed));
    std::error_code EC;
    fs::remove_all(Dir, EC);

    cache::ValidationCacheOptions CO;
    CO.Policy = cache::CachePolicy::ReadOnly;
    CO.Dir = Dir.string();
    cache::ValidationCache VC(CO);
    check(VC.enabled() && !VC.writable(), "cache-ro-accounting",
          "accounting", "read-only cache not enabled or writable");
    cache::Fingerprint K{0x5eedull, 0xf00dull};
    check(!VC.lookup(K).has_value(), "cache-ro-accounting", "accounting",
          "fresh read-only cache reported a hit");
    cache::StoreOutcome SO = VC.store(K, cache::Verdict{});
    check(!SO.Stored && !SO.Error && SO.Evictions == 0,
          "cache-ro-accounting", "accounting",
          "read-only store was not refused cleanly");
    cache::DiskStoreCounters DC = VC.diskCounters();
    check(DC.Stores == 0 && DC.StoreErrors == 0 && DC.Evictions == 0 &&
              DC.IndexRebuilds == 0,
          "cache-ro-accounting", "accounting",
          "read-only cache on a fresh dir moved a store/evict/rebuild "
          "counter");
    check(!fs::exists(Dir), "cache-ro-accounting", "accounting",
          "read-only cache created its directory");
    fs::remove_all(Dir, EC);
  }

  const AuditOptions &Opts;
  AuditReport &R;
};

} // namespace

AuditReport crellvm::audit::runAudit(const AuditOptions &Opts) {
  AuditReport R;
  Auditor(Opts, R).run();

  if (!Opts.ChaosSpec.empty()) {
    // Chaos replay: the identical battery under injected faults. The
    // contract is that every fault lands at an I/O or concurrency
    // boundary whose failure the stack absorbs (retry, miss, degrade) —
    // so the set of violated invariants must not grow. A finding that
    // appears only under chaos means a fault changed a verdict.
    std::string Err;
    if (!fault::configure(Opts.ChaosSpec, &Err)) {
      R.Findings.push_back({"chaos-config", "robustness",
                            "bad chaos spec: " + Err, Opts.Seed, 0});
      return R;
    }
    AuditOptions Replay = Opts;
    Replay.ChaosSpec.clear();
    AuditReport RC;
    Auditor(Replay, RC).run();
    fault::disarm();

    std::set<std::string> Baseline;
    for (const Finding &F : R.Findings)
      Baseline.insert(F.Invariant + "|" + F.Detail);
    R.ChecksRun += RC.ChecksRun;
    for (const Finding &F : RC.Findings)
      if (!Baseline.count(F.Invariant + "|" + F.Detail))
        R.Findings.push_back(
            {"chaos-delta", "robustness",
             "appears only under chaos '" + Opts.ChaosSpec + "': [" +
                 F.Invariant + "] " + F.Detail,
             Opts.Seed, F.Round});
  }
  return R;
}
