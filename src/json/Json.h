//===- json/Json.h - Minimal JSON value, parser and writer -----*- C++ -*-===//
///
/// \file
/// A small JSON library used to serialize translation proofs and IR modules
/// to disk, reproducing the paper's plain-text JSON proof exchange format
/// (and the I/O column of the timing tables). Supports the JSON subset the
/// proofs need: null, bool, 64-bit integers, strings, arrays, objects.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_JSON_JSON_H
#define CRELLVM_JSON_JSON_H

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace crellvm {
namespace json {

/// A JSON value. Objects keep insertion order so that serialization is
/// deterministic and diffs are stable.
///
/// Parsed values are *untrusted input* (the proof file crosses a trust
/// boundary, Fig. 1), so every read accessor is total: a kind mismatch or
/// missing key asserts in debug builds — internal serialization code must
/// not rely on it — but in release builds it returns a harmless default
/// (null / false / 0 / "" / empty sequence) instead of reading out of
/// bounds. The deserializers then reject the malformed structure at the
/// semantic level.
class Value {
public:
  enum class Kind { Null, Bool, Int, String, Array, Object };

  Value() : K(Kind::Null) {}
  Value(bool B) : K(Kind::Bool), BoolVal(B) {}
  Value(int64_t I) : K(Kind::Int), IntVal(I) {}
  Value(int I) : K(Kind::Int), IntVal(I) {}
  Value(uint64_t I) : K(Kind::Int), IntVal(static_cast<int64_t>(I)) {}
  Value(std::string S)
      : K(Kind::String),
        StrVal(std::make_shared<const std::string>(std::move(S))) {}
  Value(const char *S)
      : K(Kind::String), StrVal(std::make_shared<const std::string>(S)) {}
  /// Adopts already-shared string storage without copying. This is the
  /// zero-copy seam: the CBJ1 session decoder interns each distinct string
  /// once and every later back-reference shares that one allocation.
  explicit Value(std::shared_ptr<const std::string> S)
      : K(Kind::String), StrVal(std::move(S)) {}

  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  bool getBool() const {
    assert(K == Kind::Bool && "not a bool");
    return K == Kind::Bool && BoolVal;
  }
  int64_t getInt() const {
    assert(K == Kind::Int && "not an int");
    return K == Kind::Int ? IntVal : 0;
  }
  const std::string &getString() const {
    assert(K == Kind::String && "not a string");
    if (K == Kind::String && StrVal)
      return *StrVal;
    return emptyString(); // empty unless this really is a string
  }
  /// The underlying shared storage (null unless this is a string). Codecs
  /// use it to intern by identity instead of copying the bytes.
  const std::shared_ptr<const std::string> &sharedString() const {
    return StrVal;
  }

  /// Array access.
  void push(Value V) {
    assert(K == Kind::Array && "not an array");
    if (K == Kind::Array)
      Elems.push_back(std::move(V));
  }
  size_t size() const {
    assert(K == Kind::Array && "not an array");
    return Elems.size();
  }
  const Value &at(size_t I) const {
    assert(K == Kind::Array && I < Elems.size() && "index out of range");
    if (K != Kind::Array || I >= Elems.size())
      return nullValue();
    return Elems[I];
  }
  const std::vector<Value> &elements() const {
    assert(K == Kind::Array && "not an array");
    return Elems; // empty unless this really is an array
  }

  /// Object access. set() keeps first-insertion order; get() asserts the key
  /// exists, find() returns nullptr when absent.
  void set(const std::string &Key, Value V);
  const Value &get(const std::string &Key) const;
  const Value *find(const std::string &Key) const;
  const std::vector<std::pair<std::string, Value>> &members() const {
    assert(K == Kind::Object && "not an object");
    return Members; // empty unless this really is an object
  }

  /// The shared null value that fail-soft accessors return.
  static const Value &nullValue();

  /// The shared empty string that fail-soft accessors return.
  static const std::string &emptyString();

  /// Serializes to compact JSON text.
  std::string write() const;

private:
  void writeTo(std::string &Out) const;

  Kind K;
  bool BoolVal = false;
  int64_t IntVal = 0;
  /// Immutable, shareable string storage. Distinct values decoded from the
  /// same interned wire string point at one allocation.
  std::shared_ptr<const std::string> StrVal;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Parses \p Text; returns std::nullopt with a message in \p Error on
/// malformed input.
std::optional<Value> parse(const std::string &Text, std::string *Error);

} // namespace json
} // namespace crellvm

#endif // CRELLVM_JSON_JSON_H
