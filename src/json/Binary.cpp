//===- json/Binary.cpp ------------------------------------------*- C++ -*-===//

#include "json/Binary.h"

#include <cstring>

using namespace crellvm;
using namespace crellvm::json;

namespace {

constexpr char Magic[4] = {'C', 'B', 'J', '1'};

enum Tag : uint8_t {
  TNull = 0x00,
  TFalse = 0x01,
  TTrue = 0x02,
  TInt = 0x03,
  TString = 0x04,
  TStringRef = 0x05,
  TArray = 0x06,
  TObject = 0x07,
};

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

// --- Encoder ----------------------------------------------------------------

/// Encodes one value against caller-owned intern state (so a session
/// writer can persist the table across frames).
class Encoder {
public:
  Encoder(std::unordered_map<std::string, uint64_t> &Interned,
          uint64_t &NextId)
      : Interned(Interned), NextId(NextId) {}

  std::string take() { return std::move(Out); }
  const std::string &error() const { return Err; }

  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  void byte(uint8_t B) { Out.push_back(static_cast<char>(B)); }

  void varint(uint64_t V) {
    while (V >= 0x80) {
      byte(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    byte(static_cast<uint8_t>(V));
  }

  void string(const std::string &S) {
    auto It = Interned.find(S);
    if (It != Interned.end()) {
      byte(TStringRef);
      varint(It->second);
      return;
    }
    byte(TString);
    varint(S.size());
    Out.append(S);
    Interned.emplace(S, NextId++);
  }

  bool value(const Value &V, unsigned Depth) {
    // Symmetric with the decoder: never emit bytes the decoder would
    // reject, and never recurse deeper than it would.
    if (Depth > BinaryMaxDepth)
      return fail("nesting too deep");
    switch (V.kind()) {
    case Value::Kind::Null:
      byte(TNull);
      return true;
    case Value::Kind::Bool:
      byte(V.getBool() ? TTrue : TFalse);
      return true;
    case Value::Kind::Int:
      byte(TInt);
      varint(zigzag(V.getInt()));
      return true;
    case Value::Kind::String:
      string(V.getString());
      return true;
    case Value::Kind::Array:
      byte(TArray);
      varint(V.elements().size());
      for (const Value &E : V.elements())
        if (!value(E, Depth + 1))
          return false;
      return true;
    case Value::Kind::Object:
      byte(TObject);
      varint(V.members().size());
      for (const auto &KV : V.members()) {
        string(KV.first);
        if (!value(KV.second, Depth + 1))
          return false;
      }
      return true;
    }
    return fail("unknown value kind");
  }

private:
  std::string Out;
  std::unordered_map<std::string, uint64_t> &Interned;
  uint64_t &NextId;
  std::string Err;
};

// --- Decoder ----------------------------------------------------------------

/// Decodes one value against caller-owned intern state. \p Start skips
/// the magic without copying the payload.
class Decoder {
public:
  Decoder(const std::string &Bytes, size_t Start,
          std::vector<std::shared_ptr<const std::string>> &Table)
      : In(Bytes), Pos(Start), Table(Table) {}

  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }
  const std::string &error() const { return Err; }
  bool atEnd() const { return Pos == In.size(); }

  bool byte(uint8_t &B) {
    if (Pos >= In.size())
      return fail("unexpected end of input");
    B = static_cast<uint8_t>(In[Pos++]);
    return true;
  }

  bool varint(uint64_t &V) {
    V = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      uint8_t B;
      if (!byte(B))
        return false;
      V |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return true;
    }
    return fail("varint too long");
  }

  /// Reads either a fresh string (interning it) or a back-reference.
  /// Either way \p S points at the table's shared storage, so every
  /// occurrence of an interned string shares one allocation.
  bool string(std::shared_ptr<const std::string> &S) {
    uint8_t T;
    if (!byte(T))
      return false;
    return stringTagged(T, S);
  }

  bool stringTagged(uint8_t T, std::shared_ptr<const std::string> &S) {
    if (T == TString) {
      uint64_t Len;
      if (!varint(Len))
        return false;
      if (Len > In.size() - Pos)
        return fail("string length exceeds input");
      S = std::make_shared<const std::string>(In, Pos, Len);
      Pos += Len;
      Table.push_back(S);
      return true;
    }
    if (T == TStringRef) {
      uint64_t Id;
      if (!varint(Id))
        return false;
      if (Id >= Table.size())
        return fail("string reference out of range");
      S = Table[Id];
      return true;
    }
    return fail("expected a string");
  }

  bool value(Value &V, unsigned Depth) {
    if (Depth > BinaryMaxDepth)
      return fail("nesting too deep");
    uint8_t T;
    if (!byte(T))
      return false;
    switch (T) {
    case TNull:
      V = Value();
      return true;
    case TFalse:
      V = Value(false);
      return true;
    case TTrue:
      V = Value(true);
      return true;
    case TInt: {
      uint64_t Raw;
      if (!varint(Raw))
        return false;
      V = Value(unzigzag(Raw));
      return true;
    }
    case TString:
    case TStringRef: {
      std::shared_ptr<const std::string> S;
      if (!stringTagged(T, S))
        return false;
      V = Value(std::move(S));
      return true;
    }
    case TArray: {
      uint64_t N;
      if (!varint(N))
        return false;
      // Every element takes at least one byte: a count beyond the
      // remaining input is hostile, not just truncated.
      if (N > In.size() - Pos)
        return fail("array count exceeds input");
      V = Value::array();
      for (uint64_t I = 0; I != N; ++I) {
        Value E;
        if (!value(E, Depth + 1))
          return false;
        V.push(std::move(E));
      }
      return true;
    }
    case TObject: {
      uint64_t N;
      if (!varint(N))
        return false;
      if (N > In.size() - Pos)
        return fail("object count exceeds input");
      V = Value::object();
      for (uint64_t I = 0; I != N; ++I) {
        std::shared_ptr<const std::string> Key;
        Value Member;
        if (!string(Key) || !value(Member, Depth + 1))
          return false;
        V.set(*Key, std::move(Member));
      }
      return true;
    }
    default:
      return fail("unknown tag");
    }
  }

private:
  const std::string &In;
  size_t Pos = 0;
  std::vector<std::shared_ptr<const std::string>> &Table;
  std::string Err;
};

std::optional<Value>
decodeWith(const std::string &Bytes,
           std::vector<std::shared_ptr<const std::string>> &Table,
           std::string *Error) {
  auto Fail = [&](const std::string &Msg) -> std::optional<Value> {
    if (Error)
      *Error = Msg;
    return std::nullopt;
  };
  if (Bytes.size() < sizeof(Magic) ||
      std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return Fail("not a CBJ1 binary proof");
  Decoder D(Bytes, sizeof(Magic), Table);
  Value V;
  if (!D.value(V, 0))
    return Fail(D.error());
  if (!D.atEnd())
    return Fail("trailing bytes after value");
  return V;
}

} // namespace

std::optional<std::string> json::encodeBinary(const Value &V,
                                              std::string *Error) {
  std::unordered_map<std::string, uint64_t> Interned;
  uint64_t NextId = 0;
  Encoder E(Interned, NextId);
  if (!E.value(V, 0)) {
    if (Error)
      *Error = E.error();
    return std::nullopt;
  }
  return std::string(Magic, sizeof(Magic)) + E.take();
}

std::optional<Value> json::decodeBinary(const std::string &Bytes,
                                        std::string *Error) {
  std::vector<std::shared_ptr<const std::string>> Table;
  return decodeWith(Bytes, Table, Error);
}

// --- Session codecs ----------------------------------------------------------

std::optional<std::string> BinaryWriter::encode(const Value &V,
                                                std::string *Error) {
  Encoder E(Interned, NextId);
  if (!E.value(V, 0)) {
    if (Error)
      *Error = E.error();
    return std::nullopt;
  }
  return std::string(Magic, sizeof(Magic)) + E.take();
}

void BinaryWriter::reset() {
  Interned.clear();
  NextId = 0;
}

std::optional<Value> BinaryReader::decode(const std::string &Bytes,
                                          std::string *Error) {
  size_t Mark = Table.size();
  auto V = decodeWith(Bytes, Table, Error);
  // Roll back strings interned by a failed frame: hostile bytes must not
  // plant table entries that later (well-formed) frames could reference.
  if (!V && Table.size() > Mark)
    Table.resize(Mark);
  return V;
}

void BinaryReader::reset() { Table.clear(); }
