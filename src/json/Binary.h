//===- json/Binary.h - Compact binary JSON encoding -------------*- C++ -*-===//
///
/// \file
/// A compact binary encoding of json::Value trees, the "binary proof
/// format" the paper proposes as future work for the I/O bottleneck
/// (§7: plain-text JSON parsing dominates validation time). The format
/// is self-contained and deterministic:
///
///   magic "CBJ1", then one value:
///     0x00 null        0x01 false         0x02 true
///     0x03 int         zigzag varint
///     0x04 string      varint length + bytes; interned at the next id
///     0x05 string ref  varint id of a previously interned string
///     0x06 array       varint count + elements
///     0x07 object      varint count + (string, value) pairs
///
/// String interning is the "delta" part: proofs repeat register names,
/// rule names, and object keys thousands of times, and every repeat
/// costs two bytes instead of the full text. The decoder is defensive —
/// it never trusts counts or ids and fails with a message instead of
/// reading out of bounds (the proof file is untrusted input).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_JSON_BINARY_H
#define CRELLVM_JSON_BINARY_H

#include "json/Json.h"

namespace crellvm {
namespace json {

/// Encodes \p V as compact binary bytes (returned in a std::string so it
/// can be written/read with the same file helpers as text).
std::string encodeBinary(const Value &V);

/// Decodes bytes produced by encodeBinary. Returns std::nullopt with a
/// message in \p Error on malformed, truncated, or hostile input.
std::optional<Value> decodeBinary(const std::string &Bytes,
                                  std::string *Error = nullptr);

} // namespace json
} // namespace crellvm

#endif // CRELLVM_JSON_BINARY_H
