//===- json/Binary.h - Compact binary JSON encoding -------------*- C++ -*-===//
///
/// \file
/// A compact binary encoding of json::Value trees, the "binary proof
/// format" the paper proposes as future work for the I/O bottleneck
/// (§7: plain-text JSON parsing dominates validation time). The format
/// is self-contained and deterministic:
///
///   magic "CBJ1", then one value:
///     0x00 null        0x01 false         0x02 true
///     0x03 int         zigzag varint
///     0x04 string      varint length + bytes; interned at the next id
///     0x05 string ref  varint id of a previously interned string
///     0x06 array       varint count + elements
///     0x07 object      varint count + (string, value) pairs
///
/// String interning is the "delta" part: proofs repeat register names,
/// rule names, and object keys thousands of times, and every repeat
/// costs two bytes instead of the full text. The decoder is defensive —
/// it never trusts counts or ids and fails with a message instead of
/// reading out of bounds (the proof file is untrusted input).
///
/// Both directions enforce the same BinaryMaxDepth nesting limit, so the
/// encoder can never produce bytes its own decoder rejects (and neither
/// side can be driven into stack overflow by a deep tree).
///
/// BinaryWriter/BinaryReader are the *session* forms used by the wire
/// protocol: their intern tables persist across encode()/decode() calls,
/// so on a pipelined connection a register or rule name is transmitted
/// in full once and costs two bytes on every later frame. The reader
/// interns into shared string storage — every back-reference yields a
/// json::Value sharing one allocation (the first zero-copy slice).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_JSON_BINARY_H
#define CRELLVM_JSON_BINARY_H

#include "json/Json.h"

#include <unordered_map>

namespace crellvm {
namespace json {

/// Nesting deeper than this is rejected by decoder *and* encoder: a
/// hostile file must not be able to overflow the decoder's stack, and a
/// pathological tree must fail at encode time, not produce bytes the
/// decoder then refuses.
constexpr unsigned BinaryMaxDepth = 512;

/// Encodes \p V as compact binary bytes (returned in a std::string so it
/// can be written/read with the same file helpers as text). Fails with a
/// message in \p Error if the tree nests deeper than BinaryMaxDepth.
std::optional<std::string> encodeBinary(const Value &V,
                                        std::string *Error = nullptr);

/// Decodes bytes produced by encodeBinary. Returns std::nullopt with a
/// message in \p Error on malformed, truncated, or hostile input.
std::optional<Value> decodeBinary(const std::string &Bytes,
                                  std::string *Error = nullptr);

/// Session encoder: the intern table persists across encode() calls, so a
/// string transmitted in any earlier frame of the session costs two bytes
/// in every later frame. Pair with a BinaryReader fed the same frames in
/// the same order; reset() both together (a codec re-negotiation is the
/// only sync point the wire protocol uses).
class BinaryWriter {
public:
  /// Encodes \p V as one self-delimiting CBJ1 frame (magic + value).
  /// Fails only on over-deep nesting; the table still grows for strings
  /// already emitted, so a failed frame poisons the session — callers
  /// treat it as fatal for the connection.
  std::optional<std::string> encode(const Value &V,
                                    std::string *Error = nullptr);

  void reset();
  size_t internedStrings() const { return Interned.size(); }

private:
  std::unordered_map<std::string, uint64_t> Interned;
  uint64_t NextId = 0;
};

/// Session decoder, the defensive mirror of BinaryWriter. On a decode
/// error the intern table is rolled back to its pre-frame state, so one
/// hostile frame cannot corrupt what later frames may reference (the
/// caller answers an error and keeps the connection; a *legitimate*
/// sender never produces a failing frame, so the tables stay in sync).
class BinaryReader {
public:
  std::optional<Value> decode(const std::string &Bytes,
                              std::string *Error = nullptr);

  void reset();
  size_t internedStrings() const { return Table.size(); }

private:
  std::vector<std::shared_ptr<const std::string>> Table;
};

} // namespace json
} // namespace crellvm

#endif // CRELLVM_JSON_BINARY_H
