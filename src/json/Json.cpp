//===- json/Json.cpp --------------------------------------------*- C++ -*-===//

#include "json/Json.h"

#include <cctype>

using namespace crellvm;
using namespace crellvm::json;

void Value::set(const std::string &Key, Value V) {
  assert(K == Kind::Object && "not an object");
  if (K != Kind::Object)
    return;
  for (auto &KV : Members) {
    if (KV.first == Key) {
      KV.second = std::move(V);
      return;
    }
  }
  Members.emplace_back(Key, std::move(V));
}

const Value &Value::nullValue() {
  static const Value Null;
  return Null;
}

const std::string &Value::emptyString() {
  static const std::string Empty;
  return Empty;
}

const Value &Value::get(const std::string &Key) const {
  const Value *V = find(Key);
  assert(V && "missing object key");
  if (!V)
    return nullValue();
  return *V;
}

const Value *Value::find(const std::string &Key) const {
  assert(K == Kind::Object && "not an object");
  if (K != Kind::Object)
    return nullptr;
  for (const auto &KV : Members)
    if (KV.first == Key)
      return &KV.second;
  return nullptr;
}

static void writeEscaped(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void Value::writeTo(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolVal ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(IntVal);
    break;
  case Kind::String:
    writeEscaped(getString(), Out);
    break;
  case Kind::Array: {
    Out += '[';
    for (size_t I = 0; I != Elems.size(); ++I) {
      if (I != 0)
        Out += ',';
      Elems[I].writeTo(Out);
    }
    Out += ']';
    break;
  }
  case Kind::Object: {
    Out += '{';
    for (size_t I = 0; I != Members.size(); ++I) {
      if (I != 0)
        Out += ',';
      writeEscaped(Members[I].first, Out);
      Out += ':';
      Members[I].second.writeTo(Out);
    }
    Out += '}';
    break;
  }
  }
}

std::string Value::write() const {
  std::string Out;
  Out.reserve(256);
  writeTo(Out);
  return Out;
}

namespace {

/// Recursive-descent JSON parser.
class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<Value> run() {
    skipSpace();
    auto V = parseValue();
    if (!V)
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size()) {
      fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return V;
  }

private:
  void fail(const std::string &Msg) {
    if (Error && Error->empty())
      *Error = Msg + " at offset " + std::to_string(Pos);
  }

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool expect(char C) {
    if (consume(C))
      return true;
    fail(std::string("expected '") + C + "'");
    return false;
  }

  bool matchKeyword(const char *KW) {
    size_t Len = std::string(KW).size();
    if (Text.compare(Pos, Len, KW) == 0) {
      Pos += Len;
      return true;
    }
    return false;
  }

  std::optional<Value> parseValue() {
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      auto S = parseString();
      if (!S)
        return std::nullopt;
      return Value(std::move(*S));
    }
    if (matchKeyword("null"))
      return Value();
    if (matchKeyword("true"))
      return Value(true);
    if (matchKeyword("false"))
      return Value(false);
    return parseNumber();
  }

  std::optional<Value> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start || (Pos == Start + 1 && Text[Start] == '-')) {
      fail("invalid number");
      return std::nullopt;
    }
    // Integers only: the proof format never emits floats.
    errno = 0;
    int64_t V = std::strtoll(Text.substr(Start, Pos - Start).c_str(),
                             nullptr, 10);
    return Value(V);
  }

  std::optional<std::string> parseString() {
    if (!expect('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size()) {
        fail("unterminated escape");
        return std::nullopt;
      }
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return std::nullopt;
        }
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else {
            fail("invalid \\u escape");
            return std::nullopt;
          }
        }
        // The writer only emits \u for control characters, so a single byte
        // suffices here.
        Out += static_cast<char>(Code & 0xff);
        break;
      }
      default:
        fail("unknown escape");
        return std::nullopt;
      }
    }
    if (!expect('"'))
      return std::nullopt;
    return Out;
  }

  std::optional<Value> parseArray() {
    expect('[');
    Value Arr = Value::array();
    skipSpace();
    if (consume(']'))
      return Arr;
    while (true) {
      skipSpace();
      auto Elem = parseValue();
      if (!Elem)
        return std::nullopt;
      Arr.push(std::move(*Elem));
      skipSpace();
      if (consume(']'))
        return Arr;
      if (!expect(','))
        return std::nullopt;
    }
  }

  std::optional<Value> parseObject() {
    expect('{');
    Value Obj = Value::object();
    skipSpace();
    if (consume('}'))
      return Obj;
    while (true) {
      skipSpace();
      auto Key = parseString();
      if (!Key)
        return std::nullopt;
      skipSpace();
      if (!expect(':'))
        return std::nullopt;
      skipSpace();
      auto Val = parseValue();
      if (!Val)
        return std::nullopt;
      Obj.set(*Key, std::move(*Val));
      skipSpace();
      if (consume('}'))
        return Obj;
      if (!expect(','))
        return std::nullopt;
    }
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

std::optional<Value> crellvm::json::parse(const std::string &Text,
                                          std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).run();
}
