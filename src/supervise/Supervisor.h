//===- supervise/Supervisor.h - Member process supervisor -------*- C++ -*-===//
///
/// \file
/// The self-healing layer under `crellvm-cluster --supervise N`: a
/// MemberSupervisor fork/execs every member's `crellvm-served` process
/// from a command template and then actively keeps the fleet alive
/// (DESIGN.md §18). The cluster router alone can only *fail over*: it
/// notices a member whose socket errors and reroutes its orphans, but
/// nothing respawns the dead process, and a hung member — alive socket,
/// no answers, e.g. SIGSTOP or a livelock — never errors a socket at
/// all, so the edge-triggered death detector is blind to it.
///
/// The supervisor closes both gaps with one probe loop:
///
///  - **Process death** is detected by waitpid(WNOHANG) every tick; the
///    member is respawned on a support/Backoff.h schedule.
///  - **Hangs** are detected by deadline-bounded health pings
///    (server/HealthProbe.h): after `HangAfterMissedPings` consecutive
///    misses the member is declared hung, SIGKILLed, and respawned —
///    the kill errors its socket, so the router's existing failover
///    reclaims the orphans with zero accepted-request loss.
///  - **Readiness gates admission**: a freshly spawned member joins the
///    ring only after a ping answers Ok with an empty reason
///    (Protocol.h liveness-vs-readiness), so the router never routes to
///    a process that is still binding its socket or already draining.
///  - **Flapping is quarantined**: more than `RestartBudget` restarts
///    inside a sliding `RestartWindowMs` window permanently quarantines
///    the member with a named reason in the stats — mirroring the cache
///    rw→ro→off and plan on→shadow→off demotion ladders, a persistent
///    failure is surfaced loudly instead of retried forever.
///
/// Supervision adds **zero TCB**: it starts, probes, and kills
/// processes; a verdict is still only ever produced by a member's
/// driver + checker stack, and a supervisor bug can cost availability,
/// never soundness.
///
/// Thread model: one supervisor thread owns all process state. The
/// router-facing hooks (Nudge, RttSink, Log) are invoked WITHOUT the
/// supervisor mutex held, so a hook may call straight back into
/// ClusterRouter (whose lock is held while it calls admitted()) without
/// deadlock.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPERVISE_SUPERVISOR_H
#define CRELLVM_SUPERVISE_SUPERVISOR_H

#include "json/Json.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

namespace crellvm {
namespace supervise {

/// One supervised member: identity, the socket it must serve, and the
/// full argv (argv[0] = binary path) to fork/exec.
struct MemberSpec {
  std::string Id;
  std::string SocketPath;
  std::vector<std::string> Argv;
};

struct SupervisorOptions {
  std::vector<MemberSpec> Members;
  /// Probe cadence; every tick runs waitpid + one health ping per
  /// running member.
  uint64_t ProbeIntervalMs = 200;
  /// Per-ping deadline (HealthProbe); a miss is a ping that cannot
  /// complete within this budget.
  uint64_t ProbeDeadlineMs = 250;
  /// Consecutive missed pings that convict a member of hanging.
  unsigned HangAfterMissedPings = 3;
  /// Restarts allowed inside one sliding window; one more flap-
  /// quarantines the member permanently.
  unsigned RestartBudget = 5;
  uint64_t RestartWindowMs = 60000;
  /// Respawn backoff (support/Backoff.h), reset by a successful
  /// readiness ping.
  uint64_t BackoffBaseMs = 50;
  uint64_t BackoffCapMs = 2000;
  /// A spawned member must turn ready within this budget or it is
  /// treated like a hang (killed + restarted on the flap ladder).
  uint64_t ReadyTimeoutMs = 5000;
  uint64_t Seed = 1;

  /// Hooks, all optional and all invoked without the supervisor mutex.
  /// Member turned ready (admitted): the router should reattach it now
  /// instead of waiting out its own backoff.
  std::function<void(const std::string &Id)> Nudge;
  /// Successful health-ping RTT, for the router's per-member histograms.
  std::function<void(const std::string &Id, uint64_t RttUs)> RttSink;
  /// One human-readable event line (spawn/death/hang/quarantine).
  std::function<void(const std::string &Line)> Log;
};

/// Monotone supervisor counters (surfaced in the aggregated stats).
struct SupervisorCounters {
  uint64_t Spawns = 0;        ///< every fork/exec attempt that succeeded
  uint64_t SpawnFailures = 0; ///< fork/exec failures (incl. sup.spawn chaos)
  uint64_t Restarts = 0;      ///< spawns after the member's first
  uint64_t ProcessDeaths = 0; ///< waitpid-detected exits
  uint64_t HungKills = 0;     ///< SIGKILLs after missed-ping conviction
  uint64_t MissedPings = 0;
  uint64_t ProbesSent = 0;
  uint64_t ProbesOk = 0;
  uint64_t FlapQuarantines = 0;
};

class MemberSupervisor {
public:
  explicit MemberSupervisor(SupervisorOptions Opts);
  ~MemberSupervisor();

  MemberSupervisor(const MemberSupervisor &) = delete;
  MemberSupervisor &operator=(const MemberSupervisor &) = delete;

  /// Spawns every member, waits up to ReadyTimeoutMs for at least one to
  /// turn ready, then starts the probe loop. False with \p Err when no
  /// member ever became ready (members that lag behind are left to the
  /// probe loop, exactly like ClusterRouter::start).
  bool start(std::string *Err);

  /// Stops the probe loop and tears the fleet down: SIGTERM, a bounded
  /// grace wait for the drain, then SIGKILL for anything still alive.
  void stop();

  /// The router's admission gate: true iff \p Id is ready and not
  /// quarantined. Called with the router lock held — must not block.
  bool admitted(const std::string &Id) const;

  /// Live pid of \p Id, or -1 (for tests: the SIGSTOP hang harness).
  pid_t pidOf(const std::string &Id) const;

  SupervisorCounters counters() const;

  /// The `supervisor` stats section: counters plus a per-member array
  /// (state, pid, restarts, quarantine reason). Router-local — attached
  /// to the aggregated document after member aggregation, so it needs no
  /// StatsSchemaVersion bump.
  json::Value statsJson() const;

private:
  using Clock = std::chrono::steady_clock;

  enum class State : uint8_t {
    Stopped,      ///< not yet spawned (or reaped, awaiting backoff)
    WaitingReady, ///< spawned, readiness ping not yet answered
    Running,      ///< ready at least once; health-probed every tick
    Quarantined,  ///< flap budget exhausted; never respawned
  };
  static const char *stateName(State S);

  struct Member {
    MemberSpec Spec;
    State St = State::Stopped;
    pid_t Pid = -1;
    bool Admitted = false;
    unsigned ConsecutiveMisses = 0;
    uint64_t SpawnAttempts = 0; ///< backoff exponent; reset on ready
    uint64_t Restarts = 0;
    bool EverAttempted = false; ///< first spawn attempt is budget-free
    bool EverSpawned = false;   ///< respawns after this count as Restarts
    Clock::time_point NextSpawn = Clock::time_point::min();
    Clock::time_point SpawnedAt;
    /// Restart timestamps inside the sliding flap window.
    std::deque<Clock::time_point> RestartTimes;
    std::string QuarantineReason;
  };

  /// Fork/execs \p M (chaos site sup.spawn can veto). Mutex NOT held.
  bool spawnProcess(Member &M, std::string *Why);
  /// SIGKILL + blocking reap. Mutex NOT held.
  void killAndReap(Member &M);
  /// Records a restart attempt against the flap window; true when the
  /// budget still allows it, false after quarantining. Mutex held.
  bool chargeRestartBudget(Member &M, std::vector<std::string> &Events);
  void probeLoop();
  /// One supervision pass over every member. Fills \p Events with log
  /// lines and \p Nudges with newly-ready member ids (hooks are fired by
  /// the caller, outside the mutex).
  void tick(std::vector<std::string> &Events, std::vector<std::string> &Nudges,
            std::vector<std::pair<std::string, uint64_t>> &Rtts);

  SupervisorOptions Opts;
  mutable std::mutex SM;
  std::condition_variable StopCv;
  std::vector<Member> Members;
  SupervisorCounters C;
  bool Stopping = false;
  std::thread Prober;
};

} // namespace supervise
} // namespace crellvm

#endif // CRELLVM_SUPERVISE_SUPERVISOR_H
