//===- supervise/Supervisor.cpp ---------------------------------*- C++ -*-===//

#include "supervise/Supervisor.h"

#include "server/HealthProbe.h"
#include "support/Backoff.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::supervise;

const char *MemberSupervisor::stateName(State S) {
  switch (S) {
  case State::Stopped:
    return "stopped";
  case State::WaitingReady:
    return "waiting_ready";
  case State::Running:
    return "running";
  case State::Quarantined:
    return "quarantined";
  }
  return "?";
}

MemberSupervisor::MemberSupervisor(SupervisorOptions Options)
    : Opts(std::move(Options)) {
  for (const MemberSpec &Spec : Opts.Members) {
    Member M;
    M.Spec = Spec;
    Members.push_back(std::move(M));
  }
}

MemberSupervisor::~MemberSupervisor() { stop(); }

bool MemberSupervisor::spawnProcess(Member &M, std::string *Why) {
  // The deterministic spawn-failure site: fired, the fork never happens
  // — exactly what a vanished exec target or fork EAGAIN looks like —
  // and the failed attempt feeds the restart-budget flap ladder.
  if (fault::shouldFail("sup.spawn")) {
    if (Why)
      *Why = "chaos sup.spawn";
    return false;
  }
  std::vector<char *> Argv;
  Argv.reserve(M.Spec.Argv.size() + 1);
  for (const std::string &A : M.Spec.Argv)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  pid_t Pid = ::fork();
  if (Pid < 0) {
    if (Why)
      *Why = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (Pid == 0) {
    ::execv(Argv[0], Argv.data());
    // exec failed; 127 is the shell's "command not found" convention and
    // shows up in the death log line.
    _exit(127);
  }
  M.Pid = Pid;
  return true;
}

void MemberSupervisor::killAndReap(Member &M) {
  if (M.Pid <= 0)
    return;
  ::kill(M.Pid, SIGKILL);
  int Status = 0;
  // SIGKILL cannot be caught or blocked; the reap is prompt even for a
  // SIGSTOPped process (the kill wins over the stop).
  while (::waitpid(M.Pid, &Status, 0) < 0 && errno == EINTR)
    ;
  M.Pid = -1;
}

bool MemberSupervisor::chargeRestartBudget(Member &M,
                                           std::vector<std::string> &Events) {
  if (!M.EverAttempted) {
    M.EverAttempted = true; // the first spawn of a member is not a restart
    return true;
  }
  Clock::time_point Now = Clock::now();
  M.RestartTimes.push_back(Now);
  Clock::time_point Horizon =
      Now - std::chrono::milliseconds(Opts.RestartWindowMs);
  while (!M.RestartTimes.empty() && M.RestartTimes.front() < Horizon)
    M.RestartTimes.pop_front();
  if (M.RestartTimes.size() <= Opts.RestartBudget)
    return true;
  M.St = State::Quarantined;
  M.Admitted = false;
  M.QuarantineReason = "flap: " + std::to_string(M.RestartTimes.size()) +
                       " restarts in " + std::to_string(Opts.RestartWindowMs) +
                       " ms (budget " + std::to_string(Opts.RestartBudget) +
                       ")";
  ++C.FlapQuarantines;
  Events.push_back("supervise: member " + M.Spec.Id + " quarantined: " +
                   M.QuarantineReason);
  return false;
}

void MemberSupervisor::tick(
    std::vector<std::string> &Events, std::vector<std::string> &Nudges,
    std::vector<std::pair<std::string, uint64_t>> &Rtts) {
  Clock::time_point Now = Clock::now();

  // Phase 1 (locked): reap exits, pick which members to probe or spawn.
  // Only this thread ever mutates member state, so indices collected
  // here stay valid and un-raced across the unlocked phases below.
  std::vector<size_t> Probes, Spawns;
  {
    std::lock_guard<std::mutex> L(SM);
    for (size_t I = 0; I != Members.size(); ++I) {
      Member &M = Members[I];
      switch (M.St) {
      case State::Quarantined:
        break;
      case State::Stopped:
        if (Now >= M.NextSpawn)
          Spawns.push_back(I);
        break;
      case State::WaitingReady:
      case State::Running: {
        int Status = 0;
        pid_t W = ::waitpid(M.Pid, &Status, WNOHANG);
        if (W == M.Pid) {
          // Process death: edge-triggered and unmissable, unlike the
          // socket (a member that exits before binding never errors any
          // router connection).
          ++C.ProcessDeaths;
          std::string How =
              WIFEXITED(Status)
                  ? "exit " + std::to_string(WEXITSTATUS(Status))
                  : WIFSIGNALED(Status)
                        ? "signal " + std::to_string(WTERMSIG(Status))
                        : "status " + std::to_string(Status);
          Events.push_back("supervise: member " + M.Spec.Id + " died (" +
                           How + "), restarting");
          M.Pid = -1;
          M.Admitted = false;
          M.St = State::Stopped;
          M.NextSpawn = Now + std::chrono::milliseconds(backoff::delayMs(
                                  Opts.BackoffBaseMs, M.SpawnAttempts++,
                                  Opts.BackoffCapMs));
        } else {
          Probes.push_back(I);
        }
        break;
      }
      }
    }
  }

  // Phase 2 (unlocked): the deadline-bounded pings. Serial is fine — the
  // fleet is small and a healthy ping is microseconds; only a hung
  // member costs its full ProbeDeadlineMs.
  std::vector<server::ProbeResult> Results(Probes.size());
  for (size_t I = 0; I != Probes.size(); ++I)
    Results[I] = server::probePing(Members[Probes[I]].Spec.SocketPath,
                                   Opts.ProbeDeadlineMs);

  // Phase 3 (locked): apply probe verdicts; collect hung members.
  std::vector<size_t> Hung;
  {
    std::lock_guard<std::mutex> L(SM);
    for (size_t I = 0; I != Probes.size(); ++I) {
      Member &M = Members[Probes[I]];
      const server::ProbeResult &PR = Results[I];
      ++C.ProbesSent;
      if (PR.Reachable) {
        ++C.ProbesOk;
        M.ConsecutiveMisses = 0;
        Rtts.push_back({M.Spec.Id, PR.RttUs});
        if (M.St == State::WaitingReady && PR.Ready) {
          M.St = State::Running;
          M.Admitted = true;
          M.SpawnAttempts = 0; // healthy again: backoff ladder resets
          Events.push_back("supervise: member " + M.Spec.Id + " ready (pid " +
                           std::to_string(M.Pid) + ")");
          Nudges.push_back(M.Spec.Id);
          continue;
        }
      } else if (M.St == State::Running) {
        ++C.MissedPings;
        ++M.ConsecutiveMisses;
        if (M.ConsecutiveMisses >= Opts.HangAfterMissedPings) {
          Events.push_back("supervise: member " + M.Spec.Id + " hung (" +
                           std::to_string(M.ConsecutiveMisses) +
                           " missed pings: " + PR.Error + "), killing");
          Hung.push_back(Probes[I]);
          continue;
        }
      }
      // A spawned member that neither dies nor turns ready burns its
      // ready budget, then goes through the same kill+restart path a
      // hang does (it may be livelocked before ever binding).
      if (M.St == State::WaitingReady &&
          Now - M.SpawnedAt >
              std::chrono::milliseconds(Opts.ReadyTimeoutMs)) {
        Events.push_back("supervise: member " + M.Spec.Id +
                         " never became ready, killing");
        Hung.push_back(Probes[I]);
      }
    }
  }

  // Phase 4: SIGKILL convicts (unlocked: the blocking reap must not
  // stall admitted() calls from the router's submit path), then record
  // the deaths.
  for (size_t I : Hung)
    killAndReap(Members[I]);
  if (!Hung.empty()) {
    std::lock_guard<std::mutex> L(SM);
    for (size_t I : Hung) {
      Member &M = Members[I];
      ++C.HungKills;
      M.Admitted = false;
      M.ConsecutiveMisses = 0;
      M.St = State::Stopped;
      M.NextSpawn = Now + std::chrono::milliseconds(backoff::delayMs(
                              Opts.BackoffBaseMs, M.SpawnAttempts++,
                              Opts.BackoffCapMs));
    }
  }

  // Phase 5: due (re)spawns — budget check under the lock, fork outside.
  for (size_t I : Spawns) {
    Member &M = Members[I];
    {
      std::lock_guard<std::mutex> L(SM);
      if (M.St != State::Stopped)
        continue;
      if (!chargeRestartBudget(M, Events))
        continue; // quarantined, with the named reason already logged
    }
    std::string Why;
    bool Ok = spawnProcess(M, &Why);
    std::lock_guard<std::mutex> L(SM);
    if (Ok) {
      ++C.Spawns;
      if (M.EverSpawned) {
        ++C.Restarts;
        ++M.Restarts;
      }
      M.EverSpawned = true;
      M.St = State::WaitingReady;
      M.SpawnedAt = Clock::now();
      M.ConsecutiveMisses = 0;
      Events.push_back("supervise: member " + M.Spec.Id + " spawned (pid " +
                       std::to_string(M.Pid) + ")");
    } else {
      ++C.SpawnFailures;
      Events.push_back("supervise: member " + M.Spec.Id +
                       " spawn failed (" + Why + ")");
      M.NextSpawn =
          Clock::now() + std::chrono::milliseconds(backoff::delayMs(
                             Opts.BackoffBaseMs, M.SpawnAttempts++,
                             Opts.BackoffCapMs));
    }
  }
}

bool MemberSupervisor::start(std::string *Err) {
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(Opts.ReadyTimeoutMs);
  for (;;) {
    std::vector<std::string> Events, Nudges;
    std::vector<std::pair<std::string, uint64_t>> Rtts;
    tick(Events, Nudges, Rtts);
    for (const std::string &E : Events)
      if (Opts.Log)
        Opts.Log(E);
    for (const auto &[Id, Us] : Rtts)
      if (Opts.RttSink)
        Opts.RttSink(Id, Us);
    for (const std::string &Id : Nudges)
      if (Opts.Nudge)
        Opts.Nudge(Id);
    bool AnyReady = false, AllQuarantined = !Members.empty();
    {
      std::lock_guard<std::mutex> L(SM);
      for (const Member &M : Members) {
        AnyReady = AnyReady || M.Admitted;
        AllQuarantined = AllQuarantined && M.St == State::Quarantined;
      }
    }
    if (AnyReady)
      break;
    if (AllQuarantined) {
      if (Err)
        *Err = "every supervised member flap-quarantined before readiness";
      return false;
    }
    if (Clock::now() > Deadline) {
      if (Err)
        *Err = "no supervised member became ready within " +
               std::to_string(Opts.ReadyTimeoutMs) + " ms";
      return false;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min<uint64_t>(Opts.ProbeIntervalMs,
                                                     50)));
  }
  Prober = std::thread([this] { probeLoop(); });
  return true;
}

void MemberSupervisor::probeLoop() {
  std::unique_lock<std::mutex> L(SM);
  while (!Stopping) {
    StopCv.wait_for(L, std::chrono::milliseconds(Opts.ProbeIntervalMs),
                    [this] { return Stopping; });
    if (Stopping)
      return;
    L.unlock();
    std::vector<std::string> Events, Nudges;
    std::vector<std::pair<std::string, uint64_t>> Rtts;
    tick(Events, Nudges, Rtts);
    // Hooks fire without SM held, so a Nudge may re-enter the router
    // (which holds its own lock while calling admitted()) deadlock-free.
    for (const std::string &E : Events)
      if (Opts.Log)
        Opts.Log(E);
    for (const auto &[Id, Us] : Rtts)
      if (Opts.RttSink)
        Opts.RttSink(Id, Us);
    for (const std::string &Id : Nudges)
      if (Opts.Nudge)
        Opts.Nudge(Id);
    L.lock();
  }
}

void MemberSupervisor::stop() {
  {
    std::lock_guard<std::mutex> L(SM);
    if (Stopping && !Prober.joinable())
      return; // already stopped
    Stopping = true;
  }
  StopCv.notify_all();
  if (Prober.joinable())
    Prober.join();

  // Graceful teardown: SIGTERM everyone (crellvm-served drains on it),
  // bounded wait, SIGKILL the stragglers. Deaths here are shutdown, not
  // failures — no counters, no restarts.
  for (Member &M : Members)
    if (M.Pid > 0)
      ::kill(M.Pid, SIGTERM);
  Clock::time_point Deadline = Clock::now() + std::chrono::seconds(10);
  for (;;) {
    bool AnyAlive = false;
    for (Member &M : Members) {
      if (M.Pid <= 0)
        continue;
      int Status = 0;
      pid_t W = ::waitpid(M.Pid, &Status, WNOHANG);
      if (W == M.Pid)
        M.Pid = -1;
      else
        AnyAlive = true;
    }
    if (!AnyAlive || Clock::now() > Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (Member &M : Members)
    killAndReap(M);
  std::lock_guard<std::mutex> L(SM);
  for (Member &M : Members) {
    M.Admitted = false;
    if (M.St != State::Quarantined)
      M.St = State::Stopped;
  }
}

bool MemberSupervisor::admitted(const std::string &Id) const {
  std::lock_guard<std::mutex> L(SM);
  for (const Member &M : Members)
    if (M.Spec.Id == Id)
      return M.Admitted;
  // Unknown to the supervisor (e.g. a --member alongside --supervise):
  // not ours to gate.
  return true;
}

pid_t MemberSupervisor::pidOf(const std::string &Id) const {
  std::lock_guard<std::mutex> L(SM);
  for (const Member &M : Members)
    if (M.Spec.Id == Id)
      return M.Pid;
  return -1;
}

SupervisorCounters MemberSupervisor::counters() const {
  std::lock_guard<std::mutex> L(SM);
  return C;
}

json::Value MemberSupervisor::statsJson() const {
  std::lock_guard<std::mutex> L(SM);
  json::Value O = json::Value::object();
  O.set("spawns", json::Value(C.Spawns));
  O.set("spawn_failures", json::Value(C.SpawnFailures));
  O.set("restarts", json::Value(C.Restarts));
  O.set("process_deaths", json::Value(C.ProcessDeaths));
  O.set("hung_kills", json::Value(C.HungKills));
  O.set("missed_pings", json::Value(C.MissedPings));
  O.set("probes_sent", json::Value(C.ProbesSent));
  O.set("probes_ok", json::Value(C.ProbesOk));
  O.set("flap_quarantines", json::Value(C.FlapQuarantines));
  json::Value Arr = json::Value::array();
  for (const Member &M : Members) {
    json::Value MV = json::Value::object();
    MV.set("member_id", json::Value(M.Spec.Id));
    MV.set("state", json::Value(stateName(M.St)));
    MV.set("pid", json::Value(static_cast<int64_t>(M.Pid)));
    MV.set("restarts", json::Value(M.Restarts));
    MV.set("consecutive_misses",
           json::Value(static_cast<uint64_t>(M.ConsecutiveMisses)));
    if (!M.QuarantineReason.empty())
      MV.set("quarantine_reason", json::Value(M.QuarantineReason));
    Arr.push(std::move(MV));
  }
  O.set("members", std::move(Arr));
  return O;
}
