//===- checker/Version.h - Checker semantics fingerprint --------*- C++ -*-===//
///
/// \file
/// A string that changes whenever the checker could answer differently on
/// the same (src, tgt', proof) bytes. It is part of every validation-cache
/// key (cache/Fingerprint.h): a memoized verdict from an older or
/// differently-configured checker must miss, never be replayed.
///
/// Two components:
///
///  - `CheckerSemanticsVersion`, a hand-bumped integer. Bump it in the
///    same change that alters Postcond, Automation, infrule side
///    conditions, or the #NS feature fragment — anything that can flip a
///    verdict. (Stale caches then degrade to cold, which is always safe.)
///  - Every process-global switch that alters checking, currently the
///    test-only weakened AddDisjointOr side condition
///    (erhl::setWeakenedDisjointOrCheck). Without this, a test that
///    weakens the checker could replay a strict verdict or vice versa.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CHECKER_VERSION_H
#define CRELLVM_CHECKER_VERSION_H

#include <string>

namespace crellvm {
namespace checker {

/// Bump whenever checker semantics change (see file comment).
/// 2: unreachable blocks are vacuously valid (triples and phi edges of
///    dead code are no longer checked — only alignment).
constexpr int CheckerSemanticsVersion = 2;

/// The full fingerprint string: version plus every global switch.
std::string versionFingerprint();

/// The one-line `--version` output shared by every CLI
/// (crellvm-validate/-audit/-served/-client): tool name, the checker
/// semantics version, and the CMake build type, e.g.
/// `crellvm-validate checker-semantics-version 2 build RelWithDebInfo`.
std::string versionLine(const std::string &Tool);

} // namespace checker
} // namespace crellvm

#endif // CRELLVM_CHECKER_VERSION_H
