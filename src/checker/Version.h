//===- checker/Version.h - Checker semantics fingerprint --------*- C++ -*-===//
///
/// \file
/// A string that changes whenever the checker could answer differently on
/// the same (src, tgt', proof) bytes. It is part of every validation-cache
/// key (cache/Fingerprint.h): a memoized verdict from an older or
/// differently-configured checker must miss, never be replayed.
///
/// Two components:
///
///  - `CheckerSemanticsVersion`, a hand-bumped integer. Bump it in the
///    same change that alters Postcond, Automation, infrule side
///    conditions, or the #NS feature fragment — anything that can flip a
///    verdict. (Stale caches then degrade to cold, which is always safe.)
///  - Every process-global switch that alters checking, currently the
///    test-only weakened AddDisjointOr side condition
///    (erhl::setWeakenedDisjointOrCheck). Without this, a test that
///    weakens the checker could replay a strict verdict or vice versa.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CHECKER_VERSION_H
#define CRELLVM_CHECKER_VERSION_H

#include <string>

namespace crellvm {
namespace checker {

/// Bump whenever checker semantics change (see file comment).
/// 2: unreachable blocks are vacuously valid (triples and phi edges of
///    dead code are no longer checked — only alignment).
constexpr int CheckerSemanticsVersion = 2;

/// Bump whenever the serialized checker-plan layout (plan/Plan.h) or the
/// meaning of a checker::PlanSpec knob changes. Deliberately separate
/// from CheckerSemanticsVersion: a plan-layout change must invalidate
/// cached *plans* without cold-starting the (much larger) verdict cache,
/// while a semantics bump invalidates both — plan cache keys
/// (cache::fingerprintPlan) fold in both versions, so no plan built
/// against older checker semantics or an older schema is ever replayed.
///
/// 2: added the profile-gated dispatch knobs reuse_equal_post_cmd,
///    reuse_equal_post_phi, maydiff_candidates_defined_only_cmd, and
///    related_probe_first (checker/PlanSpec.h).
constexpr int PlanSchemaVersion = 2;

/// The full fingerprint string: version plus every global switch.
std::string versionFingerprint();

/// The one-line `--version` output shared by every CLI
/// (crellvm-validate/-audit/-served/-client/-campaign/-cluster): tool
/// name, the checker semantics version, the plan schema version, and the
/// CMake build type, e.g. `crellvm-validate checker-semantics-version 2
/// plan-schema-version 1 build RelWithDebInfo`.
std::string versionLine(const std::string &Tool);

} // namespace checker
} // namespace crellvm

#endif // CRELLVM_CHECKER_VERSION_H
