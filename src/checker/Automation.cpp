//===- checker/Automation.cpp -----------------------------------*- C++ -*-===//

#include "checker/Automation.h"

#include "checker/Postcond.h"

#include <algorithm>
#include <map>

using namespace crellvm;
using namespace crellvm::checker;
using namespace crellvm::erhl;
using namespace crellvm::ir;

namespace {

constexpr size_t MaxNodes = 256;
constexpr unsigned MaxDepth = 10;

bool isCommutative(Opcode Op) {
  return Op == Opcode::Add || Op == Opcode::Mul || Op == Opcode::And ||
         Op == Opcode::Or || Op == Opcode::Xor;
}

/// One BFS edge: the next expression plus the rule (if any) that has to be
/// applied to materialize the lessdef backing the edge.
struct Edge {
  Expr To;
  std::optional<Infrule> Materializer;
};

/// Neighbors of \p E in the downward lessdef graph of \p U (facts
/// `E >= X`). With \p GvnMode, commutativity and substitution edges are
/// added.
std::vector<Edge> neighbors(const Unary &U, const Expr &E, Side S,
                            bool GvnMode) {
  std::vector<Edge> Out;
  for (const Pred &P : U) {
    if (P.kind() == Pred::Kind::Lessdef && P.lhs() == E)
      Out.push_back(Edge{P.rhs(), std::nullopt});
  }
  if (!GvnMode)
    return Out;
  // Commutativity: op a b >= op b a.
  if (E.kind() == Expr::Kind::Bop && isCommutative(E.opcode()) &&
      E.operands()[0] != E.operands()[1]) {
    Infrule R;
    R.K = InfruleKind::BopCommExpr;
    R.S = S;
    R.Args = {Expr::val(ValT::phy(ir::Value::constInt(
                  static_cast<int64_t>(E.opcode()), ir::Type::intTy(32)))),
              Expr::val(E.operands()[0]), Expr::val(E.operands()[1])};
    Out.push_back(Edge{Expr::bop(E.opcode(), E.type(), E.operands()[1],
                                 E.operands()[0]),
                       std::move(R)});
  }
  // Substitution: replace one operand position v by v' when v >= v' is
  // known (the positional variant handles repeated operands; divisors are
  // off limits, see substitute_op).
  bool Trapping = E.kind() == Expr::Kind::Bop && mayTrap(E.opcode());
  if (E.kind() != Expr::Kind::Val && !E.isLoad()) {
    for (const Pred &P : U) {
      if (P.kind() != Pred::Kind::Lessdef ||
          P.lhs().kind() != Expr::Kind::Val ||
          P.rhs().kind() != Expr::Kind::Val)
        continue;
      const ValT &From = P.lhs().asVal();
      const ValT &To = P.rhs().asVal();
      if (From == To)
        continue;
      for (size_t I = 0; I != E.operands().size(); ++I) {
        if (!(E.operands()[I] == From) || (Trapping && I == 1))
          continue;
        Infrule R;
        R.K = InfruleKind::SubstituteOp;
        R.S = S;
        R.Args = {E,
                  Expr::val(ValT::phy(ir::Value::constInt(
                      static_cast<int64_t>(I), ir::Type::intTy(32)))),
                  Expr::val(From), Expr::val(To)};
        Out.push_back(Edge{E.substitutedAt(I, To), std::move(R)});
      }
    }
  }
  return Out;
}

/// The set of expressions reachable from \p Start through the (possibly
/// gvn-extended) lessdef graph of \p U, without materializing rules.
/// Downward follows `X >= Y` edges from X to Y; upward the reverse.
std::set<Expr> closureSet(const Unary &U, const Expr &Start, bool GvnMode,
                          bool Downward) {
  std::set<Expr> Seen{Start};
  std::vector<Expr> Frontier{Start};

  // Value pairs (From >= To) available for substitution edges.
  std::vector<std::pair<ValT, ValT>> Pairs;
  if (GvnMode) {
    for (const Pred &P : U) {
      if (P.kind() == Pred::Kind::Lessdef &&
          P.lhs().kind() == Expr::Kind::Val &&
          P.rhs().kind() == Expr::Kind::Val &&
          !(P.lhs().asVal() == P.rhs().asVal()))
        Pairs.emplace_back(P.lhs().asVal(), P.rhs().asVal());
    }
  }

  for (unsigned Depth = 0; Depth != MaxDepth && !Frontier.empty();
       ++Depth) {
    std::vector<Expr> Next;
    auto Push = [&](Expr E) {
      if (Seen.size() <= MaxNodes && Seen.insert(E).second)
        Next.push_back(std::move(E));
    };
    for (const Expr &E : Frontier) {
      for (const Pred &P : U) {
        if (P.kind() != Pred::Kind::Lessdef)
          continue;
        if (Downward && P.lhs() == E)
          Push(P.rhs());
        if (!Downward && P.rhs() == E)
          Push(P.lhs());
      }
      if (!GvnMode)
        continue;
      if (E.kind() == Expr::Kind::Bop && isCommutative(E.opcode()) &&
          E.operands()[0] != E.operands()[1])
        Push(Expr::bop(E.opcode(), E.type(), E.operands()[1],
                       E.operands()[0]));
      if (E.kind() != Expr::Kind::Val && !E.isLoad()) {
        bool Trapping =
            E.kind() == Expr::Kind::Bop && mayTrap(E.opcode());
        for (const auto &[From, To] : Pairs) {
          // Downward: replace From by To (substitute); upward: replace To
          // by From (substitute_rev). One position at a time so repeated
          // operands are handled; divisors are off limits.
          const ValT &Old = Downward ? From : To;
          const ValT &New = Downward ? To : From;
          for (size_t I = 0; I != E.operands().size(); ++I)
            if (E.operands()[I] == Old && !(Trapping && I == 1))
              Push(E.substitutedAt(I, New));
        }
      }
    }
    Frontier = std::move(Next);
  }
  return Seen;
}

} // namespace

bool crellvm::checker::deriveLessdef(Assertion &Have, Side S,
                                     const Expr &From, const Expr &To,
                                     bool GvnMode,
                                     std::vector<Infrule> *AppliedOut) {
  Unary &U = (S == Side::Src) ? Have.Src : Have.Tgt;
  if (U.count(Pred::lessdef(From, To)))
    return true;

  // BFS from `From` through the downward lessdef graph, remembering how
  // each node was reached.
  struct NodeInfo {
    Expr Parent;
    std::optional<Infrule> Materializer;
  };
  std::map<Expr, NodeInfo> Parents;
  std::vector<Expr> Frontier{From};
  Parents.emplace(From, NodeInfo{From, std::nullopt});
  bool Found = false;
  for (unsigned Depth = 0; Depth != MaxDepth && !Frontier.empty() && !Found;
       ++Depth) {
    std::vector<Expr> Next;
    for (const Expr &E : Frontier) {
      for (Edge &Ed : neighbors(U, E, S, GvnMode)) {
        if (Parents.count(Ed.To))
          continue;
        Parents.emplace(Ed.To, NodeInfo{E, std::move(Ed.Materializer)});
        if (Ed.To == To) {
          Found = true;
          break;
        }
        Next.push_back(Ed.To);
        if (Parents.size() > MaxNodes)
          break;
      }
      if (Found || Parents.size() > MaxNodes)
        break;
    }
    Frontier = std::move(Next);
  }
  if (!Found)
    return false;

  // Reconstruct the path From = E0, E1, ..., En = To.
  std::vector<Expr> Path;
  Expr Cur = To;
  while (!(Cur == From)) {
    Path.push_back(Cur);
    Cur = Parents.at(Cur).Parent;
  }
  Path.push_back(From);
  std::reverse(Path.begin(), Path.end());

  // Apply materializers and fold the chain with transitivity.
  auto Apply = [&](Infrule R) {
    auto Err = applyInfrule(R, Have);
    if (!Err && AppliedOut)
      AppliedOut->push_back(std::move(R));
    return !Err.has_value();
  };
  for (size_t I = 1; I != Path.size(); ++I) {
    const auto &Info = Parents.at(Path[I]);
    if (Info.Materializer && !Apply(*Info.Materializer))
      return false;
    if (I >= 2) {
      Infrule T;
      T.K = InfruleKind::Transitivity;
      T.S = S;
      T.Args = {From, Path[I - 1], Path[I]};
      if (!Apply(T))
        return false;
    }
  }
  return U.count(Pred::lessdef(From, To)) != 0;
}

void crellvm::checker::runAutomation(const std::set<std::string> &Autos,
                                     Assertion &Have, const Assertion &Goal,
                                     std::vector<Infrule> *AppliedOut) {
  bool Gvn = Autos.count("gvn_pre") != 0;
  bool Trans = Gvn || Autos.count("transitivity") != 0;
  bool Reduce = Gvn || Autos.count("reduce_maydiff") != 0;

  if (Trans) {
    // Derive every missing lessdef goal by chaining.
    for (int Pass = 0; Pass != 2; ++Pass) {
      Side S = Pass == 0 ? Side::Src : Side::Tgt;
      const Unary &GoalU = Pass == 0 ? Goal.Src : Goal.Tgt;
      for (const Pred &P : GoalU) {
        if (P.kind() != Pred::Kind::Lessdef)
          continue;
        deriveLessdef(Have, S, P.lhs(), P.rhs(), Gvn, AppliedOut);
      }
    }
  }

  if (!Reduce)
    return;

  // Discharge maydiff obligations.
  std::vector<RegT> Pending;
  for (const RegT &R : Have.Maydiff)
    if (!Goal.Maydiff.count(R))
      Pending.push_back(R);

  for (const RegT &R : Pending) {
    if (R.T != Tag::Phy) {
      // Old/ghost registers: drop their (non-goal) predicates, then apply
      // reduce_maydiff_non_physical (paper §4). Dropping predicates only
      // weakens the assertion.
      bool NeededInGoal = false;
      auto Mentions = [&R](const Pred &P) {
        for (const RegT &X : P.regs())
          if (X == R)
            return true;
        return false;
      };
      for (const Pred &P : Goal.Src)
        if (Mentions(P))
          NeededInGoal = true;
      for (const Pred &P : Goal.Tgt)
        if (Mentions(P))
          NeededInGoal = true;
      if (NeededInGoal)
        continue;
      for (auto It = Have.Src.begin(); It != Have.Src.end();)
        It = Mentions(*It) ? Have.Src.erase(It) : ++It;
      for (auto It = Have.Tgt.begin(); It != Have.Tgt.end();)
        It = Mentions(*It) ? Have.Tgt.erase(It) : ++It;
      Infrule Rule;
      Rule.K = InfruleKind::ReduceMaydiffNonPhysical;
      Rule.Args = {Expr::val(
          ValT{ir::Value::reg(R.Name, ir::Type::intTy(32)), R.T})};
      auto Err = applyInfrule(Rule, Have);
      if (!Err && AppliedOut)
        AppliedOut->push_back(std::move(Rule));
      continue;
    }

    // Physical register: find a maydiff-free middle expression e with
    // r >= e (src) and e >= r (tgt), deriving both by search if needed.
    // Candidates: the downward closure of r on the source side and the
    // upward closure of r on the target side.
    std::optional<Expr> SrcRegExpr, TgtRegExpr;
    for (const Pred &P : Have.Src) {
      if (P.kind() != Pred::Kind::Lessdef ||
          P.lhs().kind() != Expr::Kind::Val)
        continue;
      const ValT &L = P.lhs().asVal();
      if (L.isReg() && L.regT() == R)
        SrcRegExpr = P.lhs();
    }
    for (const Pred &P : Have.Tgt) {
      if (P.kind() != Pred::Kind::Lessdef ||
          P.rhs().kind() != Expr::Kind::Val)
        continue;
      const ValT &L = P.rhs().asVal();
      if (L.isReg() && L.regT() == R)
        TgtRegExpr = P.rhs();
    }
    if (!SrcRegExpr || !TgtRegExpr)
      continue;

    // Maydiff discharge always searches with substitution/commutativity
    // edges: replaced-operand chains (mem2reg ghost links, GVN leaders)
    // need one substitution step on each side.
    std::set<Expr> Down = closureSet(Have.Src, *SrcRegExpr, true,
                                     /*Downward=*/true);
    std::set<Expr> Up = closureSet(Have.Tgt, *TgtRegExpr, true,
                                   /*Downward=*/false);
    std::vector<Expr> Candidates;
    for (const Expr &E : Down)
      if (Up.count(E))
        Candidates.push_back(E);

    for (const Expr &E : Candidates) {
      if (E.isLoad())
        continue;
      bool Free = true;
      for (const RegT &X : E.regs())
        if (Have.Maydiff.count(X))
          Free = false;
      if (!Free)
        continue;
      if (!deriveLessdef(Have, Side::Src, *SrcRegExpr, E, true, AppliedOut))
        continue;
      if (!deriveLessdef(Have, Side::Tgt, E, *TgtRegExpr, true, AppliedOut))
        continue;
      Infrule Rule;
      Rule.K = InfruleKind::ReduceMaydiffLessdef;
      Rule.Args = {*SrcRegExpr, E, E};
      auto Err = applyInfrule(Rule, Have);
      if (!Err) {
        if (AppliedOut)
          AppliedOut->push_back(std::move(Rule));
        break;
      }
    }
  }
}
