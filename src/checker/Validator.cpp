//===- checker/Validator.cpp ------------------------------------*- C++ -*-===//

#include "checker/Validator.h"

#include "checker/Automation.h"
#include "checker/Postcond.h"

#include <algorithm>

using namespace crellvm;
using namespace crellvm::checker;
using namespace crellvm::erhl;
using namespace crellvm::ir;
using crellvm::proofgen::BlockProof;
using crellvm::proofgen::FunctionProof;
using crellvm::proofgen::LineEntry;

uint64_t ModuleResult::countValidated() const {
  uint64_t N = 0;
  for (const auto &KV : Functions)
    if (KV.second.Status == ValidationStatus::Validated)
      ++N;
  return N;
}

uint64_t ModuleResult::countFailed() const {
  uint64_t N = 0;
  for (const auto &KV : Functions)
    if (KV.second.Status == ValidationStatus::Failed)
      ++N;
  return N;
}

uint64_t ModuleResult::countNotSupported() const {
  uint64_t N = 0;
  for (const auto &KV : Functions)
    if (KV.second.Status == ValidationStatus::NotSupported)
      ++N;
  return N;
}

std::string ModuleResult::firstFailure() const {
  for (const auto &KV : Functions)
    if (KV.second.Status == ValidationStatus::Failed)
      return "@" + KV.first + " " + KV.second.Where + ": " +
             KV.second.Reason;
  return "";
}

bool crellvm::checker::usesUnsupportedFeatures(const ir::Function &F,
                                               std::string &Why) {
  for (const Param &P : F.Params) {
    if (P.Ty.isVec()) {
      Why = "vector operations";
      return true;
    }
  }
  for (const BasicBlock &B : F.Blocks) {
    for (const Phi &P : B.Phis)
      if (P.Ty.isVec()) {
        Why = "vector operations";
        return true;
      }
    for (const Instruction &I : B.Insts) {
      if (I.type().isVec()) {
        Why = "vector operations";
        return true;
      }
      for (const ir::Value &V : I.operands())
        if (V.type().isVec()) {
          Why = "vector operations";
          return true;
        }
      if (I.opcode() == Opcode::Call &&
          I.callee().rfind("llvm.", 0) == 0) {
        Why = "lifetime intrinsics";
        return true;
      }
    }
  }
  return false;
}

namespace {

/// Adds the fact established by taking the edge to \p Succ through
/// terminator \p Term (Appendix C "branching assertions").
void addBranchFacts(Unary &U, const Instruction &Term,
                    const std::string &Succ) {
  if (Term.opcode() == Opcode::CondBr) {
    const auto &Succs = Term.successors();
    if (Succs[0] == Succs[1])
      return;
    bool Taken = Succ == Succs[0];
    Expr Cond = Expr::val(ValT::phy(Term.operands()[0]));
    Expr Lit = Expr::val(ValT::phy(
        ir::Value::constInt(Taken ? 1 : 0, ir::Type::intTy(1))));
    U.insert(Pred::lessdef(Cond, Lit));
    U.insert(Pred::lessdef(Lit, Cond));
    return;
  }
  if (Term.opcode() == Opcode::Switch) {
    const auto &Succs = Term.successors();
    // Only a unique non-default arm pins the value.
    size_t Hits = 0, HitIdx = 0;
    for (size_t I = 0; I != Succs.size(); ++I)
      if (Succs[I] == Succ) {
        ++Hits;
        HitIdx = I;
      }
    if (Hits != 1 || HitIdx == 0)
      return;
    const ir::Value &V = Term.operands()[0];
    Expr Val = Expr::val(ValT::phy(V));
    Expr Lit = Expr::val(ValT::phy(ir::Value::constInt(
        Term.caseValues()[HitIdx - 1], V.type())));
    U.insert(Pred::lessdef(Val, Lit));
    U.insert(Pred::lessdef(Lit, Val));
  }
}

/// CheckInit: is the assertion satisfied by all possible initial states of
/// a function call?
std::optional<std::string> checkInit(const Assertion &A,
                                     const ir::Function &F) {
  auto OkPred = [&](const Pred &P) {
    switch (P.kind()) {
    case Pred::Kind::Unique:
      return !F.isParam(P.uniqueReg());
    case Pred::Kind::Private: {
      const ValT &V = P.a();
      return V.isReg() &&
             (V.T != Tag::Phy || !F.isParam(V.V.regName()));
    }
    case Pred::Kind::Noalias: {
      // Vacuous when either side is an initially-unbound register.
      auto Unbound = [&](const ValT &V) {
        return V.isReg() &&
               (V.T != Tag::Phy || !F.isParam(V.V.regName()));
      };
      return Unbound(P.a()) || Unbound(P.b());
    }
    case Pred::Kind::Lessdef: {
      // Reflexive, non-trapping facts hold anywhere; otherwise the LHS
      // must be an initially-undef register (undef >= anything).
      if (P.lhs() == P.rhs() && !P.lhs().isLoad() &&
          !(P.lhs().kind() == Expr::Kind::Bop && mayTrap(P.lhs().opcode())))
        return true;
      if (P.lhs().kind() != Expr::Kind::Val)
        return false;
      const ValT &L = P.lhs().asVal();
      if (!L.isReg())
        return false;
      if (L.T == Tag::Phy && F.isParam(L.V.regName()))
        return false;
      // The RHS must not trap when evaluated; conservatively require a
      // non-memory, non-division expression.
      if (P.rhs().isLoad() ||
          (P.rhs().kind() == Expr::Kind::Bop && mayTrap(P.rhs().opcode())))
        return false;
      return true;
    }
    }
    return false;
  };
  for (const Pred &P : A.Src)
    if (!OkPred(P))
      return "entry assertion not initially valid (src): " + P.str();
  for (const Pred &P : A.Tgt)
    if (!OkPred(P))
      return "entry assertion not initially valid (tgt): " + P.str();
  return std::nullopt;
}

/// A human-readable account of why Have does not include Goal.
std::string inclusionGap(const Assertion &Have, const Assertion &Goal) {
  for (const Pred &P : Goal.Src)
    if (!Have.Src.count(P))
      return "missing source fact " + P.str();
  for (const Pred &P : Goal.Tgt)
    if (!Have.Tgt.count(P))
      return "missing target fact " + P.str();
  for (const RegT &R : Have.Maydiff)
    if (!Goal.Maydiff.count(R))
      return "register " + R.str() + " may still differ";
  return "inclusion check failed";
}

/// Checks CheckCFG and the line alignment of one function.
std::optional<std::string> checkAlignment(const ir::Function &SrcF,
                                          const ir::Function &TgtF,
                                          const FunctionProof &FP) {
  if (SrcF.RetTy != TgtF.RetTy)
    return "return types differ";
  if (SrcF.Params.size() != TgtF.Params.size())
    return "parameter lists differ";
  for (size_t I = 0; I != SrcF.Params.size(); ++I)
    if (SrcF.Params[I].Name != TgtF.Params[I].Name ||
        SrcF.Params[I].Ty != TgtF.Params[I].Ty)
      return "parameter lists differ";
  if (SrcF.Blocks.size() != TgtF.Blocks.size())
    return "block lists differ";
  for (size_t B = 0; B != SrcF.Blocks.size(); ++B) {
    const BasicBlock &SB = SrcF.Blocks[B];
    const BasicBlock &TB = TgtF.Blocks[B];
    if (SB.Name != TB.Name)
      return "block lists differ";
    auto It = FP.Blocks.find(SB.Name);
    if (It == FP.Blocks.end())
      return "no proof for block '" + SB.Name + "'";
    const BlockProof &BP = It->second;
    // The non-lnop commands on each side must reproduce the real blocks.
    size_t SI = 0, TI = 0;
    for (const LineEntry &L : BP.Lines) {
      if (!L.SrcCmd && !L.TgtCmd)
        return "line with two logical no-ops in '" + SB.Name + "'";
      if (L.SrcCmd) {
        if (SI >= SB.Insts.size() || !(SB.Insts[SI] == *L.SrcCmd))
          return "source alignment mismatch in '" + SB.Name + "'";
        ++SI;
      }
      if (L.TgtCmd) {
        if (TI >= TB.Insts.size() || !(TB.Insts[TI] == *L.TgtCmd))
          return "target alignment mismatch in '" + SB.Name + "'";
        ++TI;
      }
    }
    if (SI != SB.Insts.size() || TI != TB.Insts.size())
      return "alignment does not cover block '" + SB.Name + "'";
    if (BP.Lines.empty() || !BP.Lines.back().SrcCmd ||
        !BP.Lines.back().TgtCmd ||
        !BP.Lines.back().SrcCmd->isTerminator())
      return "terminators must be aligned in '" + SB.Name + "'";
    // Same CFG edges.
    if (SB.terminator().successors() != TB.terminator().successors())
      return "control-flow edges differ in '" + SB.Name + "'";
  }
  return std::nullopt;
}

/// Names of blocks reachable from the entry by following terminator
/// successors. checkAlignment pins the source and target block lists and
/// edges to be identical, so source-reachability equals target-
/// reachability; blocks outside this set are never executed on either
/// side and their Hoare triples and phi edges hold vacuously.
std::set<std::string> reachableBlockNames(const ir::Function &F) {
  std::set<std::string> Seen;
  std::vector<const BasicBlock *> Work{&F.entry()};
  Seen.insert(F.entry().Name);
  while (!Work.empty()) {
    const BasicBlock *B = Work.back();
    Work.pop_back();
    for (const std::string &S : B->terminator().successors())
      if (Seen.insert(S).second)
        if (const BasicBlock *SB = F.getBlock(S))
          Work.push_back(SB);
  }
  return Seen;
}

/// One function's Hoare triples and phi edges. With \p Spec the post
/// computations run specialized (skip-list knobs via SpecScope, moved
/// instead of copied assertions); the checks themselves — checkEquivBeh,
/// inclusion, alignment — are never weakened, so a specialized run can
/// only fail more often than the general one, never accept more
/// (checker/PlanSpec.h).
FunctionResult validateFunction(const ir::Function &SrcF,
                                const ir::Function &TgtF,
                                const FunctionProof &FP,
                                const PlanSpec *Spec = nullptr) {
  FunctionResult Res;
  auto Fail = [&](const std::string &Where, const std::string &Reason) {
    Res.Status = ValidationStatus::Failed;
    Res.Where = Where;
    Res.Reason = Reason;
    return Res;
  };

  std::string Why;
  if (usesUnsupportedFeatures(SrcF, Why) ||
      usesUnsupportedFeatures(TgtF, Why)) {
    Res.Status = ValidationStatus::NotSupported;
    Res.Reason = Why;
    return Res;
  }
  if (FP.NotSupported) {
    Res.Status = ValidationStatus::NotSupported;
    Res.Reason = FP.NotSupportedReason;
    return Res;
  }

  if (auto Err = checkAlignment(SrcF, TgtF, FP))
    return Fail("CheckCFG", *Err);

  const BlockProof &EntryBP = FP.Blocks.at(SrcF.entry().Name);
  if (auto Err = checkInit(EntryBP.AtEntry, SrcF))
    return Fail(SrcF.entry().Name + ":entry", *Err);

  std::set<std::string> Reachable = reachableBlockNames(SrcF);
  for (const BasicBlock &SB : SrcF.Blocks) {
    // Unreachable blocks are alignment-checked above but carry no
    // behavior to refine: skip their triples and outgoing phi edges
    // (demanding facts along a never-taken edge would falsely reject
    // correct translations of functions with dead code).
    if (!Reachable.count(SB.Name))
      continue;
    const BlockProof &BP = FP.Blocks.at(SB.Name);
    Assertion A = BP.AtEntry;
    for (size_t I = 0; I != BP.Lines.size(); ++I) {
      const LineEntry &L = BP.Lines[I];
      std::string Where = SB.Name + ":" + std::to_string(I);
      CmdPair Pair{L.SrcCmd, L.TgtCmd};
      if (auto Err = checkEquivBeh(A, Pair))
        return Fail(Where, *Err);
      // Specialized: A is reassigned to L.After right below, so the post
      // computation may consume it instead of copying two pred sets.
      Assertion Post = Spec ? calcPostCmd(std::move(A), Pair)
                            : calcPostCmd(A, Pair);
      for (const Infrule &R : L.Rules)
        applyInfrule(R, Post); // a failed rule surfaces as an inclusion gap
      // Specialized fast path: when the computed post IS the annotated
      // After, inclusion holds reflexively and carrying Post forward by
      // move is value-identical to the `A = L.After` copy below — the
      // one exact (not merely fallback-safe) plan knob. A failed probe
      // costs one short-circuiting set comparison; the plan builder only
      // enables this where the profiled hit rate pays for that.
      if (Spec && Spec->ReuseEqualPostCmd && Post == L.After) {
        A = std::move(Post);
        continue;
      }
      if (!Spec)
        if (detail::PostcondProfile *Prof = detail::activeProfile())
          ++(Post == L.After ? Prof->PostEqualCmd : Prof->PostUnequalCmd);
      if (!Post.includes(L.After)) {
        runAutomation(FP.AutoFuncs, Post, L.After);
        if (!Post.includes(L.After))
          return Fail(Where, inclusionGap(Post, L.After));
      }
      A = L.After;
    }

    // Phi edges to every successor.
    const Instruction &SrcTerm = SB.terminator();
    const BasicBlock *TB = TgtF.getBlock(SB.Name);
    const Instruction &TgtTerm = TB->terminator();
    std::vector<std::string> Succs;
    for (const std::string &S : SrcTerm.successors())
      if (std::find(Succs.begin(), Succs.end(), S) == Succs.end())
        Succs.push_back(S);
    for (size_t SI = 0; SI != Succs.size(); ++SI) {
      const std::string &Succ = Succs[SI];
      const BasicBlock *SrcSucc = SrcF.getBlock(Succ);
      const BasicBlock *TgtSucc = TgtF.getBlock(Succ);
      if (!SrcSucc || !TgtSucc)
        return Fail(SB.Name, "edge to unknown block '" + Succ + "'");
      auto SuccIt = FP.Blocks.find(Succ);
      if (SuccIt == FP.Blocks.end())
        return Fail(SB.Name, "no proof for block '" + Succ + "'");

      // The line loop leaves A holding exactly the last line's After (it
      // is assigned that verbatim, whether by copy or by the equal-post
      // move), so the final edge may consume it instead of re-copying
      // the annotation — value-identical, like the calcPost moves.
      Assertion AtEnd = Spec && SI + 1 == Succs.size()
                            ? std::move(A)
                            : BP.Lines.back().After;
      addBranchFacts(AtEnd.Src, SrcTerm, Succ);
      addBranchFacts(AtEnd.Tgt, TgtTerm, Succ);
      Assertion Post =
          Spec ? calcPostPhi(std::move(AtEnd), SrcSucc->Phis, TgtSucc->Phis,
                             SB.Name)
               : calcPostPhi(AtEnd, SrcSucc->Phis, TgtSucc->Phis, SB.Name);
      auto RulesIt = SuccIt->second.PhiRules.find(SB.Name);
      if (RulesIt != SuccIt->second.PhiRules.end())
        for (const Infrule &R : RulesIt->second)
          applyInfrule(R, Post);
      const Assertion &Goal = SuccIt->second.AtEntry;
      // Same equality-implies-inclusion shortcut as the line loop; at an
      // edge there is no assertion to carry, so a hit just skips the
      // inclusion lookups.
      if (Spec && Spec->ReuseEqualPostPhi && Post == Goal)
        continue;
      if (!Spec)
        if (detail::PostcondProfile *Prof = detail::activeProfile())
          ++(Post == Goal ? Prof->PostEqualPhi : Prof->PostUnequalPhi);
      if (!Post.includes(Goal)) {
        runAutomation(FP.AutoFuncs, Post, Goal);
        if (!Post.includes(Goal))
          return Fail(SB.Name + "->" + Succ, inclusionGap(Post, Goal));
      }
    }
  }
  return Res;
}

} // namespace

ModuleResult crellvm::checker::validate(const ir::Module &Src,
                                        const ir::Module &Tgt,
                                        const proofgen::Proof &P) {
  ModuleResult Out;
  for (const ir::Function &SrcF : Src.Funcs) {
    FunctionResult Res;
    const ir::Function *TgtF = Tgt.getFunction(SrcF.Name);
    auto It = P.Functions.find(SrcF.Name);
    if (!TgtF) {
      Res.Status = ValidationStatus::Failed;
      Res.Reason = "function missing from the target module";
    } else if (It == P.Functions.end()) {
      Res.Status = ValidationStatus::Failed;
      Res.Reason = "no proof for this function";
    } else {
      Res = validateFunction(SrcF, *TgtF, It->second);
    }
    Out.Functions[SrcF.Name] = Res;
  }
  return Out;
}

bool crellvm::checker::planGuardHolds(const FunctionProof &FP,
                                      const PlanSpec &Spec) {
  if (Spec.AllowedRules.size() != erhl::NumInfruleKinds)
    return false;
  auto Allowed = [&](const Infrule &R) {
    auto K = static_cast<uint16_t>(R.K);
    return K < Spec.AllowedRules.size() && Spec.AllowedRules[K];
  };
  for (const std::string &Auto : FP.AutoFuncs)
    if (!Spec.AllowedAutos.count(Auto))
      return false;
  for (const auto &BKV : FP.Blocks) {
    for (const LineEntry &L : BKV.second.Lines)
      for (const Infrule &R : L.Rules)
        if (!Allowed(R))
          return false;
    for (const auto &EKV : BKV.second.PhiRules)
      for (const Infrule &R : EKV.second)
        if (!Allowed(R))
          return false;
  }
  return true;
}

ModuleResult crellvm::checker::validateWithPlan(const ir::Module &Src,
                                                const ir::Module &Tgt,
                                                const proofgen::Proof &P,
                                                const PlanSpec &Spec,
                                                PlanRunStats *Stats) {
  ModuleResult Out;
  for (const ir::Function &SrcF : Src.Funcs) {
    FunctionResult Res;
    const ir::Function *TgtF = Tgt.getFunction(SrcF.Name);
    auto It = P.Functions.find(SrcF.Name);
    if (!TgtF) {
      // The missing-target / missing-proof verdicts involve no plan knob
      // at all; they are byte-for-byte the general checker's code path.
      Res.Status = ValidationStatus::Failed;
      Res.Reason = "function missing from the target module";
    } else if (It == P.Functions.end()) {
      Res.Status = ValidationStatus::Failed;
      Res.Reason = "no proof for this function";
    } else if (!planGuardHolds(It->second, Spec)) {
      Res = validateFunction(SrcF, *TgtF, It->second);
      if (Stats)
        ++Stats->Fallbacks;
    } else {
      {
        detail::SpecScope Scope(Spec);
        Res = validateFunction(SrcF, *TgtF, It->second, &Spec);
      }
      if (Res.Status == ValidationStatus::Failed) {
        // Hard fallback: the specialized path may never be the one to say
        // Failed — its weaker intermediate assertions can produce spurious
        // rejections, so the general checker re-decides from scratch.
        Res = validateFunction(SrcF, *TgtF, It->second);
        if (Stats)
          ++Stats->Fallbacks;
      } else if (Stats) {
        ++Stats->Specialized;
      }
    }
    Out.Functions[SrcF.Name] = Res;
  }
  return Out;
}
