//===- checker/PlanSpec.h - Specialized-checker execution knobs -*- C++ -*-===//
///
/// \file
/// The execution knobs of a per-preset checker plan (see src/plan/ for the
/// builder, cache, and runtime that produce and manage them). A PlanSpec
/// is *untrusted dispatch state*: it may only tell the checker to skip
/// assertion-strengthening work (maydiff reductions, fixpoint rounds), or
/// to refuse a proof outright — never to skip a check. Skipping a
/// strengthening step yields a *weaker* intermediate assertion, and every
/// checker judgment (includes, checkEquivBeh, relatedValues) is monotone
/// in assertion strength, so a specialized run can only flip Validated to
/// Failed, never the reverse. validateWithPlan exploits that one-way
/// street: specialized Validated/NotSupported verdicts are emitted
/// directly, and any specialized failure triggers a hard fallback to the
/// unchanged general checker, which remains the sole arbiter of Failed.
/// A wrong or stale plan therefore costs throughput, never soundness —
/// the TCB argument of DESIGN.md §17.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CHECKER_PLANSPEC_H
#define CRELLVM_CHECKER_PLANSPEC_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace crellvm {
namespace checker {

/// Per-(pass, BugConfig) specialization knobs, derived by profiling the
/// general checker over seeded feedstock (plan::PlanBuilder).
struct PlanSpec {
  /// Admissible inference rules, indexed by erhl::InfruleKind. A proof
  /// requesting any rule outside this set fails the applicability guard
  /// and the whole function falls back to the general checker — the
  /// feedstock evidently did not cover its shape, so none of the knobs
  /// below can be trusted for it. Must be exactly NumInfruleKinds long.
  std::vector<uint8_t> AllowedRules;
  /// Automation functions the profiled proofs enabled; a proof asking for
  /// any other automation fails the guard.
  std::set<std::string> AllowedAutos;
  /// Skip the non-physical maydiff sweep in per-line post computation
  /// (calcPostCmd). Safe to enable only when the profile saw zero
  /// line-level sweep removals for this preset: line-level assertions
  /// come from the proof's stated `After`s, which proof generation has
  /// already reduced, so the sweep is usually a no-op there. Phi-edge
  /// sweeps (which do remove Old leftovers) are never skipped.
  bool SkipNonphysSweepCmd = false;
  /// Skip the load-bridge search inside the maydiff fixpoint; enabled
  /// when the profile saw zero load-bridge removals (presets whose pass
  /// never forwards loads).
  bool SkipLoadBridge = false;
  /// Cap on *productive* maydiff fixpoint rounds, from the profiled
  /// maximum. The general checker runs one extra confirming round; the
  /// specialized path stops at the cap, which is result-identical
  /// whenever the workload behaves like the feedstock (and only weaker —
  /// hence fallback-safe — when it does not).
  unsigned MaydiffRoundCap = 8;
  /// When the per-line computed postcondition compares *equal* to the
  /// proof's annotated After, skip the inclusion check (equality implies
  /// it reflexively) and carry the computed post forward by move instead
  /// of copying the annotation — same value, zero allocations. Unlike the
  /// skip knobs this is exact, not merely fallback-safe: the carried
  /// assertion is identical either way, so verdicts cannot change. It is
  /// still profile-gated because a failed equality probe is pure
  /// overhead; the builder enables it only when the feedstock's equality
  /// hit rate pays for the misses.
  bool ReuseEqualPostCmd = false;
  /// Phi-edge sibling of ReuseEqualPostCmd: when the computed phi-edge
  /// postcondition compares equal to the successor's entry assertion,
  /// skip the inclusion check (equality implies it reflexively). There
  /// is nothing to carry forward at an edge, so the only saving is the
  /// per-pred set lookups of includes() — but the miss cost is one
  /// short-circuiting comparison, so a modest hit rate already pays.
  /// Exact for the same reason as ReuseEqualPostCmd.
  bool ReuseEqualPostPhi = false;
  /// Restrict the Cmd-context maydiff fixpoint to the registers the
  /// current line just defined, instead of scanning every maydiff
  /// register against every source pred. In SSA-shaped feedstock a
  /// line-level reduction only ever fires for the just-defined register
  /// (older maydiff entries were already reduced — or proven
  /// irreducible — when their defining lines were processed); enabled
  /// only when the profile saw zero Cmd-context fixpoint removals of
  /// any *other* register. Fewer candidates can only leave the maydiff
  /// set larger — weaker, hence fallback-safe.
  bool MaydiffCandidatesDefinedOnlyCmd = false;
  /// Phi-context sibling of the above: restrict the phi-edge fixpoint to
  /// the phi-defined result registers. The same SSA argument applies —
  /// older physical maydiff entries were reduced (or proven irreducible)
  /// where they were defined — except that phi edges also gain branch
  /// facts, which can in principle unlock an older register; enabled
  /// only when the profile saw zero such removals. Fallback-safe like
  /// the Cmd knob.
  bool MaydiffCandidatesDefinedOnlyPhi = false;
  /// In relatedValues, test the two seed expressions against each other
  /// before building the lessdef closures — the hit case (identical
  /// maydiff-free operands, i.e. a value the pass did not touch) answers
  /// in O(1) what the closures answer in O(|preds|). Exact like
  /// ReuseEqualPostCmd: a hit is precisely a pair the closure search
  /// would also accept (both seeds are members of their own closures),
  /// and a miss falls through to the unchanged full search. Profile-
  /// gated on the feedstock's probe hit rate.
  bool RelatedProbeFirst = false;
};

namespace detail {

/// Profiling counters reduceMaydiff fills during plan building (see
/// ProfileScope). Context-split so each PlanSpec knob has exactly the
/// evidence it needs.
struct PostcondProfile {
  uint64_t NonphysRemovalsCmd = 0; ///< line-level sweep removals
  uint64_t NonphysRemovalsPhi = 0; ///< phi-edge sweep removals
  uint64_t LoadBridgeRemovals = 0; ///< fixpoint removals via load bridge
  unsigned MaxRounds = 0;          ///< max productive fixpoint rounds
  uint64_t PostEqualCmd = 0;   ///< lines where computed post == annotated After
  uint64_t PostUnequalCmd = 0; ///< lines where they differ (automation etc.)
  uint64_t PostEqualPhi = 0;   ///< phi edges where computed post == entry goal
  uint64_t PostUnequalPhi = 0; ///< phi edges where they differ
  /// Cmd-context fixpoint removals of registers the line did not define.
  uint64_t FixpointNondefRemovalsCmd = 0;
  /// Phi-context fixpoint removals of registers no phi of the edge defines.
  uint64_t FixpointNondefRemovalsPhi = 0;
  uint64_t RelatedProbeHits = 0;   ///< relatedValues seed-pair probe hits
  uint64_t RelatedProbeMisses = 0; ///< calls that needed the closures
};

/// The profile sink installed by the innermost live ProfileScope on this
/// thread, or nullptr outside plan building. Lets the validator loop
/// (checker/Validator.cpp) feed line-level evidence into the same profile
/// the post computation fills.
PostcondProfile *activeProfile();

/// Installs \p Spec as the active specialization for the current thread
/// for the scope's lifetime. Only calcPostCmd/calcPostPhi consult it;
/// the public reduceMaydiff entry (used by automation) always runs at
/// full strength so a failed inclusion gets the checker's best effort
/// before the fallback decision.
class SpecScope {
public:
  explicit SpecScope(const PlanSpec &Spec);
  ~SpecScope();
  SpecScope(const SpecScope &) = delete;
  SpecScope &operator=(const SpecScope &) = delete;

private:
  const PlanSpec *Prev;
};

/// Routes reduceMaydiff instrumentation into \p Profile for the scope's
/// lifetime (current thread only; PlanBuilder runs single-threaded).
class ProfileScope {
public:
  explicit ProfileScope(PostcondProfile &Profile);
  ~ProfileScope();
  ProfileScope(const ProfileScope &) = delete;
  ProfileScope &operator=(const ProfileScope &) = delete;

private:
  PostcondProfile *Prev;
};

} // namespace detail
} // namespace checker
} // namespace crellvm

#endif // CRELLVM_CHECKER_PLANSPEC_H
