//===- checker/Postcond.h - Post-assertion computation ----------*- C++ -*-===//
///
/// \file
/// The strongest-post computation of the ERHL proof checker (paper
/// Appendix H): CheckEquivBeh (Algorithm 4), CalcPostAssn for aligned
/// commands (Algorithm 5: Prune, AddMemoryPreds, AddLessdefPreds,
/// ReduceMaydiff) and for phi edges (§4, with the Old-register rotation),
/// plus the value-relation `x_src ~_P y_tgt` used to check that observable
/// behavior is equivalent.
///
/// Everything here is part of the trusted computing base; each function is
/// exercised by the unit suite and by the end-to-end differential tests.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CHECKER_POSTCOND_H
#define CRELLVM_CHECKER_POSTCOND_H

#include "erhl/Infrule.h"
#include "ir/Module.h"

#include <optional>

namespace crellvm {
namespace checker {

/// An aligned command pair; std::nullopt is a logical no-op.
struct CmdPair {
  std::optional<ir::Instruction> Src;
  std::optional<ir::Instruction> Tgt;
};

/// Is target value \p VT related to source value \p VS under \p A — i.e.
/// does `VS_src ~_A VT_tgt` hold syntactically? Related values evaluate to
/// refining values in every state pair satisfying A. The search follows
/// lessdef chains on both sides (bounded) through a maydiff-free middle
/// value.
bool relatedValues(const erhl::Assertion &A, const ir::Value &VS,
                   const ir::Value &VT);

/// CheckEquivBeh (Algorithm 4): do the aligned commands produce the same
/// observable events (and does the target not introduce traps) in every
/// state pair satisfying \p A? Returns std::nullopt when OK, otherwise a
/// diagnostic.
std::optional<std::string> checkEquivBeh(const erhl::Assertion &A,
                                         const CmdPair &C);

/// CalcPostAssn for one aligned command line (Algorithm 5). The rvalue
/// overload consumes \p A instead of copying it — the specialized plan
/// path (checker/PlanSpec.h) uses it because the per-line loop reassigns
/// the assertion right after; both overloads compute identical results.
erhl::Assertion calcPostCmd(const erhl::Assertion &A, const CmdPair &C);
erhl::Assertion calcPostCmd(erhl::Assertion &&A, const CmdPair &C);

/// CalcPostAssn for a phi edge: all source phis and target phis of the
/// destination block execute simultaneously for incoming block \p Pred.
erhl::Assertion calcPostPhi(const erhl::Assertion &A,
                            const std::vector<ir::Phi> &SrcPhis,
                            const std::vector<ir::Phi> &TgtPhis,
                            const std::string &Pred);
erhl::Assertion calcPostPhi(erhl::Assertion &&A,
                            const std::vector<ir::Phi> &SrcPhis,
                            const std::vector<ir::Phi> &TgtPhis,
                            const std::string &Pred);

/// The eager maydiff reduction run after every post computation: removes
/// registers whose source and target sides are syntactically forced to
/// agree.
void reduceMaydiff(erhl::Assertion &A);

/// May a Load expression mediate the two sides of a maydiff reduction?
/// Only loads through public (non-Priv/Uniq) pointers qualify.
bool loadMiddleAllowed(const erhl::Assertion &A, const erhl::Expr &E);

} // namespace checker
} // namespace crellvm

#endif // CRELLVM_CHECKER_POSTCOND_H
