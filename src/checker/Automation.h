//===- checker/Automation.h - auto-style rule search ------------*- C++ -*-===//
///
/// \file
/// Automation functions (paper §2.3): when it remains to prove that the
/// computed assertion implies the proof's assertion, the enabled
/// automation functions search for a sequence of inference rules that
/// closes the gap — like Coq's `auto` tactic. Automation is *not* part of
/// the TCB: everything it does goes through applyInfrule, which checks
/// the premises; automation merely chooses which rules to try.
///
/// Installed automation functions:
///  - "transitivity": derives missing lessdef facts by chaining existing
///    ones (Algorithm 2 line A32);
///  - "reduce_maydiff": discharges maydiff-set obligations via
///    reduce_maydiff_lessdef / reduce_maydiff_non_physical (Algorithm 1
///    line A9);
///  - "gvn_pre": the richer search of Appendix C that also uses
///    commutativity and substitution steps.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CHECKER_AUTOMATION_H
#define CRELLVM_CHECKER_AUTOMATION_H

#include "erhl/Infrule.h"

#include <set>
#include <string>

namespace crellvm {
namespace checker {

/// Tries to strengthen \p Have so that it includes \p Goal, using the
/// automation functions named in \p Autos. Applied rules are appended to
/// \p AppliedOut when non-null (for diagnostics and the ablation bench).
void runAutomation(const std::set<std::string> &Autos,
                   erhl::Assertion &Have, const erhl::Assertion &Goal,
                   std::vector<erhl::Infrule> *AppliedOut = nullptr);

/// Derives the single fact `From >= To` on side \p S of \p Have by
/// bounded search (transitivity chains; with \p GvnMode also
/// commutativity and substitution steps). Returns true when the fact is
/// now present in \p Have.
bool deriveLessdef(erhl::Assertion &Have, erhl::Side S,
                   const erhl::Expr &From, const erhl::Expr &To,
                   bool GvnMode,
                   std::vector<erhl::Infrule> *AppliedOut = nullptr);

} // namespace checker
} // namespace crellvm

#endif // CRELLVM_CHECKER_AUTOMATION_H
