//===- checker/Version.cpp --------------------------------------*- C++ -*-===//

#include "checker/Version.h"

#include "erhl/Infrule.h"

std::string crellvm::checker::versionFingerprint() {
  return "crellvm-checker/" + std::to_string(CheckerSemanticsVersion) +
         ";weakened-disjoint-or=" +
         (erhl::weakenedDisjointOrCheck() ? "1" : "0");
}
