//===- checker/Version.cpp --------------------------------------*- C++ -*-===//

#include "checker/Version.h"

#include "erhl/Infrule.h"

std::string crellvm::checker::versionFingerprint() {
  return "crellvm-checker/" + std::to_string(CheckerSemanticsVersion) +
         ";weakened-disjoint-or=" +
         (erhl::weakenedDisjointOrCheck() ? "1" : "0");
}

#ifndef CRELLVM_BUILD_TYPE
#define CRELLVM_BUILD_TYPE "unknown"
#endif

std::string crellvm::checker::versionLine(const std::string &Tool) {
  return Tool + " checker-semantics-version " +
         std::to_string(CheckerSemanticsVersion) + " plan-schema-version " +
         std::to_string(PlanSchemaVersion) + " build " CRELLVM_BUILD_TYPE;
}
