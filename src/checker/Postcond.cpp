//===- checker/Postcond.cpp -------------------------------------*- C++ -*-===//

#include "checker/Postcond.h"

#include "checker/PlanSpec.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace crellvm;
using namespace crellvm::checker;
using namespace crellvm::erhl;
using namespace crellvm::ir;

namespace {

/// Thread-local specialization state (checker/PlanSpec.h). Null in the
/// general checker — the knobs then have no effect and the functions
/// below behave exactly as before plans existed.
thread_local const PlanSpec *ActiveSpec = nullptr;
thread_local checker::detail::PostcondProfile *ActiveProfile = nullptr;

/// Which caller is reducing: knobs and profile attribution differ between
/// line-level posts, phi-edge posts, and everything else (automation's
/// reduce_maydiff always runs at full strength).
enum class ReduceCtx { General, Cmd, Phi };

} // namespace

checker::detail::SpecScope::SpecScope(const PlanSpec &Spec)
    : Prev(ActiveSpec) {
  ActiveSpec = &Spec;
}
checker::detail::SpecScope::~SpecScope() { ActiveSpec = Prev; }

checker::detail::ProfileScope::ProfileScope(PostcondProfile &Profile)
    : Prev(ActiveProfile) {
  ActiveProfile = &Profile;
}
checker::detail::ProfileScope::~ProfileScope() { ActiveProfile = Prev; }

checker::detail::PostcondProfile *checker::detail::activeProfile() {
  return ActiveProfile;
}

namespace {

ValT phy(const ir::Value &V) { return ValT::phy(V); }

/// The RHS expression of a side-effect-free instruction (loads included:
/// they are side-effect-free modulo UB). std::nullopt for instructions
/// with no value expression.
std::optional<Expr> exprOfInstr(const Instruction &I) {
  const auto &Ops = I.operands();
  if (isBinaryOp(I.opcode()))
    return Expr::bop(I.opcode(), I.type(), phy(Ops[0]), phy(Ops[1]));
  if (isCast(I.opcode()))
    return Expr::cast(I.opcode(), I.type(), phy(Ops[0]));
  switch (I.opcode()) {
  case Opcode::ICmp:
    return Expr::icmp(I.icmpPred(), phy(Ops[0]), phy(Ops[1]));
  case Opcode::Select:
    return Expr::select(I.type(), phy(Ops[0]), phy(Ops[1]), phy(Ops[2]));
  case Opcode::Gep:
    return Expr::gep(I.isInbounds(), phy(Ops[0]), phy(Ops[1]));
  case Opcode::Load:
    return Expr::load(I.type(), phy(Ops[0]));
  default:
    return std::nullopt;
  }
}

bool predMentions(const Pred &P, const RegT &R) {
  for (const RegT &X : P.regs())
    if (X == R)
      return true;
  return false;
}

void erasePredsMentioning(Unary &U, const RegT &R) {
  for (auto It = U.begin(); It != U.end();)
    It = predMentions(*It, R) ? U.erase(It) : ++It;
}

/// Are the addresses \p P and \p Q provably disjoint under \p U?
bool provablyDisjoint(const Unary &U, const ValT &P, const ValT &Q) {
  if (P == Q)
    return false;
  if (U.count(Pred::noalias(P, Q)))
    return true;
  // Uniq(x) isolates x's address from every other value (paper §3.2).
  if (P.isReg() && P.T == Tag::Phy && U.count(Pred::unique(P.V.regName())))
    return true;
  if (Q.isReg() && Q.T == Tag::Phy && U.count(Pred::unique(Q.V.regName())))
    return true;
  return false;
}

/// The load pointers occurring in a predicate (at most two).
std::vector<ValT> loadPointersOf(const Pred &P) {
  std::vector<ValT> Out;
  if (P.kind() != Pred::Kind::Lessdef)
    return Out;
  if (P.lhs().isLoad())
    Out.push_back(P.lhs().operands()[0]);
  if (P.rhs().isLoad())
    Out.push_back(P.rhs().operands()[0]);
  return Out;
}

/// Appendix H PruneU: invalidates predicates the command may falsify.
void pruneU(Unary &U, const std::optional<Instruction> &Cmd) {
  if (!Cmd)
    return;
  const Instruction &I = *Cmd;

  // A (re)defined register kills every predicate about it.
  if (auto R = I.result())
    erasePredsMentioning(U, RegT{*R, Tag::Phy});

  // Memory effects kill facts about possibly-overlapping loads.
  if (I.opcode() == Opcode::Store) {
    ValT P = phy(I.operands()[1]);
    Unary Snapshot = U;
    for (auto It = U.begin(); It != U.end();) {
      bool Kill = false;
      for (const ValT &Q : loadPointersOf(*It))
        if (!provablyDisjoint(Snapshot, P, Q))
          Kill = true;
      It = Kill ? U.erase(It) : ++It;
    }
  } else if (I.opcode() == Opcode::Call) {
    // A call may write any public memory; only private/unique locations
    // survive (paper §3.3 "Alias Checking").
    Unary Snapshot = U;
    for (auto It = U.begin(); It != U.end();) {
      bool Kill = false;
      for (const ValT &Q : loadPointersOf(*It)) {
        bool Protected =
            Snapshot.count(Pred::priv(Q)) ||
            (Q.isReg() && Q.T == Tag::Phy &&
             Snapshot.count(Pred::unique(Q.V.regName())));
        if (!Protected)
          Kill = true;
      }
      It = Kill ? U.erase(It) : ++It;
    }
  }

  // Uniq is killed when the pointer leaks: copied, stored as a value,
  // offset by gep, passed to a call, or returned. Using it as a load or
  // store address, comparing it, or branching are fine.
  auto LeakOperand = [&](size_t Idx) {
    switch (I.opcode()) {
    case Opcode::Load:
      return false; // the single operand is the address
    case Opcode::Store:
      return Idx == 0; // the stored value leaks, the address does not
    case Opcode::ICmp:
    case Opcode::CondBr:
    case Opcode::Switch:
      return false;
    default:
      return true;
    }
  };
  for (size_t Idx = 0; Idx != I.operands().size(); ++Idx) {
    const ir::Value &V = I.operands()[Idx];
    if (V.isReg() && LeakOperand(Idx))
      U.erase(Pred::unique(V.regName()));
  }
}

/// Appendix H AddLessdefPreds: records what the executed command
/// guarantees.
void addLessdefPreds(Unary &U, const std::optional<Instruction> &Cmd) {
  if (!Cmd)
    return;
  const Instruction &I = *Cmd;
  if (auto R = I.result()) {
    if (auto E = exprOfInstr(I)) {
      Expr RV = Expr::val(ValT::phy(ir::Value::reg(*R, I.type())));
      U.insert(Pred::lessdef(RV, *E));
      U.insert(Pred::lessdef(*E, RV));
      return;
    }
  }
  if (I.opcode() == Opcode::Store) {
    Expr Cell = Expr::load(I.type(), phy(I.operands()[1]));
    Expr Val = Expr::val(phy(I.operands()[0]));
    U.insert(Pred::lessdef(Cell, Val));
    U.insert(Pred::lessdef(Val, Cell));
  } else if (I.opcode() == Opcode::Alloca) {
    // Fresh cells contain undef (paper §3.3).
    Expr Cell = Expr::load(
        I.type(), ValT::phy(ir::Value::reg(*I.result(), ir::Type::ptrTy())));
    Expr Undef = Expr::val(ValT::phy(ir::Value::undef(I.type())));
    U.insert(Pred::lessdef(Cell, Undef));
    U.insert(Pred::lessdef(Undef, Cell));
  }
}

/// True when every register of \p E is outside the maydiff set.
bool maydiffFree(const Expr &E, const std::set<RegT> &M) {
  for (const RegT &R : E.regs())
    if (M.count(R))
      return false;
  return true;
}

} // namespace

bool crellvm::checker::loadMiddleAllowed(const Assertion &A, const Expr &E) {
  if (!E.isLoad())
    return true;
  // A load may mediate the two sides only when it reads *public* memory:
  // the assertion semantics relates the public memory parts by injection,
  // so identical loads through a maydiff-free public pointer yield
  // related values. Private locations (Priv/Uniq) have no counterpart.
  const ValT &Ptr = E.operands()[0];
  if (Ptr.isReg()) {
    if (Ptr.T == Tag::Phy &&
        (A.Src.count(Pred::unique(Ptr.V.regName())) ||
         A.Tgt.count(Pred::unique(Ptr.V.regName()))))
      return false;
    if (A.Src.count(Pred::priv(Ptr)) || A.Tgt.count(Pred::priv(Ptr)))
      return false;
  }
  return true;
}

namespace {

/// \p Defined, when non-null, lists the registers the current step
/// defines (the line's results in Cmd context, the phi results in Phi
/// context) — the fixpoint candidates the specialized path may restrict
/// itself to, and the reference set the profile measures every removal
/// against.
void reduceMaydiffCtx(Assertion &A, ReduceCtx Ctx,
                      const std::vector<RegT> *Defined = nullptr) {
  // The knobs apply only inside specialized post computations; the
  // automation entry (ReduceCtx::General) always runs at full strength.
  const PlanSpec *Spec = Ctx == ReduceCtx::General ? nullptr : ActiveSpec;
  checker::detail::PostcondProfile *Prof = ActiveProfile;

  // Ghost and old registers that no predicate mentions are existentially
  // quantified and unconstrained; they can always be chosen equal on both
  // sides (reduce_maydiff_non_physical applied eagerly).
  if (!(Spec && Ctx == ReduceCtx::Cmd && Spec->SkipNonphysSweepCmd)) {
    if (Spec) {
      // Candidate-directed sweep: for each of the few non-physical
      // maydiff entries, scan the preds for a mention and early-exit.
      // Exact — both strategies erase precisely the non-physical
      // registers no pred mentions — but this one skips materializing
      // every register of every pred into a lookup set (a string copy
      // apiece), which is the sweep's entire cost when the candidate
      // list is short. The general checker keeps the set-based sweep:
      // it is the reference implementation the fallback re-runs.
      for (auto It = A.Maydiff.begin(); It != A.Maydiff.end();) {
        bool Mentioned = It->T == Tag::Phy;
        if (!Mentioned)
          for (const Pred &P : A.Src)
            if (P.mentions(*It)) {
              Mentioned = true;
              break;
            }
        if (!Mentioned)
          for (const Pred &P : A.Tgt)
            if (P.mentions(*It)) {
              Mentioned = true;
              break;
            }
        It = Mentioned ? std::next(It) : A.Maydiff.erase(It);
      }
    } else {
      std::set<RegT> Used;
      for (const Pred &P : A.Src)
        for (const RegT &R : P.regs())
          Used.insert(R);
      for (const Pred &P : A.Tgt)
        for (const RegT &R : P.regs())
          Used.insert(R);
      for (auto It = A.Maydiff.begin(); It != A.Maydiff.end();) {
        if (It->T != Tag::Phy && !Used.count(*It)) {
          It = A.Maydiff.erase(It);
          if (Prof) {
            if (Ctx == ReduceCtx::Phi)
              ++Prof->NonphysRemovalsPhi;
            else
              ++Prof->NonphysRemovalsCmd;
          }
        } else {
          ++It;
        }
      }
    }
  }

  // Iterate to a fixpoint: removing one register can unlock another. The
  // specialized path caps the rounds at the profiled maximum (a weaker
  // result at worst — see PlanSpec::MaydiffRoundCap).
  unsigned Cap = 8;
  if (Spec)
    Cap = std::min(Cap, Spec->MaydiffRoundCap);
  const bool DefinedOnly =
      Spec && Defined &&
      (Ctx == ReduceCtx::Cmd ? Spec->MaydiffCandidatesDefinedOnlyCmd
                             : Spec->MaydiffCandidatesDefinedOnlyPhi);
  bool Changed = true;
  unsigned Rounds = 0, Productive = 0;
  while (Changed && Rounds++ < Cap) {
    Changed = false;
    std::vector<RegT> Candidates;
    if (DefinedOnly) {
      for (const RegT &D : *Defined)
        if (A.Maydiff.count(D))
          Candidates.push_back(D);
    } else {
      Candidates.assign(A.Maydiff.begin(), A.Maydiff.end());
    }
    for (const RegT &R : Candidates) {
      if (R.T != Tag::Phy)
        continue;
      // Find e with r >= e in Src and e >= r in Tgt, e maydiff-free.
      bool Removable = false;
      Expr RV = Expr::val(
          ValT{ir::Value::reg(R.Name, ir::Type::voidTy()), R.T});
      for (const Pred &P : A.Src) {
        if (P.kind() != Pred::Kind::Lessdef || P.lhs().kind() != Expr::Kind::Val)
          continue;
        const ValT &L = P.lhs().asVal();
        if (!L.isReg() || L.regT() != R)
          continue;
        const Expr &E = P.rhs();
        if (!loadMiddleAllowed(A, E))
          continue;
        // Look for the mirrored fact on the target side. Types of the
        // register value must match, so search structurally.
        Expr LV = P.lhs();
        if (maydiffFree(E, A.Maydiff) &&
            A.Tgt.count(Pred::lessdef(E, LV))) {
          Removable = true;
          break;
        }
        // Loads may also bridge through *related* public pointers: the
        // sides read the same public cell when a shared maydiff-free
        // middle value links the two addresses (src PA >= m, tgt
        // m >= PB). A trapping source load leaves no state.
        if (E.isLoad() && !(Spec && Spec->SkipLoadBridge)) {
          const ValT &PA = E.operands()[0];
          for (const Pred &Q : A.Tgt) {
            if (Q.kind() != Pred::Kind::Lessdef || !Q.lhs().isLoad() ||
                Q.rhs() != LV)
              continue;
            // The addresses themselves may be in the maydiff set; the
            // shared middle value below is what relates them.
            if (!loadMiddleAllowed(A, Q.lhs()))
              continue;
            const ValT &PB = Q.lhs().operands()[0];
            for (const Pred &Link : A.Src) {
              if (Link.kind() != Pred::Kind::Lessdef ||
                  Link.lhs() != Expr::val(PA) ||
                  Link.rhs().kind() != Expr::Kind::Val)
                continue;
              const ValT &M = Link.rhs().asVal();
              if (M.isReg() && A.Maydiff.count(M.regT()))
                continue;
              if (M == PB || A.Tgt.count(Pred::lessdef(Expr::val(M),
                                                       Expr::val(PB)))) {
                Removable = true;
                if (Prof)
                  ++Prof->LoadBridgeRemovals;
                break;
              }
            }
            if (Removable)
              break;
          }
          if (Removable)
            break;
        }
      }
      if (Removable) {
        A.Maydiff.erase(R);
        Changed = true;
        if (Prof && Defined &&
            std::find(Defined->begin(), Defined->end(), R) == Defined->end()) {
          if (Ctx == ReduceCtx::Phi)
            ++Prof->FixpointNondefRemovalsPhi;
          else
            ++Prof->FixpointNondefRemovalsCmd;
        }
      }
    }
    if (Changed)
      ++Productive;
  }
  if (Prof && Ctx != ReduceCtx::General)
    Prof->MaxRounds = std::max(Prof->MaxRounds, Productive);
}

} // namespace

void crellvm::checker::reduceMaydiff(Assertion &A) {
  reduceMaydiffCtx(A, ReduceCtx::General);
}

bool crellvm::checker::relatedValues(const Assertion &A, const ir::Value &VS,
                                     const ir::Value &VT) {
  if (VS.isUndef())
    return true; // source undef refines to anything
  Expr ES = Expr::val(phy(VS));
  Expr ET = Expr::val(phy(VT));

  auto EquivAcross = [&](const Expr &X, const Expr &Y) {
    if (X.isLoad() || !X.sameShape(Y))
      return false;
    for (size_t I = 0; I != X.operands().size(); ++I) {
      const ValT &AOp = X.operands()[I], &BOp = Y.operands()[I];
      if (AOp != BOp)
        return false;
      if (AOp.isReg() && A.Maydiff.count(AOp.regT()))
        return false;
    }
    return true;
  };

  // Specialized probe: both seeds belong to their own closures, so an
  // EquivAcross hit on (ES, ET) is a result the full search below would
  // also reach — returning early is exact, not a weakening. The profile
  // gates the knob on this probe's feedstock hit rate (a miss is a wasted
  // comparison); general runs measure the same probe without using it.
  if (ActiveSpec && ActiveSpec->RelatedProbeFirst) {
    if (EquivAcross(ES, ET))
      return true;
  } else if (checker::detail::PostcondProfile *Prof = ActiveProfile) {
    ++(EquivAcross(ES, ET) ? Prof->RelatedProbeHits
                           : Prof->RelatedProbeMisses);
  }

  // Bounded closure: source expressions reachable from ES downward, target
  // expressions reaching ET upward.
  auto Closure = [](const Unary &U, const Expr &Start, bool Downward) {
    std::vector<Expr> Frontier{Start};
    std::set<Expr> Seen{Start};
    for (unsigned Depth = 0; Depth != 4 && !Frontier.empty(); ++Depth) {
      std::vector<Expr> Next;
      for (const Pred &P : U) {
        if (P.kind() != Pred::Kind::Lessdef)
          continue;
        const Expr &From = Downward ? P.lhs() : P.rhs();
        const Expr &To = Downward ? P.rhs() : P.lhs();
        for (const Expr &F : Frontier) {
          if (F == From && !Seen.count(To)) {
            Seen.insert(To);
            Next.push_back(To);
            if (Seen.size() > 64)
              return Seen;
          }
        }
      }
      Frontier = std::move(Next);
    }
    return Seen;
  };

  std::set<Expr> SrcSet = Closure(A.Src, ES, /*Downward=*/true);
  std::set<Expr> TgtSet = Closure(A.Tgt, ET, /*Downward=*/false);
  for (const Expr &X : SrcSet)
    for (const Expr &Y : TgtSet)
      if (EquivAcross(X, Y))
        return true;
  return false;
}

std::optional<std::string>
crellvm::checker::checkEquivBeh(const Assertion &A, const CmdPair &C) {
  auto Related = [&](const ir::Value &S, const ir::Value &T,
                     const char *What) -> std::optional<std::string> {
    if (relatedValues(A, S, T))
      return std::nullopt;
    return std::string(What) + ": source " + S.str() +
           " is not related to target " + T.str();
  };

  Opcode SrcOp = C.Src ? C.Src->opcode() : Opcode::Unreachable;
  Opcode TgtOp = C.Tgt ? C.Tgt->opcode() : Opcode::Unreachable;

  // Calls.
  if (C.Src && SrcOp == Opcode::Call) {
    if (!C.Tgt || TgtOp != Opcode::Call)
      return "source call has no matching target call";
    if (C.Src->callee() != C.Tgt->callee())
      return "calls to different functions";
    if (C.Src->operands().size() != C.Tgt->operands().size())
      return "call argument count mismatch";
    for (size_t I = 0; I != C.Src->operands().size(); ++I)
      if (auto E = Related(C.Src->operands()[I], C.Tgt->operands()[I],
                           "call argument"))
        return E;
    return std::nullopt;
  }
  if (C.Tgt && TgtOp == Opcode::Call)
    return "target call has no matching source call";

  // Allocations.
  if (C.Src && SrcOp == Opcode::Alloca) {
    if (!C.Tgt)
      return std::nullopt; // removing an allocation is fine
    if (TgtOp != Opcode::Alloca)
      return "source alloca aligned with non-alloca target";
    if (C.Src->allocaSize() != C.Tgt->allocaSize() ||
        C.Src->type() != C.Tgt->type())
      return "allocation size mismatch";
    return std::nullopt;
  }
  if (C.Tgt && TgtOp == Opcode::Alloca)
    return "target allocates without a source allocation";

  // Stores.
  if (C.Src && SrcOp == Opcode::Store) {
    if (!C.Tgt) {
      // Only stores to private memory may be dropped.
      ValT P = phy(C.Src->operands()[1]);
      if (A.Src.count(Pred::priv(P)) ||
          (P.isReg() &&
           A.Src.count(Pred::unique(P.V.regName()))))
        return std::nullopt;
      return "removed store to possibly-public memory";
    }
    if (TgtOp != Opcode::Store)
      return "source store aligned with non-store target";
    if (auto E = Related(C.Src->operands()[1], C.Tgt->operands()[1],
                         "store address"))
      return E;
    if (auto E =
            Related(C.Src->operands()[0], C.Tgt->operands()[0], "store value"))
      return E;
    return std::nullopt;
  }
  if (C.Tgt && TgtOp == Opcode::Store)
    return "target stores without a source store";

  // Target loads must not trap when the source does not.
  if (C.Tgt && TgtOp == Opcode::Load) {
    if (!C.Src || SrcOp != Opcode::Load)
      return "target load has no matching source load";
    if (auto E = Related(C.Src->operands()[0], C.Tgt->operands()[0],
                         "load address"))
      return E;
    return std::nullopt;
  }

  // Target divisions must not trap when the source does not.
  if (C.Tgt && isBinaryOp(TgtOp) && mayTrap(TgtOp)) {
    if (!C.Src || !isBinaryOp(SrcOp) || !mayTrap(SrcOp))
      return "target division has no matching source division "
             "(division-by-zero analysis is not supported)";
    if (auto E = Related(C.Src->operands()[1], C.Tgt->operands()[1],
                         "divisor"))
      return E;
    return std::nullopt;
  }

  // Terminators: CheckCFG guarantees equal successor lists; conditions and
  // returned values must be related (branching on undef is UB, so related
  // conditions guarantee identical control flow).
  if (C.Src && C.Src->isTerminator()) {
    if (!C.Tgt || !C.Tgt->isTerminator())
      return "terminator misaligned";
    if (SrcOp != TgtOp)
      return "terminator kind mismatch";
    if (C.Src->successors() != C.Tgt->successors())
      return "terminator successors mismatch";
    if (SrcOp == Opcode::Switch &&
        C.Src->caseValues() != C.Tgt->caseValues())
      return "switch case values mismatch";
    for (size_t I = 0; I != C.Src->operands().size(); ++I) {
      if (C.Tgt->operands().size() <= I)
        return "terminator operand mismatch";
      if (auto E = Related(C.Src->operands()[I], C.Tgt->operands()[I],
                           "terminator operand"))
        return E;
    }
    return std::nullopt;
  }
  if (C.Tgt && C.Tgt->isTerminator())
    return "target terminator without source terminator";

  // Remaining pairs (pure register computations and lnops) are silent.
  return std::nullopt;
}

namespace {

Assertion calcPostCmdOn(Assertion Out, const CmdPair &C) {
  // Prune.
  pruneU(Out.Src, C.Src);
  pruneU(Out.Tgt, C.Tgt);
  if (C.Src && C.Src->result())
    Out.Maydiff.insert(RegT{*C.Src->result(), Tag::Phy});
  if (C.Tgt && C.Tgt->result())
    Out.Maydiff.insert(RegT{*C.Tgt->result(), Tag::Phy});

  // AddMemoryPreds.
  if (C.Src && C.Src->opcode() == Opcode::Alloca) {
    Out.Src.insert(Pred::unique(*C.Src->result()));
    if (!C.Tgt) {
      Out.Src.insert(Pred::priv(
          ValT::phy(ir::Value::reg(*C.Src->result(), ir::Type::ptrTy()))));
    } else if (C.Tgt->opcode() == Opcode::Alloca &&
               C.Src->result() == C.Tgt->result()) {
      // Paired fresh blocks are added to the public injection; the
      // registers agree again.
      Out.Maydiff.erase(RegT{*C.Src->result(), Tag::Phy});
    }
  }
  if (C.Src && C.Tgt && C.Src->opcode() == Opcode::Call &&
      C.Tgt->opcode() == Opcode::Call && C.Src->result() &&
      C.Src->result() == C.Tgt->result())
    Out.Maydiff.erase(RegT{*C.Src->result(), Tag::Phy});

  // AddLessdefPreds.
  addLessdefPreds(Out.Src, C.Src);
  addLessdefPreds(Out.Tgt, C.Tgt);

  std::vector<RegT> Defined;
  if (C.Src && C.Src->result())
    Defined.push_back(RegT{*C.Src->result(), Tag::Phy});
  if (C.Tgt && C.Tgt->result() &&
      !(C.Src && C.Src->result() == C.Tgt->result()))
    Defined.push_back(RegT{*C.Tgt->result(), Tag::Phy});
  reduceMaydiffCtx(Out, ReduceCtx::Cmd, &Defined);
  return Out;
}

Assertion calcPostPhiOn(Assertion Out, const std::vector<ir::Phi> &SrcPhis,
                        const std::vector<ir::Phi> &TgtPhis,
                        const std::string &Pred) {
  // 1. Old registers from the previous edge are gone.
  auto DropOld = [](Unary &U) {
    for (auto It = U.begin(); It != U.end();) {
      bool HasOld = false;
      for (const RegT &R : It->regs())
        if (R.T == Tag::Old)
          HasOld = true;
      It = HasOld ? U.erase(It) : ++It;
    }
  };
  DropOld(Out.Src);
  DropOld(Out.Tgt);
  for (auto It = Out.Maydiff.begin(); It != Out.Maydiff.end();)
    It = (It->T == Tag::Old) ? Out.Maydiff.erase(It) : ++It;

  // 2. Copy every current-register fact into its old-register version
  //    (paper §4 step 1).
  auto OldifyVal = [](ValT V) {
    if (V.isReg() && V.T == Tag::Phy)
      V.T = Tag::Old;
    return V;
  };
  auto OldifyExpr = [&](const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::Val:
      return Expr::val(OldifyVal(E.operands()[0]));
    case Expr::Kind::Bop:
      return Expr::bop(E.opcode(), E.type(), OldifyVal(E.operands()[0]),
                       OldifyVal(E.operands()[1]));
    case Expr::Kind::Icmp:
      return Expr::icmp(E.icmpPred(), OldifyVal(E.operands()[0]),
                        OldifyVal(E.operands()[1]));
    case Expr::Kind::Select:
      return Expr::select(E.type(), OldifyVal(E.operands()[0]),
                          OldifyVal(E.operands()[1]),
                          OldifyVal(E.operands()[2]));
    case Expr::Kind::Cast:
      return Expr::cast(E.opcode(), E.type(), OldifyVal(E.operands()[0]));
    case Expr::Kind::Gep:
      return Expr::gep(E.isInbounds(), OldifyVal(E.operands()[0]),
                       OldifyVal(E.operands()[1]));
    case Expr::Kind::Load:
      return Expr::load(E.type(), OldifyVal(E.operands()[0]));
    }
    return E;
  };
  auto CopyOld = [&](Unary &U) {
    Unary Clones;
    for (const erhl::Pred &P : U) {
      if (P.kind() == Pred::Kind::Lessdef)
        Clones.insert(
            Pred::lessdef(OldifyExpr(P.lhs()), OldifyExpr(P.rhs())));
      // Memory predicates are not rotated: they are not about register
      // values that phis overwrite... except Uniq/Priv of a phi-defined
      // register, which step 3 kills anyway.
    }
    U.insert(Clones.begin(), Clones.end());
  };
  CopyOld(Out.Src);
  CopyOld(Out.Tgt);
  {
    std::set<RegT> Olds;
    for (const RegT &R : Out.Maydiff)
      if (R.T == Tag::Phy)
        Olds.insert(RegT{R.Name, Tag::Old});
    Out.Maydiff.insert(Olds.begin(), Olds.end());
  }

  // 3. Kill facts about phi-defined registers; kill Uniq of leaked
  //    incoming pointers.
  auto KillDefsAndLeaks = [&](Unary &U, const std::vector<ir::Phi> &Phis) {
    for (const ir::Phi &P : Phis) {
      erasePredsMentioning(U, RegT{P.Result, Tag::Phy});
      for (const auto &In : P.Incoming)
        if (In.first == Pred && In.second.isReg())
          U.erase(erhl::Pred::unique(In.second.regName()));
    }
  };
  KillDefsAndLeaks(Out.Src, SrcPhis);
  KillDefsAndLeaks(Out.Tgt, TgtPhis);

  // 4. Record the simultaneous assignments in terms of old values. When
  //    the incoming value is not defined by any phi of this block (on
  //    that side), its value is unchanged by the simultaneous step, so
  //    the current-register facts hold as well.
  auto AddAssign = [&](Unary &U, const ir::Phi &P,
                       const std::vector<ir::Phi> &Phis) {
    const ir::Value &In = P.incomingFor(Pred);
    ValT VOld = OldifyVal(phy(In));
    Expr ZV = Expr::val(ValT::phy(ir::Value::reg(P.Result, P.Ty)));
    U.insert(erhl::Pred::lessdef(ZV, Expr::val(VOld)));
    U.insert(erhl::Pred::lessdef(Expr::val(VOld), ZV));
    bool InIsPhiDefined = false;
    if (In.isReg())
      for (const ir::Phi &Q : Phis)
        if (Q.Result == In.regName())
          InIsPhiDefined = true;
    if (!InIsPhiDefined) {
      U.insert(erhl::Pred::lessdef(ZV, Expr::val(phy(In))));
      U.insert(erhl::Pred::lessdef(Expr::val(phy(In)), ZV));
    }
  };
  for (const ir::Phi &P : SrcPhis)
    AddAssign(Out.Src, P, SrcPhis);
  for (const ir::Phi &P : TgtPhis)
    AddAssign(Out.Tgt, P, TgtPhis);

  // 5. Maydiff: phi-defined registers differ unless both sides assign the
  //    same old values outside the maydiff set (paper §4 step 2).
  auto FindPhi = [&](const std::vector<ir::Phi> &Phis,
                     const std::string &Name) -> const ir::Phi * {
    for (const ir::Phi &P : Phis)
      if (P.Result == Name)
        return &P;
    return nullptr;
  };
  std::set<std::string> Defined;
  for (const ir::Phi &P : SrcPhis)
    Defined.insert(P.Result);
  for (const ir::Phi &P : TgtPhis)
    Defined.insert(P.Result);
  for (const std::string &Z : Defined) {
    const ir::Phi *SP = FindPhi(SrcPhis, Z);
    const ir::Phi *TP = FindPhi(TgtPhis, Z);
    bool Equiv = false;
    if (SP && TP) {
      const ir::Value &SV = SP->incomingFor(Pred);
      const ir::Value &TV = TP->incomingFor(Pred);
      if (SV == TV) {
        Equiv = true;
        if (SV.isReg() &&
            Out.Maydiff.count(RegT{SV.regName(), Tag::Old}))
          Equiv = false;
      }
    }
    if (!Equiv)
      Out.Maydiff.insert(RegT{Z, Tag::Phy});
    else
      Out.Maydiff.erase(RegT{Z, Tag::Phy});
  }

  // The phi results are this edge's defined set — the fixpoint
  // candidates a MaydiffCandidatesDefinedOnlyPhi plan narrows to, and
  // the reference set the profile measures removals against.
  std::vector<RegT> DefinedRegs;
  DefinedRegs.reserve(Defined.size());
  for (const std::string &Z : Defined)
    DefinedRegs.push_back(RegT{Z, Tag::Phy});
  reduceMaydiffCtx(Out, ReduceCtx::Phi, &DefinedRegs);
  return Out;
}

} // namespace

erhl::Assertion crellvm::checker::calcPostCmd(const Assertion &A,
                                              const CmdPair &C) {
  return calcPostCmdOn(A, C);
}

erhl::Assertion crellvm::checker::calcPostCmd(Assertion &&A,
                                              const CmdPair &C) {
  return calcPostCmdOn(std::move(A), C);
}

erhl::Assertion crellvm::checker::calcPostPhi(
    const Assertion &A, const std::vector<ir::Phi> &SrcPhis,
    const std::vector<ir::Phi> &TgtPhis, const std::string &Pred) {
  return calcPostPhiOn(A, SrcPhis, TgtPhis, Pred);
}

erhl::Assertion crellvm::checker::calcPostPhi(
    erhl::Assertion &&A, const std::vector<ir::Phi> &SrcPhis,
    const std::vector<ir::Phi> &TgtPhis, const std::string &Pred) {
  return calcPostPhiOn(std::move(A), SrcPhis, TgtPhis, Pred);
}
