//===- checker/Validator.h - Top-level ERHL proof checking ------*- C++ -*-===//
///
/// \file
/// The top-level proof checker (paper Fig. 4): given a source module, a
/// target module, and a translation proof, checks CheckCFG, CheckInit,
/// and every Hoare triple — per-line command pairs and per-edge phi
/// assignments. On a failed inclusion check it first runs the enabled
/// automation functions, then reports the first logical reason for
/// failure (paper §6 "Experience": the reason is what makes debugging
/// proof generation and finding compiler bugs practical).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CHECKER_VALIDATOR_H
#define CRELLVM_CHECKER_VALIDATOR_H

#include "checker/PlanSpec.h"
#include "proofgen/Proof.h"

#include <map>
#include <string>

namespace crellvm {
namespace checker {

/// Outcome of validating one function translation.
enum class ValidationStatus : uint8_t {
  Validated,    ///< formally checked
  Failed,       ///< proof rejected — a bug in the compiler or proof gen
  NotSupported, ///< translation uses unsupported features (#NS)
};

struct FunctionResult {
  ValidationStatus Status = ValidationStatus::Validated;
  std::string Where;  ///< "block:line" of the first failure
  std::string Reason; ///< logical reason for the failure / NS
};

struct ModuleResult {
  std::map<std::string, FunctionResult> Functions;

  uint64_t countValidated() const;
  uint64_t countFailed() const;
  uint64_t countNotSupported() const;
  /// First failure, for diagnostics; empty when none.
  std::string firstFailure() const;
};

/// Checks whether a function uses features outside the validator's
/// supported fragment (vector operations, lifetime intrinsics) — the
/// paper's dominant #NS sources (§7).
bool usesUnsupportedFeatures(const ir::Function &F, std::string &Why);

/// Validates every function of \p Src against \p Tgt with \p P.
ModuleResult validate(const ir::Module &Src, const ir::Module &Tgt,
                      const proofgen::Proof &P);

/// How the specialized dispatch of one validateWithPlan call went.
struct PlanRunStats {
  uint64_t Specialized = 0; ///< functions answered by the specialized path
  uint64_t Fallbacks = 0;   ///< functions re-run through the general checker
};

/// Does \p FP stay inside \p Spec's admissible rule and automation sets?
/// False means the plan's profile did not cover this proof shape and none
/// of its knobs can be trusted for it.
bool planGuardHolds(const proofgen::FunctionProof &FP, const PlanSpec &Spec);

/// Validates with the per-preset plan \p Spec: each function is first run
/// through the specialized checker (guarded rule set, skip-list knobs,
/// in-place post computation); a Validated or NotSupported verdict is
/// emitted directly, while a guard miss or *any* specialized failure
/// hard-falls-back to the unchanged general checker, which alone may say
/// Failed. By the monotonicity argument in checker/PlanSpec.h the result
/// is identical to validate() on every input — plans buy throughput, not
/// a different answer (plan::PlanManager's shadow mode re-checks exactly
/// this claim).
ModuleResult validateWithPlan(const ir::Module &Src, const ir::Module &Tgt,
                              const proofgen::Proof &P, const PlanSpec &Spec,
                              PlanRunStats *Stats = nullptr);

} // namespace checker
} // namespace crellvm

#endif // CRELLVM_CHECKER_VALIDATOR_H
