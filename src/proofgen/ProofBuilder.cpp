//===- proofgen/ProofBuilder.cpp --------------------------------*- C++ -*-===//

#include "proofgen/ProofBuilder.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/PointsBetween.h"

#include <algorithm>
#include <cassert>

using namespace crellvm;
using namespace crellvm::proofgen;
using namespace crellvm::erhl;

uint64_t Proof::sizeMetric() const {
  uint64_t N = 0;
  for (const auto &FKV : Functions) {
    for (const auto &BKV : FKV.second.Blocks) {
      const BlockProof &BP = BKV.second;
      N += BP.AtEntry.Src.size() + BP.AtEntry.Tgt.size() +
           BP.AtEntry.Maydiff.size();
      for (const LineEntry &L : BP.Lines)
        N += L.After.Src.size() + L.After.Tgt.size() +
             L.After.Maydiff.size() + L.Rules.size();
      for (const auto &PR : BP.PhiRules)
        N += PR.second.size();
    }
  }
  return N;
}

ProofBuilder::ProofBuilder(const ir::Function &Src) : SrcF(Src) {
  for (const ir::BasicBlock &B : SrcF.Blocks) {
    BlockData &BD = Blocks[B.Name];
    BD.TgtPhis = B.Phis;
    for (const ir::Instruction &I : B.Insts) {
      SlotId Id = Slots.size();
      Slots.push_back(Slot{I, I, {}});
      SlotBlock[Id] = B.Name;
      BD.Order.push_back(Id);
    }
  }
}

ProofBuilder::SlotId ProofBuilder::slotOfSrc(const std::string &Block,
                                             size_t SrcIdx) const {
  auto It = Blocks.find(Block);
  assert(It != Blocks.end() && "unknown block");
  size_t Seen = 0;
  for (SlotId Id : It->second.Order) {
    if (!Slots[Id].Src)
      continue; // target-only insertion
    if (Seen == SrcIdx)
      return Id;
    ++Seen;
  }
  assert(false && "source instruction index out of range");
  return 0;
}

const ir::Instruction *ProofBuilder::tgtAt(SlotId Id) const {
  assert(Id < Slots.size());
  return Slots[Id].Tgt ? &*Slots[Id].Tgt : nullptr;
}

ir::Instruction *ProofBuilder::tgtAt(SlotId Id) {
  assert(Id < Slots.size());
  return Slots[Id].Tgt ? &*Slots[Id].Tgt : nullptr;
}

const ir::Instruction *ProofBuilder::srcAt(SlotId Id) const {
  assert(Id < Slots.size());
  return Slots[Id].Src ? &*Slots[Id].Src : nullptr;
}

const std::string &ProofBuilder::blockOf(SlotId Id) const {
  auto It = SlotBlock.find(Id);
  assert(It != SlotBlock.end());
  return It->second;
}

std::vector<ProofBuilder::SlotId>
ProofBuilder::slotsOf(const std::string &Block) const {
  auto It = Blocks.find(Block);
  assert(It != Blocks.end() && "unknown block");
  return It->second.Order;
}

void ProofBuilder::replaceTgt(SlotId Id, ir::Instruction I) {
  assert(Id < Slots.size());
  Slots[Id].Tgt = std::move(I);
}

void ProofBuilder::removeTgt(SlotId Id) {
  assert(Id < Slots.size());
  Slots[Id].Tgt.reset();
}

ProofBuilder::SlotId ProofBuilder::insertTgtBefore(SlotId Id,
                                                   ir::Instruction I) {
  const std::string &Block = blockOf(Id);
  BlockData &BD = Blocks[Block];
  auto Pos = std::find(BD.Order.begin(), BD.Order.end(), Id);
  assert(Pos != BD.Order.end());
  SlotId New = Slots.size();
  Slots.push_back(Slot{std::nullopt, std::move(I), {}});
  SlotBlock[New] = Block;
  BD.Order.insert(Pos, New);
  return New;
}

ProofBuilder::SlotId
ProofBuilder::insertTgtBeforeTerminator(const std::string &Block,
                                        ir::Instruction I) {
  BlockData &BD = Blocks[Block];
  assert(!BD.Order.empty());
  return insertTgtBefore(BD.Order.back(), std::move(I));
}

void ProofBuilder::insertTgtPhi(const std::string &Block, ir::Phi P) {
  Blocks[Block].TgtPhis.push_back(std::move(P));
}

ir::Phi *ProofBuilder::tgtPhi(const std::string &Block,
                              const std::string &Reg) {
  for (ir::Phi &P : Blocks[Block].TgtPhis)
    if (P.Result == Reg)
      return &P;
  return nullptr;
}

std::vector<ir::Phi> &ProofBuilder::tgtPhis(const std::string &Block) {
  return Blocks[Block].TgtPhis;
}

void ProofBuilder::assn(Pred P, Side S, PPoint From, PPoint To) {
  Assns.push_back(AssnRecord{std::move(P), S, std::move(From),
                             std::move(To)});
}

void ProofBuilder::assnGlobal(Pred P, Side S) {
  if (S == Side::Src)
    GlobalSrc.insert(std::move(P));
  else
    GlobalTgt.insert(std::move(P));
}

void ProofBuilder::maydiffGlobal(RegT R) {
  GlobalMaydiff.insert(std::move(R));
}

void ProofBuilder::maydiffBetween(RegT R, SlotId OuterDef, SlotId InnerDef) {
  MaydiffRanges.push_back(MaydiffRange{std::move(R), OuterDef, InnerDef});
}

void ProofBuilder::maydiffAtEntry(RegT R, const std::string &Block) {
  MaydiffEntries.emplace_back(std::move(R), Block);
}

void ProofBuilder::inf(Infrule R, SlotId Id) {
  assert(Id < Slots.size());
  Slots[Id].Rules.push_back(std::move(R));
}

void ProofBuilder::infAtPhi(Infrule R, const std::string &Block,
                            const std::string &Pred) {
  Blocks[Block].PhiRules[Pred].push_back(std::move(R));
}

void ProofBuilder::enableAuto(const std::string &Name) {
  AutoFuncs.insert(Name);
}

void ProofBuilder::markNotSupported(const std::string &Reason) {
  if (!NotSupported) {
    NotSupported = true;
    NotSupportedReason = Reason;
  }
}

std::string ProofBuilder::freshGhost(const std::string &Hint) {
  return Hint + ".g" + std::to_string(GhostCounter++);
}

size_t ProofBuilder::ordinalOf(const PPoint &P, const BlockData &B) const {
  switch (P.K) {
  case PPoint::Kind::BlockEntry:
    return 0;
  case PPoint::Kind::BlockEnd:
    return B.Order.size();
  case PPoint::Kind::AfterSlot:
  case PPoint::Kind::BeforeSlot: {
    auto Pos = std::find(B.Order.begin(), B.Order.end(), P.Slot);
    assert(Pos != B.Order.end() && "slot not in block");
    size_t Idx = static_cast<size_t>(Pos - B.Order.begin());
    return P.K == PPoint::Kind::AfterSlot ? Idx + 1 : Idx;
  }
  }
  return 0;
}

ProofBuilder::Result ProofBuilder::finalize() {
  analysis::CFG G(SrcF);
  analysis::DomTree DT(G);

  // Base assertion at every point: the global predicates and maydiff set.
  Assertion Global;
  Global.Src = GlobalSrc;
  Global.Tgt = GlobalTgt;
  Global.Maydiff = GlobalMaydiff;

  // Per-block assertion grid: Points[B][i], i = 0 for block entry,
  // i = k+1 for "after the k-th slot".
  std::map<std::string, std::vector<Assertion>> Points;
  for (const auto &KV : Blocks)
    Points[KV.first].assign(KV.second.Order.size() + 1, Global);

  auto BlockOfPoint = [&](const PPoint &P) -> std::string {
    if (P.K == PPoint::Kind::AfterSlot || P.K == PPoint::Kind::BeforeSlot)
      return blockOf(P.Slot);
    return P.Block;
  };

  for (const AssnRecord &R : Assns) {
    std::string FromB = BlockOfPoint(R.From);
    std::string ToB = BlockOfPoint(R.To);
    size_t FromOrd = ordinalOf(R.From, Blocks[FromB]);
    size_t ToOrd = ordinalOf(R.To, Blocks[ToB]);
    size_t FromIdx = G.index(FromB), ToIdx = G.index(ToB);

    auto AddAt = [&](const std::string &B, size_t Lo, size_t Hi) {
      // Adds the predicate at point ordinals [Lo, Hi] of block B.
      std::vector<Assertion> &Vec = Points[B];
      for (size_t I = Lo; I <= Hi && I < Vec.size(); ++I) {
        if (R.S == Side::Src)
          Vec[I].Src.insert(R.P);
        else
          Vec[I].Tgt.insert(R.P);
      }
    };

    if (FromB == ToB && FromOrd <= ToOrd) {
      // Acyclic within one block: the fact is available from the def
      // point through the use point, inclusive.
      AddAt(FromB, FromOrd, ToOrd);
      continue;
    }
    std::set<size_t> Covered = analysis::blocksBetween(G, DT, FromIdx,
                                                       ToIdx);
    // When the use block lies on a cycle that avoids the def block, a
    // covered path runs through the use block's tail and back around, so
    // every point of the block is on a def-to-use path (Appendix E).
    bool ToOnCycle = false;
    for (size_t S : G.succs(ToIdx))
      if (Covered.count(S))
        ToOnCycle = true;
    for (size_t B : Covered) {
      const std::string &Name = G.name(B);
      size_t Last = Blocks[Name].Order.size();
      if (B == FromIdx && B == ToIdx) {
        // Cyclic within one block: from the def to the end, and from the
        // entry to the use.
        AddAt(Name, FromOrd, Last);
        AddAt(Name, 0, ToOrd);
      } else if (B == FromIdx) {
        AddAt(Name, FromOrd, Last);
      } else if (B == ToIdx) {
        AddAt(Name, 0, ToOnCycle ? Last : ToOrd);
      } else {
        AddAt(Name, 0, Last);
      }
    }
  }

  // Maydiff ranges: a point is covered when it is dominated by the outer
  // definition but not by the inner one (see maydiffBetween).
  for (const MaydiffRange &R : MaydiffRanges) {
    const std::string &OuterB = blockOf(R.Outer);
    const std::string &InnerB = blockOf(R.Inner);
    size_t OuterOrd = ordinalOf(PPoint::afterSlot(R.Outer), Blocks[OuterB]);
    size_t InnerOrd = ordinalOf(PPoint::afterSlot(R.Inner), Blocks[InnerB]);
    size_t OuterIdx = G.index(OuterB), InnerIdx = G.index(InnerB);
    for (auto &KV : Points) {
      size_t BIdx = G.index(KV.first);
      for (size_t Ord = 0; Ord != KV.second.size(); ++Ord) {
        // Does the outer definition dominate this point?
        bool OuterDom = (BIdx == OuterIdx)
                            ? Ord >= OuterOrd
                            : (DT.dominates(OuterIdx, BIdx) &&
                               OuterIdx != BIdx);
        bool InnerDom = (BIdx == InnerIdx)
                            ? Ord >= InnerOrd
                            : (DT.dominates(InnerIdx, BIdx) &&
                               InnerIdx != BIdx);
        if (OuterDom && !InnerDom)
          KV.second[Ord].Maydiff.insert(R.R);
      }
    }
  }

  for (const auto &[R, Block] : MaydiffEntries) {
    auto It = Points.find(Block);
    assert(It != Points.end() && "unknown block in maydiffAtEntry");
    It->second[0].Maydiff.insert(R);
  }

  // Assemble the proof and the target function.
  Result Out;
  Out.TgtF.Name = SrcF.Name;
  Out.TgtF.RetTy = SrcF.RetTy;
  Out.TgtF.Params = SrcF.Params;
  Out.FProof.AutoFuncs = AutoFuncs;
  Out.FProof.NotSupported = NotSupported;
  Out.FProof.NotSupportedReason = NotSupportedReason;

  for (const ir::BasicBlock &SrcB : SrcF.Blocks) {
    const BlockData &BD = Blocks[SrcB.Name];
    const std::vector<Assertion> &Vec = Points[SrcB.Name];

    BlockProof BP;
    BP.AtEntry = Vec[0];
    BP.PhiRules = BD.PhiRules;
    for (size_t I = 0; I != BD.Order.size(); ++I) {
      const Slot &S = Slots[BD.Order[I]];
      if (!S.Src && !S.Tgt)
        continue; // an inserted command later removed again
      LineEntry L;
      L.SrcCmd = S.Src;
      L.TgtCmd = S.Tgt;
      L.After = Vec[I + 1];
      L.Rules = S.Rules;
      BP.Lines.push_back(std::move(L));
    }
    Out.FProof.Blocks[SrcB.Name] = std::move(BP);

    ir::BasicBlock TgtB;
    TgtB.Name = SrcB.Name;
    TgtB.Phis = BD.TgtPhis;
    for (SlotId Id : BD.Order)
      if (Slots[Id].Tgt)
        TgtB.Insts.push_back(*Slots[Id].Tgt);
    Out.TgtF.Blocks.push_back(std::move(TgtB));
  }
  return Out;
}
