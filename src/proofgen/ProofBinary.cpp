//===- proofgen/ProofBinary.cpp ---------------------------------*- C++ -*-===//

#include "proofgen/ProofBinary.h"

#include "json/Binary.h"
#include "proofgen/ProofJson.h"

using namespace crellvm;
using namespace crellvm::proofgen;

std::string proofgen::proofToBinary(const Proof &P) {
  // Proof trees have fixed, shallow structure: the depth limit cannot
  // trip, so a failed encode is unreachable (kept total for safety).
  return json::encodeBinary(proofToJson(P)).value_or(std::string());
}

std::optional<Proof> proofgen::proofFromBinary(const std::string &Bytes,
                                               std::string *Error) {
  auto V = json::decodeBinary(Bytes, Error);
  if (!V)
    return std::nullopt;
  return proofFromJson(*V, Error);
}
