//===- proofgen/ProofBinary.cpp ---------------------------------*- C++ -*-===//

#include "proofgen/ProofBinary.h"

#include "json/Binary.h"
#include "proofgen/ProofJson.h"

using namespace crellvm;
using namespace crellvm::proofgen;

std::string proofgen::proofToBinary(const Proof &P) {
  return json::encodeBinary(proofToJson(P));
}

std::optional<Proof> proofgen::proofFromBinary(const std::string &Bytes,
                                               std::string *Error) {
  auto V = json::decodeBinary(Bytes, Error);
  if (!V)
    return std::nullopt;
  return proofFromJson(*V, Error);
}
