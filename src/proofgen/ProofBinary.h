//===- proofgen/ProofBinary.h - Binary proof exchange -----------*- C++ -*-===//
///
/// \file
/// The binary proof exchange format — the paper's §7 future-work item
/// ("a binary proof format would reduce the I/O bottleneck"), built as a
/// compact binary encoding (json/Binary.h) of the same proof tree the
/// JSON serializer produces, so both formats are validated by the same
/// checker code path. `bench/ablation_proof_format` quantifies the size
/// and parse-time difference.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PROOFGEN_PROOFBINARY_H
#define CRELLVM_PROOFGEN_PROOFBINARY_H

#include "proofgen/Proof.h"

namespace crellvm {
namespace proofgen {

/// Encodes \p P as compact binary bytes.
std::string proofToBinary(const Proof &P);

/// Decodes bytes produced by proofToBinary; std::nullopt with a message
/// in \p Error on malformed input (the file is untrusted).
std::optional<Proof> proofFromBinary(const std::string &Bytes,
                                     std::string *Error = nullptr);

} // namespace proofgen
} // namespace crellvm

#endif // CRELLVM_PROOFGEN_PROOFBINARY_H
