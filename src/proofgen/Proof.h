//===- proofgen/Proof.h - Translation proofs --------------------*- C++ -*-===//
///
/// \file
/// The proof object exchanged between the proof-generating compiler and
/// the checker (paper Fig. 1). A proof gives, per function and block:
///
///  - a line-by-line *alignment* of source and target commands, where a
///    missing side is a logical no-op (lnop, paper §3.2) inserted to keep
///    the sides in lock step;
///  - the ERHL assertion after every line (Ψ[F].α[B,i], paper §5);
///  - the inference rules applied at each line and at each phi edge;
///  - the automation functions enabled for the function (paper §2.3).
///
/// The checker validates the alignment against the actual source and
/// target modules; nothing in the proof is trusted.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PROOFGEN_PROOF_H
#define CRELLVM_PROOFGEN_PROOF_H

#include "erhl/Infrule.h"
#include "ir/Module.h"

#include <map>
#include <optional>
#include <set>

namespace crellvm {
namespace proofgen {

/// One aligned line: at most one side may be a logical no-op.
struct LineEntry {
  std::optional<ir::Instruction> SrcCmd; ///< std::nullopt = lnop
  std::optional<ir::Instruction> TgtCmd; ///< std::nullopt = lnop
  erhl::Assertion After;                 ///< assertion after this line
  std::vector<erhl::Infrule> Rules;      ///< applied at this line
};

/// Proof data for one basic block.
struct BlockProof {
  erhl::Assertion AtEntry; ///< assertion after the phi nodes
  std::vector<LineEntry> Lines;
  /// Inference rules applied on the phi edge coming from a given
  /// predecessor block.
  std::map<std::string, std::vector<erhl::Infrule>> PhiRules;
};

/// Proof data for one function translation.
struct FunctionProof {
  std::map<std::string, BlockProof> Blocks;
  /// Automation functions the checker may run when an inclusion check
  /// fails: "transitivity", "reduce_maydiff", "gvn_pre".
  std::set<std::string> AutoFuncs;
  /// Proof generation bailed out: the translation uses features the
  /// validator does not support (paper's #NS class).
  bool NotSupported = false;
  std::string NotSupportedReason;
};

/// A whole-module translation proof.
struct Proof {
  std::map<std::string, FunctionProof> Functions;

  /// Total number of hint objects (assertions, predicates, rules) — a
  /// rough size measure used by the automation ablation bench.
  uint64_t sizeMetric() const;
};

} // namespace proofgen
} // namespace crellvm

#endif // CRELLVM_PROOFGEN_PROOF_H
