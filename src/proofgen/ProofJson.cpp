//===- proofgen/ProofJson.cpp -----------------------------------*- C++ -*-===//

#include "proofgen/ProofJson.h"

#include "erhl/Serialize.h"
#include "ir/Parser.h"

using namespace crellvm;
using namespace crellvm::proofgen;
using JV = crellvm::json::Value;

namespace {

JV lineToJson(const LineEntry &L) {
  JV O = JV::object();
  O.set("src", L.SrcCmd ? JV(L.SrcCmd->str()) : JV());
  O.set("tgt", L.TgtCmd ? JV(L.TgtCmd->str()) : JV());
  O.set("after", erhl::assertionToJson(L.After));
  JV Rules = JV::array();
  for (const erhl::Infrule &R : L.Rules)
    Rules.push(erhl::infruleToJson(R));
  O.set("rules", std::move(Rules));
  return O;
}

std::optional<LineEntry> lineFromJson(const JV &V, std::string *Error) {
  LineEntry L;
  const JV &Src = V.get("src");
  if (!Src.isNull()) {
    auto I = ir::parseInstructionText(Src.getString(), Error);
    if (!I)
      return std::nullopt;
    L.SrcCmd = std::move(*I);
  }
  const JV &Tgt = V.get("tgt");
  if (!Tgt.isNull()) {
    auto I = ir::parseInstructionText(Tgt.getString(), Error);
    if (!I)
      return std::nullopt;
    L.TgtCmd = std::move(*I);
  }
  auto A = erhl::assertionFromJson(V.get("after"));
  if (!A) {
    if (Error)
      *Error = "malformed assertion";
    return std::nullopt;
  }
  L.After = std::move(*A);
  for (const JV &RV : V.get("rules").elements()) {
    auto R = erhl::infruleFromJson(RV);
    if (!R) {
      if (Error)
        *Error = "malformed inference rule";
      return std::nullopt;
    }
    L.Rules.push_back(std::move(*R));
  }
  return L;
}

} // namespace

JV crellvm::proofgen::proofToJson(const Proof &P) {
  JV Root = JV::object();
  JV Funcs = JV::object();
  for (const auto &FKV : P.Functions) {
    const FunctionProof &FP = FKV.second;
    JV FO = JV::object();
    FO.set("not_supported", FP.NotSupported);
    if (FP.NotSupported)
      FO.set("ns_reason", FP.NotSupportedReason);
    JV Autos = JV::array();
    for (const std::string &A : FP.AutoFuncs)
      Autos.push(JV(A));
    FO.set("autos", std::move(Autos));
    JV BlocksV = JV::object();
    for (const auto &BKV : FP.Blocks) {
      const BlockProof &BP = BKV.second;
      JV BO = JV::object();
      BO.set("at_entry", erhl::assertionToJson(BP.AtEntry));
      JV Lines = JV::array();
      for (const LineEntry &L : BP.Lines)
        Lines.push(lineToJson(L));
      BO.set("lines", std::move(Lines));
      JV PhiRules = JV::object();
      for (const auto &PR : BP.PhiRules) {
        JV Rules = JV::array();
        for (const erhl::Infrule &R : PR.second)
          Rules.push(erhl::infruleToJson(R));
        PhiRules.set(PR.first, std::move(Rules));
      }
      BO.set("phi_rules", std::move(PhiRules));
      BlocksV.set(BKV.first, std::move(BO));
    }
    FO.set("blocks", std::move(BlocksV));
    Funcs.set(FKV.first, std::move(FO));
  }
  Root.set("functions", std::move(Funcs));
  return Root;
}

std::optional<Proof> crellvm::proofgen::proofFromJson(const JV &V,
                                                      std::string *Error) {
  if (V.kind() != JV::Kind::Object) {
    if (Error)
      *Error = "proof is not an object";
    return std::nullopt;
  }
  Proof P;
  for (const auto &FKV : V.get("functions").members()) {
    FunctionProof FP;
    const JV &FO = FKV.second;
    FP.NotSupported = FO.get("not_supported").getBool();
    if (const JV *R = FO.find("ns_reason"))
      FP.NotSupportedReason = R->getString();
    for (const JV &A : FO.get("autos").elements())
      FP.AutoFuncs.insert(A.getString());
    for (const auto &BKV : FO.get("blocks").members()) {
      BlockProof BP;
      auto AE = erhl::assertionFromJson(BKV.second.get("at_entry"));
      if (!AE) {
        if (Error)
          *Error = "malformed entry assertion";
        return std::nullopt;
      }
      BP.AtEntry = std::move(*AE);
      for (const JV &LV : BKV.second.get("lines").elements()) {
        auto L = lineFromJson(LV, Error);
        if (!L)
          return std::nullopt;
        BP.Lines.push_back(std::move(*L));
      }
      for (const auto &PR : BKV.second.get("phi_rules").members()) {
        std::vector<erhl::Infrule> Rules;
        for (const JV &RV : PR.second.elements()) {
          auto R = erhl::infruleFromJson(RV);
          if (!R) {
            if (Error)
              *Error = "malformed phi-edge rule";
            return std::nullopt;
          }
          Rules.push_back(std::move(*R));
        }
        BP.PhiRules[PR.first] = std::move(Rules);
      }
      FP.Blocks[BKV.first] = std::move(BP);
    }
    P.Functions[FKV.first] = std::move(FP);
  }
  return P;
}

std::string crellvm::proofgen::proofToText(const Proof &P) {
  return proofToJson(P).write();
}

std::optional<Proof> crellvm::proofgen::proofFromText(const std::string &T,
                                                      std::string *Error) {
  auto V = json::parse(T, Error);
  if (!V)
    return std::nullopt;
  return proofFromJson(*V, Error);
}
