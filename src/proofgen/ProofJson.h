//===- proofgen/ProofJson.h - Proof (de)serialization -----------*- C++ -*-===//
///
/// \file
/// JSON round-trip for whole translation proofs. The validation driver
/// writes the source module, target module, and proof to disk and reads
/// them back before checking, reproducing the paper's file-based pipeline
/// (Fig. 1) and its I/O time column.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PROOFGEN_PROOFJSON_H
#define CRELLVM_PROOFGEN_PROOFJSON_H

#include "json/Json.h"
#include "proofgen/Proof.h"

namespace crellvm {
namespace proofgen {

json::Value proofToJson(const Proof &P);
std::optional<Proof> proofFromJson(const json::Value &V,
                                   std::string *Error = nullptr);

/// Convenience: JSON text round-trip.
std::string proofToText(const Proof &P);
std::optional<Proof> proofFromText(const std::string &Text,
                                   std::string *Error = nullptr);

} // namespace proofgen
} // namespace crellvm

#endif // CRELLVM_PROOFGEN_PROOFJSON_H
