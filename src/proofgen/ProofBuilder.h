//===- proofgen/ProofBuilder.h - Hint-insertion API -------------*- C++ -*-===//
///
/// \file
/// The proof-generation infrastructure the optimization passes use — the
/// boxed code of the paper's Algorithms 1-3. A ProofBuilder snapshots the
/// source function, tracks the target as an edit script over aligned
/// slots, and accumulates hints:
///
///   replaceTgt / removeTgt / insertTgt*  — the Nop()/Remove()/ReplaceAt()
///                                          operations, maintaining the
///                                          lnop alignment automatically;
///   assn(P, side, From, To)              — Assn(P, l1, l2): add predicate
///                                          P at every program point
///                                          between two points (paper
///                                          Appendix E);
///   assnGlobal / maydiffGlobal           — Assn(..., global);
///   inf(rule, Slot) / infAtPhi           — Inf(rule, l);
///   enableAuto("transitivity")           — Auto(...).
///
/// finalize() assembles the per-line assertions, resolves Appendix E point
/// ranges over the source CFG, and returns the target function together
/// with the FunctionProof.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PROOFGEN_PROOFBUILDER_H
#define CRELLVM_PROOFGEN_PROOFBUILDER_H

#include "proofgen/Proof.h"

#include <cstdint>

namespace crellvm {
namespace proofgen {

/// A program point in the source function: the entry of a block (after
/// its phi nodes), or the point just after an aligned slot.
struct PPoint {
  enum class Kind : uint8_t { BlockEntry, AfterSlot, BeforeSlot, BlockEnd };
  Kind K = Kind::BlockEntry;
  std::string Block; ///< for BlockEntry / BlockEnd
  uint64_t Slot = 0; ///< for AfterSlot / BeforeSlot

  static PPoint entryOf(std::string B) {
    return PPoint{Kind::BlockEntry, std::move(B), 0};
  }
  static PPoint endOf(std::string B) {
    return PPoint{Kind::BlockEnd, std::move(B), 0};
  }
  /// The point just after the command of a slot — where a definition's
  /// facts become available.
  static PPoint afterSlot(uint64_t S) {
    return PPoint{Kind::AfterSlot, "", S};
  }
  /// The point just before the command of a slot — the precondition of a
  /// use line.
  static PPoint beforeSlot(uint64_t S) {
    return PPoint{Kind::BeforeSlot, "", S};
  }
};

/// Builds a target function plus its translation proof from a source
/// function.
class ProofBuilder {
public:
  using SlotId = uint64_t;

  explicit ProofBuilder(const ir::Function &SrcF);

  const ir::Function &srcFunction() const { return SrcF; }

  // --- Slot addressing ----------------------------------------------------
  /// The slot holding the original source instruction \p SrcIdx of block
  /// \p Block.
  SlotId slotOfSrc(const std::string &Block, size_t SrcIdx) const;
  /// Current target instruction of a slot (nullptr when removed). The
  /// returned pointer is invalidated by further edits.
  const ir::Instruction *tgtAt(SlotId Id) const;
  ir::Instruction *tgtAt(SlotId Id);
  /// Original source instruction of a slot (nullptr for target-only
  /// insertions).
  const ir::Instruction *srcAt(SlotId Id) const;
  /// The block a slot belongs to.
  const std::string &blockOf(SlotId Id) const;

  /// All slots of \p Block in order.
  std::vector<SlotId> slotsOf(const std::string &Block) const;

  // --- Target edits ---------------------------------------------------------
  /// ReplaceAt: substitute the target command of a slot.
  void replaceTgt(SlotId Id, ir::Instruction I);
  /// Remove + Nop(tgt): the source command pairs with a target lnop.
  void removeTgt(SlotId Id);
  /// Inserts a fresh target command before \p Id (source side is lnop).
  SlotId insertTgtBefore(SlotId Id, ir::Instruction I);
  /// Inserts a fresh target command just before the terminator of
  /// \p Block.
  SlotId insertTgtBeforeTerminator(const std::string &Block,
                                   ir::Instruction I);
  /// Inserts a target-only phi node at the head of \p Block.
  void insertTgtPhi(const std::string &Block, ir::Phi P);
  /// Mutable access to a target phi (inserted or original).
  ir::Phi *tgtPhi(const std::string &Block, const std::string &Reg);
  /// Mutable access to all target phis of a block.
  std::vector<ir::Phi> &tgtPhis(const std::string &Block);

  // --- Hints ---------------------------------------------------------------
  /// Assn(P, l1, l2): adds \p P on \p Side at every point between \p From
  /// and \p To (Appendix E).
  void assn(erhl::Pred P, erhl::Side Side, PPoint From, PPoint To);
  /// Assn(P, global).
  void assnGlobal(erhl::Pred P, erhl::Side Side);
  /// Adds a register to the maydiff set at every point.
  void maydiffGlobal(erhl::RegT R);
  /// Adds \p R to the maydiff set at exactly the points dominated by the
  /// instruction of \p OuterDef but not dominated by that of \p InnerDef —
  /// the region where a hoisted instruction (LICM) is defined on the
  /// target side only.
  void maydiffBetween(erhl::RegT R, SlotId OuterDef, SlotId InnerDef);
  /// Adds \p R to the maydiff set at the entry point of \p Block only —
  /// used when a register is assigned by a phi on one side and by the
  /// block's first command on the other (the fold-phi shape, paper §4).
  void maydiffAtEntry(erhl::RegT R, const std::string &Block);
  /// Inf(rule, l): applies \p R at the line of slot \p Id.
  void inf(erhl::Infrule R, SlotId Id);
  /// Applies \p R on the phi edge from \p Pred into \p Block.
  void infAtPhi(erhl::Infrule R, const std::string &Block,
                const std::string &Pred);
  /// Auto(name).
  void enableAuto(const std::string &Name);
  /// Marks the whole translation not-supported (paper's #NS class).
  void markNotSupported(const std::string &Reason);
  bool isNotSupported() const { return NotSupported; }

  /// A fresh ghost register name (distinct from all physical names).
  std::string freshGhost(const std::string &Hint);

  // --- Finalization ----------------------------------------------------------
  struct Result {
    ir::Function TgtF;
    FunctionProof FProof;
  };
  /// Assembles the target function and the proof. The builder must not be
  /// used afterwards.
  Result finalize();

private:
  struct Slot {
    std::optional<ir::Instruction> Src;
    std::optional<ir::Instruction> Tgt;
    std::vector<erhl::Infrule> Rules;
  };
  struct BlockData {
    std::vector<SlotId> Order; ///< slot ids in block order
    std::vector<ir::Phi> TgtPhis;
    std::map<std::string, std::vector<erhl::Infrule>> PhiRules;
  };
  struct AssnRecord {
    erhl::Pred P;
    erhl::Side S;
    PPoint From, To;
  };
  struct MaydiffRange {
    erhl::RegT R;
    SlotId Outer, Inner;
  };

  /// Ordinal of a point within its block: 0 = entry, i+1 = after the i-th
  /// slot currently in the block.
  size_t ordinalOf(const PPoint &P, const BlockData &B) const;

  ir::Function SrcF;
  std::map<std::string, BlockData> Blocks;
  std::vector<Slot> Slots; ///< indexed by SlotId
  std::map<SlotId, std::string> SlotBlock;

  std::vector<AssnRecord> Assns;
  std::vector<MaydiffRange> MaydiffRanges;
  std::vector<std::pair<erhl::RegT, std::string>> MaydiffEntries;
  erhl::Unary GlobalSrc, GlobalTgt;
  std::set<erhl::RegT> GlobalMaydiff;
  std::set<std::string> AutoFuncs;
  bool NotSupported = false;
  std::string NotSupportedReason;
  unsigned GhostCounter = 0;
};

} // namespace proofgen
} // namespace crellvm

#endif // CRELLVM_PROOFGEN_PROOFBUILDER_H
