//===- plan/PlanCache.h - Two-tier cache for checker plans ------*- C++ -*-===//
///
/// \file
/// Storage for built plans: a small in-memory LRU in front of an optional
/// content-addressed DiskStore tier. The disk tier is *shared with the
/// verdict cache* — plans are stored in the same directory under
/// cache::fingerprintPlan keys, whose "crellvm-plan" domain tag
/// guarantees a plan object can never alias a verdict object. Cluster
/// members pointing at one shared artifact directory therefore exchange
/// warm plans for free, exactly as they exchange verdicts.
///
/// Disk payloads are the JSON form (plan/Plan.h); a payload that fails
/// planFromJson — foreign schema, truncation, unknown rule name — is a
/// counted miss, never an error: a plan cache can always fall back to
/// rebuilding, and a rebuilt plan overwrites the bad object.
///
/// Thread-safe; the DiskStore is borrowed, not owned (the verdict cache
/// or the CLI owns it).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PLAN_PLANCACHE_H
#define CRELLVM_PLAN_PLANCACHE_H

#include "cache/Fingerprint.h"
#include "plan/Plan.h"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

namespace crellvm {
namespace cache {
class DiskStore;
}
namespace plan {

struct PlanCacheOptions {
  /// In-memory LRU capacity. Keys are (pass, preset) pairs, so even a
  /// campaign over every historical preset needs a few dozen entries.
  size_t MaxMemEntries = 64;
  /// Optional persistent tier; nullptr = memory only. Borrowed.
  cache::DiskStore *Disk = nullptr;
};

struct PlanCacheCounters {
  uint64_t MemHits = 0;
  uint64_t DiskHits = 0;
  uint64_t Misses = 0;
  uint64_t Stores = 0;
  uint64_t CorruptPlans = 0; ///< disk payloads rejected by planFromJson
};

class PlanCache {
public:
  explicit PlanCache(PlanCacheOptions Opts) : Opts(Opts) {}

  PlanCache(const PlanCache &) = delete;
  PlanCache &operator=(const PlanCache &) = delete;

  /// Looks up \p FP: memory first, then disk (a disk hit is promoted into
  /// the LRU). nullptr on miss.
  std::shared_ptr<const CheckerPlan> load(const cache::Fingerprint &FP);

  /// Inserts into the LRU and persists to the disk tier when present.
  void store(const cache::Fingerprint &FP,
             std::shared_ptr<const CheckerPlan> Plan);

  PlanCacheCounters counters() const;

private:
  void insertMemLocked(const cache::Fingerprint &FP,
                       std::shared_ptr<const CheckerPlan> Plan);

  PlanCacheOptions Opts;
  mutable std::mutex M;
  /// LRU order: front = most recently used.
  std::list<std::pair<cache::Fingerprint, std::shared_ptr<const CheckerPlan>>>
      Lru;
  std::map<cache::Fingerprint, decltype(Lru)::iterator> Index;
  PlanCacheCounters Stats;
};

} // namespace plan
} // namespace crellvm

#endif // CRELLVM_PLAN_PLANCACHE_H
