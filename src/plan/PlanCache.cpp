//===- plan/PlanCache.cpp ---------------------------------------*- C++ -*-===//

#include "plan/PlanCache.h"

#include "cache/DiskStore.h"

using namespace crellvm;
using namespace crellvm::plan;

std::shared_ptr<const CheckerPlan>
PlanCache::load(const cache::Fingerprint &FP) {
  std::lock_guard<std::mutex> L(M);
  auto It = Index.find(FP);
  if (It != Index.end()) {
    Lru.splice(Lru.begin(), Lru, It->second);
    ++Stats.MemHits;
    return It->second->second;
  }
  if (Opts.Disk) {
    if (std::optional<std::string> Bytes = Opts.Disk->load(FP)) {
      if (std::optional<CheckerPlan> P = planFromJson(*Bytes)) {
        auto Shared = std::make_shared<const CheckerPlan>(std::move(*P));
        insertMemLocked(FP, Shared);
        ++Stats.DiskHits;
        return Shared;
      }
      ++Stats.CorruptPlans;
    }
  }
  ++Stats.Misses;
  return nullptr;
}

void PlanCache::store(const cache::Fingerprint &FP,
                      std::shared_ptr<const CheckerPlan> Plan) {
  std::lock_guard<std::mutex> L(M);
  insertMemLocked(FP, Plan);
  ++Stats.Stores;
  if (Opts.Disk)
    Opts.Disk->store(FP, planToJson(*Plan));
}

void PlanCache::insertMemLocked(const cache::Fingerprint &FP,
                                std::shared_ptr<const CheckerPlan> Plan) {
  auto It = Index.find(FP);
  if (It != Index.end()) {
    It->second->second = std::move(Plan);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(FP, std::move(Plan));
  Index[FP] = Lru.begin();
  while (Lru.size() > Opts.MaxMemEntries) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
  }
}

PlanCacheCounters PlanCache::counters() const {
  std::lock_guard<std::mutex> L(M);
  return Stats;
}
