//===- plan/Plan.cpp --------------------------------------------*- C++ -*-===//

#include "plan/Plan.h"

#include "checker/Version.h"
#include "erhl/Infrule.h"
#include "json/Json.h"

using namespace crellvm;
using namespace crellvm::plan;

std::string crellvm::plan::planToJson(const CheckerPlan &P) {
  json::Value V = json::Value::object();
  V.set("schema_version", checker::PlanSchemaVersion);
  V.set("pass", P.PassName);
  V.set("bugs", P.Bugs);

  json::Value Rules = json::Value::array();
  for (uint16_t K = 0; K != erhl::NumInfruleKinds; ++K)
    if (K < P.Spec.AllowedRules.size() && P.Spec.AllowedRules[K])
      Rules.push(erhl::infruleKindName(static_cast<erhl::InfruleKind>(K)));
  V.set("allowed_rules", std::move(Rules));

  json::Value Autos = json::Value::array();
  for (const std::string &A : P.Spec.AllowedAutos)
    Autos.push(A);
  V.set("allowed_autos", std::move(Autos));

  V.set("skip_nonphys_sweep_cmd", P.Spec.SkipNonphysSweepCmd);
  V.set("skip_load_bridge", P.Spec.SkipLoadBridge);
  V.set("maydiff_round_cap", static_cast<uint64_t>(P.Spec.MaydiffRoundCap));
  V.set("reuse_equal_post_cmd", P.Spec.ReuseEqualPostCmd);
  V.set("reuse_equal_post_phi", P.Spec.ReuseEqualPostPhi);
  V.set("maydiff_candidates_defined_only_cmd",
        P.Spec.MaydiffCandidatesDefinedOnlyCmd);
  V.set("maydiff_candidates_defined_only_phi",
        P.Spec.MaydiffCandidatesDefinedOnlyPhi);
  V.set("related_probe_first", P.Spec.RelatedProbeFirst);

  json::Value Feed = json::Value::object();
  Feed.set("modules", P.FeedstockModules);
  Feed.set("functions", P.ProfiledFunctions);
  Feed.set("validated", P.ProfiledValidated);
  V.set("feedstock", std::move(Feed));
  return V.write();
}

namespace {

bool intField(const json::Value &O, const char *Key, uint64_t &Out,
              std::string *Err) {
  const json::Value *F = O.find(Key);
  if (!F || F->kind() != json::Value::Kind::Int || F->getInt() < 0) {
    if (Err)
      *Err = std::string("missing or malformed field '") + Key + "'";
    return false;
  }
  Out = static_cast<uint64_t>(F->getInt());
  return true;
}

bool boolField(const json::Value &O, const char *Key, bool &Out,
               std::string *Err) {
  const json::Value *F = O.find(Key);
  if (!F || F->kind() != json::Value::Kind::Bool) {
    if (Err)
      *Err = std::string("missing or malformed field '") + Key + "'";
    return false;
  }
  Out = F->getBool();
  return true;
}

} // namespace

std::optional<CheckerPlan> crellvm::plan::planFromJson(const std::string &Text,
                                                       std::string *Err) {
  std::string ParseErr;
  std::optional<json::Value> V = json::parse(Text, &ParseErr);
  if (!V || V->kind() != json::Value::Kind::Object) {
    if (Err)
      *Err = ParseErr.empty() ? "not a JSON object" : ParseErr;
    return std::nullopt;
  }

  uint64_t Schema = 0;
  if (!intField(*V, "schema_version", Schema, Err))
    return std::nullopt;
  if (Schema != static_cast<uint64_t>(checker::PlanSchemaVersion)) {
    if (Err)
      *Err = "plan schema version mismatch";
    return std::nullopt;
  }

  CheckerPlan P;
  const json::Value *Pass = V->find("pass");
  const json::Value *Bugs = V->find("bugs");
  if (!Pass || Pass->kind() != json::Value::Kind::String || !Bugs ||
      Bugs->kind() != json::Value::Kind::String) {
    if (Err)
      *Err = "missing or malformed 'pass'/'bugs'";
    return std::nullopt;
  }
  P.PassName = Pass->getString();
  P.Bugs = Bugs->getString();

  const json::Value *Rules = V->find("allowed_rules");
  if (!Rules || Rules->kind() != json::Value::Kind::Array) {
    if (Err)
      *Err = "missing or malformed 'allowed_rules'";
    return std::nullopt;
  }
  P.Spec.AllowedRules.assign(erhl::NumInfruleKinds, 0);
  for (const json::Value &R : Rules->elements()) {
    if (R.kind() != json::Value::Kind::String) {
      if (Err)
        *Err = "non-string rule name";
      return std::nullopt;
    }
    std::optional<erhl::InfruleKind> K =
        erhl::infruleKindFromName(R.getString());
    if (!K) {
      if (Err)
        *Err = "unknown rule name '" + R.getString() + "'";
      return std::nullopt;
    }
    P.Spec.AllowedRules[static_cast<uint16_t>(*K)] = 1;
  }

  const json::Value *Autos = V->find("allowed_autos");
  if (!Autos || Autos->kind() != json::Value::Kind::Array) {
    if (Err)
      *Err = "missing or malformed 'allowed_autos'";
    return std::nullopt;
  }
  for (const json::Value &A : Autos->elements()) {
    if (A.kind() != json::Value::Kind::String) {
      if (Err)
        *Err = "non-string automation name";
      return std::nullopt;
    }
    P.Spec.AllowedAutos.insert(A.getString());
  }

  uint64_t Cap = 0;
  if (!boolField(*V, "skip_nonphys_sweep_cmd", P.Spec.SkipNonphysSweepCmd,
                 Err) ||
      !boolField(*V, "skip_load_bridge", P.Spec.SkipLoadBridge, Err) ||
      !intField(*V, "maydiff_round_cap", Cap, Err) ||
      !boolField(*V, "reuse_equal_post_cmd", P.Spec.ReuseEqualPostCmd, Err) ||
      !boolField(*V, "reuse_equal_post_phi", P.Spec.ReuseEqualPostPhi, Err) ||
      !boolField(*V, "maydiff_candidates_defined_only_cmd",
                 P.Spec.MaydiffCandidatesDefinedOnlyCmd, Err) ||
      !boolField(*V, "maydiff_candidates_defined_only_phi",
                 P.Spec.MaydiffCandidatesDefinedOnlyPhi, Err) ||
      !boolField(*V, "related_probe_first", P.Spec.RelatedProbeFirst, Err))
    return std::nullopt;
  P.Spec.MaydiffRoundCap = static_cast<unsigned>(Cap);

  const json::Value *Feed = V->find("feedstock");
  if (!Feed || Feed->kind() != json::Value::Kind::Object) {
    if (Err)
      *Err = "missing or malformed 'feedstock'";
    return std::nullopt;
  }
  if (!intField(*Feed, "modules", P.FeedstockModules, Err) ||
      !intField(*Feed, "functions", P.ProfiledFunctions, Err) ||
      !intField(*Feed, "validated", P.ProfiledValidated, Err))
    return std::nullopt;
  return P;
}
