//===- plan/Plan.h - Per-preset checker plans -------------------*- C++ -*-===//
///
/// \file
/// A checker plan: the specialization a JIT would derive from profiling,
/// made explicit and cacheable. For one (pass, BugConfig) pair the plan
/// records which inference rules and automation functions the preset's
/// proofs actually request (the applicability guard) and which
/// assertion-strengthening steps of the general checker were observed to
/// be no-ops on seeded feedstock (the skip knobs of checker::PlanSpec).
///
/// Plans are **untrusted dispatch state** (DESIGN.md §17): nothing in a
/// plan can change a verdict, because the specialized checker only skips
/// strengthening work and hard-falls-back to the general checker on any
/// guard miss or failure (checker/Validator.h). They are therefore safe
/// to persist, to share between cluster members through the
/// content-addressed DiskStore tier, and to replay across processes —
/// keyed by cache::fingerprintPlan, which folds in both
/// CheckerSemanticsVersion and PlanSchemaVersion so no stale plan is
/// ever replayed (checker/Version.h).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PLAN_PLAN_H
#define CRELLVM_PLAN_PLAN_H

#include "checker/PlanSpec.h"

#include <optional>
#include <string>

namespace crellvm {
namespace plan {

/// A cached per-preset specialization of the checker.
struct CheckerPlan {
  /// Pass this plan specializes ("mem2reg", "instcombine", "licm", "gvn").
  std::string PassName;
  /// The preset's BugConfig flag string (passes::BugConfig::str()) —
  /// provenance metadata; the cache key already pins the exact flags.
  std::string Bugs;
  /// The execution knobs the checker consults (checker/PlanSpec.h).
  checker::PlanSpec Spec;
  /// Feedstock provenance: how much profiling evidence backs the knobs.
  uint64_t FeedstockModules = 0;
  uint64_t ProfiledFunctions = 0;
  uint64_t ProfiledValidated = 0;
};

/// Serializes \p P to compact JSON: rule and automation names spelled out
/// (never raw enum indices, so a rule renumbering cannot silently change
/// a plan's meaning), plus a schema_version field checked on read.
std::string planToJson(const CheckerPlan &P);

/// Parses a serialized plan. Returns std::nullopt — with a reason in
/// \p Err — on malformed JSON, a schema_version mismatch, or any unknown
/// rule/automation name: a plan that cannot be fully understood is a
/// cache miss, never a partially-applied plan.
std::optional<CheckerPlan> planFromJson(const std::string &Text,
                                        std::string *Err = nullptr);

} // namespace plan
} // namespace crellvm

#endif // CRELLVM_PLAN_PLAN_H
