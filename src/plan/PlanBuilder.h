//===- plan/PlanBuilder.h - Profile-guided plan derivation ------*- C++ -*-===//
///
/// \file
/// Derives a CheckerPlan the way a JIT derives a specialization: by
/// running the *general* checker over deterministic seeded feedstock and
/// recording what it actually did. The feedstock is generated with the
/// workload's full feature mix and pushed through the real -O2 pipeline,
/// so the profiled pass sees module shapes from its production pipeline
/// position (gvn profiles post-mem2reg/instcombine/licm IR, not raw IR).
///
/// Knob derivation is deliberately conservative — each knob is enabled
/// only when the profile shows the corresponding work was a no-op for
/// every feedstock function:
///
///  - AllowedRules/AllowedAutos: the union of everything the preset's
///    proof generator requested. Anything outside fails the guard.
///  - SkipNonphysSweepCmd: zero line-level sweep removals observed.
///  - SkipLoadBridge: zero load-bridge removals observed.
///  - MaydiffRoundCap: the maximum number of *productive* fixpoint
///    rounds observed (the general checker always runs one extra
///    confirming round the cap elides).
///
/// Building is deterministic (fixed seeds, no wall clock, no RNG beyond
/// the seeded generator), so two cluster members building the same key
/// produce byte-identical plans — a prerequisite for sharing them
/// through the content-addressed store.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PLAN_PLANBUILDER_H
#define CRELLVM_PLAN_PLANBUILDER_H

#include "passes/BugConfig.h"
#include "plan/Plan.h"

namespace crellvm {
namespace plan {

struct PlanBuildOptions {
  /// Feedstock modules to profile. More modules widen the guard (fewer
  /// fallbacks) at higher one-time build cost; the plan cache amortizes.
  unsigned FeedstockModules = 6;
  /// First feedstock seed; module i uses FeedstockBaseSeed + i.
  uint64_t FeedstockBaseSeed = 7700;
};

/// Profiles \p PassName under \p Bugs and derives its plan. Runs
/// single-threaded; cost is a handful of general validations.
CheckerPlan buildPlan(const std::string &PassName,
                      const passes::BugConfig &Bugs,
                      const PlanBuildOptions &Opts = {});

} // namespace plan
} // namespace crellvm

#endif // CRELLVM_PLAN_PLANBUILDER_H
