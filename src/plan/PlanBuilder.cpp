//===- plan/PlanBuilder.cpp -------------------------------------*- C++ -*-===//

#include "plan/PlanBuilder.h"

#include "checker/Validator.h"
#include "erhl/Infrule.h"
#include "passes/Pipeline.h"
#include "workload/RandomProgram.h"

using namespace crellvm;
using namespace crellvm::plan;

namespace {

/// Folds one proof's rule and automation requests into the guard sets.
void recordProofShape(const proofgen::Proof &P, CheckerPlan &Plan) {
  for (const auto &FP : P.Functions) {
    for (const std::string &A : FP.second.AutoFuncs)
      Plan.Spec.AllowedAutos.insert(A);
    for (const auto &BP : FP.second.Blocks) {
      for (const proofgen::LineEntry &L : BP.second.Lines)
        for (const erhl::Infrule &R : L.Rules)
          Plan.Spec.AllowedRules[static_cast<uint16_t>(R.K)] = 1;
      for (const auto &Edge : BP.second.PhiRules)
        for (const erhl::Infrule &R : Edge.second)
          Plan.Spec.AllowedRules[static_cast<uint16_t>(R.K)] = 1;
    }
  }
}

} // namespace

CheckerPlan crellvm::plan::buildPlan(const std::string &PassName,
                                     const passes::BugConfig &Bugs,
                                     const PlanBuildOptions &Opts) {
  CheckerPlan Plan;
  Plan.PassName = PassName;
  Plan.Bugs = Bugs.str();
  Plan.Spec.AllowedRules.assign(erhl::NumInfruleKinds, 0);
  Plan.FeedstockModules = Opts.FeedstockModules;

  checker::detail::PostcondProfile Prof;
  for (unsigned I = 0; I != Opts.FeedstockModules; ++I) {
    workload::GenOptions G;
    G.Seed = Opts.FeedstockBaseSeed + I;
    ir::Module Cur = workload::generateModule(G);
    // Walk the production pipeline so the profiled pass sees its real
    // pipeline-position input; instcombine is profiled at both of its
    // positions, which is exactly what one shared plan must cover.
    for (const std::unique_ptr<passes::Pass> &P : passes::makeO2Pipeline(Bugs)) {
      bool Matches = P->name() == PassName;
      passes::PassResult R = P->run(Cur, /*GenProof=*/Matches);
      if (Matches) {
        recordProofShape(R.Proof, Plan);
        Plan.ProfiledFunctions += R.Proof.Functions.size();
        checker::ModuleResult MR;
        {
          checker::detail::ProfileScope Scope(Prof);
          MR = checker::validate(Cur, R.Tgt, R.Proof);
        }
        Plan.ProfiledValidated += MR.countValidated();
      }
      Cur = std::move(R.Tgt);
    }
  }

  // Each knob only when the profile proves the work it skips was a no-op
  // on every feedstock function (see header).
  Plan.Spec.SkipNonphysSweepCmd = Prof.NonphysRemovalsCmd == 0;
  Plan.Spec.SkipLoadBridge = Prof.LoadBridgeRemovals == 0;
  Plan.Spec.MaydiffRoundCap = Prof.MaxRounds;
  // Exact knob, so the gate is profitability, not safety. The asymmetry
  // sets the threshold: a miss costs one short-circuiting set comparison
  // (a size mismatch rejects in O(1)), a hit saves a full two-sided
  // assertion copy — roughly an order of magnitude more. One hit in five
  // already pays.
  Plan.Spec.ReuseEqualPostCmd =
      Prof.PostEqualCmd > 0 && Prof.PostEqualCmd * 4 >= Prof.PostUnequalCmd;
  // The phi-edge probe saves less on a hit (only the inclusion lookups),
  // but a miss is still one short-circuiting comparison, so the same
  // one-in-five threshold holds.
  Plan.Spec.ReuseEqualPostPhi =
      Prof.PostEqualPhi > 0 && Prof.PostEqualPhi * 4 >= Prof.PostUnequalPhi;
  Plan.Spec.MaydiffCandidatesDefinedOnlyCmd =
      Prof.FixpointNondefRemovalsCmd == 0;
  Plan.Spec.MaydiffCandidatesDefinedOnlyPhi =
      Prof.FixpointNondefRemovalsPhi == 0;
  Plan.Spec.RelatedProbeFirst =
      Prof.RelatedProbeHits > 0 &&
      Prof.RelatedProbeHits >= Prof.RelatedProbeMisses;
  return Plan;
}
