//===- plan/PlanManager.h - Specialized-dispatch runtime --------*- C++ -*-===//
///
/// \file
/// The runtime that decides, per validation, whether the specialized
/// checker runs — the plan pipeline's control plane (DESIGN.md §17):
///
///  - **Modes** (`--plan=off|shadow|on`): Off runs the general checker
///    only. On dispatches through checker::validateWithPlan (which
///    hard-falls-back on any guard miss or specialized failure). Shadow
///    runs *both*, compares the full per-function results, emits the
///    general verdict, and counts any divergence — the CI default, so
///    the monotonicity argument is re-checked empirically on every soak.
///  - **Demotion ladder**: the first shadow divergence atomically demotes
///    the effective mode to Off for the process lifetime (counted in
///    Demotions), mirroring the verdict cache's rw→ro→off ladder: a
///    component that contradicts the general checker once is evidence of
///    a bug and must stop influencing the hot path immediately.
///    Divergence is unreachable absent a checker bug — tests exercise
///    the ladder via injectDivergenceForTest().
///  - **Build coordination**: getOrBuild is blocking once-per-key — the
///    first caller builds (or pulls the shared disk tier), concurrent
///    callers for the same key wait and then hit memory. Plan counters
///    summed over a batch are therefore identical at any --jobs N.
///  - **Fault site** `plan.apply` (support/FaultInjection.h): when the
///    chaos schedule fires, the call skips the specialized path entirely
///    and runs the general checker, simulating a guard failure mid-batch;
///    verdicts must be bit-identical to --plan=off under any schedule.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_PLAN_PLANMANAGER_H
#define CRELLVM_PLAN_PLANMANAGER_H

#include "checker/Validator.h"
#include "passes/BugConfig.h"
#include "plan/PlanBuilder.h"
#include "plan/PlanCache.h"

#include <atomic>
#include <condition_variable>
#include <set>

namespace crellvm {
namespace json {
class Value;
}
namespace plan {

enum class PlanMode : uint8_t { Off, Shadow, On };

/// Parses "off"/"shadow"/"on"; std::nullopt otherwise.
std::optional<PlanMode> parsePlanMode(const std::string &S);
const char *planModeName(PlanMode M);

struct PlanManagerOptions {
  PlanMode Mode = PlanMode::Off;
  /// Optional persistent plan tier — typically the *same* DiskStore the
  /// verdict cache uses (domain-tagged keys keep the lanes apart).
  /// Borrowed; must outlive the manager.
  cache::DiskStore *Disk = nullptr;
  PlanBuildOptions Build;
  size_t MaxMemEntries = 64;
};

/// Per-call counters the driver folds into its PassStats.
struct PlanCallStats {
  uint64_t Builds = 0;       ///< plans built from feedstock this call
  uint64_t Hits = 0;         ///< plan served from memory or disk
  uint64_t Specialized = 0;  ///< functions answered by the specialized path
  uint64_t Fallbacks = 0;    ///< functions re-run through the general checker
  uint64_t ShadowChecks = 0; ///< functions double-checked in shadow mode
  uint64_t Divergences = 0;  ///< shadow disagreements (0 absent checker bugs)
};

class PlanManager {
public:
  explicit PlanManager(PlanManagerOptions Opts);

  PlanManager(const PlanManager &) = delete;
  PlanManager &operator=(const PlanManager &) = delete;

  PlanMode configuredMode() const { return Opts.Mode; }
  /// The configured mode, or Off after a divergence demotion.
  PlanMode effectiveMode() const;

  /// The driver's one entry point: validates (Src, Tgt, P) for
  /// \p PassName under \p Bugs through the mode's dispatch policy. The
  /// returned verdicts are identical to checker::validate on every input
  /// and in every mode — plans buy throughput, never a different answer.
  checker::ModuleResult validate(const std::string &PassName,
                                 const passes::BugConfig &Bugs,
                                 const ir::Module &Src, const ir::Module &Tgt,
                                 const proofgen::Proof &P,
                                 PlanCallStats *Stats = nullptr);

  /// Builds (or loads) the plan for a key without validating anything —
  /// warm-up for benches and tests. Counts like validate's plan lookup.
  std::shared_ptr<const CheckerPlan>
  getOrBuild(const std::string &PassName, const passes::BugConfig &Bugs,
             PlanCallStats *Stats = nullptr);

  uint64_t divergences() const { return Divergences.load(); }
  uint64_t demotions() const { return Demotions.load(); }

  /// Forces the next shadow comparison to report a divergence, so tests
  /// can reach the demotion ladder (real divergence needs a checker bug).
  void injectDivergenceForTest() { InjectDivergence.store(true); }

  /// The service/CLI stats section: flat int totals (cluster-summable)
  /// plus a nested per_preset object keyed by BugConfig::str().
  json::Value statsJson() const;

private:
  struct PresetCounters {
    uint64_t Requests = 0;
    uint64_t Specialized = 0;
    uint64_t Fallbacks = 0;
    uint64_t ShadowChecks = 0;
    uint64_t Divergences = 0;
  };

  void noteDivergence();

  PlanManagerOptions Opts;
  PlanCache Cache;

  std::mutex BuildM;
  std::condition_variable BuildCv;
  std::set<cache::Fingerprint> Building;
  std::atomic<uint64_t> Builds{0};

  std::atomic<bool> Demoted{false};
  std::atomic<bool> InjectDivergence{false};
  std::atomic<uint64_t> Specialized{0};
  std::atomic<uint64_t> Fallbacks{0};
  std::atomic<uint64_t> ShadowChecks{0};
  std::atomic<uint64_t> Divergences{0};
  std::atomic<uint64_t> Demotions{0};
  std::atomic<uint64_t> FaultForcedGeneral{0};

  mutable std::mutex PresetM;
  std::map<std::string, PresetCounters> PerPreset;
};

} // namespace plan
} // namespace crellvm

#endif // CRELLVM_PLAN_PLANMANAGER_H
