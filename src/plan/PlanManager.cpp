//===- plan/PlanManager.cpp -------------------------------------*- C++ -*-===//

#include "plan/PlanManager.h"

#include "checker/Version.h"
#include "json/Json.h"
#include "support/FaultInjection.h"

using namespace crellvm;
using namespace crellvm::plan;

std::optional<PlanMode> crellvm::plan::parsePlanMode(const std::string &S) {
  if (S == "off")
    return PlanMode::Off;
  if (S == "shadow")
    return PlanMode::Shadow;
  if (S == "on")
    return PlanMode::On;
  return std::nullopt;
}

const char *crellvm::plan::planModeName(PlanMode M) {
  switch (M) {
  case PlanMode::Off:
    return "off";
  case PlanMode::Shadow:
    return "shadow";
  case PlanMode::On:
    return "on";
  }
  return "off";
}

PlanManager::PlanManager(PlanManagerOptions Opts)
    : Opts(Opts), Cache(PlanCacheOptions{Opts.MaxMemEntries, Opts.Disk}) {}

PlanMode PlanManager::effectiveMode() const {
  return Demoted.load(std::memory_order_relaxed) ? PlanMode::Off : Opts.Mode;
}

std::shared_ptr<const CheckerPlan>
PlanManager::getOrBuild(const std::string &PassName,
                        const passes::BugConfig &Bugs, PlanCallStats *Stats) {
  cache::Fingerprint FP = cache::fingerprintPlan(
      PassName, Bugs, checker::versionFingerprint(),
      checker::PlanSchemaVersion);

  std::unique_lock<std::mutex> L(BuildM);
  for (;;) {
    // Check the build set first: while a build is in flight, waiters must
    // not touch the cache (each probe would count a miss and make the
    // summed counters depend on thread timing).
    if (Building.count(FP)) {
      BuildCv.wait(L);
      continue;
    }
    if (std::shared_ptr<const CheckerPlan> P = Cache.load(FP)) {
      if (Stats)
        ++Stats->Hits;
      return P;
    }
    break;
  }
  Building.insert(FP);
  L.unlock();

  std::shared_ptr<const CheckerPlan> Plan;
  try {
    Plan = std::make_shared<const CheckerPlan>(
        buildPlan(PassName, Bugs, Opts.Build));
  } catch (...) {
    L.lock();
    Building.erase(FP);
    BuildCv.notify_all();
    throw;
  }
  Cache.store(FP, Plan);
  Builds.fetch_add(1);
  if (Stats)
    ++Stats->Builds;

  L.lock();
  Building.erase(FP);
  BuildCv.notify_all();
  return Plan;
}

checker::ModuleResult
PlanManager::validate(const std::string &PassName,
                      const passes::BugConfig &Bugs, const ir::Module &Src,
                      const ir::Module &Tgt, const proofgen::Proof &P,
                      PlanCallStats *Stats) {
  PlanMode Mode = effectiveMode();
  // The chaos probe simulates a guard failure for the whole call: the
  // specialized path is skipped and the general checker answers, which
  // by construction cannot change any verdict.
  if (Mode != PlanMode::Off && fault::shouldFail("plan.apply")) {
    FaultForcedGeneral.fetch_add(1);
    Mode = PlanMode::Off;
  }
  if (Mode == PlanMode::Off)
    return checker::validate(Src, Tgt, P);

  std::shared_ptr<const CheckerPlan> Plan = getOrBuild(PassName, Bugs, Stats);

  checker::PlanRunStats RS;
  checker::ModuleResult Spec =
      checker::validateWithPlan(Src, Tgt, P, Plan->Spec, &RS);
  Specialized.fetch_add(RS.Specialized);
  Fallbacks.fetch_add(RS.Fallbacks);
  if (Stats) {
    Stats->Specialized += RS.Specialized;
    Stats->Fallbacks += RS.Fallbacks;
  }

  uint64_t CallShadow = 0, CallDiverge = 0;
  checker::ModuleResult Out = std::move(Spec);
  if (Mode == PlanMode::Shadow) {
    checker::ModuleResult General = checker::validate(Src, Tgt, P);
    CallShadow = General.Functions.size();
    bool Diverged = InjectDivergence.exchange(false);
    if (General.Functions.size() != Out.Functions.size())
      Diverged = true;
    else {
      auto GI = General.Functions.begin();
      for (auto SI = Out.Functions.begin(); SI != Out.Functions.end();
           ++SI, ++GI)
        if (SI->first != GI->first ||
            SI->second.Status != GI->second.Status ||
            SI->second.Where != GI->second.Where ||
            SI->second.Reason != GI->second.Reason) {
          Diverged = true;
          break;
        }
    }
    if (Diverged) {
      CallDiverge = 1;
      noteDivergence();
    }
    // Shadow emits the general verdict: even mid-divergence the system
    // keeps answering with the sole arbiter's result.
    Out = std::move(General);
    ShadowChecks.fetch_add(CallShadow);
    if (Stats) {
      Stats->ShadowChecks += CallShadow;
      Stats->Divergences += CallDiverge;
    }
  }

  {
    std::lock_guard<std::mutex> L(PresetM);
    PresetCounters &C = PerPreset[Bugs.str()];
    ++C.Requests;
    C.Specialized += RS.Specialized;
    C.Fallbacks += RS.Fallbacks;
    C.ShadowChecks += CallShadow;
    C.Divergences += CallDiverge;
  }
  return Out;
}

void PlanManager::noteDivergence() {
  Divergences.fetch_add(1);
  // One strike: the first divergence demotes the effective mode to Off
  // for the process lifetime (the cache's rw->ro->off ladder analog).
  if (!Demoted.exchange(true))
    Demotions.fetch_add(1);
}

json::Value PlanManager::statsJson() const {
  json::Value V = json::Value::object();
  V.set("mode", planModeName(Opts.Mode));
  V.set("effective_mode", planModeName(effectiveMode()));
  PlanCacheCounters CC = Cache.counters();
  V.set("builds", Builds.load());
  V.set("mem_hits", CC.MemHits);
  V.set("disk_hits", CC.DiskHits);
  V.set("misses", CC.Misses);
  V.set("stores", CC.Stores);
  V.set("corrupt_plans", CC.CorruptPlans);
  V.set("specialized", Specialized.load());
  V.set("fallbacks", Fallbacks.load());
  V.set("shadow_checks", ShadowChecks.load());
  V.set("divergences", Divergences.load());
  V.set("demotions", Demotions.load());
  V.set("fault_forced_general", FaultForcedGeneral.load());

  // Nested object: per-member detail the cluster aggregator deliberately
  // skips (sumIntSection folds flat ints only).
  json::Value Per = json::Value::object();
  {
    std::lock_guard<std::mutex> L(PresetM);
    for (const auto &KV : PerPreset) {
      json::Value E = json::Value::object();
      E.set("requests", KV.second.Requests);
      E.set("specialized", KV.second.Specialized);
      E.set("fallbacks", KV.second.Fallbacks);
      E.set("shadow_checks", KV.second.ShadowChecks);
      E.set("divergences", KV.second.Divergences);
      Per.set(KV.first, std::move(E));
    }
  }
  V.set("per_preset", std::move(Per));
  return V;
}
