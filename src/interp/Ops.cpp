//===- interp/Ops.cpp -------------------------------------------*- C++ -*-===//

#include "interp/Ops.h"

#include <cassert>

using namespace crellvm;
using namespace crellvm::interp;
using namespace crellvm::ir;

OpResult crellvm::interp::evalBinaryOp(Opcode Op, unsigned Width,
                                       const RtValue &A, const RtValue &B) {
  // Explicit width guard, not just the Type::intTy assert (compiled out
  // under NDEBUG): every shift below is bounded by Width, and a width of
  // 0 or > 64 would turn e.g. the sdiv sign-bit probe `1 << (Width - 1)`
  // into a host-side shift of 64+ bits — undefined behavior in the
  // evaluator both interp and the ERHL checker share.
  if (Width < 1 || Width > 64)
    return OpResult::trap("unsupported integer width");
  // Division by an undefined or zero divisor is immediate UB; everything
  // else propagates poison, then undef (the Vellvm-style approximation,
  // see DESIGN.md).
  if (mayTrap(Op)) {
    if (B.isUndef() || B.isPoison())
      return OpResult::trap("division by undef/poison divisor");
    if (B.isInt() && B.bits() == 0)
      return OpResult::trap("division by zero");
  }
  if (A.isPoison() || B.isPoison())
    return OpResult::ok(RtValue::poison());
  if (A.isUndef() || B.isUndef())
    return OpResult::ok(RtValue::undef());
  if (!A.isInt() || !B.isInt())
    return OpResult::trap("integer arithmetic on pointer value");
  uint64_t X = A.bits(), Y = B.bits();
  int64_t SX = A.sext(), SY = B.sext();
  switch (Op) {
  case Opcode::Add:
    return OpResult::ok(RtValue::intVal(X + Y, Width));
  case Opcode::Sub:
    return OpResult::ok(RtValue::intVal(X - Y, Width));
  case Opcode::Mul:
    return OpResult::ok(RtValue::intVal(X * Y, Width));
  case Opcode::SDiv:
    if (SY == -1 &&
        SX == RtValue::signExtend(uint64_t(1) << (Width - 1), Width))
      return OpResult::trap("signed division overflow");
    return OpResult::ok(
        RtValue::intVal(static_cast<uint64_t>(SX / SY), Width));
  case Opcode::UDiv:
    return OpResult::ok(RtValue::intVal(X / Y, Width));
  case Opcode::SRem:
    if (SY == -1)
      return OpResult::ok(RtValue::intVal(0, Width));
    return OpResult::ok(
        RtValue::intVal(static_cast<uint64_t>(SX % SY), Width));
  case Opcode::URem:
    return OpResult::ok(RtValue::intVal(X % Y, Width));
  case Opcode::Shl:
    if (Y >= Width)
      return OpResult::ok(RtValue::poison());
    return OpResult::ok(RtValue::intVal(X << Y, Width));
  case Opcode::LShr:
    if (Y >= Width)
      return OpResult::ok(RtValue::poison());
    return OpResult::ok(RtValue::intVal(X >> Y, Width));
  case Opcode::AShr:
    if (Y >= Width)
      return OpResult::ok(RtValue::poison());
    return OpResult::ok(
        RtValue::intVal(static_cast<uint64_t>(SX >> Y), Width));
  case Opcode::And:
    return OpResult::ok(RtValue::intVal(X & Y, Width));
  case Opcode::Or:
    return OpResult::ok(RtValue::intVal(X | Y, Width));
  case Opcode::Xor:
    return OpResult::ok(RtValue::intVal(X ^ Y, Width));
  default:
    assert(false && "not a binary opcode");
    return OpResult::trap("not a binary opcode");
  }
}

OpResult crellvm::interp::evalIcmpOp(IcmpPred P, const RtValue &A,
                                     const RtValue &B) {
  if (A.isPoison() || B.isPoison())
    return OpResult::ok(RtValue::poison());
  if (A.isUndef() || B.isUndef())
    return OpResult::ok(RtValue::undef());
  uint64_t X, Y;
  int64_t SX, SY;
  if (A.isPtr() && B.isPtr()) {
    // Numeric comparison of encoded addresses (a defined simplification of
    // LLVM's pointer-comparison rules; see DESIGN.md).
    SX = encodePtr(A.block(), A.offset());
    SY = encodePtr(B.block(), B.offset());
    X = static_cast<uint64_t>(SX);
    Y = static_cast<uint64_t>(SY);
  } else if (A.isInt() && B.isInt()) {
    X = A.bits();
    Y = B.bits();
    SX = A.sext();
    SY = B.sext();
  } else {
    return OpResult::trap("icmp between incompatible runtime values");
  }
  bool R = false;
  switch (P) {
  case IcmpPred::Eq:
    R = X == Y;
    break;
  case IcmpPred::Ne:
    R = X != Y;
    break;
  case IcmpPred::Ugt:
    R = X > Y;
    break;
  case IcmpPred::Uge:
    R = X >= Y;
    break;
  case IcmpPred::Ult:
    R = X < Y;
    break;
  case IcmpPred::Ule:
    R = X <= Y;
    break;
  case IcmpPred::Sgt:
    R = SX > SY;
    break;
  case IcmpPred::Sge:
    R = SX >= SY;
    break;
  case IcmpPred::Slt:
    R = SX < SY;
    break;
  case IcmpPred::Sle:
    R = SX <= SY;
    break;
  }
  return OpResult::ok(RtValue::intVal(R ? 1 : 0, 1));
}

OpResult crellvm::interp::evalCastOp(Opcode Op, ir::Type DstTy,
                                     const RtValue &A) {
  if (A.isPoison())
    return OpResult::ok(RtValue::poison());
  if (A.isUndef())
    return OpResult::ok(RtValue::undef());
  switch (Op) {
  case Opcode::Trunc:
  case Opcode::ZExt:
    if (!A.isInt())
      return OpResult::trap("integer cast of non-integer");
    return OpResult::ok(RtValue::intVal(A.bits(), DstTy.intWidth()));
  case Opcode::SExt:
    if (!A.isInt())
      return OpResult::trap("integer cast of non-integer");
    return OpResult::ok(RtValue::intVal(static_cast<uint64_t>(A.sext()),
                                        DstTy.intWidth()));
  case Opcode::PtrToInt: {
    if (!A.isPtr())
      return OpResult::trap("ptrtoint of non-pointer");
    int64_t Addr = encodePtr(A.block(), A.offset());
    return OpResult::ok(
        RtValue::intVal(static_cast<uint64_t>(Addr), DstTy.intWidth()));
  }
  case Opcode::IntToPtr: {
    if (!A.isInt())
      return OpResult::trap("inttoptr of non-integer");
    int64_t Block, Off;
    decodePtr(A.sext(), Block, Off);
    return OpResult::ok(RtValue::ptrVal(Block, Off));
  }
  case Opcode::Bitcast:
    return OpResult::ok(A);
  default:
    assert(false && "not a cast opcode");
    return OpResult::trap("not a cast opcode");
  }
}
