//===- interp/Ops.h - Pure value operations ---------------------*- C++ -*-===//
///
/// \file
/// Pure evaluation of the IR's value operations on runtime values, shared
/// by the interpreter and by the ERHL semantic evaluator (the randomized
/// rule-soundness tester). Operations that raise undefined behavior report
/// Trap instead of producing a value.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_INTERP_OPS_H
#define CRELLVM_INTERP_OPS_H

#include "interp/RtValue.h"
#include "ir/Opcode.h"

#include <string>

namespace crellvm {
namespace interp {

/// Result of a pure operation: a value, or a trap (undefined behavior).
struct OpResult {
  bool Trap = false;
  RtValue V;
  std::string Reason;

  static OpResult ok(RtValue V) { return OpResult{false, std::move(V), ""}; }
  static OpResult trap(std::string Why) {
    return OpResult{true, RtValue::undef(), std::move(Why)};
  }
};

/// Pointer<->integer address encoding stride: each memory block occupies a
/// disjoint 2^20-cell address window.
constexpr int64_t PtrBlockStride = int64_t(1) << 20;

/// Addresses sit at the middle of each block's window so that small
/// negative offsets (from non-inbounds geps) round-trip exactly through
/// ptrtoint/inttoptr.
inline int64_t encodePtr(int64_t Block, int64_t Off) {
  return (Block + 1) * PtrBlockStride + Off + PtrBlockStride / 2;
}

inline void decodePtr(int64_t Addr, int64_t &Block, int64_t &Off) {
  Block = Addr / PtrBlockStride - 1;
  Off = Addr % PtrBlockStride - PtrBlockStride / 2;
}

/// Integer binary operation on width \p Width.
OpResult evalBinaryOp(ir::Opcode Op, unsigned Width, const RtValue &A,
                      const RtValue &B);

/// Integer or pointer comparison.
OpResult evalIcmpOp(ir::IcmpPred P, const RtValue &A, const RtValue &B);

/// Cast to \p DstTy.
OpResult evalCastOp(ir::Opcode Op, ir::Type DstTy, const RtValue &A);

} // namespace interp
} // namespace crellvm

#endif // CRELLVM_INTERP_OPS_H
