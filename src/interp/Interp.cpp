//===- interp/Interp.cpp ----------------------------------------*- C++ -*-===//

#include "interp/Interp.h"

#include "interp/Ops.h"

#include <algorithm>
#include <cassert>

using namespace crellvm;
using namespace crellvm::interp;
using namespace crellvm::ir;

std::string Event::str() const {
  std::string S = "call @" + Callee + "(";
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I != 0)
      S += ", ";
    S += Args[I].str();
  }
  S += ") -> " + Ret.str();
  return S;
}

namespace {

struct MemBlock {
  uint64_t Size = 0;
  std::vector<RtValue> Cells;
  bool Alive = true;
};

/// The whole-machine state for one run.
class Machine {
public:
  Machine(const ir::Module &M, const InterpOptions &Opts)
      : M(M), Opts(Opts), OracleRng(Opts.OracleSeed) {}

  RunResult run(const std::string &FuncName,
                const std::vector<int64_t> &Args);

private:
  // -- Memory ------------------------------------------------------------
  int64_t allocBlock(uint64_t Size, RtValue Init) {
    int64_t Id = NextBlock++;
    MemBlock B;
    B.Size = Size;
    B.Cells.assign(Size, Init);
    Mem[Id] = std::move(B);
    return Id;
  }

  MemBlock *liveBlock(int64_t Id) {
    auto It = Mem.find(Id);
    if (It == Mem.end() || !It->second.Alive)
      return nullptr;
    return &It->second;
  }

  // -- Failure plumbing ----------------------------------------------------
  /// Flags undefined behavior; callers must unwind after checking failed().
  void ub(const std::string &Reason) {
    if (Result.End == Outcome::Returned) {
      Result.End = Outcome::UndefBehav;
      Result.UbReason = Reason;
    }
  }
  void outOfFuel() {
    if (Result.End == Outcome::Returned)
      Result.End = Outcome::OutOfFuel;
  }
  bool failed() const { return Result.End != Outcome::Returned; }

  // -- Value evaluation ----------------------------------------------------
  using RegFile = std::map<std::string, RtValue>;

  RtValue eval(const Value &V, const RegFile &Regs);
  RtValue evalConstExpr(const ConstExprNode &N);
  RtValue evalBinary(Opcode Op, unsigned Width, const RtValue &A,
                     const RtValue &B);
  RtValue evalIcmp(IcmpPred P, const RtValue &A, const RtValue &B);
  RtValue evalCast(Opcode Op, ir::Type DstTy, const RtValue &A);

  // -- Execution -----------------------------------------------------------
  /// Interprets a call to a defined function. Returns the return value, or
  /// an arbitrary value after failure (check failed()).
  RtValue callFunction(const ir::Function &F, std::vector<RtValue> Args);
  RtValue callExternal(const std::string &Callee, ir::Type RetTy,
                       std::vector<RtValue> Args);
  RtValue oracleValue(ir::Type Ty);

  const ir::Module &M;
  InterpOptions Opts;
  RNG OracleRng;
  std::map<int64_t, MemBlock> Mem;
  std::map<std::string, int64_t> GlobalBlocks;
  int64_t NextBlock = 1;
  RunResult Result;
  unsigned CallDepth = 0;
};

RtValue Machine::eval(const Value &V, const RegFile &Regs) {
  switch (V.kind()) {
  case Value::Kind::Reg: {
    auto It = Regs.find(V.regName());
    if (It == Regs.end()) {
      ub("use of unbound register %" + V.regName());
      return RtValue::undef();
    }
    return It->second;
  }
  case Value::Kind::ConstInt:
    return RtValue::intVal(static_cast<uint64_t>(V.intValue()),
                           V.type().intWidth());
  case Value::Kind::Global: {
    auto It = GlobalBlocks.find(V.globalName());
    if (It == GlobalBlocks.end()) {
      ub("reference to unknown global @" + V.globalName());
      return RtValue::undef();
    }
    return RtValue::ptrVal(It->second, 0);
  }
  case Value::Kind::Undef:
    return RtValue::undef();
  case Value::Kind::ConstExpr:
    return evalConstExpr(V.constExprNode());
  }
  return RtValue::undef();
}

RtValue Machine::evalConstExpr(const ConstExprNode &N) {
  std::vector<RtValue> Ops;
  RegFile Empty;
  for (const Value &O : N.Ops) {
    Ops.push_back(eval(O, Empty));
    if (failed())
      return RtValue::undef();
  }
  if (isBinaryOp(N.Op)) {
    assert(Ops.size() == 2 && "binary constant expression arity");
    return evalBinary(N.Op, N.Ty.intWidth(), Ops[0], Ops[1]);
  }
  assert(isCast(N.Op) && Ops.size() == 1 &&
         "unsupported constant expression");
  return evalCast(N.Op, N.Ty, Ops[0]);
}

RtValue Machine::evalBinary(Opcode Op, unsigned Width, const RtValue &A,
                            const RtValue &B) {
  OpResult R = evalBinaryOp(Op, Width, A, B);
  if (R.Trap) {
    ub(R.Reason);
    return RtValue::undef();
  }
  return R.V;
}

RtValue Machine::evalIcmp(IcmpPred P, const RtValue &A, const RtValue &B) {
  OpResult R = evalIcmpOp(P, A, B);
  if (R.Trap) {
    ub(R.Reason);
    return RtValue::undef();
  }
  return R.V;
}

RtValue Machine::evalCast(Opcode Op, ir::Type DstTy, const RtValue &A) {
  OpResult R = evalCastOp(Op, DstTy, A);
  if (R.Trap) {
    ub(R.Reason);
    return RtValue::undef();
  }
  return R.V;
}

RtValue Machine::oracleValue(ir::Type Ty) {
  if (Ty.isVoid())
    return RtValue::undef();
  if (Ty.isInt()) {
    // Mostly small values so branch conditions and gep indices stay
    // interesting; occasionally full-range bits.
    if (OracleRng.chance(4, 5))
      return RtValue::intVal(
          static_cast<uint64_t>(OracleRng.range(-3, 8)), Ty.intWidth());
    return RtValue::intVal(OracleRng.next(), Ty.intWidth());
  }
  if (Ty.isPtr()) {
    if (!GlobalBlocks.empty()) {
      size_t Pick = OracleRng.below(GlobalBlocks.size());
      auto It = GlobalBlocks.begin();
      std::advance(It, Pick);
      return RtValue::ptrVal(It->second, 0);
    }
    return RtValue::ptrVal(-1, 0);
  }
  // Vector.
  std::vector<RtValue> Lanes;
  for (unsigned I = 0; I != Ty.vecLanes(); ++I)
    Lanes.push_back(RtValue::intVal(
        static_cast<uint64_t>(OracleRng.range(-3, 8)), Ty.intWidth()));
  return RtValue::vec(std::move(Lanes));
}

RtValue Machine::callExternal(const std::string &Callee, ir::Type RetTy,
                              std::vector<RtValue> Args) {
  // Lifetime intrinsics are silent no-ops (they only matter as a
  // not-supported feature for the validator, see DESIGN.md §5).
  if (Callee.rfind("llvm.", 0) == 0)
    return RtValue::undef();

  Event E;
  E.Callee = Callee;
  E.Args = std::move(Args);
  E.Ret = oracleValue(RetTy);
  // Externals may scribble on public memory; the checker must invalidate
  // public-memory assertions across calls (Appendix H pruning).
  if (Opts.ExternalsWriteGlobals && !GlobalBlocks.empty()) {
    size_t Pick = OracleRng.below(GlobalBlocks.size());
    auto It = GlobalBlocks.begin();
    std::advance(It, Pick);
    MemBlock *B = liveBlock(It->second);
    if (B && B->Size > 0) {
      uint64_t Cell = OracleRng.below(B->Size);
      B->Cells[Cell] = RtValue::intVal(
          static_cast<uint64_t>(OracleRng.range(-3, 8)), 32);
    }
  }
  Result.Trace.push_back(E);
  return E.Ret;
}

RtValue Machine::callFunction(const ir::Function &F,
                              std::vector<RtValue> Args) {
  if (++CallDepth > 64) {
    outOfFuel();
    --CallDepth;
    return RtValue::undef();
  }
  RegFile Regs;
  for (size_t I = 0; I != F.Params.size(); ++I)
    Regs[F.Params[I].Name] =
        I < Args.size() ? Args[I] : RtValue::undef();

  const BasicBlock *Cur = &F.entry();
  std::string PrevName; // empty on function entry
  std::vector<int64_t> LocalAllocas;

  auto Cleanup = [&] {
    for (int64_t Id : LocalAllocas)
      Mem[Id].Alive = false;
    --CallDepth;
  };

  while (true) {
    if (Result.Steps++ >= Opts.Fuel) {
      outOfFuel();
      Cleanup();
      return RtValue::undef();
    }
    // Phi nodes execute simultaneously with respect to the pre-state
    // (paper §4).
    if (!PrevName.empty() && !Cur->Phis.empty()) {
      std::vector<std::pair<std::string, RtValue>> News;
      for (const Phi &P : Cur->Phis) {
        News.emplace_back(P.Result, eval(P.incomingFor(PrevName), Regs));
        if (failed()) {
          Cleanup();
          return RtValue::undef();
        }
      }
      for (auto &KV : News)
        Regs[KV.first] = std::move(KV.second);
    }

    for (const Instruction &I : Cur->Insts) {
      if (Result.Steps++ >= Opts.Fuel) {
        outOfFuel();
        Cleanup();
        return RtValue::undef();
      }
      const auto &Ops = I.operands();
      Opcode Op = I.opcode();

      if (isBinaryOp(Op)) {
        RtValue A = eval(Ops[0], Regs), B = eval(Ops[1], Regs);
        if (!failed()) {
          if (I.type().isVec()) {
            // Lane-wise; undef/poison operands poison every lane.
            if (!A.isVec() || !B.isVec()) {
              Regs[*I.result()] = A.isPoison() || B.isPoison()
                                      ? RtValue::poison()
                                      : RtValue::undef();
            } else {
              std::vector<RtValue> Lanes;
              for (unsigned L = 0; L != I.type().vecLanes(); ++L) {
                Lanes.push_back(evalBinary(Op, I.type().intWidth(),
                                           A.lanes()[L], B.lanes()[L]));
                if (failed())
                  break;
              }
              if (!failed())
                Regs[*I.result()] = RtValue::vec(std::move(Lanes));
            }
          } else {
            Regs[*I.result()] = evalBinary(Op, I.type().intWidth(), A, B);
          }
        }
        if (failed()) {
          Cleanup();
          return RtValue::undef();
        }
        continue;
      }
      if (isCast(Op)) {
        RtValue A = eval(Ops[0], Regs);
        if (!failed())
          Regs[*I.result()] = evalCast(Op, I.type(), A);
        if (failed()) {
          Cleanup();
          return RtValue::undef();
        }
        continue;
      }

      switch (Op) {
      case Opcode::ICmp: {
        RtValue A = eval(Ops[0], Regs), B = eval(Ops[1], Regs);
        if (!failed())
          Regs[*I.result()] = evalIcmp(I.icmpPred(), A, B);
        break;
      }
      case Opcode::Select: {
        RtValue C = eval(Ops[0], Regs);
        RtValue T = eval(Ops[1], Regs), FV = eval(Ops[2], Regs);
        if (failed())
          break;
        if (C.isPoison())
          Regs[*I.result()] = RtValue::poison();
        else if (C.isUndef())
          Regs[*I.result()] = RtValue::undef();
        else
          Regs[*I.result()] = C.bits() ? T : FV;
        break;
      }
      case Opcode::Alloca: {
        int64_t Id = allocBlock(I.allocaSize(), RtValue::undef());
        LocalAllocas.push_back(Id);
        Regs[*I.result()] = RtValue::ptrVal(Id, 0);
        break;
      }
      case Opcode::Load: {
        RtValue P = eval(Ops[0], Regs);
        if (failed())
          break;
        if (!P.isPtr()) {
          ub("load through " + P.str());
          break;
        }
        MemBlock *B = liveBlock(P.block());
        if (!B || P.offset() < 0 ||
            static_cast<uint64_t>(P.offset()) >= B->Size) {
          ub("out-of-bounds or dead load");
          break;
        }
        Regs[*I.result()] = B->Cells[P.offset()];
        break;
      }
      case Opcode::Store: {
        RtValue V = eval(Ops[0], Regs), P = eval(Ops[1], Regs);
        if (failed())
          break;
        if (!P.isPtr()) {
          ub("store through " + P.str());
          break;
        }
        MemBlock *B = liveBlock(P.block());
        if (!B || P.offset() < 0 ||
            static_cast<uint64_t>(P.offset()) >= B->Size) {
          ub("out-of-bounds or dead store");
          break;
        }
        B->Cells[P.offset()] = V;
        break;
      }
      case Opcode::Gep: {
        RtValue Base = eval(Ops[0], Regs), Idx = eval(Ops[1], Regs);
        if (failed())
          break;
        if (Base.isPoison() || Idx.isPoison()) {
          Regs[*I.result()] = RtValue::poison();
          break;
        }
        if (Base.isUndef() || Idx.isUndef()) {
          Regs[*I.result()] =
              I.isInbounds() ? RtValue::poison() : RtValue::undef();
          break;
        }
        if (!Base.isPtr() || !Idx.isInt()) {
          ub("gep on non-pointer base");
          break;
        }
        int64_t NewOff = Base.offset() + Idx.sext();
        if (I.isInbounds()) {
          // `inbounds` requires the result to stay within the allocation
          // (one-past-the-end allowed); otherwise the result is poison
          // (paper §1.2, the gvn bugs).
          MemBlock *B = liveBlock(Base.block());
          if (!B || NewOff < 0 ||
              static_cast<uint64_t>(NewOff) > B->Size) {
            Regs[*I.result()] = RtValue::poison();
            break;
          }
        }
        Regs[*I.result()] = RtValue::ptrVal(Base.block(), NewOff);
        break;
      }
      case Opcode::Call: {
        std::vector<RtValue> Args2;
        for (const Value &A : Ops) {
          Args2.push_back(eval(A, Regs));
          if (failed())
            break;
        }
        if (failed())
          break;
        RtValue Ret;
        if (const ir::Function *Callee = M.getFunction(I.callee()))
          Ret = callFunction(*Callee, std::move(Args2));
        else
          Ret = callExternal(I.callee(), I.type(), std::move(Args2));
        if (!failed() && I.result())
          Regs[*I.result()] = Ret;
        break;
      }
      case Opcode::Br: {
        PrevName = Cur->Name;
        Cur = F.getBlock(I.successors()[0]);
        break;
      }
      case Opcode::CondBr: {
        RtValue C = eval(Ops[0], Regs);
        if (failed())
          break;
        if (!C.isInt()) {
          ub("branch on " + C.str());
          break;
        }
        PrevName = Cur->Name;
        Cur = F.getBlock(I.successors()[C.bits() ? 0 : 1]);
        break;
      }
      case Opcode::Switch: {
        RtValue V = eval(Ops[0], Regs);
        if (failed())
          break;
        if (!V.isInt()) {
          ub("switch on " + V.str());
          break;
        }
        size_t Target = 0; // default
        for (size_t CI = 0; CI != I.caseValues().size(); ++CI) {
          if (RtValue::truncate(
                  static_cast<uint64_t>(I.caseValues()[CI]), V.width()) ==
              V.bits()) {
            Target = CI + 1;
            break;
          }
        }
        PrevName = Cur->Name;
        Cur = F.getBlock(I.successors()[Target]);
        break;
      }
      case Opcode::Ret: {
        RtValue R = Ops.empty() ? RtValue::undef() : eval(Ops[0], Regs);
        Cleanup();
        return R;
      }
      case Opcode::Unreachable:
        ub("reached unreachable");
        break;
      default:
        assert(false && "unhandled opcode");
      }
      if (failed()) {
        Cleanup();
        return RtValue::undef();
      }
      if (I.isTerminator())
        break; // continue with the next block
    }
  }
}

RunResult Machine::run(const std::string &FuncName,
                       const std::vector<int64_t> &Args) {
  // Materialize globals: zero-initialized, as in LLVM.
  for (const GlobalVar &G : M.Globals) {
    unsigned W = G.ElemTy.isInt() ? G.ElemTy.intWidth() : 32;
    GlobalBlocks[G.Name] = allocBlock(G.Size, RtValue::intVal(0, W));
  }

  const ir::Function *F = M.getFunction(FuncName);
  if (!F) {
    ub("no such function @" + FuncName);
    return std::move(Result);
  }

  std::vector<RtValue> ArgVals;
  size_t IntArg = 0;
  for (const Param &P : F->Params) {
    if (P.Ty.isInt() && IntArg < Args.size())
      ArgVals.push_back(RtValue::intVal(
          static_cast<uint64_t>(Args[IntArg++]), P.Ty.intWidth()));
    else if (P.Ty.isPtr()) {
      // Pointer parameters receive a fresh environment block with
      // oracle-chosen contents.
      int64_t Id = allocBlock(4, RtValue::undef());
      for (uint64_t C = 0; C != 4; ++C)
        Mem[Id].Cells[C] = RtValue::intVal(
            static_cast<uint64_t>(OracleRng.range(-3, 8)), 32);
      ArgVals.push_back(RtValue::ptrVal(Id, 0));
    } else
      ArgVals.push_back(oracleValue(P.Ty));
  }

  RtValue Ret = callFunction(*F, std::move(ArgVals));
  if (Result.End == Outcome::Returned)
    Result.ReturnValue = Ret;
  return std::move(Result);
}

/// Does target value \p T refine source value \p S? A source undef or
/// poison may become anything.
bool valueRefines(const RtValue &S, const RtValue &T) {
  if (S.isUndef() || S.isPoison())
    return true;
  if (S.isVec() && T.isVec() && S.lanes().size() == T.lanes().size()) {
    for (size_t I = 0; I != S.lanes().size(); ++I)
      if (!valueRefines(S.lanes()[I], T.lanes()[I]))
        return false;
    return true;
  }
  return S == T;
}

bool eventRefines(const Event &S, const Event &T) {
  if (S.Callee != T.Callee || S.Args.size() != T.Args.size())
    return false;
  for (size_t I = 0; I != S.Args.size(); ++I)
    if (!valueRefines(S.Args[I], T.Args[I]))
      return false;
  // Returns come from the shared oracle; they agree whenever the calls
  // align, so no check is needed.
  return true;
}

} // namespace

RunResult crellvm::interp::run(const ir::Module &M,
                               const std::string &FuncName,
                               const std::vector<int64_t> &Args,
                               const InterpOptions &Opts) {
  Machine Mach(M, Opts);
  return Mach.run(FuncName, Args);
}

bool crellvm::interp::refines(const RunResult &Src, const RunResult &Tgt) {
  size_t Common = std::min(Src.Trace.size(), Tgt.Trace.size());
  for (size_t I = 0; I != Common; ++I)
    if (!eventRefines(Src.Trace[I], Tgt.Trace[I]))
      return false;
  // A target still running (out of fuel) cannot be falsified.
  if (Tgt.End == Outcome::OutOfFuel)
    return true;
  // A source that reached UB allows anything *after* its trace: the target
  // must still exhibit the source trace as a prefix.
  if (Src.End == Outcome::UndefBehav)
    return Tgt.Trace.size() >= Src.Trace.size();
  // A source out of fuel gives no verdict beyond the common prefix.
  if (Src.End == Outcome::OutOfFuel)
    return true;
  if (Tgt.End != Outcome::Returned)
    return false; // source returned, target trapped: not a refinement
  if (Src.Trace.size() != Tgt.Trace.size())
    return false;
  return valueRefines(Src.ReturnValue, Tgt.ReturnValue);
}
