//===- interp/RtValue.h - Runtime values ------------------------*- C++ -*-===//
///
/// \file
/// Runtime values of the operational semantics: integers, pointers
/// (block + offset, CompCert-style), undef, poison, and vectors. Undef is a
/// distinguished propagating value (as in Vellvm); poison is the result of
/// violated `inbounds` and propagates through arithmetic — the distinction
/// drives the paper's gvn bugs (PR28562/PR29057).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_INTERP_RTVALUE_H
#define CRELLVM_INTERP_RTVALUE_H

#include "ir/Type.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace crellvm {
namespace interp {

/// A runtime value.
class RtValue {
public:
  enum class Kind : uint8_t { Int, Ptr, Undef, Poison, Vec };

  RtValue() : K(Kind::Undef), Width(0) {}

  static RtValue intVal(uint64_t Bits, unsigned Width) {
    RtValue V;
    V.K = Kind::Int;
    V.Width = Width;
    V.Bits = truncate(Bits, Width);
    return V;
  }
  static RtValue ptrVal(int64_t Block, int64_t Off) {
    RtValue V;
    V.K = Kind::Ptr;
    V.Block = Block;
    V.Off = Off;
    return V;
  }
  static RtValue undef() { return RtValue(); }
  static RtValue poison() {
    RtValue V;
    V.K = Kind::Poison;
    return V;
  }
  static RtValue vec(std::vector<RtValue> Lanes) {
    RtValue V;
    V.K = Kind::Vec;
    V.LaneVals = std::move(Lanes);
    return V;
  }

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isPtr() const { return K == Kind::Ptr; }
  bool isUndef() const { return K == Kind::Undef; }
  bool isPoison() const { return K == Kind::Poison; }
  bool isVec() const { return K == Kind::Vec; }

  uint64_t bits() const {
    assert(isInt() && "not an integer");
    return Bits;
  }
  unsigned width() const {
    assert(isInt() && "not an integer");
    return Width;
  }
  /// Sign-extended view of the integer payload.
  int64_t sext() const {
    assert(isInt());
    return signExtend(Bits, Width);
  }
  int64_t block() const {
    assert(isPtr());
    return Block;
  }
  int64_t offset() const {
    assert(isPtr());
    return Off;
  }
  const std::vector<RtValue> &lanes() const {
    assert(isVec());
    return LaneVals;
  }

  /// Truncates \p Bits to \p Width bits (zero-extended storage).
  static uint64_t truncate(uint64_t Bits, unsigned Width) {
    if (Width >= 64)
      return Bits;
    return Bits & ((uint64_t(1) << Width) - 1);
  }
  static int64_t signExtend(uint64_t Bits, unsigned Width) {
    if (Width >= 64)
      return static_cast<int64_t>(Bits);
    uint64_t SignBit = uint64_t(1) << (Width - 1);
    return static_cast<int64_t>((Bits ^ SignBit)) -
           static_cast<int64_t>(SignBit);
  }

  bool operator==(const RtValue &O) const {
    if (K != O.K)
      return false;
    switch (K) {
    case Kind::Int:
      return Width == O.Width && Bits == O.Bits;
    case Kind::Ptr:
      return Block == O.Block && Off == O.Off;
    case Kind::Undef:
    case Kind::Poison:
      return true;
    case Kind::Vec:
      return LaneVals == O.LaneVals;
    }
    return false;
  }
  bool operator!=(const RtValue &O) const { return !(*this == O); }

  std::string str() const {
    switch (K) {
    case Kind::Int:
      return "i" + std::to_string(Width) + " " + std::to_string(sext());
    case Kind::Ptr:
      return "ptr(b" + std::to_string(Block) + "+" + std::to_string(Off) +
             ")";
    case Kind::Undef:
      return "undef";
    case Kind::Poison:
      return "poison";
    case Kind::Vec: {
      std::string S = "<";
      for (size_t I = 0; I != LaneVals.size(); ++I) {
        if (I != 0)
          S += ", ";
        S += LaneVals[I].str();
      }
      return S + ">";
    }
    }
    return "<invalid>";
  }

private:
  Kind K;
  unsigned Width = 0;
  uint64_t Bits = 0;
  int64_t Block = 0;
  int64_t Off = 0;
  std::vector<RtValue> LaneVals;
};

} // namespace interp
} // namespace crellvm

#endif // CRELLVM_INTERP_RTVALUE_H
